package channel

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/ser"
)

// Microbenchmarks for the individual channel primitives: these isolate
// the per-message costs behind the table-level results (hash-map
// staging in CombinedMessage vs the presorted scan in ScatterCombine,
// request dedup in RequestRespond, local traversal in Propagation).

const (
	microVertices = 4096
	microWorkers  = 4
	microSteps    = 8
)

func benchRun(b *testing.B, setup func(w *engine.Worker)) {
	b.Helper()
	part := partition.MustHash(microVertices, microWorkers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(engine.Config{Part: part, MaxSupersteps: 100}, setup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectMessageRing(b *testing.B) {
	benchRun(b, func(w *engine.Worker) {
		ch := NewDirectMessage[uint32](w, ser.Uint32Codec{})
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() <= microSteps {
				ch.SendMessage((id+1)%microVertices, id)
			} else {
				w.VoteToHalt()
			}
		}
	})
}

func BenchmarkCombinedMessageFanIn(b *testing.B) {
	benchRun(b, func(w *engine.Worker) {
		ch := NewCombinedMessage[uint32](w, ser.Uint32Codec{}, sumU32)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() <= microSteps {
				ch.SendMessage(id%64, 1) // 64 hot receivers
				ch.SendMessage((id+1)%microVertices, 1)
			} else {
				w.VoteToHalt()
			}
		}
	})
}

func BenchmarkScatterCombineRing(b *testing.B) {
	benchRun(b, func(w *engine.Worker) {
		ch := NewScatterCombine[uint32](w, ser.Uint32Codec{}, sumU32)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				ch.AddEdge((id + 1) % microVertices)
				ch.AddEdge((id + 7) % microVertices)
			}
			if w.Superstep() <= microSteps {
				ch.SetMessage(id)
			} else {
				w.VoteToHalt()
			}
		}
	})
}

func BenchmarkAggregatorSum(b *testing.B) {
	benchRun(b, func(w *engine.Worker) {
		agg := NewAggregator[int64](w, ser.Int64Codec{}, func(a, c int64) int64 { return a + c }, 0)
		w.Compute = func(li int) {
			if w.Superstep() <= microSteps {
				agg.Add(1)
			} else {
				w.VoteToHalt()
			}
		}
	})
}

func BenchmarkRequestRespondHub(b *testing.B) {
	benchRun(b, func(w *engine.Worker) {
		vals := make([]uint32, w.LocalCount())
		rr := NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 { return vals[li] })
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() <= microSteps {
				rr.AddRequest(id % 16) // 16 hubs
			} else {
				w.VoteToHalt()
			}
		}
	})
}

func BenchmarkPropagationPath(b *testing.B) {
	benchRun(b, func(w *engine.Worker) {
		prop := NewPropagation[uint32](w, ser.Uint32Codec{}, minU32)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				// 16 disjoint paths of 256 vertices: every hop crosses a
				// worker under hash placement, bounding the round count
				if id+1 < microVertices && (id+1)%256 != 0 {
					prop.AddEdge(id + 1)
				}
				prop.SetValue(id)
				return
			}
			w.VoteToHalt()
		}
	})
}

func BenchmarkMirrorHubBroadcast(b *testing.B) {
	benchRun(b, func(w *engine.Worker) {
		mr := NewMirror[uint32](w, ser.Uint32Codec{}, sumU32, 16)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 && id < 8 {
				for v := uint32(0); v < microVertices; v += 4 {
					mr.AddEdge(v)
				}
			}
			if w.Superstep() <= microSteps {
				if id < 8 {
					mr.SetMessage(id)
				}
			} else {
				w.VoteToHalt()
			}
		}
	})
}
