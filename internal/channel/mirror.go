package channel

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ser"
)

// Mirror is an extension channel (not in the paper's Table II) that
// demonstrates the paper's claim that the channel interface lets experts
// package further optimizations as channels: it implements Pregel+'s
// ghost/mirroring technique — sender-side message combining for
// high-degree vertices — as a composable channel. A vertex whose
// registered degree reaches the threshold sends one message per worker
// holding mirrors of it, and the receiving worker fans the value out to
// the local neighbors; low-degree vertices fall back to ordinary
// receiver-combined sends. In Pregel+ the equivalent ghost mode is an
// engine-wide switch that cannot coexist with the reqresp mode (§VI);
// here it is just another channel.
//
// The mirror fan-out tables are built with an extra handshake exchange
// round in the superstep where the edges are registered, using the
// channel mechanism's again() facility — no out-of-band preprocessing.
// Every frame starts with a phase tag so receivers need no shared
// phase state.
type Mirror[M any] struct {
	w         *engine.Worker
	codec     ser.Codec[M]
	combine   Combiner[M]
	threshold int

	// registration (one superstep)
	building []scEdge
	prepared bool

	// sender side, after preparation: all edges grouped by source
	bySrc    []scEdge
	srcStart []int32 // len n+1
	// hubs: local vertices with degree >= threshold
	hubSlot    []int32   // local vertex -> hub slot or -1
	hubWorkers [][]int32 // hub slot -> workers with mirrors

	// receiver side: fanout tables hubID -> local neighbor indices
	fanout map[graph.VertexID][]int32

	srcVal   stamped[M]
	setEpoch int32
	in       stamped[M]

	handshake bool // this worker still owes the handshake frame
}

const (
	mirrorFrameHandshake = 0
	mirrorFrameBroadcast = 1
)

// NewMirror creates and registers a Mirror channel with the given
// hub-degree threshold (the paper's experiments use 16 for Pregel+'s
// ghost mode).
func NewMirror[M any](w *engine.Worker, codec ser.Codec[M], combine Combiner[M], threshold int) *Mirror[M] {
	if threshold < 1 {
		threshold = 1
	}
	c := &Mirror[M]{w: w, codec: codec, combine: combine, threshold: threshold}
	w.Register(c)
	return c
}

// AddEdge registers an outgoing edge of the vertex currently computing.
// All edges must be registered in one superstep.
func (c *Mirror[M]) AddEdge(dst graph.VertexID) {
	if c.prepared {
		panic("channel: Mirror.AddEdge after preparation")
	}
	c.building = append(c.building, scEdge{owner: c.w.Owner(dst), dst: dst, src: int32(c.w.CurrentLocal())})
}

// SetMessage sets the value the current vertex broadcasts to all its
// registered neighbors this superstep.
func (c *Mirror[M]) SetMessage(m M) {
	c.setEpoch = int32(c.w.Superstep())
	c.srcVal.set(c.w.CurrentLocal(), m, c.setEpoch)
}

// Message returns the combined value delivered to local vertex li in
// the previous superstep.
func (c *Mirror[M]) Message(li int) (M, bool) {
	return c.in.get(li, int32(c.w.Superstep()-1))
}

// Initialize implements engine.Channel.
func (c *Mirror[M]) Initialize() {
	n := c.w.LocalCount()
	c.srcVal = newStamped[M](n)
	c.in = newStamped[M](n)
	c.fanout = make(map[graph.VertexID][]int32)
}

func (c *Mirror[M]) prepare() {
	n := c.w.LocalCount()
	c.srcStart = make([]int32, n+1)
	for _, e := range c.building {
		c.srcStart[e.src+1]++
	}
	for i := 1; i <= n; i++ {
		c.srcStart[i] += c.srcStart[i-1]
	}
	c.bySrc = make([]scEdge, len(c.building))
	fill := make([]int32, n)
	copy(fill, c.srcStart[:n])
	for _, e := range c.building {
		c.bySrc[fill[e.src]] = e
		fill[e.src]++
	}
	c.building = nil

	c.hubSlot = make([]int32, n)
	for li := 0; li < n; li++ {
		c.hubSlot[li] = -1
		deg := int(c.srcStart[li+1] - c.srcStart[li])
		if deg < c.threshold {
			continue
		}
		seen := make([]bool, c.w.NumWorkers())
		var lst []int32
		for _, e := range c.bySrc[c.srcStart[li]:c.srcStart[li+1]] {
			if !seen[e.owner] {
				seen[e.owner] = true
				lst = append(lst, int32(e.owner))
			}
		}
		c.hubSlot[li] = int32(len(c.hubWorkers))
		c.hubWorkers = append(c.hubWorkers, lst)
	}
	c.prepared = true
	c.handshake = true
}

// AfterCompute implements engine.Channel.
func (c *Mirror[M]) AfterCompute() {
	if !c.prepared && len(c.building) > 0 {
		c.prepare()
	}
}

// Serialize implements engine.Channel. The handshake frame ships each
// hub's per-worker neighbor lists; broadcast frames ship one
// (hub, value) per mirrored hub plus combined low-degree messages.
func (c *Mirror[M]) Serialize(dst int, buf *ser.Buffer) {
	if !c.prepared {
		return
	}
	if c.handshake {
		buf.WriteUint8(mirrorFrameHandshake)
		countPos := buf.Len()
		buf.WriteUint32(0)
		hubs := uint32(0)
		for li, slot := range c.hubSlot {
			if slot < 0 {
				continue
			}
			seg := c.bySrc[c.srcStart[li]:c.srcStart[li+1]]
			cnt := 0
			for _, e := range seg {
				if e.owner == dst {
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			buf.WriteUint32(c.w.GlobalID(li))
			buf.WriteUvarint(uint64(cnt))
			for _, e := range seg {
				if e.owner == dst {
					buf.WriteUint32(e.dst)
				}
			}
			hubs++
		}
		buf.PatchUint32(countPos, hubs)
		return
	}
	e := int32(c.w.Superstep())
	if c.setEpoch != e {
		return
	}
	buf.WriteUint8(mirrorFrameBroadcast)
	// section 1: hub broadcasts (one per hub with a mirror on dst)
	hubPos := buf.Len()
	buf.WriteUint32(0)
	hubs := uint32(0)
	// section 2 staging: combined low-degree messages for dst
	staged := make(map[graph.VertexID]M)
	for li, slot := range c.hubSlot {
		v, ok := c.srcVal.get(li, e)
		if !ok {
			continue
		}
		if slot >= 0 {
			for _, wk := range c.hubWorkers[slot] {
				if int(wk) == dst {
					buf.WriteUint32(c.w.GlobalID(li))
					c.codec.Encode(buf, v)
					hubs++
					break
				}
			}
			continue
		}
		for _, edge := range c.bySrc[c.srcStart[li]:c.srcStart[li+1]] {
			if edge.owner != dst {
				continue
			}
			if old, ok := staged[edge.dst]; ok {
				staged[edge.dst] = c.combine(old, v)
			} else {
				staged[edge.dst] = v
			}
		}
	}
	buf.PatchUint32(hubPos, hubs)
	buf.WriteUvarint(uint64(len(staged)))
	for id, v := range staged {
		buf.WriteUint32(id)
		c.codec.Encode(buf, v)
	}
}

// Deserialize implements engine.Channel: dispatch on the frame tag.
func (c *Mirror[M]) Deserialize(src int, buf *ser.Buffer) {
	switch buf.ReadUint8() {
	case mirrorFrameHandshake:
		hubs := int(buf.ReadUint32())
		for i := 0; i < hubs; i++ {
			hub := buf.ReadUint32()
			n := int(buf.ReadUvarint())
			lst := make([]int32, 0, n)
			for j := 0; j < n; j++ {
				lst = append(lst, int32(c.w.LocalIndex(buf.ReadUint32())))
			}
			c.fanout[hub] = append(c.fanout[hub], lst...)
		}
	case mirrorFrameBroadcast:
		e := int32(c.w.Superstep())
		deliver := func(li int32, m M) {
			if old, ok := c.in.get(int(li), e); ok {
				c.in.set(int(li), c.combine(old, m), e)
			} else {
				c.in.set(int(li), m, e)
			}
			c.w.ActivateLocal(int(li))
		}
		hubs := int(buf.ReadUint32())
		for i := 0; i < hubs; i++ {
			hub := buf.ReadUint32()
			m := c.codec.Decode(buf)
			for _, li := range c.fanout[hub] {
				deliver(li, m)
			}
		}
		n := int(buf.ReadUvarint())
		for i := 0; i < n; i++ {
			id := buf.ReadUint32()
			m := c.codec.Decode(buf)
			deliver(int32(c.w.LocalIndex(id)), m)
		}
	default:
		panic("channel: Mirror: unknown frame tag")
	}
}

// Again implements engine.Channel: one extra round after the handshake
// so a SetMessage issued in the registration superstep still reaches
// its receivers through the freshly built tables.
func (c *Mirror[M]) Again() bool {
	if c.handshake {
		c.handshake = false
		return c.setEpoch == int32(c.w.Superstep())
	}
	return false
}
