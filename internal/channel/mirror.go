package channel

import (
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/ser"
)

// Mirror is an extension channel (not in the paper's Table II) that
// demonstrates the paper's claim that the channel interface lets experts
// package further optimizations as channels: it implements Pregel+'s
// ghost/mirroring technique — sender-side message combining for
// high-degree vertices — as a composable channel. A vertex whose
// registered degree reaches the threshold sends one message per worker
// holding mirrors of it, and the receiving worker fans the value out to
// the local neighbors; low-degree vertices fall back to ordinary
// receiver-combined sends. In Pregel+ the equivalent ghost mode is an
// engine-wide switch that cannot coexist with the reqresp mode (§VI);
// here it is just another channel.
//
// The mirror fan-out tables are built with an extra handshake exchange
// round in the superstep where the edges are registered, using the
// channel mechanism's again() facility — no out-of-band preprocessing.
// Every frame starts with a phase tag so receivers need no shared
// phase state.
//
// The steady-state paths are fully dense: hubs are referenced on the
// wire by their per-(sender, receiver) ordinal — the position of the hub
// in that sender's handshake frame — so the receiver fans out by
// indexing a flat table, and low-degree messages are staged in dense
// per-destination slots keyed by the remote local index. After the
// one-time handshake no hash map is touched on either side.
type Mirror[M any] struct {
	w         *engine.Worker
	codec     ser.Codec[M]
	combine   Combiner[M]
	threshold int

	// registration (one superstep)
	building []scEdge
	prepared bool

	// sender side, after preparation: all edges grouped by source; each
	// entry carries the packed destination address, so both the staging
	// scan and the handshake read (owner, local) without the partition
	bySrc    []scEdge
	srcStart []int32 // len n+1
	// hubs: local vertices with degree >= threshold
	hubSlot []int32 // local vertex -> hub slot or -1
	hubLi   []int32 // hub slot -> local vertex
	// dstHubs[d] lists the hub slots mirrored on worker d in ascending
	// slot order; a hub's position in this list is its wire ordinal for
	// frames sent to d (fixed by the handshake frame, which enumerates
	// hubs in the same order).
	dstHubs [][]int32

	// low-degree staging: dense per-destination-worker slots
	low        denseOut[M]
	stagedStep int32 // superstep whose low-degree staging pass has run

	// receiver side: fanout[src][ordinal] -> local neighbor indices
	fanout [][][]int32

	srcVal   stamped[M]
	setEpoch int32
	in       stamped[M]

	handshake bool // this worker still owes the handshake frame
}

const (
	mirrorFrameHandshake = 0
	mirrorFrameBroadcast = 1
)

// NewMirror creates and registers a Mirror channel with the given
// hub-degree threshold (the paper's experiments use 16 for Pregel+'s
// ghost mode).
func NewMirror[M any](w *engine.Worker, codec ser.Codec[M], combine Combiner[M], threshold int) *Mirror[M] {
	if threshold < 1 {
		threshold = 1
	}
	c := &Mirror[M]{w: w, codec: codec, combine: combine, threshold: threshold}
	w.Register(c)
	return c
}

// AddEdge registers an outgoing edge of the vertex currently computing.
// All edges must be registered in one superstep. Transitional id-based
// entry point; AddAddr takes the pre-resolved address directly.
func (c *Mirror[M]) AddEdge(dst graph.VertexID) {
	c.AddAddr(c.w.Addr(dst))
}

// AddAddr registers an outgoing edge of the vertex currently computing
// by its packed destination address.
func (c *Mirror[M]) AddAddr(a frag.Addr) {
	if c.prepared {
		panic("channel: Mirror edge registration after preparation")
	}
	c.building = append(c.building, scEdge{addr: a, src: int32(c.w.CurrentLocal())})
}

// SetMessage sets the value the current vertex broadcasts to all its
// registered neighbors this superstep.
func (c *Mirror[M]) SetMessage(m M) {
	c.setEpoch = int32(c.w.Superstep())
	c.srcVal.set(c.w.CurrentLocal(), m, c.setEpoch)
}

// Message returns the combined value delivered to local vertex li in
// the previous superstep.
func (c *Mirror[M]) Message(li int) (M, bool) {
	return c.in.get(li, int32(c.w.Superstep()-1))
}

// Initialize implements engine.Channel.
func (c *Mirror[M]) Initialize() {
	n := c.w.LocalCount()
	c.srcVal = newStamped[M](n)
	c.in = newStamped[M](n)
	c.fanout = make([][][]int32, c.w.NumWorkers())
	c.stagedStep = -1
}

func (c *Mirror[M]) prepare() {
	n := c.w.LocalCount()
	m := c.w.NumWorkers()
	c.srcStart = make([]int32, n+1)
	for _, e := range c.building {
		c.srcStart[e.src+1]++
	}
	for i := 1; i <= n; i++ {
		c.srcStart[i] += c.srcStart[i-1]
	}
	c.bySrc = make([]scEdge, len(c.building))
	fill := make([]int32, n)
	copy(fill, c.srcStart[:n])
	for _, e := range c.building {
		c.bySrc[fill[e.src]] = e
		fill[e.src]++
	}
	c.building = nil

	c.hubSlot = make([]int32, n)
	c.dstHubs = make([][]int32, m)
	seen := make([]bool, m)
	for li := 0; li < n; li++ {
		c.hubSlot[li] = -1
		deg := int(c.srcStart[li+1] - c.srcStart[li])
		if deg < c.threshold {
			continue
		}
		slot := int32(len(c.hubLi))
		c.hubSlot[li] = slot
		c.hubLi = append(c.hubLi, int32(li))
		for i := range seen {
			seen[i] = false
		}
		for _, e := range c.bySrc[c.srcStart[li]:c.srcStart[li+1]] {
			if o := e.addr.Worker(); !seen[o] {
				seen[o] = true
				c.dstHubs[o] = append(c.dstHubs[o], slot)
			}
		}
	}
	c.low = newDenseOut[M](c.w)
	c.prepared = true
	c.handshake = true
}

// AfterCompute implements engine.Channel.
func (c *Mirror[M]) AfterCompute() {
	if !c.prepared && len(c.building) > 0 {
		c.prepare()
	}
}

// stageLowDegree runs the once-per-superstep staging pass for low-degree
// vertices: one linear scan over the sorted edge list, combining into
// dense per-destination slots.
func (c *Mirror[M]) stageLowDegree(e int32) {
	for li, slot := range c.hubSlot {
		if slot >= 0 {
			continue
		}
		v, ok := c.srcVal.get(li, e)
		if !ok {
			continue
		}
		for p := c.srcStart[li]; p < c.srcStart[li+1]; p++ {
			a := c.bySrc[p].addr
			c.low.stage(a.Worker(), a.Local(), v, c.combine)
		}
	}
}

// Serialize implements engine.Channel. The handshake frame ships each
// hub's per-worker neighbor lists (as local indices on the receiver);
// broadcast frames ship one (hub ordinal, value) per mirrored hub plus
// combined low-degree messages as (localIndex, value) pairs.
func (c *Mirror[M]) Serialize(dst int, buf *ser.Buffer) {
	if !c.prepared {
		return
	}
	if c.handshake {
		hubs := c.dstHubs[dst]
		buf.WriteUint8(mirrorFrameHandshake)
		buf.WriteUvarint(uint64(len(hubs)))
		for _, slot := range hubs {
			li := c.hubLi[slot]
			seg := c.srcStart[li]
			end := c.srcStart[li+1]
			cnt := 0
			for p := seg; p < end; p++ {
				if c.bySrc[p].addr.Worker() == dst {
					cnt++
				}
			}
			buf.WriteUvarint(uint64(cnt))
			for p := seg; p < end; p++ {
				if a := c.bySrc[p].addr; a.Worker() == dst {
					buf.WriteUvarint(uint64(a.Local()))
				}
			}
		}
		return
	}
	e := int32(c.w.Superstep())
	if c.setEpoch != e {
		return
	}
	if c.stagedStep != e {
		c.stageLowDegree(e)
		c.stagedStep = e
	}
	buf.WriteUint8(mirrorFrameBroadcast)
	// section 1: hub broadcasts, referenced by per-(src,dst) ordinal
	hubPos := buf.Len()
	buf.WriteUint32(0)
	hubs := uint32(0)
	for ord, slot := range c.dstHubs[dst] {
		v, ok := c.srcVal.get(int(c.hubLi[slot]), e)
		if !ok {
			continue
		}
		buf.WriteUvarint(uint64(ord))
		c.codec.Encode(buf, v)
		hubs++
	}
	buf.PatchUint32(hubPos, hubs)
	// section 2: combined low-degree messages
	c.low.drain(dst, buf, c.codec)
}

// Deserialize implements engine.Channel: dispatch on the frame tag.
func (c *Mirror[M]) Deserialize(src int, buf *ser.Buffer) {
	switch buf.ReadUint8() {
	case mirrorFrameHandshake:
		hubs := int(buf.ReadUvarint())
		tables := make([][]int32, hubs)
		for i := 0; i < hubs; i++ {
			n := int(buf.ReadUvarint())
			lst := make([]int32, n)
			for j := 0; j < n; j++ {
				lst[j] = int32(buf.ReadUvarint())
			}
			tables[i] = lst
		}
		c.fanout[src] = tables
	case mirrorFrameBroadcast:
		e := int32(c.w.Superstep())
		deliver := func(li int32, m M) {
			if old, ok := c.in.get(int(li), e); ok {
				c.in.set(int(li), c.combine(old, m), e)
			} else {
				c.in.set(int(li), m, e)
			}
			c.w.ActivateLocal(int(li))
		}
		hubs := int(buf.ReadUint32())
		for i := 0; i < hubs; i++ {
			ord := int(buf.ReadUvarint())
			m := c.codec.Decode(buf)
			for _, li := range c.fanout[src][ord] {
				deliver(li, m)
			}
		}
		if buf.Remaining() == 0 {
			return // no low-degree section this frame
		}
		n := int(buf.ReadUvarint())
		for i := 0; i < n; i++ {
			li := int32(buf.ReadUvarint())
			m := c.codec.Decode(buf)
			deliver(li, m)
		}
	default:
		panic("channel: Mirror: unknown frame tag")
	}
}

// Again implements engine.Channel: one extra round after the handshake
// so a SetMessage issued in the registration superstep still reaches
// its receivers through the freshly built tables.
func (c *Mirror[M]) Again() bool {
	if c.handshake {
		c.handshake = false
		return c.setEpoch == int32(c.w.Superstep())
	}
	return false
}
