// Package channel provides the communication-channel library of the
// paper: the standard channels of Table I (DirectMessage,
// CombinedMessage, Aggregator) and the optimized channels of Table II
// (ScatterCombine, RequestRespond, Propagation). Channels are the only
// communication mechanism of the engine; an algorithm composes whichever
// channels match its communication patterns, which is how different
// optimizations coexist in one program (the paper's core contribution,
// demonstrated on S-V in §III-C).
//
// All channels are generic over the message type, taking a ser.Codec for
// wire encoding; combining channels additionally take a Combiner.
package channel

// Combiner merges two message values addressed to the same destination
// (paper §II-A). It must be commutative and associative: the engine makes
// no ordering promises across workers.
type Combiner[M any] func(a, b M) M

// epoch tagging: several channels stamp per-vertex slots with the
// superstep that wrote them instead of clearing arrays between
// supersteps. A slot is fresh iff its stamp matches the expected step.
type stamped[T any] struct {
	val   []T
	epoch []int32
}

func newStamped[T any](n int) stamped[T] {
	return stamped[T]{val: make([]T, n), epoch: make([]int32, n)}
}

func (s *stamped[T]) set(i int, v T, e int32) {
	s.val[i] = v
	s.epoch[i] = e
}

func (s *stamped[T]) get(i int, e int32) (T, bool) {
	if s.epoch[i] == e {
		return s.val[i], true
	}
	var zero T
	return zero, false
}

func (s *stamped[T]) fresh(i int, e int32) bool { return s.epoch[i] == e }
