// Package channel provides the communication-channel library of the
// paper: the standard channels of Table I (DirectMessage,
// CombinedMessage, Aggregator) and the optimized channels of Table II
// (ScatterCombine, RequestRespond, Propagation). Channels are the only
// communication mechanism of the engine; an algorithm composes whichever
// channels match its communication patterns, which is how different
// optimizations coexist in one program (the paper's core contribution,
// demonstrated on S-V in §III-C).
//
// All channels are generic over the message type, taking a ser.Codec for
// wire encoding; combining channels additionally take a Combiner.
package channel

import (
	"repro/internal/engine"
	"repro/internal/ser"
)

// Combiner merges two message values addressed to the same destination
// (paper §II-A). It must be commutative and associative: the engine makes
// no ordering promises across workers.
type Combiner[M any] func(a, b M) M

// epoch tagging: several channels stamp per-vertex slots with the
// superstep that wrote them instead of clearing arrays between
// supersteps. A slot is fresh iff its stamp matches the expected step.
type stamped[T any] struct {
	val   []T
	epoch []int32
}

func newStamped[T any](n int) stamped[T] {
	return stamped[T]{val: make([]T, n), epoch: make([]int32, n)}
}

func (s *stamped[T]) set(i int, v T, e int32) {
	s.val[i] = v
	s.epoch[i] = e
}

func (s *stamped[T]) get(i int, e int32) (T, bool) {
	if s.epoch[i] == e {
		return s.val[i], true
	}
	var zero T
	return zero, false
}

func (s *stamped[T]) fresh(i int, e int32) bool { return s.epoch[i] == e }

// denseOut is the dense per-destination-worker staging area shared by
// the combining channels: one value slot per remote vertex, addressed by
// the vertex's local index on its owner (the Partition gives every
// vertex a dense (owner, localIndex) pair). Staging a message is an
// array write plus a generation-stamp check — no hashing — and the wire
// format ships (localIndex, value) pairs so the receiver also indexes
// straight into flat slices. Slots are invalidated by bumping the
// per-destination generation instead of clearing arrays, so a drained
// staging area is reusable immediately at zero cost.
type denseOut[M any] struct {
	val     [][]M      // per dst worker: remote local index -> staged value
	stamp   [][]uint32 // per dst worker: generation that wrote the slot
	touched [][]uint32 // per dst worker: staged local indices, first-touch order
	gen     []uint32   // per dst worker: current staging generation
}

func newDenseOut[M any](w *engine.Worker) denseOut[M] {
	m := w.NumWorkers()
	part := w.Part()
	d := denseOut[M]{
		val:     make([][]M, m),
		stamp:   make([][]uint32, m),
		touched: make([][]uint32, m),
		gen:     make([]uint32, m),
	}
	for o := 0; o < m; o++ {
		n := part.LocalCount(o)
		d.val[o] = make([]M, n)
		d.stamp[o] = make([]uint32, n)
		d.gen[o] = 1
	}
	return d
}

// stage combines m into the slot for local index li on worker o.
func (d *denseOut[M]) stage(o int, li uint32, m M, combine Combiner[M]) {
	if d.stamp[o][li] == d.gen[o] {
		d.val[o][li] = combine(d.val[o][li], m)
		return
	}
	d.stamp[o][li] = d.gen[o]
	d.val[o][li] = m
	d.touched[o] = append(d.touched[o], li)
}

// drain writes worker o's staged messages as a count followed by
// (localIndex, value) pairs, then resets the staging area by advancing
// its generation. Writes nothing when nothing is staged.
func (d *denseOut[M]) drain(o int, buf *ser.Buffer, codec ser.Codec[M]) {
	t := d.touched[o]
	if len(t) == 0 {
		return
	}
	buf.WriteUvarint(uint64(len(t)))
	val := d.val[o]
	for _, li := range t {
		buf.WriteUvarint(uint64(li))
		codec.Encode(buf, val[li])
	}
	d.touched[o] = t[:0]
	d.gen[o]++
	if d.gen[o] == 0 { // wrapped: clear stamps so no stale slot can match
		clear(d.stamp[o])
		d.gen[o] = 1
	}
}
