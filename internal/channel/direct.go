package channel

import (
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/ser"
)

// DirectMessage is the standard point-to-point message channel
// (paper Table I, first column): send_message(dst, m) during compute,
// and in the next superstep the receiver iterates the messages that
// arrived. No combining is performed.
type DirectMessage[M any] struct {
	w     *engine.Worker
	codec ser.Codec[M]

	// outgoing staging, one slice per destination worker; destinations
	// are staged as their dense local index on the owning worker, which
	// is also the wire encoding.
	out [][]outMsg[M]
	// inbox: per local vertex, filled during exchange, consumed next
	// superstep; touched tracks which slots to clear lazily.
	inbox   [][]M
	touched []int
}

type outMsg[M any] struct {
	dst int32 // local index on the destination worker
	m   M
}

// NewDirectMessage creates and registers a DirectMessage channel.
func NewDirectMessage[M any](w *engine.Worker, codec ser.Codec[M]) *DirectMessage[M] {
	c := &DirectMessage[M]{w: w, codec: codec}
	w.Register(c)
	return c
}

// SendMessage sends m to vertex dst; it is readable by dst in the next
// superstep. Transitional id-based entry point: per-edge loops should
// iterate Frag().Neighbors and call Send with the pre-resolved address.
func (c *DirectMessage[M]) SendMessage(dst graph.VertexID, m M) {
	c.Send(c.w.Addr(dst), m)
}

// Send sends m to the vertex at packed address a.
func (c *DirectMessage[M]) Send(a frag.Addr, m M) {
	o := a.Worker()
	c.out[o] = append(c.out[o], outMsg[M]{dst: int32(a.Local()), m: m})
}

// Messages returns the messages delivered to local vertex li in the
// previous superstep. The slice is valid only during the current compute
// call.
func (c *DirectMessage[M]) Messages(li int) []M { return c.inbox[li] }

// Initialize implements engine.Channel.
func (c *DirectMessage[M]) Initialize() {
	c.out = make([][]outMsg[M], c.w.NumWorkers())
	c.inbox = make([][]M, c.w.LocalCount())
}

// AfterCompute implements engine.Channel: the inbox the vertices just
// read is retired.
func (c *DirectMessage[M]) AfterCompute() {
	for _, li := range c.touched {
		c.inbox[li] = c.inbox[li][:0]
	}
	c.touched = c.touched[:0]
}

// Serialize implements engine.Channel.
func (c *DirectMessage[M]) Serialize(dst int, buf *ser.Buffer) {
	msgs := c.out[dst]
	if len(msgs) == 0 {
		return
	}
	buf.WriteUvarint(uint64(len(msgs)))
	for _, om := range msgs {
		buf.WriteUvarint(uint64(om.dst))
		c.codec.Encode(buf, om.m)
	}
	c.out[dst] = msgs[:0]
}

// Deserialize implements engine.Channel.
func (c *DirectMessage[M]) Deserialize(src int, buf *ser.Buffer) {
	n := int(buf.ReadUvarint())
	for i := 0; i < n; i++ {
		li := int(buf.ReadUvarint())
		m := c.codec.Decode(buf)
		if len(c.inbox[li]) == 0 {
			c.touched = append(c.touched, li)
		}
		c.inbox[li] = append(c.inbox[li], m)
		c.w.ActivateLocal(li)
	}
}

// Again implements engine.Channel: one round is always enough.
func (c *DirectMessage[M]) Again() bool { return false }
