package channel

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ser"
)

// CombinedMessage is the standard combining message channel
// (paper Table I, middle column): messages to the same destination are
// merged with the user combiner, on the sending worker (one hash-map
// entry per distinct destination — the "hash table ... for the general
// case" of §V-B1) and again on the receiving worker into a dense
// per-vertex slot.
type CombinedMessage[M any] struct {
	w       *engine.Worker
	codec   ser.Codec[M]
	combine Combiner[M]

	// sender-side combining: per destination worker, dst -> combined m
	out []map[graph.VertexID]M
	// receiver side: dense slot per local vertex, epoch-stamped with the
	// superstep whose exchange wrote it (readable in the next superstep).
	in stamped[M]
}

// NewCombinedMessage creates and registers a CombinedMessage channel.
func NewCombinedMessage[M any](w *engine.Worker, codec ser.Codec[M], combine Combiner[M]) *CombinedMessage[M] {
	c := &CombinedMessage[M]{w: w, codec: codec, combine: combine}
	w.Register(c)
	return c
}

// SendMessage sends m to vertex dst, combining with any message already
// staged for dst on this worker.
func (c *CombinedMessage[M]) SendMessage(dst graph.VertexID, m M) {
	o := c.w.Owner(dst)
	if old, ok := c.out[o][dst]; ok {
		c.out[o][dst] = c.combine(old, m)
	} else {
		c.out[o][dst] = m
	}
}

// Message returns the combined message delivered to local vertex li in
// the previous superstep, and whether any message arrived.
func (c *CombinedMessage[M]) Message(li int) (M, bool) {
	return c.in.get(li, int32(c.w.Superstep()-1))
}

// Initialize implements engine.Channel.
func (c *CombinedMessage[M]) Initialize() {
	c.out = make([]map[graph.VertexID]M, c.w.NumWorkers())
	for i := range c.out {
		c.out[i] = make(map[graph.VertexID]M)
	}
	c.in = newStamped[M](c.w.LocalCount())
}

// AfterCompute implements engine.Channel. Nothing to do: epoch stamps
// make old inbox slots stale automatically.
func (c *CombinedMessage[M]) AfterCompute() {}

// Serialize implements engine.Channel.
func (c *CombinedMessage[M]) Serialize(dst int, buf *ser.Buffer) {
	staged := c.out[dst]
	if len(staged) == 0 {
		return
	}
	buf.WriteUvarint(uint64(len(staged)))
	for id, m := range staged {
		buf.WriteUint32(id)
		c.codec.Encode(buf, m)
		delete(staged, id)
	}
}

// Deserialize implements engine.Channel.
func (c *CombinedMessage[M]) Deserialize(src int, buf *ser.Buffer) {
	n := int(buf.ReadUvarint())
	e := int32(c.w.Superstep())
	for i := 0; i < n; i++ {
		id := buf.ReadUint32()
		m := c.codec.Decode(buf)
		li := c.w.LocalIndex(id)
		if old, ok := c.in.get(li, e); ok {
			c.in.set(li, c.combine(old, m), e)
		} else {
			c.in.set(li, m, e)
		}
		c.w.ActivateLocal(li)
	}
}

// Again implements engine.Channel.
func (c *CombinedMessage[M]) Again() bool { return false }
