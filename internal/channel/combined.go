package channel

import (
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/ser"
)

// CombinedMessage is the standard combining message channel
// (paper Table I, middle column): messages to the same destination are
// merged with the user combiner, on the sending worker and again on the
// receiving worker into a dense per-vertex slot. Where the generic
// system of §V-B1 stages sender-side combining in a hash table, this
// implementation stages into dense per-destination-worker slots keyed
// by the remote vertex's local index, so both the send and the receive
// path are plain array indexing — no hashing anywhere per superstep.
type CombinedMessage[M any] struct {
	w       *engine.Worker
	codec   ser.Codec[M]
	combine Combiner[M]

	// sender-side combining: dense per-destination-worker slots
	out denseOut[M]
	// receiver side: dense slot per local vertex, epoch-stamped with the
	// superstep whose exchange wrote it (readable in the next superstep).
	in stamped[M]
}

// NewCombinedMessage creates and registers a CombinedMessage channel.
func NewCombinedMessage[M any](w *engine.Worker, codec ser.Codec[M], combine Combiner[M]) *CombinedMessage[M] {
	c := &CombinedMessage[M]{w: w, codec: codec, combine: combine}
	w.Register(c)
	return c
}

// SendMessage sends m to vertex dst, combining with any message already
// staged for dst on this worker. Transitional id-based entry point:
// per-edge loops should pass pre-resolved addresses to Send.
func (c *CombinedMessage[M]) SendMessage(dst graph.VertexID, m M) {
	c.Send(c.w.Addr(dst), m)
}

// Send sends m to the vertex at packed address a, combining with any
// message already staged for it on this worker.
func (c *CombinedMessage[M]) Send(a frag.Addr, m M) {
	c.out.stage(a.Worker(), a.Local(), m, c.combine)
}

// Message returns the combined message delivered to local vertex li in
// the previous superstep, and whether any message arrived.
func (c *CombinedMessage[M]) Message(li int) (M, bool) {
	return c.in.get(li, int32(c.w.Superstep()-1))
}

// Initialize implements engine.Channel.
func (c *CombinedMessage[M]) Initialize() {
	c.out = newDenseOut[M](c.w)
	c.in = newStamped[M](c.w.LocalCount())
}

// AfterCompute implements engine.Channel. Nothing to do: epoch stamps
// make old inbox slots stale automatically.
func (c *CombinedMessage[M]) AfterCompute() {}

// Serialize implements engine.Channel.
func (c *CombinedMessage[M]) Serialize(dst int, buf *ser.Buffer) {
	c.out.drain(dst, buf, c.codec)
}

// Deserialize implements engine.Channel.
func (c *CombinedMessage[M]) Deserialize(src int, buf *ser.Buffer) {
	n := int(buf.ReadUvarint())
	e := int32(c.w.Superstep())
	for i := 0; i < n; i++ {
		li := int(buf.ReadUvarint())
		m := c.codec.Decode(buf)
		if old, ok := c.in.get(li, e); ok {
			c.in.set(li, c.combine(old, m), e)
		} else {
			c.in.set(li, m, e)
		}
		c.w.ActivateLocal(li)
	}
}

// Again implements engine.Channel.
func (c *CombinedMessage[M]) Again() bool { return false }
