package channel

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/ser"
)

// Observer-seam overhead benchmarks: the same DirectMessage ring
// workload with the seam disabled (the pinned configuration — must cost
// nothing next to BenchmarkDirectMessageRing) and enabled (the price of
// a full per-superstep trace).

func benchRunObserved(b *testing.B, o obs.Observer, setup func(w *engine.Worker)) {
	b.Helper()
	part := partition.MustHash(microVertices, microWorkers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(engine.Config{Part: part, MaxSupersteps: 100, Observer: o}, setup); err != nil {
			b.Fatal(err)
		}
	}
}

func ringSetup(w *engine.Worker) {
	ch := NewDirectMessage[uint32](w, ser.Uint32Codec{})
	w.Compute = func(li int) {
		id := w.GlobalID(li)
		if w.Superstep() <= microSteps {
			ch.SendMessage((id+1)%microVertices, id)
		} else {
			w.VoteToHalt()
		}
	}
}

func BenchmarkTraceObserverOff(b *testing.B) {
	benchRunObserved(b, nil, ringSetup)
}

func BenchmarkTraceObserverOn(b *testing.B) {
	tr := obs.NewTrace(microWorkers)
	benchRunObserved(b, tr, ringSetup)
}
