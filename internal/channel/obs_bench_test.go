package channel

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/ser"
)

// Observer-seam overhead benchmarks: the same DirectMessage ring
// workload with the seam disabled (the pinned configuration — must cost
// nothing next to BenchmarkDirectMessageRing) and enabled (the price of
// a full per-superstep trace).

func benchRunObserved(b *testing.B, o obs.Observer, setup func(w *engine.Worker)) {
	b.Helper()
	part := partition.MustHash(microVertices, microWorkers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(engine.Config{Part: part, MaxSupersteps: 100, Observer: o}, setup); err != nil {
			b.Fatal(err)
		}
	}
}

func ringSetup(w *engine.Worker) {
	ch := NewDirectMessage[uint32](w, ser.Uint32Codec{})
	w.Compute = func(li int) {
		id := w.GlobalID(li)
		if w.Superstep() <= microSteps {
			ch.SendMessage((id+1)%microVertices, id)
		} else {
			w.VoteToHalt()
		}
	}
}

func BenchmarkTraceObserverOff(b *testing.B) {
	benchRunObserved(b, nil, ringSetup)
}

func BenchmarkTraceObserverOn(b *testing.B) {
	tr := obs.NewTrace(microWorkers)
	benchRunObserved(b, tr, ringSetup)
}

// Flow-matrix seam overhead: the same ring workload with the flow
// accumulator detached (pinned — a detached seam is one nil check per
// destination at flush time and must cost nothing next to
// BenchmarkDirectMessageRing) and attached (lock-free atomic adds on
// preallocated cells; still allocation-free).

func benchRunFlows(b *testing.B, flows *obs.FlowAccum, setup func(w *engine.Worker)) {
	b.Helper()
	part := partition.MustHash(microVertices, microWorkers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(engine.Config{Part: part, MaxSupersteps: 100, Flows: flows}, setup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowStatsOff(b *testing.B) {
	benchRunFlows(b, nil, ringSetup)
}

func BenchmarkFlowStatsOn(b *testing.B) {
	benchRunFlows(b, obs.NewFlowAccum(microWorkers), ringSetup)
}
