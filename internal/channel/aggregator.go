package channel

import (
	"repro/internal/engine"
	"repro/internal/ser"
)

// Aggregator is the global-communication channel (paper Table I, right
// column): vertices add values during a superstep, the values are
// reduced with the combiner, and the global result is readable by every
// vertex in the next superstep.
//
// It is implemented with two exchange rounds, exercising the channel
// mechanism's multi-round support (again()): round 1 gathers per-worker
// partials to worker 0, round 2 broadcasts the reduced result.
type Aggregator[M any] struct {
	w       *engine.Worker
	codec   ser.Codec[M]
	combine Combiner[M]
	zero    M

	curr    M    // partial being accumulated by this worker's vertices
	currSet bool // any Add this superstep
	result  M    // global result of the previous superstep
	round   int
	// worker 0 only: gathered partials
	gathered    M
	gatheredSet bool
}

// NewAggregator creates and registers an Aggregator channel. zero is the
// identity of combine and is the result when no vertex adds a value.
func NewAggregator[M any](w *engine.Worker, codec ser.Codec[M], combine Combiner[M], zero M) *Aggregator[M] {
	c := &Aggregator[M]{w: w, codec: codec, combine: combine, zero: zero, curr: zero, result: zero, gathered: zero}
	w.Register(c)
	return c
}

// Add contributes v to the aggregation of the current superstep.
func (c *Aggregator[M]) Add(v M) {
	if c.currSet {
		c.curr = c.combine(c.curr, v)
	} else {
		c.curr = v
		c.currSet = true
	}
}

// Result returns the aggregate of all values added in the previous
// superstep (zero if none).
func (c *Aggregator[M]) Result() M { return c.result }

// Initialize implements engine.Channel.
func (c *Aggregator[M]) Initialize() {}

// AfterCompute implements engine.Channel.
func (c *Aggregator[M]) AfterCompute() {
	c.round = 0
	c.gathered = c.zero
	c.gatheredSet = false
}

// Serialize implements engine.Channel.
func (c *Aggregator[M]) Serialize(dst int, buf *ser.Buffer) {
	switch c.round {
	case 0:
		// Gather: every worker sends its partial to worker 0 (loopback
		// for worker 0 itself).
		if dst == 0 && c.currSet {
			c.codec.Encode(buf, c.curr)
		}
	case 1:
		// Broadcast: worker 0 sends the reduced result everywhere.
		if c.w.WorkerID() == 0 {
			c.codec.Encode(buf, c.gathered)
		}
	}
}

// Deserialize implements engine.Channel.
func (c *Aggregator[M]) Deserialize(src int, buf *ser.Buffer) {
	switch c.round {
	case 0:
		v := c.codec.Decode(buf)
		if c.gatheredSet {
			c.gathered = c.combine(c.gathered, v)
		} else {
			c.gathered = v
			c.gatheredSet = true
		}
	case 1:
		c.result = c.codec.Decode(buf)
	}
}

// Again implements engine.Channel: request the broadcast round.
func (c *Aggregator[M]) Again() bool {
	c.round++
	if c.round == 1 {
		// reset the per-superstep partial; round 2 will deliver the result
		c.curr = c.zero
		c.currSet = false
		return true
	}
	return false
}
