package channel

import (
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/ser"
)

// Propagation is the optimized channel for propagation-based algorithms
// (paper §IV-C3, Fig. 7). Vertices register their adjacency and an
// initial value; the channel then propagates values along edges to a
// global fixpoint *within a single superstep*, using as many exchange
// rounds as needed: each worker runs a BFS-like traversal over its local
// subgraph to quiescence, ships the updates for remote vertices, applies
// incoming remote updates, and repeats. This is the simplified GAS model
// combined with block-level computation that the paper credits for the
// convergence speedup of WCC and Min-Label SCC (Tables V and VII) —
// without requiring the user to write a Blogel-style block program.
//
// The combiner h must be commutative and idempotent-friendly in the
// sense of the paper's model: the new vertex value is h(old, incoming),
// and propagation stops at vertices whose value did not change.
//
// Weighted edges are supported through an optional edge transform
// f(value, weight) applied before combining (the full model of Fig. 7;
// the paper's Table II shows the simplified unweighted API).
type Propagation[M comparable] struct {
	w         *engine.Worker
	codec     ser.Codec[M]
	combine   Combiner[M]
	transform func(m M, weight int32) M // nil for unweighted

	// local adjacency, built from AddEdge/AddAddr during superstep 1 or
	// adopted wholesale from the worker's fragment (UseFragment): a CSR
	// over local vertices whose entries are packed pre-resolved
	// addresses, so staging a remote update and applying an incoming one
	// are both plain array indexing — the global graph and partition are
	// never consulted.
	building []propEdge
	prepared bool
	offsets  []int32
	adj      []frag.Addr // packed (owner, local) destination addresses
	adjW     []int32     // parallel weights; nil when unweighted

	val    []M
	hasVal []bool
	queued []bool
	queue  []int32
	head   int // FIFO cursor into queue
	// staged remote updates: dense per-destination-worker slots
	remote denseOut[M]

	propagatedThisRound bool
	finalEpoch          int32 // superstep whose propagation has converged

	// blockCentric restricts the channel to one exchange round per
	// superstep. Pending work carries over to the next superstep's local
	// traversal, which makes the channel behave like a Blogel block
	// program: one cross-worker hop per superstep, block-local
	// propagation in between. Used by the Blogel baseline of Table V.
	blockCentric bool
}

type propEdge struct {
	addr frag.Addr // pre-resolved (owner, local) destination address
	src  int32
	w    int32
}

// NewPropagation creates and registers an unweighted Propagation channel.
func NewPropagation[M comparable](w *engine.Worker, codec ser.Codec[M], combine Combiner[M]) *Propagation[M] {
	c := &Propagation[M]{w: w, codec: codec, combine: combine}
	w.Register(c)
	return c
}

// NewWeightedPropagation creates a Propagation channel whose values are
// transformed by f(value, edgeWeight) when crossing an edge (e.g.
// distance + weight for SSSP-style propagation).
func NewWeightedPropagation[M comparable](w *engine.Worker, codec ser.Codec[M], combine Combiner[M], f func(m M, weight int32) M) *Propagation[M] {
	c := &Propagation[M]{w: w, codec: codec, combine: combine, transform: f}
	w.Register(c)
	return c
}

// NewBlockPropagation creates a Propagation channel in block-centric
// mode: exactly one exchange round per superstep, so values advance one
// cross-worker hop per superstep with worker-local propagation in
// between — the behaviour of a Blogel block program, used as the Blogel
// baseline in the Table V reproduction.
func NewBlockPropagation[M comparable](w *engine.Worker, codec ser.Codec[M], combine Combiner[M]) *Propagation[M] {
	c := &Propagation[M]{w: w, codec: codec, combine: combine, blockCentric: true}
	w.Register(c)
	return c
}

// AddEdge registers an outgoing edge of the vertex currently computing.
// Transitional id-based entry point; AddAddr takes the pre-resolved
// address directly.
func (c *Propagation[M]) AddEdge(dst graph.VertexID) { c.AddWeightedEdge(dst, 0) }

// AddWeightedEdge registers an outgoing weighted edge of the vertex
// currently computing.
func (c *Propagation[M]) AddWeightedEdge(dst graph.VertexID, weight int32) {
	c.AddWeightedAddr(c.w.Addr(dst), weight)
}

// AddAddr registers an outgoing edge of the vertex currently computing
// by its packed destination address.
func (c *Propagation[M]) AddAddr(a frag.Addr) { c.AddWeightedAddr(a, 0) }

// UseFragment adopts the worker's entire pre-resolved fragment
// adjacency as the propagation topology — the whole-graph case of WCC
// and SSSP — skipping per-edge registration and its staging
// allocations entirely. Call it once per worker (e.g. from the first
// compute call of superstep 1) instead of AddAddr loops; a weighted
// transform requires a weighted fragment.
func (c *Propagation[M]) UseFragment(f *frag.Fragment) {
	if c.prepared {
		panic("channel: Propagation.UseFragment after first propagation")
	}
	n := f.LocalCount()
	c.offsets = make([]int32, n+1)
	edges := int32(0)
	for li := 0; li < n; li++ {
		edges += int32(f.OutDegree(li))
		c.offsets[li+1] = edges
	}
	c.adj = f.Adj()         // zero-copy: packed addresses are the wire layout
	c.adjW = f.AllWeights() // nil when unweighted
	c.building = nil
	c.prepared = true
}

// AddWeightedAddr registers an outgoing weighted edge of the vertex
// currently computing by its packed destination address.
func (c *Propagation[M]) AddWeightedAddr(a frag.Addr, weight int32) {
	if c.prepared {
		panic("channel: Propagation edge registration after first propagation")
	}
	c.building = append(c.building, propEdge{src: int32(c.w.CurrentLocal()), addr: a, w: weight})
}

// SetValue sets the current vertex's value and marks it as a propagation
// seed for this superstep (paper: set_value(m)).
func (c *Propagation[M]) SetValue(m M) {
	li := c.w.CurrentLocal()
	c.val[li] = m
	c.hasVal[li] = true
	if !c.queued[li] {
		c.queued[li] = true
		c.queue = append(c.queue, int32(li))
	}
}

// Value returns local vertex li's converged value after the propagation
// of the previous superstep (paper: get_value()).
func (c *Propagation[M]) Value(li int) (M, bool) {
	if c.finalEpoch != int32(c.w.Superstep()-1) || !c.hasVal[li] {
		var zero M
		return zero, false
	}
	return c.val[li], true
}

// Initialize implements engine.Channel.
func (c *Propagation[M]) Initialize() {
	n := c.w.LocalCount()
	c.val = make([]M, n)
	c.hasVal = make([]bool, n)
	c.queued = make([]bool, n)
	c.remote = newDenseOut[M](c.w)
	c.finalEpoch = -1
}

func (c *Propagation[M]) prepare() {
	n := c.w.LocalCount()
	c.offsets = make([]int32, n+1)
	for _, e := range c.building {
		c.offsets[e.src+1]++
	}
	for i := 1; i <= n; i++ {
		c.offsets[i] += c.offsets[i-1]
	}
	cursor := make([]int32, n)
	copy(cursor, c.offsets[:n])
	c.adj = make([]frag.Addr, len(c.building))
	c.adjW = make([]int32, len(c.building))
	for _, e := range c.building {
		p := cursor[e.src]
		cursor[e.src]++
		c.adj[p] = e.addr
		c.adjW[p] = e.w
	}
	c.building = nil
	c.prepared = true
}

// AfterCompute implements engine.Channel.
func (c *Propagation[M]) AfterCompute() {
	if !c.prepared && len(c.building) > 0 {
		c.prepare()
	}
	c.propagatedThisRound = false
}

// apply combines an incoming value into dst vertex li; if the value
// changed, li is (re)enqueued and activated for the next superstep.
func (c *Propagation[M]) apply(li int32, m M) {
	changed := false
	if !c.hasVal[li] {
		c.val[li] = m
		c.hasVal[li] = true
		changed = true
	} else {
		nv := c.combine(c.val[li], m)
		if nv != c.val[li] {
			c.val[li] = nv
			changed = true
		}
	}
	if changed {
		c.w.ActivateLocal(int(li))
		if !c.queued[li] {
			c.queued[li] = true
			c.queue = append(c.queue, li)
		}
	}
}

// propagateLocal drains the queue, pushing values along local edges
// directly and staging remote updates — the worker-local BFS-like
// traversal of Fig. 7.
func (c *Propagation[M]) propagateLocal() {
	if !c.prepared {
		c.queue = c.queue[:0]
		c.head = 0
		return
	}
	me := c.w.WorkerID()
	// FIFO order: the BFS-like traversal of Fig. 7. (A LIFO stack is
	// dramatically slower here — label-correcting with a stack revisits
	// vertices pathologically often on low-diameter graphs.)
	for c.head < len(c.queue) {
		li := c.queue[c.head]
		c.head++
		if c.head > 1024 && c.head*2 >= len(c.queue) {
			n := copy(c.queue, c.queue[c.head:])
			c.queue = c.queue[:n]
			c.head = 0
		}
		c.queued[li] = false
		v := c.val[li]
		for p := c.offsets[li]; p < c.offsets[li+1]; p++ {
			a := c.adj[p]
			m := v
			if c.transform != nil {
				m = c.transform(v, c.adjW[p])
			}
			if a.Worker() == me {
				c.apply(int32(a.Local()), m)
			} else {
				c.remote.stage(a.Worker(), a.Local(), m, c.combine)
			}
		}
	}
}

// Serialize implements engine.Channel: on the first call of each round,
// run local propagation to quiescence, then ship the staged remote
// updates for dst.
func (c *Propagation[M]) Serialize(dst int, buf *ser.Buffer) {
	if !c.propagatedThisRound {
		c.propagateLocal()
		c.propagatedThisRound = true
	}
	c.remote.drain(dst, buf, c.codec)
}

// Deserialize implements engine.Channel: apply remote updates, which may
// refill the queue.
func (c *Propagation[M]) Deserialize(src int, buf *ser.Buffer) {
	n := int(buf.ReadUvarint())
	for i := 0; i < n; i++ {
		li := int32(buf.ReadUvarint())
		m := c.codec.Decode(buf)
		c.apply(li, m)
	}
}

// Again implements engine.Channel: another round is needed while this
// worker has pending local work (which will also produce new remote
// updates). When every worker's queue is empty the engine ends the
// rounds and the propagation has globally converged. In block-centric
// mode the channel never asks for extra rounds; pending work waits for
// the next superstep.
func (c *Propagation[M]) Again() bool {
	if c.blockCentric {
		return false
	}
	if len(c.queue) > c.head {
		c.propagatedThisRound = false
		return true
	}
	c.finalEpoch = int32(c.w.Superstep())
	return false
}

// Reset clears the channel's topology and values so it can be reused
// for a fresh propagation with a different edge set (e.g. one Min-Label
// SCC round per reuse). Reset touches only worker-local state, so
// workers need not call it in lockstep — a worker with no remaining
// vertices may skip it. It must not be called while a propagation is in
// flight (i.e. only during a compute phase).
func (c *Propagation[M]) Reset() {
	c.building = c.building[:0]
	c.prepared = false
	c.offsets = nil
	c.adj = nil
	c.adjW = nil
	for i := range c.hasVal {
		c.hasVal[i] = false
		c.queued[i] = false
	}
	c.queue = c.queue[:0]
	c.head = 0
	c.finalEpoch = -1
}

// RawValue returns local vertex li's current value regardless of
// convergence state. Block-centric users (and post-run collection) read
// values through this accessor because the single-superstep convergence
// contract of Value does not apply to them.
func (c *Propagation[M]) RawValue(li int) (M, bool) {
	if !c.hasVal[li] {
		var zero M
		return zero, false
	}
	return c.val[li], true
}
