package channel

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/ser"
)

func TestMirrorStarBroadcast(t *testing.T) {
	// hub 0 with 15 leaves across 4 workers; threshold 4 makes it a hub
	const n = 16
	got := make([]uint32, n)
	has := make([]bool, n)
	runJob(t, n, 4, func(w *engine.Worker) {
		mr := NewMirror[uint32](w, ser.Uint32Codec{}, sumU32, 4)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				if id == 0 {
					for v := graph.VertexID(1); v < n; v++ {
						mr.AddEdge(v)
					}
				}
			case 2:
				if id == 0 {
					mr.SetMessage(77)
				}
			case 3:
				got[id], has[id] = mr.Message(li)
				w.VoteToHalt()
			}
		}
	})
	for k := 1; k < n; k++ {
		if !has[k] || got[k] != 77 {
			t.Errorf("leaf %d: got %d has=%v", k, got[k], has[k])
		}
	}
	if has[0] {
		t.Errorf("hub received its own broadcast")
	}
}

func TestMirrorSameSuperstepRegistrationAndSend(t *testing.T) {
	// SetMessage in the registration superstep must still deliver
	// (via the post-handshake extra round)
	const n = 12
	got := make([]uint32, n)
	runJob(t, n, 3, func(w *engine.Worker) {
		mr := NewMirror[uint32](w, ser.Uint32Codec{}, sumU32, 2)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				mr.AddEdge((id + 1) % n)
				mr.AddEdge((id + 2) % n)
				mr.SetMessage(id)
			case 2:
				if v, ok := mr.Message(li); ok {
					got[id] = v
				}
				w.VoteToHalt()
			}
		}
	})
	for k := 0; k < n; k++ {
		want := uint32((k+n-1)%n + (k+n-2)%n)
		if got[k] != want {
			t.Errorf("vertex %d: got %d want %d", k, got[k], want)
		}
	}
}

func TestMirrorLowDegreeFallback(t *testing.T) {
	// all vertices below threshold: behaves like a combined broadcast
	const n = 8
	got := make([]uint32, n)
	runJob(t, n, 2, func(w *engine.Worker) {
		mr := NewMirror[uint32](w, ser.Uint32Codec{}, sumU32, 100)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				mr.AddEdge((id + 1) % n)
			case 2:
				mr.SetMessage(10 + id)
			case 3:
				got[id], _ = mr.Message(li)
				w.VoteToHalt()
			}
		}
	})
	for k := 0; k < n; k++ {
		want := uint32(10 + (k+n-1)%n)
		if got[k] != want {
			t.Errorf("vertex %d: got %d want %d", k, got[k], want)
		}
	}
}

func TestMirrorReducesHubBytes(t *testing.T) {
	// a hub fanning out to every vertex: mirror sends one message per
	// worker; per-edge sends transmit one per neighbor
	const n = 64
	part := partition.MustHash(n, 4)
	run := func(threshold int) int64 {
		met, err := engine.Run(engine.Config{Part: part, MaxSupersteps: 20}, func(w *engine.Worker) {
			mr := NewMirror[uint32](w, ser.Uint32Codec{}, sumU32, threshold)
			w.Compute = func(li int) {
				id := w.GlobalID(li)
				switch w.Superstep() {
				case 1:
					if id == 0 {
						for v := graph.VertexID(1); v < n; v++ {
							mr.AddEdge(v)
						}
					}
				case 2, 3, 4:
					if id == 0 {
						mr.SetMessage(id)
					}
				default:
					w.VoteToHalt()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return met.Comm.NetworkBytes
	}
	mirrored := run(4)     // hub qualifies
	perEdge := run(10_000) // nothing qualifies
	if mirrored >= perEdge {
		t.Errorf("mirror bytes %d >= per-edge bytes %d", mirrored, perEdge)
	}
}

func TestMirrorComposesWithOtherChannels(t *testing.T) {
	// the Pregel+ limitation the Mirror channel lifts: mirroring and
	// request-respond in one program
	const n = 12
	runJob(t, n, 3, func(w *engine.Worker) {
		vals := make([]uint32, w.LocalCount())
		mr := NewMirror[uint32](w, ser.Uint32Codec{}, sumU32, 2)
		rr := NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 { return vals[li] })
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				vals[li] = id * 2
				mr.AddEdge((id + 1) % n)
				mr.AddEdge((id + 2) % n)
				mr.SetMessage(1)
				rr.AddRequest((id + 5) % n)
			case 2:
				if v, ok := mr.Message(li); !ok || v != 2 {
					t.Errorf("vertex %d: mirror sum %d ok=%v", id, v, ok)
				}
				if v, ok := rr.Respond(); !ok || v != uint32((id+5)%n)*2 {
					t.Errorf("vertex %d: respond %d ok=%v", id, v, ok)
				}
				w.VoteToHalt()
			}
		}
	})
}
