package channel

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ser"
)

// ScatterCombine is the optimized channel for the static messaging
// pattern (paper §IV-C1, Fig. 5): every vertex sends one value to all of
// its registered neighbors each superstep, and the receiver needs only
// the combined value. The edge list is sorted by destination once, at
// initialization; from then on each superstep produces the combined
// per-destination messages with a single linear scan — no hashing, no
// per-message routing, and vertex identifiers are transmitted once per
// unique destination instead of once per edge (the source of both the
// 3x runtime gain and the message-size reduction in Table V).
type ScatterCombine[M any] struct {
	w       *engine.Worker
	codec   ser.Codec[M]
	combine Combiner[M]

	// edge registration (superstep 1): (src local index, dst id)
	edges    []scEdge
	prepared bool
	// after preparation: edges sorted by (owner(dst), dst, src); seg[d]
	// is the subrange destined to worker d.
	segStart []int
	segEnd   []int

	// per-superstep source values, epoch-stamped by SetMessage
	srcVal stamped[M]
	// setEpoch is the superstep of the latest SetMessage; supersteps in
	// which no local vertex scatters skip the edge scan entirely (in a
	// multi-phase algorithm like S-V most supersteps do not scatter).
	setEpoch int32
	// receiver side: dense slot per local vertex
	in stamped[M]
}

type scEdge struct {
	owner int
	dst   graph.VertexID
	src   int32 // local index of the source vertex
}

// NewScatterCombine creates and registers a ScatterCombine channel.
func NewScatterCombine[M any](w *engine.Worker, codec ser.Codec[M], combine Combiner[M]) *ScatterCombine[M] {
	c := &ScatterCombine[M]{w: w, codec: codec, combine: combine}
	w.Register(c)
	return c
}

// AddEdge registers an outgoing edge of the vertex currently computing
// (paper: add_edge(dst)). All edges must be added before the first
// superstep in which SetMessage is called; adding later panics.
func (c *ScatterCombine[M]) AddEdge(dst graph.VertexID) {
	if c.prepared {
		panic("channel: ScatterCombine.AddEdge after first send")
	}
	c.edges = append(c.edges, scEdge{owner: c.w.Owner(dst), dst: dst, src: int32(c.w.CurrentLocal())})
}

// SetMessage sets the value the current vertex scatters to all its
// registered neighbors this superstep. A vertex that does not call
// SetMessage sends nothing.
func (c *ScatterCombine[M]) SetMessage(m M) {
	c.setEpoch = int32(c.w.Superstep())
	c.srcVal.set(c.w.CurrentLocal(), m, c.setEpoch)
}

// Message returns the combined value delivered to local vertex li in the
// previous superstep.
func (c *ScatterCombine[M]) Message(li int) (M, bool) {
	return c.in.get(li, int32(c.w.Superstep()-1))
}

// Initialize implements engine.Channel.
func (c *ScatterCombine[M]) Initialize() {
	c.srcVal = newStamped[M](c.w.LocalCount())
	c.in = newStamped[M](c.w.LocalCount())
}

// prepare sorts the registered edges by (destination worker,
// destination) and records the per-worker segments — the
// pre-calculation of Fig. 5. The sort is a 3-pass LSD radix (two
// 16-bit digits of dst, then owner), which is what keeps the one-time
// preprocessing cheap relative to a comparison sort.
func (c *ScatterCombine[M]) prepare() {
	radixSortEdges(c.edges)
	m := c.w.NumWorkers()
	c.segStart = make([]int, m)
	c.segEnd = make([]int, m)
	i := 0
	for d := 0; d < m; d++ {
		c.segStart[d] = i
		for i < len(c.edges) && c.edges[i].owner == d {
			i++
		}
		c.segEnd[d] = i
	}
	c.prepared = true
}

// radixSortEdges sorts edges by (owner, dst) with a stable LSD radix
// sort: low 16 bits of dst, high 16 bits of dst, then owner.
func radixSortEdges(edges []scEdge) {
	if len(edges) < 2 {
		return
	}
	buf := make([]scEdge, len(edges))
	pass := func(src, dst []scEdge, key func(e scEdge) int, buckets int) {
		count := make([]int, buckets+1)
		for _, e := range src {
			count[key(e)+1]++
		}
		for i := 1; i <= buckets; i++ {
			count[i] += count[i-1]
		}
		for _, e := range src {
			k := key(e)
			dst[count[k]] = e
			count[k]++
		}
	}
	pass(edges, buf, func(e scEdge) int { return int(e.dst & 0xFFFF) }, 1<<16)
	pass(buf, edges, func(e scEdge) int { return int(e.dst >> 16) }, 1<<16)
	maxOwner := 0
	for _, e := range edges {
		if e.owner > maxOwner {
			maxOwner = e.owner
		}
	}
	pass(edges, buf, func(e scEdge) int { return e.owner }, maxOwner+1)
	copy(edges, buf)
}

// AfterCompute implements engine.Channel.
func (c *ScatterCombine[M]) AfterCompute() {
	if !c.prepared && len(c.edges) > 0 {
		c.prepare()
	}
}

// Serialize implements engine.Channel: one linear scan of the sorted
// segment for dst, combining runs of equal destination on the fly.
func (c *ScatterCombine[M]) Serialize(dst int, buf *ser.Buffer) {
	e := int32(c.w.Superstep())
	if !c.prepared || c.setEpoch != e {
		return
	}
	i, end := c.segStart[dst], c.segEnd[dst]
	countPos := -1
	count := uint32(0)
	for i < end {
		d := c.edges[i].dst
		var acc M
		have := false
		for ; i < end && c.edges[i].dst == d; i++ {
			v, ok := c.srcVal.get(int(c.edges[i].src), e)
			if !ok {
				continue
			}
			if have {
				acc = c.combine(acc, v)
			} else {
				acc, have = v, true
			}
		}
		if !have {
			continue
		}
		if countPos < 0 {
			countPos = buf.Len()
			buf.WriteUint32(0) // patched below
		}
		buf.WriteUvarint(uint64(c.w.LocalIndex(d)))
		c.codec.Encode(buf, acc)
		count++
	}
	if countPos >= 0 {
		buf.PatchUint32(countPos, count)
	}
}

// Deserialize implements engine.Channel.
func (c *ScatterCombine[M]) Deserialize(src int, buf *ser.Buffer) {
	n := int(buf.ReadUint32())
	e := int32(c.w.Superstep())
	for i := 0; i < n; i++ {
		li := int(buf.ReadUvarint())
		m := c.codec.Decode(buf)
		if old, ok := c.in.get(li, e); ok {
			c.in.set(li, c.combine(old, m), e)
		} else {
			c.in.set(li, m, e)
		}
		c.w.ActivateLocal(li)
	}
}

// Again implements engine.Channel.
func (c *ScatterCombine[M]) Again() bool { return false }
