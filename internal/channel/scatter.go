package channel

import (
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/ser"
)

// ScatterCombine is the optimized channel for the static messaging
// pattern (paper §IV-C1, Fig. 5): every vertex sends one value to all of
// its registered neighbors each superstep, and the receiver needs only
// the combined value. The edge list is sorted by destination once, at
// initialization; from then on each superstep produces the combined
// per-destination messages with a single linear scan — no hashing, no
// per-message routing, and vertex identifiers are transmitted once per
// unique destination instead of once per edge (the source of both the
// 3x runtime gain and the message-size reduction in Table V).
type ScatterCombine[M any] struct {
	w       *engine.Worker
	codec   ser.Codec[M]
	combine Combiner[M]

	// edge registration (superstep 1): (src local index, packed dst addr)
	edges    []scEdge
	prepared bool
	// after preparation: edges sorted by packed address, i.e. by
	// (dst worker, dst local index); seg[d] is the subrange destined to
	// worker d.
	segStart []int
	segEnd   []int

	// per-superstep source values, epoch-stamped by SetMessage
	srcVal stamped[M]
	// setEpoch is the superstep of the latest SetMessage; supersteps in
	// which no local vertex scatters skip the edge scan entirely (in a
	// multi-phase algorithm like S-V most supersteps do not scatter).
	setEpoch int32
	// receiver side: dense slot per local vertex
	in stamped[M]
}

type scEdge struct {
	addr frag.Addr // pre-resolved (owner, local) destination address
	src  int32     // local index of the source vertex
}

// NewScatterCombine creates and registers a ScatterCombine channel.
func NewScatterCombine[M any](w *engine.Worker, codec ser.Codec[M], combine Combiner[M]) *ScatterCombine[M] {
	c := &ScatterCombine[M]{w: w, codec: codec, combine: combine}
	w.Register(c)
	return c
}

// AddEdge registers an outgoing edge of the vertex currently computing
// (paper: add_edge(dst)). All edges must be added before the first
// superstep in which SetMessage is called; adding later panics.
// Transitional id-based entry point; AddAddr takes the pre-resolved
// address directly.
func (c *ScatterCombine[M]) AddEdge(dst graph.VertexID) {
	c.AddAddr(c.w.Addr(dst))
}

// AddAddr registers an outgoing edge of the vertex currently computing
// by its packed destination address (typically straight out of
// Frag().Neighbors).
func (c *ScatterCombine[M]) AddAddr(a frag.Addr) {
	if c.prepared {
		panic("channel: ScatterCombine edge registration after first send")
	}
	c.edges = append(c.edges, scEdge{addr: a, src: int32(c.w.CurrentLocal())})
}

// Grow pre-allocates registration capacity for n more edges (e.g.
// Frag().NumEdges() once per worker before the AddAddr loops), avoiding
// append growth during registration.
func (c *ScatterCombine[M]) Grow(n int) {
	if free := cap(c.edges) - len(c.edges); free < n {
		grown := make([]scEdge, len(c.edges), len(c.edges)+n)
		copy(grown, c.edges)
		c.edges = grown
	}
}

// SetMessage sets the value the current vertex scatters to all its
// registered neighbors this superstep. A vertex that does not call
// SetMessage sends nothing.
func (c *ScatterCombine[M]) SetMessage(m M) {
	c.setEpoch = int32(c.w.Superstep())
	c.srcVal.set(c.w.CurrentLocal(), m, c.setEpoch)
}

// Message returns the combined value delivered to local vertex li in the
// previous superstep.
func (c *ScatterCombine[M]) Message(li int) (M, bool) {
	return c.in.get(li, int32(c.w.Superstep()-1))
}

// Initialize implements engine.Channel.
func (c *ScatterCombine[M]) Initialize() {
	c.srcVal = newStamped[M](c.w.LocalCount())
	c.in = newStamped[M](c.w.LocalCount())
}

// prepare sorts the registered edges by packed address — which is
// exactly (destination worker, destination local index) order — and
// records the per-worker segments: the pre-calculation of Fig. 5. The
// sort is a 3-pass LSD radix over the 48 significant address bits,
// which is what keeps the one-time preprocessing cheap relative to a
// comparison sort.
func (c *ScatterCombine[M]) prepare() {
	radixSortEdges(c.edges)
	m := c.w.NumWorkers()
	c.segStart = make([]int, m)
	c.segEnd = make([]int, m)
	i := 0
	for d := 0; d < m; d++ {
		c.segStart[d] = i
		for i < len(c.edges) && c.edges[i].addr.Worker() == d {
			i++
		}
		c.segEnd[d] = i
	}
	c.prepared = true
}

// radixSortEdges sorts edges by raw packed address with a stable LSD
// radix sort over 16-bit digits (local low, local high, worker). Each
// pass's bucket array is sized by the digit values actually present:
// local indices are dense per worker, so the high local digit vanishes
// below 65536 locals and the worker digit needs only maxWorker+1
// buckets — the common case pays two small passes, not three 65536-way
// ones.
func radixSortEdges(edges []scEdge) {
	if len(edges) < 2 {
		return
	}
	var maxLocal uint32
	maxWorker := 0
	for _, e := range edges {
		if l := e.addr.Local(); l > maxLocal {
			maxLocal = l
		}
		if w := e.addr.Worker(); w > maxWorker {
			maxWorker = w
		}
	}
	buf := make([]scEdge, len(edges))
	src, dst := edges, buf
	pass := func(shift uint, buckets int) {
		count := make([]int, buckets+1)
		for _, e := range src {
			count[((e.addr>>shift)&0xFFFF)+1]++
		}
		for i := 1; i <= buckets; i++ {
			count[i] += count[i-1]
		}
		for _, e := range src {
			k := (e.addr >> shift) & 0xFFFF
			dst[count[k]] = e
			count[k]++
		}
		src, dst = dst, src
	}
	low := int(maxLocal)
	if low > 0xFFFF {
		low = 0xFFFF
	}
	pass(0, low+1)
	if maxLocal >= 1<<16 {
		pass(16, int(maxLocal>>16)+1)
	}
	if maxWorker > 0 {
		pass(32, maxWorker+1)
	}
	if &src[0] != &edges[0] {
		copy(edges, src)
	}
}

// AfterCompute implements engine.Channel.
func (c *ScatterCombine[M]) AfterCompute() {
	if !c.prepared && len(c.edges) > 0 {
		c.prepare()
	}
}

// Serialize implements engine.Channel: one linear scan of the sorted
// segment for dst, combining runs of equal destination on the fly. The
// wire local index is read straight off the packed address — no
// partition lookup anywhere in the scan.
func (c *ScatterCombine[M]) Serialize(dst int, buf *ser.Buffer) {
	e := int32(c.w.Superstep())
	if !c.prepared || c.setEpoch != e {
		return
	}
	i, end := c.segStart[dst], c.segEnd[dst]
	countPos := -1
	count := uint32(0)
	for i < end {
		d := c.edges[i].addr
		var acc M
		have := false
		for ; i < end && c.edges[i].addr == d; i++ {
			v, ok := c.srcVal.get(int(c.edges[i].src), e)
			if !ok {
				continue
			}
			if have {
				acc = c.combine(acc, v)
			} else {
				acc, have = v, true
			}
		}
		if !have {
			continue
		}
		if countPos < 0 {
			countPos = buf.Len()
			buf.WriteUint32(0) // patched below
		}
		buf.WriteUvarint(uint64(d.Local()))
		c.codec.Encode(buf, acc)
		count++
	}
	if countPos >= 0 {
		buf.PatchUint32(countPos, count)
	}
}

// Deserialize implements engine.Channel.
func (c *ScatterCombine[M]) Deserialize(src int, buf *ser.Buffer) {
	n := int(buf.ReadUint32())
	e := int32(c.w.Superstep())
	for i := 0; i < n; i++ {
		li := int(buf.ReadUvarint())
		m := c.codec.Decode(buf)
		if old, ok := c.in.get(li, e); ok {
			c.in.set(li, c.combine(old, m), e)
		} else {
			c.in.set(li, m, e)
		}
		c.w.ActivateLocal(li)
	}
}

// Again implements engine.Channel.
func (c *ScatterCombine[M]) Again() bool { return false }
