package channel

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/ser"
)

// RequestRespond is the optimized channel for the request-respond
// conversation pattern (paper §IV-C2, Fig. 6): in one superstep a vertex
// requests an attribute of any other vertex, and in the next superstep
// the value is available. Two optimizations from the paper are
// implemented:
//
//   - requests to the same destination are deduplicated per worker
//     (sorted unique ID list), which removes the load imbalance caused by
//     high-degree vertices in the respond phase;
//   - the responder replies with a bare value list in exactly the order
//     of the request list, omitting the vertex IDs Pregel+ retransmits —
//     the "particular trick" of §V-B2 behind the constant 33% reply-size
//     reduction.
//
// The conversation takes two exchange rounds inside one superstep:
// requests travel in round 1, responses in round 2.
type RequestRespond[R any] struct {
	w       *engine.Worker
	codec   ser.Codec[R]
	respond func(li int) R

	// requester side. staging receives AddRequest calls during compute;
	// AfterCompute dedups it into pending, which stays alive through the
	// next superstep's compute so Respond can match values to requests.
	// Requests are held as packed addresses: dedup order, the wire
	// encoding (the responder-side local index) and the response lookup
	// all come straight off the address.
	reqOf     stamped[frag.Addr] // per local vertex: the addr it asked for
	staging   [][]frag.Addr      // per owner worker: raw requests this superstep
	pending   [][]frag.Addr      // per owner worker: sorted unique requests sent
	resp      [][]R              // per owner worker: values aligned with pending
	gotResp   []bool
	respEpoch int32 // superstep whose responses are stored

	// responder side: request lists received in round 1, per source
	// worker, as local indices (the wire ships dense local indices)
	asked [][]int32

	round       int
	sentReq     bool
	receivedReq bool
}

// NewRequestRespond creates and registers a RequestRespond channel.
// respond produces the response value from the local index of a
// requested vertex (paper: function<RespT(VertexT)> — the closure
// captures the algorithm's vertex state).
func NewRequestRespond[R any](w *engine.Worker, codec ser.Codec[R], respond func(li int) R) *RequestRespond[R] {
	c := &RequestRespond[R]{w: w, codec: codec, respond: respond}
	w.Register(c)
	return c
}

// AddRequest asks for the attribute of vertex dst on behalf of the
// vertex currently computing (paper: add_request(dst)). The response is
// available via Respond in the next superstep. A vertex may request at
// most one destination per superstep (as in the paper's API, where the
// respond value is keyed by the requester).
func (c *RequestRespond[R]) AddRequest(dst graph.VertexID) {
	c.Request(c.w.Addr(dst))
}

// Request is AddRequest by packed address, for callers that already
// hold the destination pre-resolved.
func (c *RequestRespond[R]) Request(a frag.Addr) {
	li := c.w.CurrentLocal()
	c.reqOf.set(li, a, int32(c.w.Superstep()))
	c.staging[a.Worker()] = append(c.staging[a.Worker()], a)
}

// Respond returns the value for the destination the current vertex
// requested in the previous superstep.
func (c *RequestRespond[R]) Respond() (R, bool) {
	li := c.w.CurrentLocal()
	a, ok := c.reqOf.get(li, int32(c.w.Superstep()-1))
	if !ok {
		var zero R
		return zero, false
	}
	return c.RespondAt(a)
}

// RespondFor returns the response value for an explicitly named
// destination requested in the previous superstep by any vertex of this
// worker. It lets several vertices share one deduplicated request.
func (c *RequestRespond[R]) RespondFor(dst graph.VertexID) (R, bool) {
	return c.RespondAt(c.w.Addr(dst))
}

// RespondAt is RespondFor by packed address.
func (c *RequestRespond[R]) RespondAt(a frag.Addr) (R, bool) {
	var zero R
	if c.respEpoch != int32(c.w.Superstep()-1) {
		return zero, false
	}
	o := a.Worker()
	lst := c.pending[o]
	if !c.gotResp[o] {
		return zero, false
	}
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= a })
	if i >= len(lst) || lst[i] != a {
		return zero, false
	}
	return c.resp[o][i], true
}

// Initialize implements engine.Channel.
func (c *RequestRespond[R]) Initialize() {
	m := c.w.NumWorkers()
	c.reqOf = newStamped[frag.Addr](c.w.LocalCount())
	c.staging = make([][]frag.Addr, m)
	c.pending = make([][]frag.Addr, m)
	c.resp = make([][]R, m)
	c.gotResp = make([]bool, m)
	c.asked = make([][]int32, m)
	c.respEpoch = -1
}

// AfterCompute implements engine.Channel: retire the previous
// superstep's request/response state (the vertices consumed it during
// compute) and deduplicate this superstep's requests.
func (c *RequestRespond[R]) AfterCompute() {
	c.round = 0
	c.sentReq = false
	c.receivedReq = false
	for o := range c.staging {
		c.resp[o] = c.resp[o][:0]
		c.gotResp[o] = false
		c.asked[o] = c.asked[o][:0]
		// swap generations, reusing backing arrays
		c.pending[o], c.staging[o] = c.staging[o], c.pending[o][:0]
		lst := c.pending[o]
		if len(lst) == 0 {
			continue
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		// dedup in place
		k := 1
		for i := 1; i < len(lst); i++ {
			if lst[i] != lst[i-1] {
				lst[k] = lst[i]
				k++
			}
		}
		c.pending[o] = lst[:k]
		c.sentReq = true
	}
}

// Serialize implements engine.Channel.
func (c *RequestRespond[R]) Serialize(dst int, buf *ser.Buffer) {
	switch c.round {
	case 0:
		// request phase: send the deduplicated list as local indices on
		// the responder, read straight off the packed addresses
		lst := c.pending[dst]
		if len(lst) == 0 {
			return
		}
		buf.WriteUvarint(uint64(len(lst)))
		for _, a := range lst {
			buf.WriteUvarint(uint64(a.Local()))
		}
	case 1:
		// respond phase: bare values, in the order of the request list
		lis := c.asked[dst]
		if len(lis) == 0 {
			return
		}
		buf.WriteUvarint(uint64(len(lis)))
		for _, li := range lis {
			c.codec.Encode(buf, c.respond(int(li)))
		}
	}
}

// Deserialize implements engine.Channel.
func (c *RequestRespond[R]) Deserialize(src int, buf *ser.Buffer) {
	n := int(buf.ReadUvarint())
	switch c.round {
	case 0:
		lis := c.asked[src][:0]
		for i := 0; i < n; i++ {
			lis = append(lis, int32(buf.ReadUvarint()))
		}
		c.asked[src] = lis
		c.receivedReq = true
	case 1:
		vals := c.resp[src][:0]
		for i := 0; i < n; i++ {
			vals = append(vals, c.codec.Decode(buf))
		}
		c.resp[src] = vals
		c.gotResp[src] = true
	}
}

// Again implements engine.Channel: ask for the respond round if this
// worker sent or received any request.
func (c *RequestRespond[R]) Again() bool {
	c.round++
	if c.round == 1 {
		if c.sentReq || c.receivedReq {
			c.respEpoch = int32(c.w.Superstep())
			return true
		}
	}
	return false
}
