package channel

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/ser"
)

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func sumU32(a, b uint32) uint32 { return a + b }

func sumF64(a, b float64) float64 { return a + b }

// run helper: executes a 2-superstep job: superstep 1 sends, superstep 2
// checks; the check callback receives the worker and halts everything.
func runJob(t *testing.T, nVertices, nWorkers int, setup func(w *engine.Worker)) engine.Metrics {
	t.Helper()
	part := partition.MustHash(nVertices, nWorkers)
	met, err := engine.Run(engine.Config{Part: part, MaxSupersteps: 50}, setup)
	if err != nil {
		t.Fatal(err)
	}
	return met
}

func TestDirectMessageDelivery(t *testing.T) {
	const n = 10
	got := make([][]uint32, n)
	runJob(t, n, 3, func(w *engine.Worker) {
		ch := NewDirectMessage[uint32](w, ser.Uint32Codec{})
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				// everyone sends its id to vertex 0 and to (id+1)%n
				ch.SendMessage(0, id)
				ch.SendMessage((id+1)%n, id*100)
				w.VoteToHalt()
				return
			}
			msgs := ch.Messages(li)
			cp := make([]uint32, len(msgs))
			copy(cp, msgs)
			got[id] = cp
			w.VoteToHalt()
		}
	})
	if len(got[0]) != n+1 { // n ids plus one ring message
		t.Errorf("vertex 0 got %d messages: %v", len(got[0]), got[0])
	}
	for k := 1; k < n; k++ {
		found := false
		for _, m := range got[k] {
			if m == uint32(k-1)*100 {
				found = true
			}
		}
		if !found {
			t.Errorf("vertex %d missing ring message: %v", k, got[k])
		}
	}
}

func TestDirectMessageInboxCleared(t *testing.T) {
	// messages from superstep 1 must not be visible in superstep 3
	const n = 4
	leak := false
	runJob(t, n, 2, func(w *engine.Worker) {
		ch := NewDirectMessage[uint32](w, ser.Uint32Codec{})
		w.Compute = func(li int) {
			switch w.Superstep() {
			case 1:
				ch.SendMessage(w.GlobalID(li), 7) // self message
			case 2:
				// consume; stay active one more step
			case 3:
				if len(ch.Messages(li)) != 0 {
					leak = true
				}
				w.VoteToHalt()
			}
		}
	})
	if leak {
		t.Error("stale inbox leaked into later superstep")
	}
}

func TestCombinedMessageCombines(t *testing.T) {
	const n = 8
	got := make([]uint32, n)
	has := make([]bool, n)
	runJob(t, n, 3, func(w *engine.Worker) {
		ch := NewCombinedMessage[uint32](w, ser.Uint32Codec{}, sumU32)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				// everyone sends 1 to vertex 3, twice
				ch.SendMessage(3, 1)
				ch.SendMessage(3, 1)
				_ = id
				w.VoteToHalt()
				return
			}
			if v, ok := ch.Message(li); ok {
				got[id] = v
				has[id] = true
			}
			w.VoteToHalt()
		}
	})
	if !has[3] || got[3] != 2*n {
		t.Errorf("vertex 3: got %d (has=%v) want %d", got[3], has[3], 2*n)
	}
	for k := 0; k < n; k++ {
		if k != 3 && has[k] {
			t.Errorf("vertex %d unexpectedly received %d", k, got[k])
		}
	}
}

func TestCombinedMessageMinAcrossWorkers(t *testing.T) {
	const n = 12
	var got uint32
	runJob(t, n, 4, func(w *engine.Worker) {
		ch := NewCombinedMessage[uint32](w, ser.Uint32Codec{}, minU32)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				ch.SendMessage(5, id+100)
				w.VoteToHalt()
				return
			}
			if id == 5 {
				if v, ok := ch.Message(li); ok {
					got = v
				}
			}
			w.VoteToHalt()
		}
	})
	if got != 100 {
		t.Errorf("min=%d want 100", got)
	}
}

func TestAggregatorSum(t *testing.T) {
	const n = 10
	results := make([]float64, 3)
	runJob(t, n, 3, func(w *engine.Worker) {
		agg := NewAggregator[float64](w, ser.Float64Codec{}, sumF64, 0)
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				agg.Add(float64(w.GlobalID(li)))
				return
			}
			results[w.WorkerID()] = agg.Result()
			w.VoteToHalt()
		}
	})
	want := float64(n * (n - 1) / 2)
	for wk, r := range results {
		if r != want {
			t.Errorf("worker %d sees aggregate %v want %v", wk, r, want)
		}
	}
}

func TestAggregatorZeroWhenNoAdds(t *testing.T) {
	got := []float64{-1, -1} // per worker: compute phases run concurrently
	runJob(t, 4, 2, func(w *engine.Worker) {
		agg := NewAggregator[float64](w, ser.Float64Codec{}, sumF64, 0)
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				return // nobody adds
			}
			got[w.WorkerID()] = agg.Result()
			w.VoteToHalt()
		}
	})
	for wk, g := range got {
		if g != 0 {
			t.Errorf("worker %d: zero aggregate = %v", wk, g)
		}
	}
}

func TestAggregatorFreshEachSuperstep(t *testing.T) {
	// adds at superstep 1 must not leak into the result read at
	// superstep 3
	got := []float64{-1, -1} // per worker: compute phases run concurrently
	runJob(t, 4, 2, func(w *engine.Worker) {
		agg := NewAggregator[float64](w, ser.Float64Codec{}, sumF64, 0)
		w.Compute = func(li int) {
			switch w.Superstep() {
			case 1:
				agg.Add(5)
			case 2:
				// no adds
			case 3:
				got[w.WorkerID()] = agg.Result()
				w.VoteToHalt()
			}
		}
	})
	for wk, g := range got {
		if g != 0 {
			t.Errorf("worker %d: stale aggregate %v leaked", wk, g)
		}
	}
}

func TestScatterCombineStaticPattern(t *testing.T) {
	// ring: everyone scatters its id to both ring neighbors with sum
	// combining, for two supersteps with different values
	const n = 9
	got1 := make([]uint32, n)
	got2 := make([]uint32, n)
	runJob(t, n, 3, func(w *engine.Worker) {
		sc := NewScatterCombine[uint32](w, ser.Uint32Codec{}, sumU32)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				sc.AddEdge((id + 1) % n)
				sc.AddEdge((id + n - 1) % n)
				sc.SetMessage(id)
			case 2:
				if v, ok := sc.Message(li); ok {
					got1[id] = v
				}
				sc.SetMessage(id * 10)
			case 3:
				if v, ok := sc.Message(li); ok {
					got2[id] = v
				}
				w.VoteToHalt()
			}
		}
	})
	for k := 0; k < n; k++ {
		want1 := uint32((k+1)%n + (k+n-1)%n)
		if got1[k] != want1 {
			t.Errorf("step2 vertex %d: got %d want %d", k, got1[k], want1)
		}
		want2 := want1 * 10
		if got2[k] != want2 {
			t.Errorf("step3 vertex %d: got %d want %d", k, got2[k], want2)
		}
	}
}

func TestScatterCombineSkipsSilentVertices(t *testing.T) {
	// a vertex that does not SetMessage must contribute nothing
	const n = 6
	got := make([]uint32, n)
	has := make([]bool, n)
	runJob(t, n, 2, func(w *engine.Worker) {
		sc := NewScatterCombine[uint32](w, ser.Uint32Codec{}, sumU32)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				sc.AddEdge((id + 1) % n)
				if id%2 == 0 {
					sc.SetMessage(100)
				}
			case 2:
				got[id], has[id] = sc.Message(li)
				w.VoteToHalt()
			}
		}
	})
	for k := 0; k < n; k++ {
		sender := (k + n - 1) % n
		if sender%2 == 0 {
			if !has[k] || got[k] != 100 {
				t.Errorf("vertex %d: got %d has=%v", k, got[k], has[k])
			}
		} else if has[k] {
			t.Errorf("vertex %d received %d from silent sender", k, got[k])
		}
	}
}

func TestScatterCombineMessageBytesBelowDirect(t *testing.T) {
	// With a skewed fan-in, scatter-combine transmits one (dst, value)
	// per unique destination per source worker; per-edge DirectMessage
	// sends retransmit the destination id with every edge.
	const n = 64
	part := partition.MustHash(n, 4)
	runBytes := func(scatter bool) int64 {
		met, err := engine.Run(engine.Config{Part: part, MaxSupersteps: 10}, func(w *engine.Worker) {
			sc := NewScatterCombine[uint32](w, ser.Uint32Codec{}, sumU32)
			dm := NewDirectMessage[uint32](w, ser.Uint32Codec{})
			w.Compute = func(li int) {
				id := w.GlobalID(li)
				switch w.Superstep() {
				case 1:
					if scatter {
						sc.AddEdge(0)
						sc.AddEdge(1)
					}
				case 2, 3, 4:
					if scatter {
						sc.SetMessage(id)
					} else {
						dm.SendMessage(0, id)
						dm.SendMessage(1, id)
					}
				default:
					w.VoteToHalt()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return met.Comm.NetworkBytes
	}
	direct := runBytes(false)
	scatter := runBytes(true)
	if scatter*4 >= direct {
		t.Errorf("scatter bytes %d not well below per-edge bytes %d", scatter, direct)
	}
}

func TestRequestRespond(t *testing.T) {
	const n = 10
	got := make([]uint32, n)
	runJob(t, n, 3, func(w *engine.Worker) {
		val := make([]uint32, w.LocalCount())
		rr := NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 {
			return val[li]
		})
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				val[li] = id * 7
				rr.AddRequest((id + 3) % n)
			case 2:
				v, ok := rr.Respond()
				if !ok {
					t.Errorf("vertex %d: no response", id)
				}
				got[id] = v
				w.VoteToHalt()
			}
		}
	})
	for k := 0; k < n; k++ {
		want := uint32((k+3)%n) * 7
		if got[k] != want {
			t.Errorf("vertex %d: got %d want %d", k, got[k], want)
		}
	}
}

func TestRequestRespondDedup(t *testing.T) {
	// many vertices request the same destination: the wire must carry
	// one request per (worker, destination), not one per requester
	const n = 40
	part := partition.MustHash(n, 4)
	met, err := engine.Run(engine.Config{Part: part, MaxSupersteps: 10}, func(w *engine.Worker) {
		val := make([]uint32, w.LocalCount())
		rr := NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 { return val[li] })
		w.Compute = func(li int) {
			switch w.Superstep() {
			case 1:
				val[li] = 9
				rr.AddRequest(1) // everyone asks vertex 1
			case 2:
				if v, ok := rr.Respond(); !ok || v != 9 {
					t.Errorf("bad response %d %v", v, ok)
				}
				w.VoteToHalt()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// requests: 3 remote workers × (count varint + 4B id) ≈ 15B;
	// responses: 3 × (varint + 4B) ≈ 15B. Anything near n×8 means no dedup.
	if met.Comm.NetworkBytes > 60 {
		t.Errorf("dedup missing: %d network bytes", met.Comm.NetworkBytes)
	}
}

func TestRequestRespondRepeatedSupersteps(t *testing.T) {
	// chase a pointer chain through repeated requests
	const n = 16
	parent := func(id graph.VertexID) graph.VertexID {
		if id == 0 {
			return 0
		}
		return id / 2
	}
	finals := make([]uint32, n)
	runJob(t, n, 3, func(w *engine.Worker) {
		cur := make([]uint32, w.LocalCount())
		rr := NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 { return cur[li] })
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				cur[li] = parent(id)
				rr.AddRequest(cur[li])
				return
			}
			v, _ := rr.Respond()
			if v == cur[li] {
				finals[id] = v
				w.VoteToHalt()
				return
			}
			cur[li] = v
			rr.AddRequest(cur[li])
		}
	})
	for k := 0; k < n; k++ {
		if finals[k] != 0 {
			t.Errorf("vertex %d ended at %d", k, finals[k])
		}
	}
}

func TestPropagationConvergesInOneSuperstep(t *testing.T) {
	// path graph: min id (0) must reach everyone within superstep 1
	const n = 30
	got := make([]uint32, n)
	met := runJob(t, n, 3, func(w *engine.Worker) {
		prop := NewPropagation[uint32](w, ser.Uint32Codec{}, minU32)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				if id > 0 {
					prop.AddEdge(id - 1)
				}
				if id < n-1 {
					prop.AddEdge(id + 1)
				}
				prop.SetValue(id)
				return
			}
			if v, ok := prop.Value(li); ok {
				got[id] = v
			} else {
				got[id] = 999
			}
			w.VoteToHalt()
		}
	})
	for k := 0; k < n; k++ {
		if got[k] != 0 {
			t.Errorf("vertex %d converged to %d", k, got[k])
		}
	}
	if met.Supersteps != 2 {
		t.Errorf("supersteps=%d want 2", met.Supersteps)
	}
}

func TestPropagationWeighted(t *testing.T) {
	// 0 -> 1 -> 2 with weights; distances must accumulate
	const n = 3
	got := make([]int64, n)
	minI64 := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	runJob(t, n, 2, func(w *engine.Worker) {
		prop := NewWeightedPropagation[int64](w, ser.Int64Codec{}, minI64,
			func(m int64, wt int32) int64 { return m + int64(wt) })
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				if id < n-1 {
					prop.AddWeightedEdge(id+1, int32(10*(id+1)))
				}
				if id == 0 {
					prop.SetValue(0)
				}
				return
			}
			if v, ok := prop.Value(li); ok {
				got[id] = v
			} else {
				got[id] = -1
			}
			w.VoteToHalt()
		}
	})
	if got[0] != 0 || got[1] != 10 || got[2] != 30 {
		t.Errorf("distances=%v want [0 10 30]", got)
	}
}

func TestPropagationBlockCentricTakesMultipleSupersteps(t *testing.T) {
	// with hash partitioning every hop crosses workers, so block-centric
	// mode needs ~n supersteps on a path while full mode needs 1
	const n = 10
	part := partition.MustHash(n, 2)
	run := func(block bool) int {
		met, err := engine.Run(engine.Config{Part: part, MaxSupersteps: 100}, func(w *engine.Worker) {
			var prop *Propagation[uint32]
			if block {
				prop = NewBlockPropagation[uint32](w, ser.Uint32Codec{}, minU32)
			} else {
				prop = NewPropagation[uint32](w, ser.Uint32Codec{}, minU32)
			}
			w.Compute = func(li int) {
				id := w.GlobalID(li)
				if w.Superstep() == 1 {
					if id > 0 {
						prop.AddEdge(id - 1)
					}
					if id < n-1 {
						prop.AddEdge(id + 1)
					}
					prop.SetValue(id)
				}
				w.VoteToHalt()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return met.Supersteps
	}
	full := run(false)
	blocky := run(true)
	if full > 2 {
		t.Errorf("full propagation took %d supersteps", full)
	}
	if blocky <= full {
		t.Errorf("block-centric supersteps %d not above full %d", blocky, full)
	}
}

func TestPropagationReset(t *testing.T) {
	// use the channel for two independent propagations on different
	// topologies
	const n = 6
	got1 := make([]uint32, n)
	got2 := make([]uint32, n)
	runJob(t, n, 2, func(w *engine.Worker) {
		prop := NewPropagation[uint32](w, ser.Uint32Codec{}, minU32)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				// path 0..n-1
				if id+1 < n {
					prop.AddEdge(id + 1)
				}
				prop.SetValue(id)
			case 2:
				if v, ok := prop.Value(li); ok {
					got1[id] = v
				}
				if li == 0 {
					prop.Reset()
				}
			case 3:
				// two halves, seeded separately
				half := uint32(n / 2)
				if id+1 < n && id+1 != half {
					prop.AddEdge(id + 1)
				}
				prop.SetValue(id + 50)
			case 4:
				if v, ok := prop.Value(li); ok {
					got2[id] = v
				}
				w.VoteToHalt()
			}
		}
	})
	for k := 0; k < n; k++ {
		if got1[k] != 0 {
			t.Errorf("run1 vertex %d = %d", k, got1[k])
		}
	}
	for k := 0; k < n; k++ {
		var want uint32 = 50
		if k >= n/2 {
			want = uint32(n/2) + 50
		}
		if got2[k] != want {
			t.Errorf("run2 vertex %d = %d want %d", k, got2[k], want)
		}
	}
}

func TestPropagationIsolatedVertex(t *testing.T) {
	// a worker whose vertices have no edges must not deadlock
	const n = 4
	runJob(t, n, 4, func(w *engine.Worker) {
		prop := NewPropagation[uint32](w, ser.Uint32Codec{}, minU32)
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				prop.SetValue(w.GlobalID(li))
				return
			}
			if v, ok := prop.Value(li); !ok || v != w.GlobalID(li) {
				t.Errorf("isolated vertex value %d ok=%v", v, ok)
			}
			w.VoteToHalt()
		}
	})
}

func TestMultipleChannelsCompose(t *testing.T) {
	// the composition smoke test: DirectMessage + CombinedMessage +
	// Aggregator + RequestRespond all in one program, same superstep
	const n = 12
	runJob(t, n, 3, func(w *engine.Worker) {
		val := make([]uint32, w.LocalCount())
		dm := NewDirectMessage[uint32](w, ser.Uint32Codec{})
		cm := NewCombinedMessage[uint32](w, ser.Uint32Codec{}, sumU32)
		agg := NewAggregator[float64](w, ser.Float64Codec{}, sumF64, 0)
		rr := NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 { return val[li] })
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				val[li] = id
				dm.SendMessage((id+1)%n, id)
				cm.SendMessage(0, 1)
				agg.Add(1)
				rr.AddRequest((id + 2) % n)
			case 2:
				if len(dm.Messages(li)) != 1 {
					t.Errorf("vertex %d: direct messages %v", id, dm.Messages(li))
				}
				if id == 0 {
					if v, _ := cm.Message(li); v != n {
						t.Errorf("combined=%d want %d", v, n)
					}
				}
				if agg.Result() != n {
					t.Errorf("agg=%v want %d", agg.Result(), n)
				}
				if v, ok := rr.Respond(); !ok || v != (id+2)%n {
					t.Errorf("vertex %d: respond %d ok=%v", id, v, ok)
				}
				w.VoteToHalt()
			}
		}
	})
}
