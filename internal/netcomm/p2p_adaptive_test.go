package netcomm_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/netcomm"
	"repro/internal/obs"
)

// startFabricAdaptive brings up a hub plus m single-worker clients on
// the adaptive p2p plane over loopback TCP. Unlike the static mesh,
// DialConfig returns as soon as the peer directory lands: no pair is
// dialed until its relayed volume crosses cfg.PromoteBytes.
func startFabricAdaptive(t *testing.T, m int, cfg netcomm.Config) (*netcomm.Hub, []*netcomm.Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := netcomm.NewHub(m, comm.CostModel{}, ln)
	t.Cleanup(hub.Close)
	clients := make([]*netcomm.Client, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Network, c.Addr = "tcp", ln.Addr().String()
			c.Lo, c.Hi, c.M = i, i, m
			c.DataPlane = netcomm.DataPlaneP2PAdaptive
			clients[i], errs[i] = netcomm.DialConfig(c)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		c := clients[i]
		t.Cleanup(func() { c.Close() })
	}
	if err := hub.WaitJoined(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return hub, clients
}

// driveRounds runs the engines' exact per-round protocol (fill, Flush,
// barrier, consume, reducing crossing, Release) concurrently on every
// client. frame(round, src, dst) sizes each directed flow's payload for
// the round; zero means no frame.
func driveRounds(t *testing.T, clients []*netcomm.Client, rounds int, frame func(round, src, dst int) int) {
	t.Helper()
	m := len(clients)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep := clients[i].Endpoint(i)
			bar := clients[i].Barrier()
			for r := 0; r < rounds; r++ {
				for dst := 0; dst < m; dst++ {
					if dst == i {
						continue
					}
					if n := frame(r, i, dst); n > 0 {
						buf := ep.Out(dst).Extend(n)
						for b := range buf {
							buf[b] = byte(r)
						}
					}
				}
				if err := ep.Flush(); err != nil {
					t.Errorf("client %d round %d: %v", i, r, err)
					return
				}
				if !bar.Wait() {
					t.Errorf("client %d round %d: barrier aborted", i, r)
					return
				}
				for src := 0; src < m; src++ {
					if src != i {
						ep.In(src)
					}
				}
				if _, ok := bar.AllReduce(0); !ok {
					t.Errorf("client %d round %d: reduce aborted", i, r)
					return
				}
				ep.Release()
			}
		}(i)
	}
	wg.Wait()
}

// connTo returns client's ConnStat row facing peer worker id, if any
// (ConnStat ranges are exclusive-high).
func connTo(c *netcomm.Client, peer int) (obs.ConnStat, bool) {
	for _, cs := range c.ConnStats() {
		if cs.PeerLo <= peer && peer < cs.PeerHi {
			return cs, true
		}
	}
	return obs.ConnStat{}, false
}

// A skewed workload on the lazy mesh must split cleanly: the one hot
// pair crosses the promotion threshold and moves its volume onto a
// direct connection, the cold pairs never earn a dial and stay on the
// hub relay, and the mesh's standing window memory (the sum of granted
// receive windows) stays far below the static plane's
// DefaultWindowBytes x every-directed-pair bill.
func TestAdaptiveLazyMeshPromotesOnlyHotPair(t *testing.T) {
	const m = 4
	const hotFrame = 32 << 10
	const coldFrame = 128
	const rounds = 20
	hub, clients := startFabricAdaptive(t, m, netcomm.Config{
		PromoteBytes: 64 << 10, // the hot flow crosses this on round 2
	})
	driveRounds(t, clients, rounds, func(r, src, dst int) int {
		if src == 0 && dst == 1 {
			return hotFrame
		}
		return coldFrame // background trickle: never reaches PromoteBytes
	})

	// The hot pair must have been promoted, with the direct connection
	// carrying the bulk of its volume.
	hot, ok := connTo(clients[0], 1)
	if !ok {
		t.Fatal("hot pair 0->1 has no connection stats")
	}
	if hot.Window == 0 {
		t.Fatalf("hot pair never promoted to a direct connection: %+v", hot)
	}
	if hot.Bytes <= hot.RelayBytes {
		t.Errorf("hot pair direct bytes (%d) do not dominate relayed bytes (%d)",
			hot.Bytes, hot.RelayBytes)
	}
	if hot.Bytes+hot.RelayBytes < int64(rounds*hotFrame) {
		t.Errorf("hot pair moved %d direct + %d relayed bytes, want at least %d",
			hot.Bytes, hot.RelayBytes, rounds*hotFrame)
	}

	// Every cold pair must have stayed on the relay: relay traffic
	// recorded, no direct connection established. Client 1 is the hot
	// pair's other end, so its row facing worker 0 is legitimately
	// direct (promotion is pair-level); every other row must be
	// relay-only.
	for i := 1; i < m; i++ {
		for _, cs := range clients[i].ConnStats() {
			if i == 1 && cs.PeerLo == 0 {
				continue
			}
			if cs.Window != 0 {
				t.Errorf("cold client %d grew a direct connection to %d-%d: %+v",
					i, cs.PeerLo, cs.PeerHi, cs)
			}
			if cs.RelayFrames == 0 {
				t.Errorf("cold client %d row %d-%d recorded no relay traffic", i, cs.PeerLo, cs.PeerHi)
			}
		}
	}
	if hub.DataBytes() == 0 {
		t.Error("cold pairs relayed no bytes through the hub")
	}

	// Standing window memory: only the promoted pair holds windows, so
	// the job-wide sum must be far under the static mesh's bill of one
	// default window per directed pair.
	var granted int64
	for _, c := range clients {
		for _, cs := range c.ConnStats() {
			granted += cs.RecvWindow
		}
	}
	static := int64(netcomm.DefaultWindowBytes) * int64(m*(m-1))
	if granted == 0 || granted >= static/2 {
		t.Errorf("standing windows under adaptive+lazy sum to %d, want well below static %d", granted, static)
	}
}

// A sender that keeps exhausting a small window must be grown out of
// the stall by the receiver's controller: the send window visible on
// the sending side ends well above its initial value and the resize
// counter records the retunes.
func TestAdaptiveWindowGrowsOutOfStall(t *testing.T) {
	const m = 2
	const initial = 8 << 10
	_, clients := startFabricAdaptive(t, m, netcomm.Config{
		WindowBytes:  initial,
		WindowMin:    4 << 10,
		WindowMax:    1 << 20,
		PromoteBytes: 1, // promote on first contact; the test is about windows
	})
	driveRounds(t, clients, 16, func(r, src, dst int) int {
		if src == 0 && dst == 1 {
			return 64 << 10 // 8x the initial window: stalls until grown
		}
		return 0
	})
	cs, ok := connTo(clients[0], 1)
	if !ok || cs.Window == 0 {
		t.Fatalf("stalling pair was never promoted: %+v", cs)
	}
	if cs.Window <= initial {
		t.Errorf("send window stayed at %d despite per-round stalls, want growth above %d", cs.Window, initial)
	}
	if cs.Resizes == 0 {
		t.Error("no resize events recorded on the stalling connection")
	}
	if cs.WindowPeak < cs.Window {
		t.Errorf("window peak %d below final window %d", cs.WindowPeak, cs.Window)
	}
}

// The inverse trajectory: a connection granted a big window but moving
// small rounds must shed the headroom, converging toward twice the
// round volume (floored at WindowMin).
func TestAdaptiveWindowShrinksWhenIdle(t *testing.T) {
	const m = 2
	const initial = 512 << 10
	_, clients := startFabricAdaptive(t, m, netcomm.Config{
		WindowBytes:  initial,
		WindowMin:    16 << 10,
		WindowMax:    1 << 20,
		PromoteBytes: 1,
	})
	driveRounds(t, clients, 30, func(r, src, dst int) int {
		if src == 0 && dst == 1 {
			return 4 << 10 // far under the granted window every round
		}
		return 0
	})
	cs, ok := connTo(clients[0], 1)
	if !ok || cs.Window == 0 {
		t.Fatalf("idle pair was never promoted: %+v", cs)
	}
	if cs.Window >= initial {
		t.Errorf("send window still %d after 30 idle rounds, want shrunk below %d", cs.Window, initial)
	}
	if cs.Window < 16<<10 {
		t.Errorf("send window %d shrank below WindowMin %d", cs.Window, 16<<10)
	}
	if cs.Resizes == 0 {
		t.Error("no resize events recorded on the idle connection")
	}
}
