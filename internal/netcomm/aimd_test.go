package netcomm

import "testing"

// The controller is a pure state machine: simulated round volumes and
// stall hints must produce the exact grow/shrink trajectory the policy
// promises, with no sockets or clocks involved.

func TestWindowGrowsOnStallUntilMax(t *testing.T) {
	w := newWindowController(64<<10, 16<<10, 1<<20)
	want := []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 1 << 20}
	for i, exp := range want {
		if got := w.Observe(64<<10, true); got != exp {
			t.Fatalf("stall %d: window=%d, want %d", i, got, exp)
		}
	}
}

func TestWindowGrowsOnOversizedRoundsWithoutStallHint(t *testing.T) {
	// A round that moves more than the whole window proves the sender
	// overdrew it (the borrow rule), so the window must grow even when
	// credit flowed back fast enough that the sender never blocked.
	w := newWindowController(8<<10, 4<<10, 1<<20)
	want := []int64{16 << 10, 32 << 10, 64 << 10}
	for i, exp := range want {
		if got := w.Observe(64<<10, false); got != exp {
			t.Fatalf("oversized round %d: window=%d, want %d", i, got, exp)
		}
	}
	// Once the window covers the round volume the growth stops: 64 KiB
	// rounds in a 64 KiB window are neither oversized nor idle.
	for i := 0; i < 5; i++ {
		if got := w.Observe(64<<10, false); got != 64<<10 {
			t.Fatalf("covered round %d: window=%d, want steady %d", i, got, 64<<10)
		}
	}
}

func TestWindowShrinksAfterConsecutiveIdleRounds(t *testing.T) {
	// 4 MiB window, 100 KiB rounds: mostly idle. Two idle rounds must
	// not move the window; the third halves it.
	w := newWindowController(4<<20, 16<<10, 64<<20)
	const round = 100 << 10
	if got := w.Observe(round, false); got != 4<<20 {
		t.Fatalf("idle 1: window=%d, want unchanged", got)
	}
	if got := w.Observe(round, false); got != 4<<20 {
		t.Fatalf("idle 2: window=%d, want unchanged", got)
	}
	if got := w.Observe(round, false); got != 2<<20 {
		t.Fatalf("idle 3: window=%d, want halved to %d", got, 2<<20)
	}
}

func TestWindowConvergesToTwiceRoundVolume(t *testing.T) {
	// Repeated idle rounds halve the window until it lands on twice the
	// round volume, where the idle test (bytes*2 < window) stops
	// firing and the window holds.
	w := newWindowController(4<<20, 16<<10, 64<<20)
	const round = 100 << 10
	var last int64
	for i := 0; i < 60; i++ {
		last = w.Observe(round, false)
	}
	if last != 2*round {
		t.Fatalf("converged window=%d, want %d (2x round volume)", last, 2*round)
	}
	for i := 0; i < 9; i++ {
		if got := w.Observe(round, false); got != 2*round {
			t.Fatalf("stable round %d: window=%d, want %d", i, got, 2*round)
		}
	}
}

func TestWindowShrinkFlooredAtMin(t *testing.T) {
	// Zero-volume rounds (an idle connection) decay the window all the
	// way to the configured minimum and no further.
	w := newWindowController(1<<20, 64<<10, 64<<20)
	var last int64
	for i := 0; i < 30; i++ {
		last = w.Observe(0, false)
	}
	if last != 64<<10 {
		t.Fatalf("idle decay ended at %d, want min %d", last, 64<<10)
	}
}

func TestWindowBusyRoundResetsIdleCount(t *testing.T) {
	// idle, idle, busy, idle, idle: never three in a row, so no shrink.
	w := newWindowController(1<<20, 16<<10, 64<<20)
	seq := []int64{10 << 10, 10 << 10, 512 << 10, 10 << 10, 10 << 10}
	for i, n := range seq {
		if got := w.Observe(n, false); got != 1<<20 {
			t.Fatalf("round %d (%d bytes): window=%d, want unchanged", i, n, got)
		}
	}
	// ...but the next idle round is the third consecutive one.
	if got := w.Observe(10<<10, false); got != 512<<10 {
		t.Fatalf("third consecutive idle round: window=%d, want halved", got)
	}
}

func TestWindowStallResetsIdleCountAndRedoubles(t *testing.T) {
	// A stall between idle rounds both grows the window and clears the
	// idle streak: shrink needs three fresh idle rounds afterwards.
	w := newWindowController(256<<10, 16<<10, 64<<20)
	w.Observe(8<<10, false)
	w.Observe(8<<10, false)
	if got := w.Observe(8<<10, true); got != 512<<10 {
		t.Fatalf("stall after idle streak: window=%d, want doubled", got)
	}
	w.Observe(8<<10, false)
	if got := w.Observe(8<<10, false); got != 512<<10 {
		t.Fatalf("second idle round after stall: window=%d, want unchanged", got)
	}
	if got := w.Observe(8<<10, false); got != 256<<10 {
		t.Fatalf("third idle round after stall: window=%d, want halved", got)
	}
}

func TestWindowGrowThenShrinkRecyclesHeadroom(t *testing.T) {
	// A hot phase grows the window out of repeated stalls; when the
	// workload cools to small rounds, the shrink path releases the
	// headroom down to twice the cold round volume.
	w := newWindowController(64<<10, 16<<10, 8<<20)
	for i := 0; i < 10; i++ {
		w.Observe(1<<20, true)
	}
	if w.window != 8<<20 {
		t.Fatalf("hot phase ended at window=%d, want max %d", w.window, 8<<20)
	}
	const cold = 32 << 10
	var last int64
	for i := 0; i < 60; i++ {
		last = w.Observe(cold, false)
	}
	if last != 2*cold {
		t.Fatalf("cold phase converged to %d, want %d", last, 2*cold)
	}
}

func TestWindowInitialClampedIntoBounds(t *testing.T) {
	if w := newWindowController(1<<10, 64<<10, 1<<20); w.window != 64<<10 {
		t.Fatalf("initial below min: window=%d, want %d", w.window, 64<<10)
	}
	if w := newWindowController(16<<20, 64<<10, 1<<20); w.window != 1<<20 {
		t.Fatalf("initial above max: window=%d, want %d", w.window, 1<<20)
	}
}
