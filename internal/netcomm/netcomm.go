// Package netcomm is the socket transport of the exchange fabric: the
// same comm.Fabric contract the in-process zero-copy implementation
// satisfies, carried over TCP or Unix sockets so the workers of one job
// can live in separate processes (the paper's actual deployment shape —
// Fig. 2's shared-nothing workers exchanging binary buffers).
//
// The control plane is a star: every worker process holds one
// connection to a Hub (the job coordinator) carrying join, the
// message-based distributed barrier (a worker's arrival folds its
// AllReduce contribution; the hub releases a crossing by broadcasting
// the aggregate once all M workers arrived), abort/cancel, per-round
// flush accounting for the cost model, and each process's opaque
// result blob.
//
// The data plane — one frame per (src, dst) pair per exchange round,
// empty buffers skipped on the wire — has two shapes, selected by
// Config.DataPlane:
//
//   - hub (default): frames ride the same star; the hub routes each to
//     the destination's connection. Ordering makes delivery implicit: a
//     worker writes its round's frames before its barrier arrival, the
//     hub forwards frames to a destination before writing that
//     destination's release (same stream, one writer lock), so when a
//     client observes the post-flush release, every frame of the round
//     is already staged — no per-frame acks.
//   - p2p: workers dial a direct full mesh negotiated through the hub's
//     peer directory and frames flow point-to-point under credit-based
//     per-connection flow control (see p2p.go). The hub carries only
//     control traffic; per-round DONE markers replace the star's
//     implicit ordering.
package netcomm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/barrier"
	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/ser"
)

// Message kinds of the wire protocol. Every message is
//
//	kind uint8 | a uint16 | b uint16 | n uint32 | payload [n]byte
//
// little-endian; the meaning of a and b depends on the kind.
const (
	kHello   = 1 // worker→hub or peer→peer: a,b = inclusive hosted worker range
	kFrame   = 2 // worker↔hub: a = src worker, b = dst worker, payload = round buffer
	kFlush   = 3 // worker→hub: a = src worker, payload = net,local byte counts (8+8)
	kArrive  = 4 // worker→hub: a = folded local arrivals, payload = value sum (8)
	kRelease = 5 // hub→worker: payload = crossing aggregate (8)
	kAbort   = 6 // either way: payload = reason string
	kResult  = 7 // worker→hub: a,b = worker range, payload = opaque result blob

	// The p2p data plane (see p2p.go).
	kListen = 8  // worker→hub: payload = data-plane listen endpoint (network, addr)
	kPeers  = 9  // hub→worker: payload = peer directory of the full party
	kData   = 10 // peer→peer: a = src worker, b = dst worker, payload = round buffer
	kDone   = 11 // peer→peer: a = src worker; its round's frames on this conn are complete
	kCredit = 12 // peer→peer: payload = flow-control byte grant (8)

	// Live telemetry (see Client.SendSamples / Hub.OnSamples).
	kSamples = 13 // worker→hub: a,b = worker range, payload = encoded in-flight superstep samples

	// The adaptive p2p plane (see p2p.go). kDone additionally travels
	// worker→hub→worker on lazy meshes (a = src worker, b = the target
	// process's range start) for pairs still routed through the relay.
	kResize  = 14 // peer→peer: receiver-initiated window resize, payload = new window (8)
	kPromote = 15 // worker→hub→worker: a = requester range start, b = target range start, payload = requester range + relayed volume
)

const headerLen = 9

// maxPayload bounds a declared payload length; a peer claiming more is
// corrupt or hostile and the connection is dropped instead of letting
// the length drive an allocation.
const maxPayload = 1 << 30

// writeMsg sends one message; bufs avoids copying frame payloads.
func writeMsg(w io.Writer, kind uint8, a, b uint16, payload []byte) error {
	var hdr [headerLen]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint16(hdr[1:], a)
	binary.LittleEndian.PutUint16(hdr[3:], b)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
	bufs := net.Buffers{hdr[:], payload}
	_, err := bufs.WriteTo(w)
	return err
}

// readHeader reads and validates one message header.
func readHeader(r io.Reader) (kind uint8, a, b uint16, n int, err error) {
	var hdr [headerLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, 0, err
	}
	kind = hdr[0]
	a = binary.LittleEndian.Uint16(hdr[1:])
	b = binary.LittleEndian.Uint16(hdr[3:])
	n = int(binary.LittleEndian.Uint32(hdr[5:]))
	if kind < kHello || kind > kPromote {
		return 0, 0, 0, 0, fmt.Errorf("netcomm: unknown message kind %d", kind)
	}
	if n > maxPayload {
		return 0, 0, 0, 0, fmt.Errorf("netcomm: message claims %d-byte payload", n)
	}
	return kind, a, b, n, nil
}

// Client is the worker-process side of the socket fabric. It hosts a
// contiguous range of the job's workers and implements comm.Fabric for
// them; its Barrier is the wire barrier coordinated by the hub.
type Client struct {
	m      int
	lo, hi int
	conn   net.Conn
	wmu    sync.Mutex // serializes writes from worker goroutines + reader acks

	window       int64          // p2p initial receive window per peer connection
	adaptive     bool           // p2p-adaptive: lazy mesh + AIMD-tuned windows
	winMin       int64          // adaptive window lower bound
	winMax       int64          // adaptive window upper bound
	promoteBytes int64          // relayed volume that promotes a lazy pair to a direct conn
	mesh         *mesh          // non-nil iff the data plane is p2p or p2p-adaptive
	flows        *obs.FlowAccum // optional flow matrix, fed at the flush seam

	bar *wireBarrier
	eps []*clientEndpoint

	smu       sync.Mutex // guards the local stats counters
	netBytes  int64
	locBytes  int64
	rounds    int64
	peerBytes []int64 // per destination worker id

	cmu    sync.Mutex
	closed bool
}

// Config selects how a worker process joins a job.
type Config struct {
	// Network and Addr locate the hub ("tcp" or "unix").
	Network, Addr string
	// Lo, Hi is the inclusive worker range this process hosts; M is the
	// job-wide worker count.
	Lo, Hi, M int
	// DataPlane selects how round frames travel: DataPlaneHub (the
	// default for "") relays them through the coordinator, DataPlaneP2P
	// sends them over a direct worker mesh with credit-based flow
	// control, DataPlaneP2PAdaptive additionally dials the mesh lazily
	// and auto-tunes each window. Every process of a job must pick the
	// same plane.
	DataPlane string
	// WindowBytes is the p2p receive window granted per peer connection
	// (zero selects DefaultWindowBytes). A sender blocks in Flush once
	// it has this many bytes un-consumed at one receiver. On the
	// adaptive plane it is only the initial window, clamped into
	// [WindowMin, WindowMax].
	WindowBytes int
	// WindowMin and WindowMax bound the adaptive plane's per-connection
	// window tuning (zero selects DefaultWindowMin/DefaultWindowMax).
	// Ignored on the other planes.
	WindowMin, WindowMax int
	// PromoteBytes is the cumulative hub-relayed volume toward one
	// process at which the adaptive plane promotes the pair to a direct
	// connection (zero selects DefaultPromoteBytes). Ignored on the
	// other planes.
	PromoteBytes int
	// MeshTimeout bounds the p2p mesh establishment during dial (zero
	// selects 30s).
	MeshTimeout time.Duration
	// Flows, if non-nil, receives one Record per non-empty (src, dst)
	// flush from this process's hosted workers — the per-flow half of
	// the job's flow matrix. Nil costs one branch per destination.
	Flows *obs.FlowAccum
}

// Dial connects to a hub at addr over network ("tcp" or "unix") and
// announces this process as the host of workers lo..hi (inclusive) of
// an m-worker job, with frames relayed through the hub.
func Dial(network, addr string, lo, hi, m int) (*Client, error) {
	return DialConfig(Config{Network: network, Addr: addr, Lo: lo, Hi: hi, M: m})
}

// DialConfig connects to a hub per cfg. With DataPlaneP2P it also
// opens the process's data listener, announces it to the hub, and
// blocks until the full worker mesh is established (every process of
// the job connected to every other), so a returned client is ready to
// exchange immediately.
func DialConfig(cfg Config) (*Client, error) {
	lo, hi, m := cfg.Lo, cfg.Hi, cfg.M
	if lo < 0 || hi < lo || hi >= m {
		return nil, fmt.Errorf("netcomm: bad worker range %d..%d of %d", lo, hi, m)
	}
	plane := cfg.DataPlane
	if plane == "" {
		plane = DataPlaneHub
	}
	if plane != DataPlaneHub && plane != DataPlaneP2P && plane != DataPlaneP2PAdaptive {
		return nil, fmt.Errorf("netcomm: unknown data plane %q", cfg.DataPlane)
	}
	conn, err := net.Dial(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("netcomm: dial hub: %w", err)
	}
	c := &Client{m: m, lo: lo, hi: hi, conn: conn, peerBytes: make([]int64, m), flows: cfg.Flows}
	if c.flows != nil {
		c.flows.SetPlane(plane)
	}
	c.bar = &wireBarrier{c: c, k: hi - lo + 1}
	c.bar.cond = sync.NewCond(&c.bar.mu)
	c.eps = make([]*clientEndpoint, hi-lo+1)
	for i := range c.eps {
		ep := &clientEndpoint{c: c, id: lo + i,
			out:     make([]*ser.Buffer, m),
			deliver: make([]*ser.Buffer, m),
			pending: make([]*ser.Buffer, m),
			sent:    make([]int64, m),
		}
		for d := 0; d < m; d++ {
			ep.out[d] = ser.NewBuffer(1024)
			ep.deliver[d] = ser.NewBuffer(1024)
			ep.pending[d] = ser.NewBuffer(1024)
		}
		c.eps[i] = ep
	}
	if plane == DataPlaneP2P || plane == DataPlaneP2PAdaptive {
		c.window = int64(cfg.WindowBytes)
		if c.window <= 0 {
			c.window = DefaultWindowBytes
		}
		if plane == DataPlaneP2PAdaptive {
			c.adaptive = true
			c.winMin = int64(cfg.WindowMin)
			if c.winMin <= 0 {
				c.winMin = DefaultWindowMin
			}
			c.winMax = int64(cfg.WindowMax)
			if c.winMax <= 0 {
				c.winMax = DefaultWindowMax
			}
			if c.winMin > c.winMax {
				conn.Close()
				return nil, fmt.Errorf("netcomm: window bounds inverted (min %d > max %d)", c.winMin, c.winMax)
			}
			c.promoteBytes = int64(cfg.PromoteBytes)
			if c.promoteBytes <= 0 {
				c.promoteBytes = DefaultPromoteBytes
			}
			// WindowBytes is only the starting point; the controller
			// never leaves [winMin, winMax], so neither may the seed.
			if c.window < c.winMin {
				c.window = c.winMin
			}
			if c.window > c.winMax {
				c.window = c.winMax
			}
		}
		timeout := cfg.MeshTimeout
		if timeout <= 0 {
			timeout = defaultMeshTimeout
		}
		if c.mesh, err = newMesh(c, cfg.Network, timeout); err != nil {
			conn.Close()
			return nil, err
		}
	}
	if err := c.send(kHello, uint16(lo), uint16(hi), nil); err != nil {
		c.Close()
		return nil, err
	}
	if c.mesh != nil {
		if err := c.send(kListen, uint16(lo), uint16(hi), encodeListen(c.mesh.advNet, c.mesh.advAddr)); err != nil {
			c.Close()
			return nil, err
		}
	}
	go c.readLoop()
	if c.mesh != nil {
		if err := c.mesh.await(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

func (c *Client) send(kind uint8, a, b uint16, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeMsg(c.conn, kind, a, b, payload)
}

// fail aborts the local barrier with a reason (first reason wins) and
// wakes every mesh waiter — a sender blocked on an exhausted credit
// window must observe the abort promptly, not wait for credit that
// will never come.
func (c *Client) fail(err error) {
	c.bar.abortLocal(err)
	if c.mesh != nil {
		c.mesh.wake()
	}
}

// isClosed reports whether Close has begun (connection errors after
// that are expected teardown, not failures).
func (c *Client) isClosed() bool {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.closed
}

// stopping reports whether blocked senders and delivery waits should
// give up: the job aborted or the client is closing.
func (c *Client) stopping() bool {
	return c.isClosed() || c.bar.Aborted()
}

// readLoop demuxes the hub connection: frames are staged into the
// destination endpoint's pending buffers, releases advance the wire
// barrier, aborts release everything.
func (c *Client) readLoop() {
	for {
		kind, a, b, n, err := readHeader(c.conn)
		if err != nil {
			c.cmu.Lock()
			closed := c.closed
			c.cmu.Unlock()
			if !closed {
				c.fail(fmt.Errorf("netcomm: connection to coordinator lost: %w", err))
			}
			return
		}
		switch kind {
		case kFrame:
			dst := int(b)
			if dst < c.lo || dst > c.hi || int(a) >= c.m {
				c.fail(fmt.Errorf("netcomm: misrouted frame %d->%d", a, b))
				return
			}
			ep := c.eps[dst-c.lo]
			ep.mu.Lock()
			_, err = io.ReadFull(c.conn, ep.pending[a].Extend(n))
			ep.mu.Unlock()
			if err != nil {
				c.fail(fmt.Errorf("netcomm: truncated frame: %w", err))
				return
			}
		case kRelease:
			var v [8]byte
			if _, err := io.ReadFull(c.conn, v[:]); err != nil {
				c.fail(fmt.Errorf("netcomm: truncated release: %w", err))
				return
			}
			c.bar.release(binary.LittleEndian.Uint64(v[:]))
		case kPeers:
			if c.mesh == nil {
				c.fail(fmt.Errorf("netcomm: peer directory on a hub-plane client"))
				return
			}
			p := make([]byte, n)
			if _, err := io.ReadFull(c.conn, p); err != nil {
				c.fail(fmt.Errorf("netcomm: truncated peer directory: %w", err))
				return
			}
			dir, err := decodePeerDirectory(p, c.m)
			if err != nil {
				c.fail(err)
				return
			}
			c.mesh.connect(dir)
		case kDone:
			// A lazy-mesh sender's round marker, relayed by the hub for a
			// pair without a direct connection. The hub forwards it after
			// the round's relayed frames (same streams on both hops), so
			// the round-counter bump below observes them staged.
			if c.mesh == nil || !c.adaptive || n != 0 {
				c.fail(fmt.Errorf("netcomm: unexpected relayed done marker (a=%d n=%d)", a, n))
				return
			}
			src := int(a)
			if src >= c.m || (src >= c.lo && src <= c.hi) {
				c.fail(fmt.Errorf("netcomm: relayed done marker for worker %d", src))
				return
			}
			c.mesh.bumpDone(src)
		case kPromote:
			// A peer with a higher range start relayed enough volume at us
			// to warrant a direct connection; the dialing rule says the
			// lower side dials, so that's us. Only the requester's identity
			// is trusted from the frame — its address comes from the hub's
			// vetted directory.
			if c.mesh == nil || !c.adaptive {
				c.fail(fmt.Errorf("netcomm: promotion request on a non-adaptive client"))
				return
			}
			p := make([]byte, n)
			if _, err := io.ReadFull(c.conn, p); err != nil {
				c.fail(fmt.Errorf("netcomm: truncated promotion request: %w", err))
				return
			}
			lo, hi, _, err := decodePromote(p)
			if err != nil {
				c.fail(err)
				return
			}
			if lo != int(a) {
				c.fail(fmt.Errorf("netcomm: promotion request range %d-%d contradicts header %d", lo, hi, a))
				return
			}
			c.mesh.promoteRequested(lo, hi)
		case kAbort:
			reason := make([]byte, n)
			io.ReadFull(c.conn, reason)
			c.fail(fmt.Errorf("netcomm: job aborted: %s", reason))
			return
		default:
			c.fail(fmt.Errorf("netcomm: unexpected message kind %d from hub", kind))
			return
		}
	}
}

// SendResult ships the process's opaque result blob to the hub (the
// graphworker protocol's partial result; see internal/workerproc).
func (c *Client) SendResult(payload []byte) error {
	return c.send(kResult, uint16(c.lo), uint16(c.hi), payload)
}

// SendSamples ships an opaque batch of in-flight superstep samples to
// the hub over the control connection (the live-events feed; see
// Hub.OnSamples). Loss-tolerant by design: the same samples travel
// again in the final result blob, so a send racing teardown may simply
// fail without consequence.
func (c *Client) SendSamples(payload []byte) error {
	return c.send(kSamples, uint16(c.lo), uint16(c.hi), payload)
}

// ConnStats reports the flow-control behaviour of this process's p2p
// peer connections over the run so far: outbound volume, cumulative
// credit-stall time, credit-grant latency while a sender was blocked,
// and — on the adaptive plane — the window trajectory (resizes, peak,
// granted receive window) plus the hub-relayed share of each pair's
// traffic. Lazy pairs that never earned a direct connection appear as
// relay-only rows (Window zero). Nil on the hub plane, which has no
// such machinery.
func (c *Client) ConnStats() []obs.ConnStat {
	if c.mesh == nil {
		return nil
	}
	m := c.mesh
	m.mu.Lock()
	conns := append([]*peerConn(nil), m.conns...)
	routes := append([]*meshRoute(nil), m.routes...)
	relayed := make(map[*peerConn][2]int64, len(routes))
	var relayOnly []obs.ConnStat
	for _, rt := range routes {
		pc := m.peers[rt.p.lo]
		switch {
		case pc != nil:
			relayed[pc] = [2]int64{rt.relayBytes, rt.relayFrames}
		case rt.relayFrames > 0:
			relayOnly = append(relayOnly, obs.ConnStat{
				LocalLo: c.lo, LocalHi: c.hi + 1,
				PeerLo: rt.p.lo, PeerHi: rt.p.hi + 1,
				RelayBytes: rt.relayBytes, RelayFrames: rt.relayFrames,
			})
		}
	}
	m.mu.Unlock()
	out := make([]obs.ConnStat, 0, len(conns)+len(relayOnly))
	for _, pc := range conns {
		rb := relayed[pc]
		pc.mu.Lock()
		out = append(out, obs.ConnStat{
			LocalLo: c.lo, LocalHi: c.hi + 1,
			PeerLo: pc.lo, PeerHi: pc.hi + 1,
			Window: pc.window, RecvWindow: pc.recvWindow,
			WindowPeak: pc.windowPeak, Resizes: pc.resizes,
			Bytes: pc.sentBytes, Frames: pc.sentFrames,
			RelayBytes: rb[0], RelayFrames: rb[1],
			StallNS:     pc.stallNS,
			GrantWaitNS: pc.grantWaitNS,
			Grants:      pc.grants,
		})
		pc.mu.Unlock()
	}
	return append(out, relayOnly...)
}

// Err returns the transport-level abort root cause this client
// observed, if any (a lost coordinator connection, a misrouted frame,
// the hub's abort reason). Workers log it next to the generic
// barrier-abort their engines report, so the transport detail is not
// lost.
func (c *Client) Err() error {
	c.bar.mu.Lock()
	defer c.bar.mu.Unlock()
	return c.bar.abortErr
}

// NumWorkers implements comm.Fabric.
func (c *Client) NumWorkers() int { return c.m }

// LocalWorkers implements comm.Fabric.
func (c *Client) LocalWorkers() []int {
	ids := make([]int, c.hi-c.lo+1)
	for i := range ids {
		ids[i] = c.lo + i
	}
	return ids
}

// Endpoint implements comm.Fabric.
func (c *Client) Endpoint(id int) comm.Endpoint { return c.eps[id-c.lo] }

// Barrier implements comm.Fabric.
func (c *Client) Barrier() barrier.Barrier { return c.bar }

// Stats implements comm.Fabric: the process-local view (bytes this
// process sent, split per destination worker, plus the time its
// senders spent blocked on flow-control windows; simulated network
// time lives on the hub's cost model).
func (c *Client) Stats() comm.Stats {
	var stall time.Duration
	for _, ep := range c.eps {
		stall += ep.Stall()
	}
	c.smu.Lock()
	defer c.smu.Unlock()
	return comm.Stats{
		NetworkBytes:  c.netBytes,
		LocalBytes:    c.locBytes,
		Rounds:        c.rounds,
		PeerBytes:     append([]int64(nil), c.peerBytes...),
		FlowStallTime: stall,
	}
}

// Close implements comm.Fabric: the hub connection and, under p2p, the
// whole data plane (listener, peer connections, blocked senders).
func (c *Client) Close() error {
	c.cmu.Lock()
	c.closed = true
	c.cmu.Unlock()
	if c.mesh != nil {
		c.mesh.close()
	}
	return c.conn.Close()
}

// clientEndpoint is one hosted worker's handle. Incoming frames are
// double-buffered: the reader goroutine stages into pending, and the
// first In call after a Flush swaps pending into deliver — at that
// point the post-flush release has been observed, so the round's frames
// are complete, and no peer can be past its next flush yet.
type clientEndpoint struct {
	c  *Client
	id int

	out     []*ser.Buffer
	sent    []int64 // per-flush per-dst byte scratch
	stallNS atomic.Int64

	mu       sync.Mutex
	deliver  []*ser.Buffer
	pending  []*ser.Buffer
	flushSeq uint64
	swapSeq  uint64
}

// stage copies one p2p frame from a co-hosted or remote src worker into
// the pending buffer (the same staging the hub-plane read loop does).
func (ep *clientEndpoint) stage(src int, payload []byte) {
	ep.mu.Lock()
	copy(ep.pending[src].Extend(len(payload)), payload)
	ep.mu.Unlock()
}

// Out implements comm.Endpoint.
func (ep *clientEndpoint) Out(dst int) *ser.Buffer { return ep.out[dst] }

// Flush implements comm.Endpoint: every non-empty off-worker buffer
// becomes one frame — relayed through the hub, or, under p2p, staged
// in-process for co-hosted destinations and sent directly to remote
// ones under their credit windows (blocking here when a window is
// exhausted). Either way the 16-byte flush-stats marker still goes to
// the hub: round accounting and the simulated cost model live there,
// identically on both planes. The loopback buffer stays local
// (zero-copy, as in the in-process fabric).
func (ep *clientEndpoint) Flush() error {
	c := ep.c
	var netB, locB int64
	var stall time.Duration
	for i := range ep.sent {
		ep.sent[i] = 0
	}
	for dst := 0; dst < c.m; dst++ {
		b := ep.out[dst]
		if dst == ep.id {
			n := int64(b.Len())
			locB += n
			if c.flows != nil && n > 0 {
				c.flows.Record(ep.id, dst, n)
			}
			continue
		}
		n := b.Len()
		netB += int64(n)
		ep.sent[dst] = int64(n)
		if c.flows != nil && n > 0 {
			c.flows.Record(ep.id, dst, int64(n))
		}
		if n > 0 {
			var err error
			if c.mesh != nil {
				var s time.Duration
				s, err = c.mesh.deliver(ep.id, dst, b.Bytes())
				stall += s
			} else {
				err = c.send(kFrame, uint16(ep.id), uint16(dst), b.Bytes())
			}
			if err != nil {
				if stall > 0 {
					ep.stallNS.Add(int64(stall))
				}
				c.fail(err)
				return fmt.Errorf("netcomm: send frame %d->%d: %w", ep.id, dst, err)
			}
		}
		b.Reset()
	}
	if stall > 0 {
		ep.stallNS.Add(int64(stall))
	}
	if c.mesh != nil {
		// The round's frames precede this DONE marker on every peer
		// stream; receivers swap their buffers in only once all M
		// workers' markers arrived.
		if err := c.mesh.finishRound(ep.id); err != nil {
			c.fail(err)
			return err
		}
	}
	var stats [16]byte
	binary.LittleEndian.PutUint64(stats[0:], uint64(netB))
	binary.LittleEndian.PutUint64(stats[8:], uint64(locB))
	if err := c.send(kFlush, uint16(ep.id), 0, stats[:]); err != nil {
		c.fail(err)
		return fmt.Errorf("netcomm: send flush: %w", err)
	}
	ep.mu.Lock()
	ep.flushSeq++
	ep.mu.Unlock()
	c.smu.Lock()
	c.netBytes += netB
	c.locBytes += locB
	for dst, n := range ep.sent {
		c.peerBytes[dst] += n
	}
	if ep.id == c.lo {
		c.rounds++
	}
	c.smu.Unlock()
	return nil
}

// In implements comm.Endpoint. On the hub plane the pre-swap frames
// are complete by ordering (the release followed them on the same
// stream); on p2p the release races the data connections, so the first
// In of a round first waits for every worker's DONE marker.
func (ep *clientEndpoint) In(src int) *ser.Buffer {
	if src == ep.id {
		return ep.out[ep.id]
	}
	ep.mu.Lock()
	if ep.swapSeq < ep.flushSeq {
		if c := ep.c; c.mesh != nil {
			target := ep.flushSeq
			ep.mu.Unlock()
			c.mesh.waitDelivered(target)
			ep.mu.Lock()
		}
		if ep.swapSeq < ep.flushSeq {
			ep.deliver, ep.pending = ep.pending, ep.deliver
			for i, b := range ep.pending {
				if i != ep.id {
					b.Reset()
				}
			}
			ep.swapSeq = ep.flushSeq
		}
	}
	b := ep.deliver[src]
	ep.mu.Unlock()
	return b
}

// Release implements comm.Endpoint: only the loopback buffer needs
// recycling here — off-process buffers were reset at Flush and incoming
// buffers are recycled by the swap.
func (ep *clientEndpoint) Release() {
	ep.out[ep.id].Reset()
}

// Stall implements comm.Endpoint: cumulative time this worker's Flush
// calls spent blocked on exhausted p2p credit windows (zero on the hub
// plane, which has no backpressure).
func (ep *clientEndpoint) Stall() time.Duration {
	return time.Duration(ep.stallNS.Load())
}

// wireBarrier is the client half of the distributed barrier: local
// workers fold their arrivals into one kArrive message; the hub's
// kRelease (carrying the job-wide AllReduce aggregate) advances the
// release counter and wakes the waiters of that crossing.
type wireBarrier struct {
	c    *Client
	k    int // local party size
	mu   sync.Mutex
	cond *sync.Cond

	gen      uint64 // local crossings fully arrived
	arrived  int    // local arrivals of the current crossing
	acc      uint64 // local value sum of the current crossing
	released uint64 // releases observed
	vals     [8]uint64

	aborted  bool
	abortErr error
}

// Wait implements barrier.Barrier.
func (b *wireBarrier) Wait() bool {
	_, ok := b.AllReduce(0)
	return ok
}

// AllReduce implements barrier.Barrier.
func (b *wireBarrier) AllReduce(v uint64) (uint64, bool) {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		return 0, false
	}
	gen := b.gen
	b.acc += v
	b.arrived++
	var sendAcc uint64
	sendNow := false
	if b.arrived == b.k {
		sendNow, sendAcc = true, b.acc
		b.arrived = 0
		b.acc = 0
		b.gen++
	}
	b.mu.Unlock()
	if sendNow {
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], sendAcc)
		if err := b.c.send(kArrive, uint16(b.k), 0, p[:]); err != nil {
			b.abortLocal(fmt.Errorf("netcomm: send arrive: %w", err))
			return 0, false
		}
	}
	b.mu.Lock()
	for b.released <= gen && !b.aborted {
		b.cond.Wait()
	}
	val := b.vals[(gen+1)&7]
	ok := !b.aborted
	b.mu.Unlock()
	return val, ok
}

// release records a crossing release from the hub.
func (b *wireBarrier) release(v uint64) {
	b.mu.Lock()
	b.released++
	b.vals[b.released&7] = v
	b.cond.Broadcast()
	b.mu.Unlock()
}

// abortLocal marks the barrier aborted (first reason wins) and wakes
// every waiter.
func (b *wireBarrier) abortLocal(err error) {
	b.mu.Lock()
	if !b.aborted {
		b.aborted = true
		b.abortErr = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Abort implements barrier.Barrier: a local worker failed. The hub is
// told (best effort) so it can release every other process.
func (b *wireBarrier) Abort() {
	b.abortLocal(fmt.Errorf("netcomm: aborted by local worker"))
	_ = b.c.send(kAbort, 0, 0, []byte("worker failure"))
}

// Aborted implements barrier.Barrier.
func (b *wireBarrier) Aborted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.aborted
}
