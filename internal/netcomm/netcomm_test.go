package netcomm_test

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/barrier"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/netcomm"
	"repro/internal/partition"
	"repro/internal/seq"
	"repro/internal/ser"
)

// startFabric brings up a hub plus one client per worker over TCP
// loopback (exercising the TCP transport; the process tests in
// internal/workerproc cover Unix sockets).
func startFabric(t *testing.T, m int) (*netcomm.Hub, []*netcomm.Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := netcomm.NewHub(m, comm.CostModel{}, ln)
	t.Cleanup(hub.Close)
	clients := make([]*netcomm.Client, m)
	for i := 0; i < m; i++ {
		c, err := netcomm.Dial("tcp", ln.Addr().String(), i, i, m)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	if err := hub.WaitJoined(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return hub, clients
}

// The wire barrier must reduce across processes exactly like the shared
// in-process barrier.
func TestWireBarrierAllReduce(t *testing.T) {
	const m = 5
	_, clients := startFabric(t, m)
	var wg sync.WaitGroup
	sums := make([]uint64, m)
	oks := make([]bool, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bar := clients[i].Barrier()
			for round := 0; round < 20; round++ {
				sums[i], oks[i] = bar.AllReduce(uint64(i + 1))
				if !oks[i] || sums[i] != m*(m+1)/2 {
					return
				}
				if !bar.Wait() {
					oks[i] = false
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < m; i++ {
		if !oks[i] || sums[i] != m*(m+1)/2 {
			t.Fatalf("client %d: sum=%d ok=%v want %d true", i, sums[i], oks[i], m*(m+1)/2)
		}
	}
}

// runDistributed executes one channel-engine algorithm with each worker
// on its own socket-fabric client (same test process, separate engine
// Runs) and merges the partial label arrays by ownership.
func runDistributed(t *testing.T, g *graph.Graph, m int,
	run func(*graph.Graph, algorithms.Options) ([]graph.VertexID, error)) []graph.VertexID {
	t.Helper()
	_, clients := startFabric(t, m)
	part := partition.MustHash(g.NumVertices(), m)
	frags := frag.Build(g, part)
	partials := make([][]graph.VertexID, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := algorithms.Options{Part: part, Frags: frags, MaxSupersteps: 100000, Fabric: clients[i]}
			partials[i], errs[i] = run(g, o)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	merged := make([]graph.VertexID, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		merged[v] = partials[part.Owner(graph.VertexID(v))][v]
	}
	return merged
}

func TestSocketFabricWCCMatchesOracle(t *testing.T) {
	g := graph.Undirectify(graph.RMAT(8, 5, 7, graph.RMATOptions{NoSelfLoops: true}))
	want := seq.ConnectedComponents(g)
	got := runDistributed(t, g, 4, func(g *graph.Graph, o algorithms.Options) ([]graph.VertexID, error) {
		v, _, err := algorithms.WCCPropagation(g, o)
		return v, err
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// Hub stats must account the traffic the in-process Exchanger would:
// off-worker bytes as network bytes, loopback as local, with rounds
// counted per flush.
func TestSocketFabricHubStats(t *testing.T) {
	g := graph.Undirectify(graph.RMAT(7, 4, 3, graph.RMATOptions{NoSelfLoops: true}))
	hub, clients := startFabric(t, 2)
	part := partition.MustHash(g.NumVertices(), 2)
	frags := frag.Build(g, part)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := algorithms.Options{Part: part, Frags: frags, MaxSupersteps: 100000, Fabric: clients[i]}
			if _, _, err := algorithms.WCCChannel(g, o); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := hub.Stats()
	if st.NetworkBytes == 0 || st.LocalBytes == 0 || st.Rounds == 0 || st.SimNetTime == 0 {
		t.Fatalf("hub stats missing traffic: %+v", st)
	}
}

// stallChannel parks one worker forever at superstep 3 unless released,
// standing in for a worker that died mid-superstep.
type stallChannel struct{}

func (stallChannel) Initialize()                        {}
func (stallChannel) AfterCompute()                      {}
func (stallChannel) Serialize(dst int, b *ser.Buffer)   {}
func (stallChannel) Deserialize(src int, b *ser.Buffer) {}
func (stallChannel) Again() bool                        { return false }

// Dropping one worker's connection mid-run must abort every other
// worker's barrier (no hang) and surface a transport error on the hub.
func TestSocketFabricConnDropAborts(t *testing.T) {
	const m = 3
	hub, clients := startFabric(t, m)
	part := partition.MustHash(3*64, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = engine.Run(engine.Config{Part: part, Fabric: clients[i], MaxSupersteps: 1 << 30},
				func(w *engine.Worker) {
					w.Register(stallChannel{})
					w.Compute = func(li int) {
						if w.WorkerID() == 1 && w.Superstep() == 3 && li == 0 {
							clients[1].Close() // the "kill": connection drops mid-superstep
						}
					}
				})
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers hung after connection drop")
	}
	for i, err := range errs {
		if i == 1 {
			continue // the dropped worker's own error shape is incidental
		}
		if err == nil {
			t.Errorf("worker %d: no error after peer connection drop", i)
		} else if !errors.Is(err, barrier.ErrAborted) && !strings.Contains(err.Error(), "abort") {
			t.Errorf("worker %d: unexpected error %v", i, err)
		}
		// the surviving processes report in (as graphworker would), so
		// the hub can settle
		_ = clients[i].SendResult([]byte("x"))
	}
	if _, herrs, err := hub.WaitResults(5 * time.Second); err != nil {
		t.Fatalf("hub did not settle: %v", err)
	} else if len(herrs) == 0 {
		t.Error("hub recorded no transport error for the dropped worker")
	}
}
