package netcomm

// White-box tests of the credit window: they need a peer that is slow
// at the socket level (its read loop not draining), which no real
// Client ever is, so a hand-driven fake process stands in for the
// receiver.

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
)

// slowPeerFabric is a 2-worker job where worker 1 is a fake process
// that joins the hub, announces a data listener, accepts worker 0's
// mesh connection — and then never reads another byte from it.
type slowPeerFabric struct {
	hub     *Hub
	c0      *Client
	hubConn net.Conn // the fake's control connection
	peer    net.Conn // the fake's end of the mesh connection (never read)
}

func startSlowPeerFabric(t *testing.T, windowBytes int) *slowPeerFabric {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(2, comm.CostModel{}, ln)
	t.Cleanup(hub.Close)

	hubConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hubConn.Close() })
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fln.Close() })
	if err := writeMsg(hubConn, kHello, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := writeMsg(hubConn, kListen, 1, 1, encodeListen("tcp", fln.Addr().String())); err != nil {
		t.Fatal(err)
	}
	// Keep the fake's control stream drained (kPeers arrives there).
	go io.Copy(io.Discard, hubConn)

	peerCh := make(chan net.Conn, 1)
	go func() {
		conn, err := fln.Accept()
		if err != nil {
			return
		}
		// Consume worker 0's mesh hello, then go silent: from here on
		// the receiver stages nothing and grants no credit.
		if kind, _, _, _, err := readHeader(conn); err != nil || kind != kHello {
			conn.Close()
			return
		}
		peerCh <- conn
	}()

	c0, err := DialConfig(Config{
		Network: "tcp", Addr: ln.Addr().String(),
		Lo: 0, Hi: 0, M: 2,
		DataPlane: DataPlaneP2P, WindowBytes: windowBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c0.Close() })
	var peer net.Conn
	select {
	case peer = <-peerCh:
	case <-time.After(5 * time.Second):
		t.Fatal("worker 0 never dialed the fake peer")
	}
	t.Cleanup(func() { peer.Close() })
	return &slowPeerFabric{hub: hub, c0: c0, hubConn: hubConn, peer: peer}
}

// pumpFrames flushes frameBytes-sized frames from worker 0 to worker 1
// in a goroutine, returning the completed-flush counter and a channel
// closed when the goroutine exits (on completion or Flush error).
func pumpFrames(f *slowPeerFabric, rounds, frameBytes int) (*atomic.Int64, <-chan error) {
	ep := f.c0.eps[0]
	var flushes atomic.Int64
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			ep.Out(1).Extend(frameBytes)
			if err := ep.Flush(); err != nil {
				done <- err
				close(done)
				return
			}
			flushes.Add(1)
		}
		close(done)
	}()
	return &flushes, done
}

// A receiver that stops draining must stall its sender at the window:
// completed flushes stop at window/frame, the in-flight bytes stay
// bounded by the window, and not one data byte touches the hub.
func TestSlowReaderBoundsSenderAtWindow(t *testing.T) {
	const window, frame = 256 << 10, 64 << 10
	f := startSlowPeerFabric(t, window)
	flushes, done := pumpFrames(f, 40, frame)

	deadline := time.Now().Add(5 * time.Second)
	for flushes.Load() < window/frame && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // would overshoot here if unbounded
	if got := flushes.Load(); got != window/frame {
		t.Fatalf("sender completed %d flushes against a silent receiver, want exactly %d (window %d / frame %d)",
			got, window/frame, window, frame)
	}
	select {
	case err := <-done:
		t.Fatalf("sender goroutine exited early: %v", err)
	default:
	}
	f.c0.mesh.mu.Lock()
	pc := f.c0.mesh.peers[1]
	f.c0.mesh.mu.Unlock()
	pc.mu.Lock()
	occupancy := pc.window - pc.avail
	pc.mu.Unlock()
	if occupancy <= 0 || occupancy > window {
		t.Errorf("window occupancy %d, want in (0, %d]", occupancy, window)
	}
	if db := f.hub.DataBytes(); db != 0 {
		t.Errorf("hub relayed %d data bytes under p2p", db)
	}

	// Closing the client must free the blocked sender (shutdown path).
	f.c0.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("blocked Flush completed instead of failing after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sender goroutine still blocked in Flush after client close")
	}
	// The blocked time is attributed once the sender wakes.
	if pc.stallTime() == 0 {
		t.Error("sender recorded no stall time for its blocked Flush")
	}
	if f.c0.Stats().FlowStallTime == 0 {
		t.Error("fabric stats recorded no flow-stall time")
	}
}

// Regression: a worker blocked in Flush on an exhausted window while
// its receiver dies mid-round must observe the abort promptly instead
// of waiting forever for credit — no goroutine may stay stuck.
func TestReceiverDeathWakesBlockedSender(t *testing.T) {
	const window, frame = 128 << 10, 64 << 10
	f := startSlowPeerFabric(t, window)
	flushes, done := pumpFrames(f, 40, frame)

	deadline := time.Now().Add(5 * time.Second)
	for flushes.Load() < window/frame && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := flushes.Load(); got != window/frame {
		t.Fatalf("sender not blocked at the window: %d flushes", got)
	}

	f.peer.Close() // the receiver "dies" mid-round
	select {
	case err := <-done:
		if err == nil {
			t.Error("blocked Flush completed instead of failing after receiver death")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sender goroutine stuck in Flush after receiver death")
	}
	if !f.c0.bar.Aborted() {
		t.Error("barrier not aborted after receiver death")
	}
	if f.c0.Err() == nil {
		t.Error("client recorded no transport error after receiver death")
	}
}

// startP2PPair brings up a hub and two real single-worker p2p clients
// (worker 0 and worker 1) with the given window.
func startP2PPair(t *testing.T, windowBytes int) (*Hub, *Client, *Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(2, comm.CostModel{}, ln)
	t.Cleanup(hub.Close)
	clients := make([]*Client, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clients[i], errs[i] = DialConfig(Config{
				Network: "tcp", Addr: ln.Addr().String(),
				Lo: i, Hi: i, M: 2,
				DataPlane: DataPlaneP2P, WindowBytes: windowBytes,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		c := clients[i]
		t.Cleanup(func() { c.Close() })
	}
	return hub, clients[0], clients[1]
}

// Regression: credit batching must not strand residue across quiescent
// rounds. A round whose bytes stay below the batch threshold (a
// quarter window) leaves the receiver's granted counter unsent; unless
// the round's DONE marker flushes it, the sender's effective window
// stays shrunk across the gap, and a later full-window frame then
// waits for credit that can never arrive — the sender is blocked, so
// no new data ever pushes the residue over the batch threshold.
func TestResidualCreditFlushedAtRoundEnd(t *testing.T) {
	const window = 64 << 10
	_, c0, _ := startP2PPair(t, window)
	ep := c0.eps[0]

	// Round 1: a frame below the credit batch leaves residue behind.
	ep.Out(1).Extend(window / 8)
	if err := ep.Flush(); err != nil {
		t.Fatal(err)
	}
	// Round 2: a full-window frame fits only a fully replenished window.
	done := make(chan error, 1)
	go func() {
		ep.Out(1).Extend(window)
		done <- ep.Flush()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Flush deadlocked: round-end residual credit never returned")
	}
}

// Regression: a stray connection to a worker's data listener must not
// be able to kill the job. The hello range is self-declared, so the
// mesh vets it against the peer directory and the dialing rule and
// drops whatever fails vetting — including a duplicate of the already
// registered legitimate peer, which previously failed the whole client.
func TestStrayInboundPeerConnectionIgnored(t *testing.T) {
	_, c0, c1 := startP2PPair(t, 0)
	for _, hello := range [][2]uint16{
		{0, 0}, // duplicate of the legitimately registered peer
		{1, 1}, // c1's own range: violates the lower-dials rule
		{0, 1}, // matches no directory entry
	} {
		conn, err := net.Dial(c1.mesh.advNet, c1.mesh.advAddr)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeMsg(conn, kHello, hello[0], hello[1], nil); err != nil {
			t.Fatal(err)
		}
		// The mesh must drop the stray promptly: its read sees EOF, not
		// a read timeout against a registered connection.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, _, _, _, err := readHeader(conn); err == nil {
			t.Fatalf("stray hello %v: got a message instead of a dropped connection", hello)
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("stray hello %v: connection registered instead of dropped", hello)
		}
		conn.Close()
	}
	// The job is unharmed: the real mesh still exchanges end-to-end.
	const n = 100
	ep0, ep1 := c0.eps[0], c1.eps[0]
	ep0.Out(1).Extend(n)
	if err := ep0.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ep1.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := ep1.In(0).Len(); got != n {
		t.Fatalf("worker 1 received %d bytes from worker 0, want %d", got, n)
	}
	if c0.bar.Aborted() || c1.bar.Aborted() {
		t.Fatalf("job aborted by stray connection: c0=%v c1=%v", c0.Err(), c1.Err())
	}
}

// The hub plane has no backpressure: the same silent consumer absorbs
// every round into its pending buffers, whose memory grows with the
// volume sent — the contrast that motivates the p2p window.
func TestHubPlaneSenderUnboundedMemoryGrows(t *testing.T) {
	const rounds, frame = 40, 64 << 10 // 2.5 MB total, 10x the p2p test's window
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(2, comm.CostModel{}, ln)
	t.Cleanup(hub.Close)
	c0, err := Dial("tcp", ln.Addr().String(), 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c0.Close() })
	c1, err := Dial("tcp", ln.Addr().String(), 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c1.Close() })
	if err := hub.WaitJoined(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	ep := c0.eps[0]
	for i := 0; i < rounds; i++ {
		ep.Out(1).Extend(frame)
		if err := ep.Flush(); err != nil {
			t.Fatalf("hub-plane sender blocked at flush %d: %v", i, err)
		}
	}
	// Every flush completed without the receiver consuming anything;
	// its staged bytes grow with the rounds sent.
	rep := c1.eps[0]
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep.mu.Lock()
		staged := rep.pending[0].Len()
		rep.mu.Unlock()
		if staged >= rounds*frame {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("receiver staged %d of %d bytes", staged, rounds*frame)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if db := hub.DataBytes(); db < rounds*frame {
		t.Errorf("hub relayed %d bytes, want >= %d", db, rounds*frame)
	}
}
