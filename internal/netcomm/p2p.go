package netcomm

// The peer-to-peer data plane. The hub stays the control plane (join,
// barrier, abort, results); with DataPlaneP2P the workers additionally
// open a data listener each, the hub broadcasts the directory of listen
// addresses once the full party has joined, and every process pair
// shares one direct connection over which round frames flow
// point-to-point — one network traversal instead of two.
//
// Two things the hub relay gave for free have to be rebuilt here:
//
//   - Delivery ordering. On the star, frames and the barrier release
//     share one stream, so observing the release proved the round's
//     frames were staged. On the mesh the release races the data
//     connections, so every Flush ends with a DONE marker per peer
//     connection and the first In of a round waits until every worker's
//     DONE count has caught up with the local flush count.
//   - Backpressure. The hub absorbed any rate mismatch in its own
//     buffers and the kernel's; the mesh instead runs a credit-based
//     window per connection direction: a receiver starts its senders
//     with WindowBytes of credit, every staged frame replenishes credit
//     back to the sender (batched to a quarter window to keep credit
//     traffic negligible, with any residue returned when a DONE marker
//     shows the sender's round went quiescent — so every round ends
//     with the window fully replenished), and a sender whose credit is
//     exhausted blocks in Flush until credit returns or the job
//     aborts. A frame larger than the window is allowed to overdraw
//     it, but only once the full window is available — so a slow
//     receiver bounds every sender's in-flight bytes at
//     max(WindowBytes, one frame).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ser"
)

// Data-plane selection for Config.DataPlane.
const (
	// DataPlaneHub relays every frame through the coordinator (the
	// default): frames traverse the network twice but need no extra
	// connections.
	DataPlaneHub = "hub"
	// DataPlaneP2P sends frames over a direct worker↔worker mesh with
	// credit-based flow control; only control traffic touches the hub.
	DataPlaneP2P = "p2p"
	// DataPlaneP2PAdaptive is the self-sizing p2p plane: the mesh is
	// dialed lazily (cold pairs ride the hub relay until their volume
	// earns a promotion to a direct connection) and each connection's
	// credit window is tuned per round between Config.WindowMin and
	// Config.WindowMax from observed round volume and sender stalls.
	DataPlaneP2PAdaptive = "p2p-adaptive"
)

// ErrPeerLost marks errors caused by a peer's data connection dying
// while it still owed this worker rounds or credit. It is always
// fallout of the peer process itself dying or unwinding — an event the
// hub detects independently and reports as ErrWorkerLost — so recovery
// classification treats it like abort fallout, not like an error the
// worker would hit again on retry. Test with errors.Is; the peer-lost
// error strings a worker ships in its result blob are rehydrated to
// wrap this sentinel by the coordinator.
var ErrPeerLost = errors.New("netcomm: peer connection lost")

// DefaultWindowBytes is the per-peer-connection receive window granted
// to each sender when Config.WindowBytes is zero. A few MB keeps a
// full-speed sender streaming across a LAN round-trip while bounding
// the memory a straggling receiver can pin per peer.
const DefaultWindowBytes = 4 << 20

// DefaultPromoteBytes is the cumulative relayed volume toward one
// process at which the adaptive plane promotes the pair from the hub
// relay to a direct connection when Config.PromoteBytes is zero. A few
// round trips' worth: one burst should not pay a dial, a steady flow
// should pay it early.
const DefaultPromoteBytes = 256 << 10

// defaultMeshTimeout bounds how long DialConfig waits for the peer
// directory and the full mesh before giving up.
const defaultMeshTimeout = 30 * time.Second

// ValidatePlaneConfig rejects data-plane flag combinations that would
// otherwise surface as a silently defaulted window or a deadlocked
// mesh: an unknown plane name, a non-positive window or bound, or
// inverted bounds. graphd and graphworker both run it at startup so a
// bad flag dies with a clear error in the process that was given it.
func ValidatePlaneConfig(plane string, windowBytes, windowMin, windowMax, promoteBytes int) error {
	switch plane {
	case DataPlaneHub, DataPlaneP2P, DataPlaneP2PAdaptive:
	default:
		return fmt.Errorf("unknown -data-plane %q (want %s, %s or %s)",
			plane, DataPlaneHub, DataPlaneP2P, DataPlaneP2PAdaptive)
	}
	if windowBytes <= 0 {
		return fmt.Errorf("-window-bytes must be positive, got %d", windowBytes)
	}
	if windowMin <= 0 {
		return fmt.Errorf("-window-min must be positive, got %d", windowMin)
	}
	if windowMax <= 0 {
		return fmt.Errorf("-window-max must be positive, got %d", windowMax)
	}
	if windowMin > windowMax {
		return fmt.Errorf("-window-min %d exceeds -window-max %d", windowMin, windowMax)
	}
	if promoteBytes <= 0 {
		return fmt.Errorf("-promote-bytes must be positive, got %d", promoteBytes)
	}
	return nil
}

// maxDirectoryPeers bounds the process count a peer directory may
// declare; a directory claiming more is corrupt.
const maxDirectoryPeers = 1 << 16

// Package-wide data-plane memory gauges, exported to /metrics by
// internal/server. hubBuffered tracks the bytes held in hub relay
// staging buffers (control-plane-only jobs keep it near zero);
// windowOutstanding tracks the bytes p2p senders have in flight against
// receive windows (window occupancy summed over peer connections).
var (
	hubBuffered       atomic.Int64
	windowOutstanding atomic.Int64
)

// DataPlaneStats reports the process-wide data-plane memory gauges:
// bytes currently staged in hub relay buffers and bytes in flight
// against p2p receive windows.
func DataPlaneStats() (hubBufferedBytes, windowOutstandingBytes int64) {
	return hubBuffered.Load(), windowOutstanding.Load()
}

// peerInfo is one process's entry in the peer directory: the worker
// range it hosts and the data-plane endpoint it listens on.
type peerInfo struct {
	lo, hi        int
	network, addr string
}

// encodeListen encodes a kListen payload (this process's data-plane
// endpoint).
func encodeListen(network, addr string) []byte {
	b := ser.NewBuffer(64)
	b.WriteString(network)
	b.WriteString(addr)
	return b.Bytes()
}

// decodeListen decodes a kListen payload.
func decodeListen(p []byte) (network, addr string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("netcomm: corrupt listen announcement: %v", r)
		}
	}()
	b := ser.FromBytes(p)
	network = b.ReadString()
	addr = b.ReadString()
	if b.Remaining() != 0 {
		return "", "", fmt.Errorf("netcomm: %d trailing bytes in listen announcement", b.Remaining())
	}
	return network, addr, nil
}

// encodeResize encodes a kResize payload: the window the receiver now
// grants the remote sender.
func encodeResize(window int64) []byte {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], uint64(window))
	return p[:]
}

// decodeResize decodes and validates a kResize payload. The window
// crosses a process boundary and feeds straight into the sender's
// credit arithmetic, so a non-positive or absurd value must come back
// as an error, never be applied.
func decodeResize(p []byte) (int64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("netcomm: bad resize payload length %d", len(p))
	}
	w := int64(binary.LittleEndian.Uint64(p))
	if w <= 0 || w > maxPayload {
		return 0, fmt.Errorf("netcomm: bad resize window %d", w)
	}
	return w, nil
}

// encodePromote encodes a kPromote payload: the requesting process's
// hosted range and the relayed volume that triggered the request (the
// latter is diagnostic only).
func encodePromote(lo, hi int, relayed int64) []byte {
	b := ser.NewBuffer(16)
	b.WriteUvarint(uint64(lo))
	b.WriteUvarint(uint64(hi))
	b.WriteUvarint(uint64(relayed))
	return b.Bytes()
}

// decodePromote decodes a kPromote payload. Only the range identifies
// the requester — and even that is cross-checked against the peer
// directory before any dial — so validation here is shape-level: a
// sane range, a non-negative volume, no trailing bytes, no panic.
func decodePromote(p []byte) (lo, hi int, relayed int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			lo, hi, relayed, err = 0, 0, 0, fmt.Errorf("netcomm: corrupt promotion request: %v", r)
		}
	}()
	b := ser.FromBytes(p)
	lo = int(b.ReadUvarint())
	hi = int(b.ReadUvarint())
	relayed = int64(b.ReadUvarint())
	if lo < 0 || hi < lo || hi >= maxDirectoryPeers || relayed < 0 {
		return 0, 0, 0, fmt.Errorf("netcomm: bad promotion request range %d-%d (%d bytes relayed)", lo, hi, relayed)
	}
	if b.Remaining() != 0 {
		return 0, 0, 0, fmt.Errorf("netcomm: %d trailing bytes in promotion request", b.Remaining())
	}
	return lo, hi, relayed, nil
}

// encodePeerDirectory encodes a kPeers payload: the directory of every
// process's hosted range and data-plane endpoint.
func encodePeerDirectory(peers []peerInfo) []byte {
	b := ser.NewBuffer(64 * len(peers))
	b.WriteUvarint(uint64(len(peers)))
	for _, p := range peers {
		b.WriteUvarint(uint64(p.lo))
		b.WriteUvarint(uint64(p.hi))
		b.WriteString(p.network)
		b.WriteString(p.addr)
	}
	return b.Bytes()
}

// decodePeerDirectory decodes and validates a kPeers payload against
// the job's worker count m: entries must be sorted, non-overlapping,
// and cover 0..m-1 exactly. The payload crosses a process boundary, so
// a corrupt one must come back as an error, never a panic.
func decodePeerDirectory(p []byte, m int) (peers []peerInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			peers, err = nil, fmt.Errorf("netcomm: corrupt peer directory: %v", r)
		}
	}()
	b := ser.FromBytes(p)
	n := b.ReadUvarint()
	if n > maxDirectoryPeers {
		return nil, fmt.Errorf("netcomm: peer directory claims %d processes", n)
	}
	peers = make([]peerInfo, 0, n)
	next := 0
	for i := uint64(0); i < n; i++ {
		e := peerInfo{lo: int(b.ReadUvarint()), hi: int(b.ReadUvarint())}
		e.network = b.ReadString()
		e.addr = b.ReadString()
		if e.lo != next || e.hi < e.lo || e.hi >= m {
			return nil, fmt.Errorf("netcomm: peer directory entry %d..%d out of order for %d workers", e.lo, e.hi, m)
		}
		next = e.hi + 1
		peers = append(peers, e)
	}
	if next != m {
		return nil, fmt.Errorf("netcomm: peer directory covers %d of %d workers", next, m)
	}
	if b.Remaining() != 0 {
		return nil, fmt.Errorf("netcomm: %d trailing bytes in peer directory", b.Remaining())
	}
	return peers, nil
}

// mesh is a client's p2p data plane: the local listener, one peerConn
// per remote process, and the per-worker round-completion counters the
// endpoint swap waits on.
type mesh struct {
	c       *Client
	ln      net.Listener
	sockDir string // temp dir of the unix data socket, "" for tcp
	advNet  string // advertised listener endpoint
	advAddr string
	timeout time.Duration // bounds mesh establishment and each peer dial

	mu      sync.Mutex
	cond    *sync.Cond
	dir     []peerInfo  // peer directory; nil until the hub broadcasts it
	closed  bool        // close() ran; late connections are dropped
	peers   []*peerConn // per worker id; nil for locally hosted ids
	conns   []*peerConn // every established peer connection
	expect  int         // remote processes expected; -1 until the directory arrives
	doneSeq []uint64    // per src worker id: rounds fully staged locally

	// Adaptive (lazy) mesh state, nil/empty on the static plane. routes
	// holds one entry per remote process in directory order; routeIdx
	// maps a worker id to its process's routes index (-1 for locally
	// hosted ids). latch[local worker][route] pins the route a worker's
	// frames took this round (latchRelay/latchDirect) so its DONE marker
	// follows the same streams even if the pair is promoted mid-round;
	// finishRound consumes and clears it. Each latch row is only ever
	// touched by its own worker's Flush goroutine, but rows live under
	// m.mu because deliver reads the peers table in the same breath.
	routes   []*meshRoute
	routeIdx []int
	latch    [][]int8
}

// Latch states for mesh.latch.
const (
	latchNone   = int8(0)
	latchRelay  = int8(1)
	latchDirect = int8(2)
)

// meshRoute is the adaptive mesh's view of one remote process: whether
// a direct connection exists yet, whether a promotion has been
// attempted, and how much traffic the pair has pushed through the hub
// relay while cold. All fields are guarded by mesh.mu.
type meshRoute struct {
	p           peerInfo
	direct      bool // a direct connection is installed in mesh.peers
	dialing     bool // a promotion dial was attempted (never retried)
	promoteSent bool // kPromote asked the lower-range side to dial us
	relayBytes  int64
	relayFrames int64
}

// newMesh opens the data-plane listener. For tcp the listener binds the
// host the hub connection goes out on (so the advertised address is
// reachable wherever the hub is); for unix it binds a socket in a fresh
// temp dir.
func newMesh(c *Client, network string, timeout time.Duration) (*mesh, error) {
	m := &mesh{c: c, expect: -1, timeout: timeout}
	m.cond = sync.NewCond(&m.mu)
	m.peers = make([]*peerConn, c.m)
	m.doneSeq = make([]uint64, c.m)
	switch network {
	case "unix":
		dir, err := os.MkdirTemp("", "netcomm-p2p-")
		if err != nil {
			return nil, fmt.Errorf("netcomm: data socket dir: %w", err)
		}
		ln, err := net.Listen("unix", filepath.Join(dir, "data.sock"))
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("netcomm: data listener: %w", err)
		}
		m.ln, m.sockDir = ln, dir
	default:
		host, _, err := net.SplitHostPort(c.conn.LocalAddr().String())
		if err != nil {
			host = "127.0.0.1"
		}
		ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
		if err != nil {
			return nil, fmt.Errorf("netcomm: data listener: %w", err)
		}
		m.ln = ln
	}
	m.advNet = m.ln.Addr().Network()
	m.advAddr = m.ln.Addr().String()
	go m.acceptLoop()
	return m, nil
}

// acceptLoop vets and registers inbound peer connections (dialed by
// processes with a lower worker range; see connect for the dialing
// rule).
func (m *mesh) acceptLoop() {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func() {
			kind, a, b, n, err := readHeader(conn)
			if err != nil || kind != kHello || n != 0 {
				conn.Close()
				return
			}
			m.registerInbound(conn, int(a), int(b))
		}()
	}
}

// registerInbound vets an inbound data connection before installing
// it. The kHello range is self-declared, so nothing about the
// connection is trusted yet: registration waits for the hub's peer
// directory (any legitimate dialer holds it too — the hub broadcasts
// it to the whole party at once), the announced range must match a
// directory entry exactly, and the dialing rule must hold (only
// processes with a lower range start dial us). A connection that fails
// vetting — stray, stale, or a duplicate racing the real peer — is
// closed and ignored rather than failing the job: the legitimate peer
// can still register, and await() times out if the mesh never
// completes.
func (m *mesh) registerInbound(conn net.Conn, lo, hi int) {
	m.mu.Lock()
	for m.dir == nil && !m.closed {
		m.cond.Wait()
	}
	dir, closed := m.dir, m.closed
	m.mu.Unlock()
	valid := false
	for _, p := range dir {
		if p.lo == lo && p.hi == hi {
			valid = true
			break
		}
	}
	if closed || !valid || lo >= m.c.lo {
		conn.Close()
		return
	}
	m.register(conn, lo, hi, true)
}

// connect processes the peer directory. On the static plane this
// process dials every peer with a higher range start (the peer with
// the lower start accepts), so each process pair ends up with exactly
// one shared connection. On the adaptive plane nothing is dialed:
// routes start on the hub relay and await() is satisfied by the
// directory alone — connections appear later, per pair, when relayed
// volume earns a promotion.
func (m *mesh) connect(dir []peerInfo) {
	c := m.c
	m.mu.Lock()
	m.dir = dir
	if c.adaptive {
		m.routeIdx = make([]int, c.m)
		for i := range m.routeIdx {
			m.routeIdx[i] = -1
		}
		for _, p := range dir {
			if p.lo == c.lo {
				continue
			}
			ri := len(m.routes)
			m.routes = append(m.routes, &meshRoute{p: p})
			for w := p.lo; w <= p.hi; w++ {
				m.routeIdx[w] = ri
			}
		}
		m.latch = make([][]int8, c.hi-c.lo+1)
		for i := range m.latch {
			m.latch[i] = make([]int8, len(m.routes))
		}
		m.expect = 0
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	remote := 0
	for _, p := range dir {
		if p.lo != c.lo {
			remote++
		}
	}
	m.expect = remote
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, p := range dir {
		if p.lo <= c.lo {
			continue
		}
		go m.dialPeer(p, true)
	}
}

// dialPeer establishes the direct connection to one higher-range peer
// (this side is the dialer by the lower-dials rule). must selects the
// failure policy: a mesh-establishment dial failure fails the client —
// the static mesh cannot exist without it — while a promotion dial
// failure only leaves the pair on the hub relay it was already using.
func (m *mesh) dialPeer(p peerInfo, must bool) {
	c := m.c
	// The dial carries its own deadline: the OS connect timeout to a
	// black-holed address can run minutes past the mesh timeout, and
	// await() giving up must not leave a dial goroutine hanging
	// indefinitely behind it.
	d := net.Dialer{Timeout: m.timeout}
	conn, err := d.Dial(p.network, p.addr)
	if err != nil {
		if must {
			c.fail(fmt.Errorf("netcomm: dial peer %d-%d at %s: %w", p.lo, p.hi, p.addr, err))
		}
		return
	}
	if err := writeMsg(conn, kHello, uint16(c.lo), uint16(c.hi), nil); err != nil {
		conn.Close()
		if must {
			c.fail(fmt.Errorf("netcomm: peer hello %d-%d: %w", p.lo, p.hi, err))
		}
		return
	}
	m.register(conn, p.lo, p.hi, false)
}

// promoteRequested handles a relayed kPromote: a peer with a higher
// range start wants a direct connection and the dialing rule puts the
// dial on this side. The requester's range is only trusted once it
// matches the hub-vetted directory; the dial goes to the directory's
// address for that range, never to anything frame-supplied.
func (m *mesh) promoteRequested(lo, hi int) {
	m.mu.Lock()
	var p peerInfo
	found := false
	for _, e := range m.dir {
		if e.lo == lo && e.hi == hi {
			p, found = e, true
			break
		}
	}
	if !found || m.closed || lo <= m.c.lo {
		m.mu.Unlock()
		return
	}
	ri := m.routeIdx[lo]
	rt := m.routes[ri]
	if rt.direct || rt.dialing {
		m.mu.Unlock()
		return
	}
	rt.dialing = true
	m.mu.Unlock()
	go m.dialPeer(p, false)
}

// register installs one established peer connection and starts its
// read loop. Both callers have validated lo..hi against the decoded
// peer directory. An already-closed mesh drops the connection either
// way — a late arrival must not spin a read loop against torn-down
// state. An occupied slot means a duplicate: on the outbound path (we
// dialed, once per directory entry) that is a protocol bug and fails
// the client; on the inbound path it is a stray or stale dialer racing
// the real peer, and only the connection is dropped.
func (m *mesh) register(conn net.Conn, lo, hi int, inbound bool) {
	c := m.c
	pc := &peerConn{conn: conn, lo: lo, hi: hi,
		window: c.window, avail: c.window,
		recvWindow: c.window, windowPeak: c.window}
	pc.cond = sync.NewCond(&pc.mu)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	for w := lo; w <= hi; w++ {
		if m.peers[w] != nil {
			m.mu.Unlock()
			conn.Close()
			if !inbound {
				c.fail(fmt.Errorf("netcomm: duplicate peer connection for workers %d-%d", lo, hi))
			}
			return
		}
	}
	for w := lo; w <= hi; w++ {
		m.peers[w] = pc
	}
	m.conns = append(m.conns, pc)
	if c.adaptive {
		// The pair is promoted: delivers from the next round (or the
		// next unlatched worker of this round) take the direct path.
		rt := m.routes[m.routeIdx[lo]]
		rt.direct = true
		rt.dialing = true
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	go m.readPeer(pc)
}

// await blocks until the mesh is established or the job aborts or the
// mesh timeout passes. Static plane: directory received and every
// remote process connected. Adaptive plane: the directory alone — the
// hub relay is a valid route to every peer from the first round, and
// connections accrue later via promotion (an early inbound promotion
// racing this wait must not count against a connection total).
func (m *mesh) await() error {
	timeout := m.timeout
	deadline := time.Now().Add(timeout)
	stop := time.AfterFunc(timeout, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.expect >= 0 && (m.c.adaptive || len(m.conns) == m.expect) {
			return nil
		}
		if m.c.bar.Aborted() {
			return fmt.Errorf("netcomm: job aborted while establishing mesh: %w", m.c.Err())
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("netcomm: p2p mesh not established within %v (%d of %d peers)",
				timeout, len(m.conns), m.expect)
		}
		m.cond.Wait()
	}
}

// readPeer demuxes one peer connection: DATA frames are staged into the
// destination endpoint's pending buffers (granting credit back as they
// land), DONE markers advance the per-worker round counters, CREDIT
// grants top up this side's send window.
//
// A connection-level failure (EOF, reset, truncation) does NOT abort
// the client: a peer that finished the job tears its process down while
// slower peers are still completing, and that EOF is benign — every
// frame and DONE marker it owed arrived before the orderly close.
// Worker death is the control plane's call (the hub aborts the job when
// a process drops before reporting); here the loss only poisons this
// connection, so anything still needing it — a credit-blocked sender, a
// Flush, a delivery wait — fails promptly while a client that is done
// with it sails on to its result.
func (m *mesh) readPeer(pc *peerConn) {
	c := m.c
	creditBatch := c.window / 4
	if creditBatch < 1 {
		creditBatch = 1
	}
	var granted int64 // credit staged but not yet sent back
	// Adaptive plane: this side owns the window it grants, so this loop
	// also runs the controller. A sender round on this connection is
	// one DONE per remote-hosted worker; the controller observes the
	// bytes that accumulated across the round and whether any marker
	// carried the sender's stall hint. (After a mid-round promotion a
	// round's markers can split between relay and mesh, skewing one
	// observation's byte attribution; the controller only feeds on
	// ratios, and the split heals as soon as every worker latches
	// direct.)
	var ctl *windowController
	if c.adaptive {
		ctl = newWindowController(c.window, c.winMin, c.winMax)
	}
	senderWorkers := pc.hi - pc.lo + 1
	var roundBytes int64
	var roundDones int
	var roundStalled bool
	for {
		kind, a, b, n, err := readHeader(pc.conn)
		if err != nil {
			m.connLost(pc, fmt.Errorf("netcomm: peer connection to workers %d-%d lost: %w", pc.lo, pc.hi, err))
			return
		}
		switch kind {
		case kData:
			src, dst := int(a), int(b)
			if dst < c.lo || dst > c.hi || src < pc.lo || src > pc.hi {
				c.fail(fmt.Errorf("netcomm: misrouted data frame %d->%d", src, dst))
				return
			}
			ep := c.eps[dst-c.lo]
			ep.mu.Lock()
			_, err = io.ReadFull(pc.conn, ep.pending[src].Extend(n))
			ep.mu.Unlock()
			if err != nil {
				m.connLost(pc, fmt.Errorf("netcomm: data frame from workers %d-%d truncated: %w", pc.lo, pc.hi, err))
				return
			}
			granted += int64(n)
			roundBytes += int64(n)
			if granted >= creditBatch {
				if err := pc.sendCredit(granted); err != nil {
					m.connLost(pc, fmt.Errorf("netcomm: send credit to workers %d-%d: %w", pc.lo, pc.hi, err))
					return
				}
				granted = 0
			}
		case kDone:
			src := int(a)
			if src < pc.lo || src > pc.hi {
				c.fail(fmt.Errorf("netcomm: done marker for foreign worker %d", src))
				return
			}
			m.bumpDone(src)
			// The marker ends a sender round on this connection, so
			// nothing is guaranteed to arrive and push the batched
			// credit over its threshold: return the residue now.
			// Stranding it would shrink the sender's effective window
			// across the quiescent gap — a following frame needing the
			// full window would deadlock, since the sender blocks
			// without sending the data whose staging is the only other
			// credit source.
			if granted > 0 {
				if err := pc.sendCredit(granted); err != nil {
					m.connLost(pc, fmt.Errorf("netcomm: send credit to workers %d-%d: %w", pc.lo, pc.hi, err))
					return
				}
				granted = 0
			}
			if ctl != nil {
				roundStalled = roundStalled || b == 1
				if roundDones++; roundDones >= senderWorkers {
					next := ctl.Observe(roundBytes, roundStalled)
					roundBytes, roundDones, roundStalled = 0, 0, false
					pc.mu.Lock()
					cur := pc.recvWindow
					if next != cur && !pc.closed {
						pc.recvWindow = next
						pc.resizes++
					}
					pc.mu.Unlock()
					if next != cur {
						// Tell the sender before recomputing the grant
						// batch: the resize travels the same stream as
						// the credits, so the sender sees a consistent
						// (window, credit) sequence.
						if err := pc.sendResize(next); err != nil {
							m.connLost(pc, fmt.Errorf("netcomm: send window resize to workers %d-%d: %w", pc.lo, pc.hi, err))
							return
						}
						if creditBatch = next / 4; creditBatch < 1 {
							creditBatch = 1
						}
					}
				}
			}
		case kResize:
			p := make([]byte, n)
			if _, err := io.ReadFull(pc.conn, p); err != nil {
				m.connLost(pc, fmt.Errorf("netcomm: resize from workers %d-%d truncated: %w", pc.lo, pc.hi, err))
				return
			}
			next, err := decodeResize(p)
			if err != nil {
				c.fail(err)
				return
			}
			// The remote receiver retargeted our send window. Preserve
			// the bytes currently in flight: avail moves by the same
			// delta as the window, so (window - avail) — what the
			// windowOutstanding gauge and die()'s reconciliation track —
			// is untouched. A shrink below the outstanding volume just
			// leaves avail negative until credits catch up, the same
			// arithmetic the oversized-frame borrow already exercises.
			pc.mu.Lock()
			if !pc.closed {
				pc.avail += next - pc.window
				pc.window = next
				if next > pc.windowPeak {
					pc.windowPeak = next
				}
				pc.resizes++
				pc.cond.Broadcast()
			}
			pc.mu.Unlock()
		case kCredit:
			if n != 8 {
				c.fail(fmt.Errorf("netcomm: bad credit payload length %d", n))
				return
			}
			var v [8]byte
			if _, err := io.ReadFull(pc.conn, v[:]); err != nil {
				m.connLost(pc, fmt.Errorf("netcomm: credit from workers %d-%d truncated: %w", pc.lo, pc.hi, err))
				return
			}
			g := int64(binary.LittleEndian.Uint64(v[:]))
			if g < 0 || g > maxPayload {
				c.fail(fmt.Errorf("netcomm: bad credit grant %d", g))
				return
			}
			pc.mu.Lock()
			if !pc.closed {
				windowOutstanding.Add(-g)
				pc.avail += g
				pc.grants++
				if pc.waitStart != 0 {
					// A sender is credit-starved: this grant's arrival
					// latency is the window-tuning signal (ROADMAP's
					// adaptive-window item wants observed grant latency
					// next to stall time).
					now := time.Now().UnixNano()
					pc.grantWaitNS += now - pc.waitStart
					pc.waitStart = now
				}
				pc.cond.Broadcast()
			}
			pc.mu.Unlock()
		default:
			c.fail(fmt.Errorf("netcomm: unexpected message kind %d on peer connection", kind))
			return
		}
	}
}

// connLost marks one peer connection dead and wakes the mesh: blocked
// senders fail out of their credit wait with the cause, and delivery
// waits re-check whether the lost connection still owed them rounds.
func (m *mesh) connLost(pc *peerConn, err error) {
	pc.die(err)
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// deliver routes one round frame from a local src worker to dst:
// co-hosted destinations are staged in-process, remote ones go over the
// peer connection under its credit window — or, on the adaptive plane,
// through the hub relay while the pair is still cold. The returned
// stall is the time spent blocked on exhausted credit.
func (m *mesh) deliver(src, dst int, payload []byte) (time.Duration, error) {
	c := m.c
	if dst >= c.lo && dst <= c.hi {
		c.eps[dst-c.lo].stage(src, payload)
		return 0, nil
	}
	if c.adaptive {
		return m.deliverLazy(src, dst, payload)
	}
	m.mu.Lock()
	pc := m.peers[dst]
	m.mu.Unlock()
	if pc == nil {
		return 0, fmt.Errorf("netcomm: no mesh route to worker %d", dst)
	}
	return pc.sendData(m, src, dst, payload)
}

// deliverLazy routes one frame on the adaptive plane. The first frame
// a worker sends toward a process this round latches the route —
// direct if a connection exists at that instant, hub relay otherwise —
// so the worker's whole round, DONE marker included, travels one set
// of streams even if the pair is promoted underneath it. Relay volume
// is what earns the promotion: once a pair's cumulative relayed bytes
// cross the threshold, the lower-range side dials (directly, or after
// a kPromote relayed from the higher side) exactly once.
func (m *mesh) deliverLazy(src, dst int, payload []byte) (time.Duration, error) {
	c := m.c
	m.mu.Lock()
	ri := m.routeIdx[dst]
	if ri < 0 {
		m.mu.Unlock()
		return 0, fmt.Errorf("netcomm: no mesh route to worker %d", dst)
	}
	rt := m.routes[ri]
	li := src - c.lo
	lt := m.latch[li][ri]
	if lt == latchNone {
		lt = latchRelay
		if m.peers[dst] != nil {
			lt = latchDirect
		}
		m.latch[li][ri] = lt
	}
	if lt == latchDirect {
		pc := m.peers[dst]
		m.mu.Unlock()
		return pc.sendData(m, src, dst, payload)
	}
	m.mu.Unlock()
	// Relay through the hub: the same kFrame the hub plane uses, staged
	// by the destination's hub read loop. No credit window applies —
	// the hub absorbs the rate mismatch exactly as it does for every
	// hub-plane job — so a cold pair costs no standing receive memory.
	if err := c.send(kFrame, uint16(src), uint16(dst), payload); err != nil {
		return 0, fmt.Errorf("netcomm: relay data frame %d->%d: %w", src, dst, err)
	}
	m.mu.Lock()
	rt.relayBytes += int64(len(payload))
	rt.relayFrames++
	promote := !rt.direct && !rt.dialing && !rt.promoteSent && rt.relayBytes >= c.promoteBytes
	var p peerInfo
	if promote {
		p = rt.p
		if c.lo < rt.p.lo {
			rt.dialing = true
		} else {
			rt.promoteSent = true
		}
		relayed := rt.relayBytes
		m.mu.Unlock()
		if c.lo < p.lo {
			go m.dialPeer(p, false)
		} else if err := c.send(kPromote, uint16(c.lo), uint16(p.lo), encodePromote(c.lo, c.hi, relayed)); err != nil {
			return 0, fmt.Errorf("netcomm: send promotion request to workers %d-%d: %w", p.lo, p.hi, err)
		}
		return 0, nil
	}
	m.mu.Unlock()
	return 0, nil
}

// finishRound marks one local worker's round complete. Static plane: a
// DONE marker on every peer connection (after that worker's frames,
// same streams) plus the local counter for co-hosted readers. Adaptive
// plane: one DONE per remote process, each following the route the
// worker's frames latched this round — direct markers ride the peer
// connection, relay markers ride the hub (which forwards them to the
// target after the frames it relayed, preserving order on both hops).
// Direct markers carry the stall hint the receiver's window controller
// feeds on: whether any sender blocked on this connection's credit
// since its last marker.
func (m *mesh) finishRound(src int) error {
	c := m.c
	if !c.adaptive {
		m.mu.Lock()
		conns := append([]*peerConn(nil), m.conns...)
		m.mu.Unlock()
		for _, pc := range conns {
			if err := pc.sendDone(src); err != nil {
				err = fmt.Errorf("netcomm: peer connection to workers %d-%d lost: %w", pc.lo, pc.hi, err)
				m.connLost(pc, err)
				return fmt.Errorf("netcomm: send done to workers %d-%d: %w", pc.lo, pc.hi, err)
			}
		}
		m.bumpDone(src)
		return nil
	}
	li := src - c.lo
	type doneRoute struct {
		pc    *peerConn // direct route; nil = relay via hub
		hubLo int       // relay target process range start
	}
	m.mu.Lock()
	targets := make([]doneRoute, 0, len(m.routes))
	for ri, rt := range m.routes {
		lt := m.latch[li][ri]
		m.latch[li][ri] = latchNone
		pc := m.peers[rt.p.lo]
		if lt == latchRelay || (lt == latchNone && pc == nil) {
			targets = append(targets, doneRoute{hubLo: rt.p.lo})
		} else {
			targets = append(targets, doneRoute{pc: pc})
		}
	}
	m.mu.Unlock()
	for _, t := range targets {
		if t.pc != nil {
			if err := t.pc.sendDone(src); err != nil {
				err = fmt.Errorf("netcomm: peer connection to workers %d-%d lost: %w", t.pc.lo, t.pc.hi, err)
				m.connLost(t.pc, err)
				return fmt.Errorf("netcomm: send done to workers %d-%d: %w", t.pc.lo, t.pc.hi, err)
			}
		} else if err := c.send(kDone, uint16(src), uint16(t.hubLo), nil); err != nil {
			return fmt.Errorf("netcomm: relay done to workers at %d: %w", t.hubLo, err)
		}
	}
	m.bumpDone(src)
	return nil
}

// bumpDone advances one worker's completed-round counter and wakes
// endpoint swaps waiting on it.
func (m *mesh) bumpDone(src int) {
	m.mu.Lock()
	m.doneSeq[src]++
	m.cond.Broadcast()
	m.mu.Unlock()
}

// waitDelivered blocks until every worker's completed-round counter has
// reached target (every round-target frame is staged locally) or the
// job aborts — the caller's engine observes the abort at its next
// barrier crossing, so an early return on abort is safe. A dead peer
// connection that still owes rounds can never deliver them, so the wait
// fails the client instead of parking until the control plane notices.
func (m *mesh) waitDelivered(target uint64) {
	m.mu.Lock()
	for {
		done := true
		var lost error
		for w, s := range m.doneSeq {
			if s >= target {
				continue
			}
			done = false
			pc := m.peers[w]
			if pc == nil {
				continue // co-hosted: its own Flush will bump the counter
			}
			pc.mu.Lock()
			if pc.closed {
				lost = pc.err
				if lost == nil {
					lost = fmt.Errorf("netcomm: peer connection to workers %d-%d closed", pc.lo, pc.hi)
				}
			}
			pc.mu.Unlock()
			if lost != nil {
				break
			}
		}
		if done || m.c.stopping() {
			m.mu.Unlock()
			return
		}
		if lost != nil {
			m.mu.Unlock()
			m.c.fail(fmt.Errorf("netcomm: round %d undeliverable: %w", target, lost))
			return
		}
		m.cond.Wait()
	}
}

// wake unblocks every mesh waiter (credit-starved senders, delivery
// waits, the dial-time await) so they can observe an abort or close.
func (m *mesh) wake() {
	m.mu.Lock()
	conns := append([]*peerConn(nil), m.conns...)
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, pc := range conns {
		pc.mu.Lock()
		pc.cond.Broadcast()
		pc.mu.Unlock()
	}
}

// close tears the data plane down: listener, every peer connection, the
// unix socket dir, and the in-flight window gauge contribution.
func (m *mesh) close() {
	m.ln.Close()
	m.mu.Lock()
	m.closed = true
	conns := append([]*peerConn(nil), m.conns...)
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, pc := range conns {
		pc.close()
	}
	if m.sockDir != "" {
		os.RemoveAll(m.sockDir)
	}
}

// peerConn is one direct connection to a remote process, shared by all
// co-hosted workers on both sides. Each direction has an independent
// credit window: avail is what the remote receiver still lets us send;
// the grants we owe the remote sender are batched in readPeer.
type peerConn struct {
	conn   net.Conn
	wmu    sync.Mutex // serializes frame/done/credit writes
	lo, hi int        // remote hosted worker range

	mu      sync.Mutex
	cond    *sync.Cond
	window  int64
	avail   int64 // remaining send credit; may go negative for an oversized frame
	stallNS int64
	closed  bool
	err     error // why the connection died; nil for a clean local close

	// Adaptive-window state. stalledRound records that a sender blocked
	// on this window since the last DONE marker; the next marker carries
	// it to the receiver's controller as the grow signal. recvWindow is
	// the window this side currently grants the remote sender (the
	// connection's standing receive memory); windowPeak and resizes
	// track the send window's trajectory for /flows.
	stalledRound bool
	recvWindow   int64
	windowPeak   int64
	resizes      int64

	// Flow telemetry (see Client.ConnStats): outbound volume, credit
	// grants observed, and — while a sender sits blocked on the window —
	// how long the grants that could unblock it took to arrive.
	// waitStart is the UnixNano instant the oldest still-blocked wait
	// has been credit-starved since (0 = no sender blocked).
	sentBytes   int64
	sentFrames  int64
	grants      int64
	grantWaitNS int64
	waitStart   int64
}

// sendData writes one data frame under the credit window, blocking
// while the window is exhausted. A frame larger than the whole window
// waits for the window to be fully replenished, then overdraws it. A
// failed write means the connection is dead (the remote process died or
// tore down): the connection is poisoned through the mesh so every
// other user of it fails with the same peer-lost cause.
func (pc *peerConn) sendData(m *mesh, src, dst int, payload []byte) (time.Duration, error) {
	c := m.c
	n := int64(len(payload))
	var stall time.Duration
	pc.mu.Lock()
	if pc.avail < n && pc.avail < pc.window {
		pc.stalledRound = true
		t0 := time.Now()
		if pc.waitStart == 0 {
			pc.waitStart = t0.UnixNano()
		}
		for pc.avail < n && pc.avail < pc.window && !c.stopping() && !pc.closed {
			pc.cond.Wait()
		}
		stall = time.Since(t0)
		pc.stallNS += int64(stall)
		pc.waitStart = 0
	}
	if c.stopping() || pc.closed {
		cause := pc.err
		pc.mu.Unlock()
		if cause != nil {
			return stall, fmt.Errorf("netcomm: send to workers %d-%d: %w", pc.lo, pc.hi, cause)
		}
		return stall, fmt.Errorf("netcomm: aborted while awaiting window credit for workers %d-%d", pc.lo, pc.hi)
	}
	pc.avail -= n
	pc.sentBytes += n
	pc.sentFrames++
	windowOutstanding.Add(n)
	pc.mu.Unlock()
	pc.wmu.Lock()
	err := writeMsg(pc.conn, kData, uint16(src), uint16(dst), payload)
	pc.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("netcomm: peer connection to workers %d-%d lost: %w", pc.lo, pc.hi, err)
		m.connLost(pc, err)
		return stall, fmt.Errorf("netcomm: send data frame %d->%d: %w", src, dst, err)
	}
	return stall, nil
}

// sendCredit returns staged credit to the remote sender.
func (pc *peerConn) sendCredit(grant int64) error {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], uint64(grant))
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	return writeMsg(pc.conn, kCredit, 0, 0, p[:])
}

// sendResize retargets the remote sender's window (receiver-initiated;
// the sender preserves its in-flight volume across the change).
func (pc *peerConn) sendResize(window int64) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	return writeMsg(pc.conn, kResize, 0, 0, encodeResize(window))
}

// sendDone writes one worker's round-completion marker, carrying the
// stall hint (b=1: a sender blocked on this window since the previous
// marker) the adaptive receiver's controller grows the window from.
func (pc *peerConn) sendDone(src int) error {
	var hint uint16
	pc.mu.Lock()
	if pc.stalledRound {
		hint = 1
		pc.stalledRound = false
	}
	pc.mu.Unlock()
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	return writeMsg(pc.conn, kDone, uint16(src), hint, nil)
}

// stallTime reports the cumulative time senders spent blocked on this
// connection's window.
func (pc *peerConn) stallTime() time.Duration {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return time.Duration(pc.stallNS)
}

// close shuts the connection down cleanly (local teardown): blocked
// senders wake and the connection's in-flight bytes return to the
// window gauge.
func (pc *peerConn) close() { pc.die(nil) }

// die marks the connection dead with the given cause (nil for a clean
// close), wakes blocked senders, and reconciles the window gauge. The
// first call wins; later calls only re-close the socket.
func (pc *peerConn) die(err error) {
	pc.mu.Lock()
	if !pc.closed {
		pc.closed = true
		pc.err = err
		windowOutstanding.Add(pc.avail - pc.window)
		pc.cond.Broadcast()
	}
	pc.mu.Unlock()
	pc.conn.Close()
}
