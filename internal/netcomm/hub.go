package netcomm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
)

// ErrWorkerLost marks a job failure caused by a worker process dropping
// its hub connection before delivering a result — the one failure class
// a coordinator with checkpoints can recover from by respawning the
// party. Wrapped into the hub's synthesized transport errors; test with
// errors.Is.
var ErrWorkerLost = errors.New("netcomm: worker connection lost")

// Hub is the coordinator side of the socket fabric: it accepts one
// connection per worker process, routes data frames between them, runs
// the distributed barrier (counting arrivals, broadcasting releases
// with the AllReduce aggregate), charges the simulated cost model from
// the per-round flush reports, and collects each process's result blob.
// A connection that drops before delivering its result is a worker
// failure: the hub aborts the job so every other process unwinds
// instead of waiting on a barrier the dead worker will never reach.
type Hub struct {
	m    int
	cost comm.CostModel
	ln   net.Listener
	log  *slog.Logger

	mu       sync.Mutex
	cond     *sync.Cond // signals joins, results, and state changes
	hosts    []*hubConn // per worker id: the connection hosting it
	conns    map[*hubConn]bool
	allConns []*hubConn // every connection ever registered (relay stats outlive pump exit)

	// samplesFn, when set (OnSamples, before workers join), receives
	// each kSamples payload a worker ships mid-run.
	samplesFn func(payload []byte)

	// barrier state
	arrived int
	accum   uint64

	// p2p data plane: the directory broadcast fires once, when every
	// worker has joined and announced a listener.
	peersSent bool

	// dataBytes counts frame payload bytes relayed through the hub —
	// the whole exchange volume on the hub plane, ~0 under p2p (where
	// only control traffic remains on the star).
	dataBytes int64

	// round accounting (from kFlush reports)
	flushes  int
	roundMax int64
	netBytes int64
	locBytes int64
	rounds   int64
	simNet   time.Duration

	// completion state: a worker is settled once its connection
	// delivered a result or was declared lost.
	results  map[int][]byte    // range-lo worker id -> result blob
	resultAt map[int]time.Time // range-lo worker id -> blob arrival time
	settled  []bool            // per worker id
	errs     []error           // synthesized transport failures
	aborted  bool
	closed   bool
}

type hubConn struct {
	conn      net.Conn
	wmu       sync.Mutex
	lo, hi    int
	gotResult bool

	// p2p data plane: the process's announced data listener.
	listenNet  string
	listenAddr string
	hasListen  bool

	// Relay telemetry (hub data plane): frames this connection sourced,
	// and how long they spent resident in the hub from payload read to
	// forwarded. Atomics: the pump goroutine writes, RelayStats reads.
	relayBytes  atomic.Int64
	relayFrames atomic.Int64
	residencyNS atomic.Int64
}

// NewHub creates a hub for an m-worker job and starts serving on ln
// (closing ln stops the accept loop; the caller owns ln's lifetime via
// Hub.Close).
func NewHub(m int, cost comm.CostModel, ln net.Listener) *Hub {
	h := &Hub{
		m:        m,
		cost:     cost,
		ln:       ln,
		log:      slog.New(slog.DiscardHandler),
		hosts:    make([]*hubConn, m),
		conns:    make(map[*hubConn]bool),
		results:  make(map[int][]byte),
		resultAt: make(map[int]time.Time),
		settled:  make([]bool, m),
	}
	h.cond = sync.NewCond(&h.mu)
	go h.acceptLoop()
	return h
}

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go h.serveConn(conn)
	}
}

// serveConn registers a worker process (hello) and then pumps its
// messages until the connection ends.
func (h *Hub) serveConn(conn net.Conn) {
	kind, a, b, n, err := readHeader(conn)
	if err != nil || kind != kHello || n != 0 {
		conn.Close()
		return
	}
	hc := &hubConn{conn: conn, lo: int(a), hi: int(b)}
	h.mu.Lock()
	if hc.lo > hc.hi || hc.hi >= h.m || h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	for w := hc.lo; w <= hc.hi; w++ {
		if h.hosts[w] != nil {
			h.mu.Unlock()
			conn.Close()
			return
		}
		h.hosts[w] = hc
	}
	h.conns[hc] = true
	h.allConns = append(h.allConns, hc)
	h.cond.Broadcast()
	h.mu.Unlock()
	h.log.Debug("worker joined", "workers", fmt.Sprintf("%d-%d", hc.lo, hc.hi))

	err = h.pump(hc)
	h.mu.Lock()
	delete(h.conns, hc)
	if !hc.gotResult {
		// The process died before reporting. If the job was already
		// aborted the drop is expected fallout (the process unwound or
		// was torn down), not a root cause — record the failure only
		// when this connection is the first thing to go wrong.
		if !h.aborted {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			h.errs = append(h.errs,
				fmt.Errorf("%w: workers %d-%d: %v", ErrWorkerLost, hc.lo, hc.hi, err))
			h.log.Warn("worker connection lost",
				"workers", fmt.Sprintf("%d-%d", hc.lo, hc.hi), "err", err)
		}
		for w := hc.lo; w <= hc.hi; w++ {
			h.settled[w] = true
		}
		h.abortLocked(fmt.Sprintf("workers %d-%d: worker process died", hc.lo, hc.hi))
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	conn.Close()
}

// pump handles one registered connection's messages; it returns nil on
// clean shutdown (result delivered, then EOF).
func (h *Hub) pump(hc *hubConn) error {
	var scratch [16]byte
	var frame []byte // reusable frame payload staging
	defer func() { hubBuffered.Add(-int64(cap(frame))) }()
	for {
		kind, a, b, n, err := readHeader(hc.conn)
		if err != nil {
			if hc.gotResult && err == io.EOF {
				return nil
			}
			return err
		}
		switch kind {
		case kFrame:
			src, dst := int(a), int(b)
			if src < hc.lo || src > hc.hi || dst >= h.m {
				return fmt.Errorf("bad frame route %d->%d", src, dst)
			}
			// Stage the payload before writing so a failed forward never
			// desynchronizes the sender's stream.
			if cap(frame) < n {
				hubBuffered.Add(int64(n - cap(frame)))
				frame = make([]byte, n)
			}
			frame = frame[:n]
			t0 := time.Now()
			if _, err := io.ReadFull(hc.conn, frame); err != nil {
				return err
			}
			h.mu.Lock()
			h.dataBytes += int64(n)
			target := h.hosts[dst]
			h.mu.Unlock()
			if target == nil {
				return fmt.Errorf("frame for unjoined worker %d", dst)
			}
			err := h.forward(target, kFrame, a, b, frame)
			hc.relayBytes.Add(int64(n))
			hc.relayFrames.Add(1)
			hc.residencyNS.Add(int64(time.Since(t0)))
			if err != nil {
				// The destination's connection is broken — that worker's
				// failure, not the sender's. Record it (first failure
				// wins) and abort; keep pumping the sender so its own
				// result still gets through.
				h.targetLost(target, err)
			}
		case kDone:
			// A lazy-mesh round marker for a pair still on the relay:
			// forward to the process hosting worker range b. It follows
			// the round's relayed frames on both the inbound stream
			// (sender wrote frames first) and the outbound one (the
			// frames were forwarded above before this marker was read),
			// so the destination observes frames-then-done exactly as on
			// a direct connection.
			if n != 0 {
				return fmt.Errorf("bad done marker payload length %d", n)
			}
			src, dst := int(a), int(b)
			if src < hc.lo || src > hc.hi || dst >= h.m {
				return fmt.Errorf("bad done marker route %d->%d", src, dst)
			}
			h.mu.Lock()
			target := h.hosts[dst]
			h.mu.Unlock()
			if target == nil {
				return fmt.Errorf("done marker for unjoined worker %d", dst)
			}
			if err := h.forward(target, kDone, a, b, nil); err != nil {
				h.targetLost(target, err)
			}
		case kPromote:
			// A mesh-promotion request from the higher-range side of a
			// relayed pair, forwarded to the lower-range side (worker
			// range start b), which owns the dial.
			p := make([]byte, n)
			if _, err := io.ReadFull(hc.conn, p); err != nil {
				return err
			}
			plo, phi, _, err := decodePromote(p)
			if err != nil {
				return err
			}
			if plo != hc.lo || phi != hc.hi {
				return fmt.Errorf("promotion request claims workers %d-%d from connection %d-%d", plo, phi, hc.lo, hc.hi)
			}
			dst := int(b)
			if dst >= h.m {
				return fmt.Errorf("bad promotion target %d", dst)
			}
			h.mu.Lock()
			target := h.hosts[dst]
			h.mu.Unlock()
			if target == nil {
				return fmt.Errorf("promotion request for unjoined worker %d", dst)
			}
			if err := h.forward(target, kPromote, a, b, p); err != nil {
				h.targetLost(target, err)
			}
		case kFlush:
			if n != 16 {
				return fmt.Errorf("bad flush payload length %d", n)
			}
			if _, err := io.ReadFull(hc.conn, scratch[:16]); err != nil {
				return err
			}
			netB := int64(binary.LittleEndian.Uint64(scratch[0:]))
			locB := int64(binary.LittleEndian.Uint64(scratch[8:]))
			h.mu.Lock()
			h.netBytes += netB
			h.locBytes += locB
			if netB > h.roundMax {
				h.roundMax = netB
			}
			h.flushes++
			if h.flushes == h.m {
				h.flushes = 0
				h.rounds++
				h.simNet += h.cost.RoundTime(h.roundMax)
				h.roundMax = 0
			}
			h.mu.Unlock()
		case kArrive:
			if n != 8 {
				return fmt.Errorf("bad arrive payload length %d", n)
			}
			if _, err := io.ReadFull(hc.conn, scratch[:8]); err != nil {
				return err
			}
			h.arrive(int(a), binary.LittleEndian.Uint64(scratch[:8]))
		case kListen:
			p := make([]byte, n)
			if _, err := io.ReadFull(hc.conn, p); err != nil {
				return err
			}
			lnet, laddr, err := decodeListen(p)
			if err != nil {
				return err
			}
			h.mu.Lock()
			hc.listenNet, hc.listenAddr, hc.hasListen = lnet, laddr, true
			h.maybeSendPeersLocked()
			h.mu.Unlock()
		case kAbort:
			reason := make([]byte, n)
			if _, err := io.ReadFull(hc.conn, reason); err != nil {
				return err
			}
			h.mu.Lock()
			h.abortLocked(fmt.Sprintf("workers %d-%d: %s", hc.lo, hc.hi, reason))
			h.mu.Unlock()
		case kSamples:
			p := make([]byte, n)
			if _, err := io.ReadFull(hc.conn, p); err != nil {
				return err
			}
			h.mu.Lock()
			fn := h.samplesFn
			h.mu.Unlock()
			if fn != nil {
				fn(p)
			}
		case kResult:
			blob := make([]byte, n)
			if _, err := io.ReadFull(hc.conn, blob); err != nil {
				return err
			}
			h.mu.Lock()
			h.results[hc.lo] = blob
			h.resultAt[hc.lo] = time.Now()
			hc.gotResult = true
			for w := hc.lo; w <= hc.hi; w++ {
				h.settled[w] = true
			}
			h.cond.Broadcast()
			h.mu.Unlock()
		default:
			return fmt.Errorf("unexpected message kind %d", kind)
		}
	}
}

// maybeSendPeersLocked broadcasts the peer directory once every worker
// has joined and every connection has announced a data listener. Every
// process sends its kListen after its kHello on the same stream, so
// the party's last kListen is the event that completes the directory;
// the writes run in their own goroutine (h.mu stays cheap, and a
// stalled worker cannot wedge the pump that triggered the broadcast).
func (h *Hub) maybeSendPeersLocked() {
	if h.peersSent || h.closed {
		return
	}
	for _, hc := range h.hosts {
		if hc == nil {
			return
		}
	}
	conns := make([]*hubConn, 0, len(h.conns))
	dir := make([]peerInfo, 0, len(h.conns))
	for hc := range h.conns {
		if !hc.hasListen {
			return
		}
		conns = append(conns, hc)
		dir = append(dir, peerInfo{lo: hc.lo, hi: hc.hi, network: hc.listenNet, addr: hc.listenAddr})
	}
	sort.Slice(dir, func(i, j int) bool { return dir[i].lo < dir[j].lo })
	h.peersSent = true
	payload := encodePeerDirectory(dir)
	h.log.Debug("peer directory broadcast", "processes", len(dir))
	go func() {
		for _, hc := range conns {
			hc.wmu.Lock()
			_ = writeMsg(hc.conn, kPeers, 0, 0, payload)
			hc.wmu.Unlock()
		}
	}()
}

// OnSamples installs a handler for the opaque in-flight sample batches
// workers ship with Client.SendSamples (the live-events feed). The
// handler runs on hub pump goroutines, so it must be safe for
// concurrent use and quick. Call before workers connect.
func (h *Hub) OnSamples(fn func(payload []byte)) {
	h.mu.Lock()
	h.samplesFn = fn
	h.mu.Unlock()
}

// RelayStats reports, per worker process, the hub data-plane relay
// traffic it sourced: frame volume and cumulative hub residency (read
// to forwarded). Empty under p2p, where frames never transit the hub.
func (h *Hub) RelayStats() []obs.RelayStat {
	h.mu.Lock()
	conns := append([]*hubConn(nil), h.allConns...)
	h.mu.Unlock()
	out := make([]obs.RelayStat, 0, len(conns))
	for _, hc := range conns {
		frames := hc.relayFrames.Load()
		if frames == 0 {
			continue
		}
		out = append(out, obs.RelayStat{
			Lo: hc.lo, Hi: hc.hi + 1,
			Bytes:       hc.relayBytes.Load(),
			Frames:      frames,
			ResidencyNS: hc.residencyNS.Load(),
		})
	}
	return out
}

// DataBytes returns the frame payload bytes relayed through the hub so
// far. On the hub data plane this is the job's whole exchange volume;
// under p2p it stays at zero — the test-visible proof that data frames
// never transit the coordinator.
func (h *Hub) DataBytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dataBytes
}

// forward relays one staged message to a worker connection.
func (h *Hub) forward(to *hubConn, kind uint8, a, b uint16, payload []byte) error {
	to.wmu.Lock()
	defer to.wmu.Unlock()
	return writeMsg(to.conn, kind, a, b, payload)
}

// targetLost records a failed forward: the destination's connection is
// broken — that worker's failure, not the sender's. First failure wins;
// the job aborts either way.
func (h *Hub) targetLost(target *hubConn, err error) {
	h.mu.Lock()
	if !h.aborted {
		h.errs = append(h.errs,
			fmt.Errorf("%w: workers %d-%d: %v", ErrWorkerLost, target.lo, target.hi, err))
	}
	h.abortLocked(fmt.Sprintf("workers %d-%d: frame delivery failed", target.lo, target.hi))
	h.mu.Unlock()
}

// arrive counts barrier arrivals; the M-th arrival releases the
// crossing by broadcasting the aggregate.
func (h *Hub) arrive(count int, value uint64) {
	h.mu.Lock()
	h.arrived += count
	h.accum += value
	if h.arrived < h.m {
		h.mu.Unlock()
		return
	}
	h.arrived = 0
	agg := h.accum
	h.accum = 0
	conns := make([]*hubConn, 0, len(h.conns))
	for hc := range h.conns {
		conns = append(conns, hc)
	}
	h.mu.Unlock()
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], agg)
	for _, hc := range conns {
		hc.wmu.Lock()
		_ = writeMsg(hc.conn, kRelease, 0, 0, p[:])
		hc.wmu.Unlock()
	}
}

// Abort aborts the job: every connected process's barrier is released
// with the reason and the job can never complete normally.
func (h *Hub) Abort(reason string) {
	h.mu.Lock()
	h.abortLocked(reason)
	h.mu.Unlock()
}

// abortLocked broadcasts the abort once; later aborts are no-ops (the
// first reason is the root cause). The socket writes run in their own
// goroutine: a worker whose receive path has stalled would otherwise
// block the broadcast while h.mu is held and wedge the whole hub —
// including the WaitResults deadline, whose wakeup needs h.mu too. A
// write deadline bounds the goroutine against such a worker; its
// connection is doomed regardless.
func (h *Hub) abortLocked(reason string) {
	if h.aborted {
		return
	}
	h.aborted = true
	h.log.Warn("job aborted", "reason", reason)
	conns := make([]*hubConn, 0, len(h.conns))
	for hc := range h.conns {
		conns = append(conns, hc)
	}
	h.cond.Broadcast()
	go func() {
		for _, hc := range conns {
			hc.wmu.Lock()
			hc.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			_ = writeMsg(hc.conn, kAbort, 0, 0, []byte(reason))
			hc.conn.SetWriteDeadline(time.Time{})
			hc.wmu.Unlock()
		}
	}()
}

// Addr returns the hub's listen address (for spawning workers).
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// WaitJoined blocks until all m workers are connected or the deadline
// passes.
func (h *Hub) WaitJoined(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	stop := time.AfterFunc(timeout, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer stop.Stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		joined := 0
		for _, hc := range h.hosts {
			if hc != nil {
				joined++
			}
		}
		if joined == h.m {
			return nil
		}
		if h.aborted {
			return fmt.Errorf("netcomm: job aborted while waiting for workers")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("netcomm: %d of %d workers joined within %v", joined, h.m, timeout)
		}
		h.cond.Wait()
	}
}

// WaitResults blocks until every worker is settled (result delivered or
// connection declared lost) or the deadline passes, then returns the
// result blobs sorted by worker range plus any synthesized transport
// errors.
func (h *Hub) WaitResults(timeout time.Duration) ([][]byte, []error, error) {
	deadline := time.Now().Add(timeout)
	stop := time.AfterFunc(timeout, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer stop.Stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		allSettled := true
		for w, s := range h.settled {
			if s {
				continue
			}
			// once the job is aborted, a worker whose connection is
			// gone — or that never joined at all (its process died
			// before dialing) — can deliver nothing more; waiting out
			// the deadline for it would stall every fast-failing job
			if h.aborted && !h.conns[h.hosts[w]] {
				continue
			}
			allSettled = false
			break
		}
		if allSettled {
			los := make([]int, 0, len(h.results))
			for lo := range h.results {
				los = append(los, lo)
			}
			sort.Ints(los)
			blobs := make([][]byte, 0, len(los))
			for _, lo := range los {
				blobs = append(blobs, h.results[lo])
			}
			return blobs, h.errs, nil
		}
		if time.Now().After(deadline) {
			return nil, h.errs, fmt.Errorf("netcomm: timed out waiting for worker results after %v", timeout)
		}
		h.cond.Wait()
	}
}

// SetLogger directs the hub's lifecycle events (joins, lost
// connections, aborts) to l. The default logger discards them. Call
// before workers connect.
func (h *Hub) SetLogger(l *slog.Logger) {
	if l != nil {
		h.log = l
	}
}

// ResultTimes returns, per reporting worker range (keyed by the range's
// first worker id), the time its result blob arrived at the hub.
func (h *Hub) ResultTimes() map[int]time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[int]time.Time, len(h.resultAt))
	for lo, t := range h.resultAt {
		out[lo] = t
	}
	return out
}

// Stats returns the job-wide communication statistics observed by the
// hub.
func (h *Hub) Stats() comm.Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return comm.Stats{
		NetworkBytes: h.netBytes,
		LocalBytes:   h.locBytes,
		Rounds:       h.rounds,
		SimNetTime:   h.simNet,
	}
}

// Close shuts the hub down: the listener stops accepting and every
// connection is closed.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	conns := make([]*hubConn, 0, len(h.conns))
	for hc := range h.conns {
		conns = append(conns, hc)
	}
	h.mu.Unlock()
	h.ln.Close()
	for _, hc := range conns {
		hc.conn.Close()
	}
}
