package netcomm

// The adaptive plane's per-connection window tuner. The receiver of a
// peer connection owns the window it grants, so it also owns the
// controller: every completed sender round is one observation — the
// bytes that round moved over the connection and whether the sender
// reported blocking on exhausted credit since the last round (the
// stall hint piggybacked on its DONE marker, which is exactly the
// interval the sender's grant-wait clock was running). The controller
// is deliberately a pure state machine over those two inputs so its
// grow/shrink trajectory is unit-testable without sockets or clocks.
//
// The policy is AIMD-shaped but sized to the workload rather than to
// loss: a stalled sender doubles the window (multiplicative increase —
// a stall means the whole window was outstanding, so linear growth
// would take round-trips proportional to the deficit), while a window
// that sits mostly idle for several consecutive rounds halves, floored
// at twice the observed round volume (the steady state keeps one
// round's frames in flight while the next round serializes) and at the
// configured minimum. Growth is clamped at the configured maximum, so
// a receiver never grants more than WindowMax per connection no matter
// how hard its senders push.

// Default bounds for the adaptive window, applied when the
// corresponding Config fields are zero. The minimum keeps a shrunken
// connection from degenerating into per-frame stop-and-wait on idle
// meshes; the maximum bounds what one saturated connection can pin.
const (
	DefaultWindowMin = 64 << 10
	DefaultWindowMax = 64 << 20
)

// windowIdleRounds is how many consecutive oversized rounds (window
// strictly above twice the round volume) the controller tolerates
// before shrinking. One busy or stalled round resets the count, so a
// bursty flow keeps its headroom.
const windowIdleRounds = 3

// windowController tunes one peer connection's granted window between
// Min and Max. Not safe for concurrent use; the owning read loop is
// the only caller.
type windowController struct {
	min, max int64
	window   int64
	idle     int
}

// newWindowController starts a controller at the initial window,
// clamped into [min, max].
func newWindowController(initial, min, max int64) *windowController {
	w := &windowController{min: min, max: max, window: initial}
	if w.window < min {
		w.window = min
	}
	if w.window > max {
		w.window = max
	}
	return w
}

// Observe folds one completed sender round — roundBytes moved, stalled
// reporting whether the sender blocked on credit since the previous
// round — and returns the window the receiver should now grant.
func (w *windowController) Observe(roundBytes int64, stalled bool) int64 {
	if stalled || roundBytes > w.window {
		// The sender had the whole window in flight and wanted more:
		// double, up to the cap. A round that moved more than the window
		// is the same signal even without the hint — the sender overdrew
		// the window via the oversized-frame borrow rule, and whether it
		// also blocked depends only on how fast credit flowed back. A
		// stall observation trumps idleness — the round volume can look
		// small precisely because the window throttled it.
		w.idle = 0
		if w.window < w.max {
			w.window *= 2
			if w.window > w.max {
				w.window = w.max
			}
		}
		return w.window
	}
	if roundBytes*2 < w.window {
		// Oversized: the window could halve and still hold two rounds'
		// volume. The shrink below is floored at exactly 2x the round
		// volume, and a window sitting on that floor no longer satisfies
		// this test, so repeated idle rounds converge there and stop.
		w.idle++
		if w.idle >= windowIdleRounds {
			w.idle = 0
			next := w.window / 2
			if floor := roundBytes * 2; next < floor {
				next = floor
			}
			if next < w.min {
				next = w.min
			}
			w.window = next
		}
	} else {
		w.idle = 0
	}
	return w.window
}
