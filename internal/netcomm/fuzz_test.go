package netcomm

import (
	"bytes"
	"testing"
)

// The peer directory crosses a process boundary: arbitrary bytes must
// decode to an error or a directory that satisfies every invariant the
// mesh relies on (sorted, contiguous, covering 0..m-1), never panic.
func FuzzPeerDirectory(f *testing.F) {
	f.Add(encodePeerDirectory(nil), 1)
	f.Add(encodePeerDirectory([]peerInfo{
		{lo: 0, hi: 0, network: "tcp", addr: "127.0.0.1:9"},
	}), 1)
	f.Add(encodePeerDirectory([]peerInfo{
		{lo: 0, hi: 1, network: "unix", addr: "/tmp/a.sock"},
		{lo: 2, hi: 3, network: "unix", addr: "/tmp/b.sock"},
	}), 4)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}, 8)
	f.Fuzz(func(t *testing.T, data []byte, m int) {
		if m <= 0 || m > 1<<16 {
			m = 8
		}
		dir, err := decodePeerDirectory(data, m)
		if err != nil {
			return
		}
		next := 0
		for _, p := range dir {
			if p.lo != next || p.hi < p.lo || p.hi >= m {
				t.Fatalf("accepted directory violates range invariants: %+v (m=%d)", dir, m)
			}
			next = p.hi + 1
		}
		if next != m {
			t.Fatalf("accepted directory covers %d of %d workers: %+v", next, m, dir)
		}
		// A decoded directory must survive a round trip unchanged.
		again, err := decodePeerDirectory(encodePeerDirectory(dir), m)
		if err != nil {
			t.Fatalf("re-encoded directory rejected: %v", err)
		}
		for i := range dir {
			if dir[i] != again[i] {
				t.Fatalf("directory round trip changed entry %d: %+v != %+v", i, dir[i], again[i])
			}
		}
	})
}

// The listen announcement is the other worker-supplied p2p payload.
func FuzzListenAnnouncement(f *testing.F) {
	f.Add(encodeListen("tcp", "127.0.0.1:12345"))
	f.Add(encodeListen("unix", "/tmp/x/data.sock"))
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		network, addr, err := decodeListen(data)
		if err != nil {
			return
		}
		n2, a2, err := decodeListen(encodeListen(network, addr))
		if err != nil || n2 != network || a2 != addr {
			t.Fatalf("listen round trip changed (%q,%q) -> (%q,%q,%v)", network, addr, n2, a2, err)
		}
	})
}

// Every connection — hub, and now peer DATA/DONE/CREDIT streams —
// parses frames through readHeader: arbitrary header bytes must yield
// an error or a validated (kind, length) pair.
func FuzzWireHeader(f *testing.F) {
	var valid [headerLen]byte
	valid[0] = kData
	f.Add(valid[:])
	valid[0] = kCredit
	f.Add(append(valid[:], 1, 2, 3))
	f.Add([]byte{0xff, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, _, _, n, err := readHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if kind < kHello || kind > kPromote {
			t.Fatalf("accepted unknown kind %d", kind)
		}
		if n < 0 || n > maxPayload {
			t.Fatalf("accepted payload length %d", n)
		}
	})
}

// A window-resize frame arrives from the remote peer mid-run and is fed
// straight into the sender's credit arithmetic: arbitrary payloads must
// decode to an error or a window in (0, maxPayload], never to a value
// that would wedge or overflow the sender, and every valid window must
// survive a round trip exactly.
func FuzzResizeFrame(f *testing.F) {
	f.Add(encodeResize(DefaultWindowBytes))
	f.Add(encodeResize(DefaultWindowMin))
	f.Add(encodeResize(1))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := decodeResize(data)
		if err != nil {
			return
		}
		if w <= 0 || w > maxPayload {
			t.Fatalf("accepted out-of-range window %d", w)
		}
		again, err := decodeResize(encodeResize(w))
		if err != nil || again != w {
			t.Fatalf("resize round trip changed %d -> (%d, %v)", w, again, err)
		}
	})
}

// A promotion request crosses two trust boundaries (worker -> hub ->
// worker): arbitrary payloads must decode to an error or a worker range
// that satisfies the directory invariants, and valid requests must
// round-trip exactly.
func FuzzPromotionFrame(f *testing.F) {
	f.Add(encodePromote(0, 0, 0))
	f.Add(encodePromote(2, 3, DefaultPromoteBytes))
	f.Add(encodePromote(100, 200, 1<<40))
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		lo, hi, relayed, err := decodePromote(data)
		if err != nil {
			return
		}
		if lo < 0 || hi < lo || hi >= maxDirectoryPeers || relayed < 0 {
			t.Fatalf("accepted invalid promotion (lo=%d hi=%d relayed=%d)", lo, hi, relayed)
		}
		l2, h2, r2, err := decodePromote(encodePromote(lo, hi, relayed))
		if err != nil || l2 != lo || h2 != hi || r2 != relayed {
			t.Fatalf("promotion round trip changed (%d,%d,%d) -> (%d,%d,%d,%v)",
				lo, hi, relayed, l2, h2, r2, err)
		}
	})
}
