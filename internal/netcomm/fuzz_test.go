package netcomm

import (
	"bytes"
	"testing"
)

// The peer directory crosses a process boundary: arbitrary bytes must
// decode to an error or a directory that satisfies every invariant the
// mesh relies on (sorted, contiguous, covering 0..m-1), never panic.
func FuzzPeerDirectory(f *testing.F) {
	f.Add(encodePeerDirectory(nil), 1)
	f.Add(encodePeerDirectory([]peerInfo{
		{lo: 0, hi: 0, network: "tcp", addr: "127.0.0.1:9"},
	}), 1)
	f.Add(encodePeerDirectory([]peerInfo{
		{lo: 0, hi: 1, network: "unix", addr: "/tmp/a.sock"},
		{lo: 2, hi: 3, network: "unix", addr: "/tmp/b.sock"},
	}), 4)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}, 8)
	f.Fuzz(func(t *testing.T, data []byte, m int) {
		if m <= 0 || m > 1<<16 {
			m = 8
		}
		dir, err := decodePeerDirectory(data, m)
		if err != nil {
			return
		}
		next := 0
		for _, p := range dir {
			if p.lo != next || p.hi < p.lo || p.hi >= m {
				t.Fatalf("accepted directory violates range invariants: %+v (m=%d)", dir, m)
			}
			next = p.hi + 1
		}
		if next != m {
			t.Fatalf("accepted directory covers %d of %d workers: %+v", next, m, dir)
		}
		// A decoded directory must survive a round trip unchanged.
		again, err := decodePeerDirectory(encodePeerDirectory(dir), m)
		if err != nil {
			t.Fatalf("re-encoded directory rejected: %v", err)
		}
		for i := range dir {
			if dir[i] != again[i] {
				t.Fatalf("directory round trip changed entry %d: %+v != %+v", i, dir[i], again[i])
			}
		}
	})
}

// The listen announcement is the other worker-supplied p2p payload.
func FuzzListenAnnouncement(f *testing.F) {
	f.Add(encodeListen("tcp", "127.0.0.1:12345"))
	f.Add(encodeListen("unix", "/tmp/x/data.sock"))
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		network, addr, err := decodeListen(data)
		if err != nil {
			return
		}
		n2, a2, err := decodeListen(encodeListen(network, addr))
		if err != nil || n2 != network || a2 != addr {
			t.Fatalf("listen round trip changed (%q,%q) -> (%q,%q,%v)", network, addr, n2, a2, err)
		}
	})
}

// Every connection — hub, and now peer DATA/DONE/CREDIT streams —
// parses frames through readHeader: arbitrary header bytes must yield
// an error or a validated (kind, length) pair.
func FuzzWireHeader(f *testing.F) {
	var valid [headerLen]byte
	valid[0] = kData
	f.Add(valid[:])
	valid[0] = kCredit
	f.Add(append(valid[:], 1, 2, 3))
	f.Add([]byte{0xff, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, _, _, n, err := readHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if kind < kHello || kind > kCredit {
			t.Fatalf("accepted unknown kind %d", kind)
		}
		if n < 0 || n > maxPayload {
			t.Fatalf("accepted payload length %d", n)
		}
	})
}
