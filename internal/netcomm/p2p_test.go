package netcomm_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/netcomm"
	"repro/internal/partition"
	"repro/internal/seq"
)

// startFabricP2P brings up a hub plus procs p2p clients hosting m
// workers in contiguous ranges over network ("tcp" or "unix"),
// exercising co-hosted staging when procs < m.
func startFabricP2P(t *testing.T, network string, m, procs, windowBytes int) (*netcomm.Hub, []*netcomm.Client) {
	t.Helper()
	var ln net.Listener
	var err error
	if network == "unix" {
		ln, err = net.Listen("unix", t.TempDir()+"/hub.sock")
	} else {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		t.Fatal(err)
	}
	hub := netcomm.NewHub(m, comm.CostModel{}, ln)
	t.Cleanup(hub.Close)
	clients := make([]*netcomm.Client, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	per := (m + procs - 1) / procs
	for i := 0; i < procs; i++ {
		lo := i * per
		hi := lo + per - 1
		if hi >= m {
			hi = m - 1
		}
		wg.Add(1)
		// DialConfig blocks until the mesh is up, which needs every
		// process joined: dial concurrently, as real processes would.
		go func(i, lo, hi int) {
			defer wg.Done()
			clients[i], errs[i] = netcomm.DialConfig(netcomm.Config{
				Network: network, Addr: ln.Addr().String(),
				Lo: lo, Hi: hi, M: m,
				DataPlane:   netcomm.DataPlaneP2P,
				WindowBytes: windowBytes,
			})
		}(i, lo, hi)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		c := clients[i]
		t.Cleanup(func() { c.Close() })
	}
	if err := hub.WaitJoined(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return hub, clients
}

// The p2p data plane must produce oracle-identical results with the
// data frames never transiting the hub: the hub's data-byte counter
// stays at zero while its flush-report accounting (cost model, round
// and byte totals) still sees the whole exchange volume.
func TestP2PFabricWCCMatchesOracleOffHub(t *testing.T) {
	for _, network := range []string{"tcp", "unix"} {
		t.Run(network, func(t *testing.T) {
			g := graph.Undirectify(graph.RMAT(8, 5, 7, graph.RMATOptions{NoSelfLoops: true}))
			want := seq.ConnectedComponents(g)
			const m, procs = 4, 2 // 2 workers per process: exercises co-hosted staging
			hub, clients := startFabricP2P(t, network, m, procs, 0)
			part := partition.MustHash(g.NumVertices(), m)
			frags := frag.Build(g, part)
			partials := make([][]graph.VertexID, procs)
			errs := make([]error, procs)
			var wg sync.WaitGroup
			for i := range clients {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					o := algorithms.Options{Part: part, Frags: frags, MaxSupersteps: 100000, Fabric: clients[i]}
					partials[i], _, errs[i] = algorithms.WCCPropagation(g, o)
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("process %d: %v", i, err)
				}
			}
			for v := 0; v < g.NumVertices(); v++ {
				owner := part.Owner(graph.VertexID(v))
				got := partials[owner/2][v] // 2 workers per process
				if got != want[v] {
					t.Fatalf("vertex %d: got %d want %d", v, got, want[v])
				}
			}
			if db := hub.DataBytes(); db != 0 {
				t.Errorf("hub relayed %d data bytes under p2p, want 0", db)
			}
			st := hub.Stats()
			if st.NetworkBytes == 0 || st.Rounds == 0 || st.SimNetTime == 0 {
				t.Errorf("hub flush accounting missing under p2p: %+v", st)
			}
			var sent int64
			for _, c := range clients {
				cs := c.Stats()
				for _, b := range cs.PeerBytes {
					sent += b
				}
			}
			if sent != st.NetworkBytes {
				t.Errorf("per-peer byte counters sum to %d, hub accounted %d", sent, st.NetworkBytes)
			}
		})
	}
}

// The hub plane, by contrast, relays every data byte: the counter the
// p2p test pins at zero tracks the full exchange volume here.
func TestHubPlaneRelaysDataBytes(t *testing.T) {
	g := graph.Undirectify(graph.RMAT(7, 4, 3, graph.RMATOptions{NoSelfLoops: true}))
	hub, clients := startFabric(t, 2)
	part := partition.MustHash(g.NumVertices(), 2)
	frags := frag.Build(g, part)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := algorithms.Options{Part: part, Frags: frags, MaxSupersteps: 100000, Fabric: clients[i]}
			if _, _, err := algorithms.WCCChannel(g, o); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if db, net := hub.DataBytes(), hub.Stats().NetworkBytes; db != net {
		t.Errorf("hub relayed %d data bytes, flush reports accounted %d — should match on the hub plane", db, net)
	} else if db == 0 {
		t.Error("hub relayed no data bytes on the hub plane")
	}
}

// The wire barrier must behave identically on the p2p plane (it stays
// on the control connection; only data frames moved off the star).
func TestP2PWireBarrierAllReduce(t *testing.T) {
	const m = 4
	_, clients := startFabricP2P(t, "tcp", m, m, 0)
	var wg sync.WaitGroup
	sums := make([]uint64, m)
	oks := make([]bool, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bar := clients[i].Barrier()
			for round := 0; round < 20; round++ {
				sums[i], oks[i] = bar.AllReduce(uint64(i + 1))
				if !oks[i] || sums[i] != m*(m+1)/2 {
					return
				}
				if !bar.Wait() {
					oks[i] = false
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < m; i++ {
		if !oks[i] || sums[i] != m*(m+1)/2 {
			t.Fatalf("client %d: sum=%d ok=%v want %d true", i, sums[i], oks[i], m*(m+1)/2)
		}
	}
}
