package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 0}, {0, 2, 0}, {2, 3, 0}, {3, 0, 0}}, false)
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("nbrs(0)=%v", got)
	}
	if g.OutDegree(1) != 0 {
		t.Errorf("deg(1)=%d", g.OutDegree(1))
	}
	if g.OutDegree(3) != 1 {
		t.Errorf("deg(3)=%d", g.OutDegree(3))
	}
}

func TestFromEdgesWeighted(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 5}, {0, 2, 7}}, true)
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	ws := g.NeighborWeights(0)
	if ws[0] != 5 || ws[1] != 7 {
		t.Errorf("weights=%v", ws)
	}
}

func TestFromEdgesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromEdges(2, []Edge{{0, 5, 0}}, false)
}

func TestReverse(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 3}, {1, 2, 4}}, true)
	r := g.Reverse()
	if r.OutDegree(0) != 0 || r.OutDegree(1) != 1 || r.OutDegree(2) != 1 {
		t.Errorf("reverse degrees wrong")
	}
	if r.Neighbors(1)[0] != 0 || r.NeighborWeights(1)[0] != 3 {
		t.Errorf("reverse edge 1->0 wrong")
	}
}

func TestEdgesRoundtrip(t *testing.T) {
	g := RMAT(6, 4, 1, RMATOptions{Weighted: true})
	edges := g.Edges()
	g2 := FromEdges(g.NumVertices(), edges, true)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count mismatch")
	}
	for u := 0; u < g.NumVertices(); u++ {
		a, b := g.Neighbors(VertexID(u)), g2.Neighbors(VertexID(u))
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adj mismatch at %d[%d]", u, i)
			}
		}
	}
}

func TestUndirectify(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 2}, {1, 0, 9}, {1, 1, 1}, {2, 3, 4}}, true)
	u := Undirectify(g)
	if !u.Undirected {
		t.Error("not marked undirected")
	}
	// self loop removed; 0-1 deduped (min weight 2); 2-3 symmetric
	if u.NumEdges() != 4 {
		t.Fatalf("edges=%d want 4", u.NumEdges())
	}
	if u.OutDegree(1) != 1 {
		t.Errorf("deg(1)=%d", u.OutDegree(1))
	}
	if w := u.NeighborWeights(0)[0]; w != 2 {
		t.Errorf("dedup weight=%d want 2", w)
	}
	// symmetry
	for v := 0; v < u.NumVertices(); v++ {
		for i, x := range u.Neighbors(VertexID(v)) {
			found := false
			for _, y := range u.Neighbors(x) {
				if y == VertexID(v) {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric (i=%d)", v, x, i)
			}
		}
	}
}

func TestChain(t *testing.T) {
	g := Chain(5)
	if g.NumEdges() != 4 {
		t.Fatalf("edges=%d", g.NumEdges())
	}
	if g.OutDegree(0) != 0 {
		t.Errorf("root has out-degree %d", g.OutDegree(0))
	}
	for i := 1; i < 5; i++ {
		if got := g.Neighbors(VertexID(i))[0]; got != VertexID(i-1) {
			t.Errorf("parent(%d)=%d", i, got)
		}
	}
}

func TestRandomTreeInvariant(t *testing.T) {
	g := RandomTree(200, 42)
	if g.NumEdges() != 199 {
		t.Fatalf("edges=%d", g.NumEdges())
	}
	// every non-root has exactly one parent with smaller id (acyclic)
	for i := 1; i < 200; i++ {
		nbrs := g.Neighbors(VertexID(i))
		if len(nbrs) != 1 {
			t.Fatalf("vertex %d out-degree %d", i, len(nbrs))
		}
		if nbrs[0] >= VertexID(i) {
			t.Fatalf("parent %d >= child %d", nbrs[0], i)
		}
	}
	if g.OutDegree(0) != 0 {
		t.Errorf("root out-degree %d", g.OutDegree(0))
	}
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(8, 8, 7, RMATOptions{NoSelfLoops: true})
	if g.NumVertices() != 256 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if g.NumEdges() != 8*256 {
		t.Fatalf("m=%d", g.NumEdges())
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			if v == VertexID(u) {
				t.Fatalf("self loop at %d", u)
			}
		}
	}
	// determinism
	g2 := RMAT(8, 8, 7, RMATOptions{NoSelfLoops: true})
	if g2.NumEdges() != g.NumEdges() || g2.Adj[0] != g.Adj[0] || g2.Adj[100] != g.Adj[100] {
		t.Errorf("RMAT not deterministic")
	}
	// skew: max degree should be far above average
	if g.MaxDegree() < 4*int(g.AvgDegree()) {
		t.Errorf("power-law graph not skewed: max=%d avg=%f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATWeighted(t *testing.T) {
	g := RMAT(6, 4, 3, RMATOptions{Weighted: true, MaxWeight: 10})
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	for _, w := range g.Weights {
		if w < 1 || w > 10 {
			t.Fatalf("weight %d out of range", w)
		}
	}
}

func TestSocialRMAT(t *testing.T) {
	g := SocialRMAT(7, 4, 5)
	if !g.Undirected {
		t.Error("not undirected")
	}
	if g.NumEdges()%2 != 0 {
		t.Errorf("odd directed edge count %d", g.NumEdges())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5, 10, 3)
	if g.NumVertices() != 20 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// interior degree 4, corner degree 2
	if g.OutDegree(0) != 2 {
		t.Errorf("corner degree %d", g.OutDegree(0))
	}
	if g.OutDegree(VertexID(1*5+2)) != 4 {
		t.Errorf("interior degree %d", g.OutDegree(6))
	}
	// weights symmetric
	for u := 0; u < g.NumVertices(); u++ {
		ws := g.NeighborWeights(VertexID(u))
		for i, v := range g.Neighbors(VertexID(u)) {
			for j, bk := range g.Neighbors(v) {
				if bk == VertexID(u) && g.NeighborWeights(v)[j] != ws[i] {
					t.Fatalf("asymmetric weight on %d-%d", u, v)
				}
			}
		}
	}
}

func TestForest(t *testing.T) {
	g := Forest(100, 7, 11)
	if g.NumEdges() != 93 {
		t.Fatalf("edges=%d", g.NumEdges())
	}
	for i := 0; i < 7; i++ {
		if g.OutDegree(VertexID(i)) != 0 {
			t.Errorf("root %d has out-degree", i)
		}
	}
	// trees are disjoint: stripe check — each vertex's chain reaches its
	// stripe root
	for i := 7; i < 100; i++ {
		u := VertexID(i)
		for g.OutDegree(u) > 0 {
			u = g.Neighbors(u)[0]
		}
		if int(u) != (i-7)%7 {
			t.Fatalf("vertex %d reaches root %d, want %d", i, u, (i-7)%7)
		}
	}
}

func TestRandomDigraph(t *testing.T) {
	g := RandomDigraph(50, 200, 1)
	if g.NumVertices() != 50 || g.NumEdges() != 200 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for u := 0; u < 50; u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			if v == VertexID(u) {
				t.Fatal("self loop")
			}
		}
	}
}

func TestEdgeListIORoundtrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := RMAT(5, 4, 9, RMATOptions{Weighted: weighted})
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("size mismatch")
		}
		for u := 0; u < g.NumVertices(); u++ {
			a, b := g.Neighbors(VertexID(u)), g2.Neighbors(VertexID(u))
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("adj mismatch")
				}
			}
			if weighted {
				wa, wb := g.NeighborWeights(VertexID(u)), g2.NeighborWeights(VertexID(u))
				for i := range wa {
					if wa[i] != wb[i] {
						t.Fatalf("weight mismatch")
					}
				}
			}
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"x y\n",
		"2 1\n0\n",
		"2 1 w\n0 1\n",
		"2 2\n0 1\n",
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(bytes.NewBufferString(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

// Property: FromEdges preserves multiset of edges for random inputs.
func TestFromEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		m := rng.Intn(200)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: VertexID(rng.Intn(n)), Dst: VertexID(rng.Intn(n))}
		}
		g := FromEdges(n, edges, false)
		if g.NumEdges() != m {
			return false
		}
		count := map[[2]VertexID]int{}
		for _, e := range edges {
			count[[2]VertexID{e.Src, e.Dst}]++
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(VertexID(u)) {
				count[[2]VertexID{VertexID(u), v}]--
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
