package graph

import (
	"math/rand"
)

// The generators in this file produce the synthetic stand-ins for the
// paper's datasets (Table III). All generators are deterministic given
// the seed so experiments are reproducible.

// Chain generates a directed path 1->0, 2->1, ..., n-1->n-2, i.e. every
// vertex points to its predecessor; vertex 0 is the root. This matches
// the paper's "Chain" dataset used by pointer jumping (each vertex knows
// its parent).
func Chain(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{Src: VertexID(i), Dst: VertexID(i - 1)})
	}
	return FromEdges(n, edges, false)
}

// RandomTree generates a uniformly random recursive tree on n vertices:
// vertex i (i>0) points to a uniformly random parent in [0, i). Vertex 0
// is the root. This matches the paper's "Tree" dataset.
func RandomTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		p := VertexID(rng.Intn(i))
		edges = append(edges, Edge{Src: VertexID(i), Dst: p})
	}
	return FromEdges(n, edges, false)
}

// RMATOptions configures the R-MAT generator.
type RMATOptions struct {
	// A, B, C are the quadrant probabilities (D = 1-A-B-C). The paper
	// cites R-MAT [12]; the classic skewed parameters are used by
	// default when all are zero.
	A, B, C float64
	// Weighted assigns uniform random weights in [1, MaxWeight].
	Weighted  bool
	MaxWeight int32
	// NoSelfLoops discards self loops (resampled).
	NoSelfLoops bool
}

func (o *RMATOptions) defaults() {
	if o.A == 0 && o.B == 0 && o.C == 0 {
		o.A, o.B, o.C = 0.57, 0.19, 0.19
	}
	if o.MaxWeight == 0 {
		o.MaxWeight = 100
	}
}

// RMAT generates a directed power-law graph with 2^scale vertices and
// approximately edgeFactor*2^scale edges using the recursive matrix
// method. It stands in for the paper's Wikipedia/WebUK web graphs and,
// after Undirectify, for the Facebook/Twitter social graphs.
func RMAT(scale int, edgeFactor int, seed int64, opts RMATOptions) *Graph {
	opts.defaults()
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := edgeFactor * n
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u, v := rmatEdge(rng, scale, opts)
		if opts.NoSelfLoops && u == v {
			continue
		}
		e := Edge{Src: u, Dst: v}
		if opts.Weighted {
			e.Weight = 1 + rng.Int31n(opts.MaxWeight)
		}
		edges = append(edges, e)
	}
	return FromEdges(n, edges, opts.Weighted)
}

func rmatEdge(rng *rand.Rand, scale int, opts RMATOptions) (VertexID, VertexID) {
	var u, v VertexID
	for i := 0; i < scale; i++ {
		r := rng.Float64()
		switch {
		case r < opts.A:
			// top-left: no bits set
		case r < opts.A+opts.B:
			v |= 1 << i
		case r < opts.A+opts.B+opts.C:
			u |= 1 << i
		default:
			u |= 1 << i
			v |= 1 << i
		}
	}
	return u, v
}

// SocialRMAT generates an undirected power-law graph (Facebook/Twitter
// stand-in): an R-MAT graph undirectified. edgeFactor controls density —
// the paper's Facebook has avg degree ~3 while Twitter has ~70, which is
// the lever behind Table VI's crossover.
func SocialRMAT(scale int, edgeFactor int, seed int64) *Graph {
	g := RMAT(scale, edgeFactor, seed, RMATOptions{NoSelfLoops: true})
	return Undirectify(g)
}

// Grid generates a rows x cols 4-neighbor grid with random weights in
// [1,maxW], undirected (both orientations stored). It stands in for the
// USA road network: bounded degree, large diameter, weighted.
func Grid(rows, cols int, maxW int32, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	edges := make([]Edge, 0, 4*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				w := 1 + rng.Int31n(maxW)
				edges = append(edges,
					Edge{Src: id(r, c), Dst: id(r, c+1), Weight: w},
					Edge{Src: id(r, c+1), Dst: id(r, c), Weight: w})
			}
			if r+1 < rows {
				w := 1 + rng.Int31n(maxW)
				edges = append(edges,
					Edge{Src: id(r, c), Dst: id(r+1, c), Weight: w},
					Edge{Src: id(r+1, c), Dst: id(r, c), Weight: w})
			}
		}
	}
	g := FromEdges(n, edges, true)
	g.Undirected = true
	return g
}

// RandomDigraph generates a uniform random directed graph with n vertices
// and m edges (self loops excluded). Used by the SCC tests to get graphs
// with many nontrivial strongly connected components.
func RandomDigraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, Edge{Src: u, Dst: v})
	}
	return FromEdges(n, edges, false)
}

// Forest generates a forest of k random trees with n total vertices:
// parent pointers as in RandomTree but with k roots spread evenly. The
// returned graph has an edge from each non-root to its parent.
func Forest(n, k int, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, n-k)
	for i := 0; i < n; i++ {
		if i < k {
			continue // roots
		}
		// Parent is any previously placed vertex in the same "stripe" to
		// keep trees disjoint: stripe t contains root t and vertices
		// {k + j : j % k == t}.
		t := (i - k) % k
		// candidates: root t plus earlier stripe members
		count := (i-k)/k + 1 // how many stripe members precede i, incl. root
		pick := rng.Intn(count)
		var p VertexID
		if pick == 0 {
			p = VertexID(t)
		} else {
			p = VertexID(k + (pick-1)*k + t)
		}
		edges = append(edges, Edge{Src: VertexID(i), Dst: p})
	}
	return FromEdges(n, edges, false)
}
