package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g as a text edge list: first line "n m [w]",
// then one "src dst [weight]" line per directed edge. This is the
// interchange format of cmd/graphgen.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	flag := ""
	if g.Weighted() {
		flag = " w"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", g.NumVertices(), g.NumEdges(), flag); err != nil {
		return err
	}
	for u := 0; u < g.NumVertices(); u++ {
		nbrs := g.Neighbors(VertexID(u))
		var ws []int32
		if g.Weighted() {
			ws = g.NeighborWeights(VertexID(u))
		}
		for i, v := range nbrs {
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", u, v, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Blank lines
// and '#' comment lines are skipped anywhere, including before the
// header; parse errors report the 1-based line number of the offending
// line.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineno := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineno++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	head, ok := next()
	if !ok {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineno, err)
		}
		return nil, fmt.Errorf("graph: empty edge list")
	}
	header := strings.Fields(head)
	if len(header) < 2 {
		return nil, fmt.Errorf("graph: line %d: bad header %q", lineno, head)
	}
	n, err := strconv.Atoi(header[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineno, header[0])
	}
	m, err := strconv.Atoi(header[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("graph: line %d: bad edge count %q", lineno, header[1])
	}
	weighted := len(header) >= 3 && header[2] == "w"
	edges := make([]Edge, 0, m)
	for {
		line, ok := next()
		if !ok {
			break
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("graph: line %d: bad edge line %q", lineno, line)
		}
		src, err := strconv.ParseUint(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src in %q: %w", lineno, line, err)
		}
		dst, err := strconv.ParseUint(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst in %q: %w", lineno, line, err)
		}
		if int(src) >= n || int(dst) >= n {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range for %d vertices", lineno, src, dst, n)
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst)}
		if weighted {
			if len(f) < 3 {
				return nil, fmt.Errorf("graph: line %d: missing weight in %q", lineno, line)
			}
			w, err := strconv.ParseInt(f[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight in %q: %w", lineno, line, err)
			}
			e.Weight = int32(w)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: line %d: %w", lineno, err)
	}
	if len(edges) != m {
		return nil, fmt.Errorf("graph: header claims %d edges, found %d", m, len(edges))
	}
	return FromEdges(n, edges, weighted), nil
}
