package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g as a text edge list: first line "n m [w]",
// then one "src dst [weight]" line per directed edge. This is the
// interchange format of cmd/graphgen.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	flag := ""
	if g.Weighted() {
		flag = " w"
	}
	if _, err := fmt.Fprintf(bw, "%d %d%s\n", g.NumVertices(), g.NumEdges(), flag); err != nil {
		return err
	}
	for u := 0; u < g.NumVertices(); u++ {
		nbrs := g.Neighbors(VertexID(u))
		var ws []int32
		if g.Weighted() {
			ws = g.NeighborWeights(VertexID(u))
		}
		for i, v := range nbrs {
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", u, v, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 2 {
		return nil, fmt.Errorf("graph: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, fmt.Errorf("graph: bad vertex count: %w", err)
	}
	m, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("graph: bad edge count: %w", err)
	}
	weighted := len(header) >= 3 && header[2] == "w"
	edges := make([]Edge, 0, m)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		src, err := strconv.ParseUint(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad src in %q: %w", line, err)
		}
		dst, err := strconv.ParseUint(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad dst in %q: %w", line, err)
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst)}
		if weighted {
			if len(f) < 3 {
				return nil, fmt.Errorf("graph: missing weight in %q", line)
			}
			w, err := strconv.ParseInt(f[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: bad weight in %q: %w", line, err)
			}
			e.Weight = int32(w)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) != m {
		return nil, fmt.Errorf("graph: header claims %d edges, found %d", m, len(edges))
	}
	return FromEdges(n, edges, weighted), nil
}
