// Package graph provides the in-memory graph representation and the
// synthetic dataset generators used throughout the reproduction. Graphs
// are stored in CSR (compressed sparse row) form with uint32 vertex IDs,
// matching the scale the paper's datasets are scaled down to.
//
// The generators stand in for the paper's datasets (Table III): R-MAT
// power-law graphs replace the web and social graphs, chain and random
// tree are identical constructions, and a weighted grid replaces the USA
// road network. See DESIGN.md §2 for the substitution rationale.
package graph

import "fmt"

// VertexID identifies a vertex. IDs are dense: a graph with N vertices
// uses IDs 0..N-1.
type VertexID = uint32

// Graph is a directed graph in CSR form. Undirected graphs are
// represented by storing both orientations of every edge.
type Graph struct {
	// Offsets has length NumVertices+1; the out-neighbors of u are
	// Adj[Offsets[u]:Offsets[u+1]].
	Offsets []uint64
	// Adj holds destination vertex IDs grouped by source.
	Adj []VertexID
	// Weights, if non-nil, holds one weight per entry of Adj.
	Weights []int32
	// Undirected records whether the graph semantically represents an
	// undirected graph (both orientations stored).
	Undirected bool
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the number of stored directed edges (an undirected
// graph reports twice its undirected edge count).
func (g *Graph) NumEdges() int { return len(g.Adj) }

// Neighbors returns the out-neighbors of u. The slice aliases the CSR
// storage and must not be modified.
func (g *Graph) Neighbors(u VertexID) []VertexID {
	return g.Adj[g.Offsets[u]:g.Offsets[u+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(u).
// It panics if the graph is unweighted.
func (g *Graph) NeighborWeights(u VertexID) []int32 {
	if g.Weights == nil {
		panic("graph: unweighted graph")
	}
	return g.Weights[g.Offsets[u]:g.Offsets[u+1]]
}

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u VertexID) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// Weighted reports whether edge weights are present.
func (g *Graph) Weighted() bool { return g.Weights != nil }

// Edge is a single directed edge with an optional weight, used by
// builders and file IO.
type Edge struct {
	Src, Dst VertexID
	Weight   int32
}

// FromEdges builds a CSR graph with n vertices from an edge list. If
// weighted is true the edge weights are retained. The input order is
// preserved within each adjacency list (counting sort by source).
func FromEdges(n int, edges []Edge, weighted bool) *Graph {
	g := &Graph{
		Offsets: make([]uint64, n+1),
		Adj:     make([]VertexID, len(edges)),
	}
	if weighted {
		g.Weights = make([]int32, len(edges))
	}
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for %d vertices", e.Src, e.Dst, n))
		}
		g.Offsets[e.Src+1]++
	}
	for i := 1; i <= n; i++ {
		g.Offsets[i] += g.Offsets[i-1]
	}
	cursor := make([]uint64, n)
	copy(cursor, g.Offsets[:n])
	for _, e := range edges {
		p := cursor[e.Src]
		cursor[e.Src]++
		g.Adj[p] = e.Dst
		if weighted {
			g.Weights[p] = e.Weight
		}
	}
	return g
}

// Edges materializes the edge list of g (allocates).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		nbrs := g.Neighbors(VertexID(u))
		for i, v := range nbrs {
			e := Edge{Src: VertexID(u), Dst: v}
			if g.Weights != nil {
				e.Weight = g.NeighborWeights(VertexID(u))[i]
			}
			out = append(out, e)
		}
	}
	return out
}

// Reverse returns the transpose graph (all edges flipped). Weights are
// carried over. Needed by SCC (backward propagation) and by HCC on
// directed inputs.
func (g *Graph) Reverse() *Graph {
	n := g.NumVertices()
	edges := make([]Edge, 0, g.NumEdges())
	for u := 0; u < n; u++ {
		ws := []int32(nil)
		if g.Weights != nil {
			ws = g.NeighborWeights(VertexID(u))
		}
		for i, v := range g.Neighbors(VertexID(u)) {
			e := Edge{Src: v, Dst: VertexID(u)}
			if ws != nil {
				e.Weight = ws[i]
			}
			edges = append(edges, e)
		}
	}
	return FromEdges(n, edges, g.Weights != nil)
}

// Undirectify returns a graph that stores both orientations of every
// edge of g, deduplicated, with self-loops removed. Weights are kept
// (min weight wins for duplicate edges).
func Undirectify(g *Graph) *Graph {
	n := g.NumVertices()
	type key struct{ a, b VertexID }
	seen := make(map[key]int32, g.NumEdges())
	for u := 0; u < n; u++ {
		ws := []int32(nil)
		if g.Weights != nil {
			ws = g.NeighborWeights(VertexID(u))
		}
		for i, v := range g.Neighbors(VertexID(u)) {
			if VertexID(u) == v {
				continue
			}
			a, b := VertexID(u), v
			if a > b {
				a, b = b, a
			}
			w := int32(0)
			if ws != nil {
				w = ws[i]
			}
			if old, ok := seen[key{a, b}]; !ok || w < old {
				seen[key{a, b}] = w
			}
		}
	}
	edges := make([]Edge, 0, 2*len(seen))
	for k, w := range seen {
		edges = append(edges, Edge{Src: k.a, Dst: k.b, Weight: w}, Edge{Src: k.b, Dst: k.a, Weight: w})
	}
	out := FromEdges(n, edges, g.Weights != nil)
	out.Undirected = true
	return out
}

// MaxDegree returns the maximum out-degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.OutDegree(VertexID(u)); d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns the average out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}
