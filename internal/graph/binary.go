package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary snapshot format: the CSR arrays dumped verbatim, little-endian.
// Loading a snapshot is a size check plus three bulk reads, so a daemon
// restart skips text parsing and the counting sort of FromEdges.
//
//	magic   "GCSR"           4 bytes
//	version uint32           currently 1
//	flags   uint32           bit0 weighted, bit1 undirected
//	n, m    uint64, uint64   vertex and directed-edge counts
//	offsets (n+1) x uint64
//	adj     m x uint32
//	weights m x int32        present iff weighted

const (
	binaryMagic   = "GCSR"
	binaryVersion = 1

	flagWeighted   = 1 << 0
	flagUndirected = 1 << 1
)

// SnapshotExt is the conventional file extension for binary snapshots;
// the catalog looks for "<path>.bin" next to a text edge list.
const SnapshotExt = ".bin"

// maxSnapshotEntries bounds the array sizes a snapshot header may claim,
// guarding allocation against corrupt or hostile files.
const maxSnapshotEntries = 1 << 33

// WriteBinary writes g as a binary CSR snapshot.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var flags uint32
	if g.Weighted() {
		flags |= flagWeighted
	}
	if g.Undirected {
		flags |= flagUndirected
	}
	var head [24]byte
	binary.LittleEndian.PutUint32(head[0:], binaryVersion)
	binary.LittleEndian.PutUint32(head[4:], flags)
	binary.LittleEndian.PutUint64(head[8:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(head[16:], uint64(g.NumEdges()))
	if _, err := bw.Write(head[:]); err != nil {
		return err
	}
	var scratch [8]byte
	for _, o := range g.Offsets {
		binary.LittleEndian.PutUint64(scratch[:], o)
		if _, err := bw.Write(scratch[:8]); err != nil {
			return err
		}
	}
	for _, v := range g.Adj {
		binary.LittleEndian.PutUint32(scratch[:], v)
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
	}
	if g.Weighted() {
		for _, wv := range g.Weights {
			binary.LittleEndian.PutUint32(scratch[:], uint32(wv))
			if _, err := bw.Write(scratch[:4]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a snapshot written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var head [28]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("graph: bad snapshot header: %w", err)
	}
	if string(head[:4]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad snapshot magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported snapshot version %d", v)
	}
	flags := binary.LittleEndian.Uint32(head[8:])
	n := binary.LittleEndian.Uint64(head[12:])
	m := binary.LittleEndian.Uint64(head[20:])
	if n >= maxSnapshotEntries || m > maxSnapshotEntries {
		return nil, fmt.Errorf("graph: snapshot claims implausible sizes n=%d m=%d", n, m)
	}
	g := &Graph{
		Offsets:    make([]uint64, n+1),
		Adj:        make([]VertexID, m),
		Undirected: flags&flagUndirected != 0,
	}
	var scratch [8]byte
	for i := range g.Offsets {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return nil, fmt.Errorf("graph: truncated snapshot offsets: %w", err)
		}
		g.Offsets[i] = binary.LittleEndian.Uint64(scratch[:])
	}
	if g.Offsets[0] != 0 || g.Offsets[n] != m {
		return nil, fmt.Errorf("graph: corrupt snapshot offsets (first=%d last=%d m=%d)", g.Offsets[0], g.Offsets[n], m)
	}
	for i := uint64(1); i <= n; i++ {
		if g.Offsets[i] < g.Offsets[i-1] {
			return nil, fmt.Errorf("graph: corrupt snapshot: offsets not monotone at vertex %d", i)
		}
	}
	for i := range g.Adj {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return nil, fmt.Errorf("graph: truncated snapshot adjacency: %w", err)
		}
		v := binary.LittleEndian.Uint32(scratch[:])
		if uint64(v) >= n {
			return nil, fmt.Errorf("graph: corrupt snapshot: vertex %d out of range", v)
		}
		g.Adj[i] = v
	}
	if flags&flagWeighted != 0 {
		g.Weights = make([]int32, m)
		for i := range g.Weights {
			if _, err := io.ReadFull(br, scratch[:4]); err != nil {
				return nil, fmt.Errorf("graph: truncated snapshot weights: %w", err)
			}
			g.Weights[i] = int32(binary.LittleEndian.Uint32(scratch[:]))
		}
	}
	return g, nil
}

// WriteBinaryFile writes a snapshot to path atomically (tmp + rename).
func WriteBinaryFile(path string, g *Graph) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadBinaryFile reads a snapshot from path.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
