package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary snapshot format: the CSR arrays dumped verbatim, little-endian.
// Loading a snapshot is a size check plus three bulk reads, so a daemon
// restart skips text parsing and the counting sort of FromEdges.
//
//	magic   "GCSR"           4 bytes
//	version uint32           1 (bare graph) or 2 (graph + placements)
//	flags   uint32           bit0 weighted, bit1 undirected
//	n, m    uint64, uint64   vertex and directed-edge counts
//	offsets (n+1) x uint64
//	adj     m x uint32
//	weights m x int32        present iff weighted
//
// Version 2 appends named vertex placements (owner vectors), so a
// catalog restart also skips re-partitioning — in particular the BFS
// region growing behind the "(P)" locality placements:
//
//	placements uint32
//	per placement:
//	  nameLen uint16, name bytes
//	  workers uint32
//	  owner   n x uint16
//
// Version-1 snapshots remain readable; WriteBinary without placements
// still writes version 1, so older readers keep working.

const (
	binaryMagic    = "GCSR"
	binaryVersion  = 1
	binaryVersion2 = 2

	flagWeighted   = 1 << 0
	flagUndirected = 1 << 1
)

// Placement is a named owner vector embedded in a version-2 snapshot:
// Owner[v] is the worker owning vertex v under a Workers-way placement.
type Placement struct {
	Name    string
	Workers int
	Owner   []uint16
}

// SnapshotExt is the conventional file extension for binary snapshots;
// the catalog looks for "<path>.bin" next to a text edge list.
const SnapshotExt = ".bin"

// maxSnapshotEntries bounds the array sizes a snapshot header may claim,
// guarding allocation against corrupt or hostile files.
const maxSnapshotEntries = 1 << 33

// capHint bounds the initial capacity of an array allocated from a
// header-declared count: big enough that honest snapshots never
// reallocate more than a handful of times, small enough that a hostile
// count cannot allocate memory the stream never backs.
func capHint(n uint64) uint64 {
	const limit = 1 << 16
	if n > limit {
		return limit
	}
	return n
}

// WriteBinary writes g as a version-1 binary CSR snapshot.
func WriteBinary(w io.Writer, g *Graph) error {
	return WriteSnapshot(w, g, nil)
}

// WriteSnapshot writes g as a binary snapshot, embedding the given
// placements (version 2); with no placements it writes the version-1
// layout.
func WriteSnapshot(w io.Writer, g *Graph, placements []Placement) error {
	for _, p := range placements {
		if len(p.Owner) != g.NumVertices() {
			return fmt.Errorf("graph: placement %q has %d owners for %d vertices", p.Name, len(p.Owner), g.NumVertices())
		}
		if p.Name == "" || len(p.Name) > 1<<16-1 {
			return fmt.Errorf("graph: bad placement name %q", p.Name)
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var flags uint32
	if g.Weighted() {
		flags |= flagWeighted
	}
	if g.Undirected {
		flags |= flagUndirected
	}
	version := uint32(binaryVersion)
	if len(placements) > 0 {
		version = binaryVersion2
	}
	var head [24]byte
	binary.LittleEndian.PutUint32(head[0:], version)
	binary.LittleEndian.PutUint32(head[4:], flags)
	binary.LittleEndian.PutUint64(head[8:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(head[16:], uint64(g.NumEdges()))
	if _, err := bw.Write(head[:]); err != nil {
		return err
	}
	var scratch [8]byte
	for _, o := range g.Offsets {
		binary.LittleEndian.PutUint64(scratch[:], o)
		if _, err := bw.Write(scratch[:8]); err != nil {
			return err
		}
	}
	for _, v := range g.Adj {
		binary.LittleEndian.PutUint32(scratch[:], v)
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
	}
	if g.Weighted() {
		for _, wv := range g.Weights {
			binary.LittleEndian.PutUint32(scratch[:], uint32(wv))
			if _, err := bw.Write(scratch[:4]); err != nil {
				return err
			}
		}
	}
	if version == binaryVersion2 {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(placements)))
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
		for _, p := range placements {
			binary.LittleEndian.PutUint16(scratch[:], uint16(len(p.Name)))
			if _, err := bw.Write(scratch[:2]); err != nil {
				return err
			}
			if _, err := bw.WriteString(p.Name); err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(scratch[:], uint32(p.Workers))
			if _, err := bw.Write(scratch[:4]); err != nil {
				return err
			}
			for _, o := range p.Owner {
				binary.LittleEndian.PutUint16(scratch[:], o)
				if _, err := bw.Write(scratch[:2]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a snapshot written by WriteBinary/WriteSnapshot,
// dropping any embedded placements.
func ReadBinary(r io.Reader) (*Graph, error) {
	g, _, err := ReadSnapshot(r)
	return g, err
}

// ReadSnapshot parses a snapshot and returns the graph plus any
// embedded placements (nil for version-1 snapshots).
func ReadSnapshot(r io.Reader) (*Graph, []Placement, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var head [28]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, nil, fmt.Errorf("graph: bad snapshot header: %w", err)
	}
	if string(head[:4]) != binaryMagic {
		return nil, nil, fmt.Errorf("graph: bad snapshot magic %q", head[:4])
	}
	version := binary.LittleEndian.Uint32(head[4:])
	if version != binaryVersion && version != binaryVersion2 {
		return nil, nil, fmt.Errorf("graph: unsupported snapshot version %d", version)
	}
	flags := binary.LittleEndian.Uint32(head[8:])
	n := binary.LittleEndian.Uint64(head[12:])
	m := binary.LittleEndian.Uint64(head[20:])
	if n >= maxSnapshotEntries || m > maxSnapshotEntries {
		return nil, nil, fmt.Errorf("graph: snapshot claims implausible sizes n=%d m=%d", n, m)
	}
	// Array capacities are grown as the data actually arrives (capped
	// initial allocation): a corrupt or hostile header claiming huge
	// counts fails with a truncation error once the stream ends instead
	// of driving a giant up-front allocation.
	g := &Graph{
		Offsets:    make([]uint64, 0, capHint(n+1)),
		Adj:        make([]VertexID, 0, capHint(m)),
		Undirected: flags&flagUndirected != 0,
	}
	var scratch [8]byte
	for i := uint64(0); i <= n; i++ {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return nil, nil, fmt.Errorf("graph: truncated snapshot offsets: %w", err)
		}
		off := binary.LittleEndian.Uint64(scratch[:])
		if i > 0 && off < g.Offsets[i-1] {
			return nil, nil, fmt.Errorf("graph: corrupt snapshot: offsets not monotone at vertex %d", i)
		}
		g.Offsets = append(g.Offsets, off)
	}
	if g.Offsets[0] != 0 || g.Offsets[n] != m {
		return nil, nil, fmt.Errorf("graph: corrupt snapshot offsets (first=%d last=%d m=%d)", g.Offsets[0], g.Offsets[n], m)
	}
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return nil, nil, fmt.Errorf("graph: truncated snapshot adjacency: %w", err)
		}
		v := binary.LittleEndian.Uint32(scratch[:])
		if uint64(v) >= n {
			return nil, nil, fmt.Errorf("graph: corrupt snapshot: vertex %d out of range", v)
		}
		g.Adj = append(g.Adj, v)
	}
	if flags&flagWeighted != 0 {
		g.Weights = make([]int32, 0, capHint(m))
		for i := uint64(0); i < m; i++ {
			if _, err := io.ReadFull(br, scratch[:4]); err != nil {
				return nil, nil, fmt.Errorf("graph: truncated snapshot weights: %w", err)
			}
			g.Weights = append(g.Weights, int32(binary.LittleEndian.Uint32(scratch[:])))
		}
	}
	if version < binaryVersion2 {
		return g, nil, nil
	}
	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return nil, nil, fmt.Errorf("graph: truncated snapshot placement count: %w", err)
	}
	count := binary.LittleEndian.Uint32(scratch[:])
	if count > 64 {
		return nil, nil, fmt.Errorf("graph: snapshot claims implausible placement count %d", count)
	}
	placements := make([]Placement, 0, count)
	for pi := uint32(0); pi < count; pi++ {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return nil, nil, fmt.Errorf("graph: truncated snapshot placement name: %w", err)
		}
		nameLen := binary.LittleEndian.Uint16(scratch[:])
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, nil, fmt.Errorf("graph: truncated snapshot placement name: %w", err)
		}
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return nil, nil, fmt.Errorf("graph: truncated snapshot placement workers: %w", err)
		}
		p := Placement{
			Name:    string(name),
			Workers: int(binary.LittleEndian.Uint32(scratch[:])),
			Owner:   make([]uint16, 0, capHint(n)),
		}
		for i := uint64(0); i < n; i++ {
			if _, err := io.ReadFull(br, scratch[:2]); err != nil {
				return nil, nil, fmt.Errorf("graph: truncated snapshot placement %q: %w", p.Name, err)
			}
			p.Owner = append(p.Owner, binary.LittleEndian.Uint16(scratch[:]))
		}
		placements = append(placements, p)
	}
	return g, placements, nil
}

// WriteBinaryFile writes a snapshot to path atomically (tmp + rename).
func WriteBinaryFile(path string, g *Graph) error {
	return WriteSnapshotFile(path, g, nil)
}

// WriteSnapshotFile writes a snapshot with embedded placements to path
// atomically (tmp + rename).
func WriteSnapshotFile(path string, g *Graph, placements []Placement) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, g, placements); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadBinaryFile reads a snapshot from path, dropping placements.
func ReadBinaryFile(path string) (*Graph, error) {
	g, _, err := ReadSnapshotFile(path)
	return g, err
}

// ReadSnapshotFile reads a snapshot plus embedded placements from path.
func ReadSnapshotFile(path string) (*Graph, []Placement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
