package graph

import (
	"bytes"
	"testing"
)

// FuzzReadSnapshot pins the wire-surface contract of the binary
// snapshot reader: arbitrary input must produce (graph, error) — never
// a panic, and never an allocation driven by a hostile header rather
// than actual stream content. Anything the reader accepts must be
// internally consistent enough to round-trip.
func FuzzReadSnapshot(f *testing.F) {
	// seed with a real snapshot and a few truncations/corruptions of it
	g := Undirectify(RMAT(5, 3, 7, RMATOptions{Weighted: true, MaxWeight: 9, NoSelfLoops: true}))
	var buf bytes.Buffer
	hash := make([]uint16, g.NumVertices())
	for i := range hash {
		hash[i] = uint16(i % 3)
	}
	if err := WriteSnapshot(&buf, g, []Placement{{Name: "hash", Workers: 3, Owner: hash}}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:30])
	corrupt := append([]byte(nil), valid...)
	corrupt[12] ^= 0xff // vertex count
	f.Add(corrupt)
	f.Add([]byte("GCSR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, placements, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// accepted input must describe a structurally valid CSR
		n := g.NumVertices()
		if len(g.Offsets) != n+1 {
			t.Fatalf("accepted snapshot with %d offsets for %d vertices", len(g.Offsets), n)
		}
		for _, v := range g.Adj {
			if int(v) >= n {
				t.Fatalf("accepted snapshot with out-of-range vertex %d", v)
			}
		}
		if g.Weights != nil && len(g.Weights) != len(g.Adj) {
			t.Fatalf("accepted snapshot with %d weights for %d edges", len(g.Weights), len(g.Adj))
		}
		for _, p := range placements {
			if len(p.Owner) != n {
				t.Fatalf("accepted placement %q with %d owners for %d vertices", p.Name, len(p.Owner), n)
			}
		}
		// and survive a write/read round trip
		var rt bytes.Buffer
		if err := WriteSnapshot(&rt, g, nil); err != nil {
			t.Fatalf("round-trip write: %v", err)
		}
		if _, err := ReadBinary(bytes.NewReader(rt.Bytes())); err != nil {
			t.Fatalf("round-trip read: %v", err)
		}
	})
}
