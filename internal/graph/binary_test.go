package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	if a.Weighted() != b.Weighted() || a.Undirected != b.Undirected {
		t.Fatalf("flag mismatch: weighted %v/%v undirected %v/%v",
			a.Weighted(), b.Weighted(), a.Undirected, b.Undirected)
	}
	for u := 0; u < a.NumVertices(); u++ {
		na, nb := a.Neighbors(VertexID(u)), b.Neighbors(VertexID(u))
		if len(na) != len(nb) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adj mismatch at %d[%d]", u, i)
			}
		}
		if a.Weighted() {
			wa, wb := a.NeighborWeights(VertexID(u)), b.NeighborWeights(VertexID(u))
			for i := range wa {
				if wa[i] != wb[i] {
					t.Fatalf("weight mismatch at %d[%d]", u, i)
				}
			}
		}
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	cases := map[string]*Graph{
		"rmat":     RMAT(6, 4, 3, RMATOptions{NoSelfLoops: true}),
		"weighted": Grid(7, 9, 50, 4),
		"social":   SocialRMAT(6, 3, 5),
		"empty":    FromEdges(0, nil, false),
		"isolated": FromEdges(5, []Edge{{Src: 1, Dst: 3}}, false),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, g); err != nil {
				t.Fatal(err)
			}
			g2, err := ReadBinary(&buf)
			if err != nil {
				t.Fatal(err)
			}
			graphsEqual(t, g, g2)
		})
	}
}

func TestBinaryFileRoundtrip(t *testing.T) {
	g := RMAT(5, 4, 11, RMATOptions{Weighted: true, MaxWeight: 100})
	path := filepath.Join(t.TempDir(), "g"+SnapshotExt)
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	g := RMAT(5, 4, 11, RMATOptions{})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"badmagic":  append([]byte("NOPE"), good[4:]...),
		"truncated": good[:len(good)-3],
		"shorthead": good[:10],
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
				t.Fatal("expected error")
			}
		})
	}

	// A header claiming n = 2^64-1 must error, not overflow n+1 to 0 and
	// panic on the empty offsets slice.
	hostile := make([]byte, 28)
	copy(hostile, "GCSR")
	hostile[4] = 1 // version
	for i := 12; i < 20; i++ {
		hostile[i] = 0xff // n
	}
	if _, err := ReadBinary(bytes.NewReader(hostile)); err == nil ||
		!strings.Contains(err.Error(), "implausible") {
		t.Fatalf("hostile header: got %v", err)
	}

	// Out-of-range adjacency entry: flip a vertex id beyond n.
	bad := append([]byte(nil), good...)
	adjStart := 28 + 8*(g.NumVertices()+1)
	for i := 0; i < 4; i++ {
		bad[adjStart+i] = 0xff
	}
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected out-of-range error, got %v", err)
	}
}
