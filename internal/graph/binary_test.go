package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	if a.Weighted() != b.Weighted() || a.Undirected != b.Undirected {
		t.Fatalf("flag mismatch: weighted %v/%v undirected %v/%v",
			a.Weighted(), b.Weighted(), a.Undirected, b.Undirected)
	}
	for u := 0; u < a.NumVertices(); u++ {
		na, nb := a.Neighbors(VertexID(u)), b.Neighbors(VertexID(u))
		if len(na) != len(nb) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adj mismatch at %d[%d]", u, i)
			}
		}
		if a.Weighted() {
			wa, wb := a.NeighborWeights(VertexID(u)), b.NeighborWeights(VertexID(u))
			for i := range wa {
				if wa[i] != wb[i] {
					t.Fatalf("weight mismatch at %d[%d]", u, i)
				}
			}
		}
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	cases := map[string]*Graph{
		"rmat":     RMAT(6, 4, 3, RMATOptions{NoSelfLoops: true}),
		"weighted": Grid(7, 9, 50, 4),
		"social":   SocialRMAT(6, 3, 5),
		"empty":    FromEdges(0, nil, false),
		"isolated": FromEdges(5, []Edge{{Src: 1, Dst: 3}}, false),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, g); err != nil {
				t.Fatal(err)
			}
			g2, err := ReadBinary(&buf)
			if err != nil {
				t.Fatal(err)
			}
			graphsEqual(t, g, g2)
		})
	}
}

func TestBinaryFileRoundtrip(t *testing.T) {
	g := RMAT(5, 4, 11, RMATOptions{Weighted: true, MaxWeight: 100})
	path := filepath.Join(t.TempDir(), "g"+SnapshotExt)
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	g := RMAT(5, 4, 11, RMATOptions{})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"badmagic":  append([]byte("NOPE"), good[4:]...),
		"truncated": good[:len(good)-3],
		"shorthead": good[:10],
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
				t.Fatal("expected error")
			}
		})
	}

	// A header claiming n = 2^64-1 must error, not overflow n+1 to 0 and
	// panic on the empty offsets slice.
	hostile := make([]byte, 28)
	copy(hostile, "GCSR")
	hostile[4] = 1 // version
	for i := 12; i < 20; i++ {
		hostile[i] = 0xff // n
	}
	if _, err := ReadBinary(bytes.NewReader(hostile)); err == nil ||
		!strings.Contains(err.Error(), "implausible") {
		t.Fatalf("hostile header: got %v", err)
	}

	// Out-of-range adjacency entry: flip a vertex id beyond n.
	bad := append([]byte(nil), good...)
	adjStart := 28 + 8*(g.NumVertices()+1)
	for i := 0; i < 4; i++ {
		bad[adjStart+i] = 0xff
	}
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected out-of-range error, got %v", err)
	}
}

// Version-2 snapshots carry named placements; they must round-trip and
// version-1 readers of the same data (ReadBinary) must still work.
func TestSnapshotPlacementsRoundTrip(t *testing.T) {
	g := Grid(6, 7, 9, 3)
	n := g.NumVertices()
	hash := make([]uint16, n)
	greedy := make([]uint16, n)
	for v := 0; v < n; v++ {
		hash[v] = uint16(v % 4)
		greedy[v] = uint16(v * 4 / n)
	}
	placements := []Placement{
		{Name: "hash", Workers: 4, Owner: hash},
		{Name: "greedy", Workers: 4, Owner: greedy},
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, placements); err != nil {
		t.Fatal(err)
	}
	g2, got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != n || g2.NumEdges() != g.NumEdges() || !g2.Weighted() {
		t.Fatalf("graph did not round-trip")
	}
	if len(got) != 2 {
		t.Fatalf("got %d placements, want 2", len(got))
	}
	for i, p := range placements {
		if got[i].Name != p.Name || got[i].Workers != p.Workers {
			t.Fatalf("placement %d header mismatch: %+v", i, got[i])
		}
		for v := range p.Owner {
			if got[i].Owner[v] != p.Owner[v] {
				t.Fatalf("placement %q owner[%d] = %d want %d", p.Name, v, got[i].Owner[v], p.Owner[v])
			}
		}
	}
	// the graph-only reader tolerates (and drops) the placement section
	g3, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil || g3.NumVertices() != n {
		t.Fatalf("ReadBinary on v2 snapshot: %v", err)
	}
	// no placements -> version-1 bytes -> ReadSnapshot returns nil
	var v1 bytes.Buffer
	if err := WriteSnapshot(&v1, g, nil); err != nil {
		t.Fatal(err)
	}
	if _, ps, err := ReadSnapshot(bytes.NewReader(v1.Bytes())); err != nil || ps != nil {
		t.Fatalf("v1 snapshot: placements=%v err=%v", ps, err)
	}
	// a mis-sized placement must be rejected at write time
	if err := WriteSnapshot(&bytes.Buffer{}, g, []Placement{{Name: "x", Workers: 2, Owner: make([]uint16, 3)}}); err == nil {
		t.Fatal("WriteSnapshot accepted a mis-sized owner vector")
	}
}
