package workerproc

import (
	"bytes"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"repro/internal/algorithms"
	"repro/internal/barrier"
	"repro/internal/comm"
	"repro/internal/netcomm"
	"repro/internal/obs"
	"repro/internal/partition"
)

// JobSpec describes one distributed job: which binary to spawn, where
// the data lives, and what to run.
type JobSpec struct {
	// Bin is the graphworker executable. BinArgs (optional) are
	// prepended to the protocol flags — the test binaries use the
	// ChildEnv re-exec instead and leave this empty.
	Bin     string
	BinArgs []string
	// Env entries are appended to the inherited environment.
	Env []string

	// Network is "unix" (default) or "tcp" (loopback).
	Network string

	// SnapshotPath is a binary snapshot embedding the Placement owner
	// vector; Part must be the partition that vector describes (the
	// coordinator needs it to merge partials and the workers rebuild the
	// identical partition from the snapshot).
	SnapshotPath string
	Placement    string
	Part         *partition.Partition

	// Procs is the number of worker processes; the Part's workers are
	// split into contiguous ranges across them (capped at one worker
	// per process).
	Procs int

	Algorithm string
	Engine    algorithms.Engine
	Variant   string
	Params    algorithms.Params

	MaxSupersteps int
	Cost          comm.CostModel

	// Cancel, if non-nil, aborts the job when closed: the hub abort
	// propagates over every control connection, workers unwind and
	// exit; stragglers are killed after a grace period. Run returns
	// barrier.ErrCancelled.
	Cancel <-chan struct{}

	// JoinTimeout bounds how long workers may take to connect
	// (default 30s).
	JoinTimeout time.Duration

	// Spawned, if set, is called with the worker process pids once all
	// are started (diagnostics; the failure tests use it to kill one).
	Spawned func(pids []int)

	// Trace, if non-nil, receives the job's superstep timeline: each
	// worker process collects its own shard and ships it piggybacked on
	// its result blob, and the coordinator replays the shards here. The
	// merged timeline has the same shape an in-process run produces.
	Trace *obs.Trace

	// Logger receives coordinator events and the workers' forwarded
	// stderr lines, each tagged with the emitting worker range. Nil
	// discards them.
	Logger *slog.Logger
}

// Run executes a job across worker subprocesses and returns the merged
// result. The returned metrics carry the hub's job-wide communication
// stats; Supersteps is the minimum any worker process reported.
func Run(spec JobSpec) (*algorithms.Result, error) {
	if spec.Part == nil {
		return nil, fmt.Errorf("workerproc: JobSpec.Part is required")
	}
	m := spec.Part.NumWorkers()
	procs := spec.Procs
	if procs <= 0 {
		procs = m
	}
	if procs > m {
		procs = m
	}
	network := spec.Network
	if network == "" {
		network = "unix"
	}
	joinTimeout := spec.JoinTimeout
	if joinTimeout == 0 {
		joinTimeout = 30 * time.Second
	}
	log := spec.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}

	var addr string
	var ln net.Listener
	var err error
	switch network {
	case "unix":
		dir, derr := os.MkdirTemp("", "graphw")
		if derr != nil {
			return nil, fmt.Errorf("workerproc: %w", derr)
		}
		defer os.RemoveAll(dir)
		addr = dir + "/hub.sock"
		ln, err = net.Listen("unix", addr)
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if ln != nil {
			addr = ln.Addr().String()
		}
	default:
		return nil, fmt.Errorf("workerproc: unknown network %q", network)
	}
	if err != nil {
		return nil, fmt.Errorf("workerproc: listen: %w", err)
	}
	hub := netcomm.NewHub(m, spec.Cost, ln)
	defer hub.Close()
	hub.SetLogger(log)

	start := time.Now()
	ranges := splitRanges(m, procs)
	cmds := make([]*exec.Cmd, len(ranges))
	stderrs := make([]*cappedBuffer, len(ranges))
	taggers := make([]*lineTagger, len(ranges))
	pids := make([]int, len(ranges))
	for i, r := range ranges {
		args := append(append([]string(nil), spec.BinArgs...),
			"-network", network,
			"-connect", addr,
			"-snapshot", spec.SnapshotPath,
			"-placement", spec.Placement,
			"-workers", fmt.Sprintf("%d-%d", r[0], r[1]),
			"-num-workers", strconv.Itoa(m),
			"-algorithm", spec.Algorithm,
			"-engine", string(spec.Engine),
			"-variant", spec.Variant,
			"-iterations", strconv.Itoa(spec.Params.Iterations),
			"-source", strconv.FormatUint(uint64(spec.Params.Source), 10),
			"-max-supersteps", strconv.Itoa(spec.MaxSupersteps),
		)
		if spec.Trace != nil {
			args = append(args, "-trace")
		}
		cmd := exec.Command(spec.Bin, args...)
		cmd.Env = append(os.Environ(), spec.Env...)
		cmd.Env = append(cmd.Env, ChildEnv+"=1")
		sb := &cappedBuffer{cap: 8 << 10}
		tg := &lineTagger{dst: sb,
			log: log.With("workers", fmt.Sprintf("%d-%d", r[0], r[1]))}
		cmd.Stderr = tg
		if err := cmd.Start(); err != nil {
			hub.Abort("spawn failed")
			for _, c := range cmds[:i] {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("workerproc: spawn graphworker %d: %w", i, err)
		}
		cmds[i], stderrs[i], taggers[i], pids[i] = cmd, sb, tg, cmd.Process.Pid
	}
	log.Debug("spawned graphworkers", "procs", len(cmds), "network", network)
	if spec.Spawned != nil {
		spec.Spawned(pids)
	}

	// Cancellation: abort the hub so every worker unwinds; anything
	// still alive after the grace period is killed.
	procsDone := make(chan struct{})
	cancelFired := make(chan struct{})
	if spec.Cancel != nil {
		go func() {
			select {
			case <-spec.Cancel:
				close(cancelFired)
				hub.Abort("job cancelled")
				select {
				case <-procsDone:
				case <-time.After(10 * time.Second):
					for _, c := range cmds {
						c.Process.Kill()
					}
				}
			case <-procsDone:
			}
		}()
	}

	// Join watchdog: if the party never assembles, abort and kill so
	// Wait below cannot hang on a worker parked in a barrier.
	joined := make(chan error, 1)
	go func() { joined <- hub.WaitJoined(joinTimeout) }()

	var wg sync.WaitGroup
	exitErrs := make([]error, len(cmds))
	for i, cmd := range cmds {
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			exitErrs[i] = cmd.Wait()
		}(i, cmd)
	}
	go func() {
		if err := <-joined; err != nil {
			hub.Abort("join timeout")
			time.Sleep(2 * time.Second)
			for _, c := range cmds {
				c.Process.Kill()
			}
		}
	}()
	wg.Wait()
	close(procsDone)
	for _, tg := range taggers {
		tg.flush()
	}

	// Every process has exited: whatever it managed to send is already
	// in the hub's socket buffers and drains in well under a second. If
	// anything is still unsettled after a drain window — a worker died
	// before dialing, so the hub alone would never learn about it —
	// abort so WaitResults settles instead of running out its deadline.
	settle := time.AfterFunc(5*time.Second, func() {
		hub.Abort("worker processes exited without reporting")
	})
	blobs, hubErrs, werr := hub.WaitResults(30 * time.Second)
	settle.Stop()
	if werr != nil {
		hubErrs = append(hubErrs, werr)
	}

	var errs []error
	partials := make([]partial, 0, len(blobs))
	for _, blob := range blobs {
		p, perr := decodePartial(blob)
		if perr != nil {
			errs = append(errs, perr)
			continue
		}
		partials = append(partials, p)
	}
	errs = append(errs, hubErrs...)
	for i, eerr := range exitErrs {
		if eerr == nil {
			continue
		}
		msg := bytes.TrimSpace(stderrs[i].Bytes())
		if len(msg) > 0 {
			errs = append(errs, fmt.Errorf("workerproc: graphworker %d (workers %d-%d) exited: %v: %s",
				i, ranges[i][0], ranges[i][1], eerr, msg))
		} else {
			errs = append(errs, fmt.Errorf("workerproc: graphworker %d (workers %d-%d) exited: %v",
				i, ranges[i][0], ranges[i][1], eerr))
		}
	}

	res, minSteps, mergeErr := mergePartials(spec.Part, partials, spec.Trace)
	if mergeErr != nil {
		errs = append(errs, mergeErr)
	}
	err = barrier.JoinErrors(errs)
	cancelled := false
	if spec.Cancel != nil {
		select {
		case <-cancelFired:
			cancelled = true
		default:
		}
	}
	if cancelled {
		// A real worker error that raced the cancellation wins; but
		// teardown fallout (aborted echoes, processes killed or exiting
		// before they could report) is a consequence of cancelling, not
		// a failure in its own right.
		var reported []error
		for _, p := range partials {
			reported = append(reported, p.err)
		}
		if realErr := barrier.JoinErrors(reported); realErr == nil {
			return nil, barrier.ErrCancelled
		}
	}
	if err != nil {
		return nil, err
	}
	hubStats := hub.Stats()
	res.Metrics = algorithms.Metrics{
		Engine:     spec.Engine,
		Supersteps: minSteps,
		NetBytes:   hubStats.NetworkBytes,
		Rounds:     hubStats.Rounds,
		WallTime:   time.Since(start),
		SimTime:    time.Since(start) + hubStats.SimNetTime,
	}
	// Per-worker wall time as the coordinator saw it: job start to the
	// arrival of the result blob covering that worker. The spread across
	// workers is the job-level straggler skew.
	arrivals := hub.ResultTimes()
	wall := make([]time.Duration, m)
	for _, p := range partials {
		at, ok := arrivals[p.lo]
		if !ok {
			continue
		}
		for w := p.lo; w <= p.hi && w < m; w++ {
			wall[w] = at.Sub(start)
		}
	}
	res.Metrics.WorkerWall = wall
	log.Debug("job merged", "supersteps", minSteps,
		"net_bytes", hubStats.NetworkBytes, "rounds", hubStats.Rounds)
	return res, nil
}

// splitRanges deals m workers into n contiguous, near-equal ranges.
func splitRanges(m, n int) [][2]int {
	out := make([][2]int, 0, n)
	base, rem := m/n, m%n
	lo := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size - 1})
		lo += size
	}
	return out
}

// cappedBuffer retains the first cap bytes written (worker stderr, for
// error reports) and counts the rest.
type cappedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
	cap int
}

func (b *cappedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.buf.Len() < b.cap {
		keep := p
		if b.buf.Len()+len(keep) > b.cap {
			keep = keep[:b.cap-b.buf.Len()]
		}
		b.buf.Write(keep)
	}
	return len(p), nil
}

func (b *cappedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// lineTagger tees a worker's stderr into the retained capped buffer and
// re-emits every complete line on the coordinator's logger, tagged with
// the emitting worker range, so a multi-process job has one interleaved,
// attributable log stream instead of per-process buffers.
type lineTagger struct {
	dst *cappedBuffer
	log *slog.Logger

	mu   sync.Mutex
	line bytes.Buffer
}

func (t *lineTagger) Write(p []byte) (int, error) {
	t.dst.Write(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.line.Write(p)
	for {
		b := t.line.Bytes()
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			return len(p), nil
		}
		t.log.Info("graphworker stderr",
			"line", string(bytes.TrimRight(b[:i], "\r")))
		t.line.Next(i + 1)
	}
}

// flush emits a trailing unterminated line after the process exits.
func (t *lineTagger) flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.line.Len() > 0 {
		t.log.Info("graphworker stderr", "line", t.line.String())
		t.line.Reset()
	}
}
