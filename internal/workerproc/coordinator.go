package workerproc

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algorithms"
	"repro/internal/barrier"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/netcomm"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/ser"
)

// JobSpec describes one distributed job: which binary to spawn, where
// the data lives, and what to run.
type JobSpec struct {
	// Bin is the graphworker executable. BinArgs (optional) are
	// prepended to the protocol flags — the test binaries use the
	// ChildEnv re-exec instead and leave this empty.
	Bin     string
	BinArgs []string
	// Env entries are appended to the inherited environment.
	Env []string

	// Network is "unix" (default) or "tcp" (loopback).
	Network string

	// DataPlane selects how round frames travel between workers:
	// netcomm.DataPlaneHub ("" defaults to it) relays them through the
	// coordinator, netcomm.DataPlaneP2P has the workers dial a direct
	// mesh with credit-based flow control. Recovery needs no special
	// handling: each attempt spawns a fresh party that re-negotiates
	// its mesh through the new hub.
	DataPlane string
	// WindowBytes is the p2p per-peer-connection receive window (0 =
	// netcomm.DefaultWindowBytes). On the adaptive plane it is only the
	// initial value; WindowMin/WindowMax bound the per-connection tuner
	// and PromoteBytes sets the relayed-volume threshold at which a lazy
	// pair earns a direct connection (0 = the netcomm defaults).
	WindowBytes  int
	WindowMin    int
	WindowMax    int
	PromoteBytes int

	// SnapshotPath is a binary snapshot embedding the Placement owner
	// vector; Part must be the partition that vector describes (the
	// coordinator needs it to merge partials and the workers rebuild the
	// identical partition from the snapshot).
	SnapshotPath string
	Placement    string
	Part         *partition.Partition

	// Procs is the number of worker processes; the Part's workers are
	// split into contiguous ranges across them (capped at one worker
	// per process).
	Procs int

	Algorithm string
	Engine    algorithms.Engine
	Variant   string
	Params    algorithms.Params

	MaxSupersteps int
	Cost          comm.CostModel

	// Cancel, if non-nil, aborts the job when closed: the hub abort
	// propagates over every control connection, workers unwind and
	// exit; stragglers are killed after a grace period. Run returns
	// barrier.ErrCancelled.
	Cancel <-chan struct{}

	// JoinTimeout bounds how long workers may take to connect
	// (default 30s).
	JoinTimeout time.Duration

	// ResultTimeout bounds how long the coordinator waits for result
	// blobs to settle after every worker process exited (default 30s).
	ResultTimeout time.Duration

	// WallTimeout, when > 0, bounds one attempt's total wall clock: if
	// the job has not finished by then the hub aborts and stragglers are
	// killed after a grace period. This is the only way a *stalled*
	// worker (alive, connected, parked forever) is ever detected — a
	// kill or a dropped connection surfaces through the hub on its own.
	WallTimeout time.Duration

	// CkptDir, when set, enables superstep checkpointing: every worker
	// process persists its per-worker record into a ckpt.Dir store
	// rooted here, every CkptInterval supersteps (default 1).
	CkptDir      string
	CkptInterval int
	// CkptJob keys the records inside the store (default "job").
	CkptJob string

	// MaxRecoveries is how many times Run respawns the worker party
	// after a recoverable failure — a worker process dying, dropping its
	// hub connection, or (with WallTimeout) stalling — before giving up.
	// Each recovered attempt restores from the latest complete
	// checkpoint in CkptDir (or restarts from scratch when none exists).
	// 0 preserves the historical fail-fast behavior.
	MaxRecoveries int

	// RetryBackoff is the base delay between recovery attempts,
	// doubling per attempt with jitter, capped at 5s (default 100ms).
	RetryBackoff time.Duration

	// Fault, if set, is injected into the first attempt's workers via
	// the -fault flag (deterministic failure for tests; recovered
	// attempts run clean).
	Fault *FaultSpec

	// OnRecovery, if set, is called before each respawn with the
	// 1-based attempt number, the checkpoint superstep the new party
	// will restore from (0 = from scratch), and whether the failed
	// attempt's party had fully joined the hub (false means the failure
	// was at spawn/join time, not mid-run).
	OnRecovery func(attempt, restoreStep int, joined bool)

	// Spawned, if set, is called with the worker process pids once all
	// are started (diagnostics; the failure tests use it to kill one).
	Spawned func(pids []int)

	// Trace, if non-nil, receives the job's superstep timeline: each
	// worker process collects its own shard and ships it piggybacked on
	// its result blob, and the coordinator replays the shards here. The
	// merged timeline has the same shape an in-process run produces.
	// Workers additionally stream each sample over the control
	// connection the moment the superstep completes, so the trace (and
	// anything watching it via obs.Trace.OnStepComplete) advances while
	// the job is still in flight.
	Trace *obs.Trace

	// Flows, if non-nil, receives the job's flow matrix: each worker
	// process accumulates its own rows at the fabric seam and ships them
	// piggybacked on its result blob; the coordinator merges them here,
	// plus the hub's relay stats on the hub data plane. Only the
	// successful attempt contributes — an aborted attempt's partials
	// carry no flow section, so recovery never double-counts.
	Flows *obs.FlowAccum

	// Logger receives coordinator events and the workers' forwarded
	// stderr lines, each tagged with the emitting worker range. Nil
	// discards them.
	Logger *slog.Logger
}

// Run executes a job across worker subprocesses and returns the merged
// result. The returned metrics carry the hub's job-wide communication
// stats; Supersteps is the minimum any worker process reported.
//
// With MaxRecoveries > 0, a recoverable failure — a worker process that
// died or lost its hub connection without reporting an algorithm error
// of its own — does not fail the job: Run tears the attempt down,
// consults the checkpoint store for the latest complete superstep, and
// respawns the full party with a -restore flag, up to MaxRecoveries
// times with capped exponential backoff. An error a worker *reported*
// (a real algorithm or configuration failure) is never retried, and
// cancellation always wins.
func Run(spec JobSpec) (*algorithms.Result, error) {
	if spec.Part == nil {
		return nil, fmt.Errorf("workerproc: JobSpec.Part is required")
	}
	if spec.CkptDir != "" {
		if spec.CkptInterval <= 0 {
			spec.CkptInterval = 1
		}
		if spec.CkptJob == "" {
			spec.CkptJob = "job"
		}
	}
	log := spec.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	restore := 0
	for attempt := 0; ; attempt++ {
		res, joined, recoverable, err := runAttempt(spec, attempt, restore, log)
		if err == nil || !recoverable || attempt >= spec.MaxRecoveries {
			return res, err
		}
		restore = 0
		if spec.CkptDir != "" {
			s, lerr := ckpt.NewDir(spec.CkptDir).LatestComplete(spec.CkptJob, spec.Part.NumWorkers())
			if lerr != nil {
				log.Warn("checkpoint scan failed, restarting from scratch", "err", lerr)
			} else {
				restore = s
			}
		}
		log.Warn("recovering job", "attempt", attempt+1, "max", spec.MaxRecoveries,
			"restore_superstep", restore, "joined", joined, "cause", err)
		if spec.OnRecovery != nil {
			spec.OnRecovery(attempt+1, restore, joined)
		}
		if err := sleepBackoff(spec, attempt); err != nil {
			return nil, err
		}
	}
}

// sleepBackoff waits out the capped exponential backoff before recovery
// attempt, honoring cancellation.
func sleepBackoff(spec JobSpec, attempt int) error {
	base := spec.RetryBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	delay := base << uint(attempt)
	if max := 5 * time.Second; delay > max || delay <= 0 {
		delay = max
	}
	delay += time.Duration(rand.Int63n(int64(delay)/2 + 1))
	select {
	case <-time.After(delay):
		return nil
	case <-spec.Cancel: // nil channel: never fires
		return barrier.ErrCancelled
	}
}

// runAttempt runs one full spawn-execute-merge cycle. It reports, along
// with the result, whether the party fully joined the hub and whether a
// failure is recoverable — i.e. worth respawning the party over.
func runAttempt(spec JobSpec, attempt, restore int, log *slog.Logger) (*algorithms.Result, bool, bool, error) {
	m := spec.Part.NumWorkers()
	procs := spec.Procs
	if procs <= 0 {
		procs = m
	}
	if procs > m {
		procs = m
	}
	network := spec.Network
	if network == "" {
		network = "unix"
	}
	joinTimeout := spec.JoinTimeout
	if joinTimeout == 0 {
		joinTimeout = 30 * time.Second
	}
	resultTimeout := spec.ResultTimeout
	if resultTimeout == 0 {
		resultTimeout = 30 * time.Second
	}

	var addr string
	var ln net.Listener
	var err error
	switch network {
	case "unix":
		dir, derr := os.MkdirTemp("", "graphw")
		if derr != nil {
			return nil, false, false, fmt.Errorf("workerproc: %w", derr)
		}
		defer os.RemoveAll(dir)
		addr = dir + "/hub.sock"
		ln, err = net.Listen("unix", addr)
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if ln != nil {
			addr = ln.Addr().String()
		}
	default:
		return nil, false, false, fmt.Errorf("workerproc: unknown network %q", network)
	}
	if err != nil {
		return nil, false, false, fmt.Errorf("workerproc: listen: %w", err)
	}
	hub := netcomm.NewHub(m, spec.Cost, ln)
	defer hub.Close()
	hub.SetLogger(log)
	if spec.Trace != nil {
		// live superstep feed: replay in-flight samples into the job
		// trace as workers ship them, so step-completion hooks fire
		// mid-run (and keep firing across recovery respawns)
		hub.OnSamples(func(p []byte) {
			defer func() { recover() }() // malformed live batch: drop it
			decodeSamples(ser.FromBytes(p), spec.Trace)
		})
	}

	start := time.Now()
	ranges := splitRanges(m, procs)
	cmds := make([]*exec.Cmd, len(ranges))
	stderrs := make([]*cappedBuffer, len(ranges))
	taggers := make([]*lineTagger, len(ranges))
	pids := make([]int, len(ranges))
	for i, r := range ranges {
		args := append(append([]string(nil), spec.BinArgs...),
			"-network", network,
			"-connect", addr,
			"-snapshot", spec.SnapshotPath,
			"-placement", spec.Placement,
			"-workers", fmt.Sprintf("%d-%d", r[0], r[1]),
			"-num-workers", strconv.Itoa(m),
			"-algorithm", spec.Algorithm,
			"-engine", string(spec.Engine),
			"-variant", spec.Variant,
			"-iterations", strconv.Itoa(spec.Params.Iterations),
			"-source", strconv.FormatUint(uint64(spec.Params.Source), 10),
			"-max-supersteps", strconv.Itoa(spec.MaxSupersteps),
		)
		if spec.DataPlane != "" {
			args = append(args, "-data-plane", spec.DataPlane)
		}
		if spec.WindowBytes > 0 {
			args = append(args, "-window-bytes", strconv.Itoa(spec.WindowBytes))
		}
		if spec.WindowMin > 0 {
			args = append(args, "-window-min", strconv.Itoa(spec.WindowMin))
		}
		if spec.WindowMax > 0 {
			args = append(args, "-window-max", strconv.Itoa(spec.WindowMax))
		}
		if spec.PromoteBytes > 0 {
			args = append(args, "-promote-bytes", strconv.Itoa(spec.PromoteBytes))
		}
		if spec.Trace != nil {
			args = append(args, "-trace")
		}
		if spec.Flows != nil {
			args = append(args, "-flows")
		}
		if spec.CkptDir != "" {
			args = append(args,
				"-ckpt-dir", spec.CkptDir,
				"-ckpt-job", spec.CkptJob,
				"-ckpt-interval", strconv.Itoa(spec.CkptInterval))
		}
		if restore > 0 {
			args = append(args, "-restore", strconv.Itoa(restore))
		}
		if spec.Fault != nil && attempt == 0 {
			args = append(args, "-fault", spec.Fault.String())
		}
		cmd := exec.Command(spec.Bin, args...)
		cmd.Env = append(os.Environ(), spec.Env...)
		cmd.Env = append(cmd.Env, ChildEnv+"=1")
		sb := &cappedBuffer{cap: 8 << 10}
		tg := &lineTagger{dst: sb,
			log: log.With("workers", fmt.Sprintf("%d-%d", r[0], r[1]))}
		cmd.Stderr = tg
		if err := cmd.Start(); err != nil {
			hub.Abort("spawn failed")
			for _, c := range cmds[:i] {
				c.Process.Kill()
				c.Wait()
			}
			// Spawn failures are often transient (fd or pid pressure):
			// recoverable, so the retry loop gets a shot at them.
			return nil, false, true, fmt.Errorf("workerproc: spawn graphworker %d: %w", i, err)
		}
		cmds[i], stderrs[i], taggers[i], pids[i] = cmd, sb, tg, cmd.Process.Pid
	}
	log.Debug("spawned graphworkers", "procs", len(cmds), "network", network)
	if spec.Spawned != nil {
		spec.Spawned(pids)
	}

	// Cancellation: abort the hub so every worker unwinds; anything
	// still alive after the grace period is killed.
	procsDone := make(chan struct{})
	cancelFired := make(chan struct{})
	if spec.Cancel != nil {
		go func() {
			select {
			case <-spec.Cancel:
				close(cancelFired)
				hub.Abort("job cancelled")
				select {
				case <-procsDone:
				case <-time.After(10 * time.Second):
					for _, c := range cmds {
						c.Process.Kill()
					}
				}
			case <-procsDone:
			}
		}()
	}

	// Join watchdog: if the party never assembles, abort and kill so
	// Wait below cannot hang on a worker parked in a barrier.
	var joinedOK atomic.Bool
	joined := make(chan error, 1)
	go func() { joined <- hub.WaitJoined(joinTimeout) }()

	var wg sync.WaitGroup
	exitErrs := make([]error, len(cmds))
	for i, cmd := range cmds {
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			exitErrs[i] = cmd.Wait()
		}(i, cmd)
	}
	go func() {
		if err := <-joined; err != nil {
			hub.Abort("join timeout")
			time.Sleep(2 * time.Second)
			for _, c := range cmds {
				c.Process.Kill()
			}
		} else {
			joinedOK.Store(true)
		}
	}()

	// Wall-clock watchdog: a stalled worker stays joined and keeps its
	// connection, so neither the hub nor the join watchdog ever notices
	// it — only elapsed time can. Abort first so live workers unwind and
	// report, then kill whatever is still parked.
	if spec.WallTimeout > 0 {
		wallTimer := time.AfterFunc(spec.WallTimeout, func() {
			hub.Abort("wall-clock timeout")
			select {
			case <-procsDone:
			case <-time.After(5 * time.Second):
				for _, c := range cmds {
					c.Process.Kill()
				}
			}
		})
		defer wallTimer.Stop()
	}

	wg.Wait()
	close(procsDone)
	for _, tg := range taggers {
		tg.flush()
	}

	// Every process has exited: whatever it managed to send is already
	// in the hub's socket buffers and drains in well under a second. If
	// anything is still unsettled after a drain window — a worker died
	// before dialing, so the hub alone would never learn about it —
	// abort so WaitResults settles instead of running out its deadline.
	settle := time.AfterFunc(5*time.Second, func() {
		hub.Abort("worker processes exited without reporting")
	})
	blobs, hubErrs, werr := hub.WaitResults(resultTimeout)
	settle.Stop()
	if werr != nil {
		hubErrs = append(hubErrs, werr)
	}

	var errs []error
	partials := make([]partial, 0, len(blobs))
	for _, blob := range blobs {
		p, perr := decodePartial(blob)
		if perr != nil {
			errs = append(errs, perr)
			continue
		}
		partials = append(partials, p)
	}
	errs = append(errs, hubErrs...)
	for i, eerr := range exitErrs {
		if eerr == nil {
			continue
		}
		msg := bytes.TrimSpace(stderrs[i].Bytes())
		if len(msg) > 0 {
			errs = append(errs, fmt.Errorf("workerproc: graphworker %d (workers %d-%d) exited: %v: %s",
				i, ranges[i][0], ranges[i][1], eerr, msg))
		} else {
			errs = append(errs, fmt.Errorf("workerproc: graphworker %d (workers %d-%d) exited: %v",
				i, ranges[i][0], ranges[i][1], eerr))
		}
	}

	res, minSteps, mergeErr := mergePartials(spec.Part, partials, spec.Trace, spec.Flows)
	if mergeErr != nil {
		errs = append(errs, mergeErr)
	}
	err = barrier.JoinErrors(errs)
	if err == nil && mergeErr != nil {
		// JoinErrors drops abort echoes to surface root causes, but a
		// failed merge with no root cause anywhere must still fail the
		// job — res is nil and the partials were incomplete.
		err = mergeErr
	}
	cancelled := false
	if spec.Cancel != nil {
		select {
		case <-cancelFired:
			cancelled = true
		default:
		}
	}
	if cancelled {
		// A real worker error that raced the cancellation wins; but
		// teardown fallout (aborted echoes, processes killed or exiting
		// before they could report) is a consequence of cancelling, not
		// a failure in its own right.
		var reported []error
		for _, p := range partials {
			reported = append(reported, p.err)
		}
		if realErr := barrier.JoinErrors(reported); realErr == nil {
			return nil, joinedOK.Load(), false, barrier.ErrCancelled
		}
	}
	if err != nil {
		// Recoverability: a failure is worth respawning over only when
		// no worker *reported* an error of its own — every partial that
		// arrived is either fine or pure abort fallout, so the root
		// cause is a process that died, dropped its connection
		// (netcomm.ErrWorkerLost) or was killed by a watchdog. An error
		// a worker shipped in its result blob (a superstep cap, a bad
		// restore, an algorithm failure) would just recur on retry.
		// Peer-lost errors (netcomm.ErrPeerLost) count as fallout too:
		// under the p2p plane a surviving worker's send can observe a
		// dying peer's connection reset before the hub's abort reaches
		// it, but the root cause is still the dead peer.
		recoverable := !cancelled && !errors.Is(err, barrier.ErrCancelled)
		for _, p := range partials {
			if p.err != nil && !errors.Is(p.err, barrier.ErrAborted) &&
				!errors.Is(p.err, barrier.ErrCancelled) && !errors.Is(p.err, netcomm.ErrPeerLost) {
				recoverable = false
				break
			}
		}
		return nil, joinedOK.Load(), recoverable, err
	}
	if spec.Flows != nil {
		// hub-plane relay stats live coordinator-side; merged only on the
		// successful attempt so recovery never double-counts
		for _, r := range hub.RelayStats() {
			spec.Flows.AddRelay(r)
		}
	}
	hubStats := hub.Stats()
	res.Metrics = algorithms.Metrics{
		Engine:     spec.Engine,
		Supersteps: minSteps,
		NetBytes:   hubStats.NetworkBytes,
		Rounds:     hubStats.Rounds,
		WallTime:   time.Since(start),
		SimTime:    time.Since(start) + hubStats.SimNetTime,
	}
	// Per-worker wall time as the coordinator saw it: job start to the
	// arrival of the result blob covering that worker. The spread across
	// workers is the job-level straggler skew.
	arrivals := hub.ResultTimes()
	wall := make([]time.Duration, m)
	for _, p := range partials {
		at, ok := arrivals[p.lo]
		if !ok {
			continue
		}
		for w := p.lo; w <= p.hi && w < m; w++ {
			wall[w] = at.Sub(start)
		}
	}
	res.Metrics.WorkerWall = wall
	log.Debug("job merged", "supersteps", minSteps,
		"net_bytes", hubStats.NetworkBytes, "rounds", hubStats.Rounds)
	return res, true, false, nil
}

// splitRanges deals m workers into n contiguous, near-equal ranges.
func splitRanges(m, n int) [][2]int {
	out := make([][2]int, 0, n)
	base, rem := m/n, m%n
	lo := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size - 1})
		lo += size
	}
	return out
}

// cappedBuffer retains the first cap bytes written (worker stderr, for
// error reports) and counts the rest.
type cappedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
	cap int
}

func (b *cappedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.buf.Len() < b.cap {
		keep := p
		if b.buf.Len()+len(keep) > b.cap {
			keep = keep[:b.cap-b.buf.Len()]
		}
		b.buf.Write(keep)
	}
	return len(p), nil
}

func (b *cappedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// lineTagger tees a worker's stderr into the retained capped buffer and
// re-emits every complete line on the coordinator's logger, tagged with
// the emitting worker range, so a multi-process job has one interleaved,
// attributable log stream instead of per-process buffers.
type lineTagger struct {
	dst *cappedBuffer
	log *slog.Logger

	mu   sync.Mutex
	line bytes.Buffer
}

func (t *lineTagger) Write(p []byte) (int, error) {
	t.dst.Write(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.line.Write(p)
	for {
		b := t.line.Bytes()
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			return len(p), nil
		}
		t.log.Info("graphworker stderr",
			"line", string(bytes.TrimRight(b[:i], "\r")))
		t.line.Next(i + 1)
	}
}

// flush emits a trailing unterminated line after the process exits.
func (t *lineTagger) flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.line.Len() > 0 {
		t.log.Info("graphworker stderr", "line", t.line.String())
		t.line.Reset()
	}
}
