package workerproc

import (
	"fmt"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/netcomm"
)

// FaultSpec describes one deterministic injected fault for the recovery
// tests and the chaos CI job. It fires at the checkpoint probe of the
// named worker's superstep — the barrier-aligned cut point both engines
// share — so a given (kind, worker, superstep) triple reproduces the
// same failure on every run regardless of scheduling.
type FaultSpec struct {
	// Kind is the failure mode:
	//
	//	kill  — SIGKILL the worker's own process (no unwinding, no
	//	        goodbye: the hub sees the connection drop)
	//	drop  — close the hub connection but keep running (the fabric
	//	        fails mid-exchange while the process lives)
	//	stall — park the worker forever (the failure only a wall-clock
	//	        watchdog can detect)
	//	slow  — sleep slowDelay at the cut point of every superstep from
	//	        S on (not a failure: a deterministic straggler for the
	//	        diagnosis tests — every other worker accumulates barrier
	//	        wait blaming this one)
	Kind string
	// Worker is the job-wide worker id that suffers the fault.
	Worker int
	// Superstep is the superstep whose cut point triggers it.
	Superstep int
}

// slowDelay is how long a "slow" fault parks its worker per superstep —
// long enough to dominate a small test job's compute time, short enough
// to keep the suite quick.
const slowDelay = 30 * time.Millisecond

// ParseFault parses the -fault flag syntax "kind:W@S", e.g. "kill:1@3".
func ParseFault(s string) (*FaultSpec, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("workerproc: bad fault %q (want kind:W@S)", s)
	}
	switch kind {
	case "kill", "drop", "stall", "slow":
	default:
		return nil, fmt.Errorf("workerproc: unknown fault kind %q", kind)
	}
	wS, sS, ok := strings.Cut(rest, "@")
	if !ok {
		return nil, fmt.Errorf("workerproc: bad fault %q (want kind:W@S)", s)
	}
	w, err := strconv.Atoi(wS)
	if err != nil || w < 0 {
		return nil, fmt.Errorf("workerproc: bad fault worker in %q", s)
	}
	step, err := strconv.Atoi(sS)
	if err != nil || step <= 0 {
		return nil, fmt.Errorf("workerproc: bad fault superstep in %q", s)
	}
	return &FaultSpec{Kind: kind, Worker: w, Superstep: step}, nil
}

// String renders the spec back into the -fault flag syntax.
func (f *FaultSpec) String() string {
	return fmt.Sprintf("%s:%d@%d", f.Kind, f.Worker, f.Superstep)
}

// probe returns the checkpoint-seam callback that fires the fault in a
// worker process hosting workers over client's connection.
func (f *FaultSpec) probe(client *netcomm.Client) func(worker, superstep int) {
	return func(worker, superstep int) {
		if f.Kind == "slow" {
			// not a one-shot failure: the straggler stays slow for the
			// rest of the run so the skew is visible in every sample
			if worker == f.Worker && superstep >= f.Superstep {
				time.Sleep(slowDelay)
			}
			return
		}
		if worker != f.Worker || superstep != f.Superstep {
			return
		}
		switch f.Kind {
		case "kill":
			syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
		case "drop":
			client.Close()
		case "stall":
			select {}
		}
	}
}
