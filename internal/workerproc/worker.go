package workerproc

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync"

	"repro/internal/algorithms"
	"repro/internal/ckpt"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/netcomm"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/ser"
)

// ChildEnv marks a process as a spawned graphworker; test binaries
// re-exec themselves with it set so no separate binary must be built to
// exercise real multi-process jobs.
const ChildEnv = "GRAPHWORKER_CHILD"

// Main is the graphworker entry point: parse flags, load the snapshot,
// join the job's fabric, run the algorithm, ship the partial result.
// The exit code is nonzero only for failures before the fabric exists
// (bad flags, unreadable snapshot); a run failure travels to the
// coordinator inside the result blob instead.
func Main(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	network := fs.String("network", "unix", "hub network: unix or tcp")
	addr := fs.String("connect", "", "hub address (socket path or host:port)")
	dataPlane := fs.String("data-plane", netcomm.DataPlaneHub, "data plane: hub (frames relayed by the coordinator), p2p (direct worker mesh with credit flow control) or p2p-adaptive (lazy mesh with auto-tuned windows)")
	windowBytes := fs.Int("window-bytes", netcomm.DefaultWindowBytes, "p2p receive window per peer connection in bytes (initial value on the adaptive plane)")
	windowMin := fs.Int("window-min", netcomm.DefaultWindowMin, "adaptive plane: smallest window the per-connection tuner may shrink to")
	windowMax := fs.Int("window-max", netcomm.DefaultWindowMax, "adaptive plane: largest window the per-connection tuner may grow to")
	promoteBytes := fs.Int("promote-bytes", netcomm.DefaultPromoteBytes, "adaptive plane: cumulative relayed bytes at which a cold pair is promoted to a direct connection")
	snapshot := fs.String("snapshot", "", "binary graph snapshot with the job's placement embedded")
	placement := fs.String("placement", "", "name of the owner vector inside the snapshot")
	workersFlag := fs.String("workers", "", "hosted worker range lo-hi (inclusive) or a single id")
	numWorkers := fs.Int("num-workers", 0, "job-wide worker count M")
	algorithm := fs.String("algorithm", "", "registry algorithm name")
	engine := fs.String("engine", "", "channel or pregel")
	variant := fs.String("variant", "", "algorithm variant (empty = basic)")
	iterations := fs.Int("iterations", 0, "PageRank iterations (0 = default)")
	source := fs.Uint64("source", 0, "SSSP source vertex")
	maxSupersteps := fs.Int("max-supersteps", 0, "superstep cap (0 = engine default)")
	traceOn := fs.Bool("trace", false, "collect per-superstep trace samples, stream them live over the control connection, and ship them with the partial result")
	flowsOn := fs.Bool("flows", false, "record the per-(src,dst) flow matrix at the fabric seam and ship it with the partial result")
	ckptDir := fs.String("ckpt-dir", "", "checkpoint store directory (empty = checkpointing off)")
	ckptJob := fs.String("ckpt-job", "job", "checkpoint job key inside the store")
	ckptInterval := fs.Int("ckpt-interval", 0, "supersteps between checkpoints (0 = never save)")
	restore := fs.Int("restore", 0, "superstep to restore from before running (0 = fresh start)")
	faultFlag := fs.String("fault", "", "deterministic fault injection kind:W@S (tests only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log := slog.New(slog.NewTextHandler(stderr, nil))
	fail := func(err error) int {
		log.Error("graphworker startup failed", "err", err)
		return 1
	}

	if err := netcomm.ValidatePlaneConfig(*dataPlane, *windowBytes, *windowMin, *windowMax, *promoteBytes); err != nil {
		return fail(err)
	}
	lo, hi, err := parseRange(*workersFlag)
	if err != nil {
		return fail(err)
	}
	log = log.With("workers", fmt.Sprintf("%d-%d", lo, hi), "algorithm", *algorithm)
	spec, ok := algorithms.Lookup(*algorithm)
	if !ok {
		return fail(fmt.Errorf("unknown algorithm %q", *algorithm))
	}
	eng, err := algorithms.ParseEngine(*engine)
	if err != nil {
		return fail(err)
	}

	g, placements, err := graph.ReadSnapshotFile(*snapshot)
	if err != nil {
		return fail(fmt.Errorf("load snapshot: %w", err))
	}
	var part *partition.Partition
	for _, p := range placements {
		if p.Name == *placement {
			if part, err = partition.FromOwners(p.Workers, p.Owner); err != nil {
				return fail(fmt.Errorf("placement %q: %w", p.Name, err))
			}
			break
		}
	}
	if part == nil {
		return fail(fmt.Errorf("snapshot has no placement %q", *placement))
	}
	if *numWorkers != 0 && part.NumWorkers() != *numWorkers {
		return fail(fmt.Errorf("placement %q has %d workers, job expects %d", *placement, part.NumWorkers(), *numWorkers))
	}

	var flows *obs.FlowAccum
	if *flowsOn {
		flows = obs.NewFlowAccum(part.NumWorkers())
	}
	client, err := netcomm.DialConfig(netcomm.Config{
		Network: *network, Addr: *addr,
		Lo: lo, Hi: hi, M: part.NumWorkers(),
		DataPlane:    *dataPlane,
		WindowBytes:  *windowBytes,
		WindowMin:    *windowMin,
		WindowMax:    *windowMax,
		PromoteBytes: *promoteBytes,
		Flows:        flows,
	})
	if err != nil {
		return fail(err)
	}
	defer client.Close()
	log.Info("graphworker running", "engine", *engine, "vertices", g.NumVertices(),
		"trace", *traceOn, "data-plane", *dataPlane)

	opts := algorithms.Options{
		Part:          part,
		Frags:         frag.Build(g, part),
		MaxSupersteps: *maxSupersteps,
		Fabric:        client,
	}
	if *ckptDir != "" || *faultFlag != "" {
		hook := &ckpt.Hook{Job: *ckptJob, Interval: *ckptInterval, Restore: *restore}
		if *ckptDir != "" {
			hook.Store = ckpt.NewDir(*ckptDir)
		}
		if *faultFlag != "" {
			f, ferr := ParseFault(*faultFlag)
			if ferr != nil {
				return fail(ferr)
			}
			hook.Probe = f.probe(client)
		}
		opts.Checkpoint = hook
	}
	var tr *obs.Trace
	if *traceOn {
		// collect only this process's shard of the timeline; the
		// coordinator replays every shard into the job-wide trace. Each
		// sample is also streamed over the control connection as it
		// happens so the coordinator's event stream sees supersteps in
		// flight, not only at job end.
		tr = obs.NewTrace(part.NumWorkers())
		opts.Observer = &liveObserver{tr: tr, client: client, buf: ser.NewBuffer(256)}
	}
	params := algorithms.Params{Iterations: *iterations, Source: graph.VertexID(*source)}
	res, runErr := spec.Run(eng, *variant, g, opts, params)

	var samples []obs.SuperstepSample
	if tr != nil && runErr == nil {
		samples = tr.Samples()
	}
	var flowMatrix *obs.FlowMatrix
	if flows != nil && runErr == nil {
		for _, c := range client.ConnStats() {
			flows.AddConn(c)
		}
		flowMatrix = flows.Matrix()
	}
	buf := ser.NewBuffer(4096)
	encodePartial(buf, part, lo, hi, res, samples, flowMatrix, runErr)
	if err := client.SendResult(buf.Bytes()); err != nil {
		return fail(fmt.Errorf("ship result: %w", err))
	}
	if runErr != nil {
		log.Error("run failed", "err", runErr)
		if terr := client.Err(); terr != nil {
			log.Error("transport error", "err", terr)
		}
	}
	return 0
}

// liveObserver feeds each superstep sample into the process-local trace
// and ships it to the coordinator over the hub control connection as it
// completes. Shipping is best-effort and loss-tolerant: the authoritative
// timeline still travels with the partial result, so a send error (the
// job is unwinding anyway) is simply dropped.
type liveObserver struct {
	tr     *obs.Trace
	client *netcomm.Client

	mu  sync.Mutex // hosted workers observe concurrently
	buf *ser.Buffer
}

func (o *liveObserver) ObserveSuperstep(s obs.SuperstepSample) {
	o.tr.ObserveSuperstep(s)
	o.mu.Lock()
	o.buf.Reset()
	encodeSamples(o.buf, []obs.SuperstepSample{s})
	o.client.SendSamples(o.buf.Bytes())
	o.mu.Unlock()
}

// parseRange parses "lo-hi" or a bare "id".
func parseRange(s string) (lo, hi int, err error) {
	if s == "" {
		return 0, 0, fmt.Errorf("missing -workers range")
	}
	loS, hiS, found := strings.Cut(s, "-")
	if !found {
		hiS = loS
	}
	if lo, err = strconv.Atoi(loS); err != nil {
		return 0, 0, fmt.Errorf("bad -workers %q", s)
	}
	if hi, err = strconv.Atoi(hiS); err != nil {
		return 0, 0, fmt.Errorf("bad -workers %q", s)
	}
	if lo < 0 || hi < lo {
		return 0, 0, fmt.Errorf("bad -workers range %q", s)
	}
	return lo, hi, nil
}
