package workerproc_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/barrier"
	"repro/internal/graph"
	"repro/internal/netcomm"
	"repro/internal/partition"
	"repro/internal/seq"
	"repro/internal/workerproc"
)

// TestMain implements the graphworker re-exec: the coordinator spawns
// this test binary with GRAPHWORKER_CHILD set, so real multi-process
// jobs run without building a separate binary first.
func TestMain(m *testing.M) {
	if os.Getenv(workerproc.ChildEnv) != "" {
		os.Exit(workerproc.Main(os.Args[1:], os.Stderr))
	}
	os.Exit(m.Run())
}

// writeSnapshot dumps g with hash and greedy owner vectors for M
// workers embedded, returning the path and the partitions by name.
func writeSnapshot(t *testing.T, g *graph.Graph, m int) (string, map[string]*partition.Partition) {
	t.Helper()
	parts := map[string]*partition.Partition{}
	var placements []graph.Placement
	for _, name := range []string{partition.PlacementHash, partition.PlacementGreedy} {
		p, err := partition.ByName(name, g, m)
		if err != nil {
			t.Fatal(err)
		}
		parts[name] = p
		placements = append(placements, graph.Placement{Name: name, Workers: m, Owner: p.Owners()})
	}
	path := filepath.Join(t.TempDir(), "graph.bin")
	if err := graph.WriteSnapshotFile(path, g, placements); err != nil {
		t.Fatal(err)
	}
	return path, parts
}

// runJob executes one distributed job against this test binary.
// plane selects the data plane ("" lets the worker default to hub); a
// deliberately small credit window makes the p2p rows cycle through
// grant/stall/replenish even on these small test graphs.
func runJob(t *testing.T, snap string, placement string, part *partition.Partition,
	procs int, algorithm string, eng algorithms.Engine, variant string,
	params algorithms.Params, plane string) (*algorithms.Result, error) {
	t.Helper()
	js := workerproc.JobSpec{
		Bin:           os.Args[0],
		SnapshotPath:  snap,
		Placement:     placement,
		Part:          part,
		Procs:         procs,
		Algorithm:     algorithm,
		Engine:        eng,
		Variant:       variant,
		Params:        params,
		MaxSupersteps: 100000,
		JoinTimeout:   time.Minute,
		DataPlane:     plane,
	}
	switch plane {
	case netcomm.DataPlaneP2P:
		js.WindowBytes = 64 << 10
	case netcomm.DataPlaneP2PAdaptive:
		// Tiny initial window and promotion threshold so the sweep's
		// modest graphs still exercise resizes and lazy-pair promotion,
		// not just the relay path.
		js.WindowBytes = 16 << 10
		js.WindowMin = 8 << 10
		js.PromoteBytes = 32 << 10
	}
	return workerproc.Run(js)
}

// TestDistributedEquivalenceSweep is the acceptance sweep: every Table
// IV–VII algorithm × both engines × every registered variant × hash and
// greedy placements × both data planes, with the workers in separate OS
// processes joined over the socket fabric, must produce oracle-identical
// results. Two workers share each process, so the sweep also covers
// co-hosted workers whose frames round-trip through the hub (hub plane)
// or stage in-process (p2p plane).
func TestDistributedEquivalenceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns many worker processes")
	}
	const m, procs = 4, 2
	seed := int64(11)
	rmatD := graph.RMAT(7, 5, seed, graph.RMATOptions{NoSelfLoops: true})
	rmatU := graph.Undirectify(rmatD)
	rmatW := graph.Undirectify(graph.RMAT(6, 4, seed, graph.RMATOptions{Weighted: true, MaxWeight: 50, NoSelfLoops: true}))
	tree := graph.RandomTree(201, seed)

	inputs := map[string]*graph.Graph{
		"pagerank":    rmatD,
		"wcc":         rmatU,
		"sv":          rmatU,
		"scc":         rmatD,
		"pointerjump": tree,
		"sssp":        rmatW,
		"msf":         rmatW,
	}
	oracleWCC := seq.ConnectedComponents(rmatU)
	oracleSCC := seq.SCC(rmatD)
	oracleRoots := seq.TreeRoots(tree)
	oracleDist := seq.Dijkstra(rmatW, 1)
	oracleRank := seq.PageRank(rmatD, 12)
	oracleMSFW, oracleMSFCnt := seq.MSFWeight(rmatW)

	snaps := map[string]string{}
	parts := map[string]map[string]*partition.Partition{}
	for name, g := range inputs {
		snaps[name], parts[name] = writeSnapshot(t, g, m)
	}

	for _, spec := range algorithms.Registry() {
		for _, eng := range spec.Engines() {
			for _, variant := range spec.Variants(eng) {
				for _, placement := range []string{partition.PlacementHash, partition.PlacementGreedy} {
					for _, plane := range []string{netcomm.DataPlaneHub, netcomm.DataPlaneP2P, netcomm.DataPlaneP2PAdaptive} {
						sweepOne(t, snaps[spec.Name], placement, parts[spec.Name][placement],
							procs, spec, eng, variant, plane,
							oracleWCC, oracleSCC, oracleRoots, oracleDist, oracleRank,
							oracleMSFW, oracleMSFCnt)
					}
				}
			}
		}
	}
}

func sweepOne(t *testing.T, snap, placement string, part *partition.Partition,
	procs int, spec *algorithms.Spec, eng algorithms.Engine, variant, plane string,
	oracleWCC, oracleSCC, oracleRoots []graph.VertexID, oracleDist []int64,
	oracleRank []float64, oracleMSFW int64, oracleMSFCnt int) {
	t.Helper()
	name := fmt.Sprintf("%s/%s/%s/%s/%s", spec.Name, eng, variant, placement, plane)
	params := algorithms.Params{Iterations: 12, Source: 1}
	res, err := runJob(t, snap, placement, part,
		procs, spec.Name, eng, variant, params, plane)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	switch spec.Name {
	case "wcc", "sv":
		checkLabels(t, name, res.Labels, oracleWCC)
	case "scc":
		checkLabels(t, name, res.Labels, oracleSCC)
	case "pointerjump":
		checkLabels(t, name, res.Labels, oracleRoots)
	case "sssp":
		for i := range oracleDist {
			if res.Dists[i] != oracleDist[i] {
				t.Fatalf("%s: vertex %d got %d want %d", name, i, res.Dists[i], oracleDist[i])
			}
		}
	case "pagerank":
		for i := range oracleRank {
			if d := res.Ranks[i] - oracleRank[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("%s: vertex %d got %v want %v", name, i, res.Ranks[i], oracleRank[i])
			}
		}
	case "msf":
		if res.MSF.Weight != oracleMSFW || len(res.MSF.Edges) != oracleMSFCnt {
			t.Fatalf("%s: weight=%d edges=%d want %d %d",
				name, res.MSF.Weight, len(res.MSF.Edges), oracleMSFW, oracleMSFCnt)
		}
	}
	if res.Metrics.Supersteps == 0 || res.Metrics.NetBytes == 0 {
		t.Fatalf("%s: empty metrics %+v", name, res.Metrics)
	}
}

func checkLabels(t *testing.T, name string, got, want []graph.VertexID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: vertex %d got %d want %d", name, i, got[i], want[i])
		}
	}
}

// Without recovery enabled (the default), a SIGKILLed worker still
// fails the job with a joined transport error — never hangs: the hub
// turns the dropped connection into a barrier abort that releases every
// other process, and the error carries netcomm.ErrWorkerLost.
func TestKillWorkerWithoutRecoveryFailsCleanly(t *testing.T) {
	g := graph.Undirectify(graph.RMAT(9, 6, 3, graph.RMATOptions{NoSelfLoops: true}))
	const m = 4
	snap, parts := writeSnapshot(t, g, m)
	res, err := workerproc.Run(workerproc.JobSpec{
		Bin:           os.Args[0],
		SnapshotPath:  snap,
		Placement:     partition.PlacementHash,
		Part:          parts[partition.PlacementHash],
		Procs:         m,
		Algorithm:     "pagerank",
		Engine:        algorithms.EngineChannel,
		Params:        algorithms.Params{Iterations: 20},
		MaxSupersteps: 200000,
		JoinTimeout:   time.Minute,
		Fault:         &workerproc.FaultSpec{Kind: "kill", Worker: 1, Superstep: 4},
	})
	if err == nil {
		t.Fatalf("job succeeded despite killed worker (res=%v)", res != nil)
	}
	if !errors.Is(err, netcomm.ErrWorkerLost) && !strings.Contains(err.Error(), "exited") {
		t.Fatalf("error does not surface the dead worker: %v", err)
	}
}

// TestFaultMatrixRecovers is the recovery acceptance matrix: a
// deterministic kill, drop or stall of one worker mid-job, under either
// engine on either socket fabric on either data plane, must complete
// anyway — the coordinator respawns the party from the last complete
// checkpoint and the final ranks are byte-identical to an in-process
// run of the same engine. The p2p rows also prove mesh teardown and
// re-negotiation: each recovery attempt spawns a fresh party that must
// re-exchange the peer directory and redial the full mesh.
func TestFaultMatrixRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns many worker processes")
	}
	g := graph.Undirectify(graph.RMAT(8, 5, 3, graph.RMATOptions{NoSelfLoops: true}))
	const m = 4
	snap, parts := writeSnapshot(t, g, m)
	part := parts[partition.PlacementHash]
	params := algorithms.Params{Iterations: 12}
	spec, _ := algorithms.Lookup("pagerank")

	for _, eng := range []algorithms.Engine{algorithms.EngineChannel, algorithms.EnginePregel} {
		oracle, err := spec.Run(eng, "", g,
			algorithms.Options{Part: part, MaxSupersteps: 200000}, params)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct{ kind, network, plane string }{
			{"kill", "unix", netcomm.DataPlaneHub}, {"drop", "unix", netcomm.DataPlaneHub}, {"stall", "unix", netcomm.DataPlaneHub},
			{"kill", "tcp", netcomm.DataPlaneHub}, {"drop", "tcp", netcomm.DataPlaneHub}, {"stall", "tcp", netcomm.DataPlaneHub},
			{"kill", "unix", netcomm.DataPlaneP2P}, {"drop", "unix", netcomm.DataPlaneP2P}, {"stall", "unix", netcomm.DataPlaneP2P},
			{"kill", "tcp", netcomm.DataPlaneP2P}, {"drop", "tcp", netcomm.DataPlaneP2P}, {"stall", "tcp", netcomm.DataPlaneP2P},
			// The adaptive rows prove recovery re-negotiates the lazy
			// mesh: each fresh party restarts with cold routes and must
			// re-earn its promotions and window sizes from scratch.
			{"kill", "unix", netcomm.DataPlaneP2PAdaptive},
			{"kill", "tcp", netcomm.DataPlaneP2PAdaptive},
		} {
			kind, network, plane := tc.kind, tc.network, tc.plane
			t.Run(fmt.Sprintf("%s/%s/%s/%s", eng, kind, network, plane), func(t *testing.T) {
				var recoveries atomic.Int32
				js := workerproc.JobSpec{
					Bin:           os.Args[0],
					SnapshotPath:  snap,
					Placement:     partition.PlacementHash,
					Part:          part,
					Procs:         m,
					Algorithm:     "pagerank",
					Engine:        eng,
					Network:       network,
					Params:        params,
					MaxSupersteps: 200000,
					JoinTimeout:   time.Minute,
					CkptDir:       t.TempDir(),
					CkptInterval:  2,
					CkptJob:       "t",
					MaxRecoveries: 2,
					RetryBackoff:  10 * time.Millisecond,
					DataPlane:     plane,
					Fault:         &workerproc.FaultSpec{Kind: kind, Worker: 2, Superstep: 5},
					OnRecovery: func(attempt, restoreStep int, joined bool) {
						recoveries.Add(1)
						if joined && restoreStep == 0 {
							t.Errorf("joined party recovered without any checkpoint")
						}
					},
				}
				switch plane {
				case netcomm.DataPlaneP2P:
					js.WindowBytes = 64 << 10 // small window: recovery under credit pressure
				case netcomm.DataPlaneP2PAdaptive:
					js.WindowBytes = 16 << 10  // tiny window + threshold: the retried
					js.PromoteBytes = 32 << 10 // party must redo resizes and promotions
				}
				if kind == "stall" {
					// the only detector a parked worker has
					js.WallTimeout = 5 * time.Second
				}
				res, err := workerproc.Run(js)
				if err != nil {
					t.Fatalf("%s/%s: job did not recover: %v", eng, kind, err)
				}
				if recoveries.Load() == 0 {
					t.Fatalf("%s/%s: job succeeded without recovering (fault never fired?)", eng, kind)
				}
				if len(res.Ranks) != len(oracle.Ranks) {
					t.Fatalf("rank vector length %d want %d", len(res.Ranks), len(oracle.Ranks))
				}
				for i := range oracle.Ranks {
					if res.Ranks[i] != oracle.Ranks[i] {
						t.Fatalf("%s/%s: vertex %d got %v want %v (recovered run diverged)",
							eng, kind, i, res.Ranks[i], oracle.Ranks[i])
					}
				}
			})
		}
	}
}

// A worker error that would recur on every attempt — here the superstep
// cap — must fail fast even with recovery enabled: retrying cannot fix
// a deterministic failure, and each retry would burn a full attempt.
func TestRecoveryDoesNotRetryDeterministicErrors(t *testing.T) {
	g := graph.Undirectify(graph.RMAT(7, 4, 9, graph.RMATOptions{NoSelfLoops: true}))
	const m = 2
	snap, parts := writeSnapshot(t, g, m)
	retried := false
	_, err := workerproc.Run(workerproc.JobSpec{
		Bin:           os.Args[0],
		SnapshotPath:  snap,
		Placement:     partition.PlacementHash,
		Part:          parts[partition.PlacementHash],
		Procs:         m,
		Algorithm:     "pagerank",
		Engine:        algorithms.EngineChannel,
		Params:        algorithms.Params{Iterations: 50},
		MaxSupersteps: 3,
		JoinTimeout:   time.Minute,
		CkptDir:       t.TempDir(),
		CkptInterval:  1,
		MaxRecoveries: 3,
		RetryBackoff:  10 * time.Millisecond,
		OnRecovery:    func(int, int, bool) { retried = true },
	})
	if err == nil {
		t.Fatal("expected MaxSupersteps error")
	}
	if retried {
		t.Fatalf("deterministic failure was retried: %v", err)
	}
}

// Cancellation mid-run propagates through the hub abort and surfaces as
// ErrCancelled.
func TestCancelDistributedJob(t *testing.T) {
	g := graph.Undirectify(graph.RMAT(8, 5, 5, graph.RMATOptions{NoSelfLoops: true}))
	const m = 2
	snap, parts := writeSnapshot(t, g, m)
	cancel := make(chan struct{})
	go func() {
		time.Sleep(500 * time.Millisecond)
		close(cancel)
	}()
	_, err := workerproc.Run(workerproc.JobSpec{
		Bin:           os.Args[0],
		SnapshotPath:  snap,
		Placement:     partition.PlacementHash,
		Part:          parts[partition.PlacementHash],
		Procs:         m,
		Algorithm:     "pagerank",
		Engine:        algorithms.EngineChannel,
		Params:        algorithms.Params{Iterations: 100000},
		MaxSupersteps: 200000,
		JoinTimeout:   time.Minute,
		Cancel:        cancel,
	})
	if err == nil {
		t.Skip("job finished before the cancel landed")
	}
	if !errors.Is(err, barrier.ErrCancelled) {
		t.Fatalf("expected ErrCancelled, got %v", err)
	}
}

// A worker process that fails deterministically mid-run (superstep cap)
// must surface the real cause once, not per process.
func TestDistributedSuperstepCapSurfacesOnce(t *testing.T) {
	g := graph.Undirectify(graph.RMAT(7, 4, 9, graph.RMATOptions{NoSelfLoops: true}))
	const m = 2
	snap, parts := writeSnapshot(t, g, m)
	_, err := runJob(t, snap, partition.PlacementHash, parts[partition.PlacementHash],
		m, "pagerank", algorithms.EngineChannel, "", algorithms.Params{Iterations: 50}, "")
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	res, err := workerproc.Run(workerproc.JobSpec{
		Bin:           os.Args[0],
		SnapshotPath:  snap,
		Placement:     partition.PlacementHash,
		Part:          parts[partition.PlacementHash],
		Procs:         m,
		Algorithm:     "pagerank",
		Engine:        algorithms.EngineChannel,
		Params:        algorithms.Params{Iterations: 50},
		MaxSupersteps: 3,
		JoinTimeout:   time.Minute,
	})
	if err == nil {
		t.Fatalf("expected MaxSupersteps error, got result %v", res.Metrics)
	}
	if got := strings.Count(err.Error(), "MaxSupersteps"); got != 1 {
		t.Fatalf("cause appears %d times, want 1: %v", got, err)
	}
}

// A worker process that dies before it ever dials the hub (here: an
// unreadable snapshot) must fail the job promptly with the process's
// real error — not sit out the join and result deadlines.
func TestWorkerDiesBeforeDialFailsFast(t *testing.T) {
	g := graph.Undirectify(graph.Chain(32))
	_, parts := writeSnapshot(t, g, 2)
	start := time.Now()
	_, err := workerproc.Run(workerproc.JobSpec{
		Bin:          os.Args[0],
		SnapshotPath: filepath.Join(t.TempDir(), "missing.bin"),
		Placement:    partition.PlacementHash,
		Part:         parts[partition.PlacementHash],
		Procs:        2,
		Algorithm:    "wcc",
		Engine:       algorithms.EngineChannel,
		JoinTimeout:  time.Minute,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("job succeeded with an unreadable snapshot")
	}
	if !strings.Contains(err.Error(), "load snapshot") {
		t.Fatalf("error does not surface the snapshot failure: %v", err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("fast-fail took %v (ran out the deadlines instead of settling)", elapsed)
	}
}
