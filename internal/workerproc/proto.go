// Package workerproc implements the graphworker protocol: running one
// process's share of a distributed job and assembling the per-process
// partial results back into one algorithms.Result.
//
// A graphworker process is self-sufficient: it loads the job's graph
// from a binary snapshot, reconstructs the partition from the owner
// vector embedded in the snapshot (so every process agrees on vertex
// placement bit for bit), builds its pre-resolved fragments, joins the
// job's socket fabric, and runs the exact registry code path the
// in-process engines run. Its result — the assembled global arrays with
// only its hosted workers' vertices filled — is encoded as a compact
// partial (hosted vertices only, in local-index order) and shipped to
// the hub; the coordinator merges partials by ownership.
package workerproc

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/algorithms"
	"repro/internal/barrier"
	"repro/internal/graph"
	"repro/internal/netcomm"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/ser"
)

// result kinds on the wire, mirroring algorithms.Result.Kind.
const (
	kindLabels = 0
	kindRanks  = 1
	kindDists  = 2
	kindMSF    = 3
)

// encodePartial serializes one process's share of a run: the hosted
// worker range, the run error (empty string = success), the superstep
// count its workers reached, and — on success — the hosted workers'
// slices of the result arrays followed by the hosted workers' superstep
// trace samples (empty unless the coordinator requested tracing) and
// their share of the flow matrix. Error partials carry no values, no
// trace and no flows — an aborted attempt contributes nothing, so
// recovery never double-counts.
func encodePartial(buf *ser.Buffer, part *partition.Partition, lo, hi int,
	res *algorithms.Result, samples []obs.SuperstepSample, flows *obs.FlowMatrix, runErr error) {
	buf.WriteUvarint(uint64(lo))
	buf.WriteUvarint(uint64(hi))
	if runErr != nil {
		buf.WriteString(runErr.Error())
		return
	}
	buf.WriteString("")
	buf.WriteUvarint(uint64(res.Metrics.Supersteps))
	switch res.Kind() {
	case "labels":
		buf.WriteUint8(kindLabels)
		forHosted(part, lo, hi, func(v graph.VertexID) { buf.WriteUvarint(uint64(res.Labels[v])) })
	case "ranks":
		buf.WriteUint8(kindRanks)
		forHosted(part, lo, hi, func(v graph.VertexID) { buf.WriteFloat64(res.Ranks[v]) })
	case "dists":
		buf.WriteUint8(kindDists)
		forHosted(part, lo, hi, func(v graph.VertexID) { buf.WriteVarint(res.Dists[v]) })
	case "msf":
		buf.WriteUint8(kindMSF)
		forHosted(part, lo, hi, func(v graph.VertexID) { buf.WriteUvarint(uint64(res.MSF.Comp[v])) })
		buf.WriteVarint(res.MSF.Weight)
		buf.WriteUvarint(uint64(len(res.MSF.Edges)))
		for _, e := range res.MSF.Edges {
			buf.WriteUvarint(uint64(e.Src))
			buf.WriteUvarint(uint64(e.Dst))
			buf.WriteVarint(int64(e.Weight))
		}
	}
	encodeSamples(buf, samples)
	encodeFlows(buf, flows)
}

// encodeFlows appends the flow-matrix section: data plane, worker
// count, non-empty cells, and the transport extras. A nil matrix
// encodes as an empty section so partials without flow accounting stay
// decodable.
func encodeFlows(buf *ser.Buffer, m *obs.FlowMatrix) {
	if m == nil {
		m = &obs.FlowMatrix{}
	}
	buf.WriteString(m.Plane)
	buf.WriteUvarint(uint64(m.Workers))
	buf.WriteUvarint(uint64(len(m.Flows)))
	for _, f := range m.Flows {
		buf.WriteUvarint(uint64(f.Src))
		buf.WriteUvarint(uint64(f.Dst))
		buf.WriteVarint(f.Bytes)
		buf.WriteVarint(f.Frames)
		buf.WriteVarint(f.Rounds)
		buf.WriteVarint(f.MaxFrame)
	}
	buf.WriteUvarint(uint64(len(m.Conns)))
	for _, c := range m.Conns {
		buf.WriteUvarint(uint64(c.LocalLo))
		buf.WriteUvarint(uint64(c.LocalHi))
		buf.WriteUvarint(uint64(c.PeerLo))
		buf.WriteUvarint(uint64(c.PeerHi))
		buf.WriteVarint(c.Window)
		buf.WriteVarint(c.RecvWindow)
		buf.WriteVarint(c.WindowPeak)
		buf.WriteVarint(c.Resizes)
		buf.WriteVarint(c.Bytes)
		buf.WriteVarint(c.Frames)
		buf.WriteVarint(c.RelayBytes)
		buf.WriteVarint(c.RelayFrames)
		buf.WriteVarint(c.StallNS)
		buf.WriteVarint(c.GrantWaitNS)
		buf.WriteVarint(c.Grants)
	}
	buf.WriteUvarint(uint64(len(m.Relays)))
	for _, r := range m.Relays {
		buf.WriteUvarint(uint64(r.Lo))
		buf.WriteUvarint(uint64(r.Hi))
		buf.WriteVarint(r.Bytes)
		buf.WriteVarint(r.Frames)
		buf.WriteVarint(r.ResidencyNS)
	}
}

// decodeFlows reads the flow section written by encodeFlows and merges
// it into acc (acc nil: the section is consumed and discarded).
func decodeFlows(b *ser.Buffer, acc *obs.FlowAccum) {
	m := &obs.FlowMatrix{Plane: b.ReadString(), Workers: int(b.ReadUvarint())}
	nf := int(b.ReadUvarint())
	for i := 0; i < nf; i++ {
		m.Flows = append(m.Flows, obs.FlowStat{
			Src: int(b.ReadUvarint()), Dst: int(b.ReadUvarint()),
			Bytes: b.ReadVarint(), Frames: b.ReadVarint(),
			Rounds: b.ReadVarint(), MaxFrame: b.ReadVarint(),
		})
	}
	nc := int(b.ReadUvarint())
	for i := 0; i < nc; i++ {
		m.Conns = append(m.Conns, obs.ConnStat{
			LocalLo: int(b.ReadUvarint()), LocalHi: int(b.ReadUvarint()),
			PeerLo: int(b.ReadUvarint()), PeerHi: int(b.ReadUvarint()),
			Window: b.ReadVarint(), RecvWindow: b.ReadVarint(),
			WindowPeak: b.ReadVarint(), Resizes: b.ReadVarint(),
			Bytes: b.ReadVarint(), Frames: b.ReadVarint(),
			RelayBytes: b.ReadVarint(), RelayFrames: b.ReadVarint(),
			StallNS: b.ReadVarint(), GrantWaitNS: b.ReadVarint(), Grants: b.ReadVarint(),
		})
	}
	nr := int(b.ReadUvarint())
	for i := 0; i < nr; i++ {
		m.Relays = append(m.Relays, obs.RelayStat{
			Lo: int(b.ReadUvarint()), Hi: int(b.ReadUvarint()),
			Bytes: b.ReadVarint(), Frames: b.ReadVarint(), ResidencyNS: b.ReadVarint(),
		})
	}
	if acc != nil {
		acc.Merge(m)
	}
}

// encodeSamples appends the superstep trace section: a sample count and
// each sample's fixed fields plus its per-channel breakdown.
func encodeSamples(buf *ser.Buffer, samples []obs.SuperstepSample) {
	buf.WriteUvarint(uint64(len(samples)))
	for _, s := range samples {
		buf.WriteUvarint(uint64(s.Worker))
		buf.WriteUvarint(uint64(s.Superstep))
		buf.WriteVarint(s.ActiveVertices)
		buf.WriteUvarint(uint64(s.Rounds))
		buf.WriteVarint(s.ComputeNS)
		buf.WriteVarint(s.BarrierWaitNS)
		buf.WriteVarint(s.SendStallNS)
		buf.WriteVarint(s.BytesSent)
		buf.WriteVarint(s.FramesSent)
		buf.WriteVarint(s.BytesRecv)
		buf.WriteVarint(s.FramesRecv)
		buf.WriteUvarint(uint64(len(s.Channels)))
		for _, c := range s.Channels {
			buf.WriteVarint(c.BytesSent)
			buf.WriteVarint(c.FramesSent)
			buf.WriteVarint(c.BytesRecv)
			buf.WriteVarint(c.FramesRecv)
		}
	}
}

// decodeSamples reads the trace section written by encodeSamples and
// feeds every sample to tr (tr nil: the section is consumed and
// discarded, keeping the decode position correct for callers).
func decodeSamples(b *ser.Buffer, tr *obs.Trace) {
	n := int(b.ReadUvarint())
	for i := 0; i < n; i++ {
		var s obs.SuperstepSample
		s.Worker = int(b.ReadUvarint())
		s.Superstep = int(b.ReadUvarint())
		s.ActiveVertices = b.ReadVarint()
		s.Rounds = int(b.ReadUvarint())
		s.ComputeNS = b.ReadVarint()
		s.BarrierWaitNS = b.ReadVarint()
		s.SendStallNS = b.ReadVarint()
		s.BytesSent = b.ReadVarint()
		s.FramesSent = b.ReadVarint()
		s.BytesRecv = b.ReadVarint()
		s.FramesRecv = b.ReadVarint()
		if nc := int(b.ReadUvarint()); nc > 0 {
			s.Channels = make([]obs.ChannelSample, nc)
			for ci := range s.Channels {
				c := &s.Channels[ci]
				c.BytesSent = b.ReadVarint()
				c.FramesSent = b.ReadVarint()
				c.BytesRecv = b.ReadVarint()
				c.FramesRecv = b.ReadVarint()
			}
		}
		if tr != nil {
			tr.ObserveSuperstep(s)
		}
	}
}

// forHosted visits the hosted workers' vertices in (worker, local
// index) order — the canonical order both encode and decode share.
func forHosted(part *partition.Partition, lo, hi int, f func(v graph.VertexID)) {
	for w := lo; w <= hi; w++ {
		n := part.LocalCount(w)
		for li := 0; li < n; li++ {
			f(part.GlobalID(w, li))
		}
	}
}

// partial is one decoded process report.
type partial struct {
	lo, hi     int
	err        error
	supersteps int
	kind       uint8
	decode     *ser.Buffer // positioned at the value stream
}

// decodePartial parses one result blob.
func decodePartial(blob []byte) (p partial, err error) {
	defer func() {
		// the blob crossed a process boundary: a malformed value stream
		// surfaces as an error, not a panic
		if r := recover(); r != nil {
			err = fmt.Errorf("workerproc: corrupt partial result: %v", r)
		}
	}()
	b := ser.FromBytes(blob)
	p = partial{lo: int(b.ReadUvarint()), hi: int(b.ReadUvarint())}
	if p.lo < 0 || p.hi < p.lo {
		return partial{}, fmt.Errorf("workerproc: bad worker range %d-%d in result blob", p.lo, p.hi)
	}
	if msg := b.ReadString(); msg != "" {
		p.err = reportedError(msg)
		return p, nil
	}
	p.supersteps = int(b.ReadUvarint())
	p.kind = b.ReadUint8()
	if p.kind > kindMSF {
		return partial{}, fmt.Errorf("workerproc: bad result kind %d from workers %d-%d", p.kind, p.lo, p.hi)
	}
	p.decode = b
	return p, nil
}

// reportedError rehydrates an error string shipped from a worker
// process. Abort echoes (a peer failed; the socket fabric tore this
// worker down) map back to the barrier sentinel so JoinErrors filters
// them and only root causes surface.
func reportedError(msg string) error {
	if msg == barrier.ErrAborted.Error() ||
		strings.Contains(msg, "netcomm: job aborted") ||
		strings.Contains(msg, "netcomm: aborted while awaiting window credit") ||
		strings.Contains(msg, "connection to coordinator lost") {
		return barrier.ErrAborted
	}
	if msg == barrier.ErrCancelled.Error() {
		return barrier.ErrCancelled
	}
	if strings.Contains(msg, "netcomm: peer connection to workers") {
		// A peer's data connection dying mid-job means the peer process
		// itself died or unwound — the hub reports that root cause
		// independently as ErrWorkerLost. Tag the fallout so recovery
		// classification can tell it from an error this worker would
		// hit again on retry.
		return fmt.Errorf("%w: %s", netcomm.ErrPeerLost, msg)
	}
	return errors.New(msg)
}

// mergePartials assembles the per-process partial results into one
// global Result under part. It returns the merged result, the minimum
// superstep any worker reached, and the joined worker errors (nil when
// every process succeeded). Blobs must cover every worker exactly once;
// a missing range is reported as an error (its workers died before
// reporting — the transport error carries the detail). When tr is
// non-nil, each blob's trace section is replayed into it, reassembling
// the job-wide superstep timeline from the per-process shards; when
// flows is non-nil, each blob's flow section is merged the same way.
func mergePartials(part *partition.Partition, blobs []partial, tr *obs.Trace, flows *obs.FlowAccum) (*algorithms.Result, int, error) {
	m := part.NumWorkers()
	covered := make([]bool, m)
	var errs []error
	minSteps := -1
	kind := uint8(255)
	for _, p := range blobs {
		for w := p.lo; w <= p.hi && w < m; w++ {
			covered[w] = true
		}
		if p.err != nil {
			errs = append(errs, p.err)
			continue
		}
		if minSteps < 0 || p.supersteps < minSteps {
			minSteps = p.supersteps
		}
		if kind == 255 {
			kind = p.kind
		} else if kind != p.kind {
			return nil, 0, fmt.Errorf("workerproc: result kind mismatch across workers (%d vs %d)", kind, p.kind)
		}
	}
	for w, ok := range covered {
		if !ok {
			errs = append(errs, fmt.Errorf("workerproc: worker %d reported no result", w))
		}
	}
	// len(errs) > 0 with a nil join means every error was an abort echo
	// JoinErrors filtered out — but those workers still contributed no
	// values, so merging anyway would return a silently truncated result.
	if err := barrier.JoinErrors(errs); err != nil || len(errs) > 0 || kind == 255 {
		if err == nil {
			err = barrier.ErrAborted
		}
		return nil, 0, err
	}

	n := part.NumVertices()
	res := &algorithms.Result{}
	switch kind {
	case kindLabels:
		res.Labels = make([]graph.VertexID, n)
	case kindRanks:
		res.Ranks = make([]float64, n)
	case kindDists:
		res.Dists = make([]int64, n)
	case kindMSF:
		res.MSF = &algorithms.MSFResult{Comp: make([]graph.VertexID, n)}
	}
	for _, p := range blobs {
		if p.err != nil {
			continue
		}
		b := p.decode
		werr := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("workerproc: corrupt partial result from workers %d-%d: %v", p.lo, p.hi, r)
				}
			}()
			forHosted(part, p.lo, p.hi, func(v graph.VertexID) {
				switch kind {
				case kindLabels:
					res.Labels[v] = graph.VertexID(b.ReadUvarint())
				case kindRanks:
					res.Ranks[v] = b.ReadFloat64()
				case kindDists:
					res.Dists[v] = b.ReadVarint()
				case kindMSF:
					res.MSF.Comp[v] = graph.VertexID(b.ReadUvarint())
				}
			})
			if kind == kindMSF {
				res.MSF.Weight += b.ReadVarint()
				ne := int(b.ReadUvarint())
				for i := 0; i < ne; i++ {
					e := graph.Edge{
						Src: graph.VertexID(b.ReadUvarint()),
						Dst: graph.VertexID(b.ReadUvarint()),
					}
					e.Weight = int32(b.ReadVarint())
					res.MSF.Edges = append(res.MSF.Edges, e)
				}
			}
			decodeSamples(b, tr)
			decodeFlows(b, flows)
			return nil
		}()
		if werr != nil {
			return nil, 0, werr
		}
	}
	if minSteps < 0 {
		minSteps = 0
	}
	return res, minSteps, nil
}
