package algorithms

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Checkpoint-seam overhead benchmarks: the same PageRank job with the
// seam disabled (must cost nothing next to a pre-checkpoint build — the
// pinned channel microbenchmarks gate the engine hot path) and with a
// checkpoint cut every 1 and every 4 supersteps, which prices the full
// record encode + frame tee + store write against job runtime.

func benchCheckpoint(b *testing.B, eng Engine, interval int) {
	b.Helper()
	g := graph.SocialRMAT(10, 8, 42)
	spec, ok := Lookup("pagerank")
	if !ok {
		b.Fatal("pagerank not registered")
	}
	part := partition.MustHash(g.NumVertices(), 4)
	params := Params{Iterations: 20}
	var hook *ckpt.Hook
	if interval > 0 {
		hook = &ckpt.Hook{Store: ckpt.NewDir(b.TempDir()), Job: "bench", Interval: interval}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := Options{Part: part, MaxSupersteps: 100000, Checkpoint: hook}
		if _, err := spec.Run(eng, "", g, opts, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	for _, eng := range []Engine{EngineChannel, EnginePregel} {
		b.Run(string(eng)+"/off", func(b *testing.B) { benchCheckpoint(b, eng, 0) })
		b.Run(string(eng)+"/every1", func(b *testing.B) { benchCheckpoint(b, eng, 1) })
		b.Run(string(eng)+"/every4", func(b *testing.B) { benchCheckpoint(b, eng, 4) })
	}
}
