package algorithms

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// collectTrace runs an algorithm with a trace observer attached and
// returns the ordered samples.
func collectTrace(t *testing.T, g *graph.Graph, eng Engine, variant string) []obs.SuperstepSample {
	t.Helper()
	spec, ok := Lookup("pagerank")
	if !ok {
		t.Fatal("pagerank not registered")
	}
	opts := hashOpts(g)
	tr := obs.NewTrace(opts.Part.NumWorkers())
	opts.Observer = tr
	if _, err := spec.Run(eng, variant, g, opts, Params{Iterations: 5}); err != nil {
		t.Fatalf("%s/%s: %v", eng, variant, err)
	}
	return tr.Samples()
}

// Both engines must produce the same trace shape: one sample per
// (worker, superstep), each with compute time, exchanged bytes/frames
// and active-vertex counts that add up across workers.
func TestObserverTraceShape(t *testing.T) {
	g := graph.RMAT(8, 6, 42, graph.RMATOptions{})
	for _, tc := range []struct {
		eng      Engine
		variant  string
		channels bool
	}{
		{EngineChannel, "", true},
		{EnginePregel, "", false},
	} {
		samples := collectTrace(t, g, tc.eng, tc.variant)
		if len(samples) == 0 {
			t.Fatalf("%s: no samples", tc.eng)
		}
		// PageRank runs iters+1 supersteps; every (worker, superstep)
		// pair must appear exactly once, in (superstep, worker) order.
		steps := 6
		if len(samples) != steps*testWorkers {
			t.Fatalf("%s: %d samples, want %d", tc.eng, len(samples), steps*testWorkers)
		}
		for i, s := range samples {
			wantStep, wantWorker := i/testWorkers+1, i%testWorkers
			if s.Superstep != wantStep || s.Worker != wantWorker {
				t.Fatalf("%s: sample %d is (step %d, worker %d), want (%d, %d)",
					tc.eng, i, s.Superstep, s.Worker, wantStep, wantWorker)
			}
			if s.ComputeNS < 0 || s.BarrierWaitNS < 0 {
				t.Fatalf("%s: sample %d has negative times: %+v", tc.eng, i, s)
			}
			if s.Rounds < 1 {
				t.Fatalf("%s: sample %d ran %d rounds", tc.eng, i, s.Rounds)
			}
			if tc.channels && len(s.Channels) == 0 {
				t.Fatalf("%s: sample %d has no channel breakdown", tc.eng, i)
			}
			if !tc.channels && len(s.Channels) != 0 {
				t.Fatalf("%s: sample %d unexpectedly has channels", tc.eng, i)
			}
		}
		// every PageRank superstep keeps all vertices active
		var active int64
		for _, s := range samples[:testWorkers] {
			active += s.ActiveVertices
		}
		if active != int64(g.NumVertices()) {
			t.Fatalf("%s: superstep 1 active=%d want %d", tc.eng, active, g.NumVertices())
		}
		// bytes sent and received must balance job-wide (every byte a
		// worker serializes is deserialized by exactly one worker)
		var sent, recv int64
		for _, s := range samples {
			sent += s.BytesSent
			recv += s.BytesRecv
		}
		if sent == 0 || sent != recv {
			t.Fatalf("%s: bytes sent %d vs received %d", tc.eng, sent, recv)
		}
		// the channel engine's per-channel counts sum to the totals
		// minus the frame envelope; just check they are consistent
		if tc.channels {
			for i, s := range samples {
				var chSent int64
				for _, c := range s.Channels {
					chSent += c.BytesSent
				}
				if chSent > s.BytesSent {
					t.Fatalf("channel: sample %d per-channel bytes %d exceed total %d",
						i, chSent, s.BytesSent)
				}
			}
		}
	}
}

// A nil observer must leave the run untouched (guard against the seam
// accidentally becoming mandatory).
func TestObserverNilIsNoop(t *testing.T) {
	g := graph.RMAT(7, 4, 7, graph.RMATOptions{})
	want, _, err := PageRankChannel(g, hashOpts(g), 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := hashOpts(g)
	tr := obs.NewTrace(opts.Part.NumWorkers())
	opts.Observer = tr
	got, _, err := PageRankChannel(g, opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("observer changed results at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
