package algorithms

import (
	"repro/internal/ckpt"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/ser"
)

// Baseline S-V implementations on the monolithic-message engine.
//
// In basic mode all four message kinds (grandparent requests, replies,
// neighborhood broadcasts, merge values) share one message type, which
// must therefore be a tagged union — and because the kinds need
// different combining semantics, no combiner can be used at all. This is
// exactly the §II-B problem: the paper measures the resulting message
// inflation at 1.55x (sparse) to 5.52x (dense) against the channel
// version.
//
// In reqresp mode the requests leave the message space, the remaining
// two kinds occupy disjoint supersteps and both want min-combining, so
// a bare uint32 message with a min combiner works (program 1 of
// Table VI).

// svTag distinguishes message kinds in the monolithic type.
type svTag = uint8

const (
	svReq   svTag = 1 // carries the requester id
	svRep   svTag = 2 // carries D[parent]
	svBcast svTag = 3 // carries the sender's D
	svMerge svTag = 4 // carries the candidate minimum t
)

// svMsg is the monolithic message: every send pays for the tag byte.
type svMsg struct {
	Tag svTag
	Val uint32
}

type svMsgCodec struct{}

func (svMsgCodec) Encode(b *ser.Buffer, m svMsg) {
	b.WriteUint8(m.Tag)
	b.WriteUint32(m.Val)
}

func (svMsgCodec) Decode(b *ser.Buffer) svMsg {
	return svMsg{Tag: b.ReadUint8(), Val: b.ReadUint32()}
}

// SVPregel runs S-V on the baseline engine in basic mode (tagged
// messages, no combiner), 4 supersteps per iteration.
func SVPregel(g *graph.Graph, opts Options) ([]graph.VertexID, pregel.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	cfg := pregel.Config[svMsg, struct{}, bool]{
		Part:          part,
		Frags:         opts.fragments(g),
		MaxSupersteps: opts.MaxSupersteps,
		Cancel:        opts.Cancel,
		Fabric:        opts.Fabric,
		Observer:      opts.Observer,
		Checkpoint:    opts.Checkpoint,
		MsgCodec:      svMsgCodec{},
		AggCombine:    orBool,
		AggCodec:      ser.BoolCodec{},
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[svMsg, struct{}, bool]) {
		f := w.Frag()
		n := w.LocalCount()
		d := make([]graph.VertexID, n)
		tmin := make([]graph.VertexID, n)
		changed := make([]bool, n)
		states[w.WorkerID()] = d
		w.Checkpoint(
			func(buf *ser.Buffer) {
				ckpt.SaveSlice(buf, vidCodec, d)
				ckpt.SaveSlice(buf, vidCodec, tmin)
				ckpt.SaveSlice(buf, ser.BoolCodec{}, changed)
			},
			func(buf *ser.Buffer) {
				ckpt.LoadSlice(buf, vidCodec, d)
				ckpt.LoadSlice(buf, vidCodec, tmin)
				ckpt.LoadSlice(buf, ser.BoolCodec{}, changed)
			},
		)
		w.Compute = func(li int, msgs []svMsg) {
			id := w.GlobalID(li)
			step := w.Superstep()
			if step == 1 {
				d[li] = id
			}
			switch (step - 1) % 4 {
			case 0: // A: broadcast + grandparent request
				if step > 1 && !w.AggResult() {
					w.VoteToHalt()
					w.RequestStop()
					return
				}
				for _, a := range f.Neighbors(li) {
					w.SendAddr(a, svMsg{Tag: svBcast, Val: d[li]})
				}
				w.Send(d[li], svMsg{Tag: svReq, Val: id})
			case 1: // B': serve requests, buffer the neighborhood min
				t := uint32(0xFFFFFFFF)
				for _, m := range msgs {
					switch m.Tag {
					case svReq:
						w.Send(m.Val, svMsg{Tag: svRep, Val: d[li]})
					case svBcast:
						if m.Val < t {
							t = m.Val
						}
					}
				}
				tmin[li] = t
			case 2: // B: decide
				gp := d[li]
				for _, m := range msgs {
					if m.Tag == svRep {
						gp = m.Val
					}
				}
				if gp == d[li] {
					if t := tmin[li]; t != 0xFFFFFFFF && t < d[li] {
						w.Send(d[li], svMsg{Tag: svMerge, Val: t})
					}
				} else {
					d[li] = gp
					changed[li] = true
				}
			case 3: // C: roots apply merges; convergence aggregation
				for _, m := range msgs {
					if m.Tag == svMerge && m.Val < d[li] {
						d[li] = m.Val
						changed[li] = true
					}
				}
				w.Aggregate(changed[li])
				changed[li] = false
			}
		}
	})
	return gather(part, states), met, err
}

// SVPregelReqResp runs S-V on the baseline engine in reqresp mode:
// 3 supersteps per iteration, bare uint32 messages with a min combiner.
func SVPregelReqResp(g *graph.Graph, opts Options) ([]graph.VertexID, pregel.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	dStates := make([][]graph.VertexID, part.NumWorkers())
	cfg := pregel.Config[uint32, uint32, bool]{
		Part:          part,
		Frags:         opts.fragments(g),
		MaxSupersteps: opts.MaxSupersteps,
		Cancel:        opts.Cancel,
		Fabric:        opts.Fabric,
		Observer:      opts.Observer,
		Checkpoint:    opts.Checkpoint,
		MsgCodec:      ser.Uint32Codec{},
		Combiner:      minU32,
		RespCodec:     ser.Uint32Codec{},
		Responder: func(w *pregel.Worker[uint32, uint32, bool], li int) uint32 {
			return dStates[w.WorkerID()][li]
		},
		AggCombine: orBool,
		AggCodec:   ser.BoolCodec{},
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[uint32, uint32, bool]) {
		f := w.Frag()
		n := w.LocalCount()
		d := make([]graph.VertexID, n)
		changed := make([]bool, n)
		states[w.WorkerID()] = d
		dStates[w.WorkerID()] = d
		w.Checkpoint(
			func(buf *ser.Buffer) {
				ckpt.SaveSlice(buf, vidCodec, d)
				ckpt.SaveSlice(buf, ser.BoolCodec{}, changed)
			},
			func(buf *ser.Buffer) {
				ckpt.LoadSlice(buf, vidCodec, d)
				ckpt.LoadSlice(buf, ser.BoolCodec{}, changed)
			},
		)
		w.Compute = func(li int, msgs []uint32) {
			id := w.GlobalID(li)
			step := w.Superstep()
			if step == 1 {
				d[li] = id
			}
			switch (step - 1) % 3 {
			case 0: // A
				if step > 1 && !w.AggResult() {
					w.VoteToHalt()
					w.RequestStop()
					return
				}
				for _, a := range f.Neighbors(li) {
					w.SendAddr(a, d[li])
				}
				w.Request(d[li])
			case 1: // B
				gp, ok := w.Resp()
				if !ok {
					gp = d[li]
				}
				hasT := len(msgs) > 0
				t := uint32(0)
				if hasT {
					t = msgs[0]
				}
				if gp == d[li] {
					if hasT && t < d[li] {
						w.Send(d[li], t)
					}
				} else {
					d[li] = gp
					changed[li] = true
				}
			case 2: // C
				if len(msgs) > 0 && msgs[0] < d[li] {
					d[li] = msgs[0]
					changed[li] = true
				}
				w.Aggregate(changed[li])
				changed[li] = false
			}
		}
	})
	return gather(part, states), met, err
}
