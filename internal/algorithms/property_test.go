package algorithms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/seq"
)

// Property-based tests: every distributed algorithm equals its
// sequential oracle on randomly generated graphs, across random worker
// counts.

func randomUndirected(rng *rand.Rand) *graph.Graph {
	n := 2 + rng.Intn(60)
	m := rng.Intn(4 * n)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		w := 1 + rng.Int31n(40)
		edges = append(edges, graph.Edge{Src: u, Dst: v, Weight: w})
	}
	return graph.Undirectify(graph.FromEdges(n, edges, true))
}

func randomParts(rng *rand.Rand, n int) *partition.Partition {
	return partition.MustHash(n, 1+rng.Intn(6))
}

func TestPropertySVEqualsUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomUndirected(rng)
		want := seq.ConnectedComponents(g)
		o := Options{Part: randomParts(rng, g.NumVertices()), MaxSupersteps: 100000}
		variant := rng.Intn(4)
		var got []graph.VertexID
		var err error
		switch variant {
		case 0:
			got, _, err = SVChannel(g, o)
		case 1:
			got, _, err = SVReqResp(g, o)
		case 2:
			got, _, err = SVScatter(g, o)
		default:
			got, _, err = SVBoth(g, o)
		}
		if err != nil {
			t.Logf("seed %d variant %d: %v", seed, variant, err)
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("seed %d variant %d: vertex %d got %d want %d", seed, variant, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWCCEqualsUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomUndirected(rng)
		want := seq.ConnectedComponents(g)
		o := Options{Part: randomParts(rng, g.NumVertices()), MaxSupersteps: 100000}
		var got []graph.VertexID
		var err error
		if rng.Intn(2) == 0 {
			got, _, err = WCCPropagation(g, o)
		} else {
			got, _, err = WCCBlogel(g, o)
		}
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPJFindsRoots(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(300)
		k := 1 + int(kRaw)%5
		if k > n {
			k = n
		}
		g := graph.Forest(n, k, seed)
		want := seq.TreeRoots(g)
		o := Options{Part: randomParts(rng, n), MaxSupersteps: 100000}
		var got []graph.VertexID
		var err error
		if rng.Intn(2) == 0 {
			got, _, err = PointerJumpChannel(g, o)
		} else {
			got, _, err = PointerJumpReqResp(g, o)
		}
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertySCCEqualsTarjan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := rng.Intn(4 * n)
		g := graph.RandomDigraph(n, m, seed)
		want := seq.SCC(g)
		o := Options{Part: randomParts(rng, n), MaxSupersteps: 100000}
		var got []graph.VertexID
		var err error
		if rng.Intn(2) == 0 {
			got, _, err = SCCChannel(g, o)
		} else {
			got, _, err = SCCPropagation(g, o)
		}
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("seed %d: vertex %d got %d want %d", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMSFEqualsKruskal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomUndirected(rng)
		wantW, wantCnt := seq.MSFWeight(g)
		o := Options{Part: randomParts(rng, g.NumVertices()), MaxSupersteps: 100000}
		res, _, err := MSFChannel(g, o)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Weight != wantW || len(res.Edges) != wantCnt {
			t.Logf("seed %d: weight=%d count=%d want %d %d", seed, res.Weight, len(res.Edges), wantW, wantCnt)
			return false
		}
		// forest check
		uf := seq.NewUnionFind(g.NumVertices())
		for _, e := range res.Edges {
			if !uf.Union(int(e.Src), int(e.Dst)) {
				t.Logf("seed %d: cycle", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertySSSPEqualsDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomUndirected(rng)
		src := graph.VertexID(rng.Intn(g.NumVertices()))
		want := seq.Dijkstra(g, src)
		o := Options{Part: randomParts(rng, g.NumVertices()), MaxSupersteps: 100000}
		var got []int64
		var err error
		if rng.Intn(2) == 0 {
			got, _, err = SSSPChannel(g, src, o)
		} else {
			got, _, err = SSSPPropagation(g, src, o)
		}
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The MSF candidate combiner must be a total order selection:
// commutative, associative, idempotent.
func TestPropertyMSFCandCombinerLaws(t *testing.T) {
	gen := func(rng *rand.Rand) msfCandMsg {
		if rng.Intn(5) == 0 {
			return msfCandMsg{}
		}
		return msfCandMsg{
			W:     rng.Int31n(5),
			U:     graph.VertexID(rng.Intn(6)),
			V:     graph.VertexID(rng.Intn(6)),
			C2:    graph.VertexID(rng.Intn(6)),
			Valid: true,
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		ab := msfCandMin(a, b)
		ba := msfCandMin(b, a)
		// commutative up to tie-equivalence under the total order
		if ab.Valid != ba.Valid {
			return false
		}
		if ab.Valid && (msfCandLess(ab, ba) || msfCandLess(ba, ab)) {
			return false
		}
		// associative
		l := msfCandMin(msfCandMin(a, b), c)
		r := msfCandMin(a, msfCandMin(b, c))
		if l.Valid != r.Valid {
			return false
		}
		if l.Valid && (msfCandLess(l, r) || msfCandLess(r, l)) {
			return false
		}
		// idempotent
		aa := msfCandMin(a, a)
		if aa != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Equivalence sweep for the dense exchange fabric and the
// shared-nothing fragment layer: every Table IV–VII algorithm variant
// must match its sequential oracle on the RMAT/chain/tree/grid
// generators, across seeds, worker counts and placements. Every run
// executes on pre-resolved per-worker fragments (Options.Frags), under
// both the hash and the greedy locality placement, so the packed-address
// send paths replaying the old Owner/LocalIndex resolution are pinned to
// identical results; the combiners are commutative and associative, so
// the only observable difference permitted is performance.
func TestFragmentEquivalenceSweep(t *testing.T) {
	type labelRun struct {
		name string
		run  func(*graph.Graph, Options) ([]graph.VertexID, error)
	}
	wccRuns := []labelRun{
		{"wcc-channel", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := WCCChannel(g, o); return v, e }},
		{"wcc-prop", func(g *graph.Graph, o Options) ([]graph.VertexID, error) {
			v, _, e := WCCPropagation(g, o)
			return v, e
		}},
		{"wcc-blogel", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := WCCBlogel(g, o); return v, e }},
		{"wcc-pregel", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := WCCPregel(g, o); return v, e }},
		{"sv-channel", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := SVChannel(g, o); return v, e }},
		{"sv-reqresp", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := SVReqResp(g, o); return v, e }},
		{"sv-scatter", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := SVScatter(g, o); return v, e }},
		{"sv-both", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := SVBoth(g, o); return v, e }},
		{"sv-pregel", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := SVPregel(g, o); return v, e }},
	}
	sccRuns := []labelRun{
		{"scc-channel", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := SCCChannel(g, o); return v, e }},
		{"scc-prop", func(g *graph.Graph, o Options) ([]graph.VertexID, error) {
			v, _, e := SCCPropagation(g, o)
			return v, e
		}},
		{"scc-pregel", func(g *graph.Graph, o Options) ([]graph.VertexID, error) { v, _, e := SCCPregel(g, o); return v, e }},
	}
	pjRuns := []labelRun{
		{"pj-channel", func(g *graph.Graph, o Options) ([]graph.VertexID, error) {
			v, _, e := PointerJumpChannel(g, o)
			return v, e
		}},
		{"pj-reqresp", func(g *graph.Graph, o Options) ([]graph.VertexID, error) {
			v, _, e := PointerJumpReqResp(g, o)
			return v, e
		}},
		{"pj-pregel", func(g *graph.Graph, o Options) ([]graph.VertexID, error) {
			v, _, e := PointerJumpPregel(g, o)
			return v, e
		}},
		{"pj-pregel-rr", func(g *graph.Graph, o Options) ([]graph.VertexID, error) {
			v, _, e := PointerJumpPregelReqResp(g, o)
			return v, e
		}},
	}
	checkLabels := func(t *testing.T, name string, got, want []graph.VertexID) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: vertex %d got %d want %d", name, i, got[i], want[i])
			}
		}
	}

	for _, seed := range []int64{11, 42} {
		rmatD := graph.RMAT(8, 5, seed, graph.RMATOptions{NoSelfLoops: true})
		rmatU := graph.Undirectify(rmatD)
		rmatW := graph.Undirectify(graph.RMAT(7, 4, seed, graph.RMATOptions{Weighted: true, MaxWeight: 50, NoSelfLoops: true}))
		chain := graph.Chain(257)
		tree := graph.RandomTree(301, seed)
		grid := graph.Grid(11, 13, 50, seed)

		for _, shape := range []struct {
			workers   int
			placement string
		}{
			{1, partition.PlacementHash},
			{4, partition.PlacementHash},
			{4, partition.PlacementGreedy},
		} {
			workers, memo := shape.workers, map[*graph.Graph]Options{}
			opt := func(g *graph.Graph) Options {
				if o, ok := memo[g]; ok {
					return o
				}
				p, err := partition.ByName(shape.placement, g, workers)
				if err != nil {
					t.Fatal(err)
				}
				o := Options{Part: p, Frags: frag.Build(g, p), MaxSupersteps: 100000}
				memo[g] = o
				return o
			}

			// connectivity on every undirected generator shape
			for _, gc := range []struct {
				gname string
				g     *graph.Graph
			}{
				{"rmat", rmatU},
				{"chain", graph.Undirectify(chain)},
				{"tree", graph.Undirectify(tree)},
				{"grid", grid},
			} {
				want := seq.ConnectedComponents(gc.g)
				for _, r := range wccRuns {
					got, err := r.run(gc.g, opt(gc.g))
					if err != nil {
						t.Fatalf("seed %d w%d %s/%s: %v", seed, workers, gc.gname, r.name, err)
					}
					checkLabels(t, gc.gname+"/"+r.name, got, want)
				}
			}

			// SCC on the directed generators
			for _, gc := range []struct {
				gname string
				g     *graph.Graph
			}{
				{"rmat", rmatD},
				{"chain", chain},
				{"tree", tree},
			} {
				want := seq.SCC(gc.g)
				for _, r := range sccRuns {
					got, err := r.run(gc.g, opt(gc.g))
					if err != nil {
						t.Fatalf("seed %d w%d %s/%s: %v", seed, workers, gc.gname, r.name, err)
					}
					checkLabels(t, gc.gname+"/"+r.name, got, want)
				}
			}

			// pointer jumping on the parent-pointer generators
			for _, gc := range []struct {
				gname string
				g     *graph.Graph
			}{
				{"chain", chain},
				{"tree", tree},
			} {
				want := seq.TreeRoots(gc.g)
				for _, r := range pjRuns {
					got, err := r.run(gc.g, opt(gc.g))
					if err != nil {
						t.Fatalf("seed %d w%d %s/%s: %v", seed, workers, gc.gname, r.name, err)
					}
					checkLabels(t, gc.gname+"/"+r.name, got, want)
				}
			}

			// SSSP and MSF on the weighted generators
			for _, gc := range []struct {
				gname string
				g     *graph.Graph
			}{
				{"rmatw", rmatW},
				{"grid", grid},
			} {
				src := graph.VertexID(int(seed) % gc.g.NumVertices())
				wantD := seq.Dijkstra(gc.g, src)
				for name, run := range map[string]func() ([]int64, error){
					"sssp-channel": func() ([]int64, error) { v, _, e := SSSPChannel(gc.g, src, opt(gc.g)); return v, e },
					"sssp-prop":    func() ([]int64, error) { v, _, e := SSSPPropagation(gc.g, src, opt(gc.g)); return v, e },
					"sssp-pregel":  func() ([]int64, error) { v, _, e := SSSPPregel(gc.g, src, opt(gc.g)); return v, e },
				} {
					got, err := run()
					if err != nil {
						t.Fatalf("seed %d w%d %s/%s: %v", seed, workers, gc.gname, name, err)
					}
					for i := range wantD {
						if got[i] != wantD[i] {
							t.Fatalf("seed %d w%d %s/%s: vertex %d got %d want %d", seed, workers, gc.gname, name, i, got[i], wantD[i])
						}
					}
				}
				wantW, wantCnt := seq.MSFWeight(gc.g)
				for name, run := range map[string]func() (MSFResult, error){
					"msf-channel": func() (MSFResult, error) { v, _, e := MSFChannel(gc.g, opt(gc.g)); return v, e },
					"msf-pregel":  func() (MSFResult, error) { v, _, e := MSFPregel(gc.g, opt(gc.g)); return v, e },
				} {
					res, err := run()
					if err != nil {
						t.Fatalf("seed %d w%d %s/%s: %v", seed, workers, gc.gname, name, err)
					}
					if res.Weight != wantW || len(res.Edges) != wantCnt {
						t.Fatalf("seed %d w%d %s/%s: weight=%d edges=%d want %d %d",
							seed, workers, gc.gname, name, res.Weight, len(res.Edges), wantW, wantCnt)
					}
				}
			}

			// PageRank: dense staging makes the channel engine
			// deterministic — two runs must agree bit for bit — and all
			// variants must agree with the sequential oracle to fp noise.
			{
				o := opt(rmatD)
				const iters = 12
				want := seq.PageRank(rmatD, iters)
				r1, _, err := PageRankChannel(rmatD, o, iters)
				if err != nil {
					t.Fatal(err)
				}
				r2, _, err := PageRankChannel(rmatD, o, iters)
				if err != nil {
					t.Fatal(err)
				}
				for i := range r1 {
					if r1[i] != r2[i] {
						t.Fatalf("seed %d w%d pagerank nondeterministic at vertex %d: %v != %v", seed, workers, i, r1[i], r2[i])
					}
				}
				for name, run := range map[string]func() ([]float64, error){
					"pr-scatter": func() ([]float64, error) { v, _, e := PageRankScatter(rmatD, o, iters); return v, e },
					"pr-mirror":  func() ([]float64, error) { v, _, e := PageRankMirror(rmatD, o, iters); return v, e },
					"pr-pregel":  func() ([]float64, error) { v, _, e := PageRankPregel(rmatD, o, iters); return v, e },
					"pr-ghost":   func() ([]float64, error) { v, _, e := PageRankPregelGhost(rmatD, o, iters); return v, e },
				} {
					got, err := run()
					if err != nil {
						t.Fatalf("seed %d w%d %s: %v", seed, workers, name, err)
					}
					for i := range want {
						if d := got[i] - want[i]; d > 1e-9 || d < -1e-9 {
							t.Fatalf("seed %d w%d %s: vertex %d got %v want %v", seed, workers, name, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// Single-worker degeneracy: every algorithm must work with M=1 (all
// loopback traffic).
func TestSingleWorkerDegeneracy(t *testing.T) {
	g := graph.SocialRMAT(6, 3, 13)
	o := Options{Part: partition.MustHash(g.NumVertices(), 1), MaxSupersteps: 100000}
	want := seq.ConnectedComponents(g)
	for _, tc := range []struct {
		name string
		run  func() ([]graph.VertexID, error)
	}{
		{"sv-both", func() ([]graph.VertexID, error) { v, _, e := SVBoth(g, o); return v, e }},
		{"wcc-prop", func() ([]graph.VertexID, error) { v, _, e := WCCPropagation(g, o); return v, e }},
	} {
		got, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: vertex %d", tc.name, i)
			}
		}
	}
	dg := graph.RandomDigraph(40, 120, 3)
	wantSCC := seq.SCC(dg)
	oD := Options{Part: partition.MustHash(dg.NumVertices(), 1), MaxSupersteps: 100000}
	gotSCC, _, err := SCCPropagation(dg, oD)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantSCC {
		if gotSCC[i] != wantSCC[i] {
			t.Fatalf("scc: vertex %d", i)
		}
	}
}

// More workers than vertices: some workers are empty everywhere.
func TestMoreWorkersThanVertices(t *testing.T) {
	g := graph.Undirectify(graph.Chain(5))
	o := Options{Part: partition.MustHash(5, 8), MaxSupersteps: 1000}
	got, _, err := SVBoth(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 0 {
			t.Fatalf("vertex %d -> %d", i, got[i])
		}
	}
}

// Empty graph edge case.
func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(4, nil, false)
	g.Undirected = true
	o := Options{Part: partition.MustHash(4, 2), MaxSupersteps: 1000}
	got, _, err := WCCPropagation(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range got {
		if int(c) != i {
			t.Errorf("isolated vertex %d labeled %d", i, c)
		}
	}
	res, _, err := MSFChannel(graph.FromEdges(4, nil, true), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 0 || len(res.Edges) != 0 {
		t.Errorf("empty MSF: %v", res)
	}
}
