package algorithms

import (
	"repro/internal/ckpt"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/ser"
)

// SCCPregel runs Min-Label SCC on the baseline engine. The monolithic
// message type must carry the fattest payload of any phase (sender id +
// label pair), every message pays for a kind tag, and no combiner is
// possible because the kinds need different semantics (counts are
// summed, labels are min'd) — the §II-B costs the channel version
// avoids, visible in Table IV's SCC message sizes.

type sccMTag = uint8

const (
	sccMDecIn  sccMTag = 1
	sccMDecOut sccMTag = 2
	sccMPairO  sccMTag = 3 // pair broadcast to out-neighbors
	sccMPairI  sccMTag = 4 // pair broadcast to in-neighbors
	sccMFwd    sccMTag = 5
	sccMBwd    sccMTag = 6
)

// sccMMsg is the monolithic fat message: tag + three words.
type sccMMsg struct {
	Tag     sccMTag
	A, B, C uint32
}

type sccMMsgCodec struct{}

func (sccMMsgCodec) Encode(b *ser.Buffer, m sccMMsg) {
	b.WriteUint8(m.Tag)
	b.WriteUint32(m.A)
	b.WriteUint32(m.B)
	b.WriteUint32(m.C)
}

func (sccMMsgCodec) Decode(b *ser.Buffer) sccMMsg {
	return sccMMsg{Tag: b.ReadUint8(), A: b.ReadUint32(), B: b.ReadUint32(), C: b.ReadUint32()}
}

// sccAgg carries (activity, newly-done) counts through the single
// global aggregator of the baseline engine.
type sccAgg struct{ Act, Done int64 }

type sccAggCodec struct{}

func (sccAggCodec) Encode(b *ser.Buffer, v sccAgg) {
	b.WriteVarint(v.Act)
	b.WriteVarint(v.Done)
}

func (sccAggCodec) Decode(b *ser.Buffer) sccAgg {
	return sccAgg{Act: b.ReadVarint(), Done: b.ReadVarint()}
}

func sccAggSum(a, b sccAgg) sccAgg { return sccAgg{Act: a.Act + b.Act, Done: a.Done + b.Done} }

// SCCPregel runs the baseline Min-Label SCC.
func SCCPregel(g *graph.Graph, opts Options) ([]graph.VertexID, pregel.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	fwdFrags := opts.fragments(g)
	bwdFrags := fwdFrags.Reverse()
	cfg := pregel.Config[sccMMsg, struct{}, sccAgg]{
		Part:          part,
		Frags:         fwdFrags,
		MaxSupersteps: opts.MaxSupersteps,
		Cancel:        opts.Cancel,
		Fabric:        opts.Fabric,
		Observer:      opts.Observer,
		Checkpoint:    opts.Checkpoint,
		MsgCodec:      sccMMsgCodec{},
		AggCombine:    sccAggSum,
		AggCodec:      sccAggCodec{},
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[sccMMsg, struct{}, sccAgg]) {
		fwdF := w.Frag()
		bwdF := bwdFrags.Frag(w.WorkerID())
		n := w.LocalCount()
		scc := make([]graph.VertexID, n)
		done := make([]bool, n)
		liveIn := make([]int32, n)
		liveOut := make([]int32, n)
		pairF := make([]uint32, n)
		pairB := make([]uint32, n)
		f := make([]uint32, n)
		b := make([]uint32, n)
		sameOut := make([][]frag.Addr, n)
		sameIn := make([][]frag.Addr, n)
		states[w.WorkerID()] = scc

		phase := sccTrim
		phaseStart := 1
		phaseStep := 0
		var doneTotal int64

		w.Checkpoint(func(buf *ser.Buffer) {
			ckpt.SaveSlice(buf, vidCodec, scc)
			ckpt.SaveSlice(buf, ser.BoolCodec{}, done)
			ckpt.SaveSlice(buf, i32Codec, liveIn)
			ckpt.SaveSlice(buf, i32Codec, liveOut)
			ckpt.SaveSlice(buf, ser.Uint32Codec{}, pairF)
			ckpt.SaveSlice(buf, ser.Uint32Codec{}, pairB)
			ckpt.SaveSlice(buf, ser.Uint32Codec{}, f)
			ckpt.SaveSlice(buf, ser.Uint32Codec{}, b)
			saveAddrLists(buf, sameOut)
			saveAddrLists(buf, sameIn)
			buf.WriteUint8(uint8(phase))
			buf.WriteVarint(int64(phaseStart))
			buf.WriteVarint(int64(phaseStep))
			buf.WriteVarint(doneTotal)
		}, func(buf *ser.Buffer) {
			ckpt.LoadSlice(buf, vidCodec, scc)
			ckpt.LoadSlice(buf, ser.BoolCodec{}, done)
			ckpt.LoadSlice(buf, i32Codec, liveIn)
			ckpt.LoadSlice(buf, i32Codec, liveOut)
			ckpt.LoadSlice(buf, ser.Uint32Codec{}, pairF)
			ckpt.LoadSlice(buf, ser.Uint32Codec{}, pairB)
			ckpt.LoadSlice(buf, ser.Uint32Codec{}, f)
			ckpt.LoadSlice(buf, ser.Uint32Codec{}, b)
			loadAddrLists(buf, sameOut)
			loadAddrLists(buf, sameIn)
			phase = sccPhase(buf.ReadUint8())
			phaseStart = int(buf.ReadVarint())
			phaseStep = int(buf.ReadVarint())
			doneTotal = buf.ReadVarint()
		})

		evalPhase := func() {
			step := w.Superstep()
			if phaseStep == step {
				return
			}
			phaseStep = step
			res := w.AggResult()
			doneTotal += res.Done
			if doneTotal >= int64(w.NumVertices()) {
				w.RequestStop()
				return
			}
			enter := func(p sccPhase) { phase, phaseStart = p, step }
			switch phase {
			case sccTrim:
				if step > phaseStart && res.Act == 0 {
					enter(sccPair)
				}
			case sccPair:
				enter(sccFwd)
			case sccFwd:
				if step >= phaseStart+2 && res.Act == 0 {
					enter(sccBwd)
				}
			case sccBwd:
				if step >= phaseStart+2 && res.Act == 0 {
					enter(sccRecog)
				}
			case sccRecog:
				enter(sccTrim)
			}
		}

		remove := func(li int, sccID graph.VertexID) {
			done[li] = true
			scc[li] = sccID
			for _, a := range fwdF.Neighbors(li) {
				w.SendAddr(a, sccMMsg{Tag: sccMDecIn})
			}
			for _, a := range bwdF.Neighbors(li) {
				w.SendAddr(a, sccMMsg{Tag: sccMDecOut})
			}
			w.VoteToHalt()
		}

		w.Compute = func(li int, msgs []sccMMsg) {
			evalPhase()
			step := w.Superstep()
			if step == 1 {
				liveIn[li] = int32(bwdF.OutDegree(li))
				liveOut[li] = int32(fwdF.OutDegree(li))
			}
			if done[li] && phase != sccTrim {
				w.VoteToHalt()
				return
			}
			id := w.GlobalID(li)
			switch phase {
			case sccTrim:
				for _, m := range msgs {
					switch m.Tag {
					case sccMDecIn:
						liveIn[li]--
					case sccMDecOut:
						liveOut[li]--
					}
				}
				if done[li] {
					w.VoteToHalt()
					return
				}
				if liveIn[li] == 0 || liveOut[li] == 0 {
					remove(li, id)
					w.Aggregate(sccAgg{Act: 1, Done: 1})
				}
			case sccPair:
				m := sccMMsg{A: uint32(id), B: pairF[li], C: pairB[li]}
				m.Tag = sccMPairO
				for _, a := range fwdF.Neighbors(li) {
					w.SendAddr(a, m)
				}
				m.Tag = sccMPairI
				for _, a := range bwdF.Neighbors(li) {
					w.SendAddr(a, m)
				}
			case sccFwd:
				if step == phaseStart {
					sameOut[li] = sameOut[li][:0]
					sameIn[li] = sameIn[li][:0]
					for _, m := range msgs {
						if m.B != pairF[li] || m.C != pairB[li] {
							continue
						}
						switch m.Tag {
						case sccMPairI: // sender is an out-neighbor
							sameOut[li] = append(sameOut[li], w.Addr(m.A))
						case sccMPairO: // sender is an in-neighbor
							sameIn[li] = append(sameIn[li], w.Addr(m.A))
						}
					}
					f[li] = uint32(id)
					for _, a := range sameOut[li] {
						w.SendAddr(a, sccMMsg{Tag: sccMFwd, A: f[li]})
					}
					return
				}
				changedF := false
				for _, m := range msgs {
					if m.Tag == sccMFwd && m.A < f[li] {
						f[li] = m.A
						changedF = true
					}
				}
				if changedF {
					w.Aggregate(sccAgg{Act: 1})
					for _, a := range sameOut[li] {
						w.SendAddr(a, sccMMsg{Tag: sccMFwd, A: f[li]})
					}
				}
			case sccBwd:
				if step == phaseStart {
					b[li] = uint32(id)
					for _, a := range sameIn[li] {
						w.SendAddr(a, sccMMsg{Tag: sccMBwd, A: b[li]})
					}
					return
				}
				changed := false
				for _, m := range msgs {
					if m.Tag == sccMBwd && m.A < b[li] {
						b[li] = m.A
						changed = true
					}
				}
				if changed {
					w.Aggregate(sccAgg{Act: 1})
					for _, a := range sameIn[li] {
						w.SendAddr(a, sccMMsg{Tag: sccMBwd, A: b[li]})
					}
				}
			case sccRecog:
				if f[li] == b[li] {
					remove(li, graph.VertexID(f[li]))
					w.Aggregate(sccAgg{Act: 1, Done: 1})
				} else {
					pairF[li] = f[li]
					pairB[li] = b[li]
				}
			}
		}
	})
	return gather(part, states), met, err
}
