package algorithms

import (
	"repro/internal/channel"
	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/ser"
)

// Weakly Connected Components via the HCC algorithm (paper §V-B3,
// PEGASUS-style hash-min): every vertex starts with its own id as label
// and repeatedly adopts the minimum label among its neighbors, treating
// edges as undirected. The input graph must already store both
// orientations (use graph.Undirectify for directed inputs).
//
// Variants (Table V bottom):
//
//	WCCChannel      — CombinedMessage with min combiner, one hop per superstep
//	WCCPropagation  — Propagation channel: converges in one superstep's rounds
//	WCCBlogel       — block-centric baseline: one cross-worker hop per superstep,
//	                  worker-local propagation in between (Blogel stand-in)
//	WCCPregel       — baseline engine with min combiner

// WCCChannel runs hash-min WCC with the standard CombinedMessage channel.
func WCCChannel(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		label := make([]graph.VertexID, w.LocalCount())
		states[w.WorkerID()] = label
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, vidCodec, label) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, vidCodec, label) },
		)
		msg := channel.NewCombinedMessage[uint32](w, ser.Uint32Codec{}, minU32)
		w.Compute = func(li int) {
			changed := false
			if w.Superstep() == 1 {
				label[li] = w.GlobalID(li)
				changed = true
			} else if m, ok := msg.Message(li); ok && m < label[li] {
				label[li] = m
				changed = true
			}
			if changed {
				for _, a := range f.Neighbors(li) {
					msg.Send(a, label[li])
				}
			}
			w.VoteToHalt()
		}
	})
	return gather(part, states), met, err
}

// WCCPropagation runs WCC with the Propagation channel: superstep 1
// registers the adjacency and seeds every vertex with its id; the
// channel converges to the component minima within that superstep's
// exchange rounds, and superstep 2 reads the result.
func WCCPropagation(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		label := make([]graph.VertexID, w.LocalCount())
		states[w.WorkerID()] = label
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, vidCodec, label) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, vidCodec, label) },
		)
		prop := channel.NewPropagation[uint32](w, ser.Uint32Codec{}, minU32)
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				if li == 0 {
					prop.UseFragment(f) // whole adjacency, registered once
				}
				prop.SetValue(w.GlobalID(li))
				return
			}
			if v, ok := prop.Value(li); ok {
				label[li] = v
			}
			w.VoteToHalt()
		}
	})
	return gather(part, states), met, err
}

// WCCBlogel runs WCC in the block-centric style of Blogel: labels cross
// worker boundaries once per superstep and propagate to quiescence
// inside each worker in between. Pair it with a locality partition
// (partition.Greedy) to reproduce the partitioned rows of Table V.
func WCCBlogel(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	props := make([]*channel.Propagation[uint32], part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		label := make([]graph.VertexID, w.LocalCount())
		states[w.WorkerID()] = label
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, vidCodec, label) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, vidCodec, label) },
		)
		prop := channel.NewBlockPropagation[uint32](w, ser.Uint32Codec{}, minU32)
		props[w.WorkerID()] = prop
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				if li == 0 {
					prop.UseFragment(f)
				}
				prop.SetValue(w.GlobalID(li))
			}
			w.VoteToHalt()
		}
	})
	// Collect final labels from the channels (block-centric values are
	// read post-run; convergence is the engine's termination).
	for wk := 0; wk < part.NumWorkers(); wk++ {
		for li := range states[wk] {
			if v, ok := props[wk].RawValue(li); ok {
				states[wk][li] = v
			}
		}
	}
	return gather(part, states), met, err
}

// WCCPregel runs hash-min WCC on the baseline engine with the global
// min combiner.
func WCCPregel(g *graph.Graph, opts Options) ([]graph.VertexID, pregel.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	cfg := pregel.Config[uint32, struct{}, struct{}]{
		Part:          part,
		Frags:         opts.fragments(g),
		MaxSupersteps: opts.MaxSupersteps,
		Cancel:        opts.Cancel,
		Fabric:        opts.Fabric,
		Observer:      opts.Observer,
		Checkpoint:    opts.Checkpoint,
		MsgCodec:      ser.Uint32Codec{},
		Combiner:      minU32,
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[uint32, struct{}, struct{}]) {
		f := w.Frag()
		label := make([]graph.VertexID, w.LocalCount())
		states[w.WorkerID()] = label
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, vidCodec, label) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, vidCodec, label) },
		)
		w.Compute = func(li int, msgs []uint32) {
			changed := false
			if w.Superstep() == 1 {
				label[li] = w.GlobalID(li)
				changed = true
			} else {
				for _, m := range msgs {
					if m < label[li] {
						label[li] = m
						changed = true
					}
				}
			}
			if changed {
				for _, a := range f.Neighbors(li) {
					w.SendAddr(a, label[li])
				}
			}
			w.VoteToHalt()
		}
	})
	return gather(part, states), met, err
}
