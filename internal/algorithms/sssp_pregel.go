package algorithms

import (
	"math"

	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/ser"
)

// SSSPPregel runs Bellman-Ford-style SSSP on the baseline engine with
// the global min combiner — the Pregel counterpart of SSSPChannel, so
// the registry exposes SSSP on both engines.
func SSSPPregel(g *graph.Graph, src graph.VertexID, opts Options) ([]int64, pregel.Metrics, error) {
	part := opts.Part
	states := make([][]int64, part.NumWorkers())
	cfg := pregel.Config[int64, struct{}, struct{}]{
		Part:          part,
		MaxSupersteps: opts.MaxSupersteps,
		MsgCodec:      ser.Int64Codec{},
		Combiner:      minI64,
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[int64, struct{}, struct{}]) {
		dist := make([]int64, w.LocalCount())
		states[w.WorkerID()] = dist
		relax := func(li int, id graph.VertexID) {
			ws := g.NeighborWeights(id)
			for i, v := range g.Neighbors(id) {
				w.Send(v, dist[li]+int64(ws[i]))
			}
		}
		w.Compute = func(li int, msgs []int64) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				if id == src {
					dist[li] = 0
					relax(li, id)
				} else {
					dist[li] = math.MaxInt64
				}
				w.VoteToHalt()
				return
			}
			best := dist[li]
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if best < dist[li] {
				dist[li] = best
				relax(li, id)
			}
			w.VoteToHalt()
		}
	})
	return gather(part, states), met, err
}
