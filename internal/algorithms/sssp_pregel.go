package algorithms

import (
	"math"

	"repro/internal/ckpt"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/ser"
)

// SSSPPregel runs Bellman-Ford-style SSSP on the baseline engine with
// the global min combiner — the Pregel counterpart of SSSPChannel, so
// the registry exposes SSSP on both engines.
func SSSPPregel(g *graph.Graph, src graph.VertexID, opts Options) ([]int64, pregel.Metrics, error) {
	part := opts.Part
	states := make([][]int64, part.NumWorkers())
	cfg := pregel.Config[int64, struct{}, struct{}]{
		Part:          part,
		Frags:         opts.fragments(g),
		MaxSupersteps: opts.MaxSupersteps,
		Cancel:        opts.Cancel,
		Fabric:        opts.Fabric,
		Observer:      opts.Observer,
		Checkpoint:    opts.Checkpoint,
		MsgCodec:      ser.Int64Codec{},
		Combiner:      minI64,
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[int64, struct{}, struct{}]) {
		f := w.Frag()
		dist := make([]int64, w.LocalCount())
		states[w.WorkerID()] = dist
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, ser.Int64Codec{}, dist) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, ser.Int64Codec{}, dist) },
		)
		relax := func(li int) {
			ws := f.NeighborWeights(li)
			for i, a := range f.Neighbors(li) {
				w.SendAddr(a, dist[li]+int64(ws[i]))
			}
		}
		w.Compute = func(li int, msgs []int64) {
			if w.Superstep() == 1 {
				if w.GlobalID(li) == src {
					dist[li] = 0
					relax(li)
				} else {
					dist[li] = math.MaxInt64
				}
				w.VoteToHalt()
				return
			}
			best := dist[li]
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if best < dist[li] {
				dist[li] = best
				relax(li)
			}
			w.VoteToHalt()
		}
	})
	return gather(part, states), met, err
}
