package algorithms

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/seq"
)

func regOpts(g *graph.Graph) Options {
	return Options{Part: partition.MustHash(g.NumVertices(), 4), MaxSupersteps: 200000}
}

func TestRegistryLookupAndAliases(t *testing.T) {
	for _, name := range []string{"pagerank", "sssp", "wcc", "pointerjump", "sv", "scc", "msf"} {
		spec, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		// every paper algorithm must run on both engines
		if len(spec.Engines()) != 2 {
			t.Fatalf("%s: engines %v, want both", name, spec.Engines())
		}
		for _, eng := range spec.Engines() {
			found := false
			for _, v := range spec.Variants(eng) {
				if v == DefaultVariant {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s/%s: no %q variant", name, eng, DefaultVariant)
			}
		}
	}
	for alias, canon := range map[string]string{"pr": "pagerank", "pj": "pointerjump", "cc": "wcc", "components": "wcc"} {
		spec, ok := Lookup(alias)
		if !ok || spec.Name != canon {
			t.Fatalf("alias %q: got %v, want %s", alias, spec, canon)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unexpected hit for unknown algorithm")
	}
	if len(Registry()) != 7 {
		t.Fatalf("registry size %d", len(Registry()))
	}
}

func TestRegistryRunErrors(t *testing.T) {
	g := graph.Chain(10)
	spec, _ := Lookup("wcc")
	if _, err := spec.Run("gpu", "", g, regOpts(g), Params{}); err == nil {
		t.Fatal("expected unknown-engine error")
	}
	if _, err := spec.Run(EngineChannel, "warp", g, regOpts(g), Params{}); err == nil {
		t.Fatal("expected unknown-variant error")
	}
	if _, err := ParseEngine("gpu"); err == nil {
		t.Fatal("expected parse error")
	}
	if e, err := ParseEngine(""); err != nil || e != EngineChannel {
		t.Fatalf("default engine: %v %v", e, err)
	}
}

func TestRegistryRunMatchesOracles(t *testing.T) {
	und := graph.SocialRMAT(7, 3, 42)

	// pagerank through the registry on both engines vs the sequential oracle
	pr, _ := Lookup("pagerank")
	want := seq.PageRank(und, 20)
	for _, eng := range []Engine{EngineChannel, EnginePregel} {
		res, err := pr.Run(eng, "", und, regOpts(und), Params{Iterations: 20})
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind() != "ranks" || res.Metrics.Engine != eng {
			t.Fatalf("kind=%s engine=%s", res.Kind(), res.Metrics.Engine)
		}
		for i := range want {
			if math.Abs(res.Ranks[i]-want[i]) > 1e-9 {
				t.Fatalf("%s rank[%d]=%g want %g", eng, i, res.Ranks[i], want[i])
			}
		}
	}

	// sssp/pregel (the new baseline variant) vs Dijkstra
	wg := graph.Grid(8, 9, 20, 3)
	sp, _ := Lookup("sssp")
	res, err := sp.Run(EnginePregel, "", wg, regOpts(wg), Params{Source: 5})
	if err != nil {
		t.Fatal(err)
	}
	dij := seq.Dijkstra(wg, 5)
	for i := range dij {
		if res.Dists[i] != dij[i] {
			t.Fatalf("dist[%d]=%d want %d", i, res.Dists[i], dij[i])
		}
	}
}
