package algorithms

import (
	"repro/internal/channel"
	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ser"
)

// The Shiloach-Vishkin (S-V) connected-components algorithm — the
// paper's central composition example (§III-C, Table VI). Every vertex u
// maintains a pointer D[u] into a distributed disjoint-set forest; each
// iteration either merges trees along crossing edges or halves pointer
// depth by jumping, until D stabilizes. Three communication patterns
// coexist:
//
//  1. fetching D[D[u]] — a request-respond conversation (load imbalance
//     at high-degree parents);
//  2. the neighborhood minimum of D over Nbr[u] — a static broadcast
//     (heavy neighborhood communication);
//  3. the conditional update of the root's pointer — min-combinable
//     messages (congestion at high-degree roots).
//
// Choosing a channel per pattern yields the four channel variants the
// paper measures, plus the two Pregel+ baselines:
//
//	SVChannel        — all standard channels (program 2 of Table VI)
//	SVReqResp        — RequestRespond for pattern 1 (program 3)
//	SVScatter        — ScatterCombine for pattern 2 (program 4)
//	SVBoth           — both optimized channels composed (program 5)
//	SVPregel         — monolithic baseline, tagged messages, no combiner
//	SVPregelReqResp  — baseline in reqresp mode (program 1)
//
// The input graph must be undirected (both orientations stored).

// svChannelVariant implements the four channel-engine variants.
// Iteration schedule (3 supersteps per iteration when fetching D[D[u]]
// through the RequestRespond channel, 4 with standard channels):
//
//	A: broadcast D[u] to neighbors; issue the grandparent fetch
//	(B': with standard channels, parents answer pending fetches)
//	B: read t = min neighbor D and gp = D[D[u]]; tree-merge or jump
//	C: roots apply the minimum merge target; convergence aggregator
func svChannelVariant(g *graph.Graph, opts Options, useReqResp, useScatter bool) ([]graph.VertexID, engine.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		n := w.LocalCount()
		d := make([]graph.VertexID, n)
		tmin := make([]graph.VertexID, n) // neighborhood minimum, buffered A->B
		changed := make([]bool, n)
		states[w.WorkerID()] = d
		w.Checkpoint(
			func(buf *ser.Buffer) {
				ckpt.SaveSlice(buf, vidCodec, d)
				ckpt.SaveSlice(buf, vidCodec, tmin)
				ckpt.SaveSlice(buf, ser.BoolCodec{}, changed)
			},
			func(buf *ser.Buffer) {
				ckpt.LoadSlice(buf, vidCodec, d)
				ckpt.LoadSlice(buf, vidCodec, tmin)
				ckpt.LoadSlice(buf, ser.BoolCodec{}, changed)
			},
		)

		// pattern 2: neighborhood broadcast
		var bcastCM *channel.CombinedMessage[uint32]
		var bcastSC *channel.ScatterCombine[uint32]
		if useScatter {
			bcastSC = channel.NewScatterCombine[uint32](w, ser.Uint32Codec{}, minU32)
		} else {
			bcastCM = channel.NewCombinedMessage[uint32](w, ser.Uint32Codec{}, minU32)
		}
		// pattern 1: grandparent fetch
		var rr *channel.RequestRespond[uint32]
		var reqCh, repCh *channel.DirectMessage[uint32]
		if useReqResp {
			rr = channel.NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 {
				return d[li]
			})
		} else {
			reqCh = channel.NewDirectMessage[uint32](w, ser.Uint32Codec{})
			repCh = channel.NewDirectMessage[uint32](w, ser.Uint32Codec{})
		}
		// pattern 3: root update
		mc := channel.NewCombinedMessage[uint32](w, ser.Uint32Codec{}, minU32)
		// convergence detection
		agg := channel.NewAggregator[bool](w, ser.BoolCodec{}, orBool, false)

		period := 3
		if !useReqResp {
			period = 4
		}
		broadcast := func(li int) {
			if useScatter {
				bcastSC.SetMessage(d[li])
			} else {
				for _, a := range f.Neighbors(li) {
					bcastCM.Send(a, d[li])
				}
			}
		}
		readTmin := func(li int) (uint32, bool) {
			if useScatter {
				return bcastSC.Message(li)
			}
			return bcastCM.Message(li)
		}

		w.Compute = func(li int) {
			id := w.GlobalID(li)
			step := w.Superstep()
			if step == 1 {
				d[li] = id
				if useScatter {
					if li == 0 {
						bcastSC.Grow(f.NumEdges())
					}
					for _, a := range f.Neighbors(li) {
						bcastSC.AddAddr(a)
					}
				}
			}
			phase := (step - 1) % period
			switch phase {
			case 0: // A
				if step > 1 && !agg.Result() {
					// previous iteration changed nothing anywhere: done
					w.VoteToHalt()
					w.RequestStop()
					return
				}
				broadcast(li)
				if useReqResp {
					rr.AddRequest(d[li])
				} else {
					reqCh.SendMessage(d[li], id)
				}
			case 1:
				if useReqResp {
					// B: full merge/jump decision
					gp, _ := rr.Respond()
					t, hasT := readTmin(li)
					svDecide(w, li, id, d, changed, gp, t, hasT, mc)
				} else {
					// B': serve grandparent fetches; buffer the
					// neighborhood minimum for the next step
					for _, requester := range reqCh.Messages(li) {
						repCh.SendMessage(requester, d[li])
					}
					if t, ok := readTmin(li); ok {
						tmin[li] = t
					} else {
						tmin[li] = uint32(0xFFFFFFFF)
					}
				}
			case 2:
				if useReqResp {
					// C: roots apply merge minima; everyone reports change
					if t, ok := mc.Message(li); ok && t < d[li] {
						d[li] = t
						changed[li] = true
					}
					agg.Add(changed[li])
					changed[li] = false
				} else {
					// B: consume the reply and decide
					gp := d[li]
					for _, v := range repCh.Messages(li) {
						gp = v
					}
					t := tmin[li]
					svDecide(w, li, id, d, changed, gp, t, t != 0xFFFFFFFF, mc)
				}
			case 3: // C for the 4-step schedule
				if t, ok := mc.Message(li); ok && t < d[li] {
					d[li] = t
					changed[li] = true
				}
				agg.Add(changed[li])
				changed[li] = false
			}
		}
	})
	return gather(part, states), met, err
}

// svDecide performs the per-vertex merge-or-jump step of S-V given the
// grandparent value gp = D[D[u]] and the neighborhood minimum t.
func svDecide(w *engine.Worker, li int, id graph.VertexID, d []graph.VertexID, changed []bool, gp uint32, t uint32, hasT bool, mc *channel.CombinedMessage[uint32]) {
	if gp == d[li] {
		// parent is a root: tree merging
		if hasT && t < d[li] {
			mc.SendMessage(d[li], t)
		}
	} else {
		// pointer jumping
		d[li] = gp
		changed[li] = true
	}
}

// SVChannel runs S-V with standard channels only.
func SVChannel(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	return svChannelVariant(g, opts, false, false)
}

// SVReqResp runs S-V with the RequestRespond channel for the
// grandparent fetch.
func SVReqResp(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	return svChannelVariant(g, opts, true, false)
}

// SVScatter runs S-V with the ScatterCombine channel for the
// neighborhood broadcast.
func SVScatter(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	return svChannelVariant(g, opts, false, true)
}

// SVBoth composes both optimized channels — the paper's headline
// configuration (program 5 of Table VI).
func SVBoth(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	return svChannelVariant(g, opts, true, true)
}
