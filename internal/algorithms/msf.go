package algorithms

import (
	"repro/internal/channel"
	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ser"
)

// Minimum Spanning Forest via distributed Boruvka (paper §V-A, the
// Chung-Condon parallel formulation [6]). Each round every component
// selects its minimum-weight outgoing edge (under a total order on
// edges), components merge along the selected edges with 2-cycles
// broken toward the smaller root, and the component forest is flattened
// by pointer jumping. The algorithm is the paper's showcase for
// heterogeneous message types: neighborhood broadcasts are (id, comp)
// pairs, candidates are 4-word edges, and the pointer chase is a
// request-respond conversation — in Pregel they all share one fat
// tagged type (msf_pregel.go), while the channel version gives each its
// own channel.
//
// MSFResult carries the selected forest edges and their total weight.
type MSFResult struct {
	Edges  []graph.Edge
	Weight int64
	// Comp is the final component id per vertex (equal for vertices in
	// the same connected component).
	Comp []graph.VertexID
}

type msfPhase uint8

const (
	msfBcast msfPhase = iota
	msfCand
	msfSelect
	msfResolve
	msfJump
)

// msfCandMsg is a candidate edge: weight, own-side endpoint, other-side
// endpoint, and the other side's component.
type msfCandMsg struct {
	W     int32
	U, V  graph.VertexID
	C2    graph.VertexID
	Valid bool
}

type msfCandCodec struct{}

func (msfCandCodec) Encode(b *ser.Buffer, m msfCandMsg) {
	b.WriteUint32(uint32(m.W))
	b.WriteUint32(m.U)
	b.WriteUint32(m.V)
	b.WriteUint32(m.C2)
}

func (msfCandCodec) Decode(b *ser.Buffer) msfCandMsg {
	return msfCandMsg{W: int32(b.ReadUint32()), U: b.ReadUint32(), V: b.ReadUint32(), C2: b.ReadUint32(), Valid: true}
}

// msfCandLess is the total order on undirected candidate edges: weight,
// then the unordered endpoint pair. Both sides of a cut order its edges
// identically, which guarantees mutual pairs select the same edge.
func msfCandLess(a, b msfCandMsg) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	alo, ahi := a.U, a.V
	if alo > ahi {
		alo, ahi = ahi, alo
	}
	blo, bhi := b.U, b.V
	if blo > bhi {
		blo, bhi = bhi, blo
	}
	if alo != blo {
		return alo < blo
	}
	return ahi < bhi
}

func msfCandMin(a, b msfCandMsg) msfCandMsg {
	if !a.Valid {
		return b
	}
	if !b.Valid {
		return a
	}
	if msfCandLess(a, b) {
		return a
	}
	return b
}

// msfBcastMsg carries a sender's identity and component.
type msfBcastMsg struct {
	ID   graph.VertexID
	Comp graph.VertexID
}

type msfBcastCodec struct{}

func (msfBcastCodec) Encode(b *ser.Buffer, m msfBcastMsg) {
	b.WriteUint32(m.ID)
	b.WriteUint32(m.Comp)
}

func (msfBcastCodec) Decode(b *ser.Buffer) msfBcastMsg {
	return msfBcastMsg{ID: b.ReadUint32(), Comp: b.ReadUint32()}
}

// msfSaveCore appends the Boruvka vertex state shared by both engine
// variants to a checkpoint blob: the component forest, the pointer-chase
// cursor, the pending candidate edges, the accumulated neighbor
// components and the forest edges selected so far on this worker.
func msfSaveCore(buf *ser.Buffer, comp, cur, droot []graph.VertexID, pend []msfCandMsg, nbrComp []map[graph.VertexID]graph.VertexID, edges []graph.Edge) {
	ckpt.SaveSlice(buf, vidCodec, comp)
	ckpt.SaveSlice(buf, vidCodec, cur)
	ckpt.SaveSlice(buf, vidCodec, droot)
	buf.WriteUvarint(uint64(len(pend)))
	for _, p := range pend {
		buf.WriteBool(p.Valid)
		if p.Valid {
			buf.WriteVarint(int64(p.W))
			buf.WriteUint32(p.U)
			buf.WriteUint32(p.V)
			buf.WriteUint32(p.C2)
		}
	}
	buf.WriteUvarint(uint64(len(nbrComp)))
	for _, nc := range nbrComp {
		buf.WriteUvarint(uint64(len(nc)))
		for k, v := range nc {
			buf.WriteUint32(k)
			buf.WriteUint32(v)
		}
	}
	buf.WriteUvarint(uint64(len(edges)))
	for _, e := range edges {
		buf.WriteUint32(e.Src)
		buf.WriteUint32(e.Dst)
		buf.WriteVarint(int64(e.Weight))
	}
}

// msfLoadCore restores a blob written by msfSaveCore into the given
// slices and returns the worker's selected forest edges. Runs under the
// engine's restore recover: shape mismatches panic into worker errors.
func msfLoadCore(buf *ser.Buffer, comp, cur, droot []graph.VertexID, pend []msfCandMsg, nbrComp []map[graph.VertexID]graph.VertexID) []graph.Edge {
	ckpt.LoadSlice(buf, vidCodec, comp)
	ckpt.LoadSlice(buf, vidCodec, cur)
	ckpt.LoadSlice(buf, vidCodec, droot)
	if n := int(buf.ReadUvarint()); n != len(pend) {
		panic("algorithms: msf checkpoint candidate table does not match vertex count")
	}
	for i := range pend {
		pend[i] = msfCandMsg{}
		if buf.ReadBool() {
			pend[i] = msfCandMsg{W: int32(buf.ReadVarint()), U: buf.ReadUint32(), V: buf.ReadUint32(), C2: buf.ReadUint32(), Valid: true}
		}
	}
	if n := int(buf.ReadUvarint()); n != len(nbrComp) {
		panic("algorithms: msf checkpoint neighbor table does not match vertex count")
	}
	for i := range nbrComp {
		k := int(buf.ReadUvarint())
		if k == 0 {
			nbrComp[i] = nil
			continue
		}
		nc := make(map[graph.VertexID]graph.VertexID)
		for j := 0; j < k; j++ {
			key := buf.ReadUint32()
			nc[key] = buf.ReadUint32()
		}
		nbrComp[i] = nc
	}
	ne := int(buf.ReadUvarint())
	var edges []graph.Edge
	for j := 0; j < ne; j++ {
		edges = append(edges, graph.Edge{Src: buf.ReadUint32(), Dst: buf.ReadUint32(), Weight: int32(buf.ReadVarint())})
	}
	return edges
}

// MSFChannel runs Boruvka MSF on the channel engine. The input must be
// an undirected weighted graph.
func MSFChannel(g *graph.Graph, opts Options) (MSFResult, engine.Metrics, error) {
	part := opts.Part
	compStates := make([][]graph.VertexID, part.NumWorkers())
	edgeStates := make([][]graph.Edge, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		n := w.LocalCount()
		comp := make([]graph.VertexID, n)
		cur := make([]graph.VertexID, n)
		droot := make([]graph.VertexID, n)
		pend := make([]msfCandMsg, n)
		nbrComp := make([]map[graph.VertexID]graph.VertexID, n)
		compStates[w.WorkerID()] = comp

		bcast := channel.NewDirectMessage[msfBcastMsg](w, msfBcastCodec{})
		cand := channel.NewCombinedMessage[msfCandMsg](w, msfCandCodec{}, msfCandMin)
		rrD := channel.NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 {
			return droot[li]
		})
		rrJump := channel.NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 {
			return cur[li]
		})
		selAgg := channel.NewAggregator[int64](w, ser.Int64Codec{}, sumI64, 0)
		jumpAgg := channel.NewAggregator[int64](w, ser.Int64Codec{}, sumI64, 0)

		phase := msfBcast
		phaseStart := 1
		phaseStep := 0
		stopping := false

		w.Checkpoint(func(buf *ser.Buffer) {
			msfSaveCore(buf, comp, cur, droot, pend, nbrComp, edgeStates[w.WorkerID()])
			buf.WriteUint8(uint8(phase))
			buf.WriteVarint(int64(phaseStart))
			buf.WriteVarint(int64(phaseStep))
			buf.WriteBool(stopping)
		}, func(buf *ser.Buffer) {
			edgeStates[w.WorkerID()] = msfLoadCore(buf, comp, cur, droot, pend, nbrComp)
			phase = msfPhase(buf.ReadUint8())
			phaseStart = int(buf.ReadVarint())
			phaseStep = int(buf.ReadVarint())
			stopping = buf.ReadBool()
		})

		evalPhase := func() {
			step := w.Superstep()
			if phaseStep == step {
				return
			}
			phaseStep = step
			enter := func(p msfPhase) { phase, phaseStart = p, step }
			switch phase {
			case msfBcast:
				if step > phaseStart {
					enter(msfCand)
				}
			case msfCand:
				enter(msfSelect)
			case msfSelect:
				enter(msfResolve)
				if selAgg.Result() == 0 {
					// no component found an outgoing edge: forest final
					stopping = true
					w.RequestStop()
				}
			case msfResolve:
				enter(msfJump)
			case msfJump:
				if step > phaseStart && jumpAgg.Result() == 0 {
					enter(msfBcast)
				}
			}
		}

		w.Compute = func(li int) {
			evalPhase()
			if stopping {
				w.VoteToHalt()
				return
			}
			id := w.GlobalID(li)
			step := w.Superstep()
			if step == 1 {
				comp[li] = id
				cur[li] = id
			}
			switch phase {
			case msfBcast:
				comp[li] = cur[li] // adopt the flattened pointer
				m := msfBcastMsg{ID: id, Comp: comp[li]}
				for _, a := range f.Neighbors(li) {
					bcast.Send(a, m)
				}
			case msfCand:
				// record neighbor components, pick the minimum crossing edge
				nc := nbrComp[li]
				if nc == nil {
					nc = make(map[graph.VertexID]graph.VertexID)
					nbrComp[li] = nc
				}
				for _, m := range bcast.Messages(li) {
					nc[m.ID] = m.Comp
				}
				best := msfCandMsg{}
				ws := g.NeighborWeights(id)
				for i, v := range g.Neighbors(id) {
					c2, ok := nc[v]
					if !ok || c2 == comp[li] {
						continue
					}
					c := msfCandMsg{W: ws[i], U: id, V: v, C2: c2, Valid: true}
					best = msfCandMin(best, c)
				}
				if best.Valid {
					cand.SendMessage(comp[li], best)
				}
			case msfSelect:
				// roots select their component's best candidate
				droot[li] = comp[li]
				pend[li].Valid = false
				if id == comp[li] {
					if c, ok := cand.Message(li); ok && c.Valid {
						droot[li] = c.C2
						pend[li] = c
						selAgg.Add(1)
						rrD.AddRequest(c.C2)
					}
				}
			case msfResolve:
				if id == comp[li] && pend[li].Valid {
					gp, ok := rrD.Respond()
					countEdge := true
					if ok && graph.VertexID(gp) == id {
						// mutual pair: smaller id stays root and counts
						if id < droot[li] {
							droot[li] = id
							// edge counted by this side
						} else {
							countEdge = false
						}
					}
					if countEdge {
						e := graph.Edge{Src: pend[li].U, Dst: pend[li].V, Weight: pend[li].W}
						edgeStates[w.WorkerID()] = append(edgeStates[w.WorkerID()], e)
					}
				}
				// everyone initializes the pointer chase
				if id == comp[li] {
					cur[li] = droot[li]
				} else {
					cur[li] = comp[li]
				}
				rrJump.AddRequest(cur[li])
			case msfJump:
				if nc, ok := rrJump.Respond(); ok && graph.VertexID(nc) != cur[li] {
					cur[li] = nc
					jumpAgg.Add(1)
				}
				rrJump.AddRequest(cur[li])
			}
		}
	})
	res := MSFResult{Comp: gather(part, compStates)}
	for _, es := range edgeStates {
		for _, e := range es {
			res.Edges = append(res.Edges, e)
			res.Weight += int64(e.Weight)
		}
	}
	return res, met, err
}
