package algorithms

import (
	"repro/internal/channel"
	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/ser"
)

// Min-Label SCC (paper §V-C2, algorithm of Yan et al. [30]): an
// iterative algorithm whose main loop contains four subroutines — the
// removal of trivial SCCs (trim), forward and backward label
// propagation, SCC recognition, and relabeling. Vertices carry a label
// pair (f, b); propagation is restricted to edges whose endpoints share
// the pair, so each round decomposes the remaining graph, and vertices
// with f == b form a recognized SCC.
//
// Variants:
//
//	SCCChannel      — standard channels: pair exchange via DirectMessage,
//	                  min-combined label messages, one hop per superstep
//	                  (slow convergence — the problem Table VII exposes)
//	SCCPropagation  — the forward/backward propagations run on
//	                  Propagation channels and converge within one
//	                  superstep each round (the paper's "quick fix")
//	SCCPregel       — monolithic baseline: one tagged fat message type,
//	                  no combiner (scc_pregel.go)
//
// The phase machine is replicated deterministically on every worker:
// transitions depend only on aggregator results, which all workers
// observe identically.

type sccPhase uint8

const (
	sccTrim  sccPhase = iota
	sccPair           // broadcast (id, f-pair, b-pair) both directions
	sccFwd            // basic: iterative forward min-label propagation
	sccBwd            // basic: iterative backward min-label propagation
	sccSeed           // prop: register same-pair edges + seed both propagations
	sccRecog          // read labels, recognize SCCs, relabel
)

// sccPairMsg carries a sender's identity and frozen label pair.
type sccPairMsg struct {
	ID graph.VertexID
	F  uint32
	B  uint32
}

type sccPairCodec struct{}

func (sccPairCodec) Encode(b *ser.Buffer, m sccPairMsg) {
	b.WriteUint32(m.ID)
	b.WriteUint32(m.F)
	b.WriteUint32(m.B)
}

func (sccPairCodec) Decode(b *ser.Buffer) sccPairMsg {
	return sccPairMsg{ID: b.ReadUint32(), F: b.ReadUint32(), B: b.ReadUint32()}
}

func sumU32(a, b uint32) uint32 { return a + b }

// sccState is the per-worker algorithm state shared by both channel
// variants.
type sccState struct {
	w        *engine.Worker
	fwd      *frag.Fragment   // this worker's fragment of the forward graph
	bwd      *frag.Fragment   // this worker's fragment of the reverse graph
	scc      []graph.VertexID // result: SCC id per local vertex
	done     []bool
	liveIn   []int32
	liveOut  []int32
	pairF    []uint32
	pairB    []uint32
	f        []uint32
	b        []uint32
	sameOut  [][]frag.Addr // per local vertex: same-pair out-neighbors, pre-resolved
	sameIn   [][]frag.Addr // per local vertex: same-pair in-neighbors, pre-resolved
	fChanged []bool
	bChanged []bool

	phase      sccPhase
	phaseStart int
	phaseStep  int // superstep at which phase was last evaluated
	doneTotal  int64

	decIn   *channel.CombinedMessage[uint32] // decrements liveIn of receivers
	decOut  *channel.CombinedMessage[uint32] // decrements liveOut of receivers
	pairOut *channel.DirectMessage[sccPairMsg]
	pairIn  *channel.DirectMessage[sccPairMsg]
	act     *channel.Aggregator[int64]
	doneAgg *channel.Aggregator[int64]
}

func newSCCState(w *engine.Worker, fwd, bwd *frag.Fragment) *sccState {
	n := w.LocalCount()
	s := &sccState{
		w: w, fwd: fwd, bwd: bwd,
		scc:      make([]graph.VertexID, n),
		done:     make([]bool, n),
		liveIn:   make([]int32, n),
		liveOut:  make([]int32, n),
		pairF:    make([]uint32, n),
		pairB:    make([]uint32, n),
		f:        make([]uint32, n),
		b:        make([]uint32, n),
		sameOut:  make([][]frag.Addr, n),
		sameIn:   make([][]frag.Addr, n),
		fChanged: make([]bool, n),
		bChanged: make([]bool, n),
		phase:    sccTrim,
	}
	s.phaseStart = 1
	s.phaseStep = 0
	s.decIn = channel.NewCombinedMessage[uint32](w, ser.Uint32Codec{}, sumU32)
	s.decOut = channel.NewCombinedMessage[uint32](w, ser.Uint32Codec{}, sumU32)
	s.pairOut = channel.NewDirectMessage[sccPairMsg](w, sccPairCodec{})
	s.pairIn = channel.NewDirectMessage[sccPairMsg](w, sccPairCodec{})
	s.act = channel.NewAggregator[int64](w, ser.Int64Codec{}, sumI64, 0)
	s.doneAgg = channel.NewAggregator[int64](w, ser.Int64Codec{}, sumI64, 0)
	return s
}

// checkpoint registers the Save/Restore closures covering the full SCC
// state, including the replicated phase machine — every worker restores
// the same (phase, phaseStart, phaseStep, doneTotal), so the machine
// stays in lockstep after recovery.
func (s *sccState) checkpoint() {
	s.w.Checkpoint(func(buf *ser.Buffer) {
		ckpt.SaveSlice(buf, vidCodec, s.scc)
		ckpt.SaveSlice(buf, ser.BoolCodec{}, s.done)
		ckpt.SaveSlice(buf, i32Codec, s.liveIn)
		ckpt.SaveSlice(buf, i32Codec, s.liveOut)
		ckpt.SaveSlice(buf, ser.Uint32Codec{}, s.pairF)
		ckpt.SaveSlice(buf, ser.Uint32Codec{}, s.pairB)
		ckpt.SaveSlice(buf, ser.Uint32Codec{}, s.f)
		ckpt.SaveSlice(buf, ser.Uint32Codec{}, s.b)
		saveAddrLists(buf, s.sameOut)
		saveAddrLists(buf, s.sameIn)
		buf.WriteUint8(uint8(s.phase))
		buf.WriteVarint(int64(s.phaseStart))
		buf.WriteVarint(int64(s.phaseStep))
		buf.WriteVarint(s.doneTotal)
	}, func(buf *ser.Buffer) {
		ckpt.LoadSlice(buf, vidCodec, s.scc)
		ckpt.LoadSlice(buf, ser.BoolCodec{}, s.done)
		ckpt.LoadSlice(buf, i32Codec, s.liveIn)
		ckpt.LoadSlice(buf, i32Codec, s.liveOut)
		ckpt.LoadSlice(buf, ser.Uint32Codec{}, s.pairF)
		ckpt.LoadSlice(buf, ser.Uint32Codec{}, s.pairB)
		ckpt.LoadSlice(buf, ser.Uint32Codec{}, s.f)
		ckpt.LoadSlice(buf, ser.Uint32Codec{}, s.b)
		loadAddrLists(buf, s.sameOut)
		loadAddrLists(buf, s.sameIn)
		s.phase = sccPhase(buf.ReadUint8())
		s.phaseStart = int(buf.ReadVarint())
		s.phaseStep = int(buf.ReadVarint())
		s.doneTotal = buf.ReadVarint()
	})
}

// remove marks the current vertex done with SCC id sccID and notifies
// its neighbors to decrement their live-degree counters.
func (s *sccState) remove(li int, sccID graph.VertexID) {
	s.done[li] = true
	s.scc[li] = sccID
	for _, a := range s.fwd.Neighbors(li) {
		s.decIn.Send(a, 1)
	}
	for _, a := range s.bwd.Neighbors(li) {
		s.decOut.Send(a, 1)
	}
	s.doneAgg.Add(1)
	s.w.VoteToHalt()
}

// evalPhase advances the replicated phase machine. It runs once per
// worker per superstep, driven by the first compute call; transitions
// depend only on globally agreed aggregator results. isProp selects the
// propagation-channel schedule. onEnter is invoked when a new phase is
// entered (e.g. to reset propagation channels).
func (s *sccState) evalPhase(isProp bool, onEnter func(p sccPhase)) {
	step := s.w.Superstep()
	if s.phaseStep == step {
		return
	}
	s.phaseStep = step
	s.doneTotal += s.doneAgg.Result()
	if s.doneTotal >= int64(s.w.NumVertices()) {
		s.w.RequestStop()
		return
	}
	enter := func(p sccPhase) {
		s.phase = p
		s.phaseStart = step
		if onEnter != nil {
			onEnter(p)
		}
	}
	switch s.phase {
	case sccTrim:
		if step > s.phaseStart && s.act.Result() == 0 {
			enter(sccPair)
		}
	case sccPair:
		if isProp {
			enter(sccSeed)
		} else {
			enter(sccFwd)
		}
	case sccFwd:
		// phaseStart consumes pair messages and seeds; changes counted
		// from phaseStart+1 on
		if step >= s.phaseStart+2 && s.act.Result() == 0 {
			enter(sccBwd)
		}
	case sccBwd:
		if step >= s.phaseStart+2 && s.act.Result() == 0 {
			enter(sccRecog)
		}
	case sccSeed:
		enter(sccRecog)
	case sccRecog:
		enter(sccTrim)
	}
}

// trimStep applies pending live-degree decrements and removes trivial
// SCCs.
func (s *sccState) trimStep(li int) {
	if d, ok := s.decIn.Message(li); ok {
		s.liveIn[li] -= int32(d)
	}
	if d, ok := s.decOut.Message(li); ok {
		s.liveOut[li] -= int32(d)
	}
	if s.done[li] {
		s.w.VoteToHalt()
		return
	}
	if s.liveIn[li] == 0 || s.liveOut[li] == 0 {
		s.remove(li, s.w.GlobalID(li))
		s.act.Add(1)
	}
}

// pairStep broadcasts the frozen pair to both neighborhoods.
func (s *sccState) pairStep(li int) {
	if s.done[li] {
		s.w.VoteToHalt()
		return
	}
	m := sccPairMsg{ID: s.w.GlobalID(li), F: s.pairF[li], B: s.pairB[li]}
	// to out-neighbors: receivers learn an in-neighbor's pair
	for _, a := range s.fwd.Neighbors(li) {
		s.pairOut.Send(a, m)
	}
	// to in-neighbors: receivers learn an out-neighbor's pair
	for _, a := range s.bwd.Neighbors(li) {
		s.pairIn.Send(a, m)
	}
}

// collectSameLists consumes the pair messages and rebuilds the same-pair
// neighbor lists of the current vertex, resolved once to packed
// addresses so the per-round propagation loops send without partition
// lookups.
func (s *sccState) collectSameLists(li int) {
	s.sameOut[li] = s.sameOut[li][:0]
	s.sameIn[li] = s.sameIn[li][:0]
	pf, pb := s.pairF[li], s.pairB[li]
	for _, m := range s.pairIn.Messages(li) {
		// sender is an out-neighbor of this vertex
		if m.F == pf && m.B == pb {
			s.sameOut[li] = append(s.sameOut[li], s.w.Addr(m.ID))
		}
	}
	for _, m := range s.pairOut.Messages(li) {
		// sender is an in-neighbor of this vertex
		if m.F == pf && m.B == pb {
			s.sameIn[li] = append(s.sameIn[li], s.w.Addr(m.ID))
		}
	}
}

// SCCChannel runs Min-Label SCC with standard channels (fwd/bwd label
// propagation one hop per superstep).
func SCCChannel(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	part := opts.Part
	fwdFrags := opts.fragments(g)
	bwdFrags := fwdFrags.Reverse()
	states := make([][]graph.VertexID, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: fwdFrags, MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		s := newSCCState(w, w.Frag(), bwdFrags.Frag(w.WorkerID()))
		states[w.WorkerID()] = s.scc
		s.checkpoint()
		fwd := channel.NewCombinedMessage[uint32](w, ser.Uint32Codec{}, minU32)
		bwd := channel.NewCombinedMessage[uint32](w, ser.Uint32Codec{}, minU32)
		w.Compute = func(li int) {
			s.evalPhase(false, nil)
			if w.Superstep() == 1 {
				s.liveIn[li] = int32(s.bwd.OutDegree(li))
				s.liveOut[li] = int32(s.fwd.OutDegree(li))
			}
			if s.done[li] && s.phase != sccTrim {
				w.VoteToHalt()
				return
			}
			switch s.phase {
			case sccTrim:
				s.trimStep(li)
			case sccPair:
				s.pairStep(li)
			case sccFwd:
				step := w.Superstep()
				if step == s.phaseStart {
					s.collectSameLists(li)
					s.f[li] = uint32(w.GlobalID(li))
					for _, a := range s.sameOut[li] {
						fwd.Send(a, s.f[li])
					}
					return
				}
				if m, ok := fwd.Message(li); ok && m < s.f[li] {
					s.f[li] = m
					s.act.Add(1)
					for _, a := range s.sameOut[li] {
						fwd.Send(a, s.f[li])
					}
				}
			case sccBwd:
				step := w.Superstep()
				if step == s.phaseStart {
					s.b[li] = uint32(w.GlobalID(li))
					for _, a := range s.sameIn[li] {
						bwd.Send(a, s.b[li])
					}
					return
				}
				if m, ok := bwd.Message(li); ok && m < s.b[li] {
					s.b[li] = m
					s.act.Add(1)
					for _, a := range s.sameIn[li] {
						bwd.Send(a, s.b[li])
					}
				}
			case sccRecog:
				if s.f[li] == s.b[li] {
					s.remove(li, graph.VertexID(s.f[li]))
					s.act.Add(1)
				} else {
					s.pairF[li] = s.f[li]
					s.pairB[li] = s.b[li]
				}
			}
		}
	})
	return gather(part, states), met, err
}

// SCCPropagation runs Min-Label SCC with the forward and backward label
// propagations on Propagation channels, converging each round's
// propagation within a single superstep (Table VII program 3).
func SCCPropagation(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	part := opts.Part
	fwdFrags := opts.fragments(g)
	bwdFrags := fwdFrags.Reverse()
	states := make([][]graph.VertexID, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: fwdFrags, MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		s := newSCCState(w, w.Frag(), bwdFrags.Frag(w.WorkerID()))
		states[w.WorkerID()] = s.scc
		s.checkpoint()
		fwd := channel.NewPropagation[uint32](w, ser.Uint32Codec{}, minU32)
		bwd := channel.NewPropagation[uint32](w, ser.Uint32Codec{}, minU32)
		onEnter := func(p sccPhase) {
			if p == sccSeed {
				fwd.Reset()
				bwd.Reset()
			}
		}
		w.Compute = func(li int) {
			s.evalPhase(true, onEnter)
			if w.Superstep() == 1 {
				s.liveIn[li] = int32(s.bwd.OutDegree(li))
				s.liveOut[li] = int32(s.fwd.OutDegree(li))
			}
			if s.done[li] && s.phase != sccTrim {
				w.VoteToHalt()
				return
			}
			switch s.phase {
			case sccTrim:
				s.trimStep(li)
			case sccPair:
				s.pairStep(li)
			case sccSeed:
				s.collectSameLists(li)
				id := uint32(w.GlobalID(li))
				for _, a := range s.sameOut[li] {
					fwd.AddAddr(a)
				}
				for _, a := range s.sameIn[li] {
					bwd.AddAddr(a)
				}
				fwd.SetValue(id)
				bwd.SetValue(id)
			case sccRecog:
				fv, _ := fwd.Value(li)
				bv, _ := bwd.Value(li)
				s.f[li] = fv
				s.b[li] = bv
				if fv == bv {
					s.remove(li, graph.VertexID(fv))
					s.act.Add(1)
				} else {
					s.pairF[li] = fv
					s.pairB[li] = bv
				}
			}
		}
	})
	return gather(part, states), met, err
}
