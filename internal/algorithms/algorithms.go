// Package algorithms implements the six algorithms of the paper's
// evaluation (§V): PageRank, Pointer-Jumping, WCC (HCC), the S-V
// connected-components algorithm, Min-Label SCC and Boruvka MSF — each
// in the channel-based engine (with the channel choices the paper
// studies) and in the baseline monolithic-message engine. SSSP is
// included as an additional example of the scatter/propagation channels.
//
// Every function returns the per-vertex result assembled into a global
// slice plus the engine metrics, so the harness can print the paper's
// table rows and the tests can compare against internal/seq oracles.
package algorithms

import (
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/pregel"
	"repro/internal/ser"
)

// gather assembles per-worker slices (indexed by local index) into one
// global slice indexed by vertex id.
func gather[T any](part *partition.Partition, states [][]T) []T {
	out := make([]T, part.NumVertices())
	for w := 0; w < part.NumWorkers(); w++ {
		for li, v := range states[w] {
			out[part.GlobalID(w, li)] = v
		}
	}
	return out
}

// minU32 is the min combiner for uint32 labels.
func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// orBool is the logical-or combiner used for convergence detection.
func orBool(a, b bool) bool { return a || b }

// sumF64 is the float sum combiner.
func sumF64(a, b float64) float64 { return a + b }

// sumI64 is the integer sum combiner.
func sumI64(a, b int64) int64 { return a + b }

// minI64 is the min combiner for int64 distances.
func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Options bundles the common run parameters of all algorithm variants.
type Options struct {
	Part *partition.Partition
	// Frags, if set, are the pre-resolved shared-nothing fragments of the
	// input graph under Part (the catalog and the harness build them once
	// per (dataset, workers, placement) and reuse them across runs).
	// Unset, each run builds its own.
	Frags *frag.Fragments
	// MaxSupersteps caps the run (0 = engine default).
	MaxSupersteps int
	// Cancel, if non-nil, aborts the run when closed (the job service
	// threads each job's cancellation channel through here); the run
	// returns barrier.ErrCancelled.
	Cancel <-chan struct{}
	// Fabric, if non-nil, is the transport the run's workers exchange
	// buffers and synchronize through (nil selects the in-process
	// zero-copy fabric). A distributed fabric may host only a subset of
	// Part's workers in this process: the run then computes just those
	// workers' vertices and the assembled result has only their entries
	// filled — the coordinator merges partials by ownership.
	Fabric comm.Fabric
	// Observer, if non-nil, receives one superstep sample per (worker,
	// superstep) from whichever engine runs the job (the job service
	// threads each job's trace collector through here, the same way
	// Cancel and Fabric travel). Nil disables collection.
	Observer obs.Observer
	// Checkpoint, if non-nil with a store, makes the run snapshot its
	// per-worker state at a configurable superstep interval and, when
	// Restore is set, resume from the saved superstep instead of from
	// scratch (the job service threads recovery through here, the same
	// way Cancel and Fabric travel). Every registered algorithm supplies
	// the Save/Restore closures for its own vertex state.
	Checkpoint *ckpt.Hook
}

// fragments returns the pre-resolved fragments of g, building them when
// the caller did not supply any.
func (o Options) fragments(g *graph.Graph) *frag.Fragments {
	if o.Frags != nil {
		return o.Frags
	}
	return frag.Build(g, o.Part)
}

// vidCodec encodes graph.VertexID values in checkpoint blobs (the wire
// codecs are typed over the raw integer widths).
var vidCodec = ser.FuncCodec[graph.VertexID]{
	Enc: func(buf *ser.Buffer, v graph.VertexID) { buf.WriteUint32(uint32(v)) },
	Dec: func(buf *ser.Buffer) graph.VertexID { return graph.VertexID(buf.ReadUint32()) },
}

// addrCodec encodes packed fragment addresses in checkpoint blobs.
var addrCodec = ser.FuncCodec[frag.Addr]{
	Enc: func(buf *ser.Buffer, a frag.Addr) { buf.WriteUvarint(uint64(a)) },
	Dec: func(buf *ser.Buffer) frag.Addr { return frag.Addr(buf.ReadUvarint()) },
}

// i32Codec encodes int32 counters in checkpoint blobs.
var i32Codec = ser.FuncCodec[int32]{
	Enc: func(buf *ser.Buffer, v int32) { buf.WriteVarint(int64(v)) },
	Dec: func(buf *ser.Buffer) int32 { return int32(buf.ReadVarint()) },
}

// saveAddrLists appends a per-vertex list-of-addresses table (e.g. the
// SCC same-pair neighbor lists) to a checkpoint blob.
func saveAddrLists(buf *ser.Buffer, lists [][]frag.Addr) {
	buf.WriteUvarint(uint64(len(lists)))
	for _, lst := range lists {
		ckpt.SaveSlice(buf, addrCodec, lst)
	}
}

// loadAddrLists restores a table written by saveAddrLists, reusing the
// existing per-vertex list capacity. Runs under the engine's restore
// recover: shape mismatches panic into worker errors.
func loadAddrLists(buf *ser.Buffer, lists [][]frag.Addr) {
	if n := int(buf.ReadUvarint()); n != len(lists) {
		panic("algorithms: checkpoint address table does not match vertex count")
	}
	for i := range lists {
		k := int(buf.ReadUvarint())
		lst := lists[i][:0]
		for j := 0; j < k; j++ {
			lst = append(lst, frag.Addr(buf.ReadUvarint()))
		}
		lists[i] = lst
	}
}

// ChannelMetrics is a light alias so callers do not import engine just
// for the metrics type.
type ChannelMetrics = engine.Metrics

// PregelMetrics aliases the baseline engine metrics.
type PregelMetrics = pregel.Metrics
