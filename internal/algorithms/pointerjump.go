package algorithms

import (
	"repro/internal/channel"
	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/ser"
)

// Pointer-Jumping (paper §V-B2): given a forest of rooted trees encoded
// as parent pointers (each vertex's single out-edge points to its
// parent; roots have no out-edge or a self-loop), every vertex finds the
// root of its tree by repeated pointer doubling D[u] := D[D[u]].
//
// The communication is a pure request-respond conversation: each round a
// vertex asks its current parent for the parent's pointer. Variants:
//
//	PointerJumpChannel        — DirectMessage request + reply pair
//	                            (2 supersteps per jump, replies from a
//	                            hub are sent one per requester)
//	PointerJumpReqResp        — RequestRespond channel (1 superstep per
//	                            jump, per-worker request dedup, ordered
//	                            value-only replies)
//	PointerJumpPregel         — baseline engine, messages only
//	PointerJumpPregelReqResp  — baseline engine in Pregel+ reqresp mode
//	                            ((id,value) replies)

// parentOf returns the initial parent of id in the forest graph (itself
// if it is a root).
func parentOf(g *graph.Graph, id graph.VertexID) graph.VertexID {
	nbrs := g.Neighbors(id)
	if len(nbrs) == 0 {
		return id
	}
	return nbrs[0]
}

// PointerJumpChannel runs pointer jumping with standard channels: a
// request DirectMessage carrying the requester id and a reply
// DirectMessage carrying the parent's pointer.
func PointerJumpChannel(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		d := make([]graph.VertexID, w.LocalCount())
		states[w.WorkerID()] = d
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, vidCodec, d) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, vidCodec, d) },
		)
		reqCh := channel.NewDirectMessage[uint32](w, ser.Uint32Codec{})
		repCh := channel.NewDirectMessage[uint32](w, ser.Uint32Codec{})
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			step := w.Superstep()
			if step == 1 {
				d[li] = parentOf(g, id)
				if d[li] == id {
					w.VoteToHalt() // already a root
					return
				}
				reqCh.SendMessage(d[li], id)
				return
			}
			if step%2 == 0 {
				// even steps: serve requests (a vertex may be woken only
				// to reply), and otherwise wait for our own reply
				for _, requester := range reqCh.Messages(li) {
					repCh.SendMessage(requester, d[li])
				}
				w.VoteToHalt() // reply (next odd step) reactivates us
				return
			}
			// odd steps: consume the reply
			for _, gp := range repCh.Messages(li) {
				if gp == d[li] {
					// parent's pointer equals our pointer: parent is root
					w.VoteToHalt()
					return
				}
				d[li] = gp
			}
			reqCh.SendMessage(d[li], id)
		}
	})
	return gather(part, states), met, err
}

// PointerJumpReqResp runs pointer jumping with the RequestRespond
// channel: one superstep per jump.
func PointerJumpReqResp(g *graph.Graph, opts Options) ([]graph.VertexID, engine.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		d := make([]graph.VertexID, w.LocalCount())
		states[w.WorkerID()] = d
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, vidCodec, d) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, vidCodec, d) },
		)
		var rr *channel.RequestRespond[uint32]
		rr = channel.NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 {
			return d[li]
		})
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				d[li] = parentOf(g, id)
				if d[li] == id {
					w.VoteToHalt()
					return
				}
				rr.AddRequest(d[li])
				return
			}
			gp, ok := rr.Respond()
			if !ok {
				w.VoteToHalt()
				return
			}
			if gp == d[li] {
				w.VoteToHalt()
				return
			}
			d[li] = gp
			rr.AddRequest(d[li])
		}
	})
	return gather(part, states), met, err
}

// PointerJumpPregel runs pointer jumping on the baseline engine with
// explicit request and reply messages sharing the monolithic uint32
// message type (phase disambiguated by superstep parity).
func PointerJumpPregel(g *graph.Graph, opts Options) ([]graph.VertexID, pregel.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	cfg := pregel.Config[uint32, struct{}, struct{}]{
		Part:          part,
		MaxSupersteps: opts.MaxSupersteps,
		Cancel:        opts.Cancel,
		Fabric:        opts.Fabric,
		Observer:      opts.Observer,
		Checkpoint:    opts.Checkpoint,
		MsgCodec:      ser.Uint32Codec{},
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[uint32, struct{}, struct{}]) {
		d := make([]graph.VertexID, w.LocalCount())
		states[w.WorkerID()] = d
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, vidCodec, d) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, vidCodec, d) },
		)
		w.Compute = func(li int, msgs []uint32) {
			id := w.GlobalID(li)
			step := w.Superstep()
			if step == 1 {
				d[li] = parentOf(g, id)
				if d[li] == id {
					w.VoteToHalt()
					return
				}
				w.Send(d[li], id)
				return
			}
			if step%2 == 0 {
				for _, requester := range msgs {
					w.Send(requester, d[li])
				}
				w.VoteToHalt()
				return
			}
			for _, gp := range msgs {
				if gp == d[li] {
					w.VoteToHalt()
					return
				}
				d[li] = gp
			}
			w.Send(d[li], id)
		}
	})
	return gather(part, states), met, err
}

// PointerJumpPregelReqResp runs pointer jumping on the baseline engine
// in reqresp mode (Pregel+ style (id,value) replies).
func PointerJumpPregelReqResp(g *graph.Graph, opts Options) ([]graph.VertexID, pregel.Metrics, error) {
	part := opts.Part
	states := make([][]graph.VertexID, part.NumWorkers())
	var responder func(w *pregel.Worker[uint32, uint32, struct{}], li int) uint32
	stateOf := make([][]graph.VertexID, part.NumWorkers())
	responder = func(w *pregel.Worker[uint32, uint32, struct{}], li int) uint32 {
		return stateOf[w.WorkerID()][li]
	}
	cfg := pregel.Config[uint32, uint32, struct{}]{
		Part:          part,
		MaxSupersteps: opts.MaxSupersteps,
		Cancel:        opts.Cancel,
		Fabric:        opts.Fabric,
		Observer:      opts.Observer,
		Checkpoint:    opts.Checkpoint,
		MsgCodec:      ser.Uint32Codec{},
		RespCodec:     ser.Uint32Codec{},
		Responder:     responder,
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[uint32, uint32, struct{}]) {
		d := make([]graph.VertexID, w.LocalCount())
		states[w.WorkerID()] = d
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, vidCodec, d) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, vidCodec, d) },
		)
		stateOf[w.WorkerID()] = d
		w.Compute = func(li int, msgs []uint32) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				d[li] = parentOf(g, id)
				if d[li] == id {
					w.VoteToHalt()
					return
				}
				w.Request(d[li])
				return
			}
			gp, ok := w.Resp()
			if !ok {
				w.VoteToHalt()
				return
			}
			if gp == d[li] {
				w.VoteToHalt()
				return
			}
			d[li] = gp
			w.Request(d[li])
		}
	})
	return gather(part, states), met, err
}
