package algorithms

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// This file is the shared dispatch table: every (algorithm, engine,
// variant) triple of the reproduction behind one uniform signature, so
// the harness tables and the graphd job service run the exact same
// code paths.

// Engine selects the runtime an algorithm variant executes on.
type Engine string

const (
	// EngineChannel is the paper's channel-based engine.
	EngineChannel Engine = "channel"
	// EnginePregel is the monolithic-message baseline.
	EnginePregel Engine = "pregel"
)

// ParseEngine parses an engine name; "" defaults to the channel engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", string(EngineChannel):
		return EngineChannel, nil
	case string(EnginePregel):
		return EnginePregel, nil
	}
	return "", fmt.Errorf("algorithms: unknown engine %q (want channel or pregel)", s)
}

// Params carries the per-run knobs of the registered algorithms; zero
// values select documented defaults.
type Params struct {
	// Iterations is the superstep count for PageRank (0 = 30, the
	// paper's setting).
	Iterations int `json:"iterations,omitempty"`
	// Source is the SSSP source vertex.
	Source graph.VertexID `json:"source,omitempty"`
}

// DefaultPageRankIterations is the paper's PageRank superstep count.
const DefaultPageRankIterations = 30

// Metrics normalizes engine.Metrics and pregel.Metrics into one shape
// for tables, JSON responses, and cross-engine comparison.
type Metrics struct {
	Engine     Engine        `json:"engine"`
	Supersteps int           `json:"supersteps"`
	NetBytes   int64         `json:"net_bytes"`
	SimTime    time.Duration `json:"sim_time_ns"`
	WallTime   time.Duration `json:"wall_time_ns"`
	// Rounds is the total number of exchange rounds the fabric ran
	// (every round is one flush/deliver cycle across all workers).
	Rounds int64 `json:"rounds,omitempty"`
	// HeapAllocDelta is the number of heap bytes allocated while the
	// run was in flight, filled by the job manager from the cumulative
	// runtime/metrics counter /gc/heap/allocs:bytes read before and
	// after the run. The counter is monotonic, so GC timing can no
	// longer drive the delta negative; the residual approximation is
	// that the counter is process-wide, so allocations made by jobs
	// running concurrently in the same process are attributed here too.
	HeapAllocDelta int64 `json:"heap_alloc_delta_bytes,omitempty"`
	// WorkerWall, for distributed jobs, is each worker's wall time as
	// observed by the coordinator: job start to the arrival of the
	// partial result covering that worker, indexed by worker id. The
	// spread across workers is the straggler signal at job granularity.
	WorkerWall []time.Duration `json:"worker_wall_ns,omitempty"`
	// Placement names the vertex placement the job ran under and
	// EdgeCut its fraction of cross-worker edges (filled by the job
	// manager from the catalog view).
	Placement string  `json:"placement,omitempty"`
	EdgeCut   float64 `json:"edge_cut,omitempty"`
	// Epoch is the live-dataset epoch the job executed against (0 for
	// immutable datasets; filled by the job manager).
	Epoch uint64 `json:"epoch,omitempty"`
}

func metricsFromChannel(m engine.Metrics) Metrics {
	return Metrics{Engine: EngineChannel, Supersteps: m.Supersteps,
		NetBytes: m.Comm.NetworkBytes, Rounds: m.Comm.Rounds,
		SimTime: m.SimTime(), WallTime: m.WallTime}
}

func metricsFromPregel(m pregel.Metrics) Metrics {
	return Metrics{Engine: EnginePregel, Supersteps: m.Supersteps,
		NetBytes: m.Comm.NetworkBytes, Rounds: m.Comm.Rounds,
		SimTime: m.SimTime(), WallTime: m.WallTime}
}

// Result is the normalized output of a registry run: exactly one of the
// payload fields is set, per the spec's Kind.
type Result struct {
	Labels  []graph.VertexID `json:"labels,omitempty"`
	Ranks   []float64        `json:"ranks,omitempty"`
	Dists   []int64          `json:"dists,omitempty"`
	MSF     *MSFResult       `json:"msf,omitempty"`
	Metrics Metrics          `json:"metrics"`
}

// Kind reports which payload field is populated: "labels", "ranks",
// "dists" or "msf".
func (r *Result) Kind() string {
	switch {
	case r.Ranks != nil:
		return "ranks"
	case r.Dists != nil:
		return "dists"
	case r.MSF != nil:
		return "msf"
	default:
		return "labels"
	}
}

// RunFunc is the uniform signature every registered variant is adapted
// to.
type RunFunc func(g *graph.Graph, opts Options, p Params) (*Result, error)

// Spec describes one algorithm: its input requirements and the variants
// available per engine.
type Spec struct {
	Name        string
	Description string
	// NeedsUndirected means the algorithm assumes both orientations of
	// every edge are stored (run directed inputs through
	// graph.Undirectify first).
	NeedsUndirected bool
	// NeedsWeights means the algorithm reads edge weights.
	NeedsWeights bool
	// HasIterations/HasSource advertise which Params fields apply.
	HasIterations bool
	HasSource     bool

	variants map[Engine]map[string]RunFunc
}

// DefaultVariant is the variant name every algorithm registers on every
// supported engine.
const DefaultVariant = "basic"

// Engines lists the engines this algorithm runs on, sorted.
func (s *Spec) Engines() []Engine {
	out := make([]Engine, 0, len(s.variants))
	for e := range s.variants {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Variants lists the variant names available on eng, sorted.
func (s *Spec) Variants(eng Engine) []string {
	vs := s.variants[eng]
	out := make([]string, 0, len(vs))
	for v := range vs {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// lookupVariant resolves (eng, variant) to its RunFunc; variant ""
// selects DefaultVariant.
func (s *Spec) lookupVariant(eng Engine, variant string) (RunFunc, error) {
	if variant == "" {
		variant = DefaultVariant
	}
	byEngine, ok := s.variants[eng]
	if !ok {
		return nil, fmt.Errorf("algorithms: %s does not run on engine %q", s.Name, eng)
	}
	fn, ok := byEngine[variant]
	if !ok {
		return nil, fmt.Errorf("algorithms: %s/%s has no variant %q (have %v)",
			s.Name, eng, variant, s.Variants(eng))
	}
	return fn, nil
}

// CheckVariant reports whether (eng, variant) dispatches, without
// running anything — the submit-time validation of the job service.
func (s *Spec) CheckVariant(eng Engine, variant string) error {
	_, err := s.lookupVariant(eng, variant)
	return err
}

// Run dispatches to the (eng, variant) implementation; variant ""
// selects DefaultVariant.
func (s *Spec) Run(eng Engine, variant string, g *graph.Graph, opts Options, p Params) (*Result, error) {
	fn, err := s.lookupVariant(eng, variant)
	if err != nil {
		return nil, err
	}
	return fn(g, opts, p)
}

// adapters from the concrete function signatures to RunFunc

func labelsC(f func(*graph.Graph, Options) ([]graph.VertexID, engine.Metrics, error)) RunFunc {
	return func(g *graph.Graph, opts Options, _ Params) (*Result, error) {
		labels, m, err := f(g, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Labels: labels, Metrics: metricsFromChannel(m)}, nil
	}
}

func labelsP(f func(*graph.Graph, Options) ([]graph.VertexID, pregel.Metrics, error)) RunFunc {
	return func(g *graph.Graph, opts Options, _ Params) (*Result, error) {
		labels, m, err := f(g, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Labels: labels, Metrics: metricsFromPregel(m)}, nil
	}
}

func ranksC(f func(*graph.Graph, Options, int) ([]float64, engine.Metrics, error)) RunFunc {
	return func(g *graph.Graph, opts Options, p Params) (*Result, error) {
		ranks, m, err := f(g, opts, iterationsOrDefault(p))
		if err != nil {
			return nil, err
		}
		return &Result{Ranks: ranks, Metrics: metricsFromChannel(m)}, nil
	}
}

func ranksP(f func(*graph.Graph, Options, int) ([]float64, pregel.Metrics, error)) RunFunc {
	return func(g *graph.Graph, opts Options, p Params) (*Result, error) {
		ranks, m, err := f(g, opts, iterationsOrDefault(p))
		if err != nil {
			return nil, err
		}
		return &Result{Ranks: ranks, Metrics: metricsFromPregel(m)}, nil
	}
}

func distsC(f func(*graph.Graph, graph.VertexID, Options) ([]int64, engine.Metrics, error)) RunFunc {
	return func(g *graph.Graph, opts Options, p Params) (*Result, error) {
		dists, m, err := f(g, p.Source, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Dists: dists, Metrics: metricsFromChannel(m)}, nil
	}
}

func distsP(f func(*graph.Graph, graph.VertexID, Options) ([]int64, pregel.Metrics, error)) RunFunc {
	return func(g *graph.Graph, opts Options, p Params) (*Result, error) {
		dists, m, err := f(g, p.Source, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Dists: dists, Metrics: metricsFromPregel(m)}, nil
	}
}

func msfC(f func(*graph.Graph, Options) (MSFResult, engine.Metrics, error)) RunFunc {
	return func(g *graph.Graph, opts Options, _ Params) (*Result, error) {
		res, m, err := f(g, opts)
		if err != nil {
			return nil, err
		}
		return &Result{MSF: &res, Metrics: metricsFromChannel(m)}, nil
	}
}

func msfP(f func(*graph.Graph, Options) (MSFResult, pregel.Metrics, error)) RunFunc {
	return func(g *graph.Graph, opts Options, _ Params) (*Result, error) {
		res, m, err := f(g, opts)
		if err != nil {
			return nil, err
		}
		return &Result{MSF: &res, Metrics: metricsFromPregel(m)}, nil
	}
}

func iterationsOrDefault(p Params) int {
	if p.Iterations > 0 {
		return p.Iterations
	}
	return DefaultPageRankIterations
}

var registry = map[string]*Spec{
	"pagerank": {
		Name:          "pagerank",
		Description:   "PageRank, fixed iteration count",
		HasIterations: true,
		variants: map[Engine]map[string]RunFunc{
			EngineChannel: {
				DefaultVariant: ranksC(PageRankChannel),
				"scatter":      ranksC(PageRankScatter),
				"mirror":       ranksC(PageRankMirror),
			},
			EnginePregel: {
				DefaultVariant: ranksP(PageRankPregel),
				"ghost":        ranksP(PageRankPregelGhost),
			},
		},
	},
	"sssp": {
		Name:         "sssp",
		Description:  "single-source shortest paths (non-negative weights)",
		NeedsWeights: true,
		HasSource:    true,
		variants: map[Engine]map[string]RunFunc{
			EngineChannel: {
				DefaultVariant: distsC(SSSPChannel),
				"propagation":  distsC(SSSPPropagation),
			},
			EnginePregel: {
				DefaultVariant: distsP(SSSPPregel),
			},
		},
	},
	"wcc": {
		Name:            "wcc",
		Description:     "weakly connected components (hash-min HCC)",
		NeedsUndirected: true,
		variants: map[Engine]map[string]RunFunc{
			EngineChannel: {
				DefaultVariant: labelsC(WCCChannel),
				"propagation":  labelsC(WCCPropagation),
				"blogel":       labelsC(WCCBlogel),
			},
			EnginePregel: {
				DefaultVariant: labelsP(WCCPregel),
			},
		},
	},
	"pointerjump": {
		Name:        "pointerjump",
		Description: "pointer jumping / list ranking on a parent-pointer forest",
		variants: map[Engine]map[string]RunFunc{
			EngineChannel: {
				DefaultVariant: labelsC(PointerJumpChannel),
				"reqresp":      labelsC(PointerJumpReqResp),
			},
			EnginePregel: {
				DefaultVariant: labelsP(PointerJumpPregel),
				"reqresp":      labelsP(PointerJumpPregelReqResp),
			},
		},
	},
	"sv": {
		Name:            "sv",
		Description:     "Shiloach-Vishkin connected components",
		NeedsUndirected: true,
		variants: map[Engine]map[string]RunFunc{
			EngineChannel: {
				DefaultVariant: labelsC(SVChannel),
				"reqresp":      labelsC(SVReqResp),
				"scatter":      labelsC(SVScatter),
				"both":         labelsC(SVBoth),
			},
			EnginePregel: {
				DefaultVariant: labelsP(SVPregel),
				"reqresp":      labelsP(SVPregelReqResp),
			},
		},
	},
	"scc": {
		Name:        "scc",
		Description: "strongly connected components (Min-Label)",
		variants: map[Engine]map[string]RunFunc{
			EngineChannel: {
				DefaultVariant: labelsC(SCCChannel),
				"propagation":  labelsC(SCCPropagation),
			},
			EnginePregel: {
				DefaultVariant: labelsP(SCCPregel),
			},
		},
	},
	"msf": {
		Name:            "msf",
		Description:     "minimum spanning forest (Boruvka)",
		NeedsUndirected: true,
		NeedsWeights:    true,
		variants: map[Engine]map[string]RunFunc{
			EngineChannel: {
				DefaultVariant: msfC(MSFChannel),
			},
			EnginePregel: {
				DefaultVariant: msfP(MSFPregel),
			},
		},
	},
}

// aliases maps accepted request spellings onto canonical names. "cc"
// resolves to wcc (what connected-components requesters mean on general
// graphs), NOT to pointerjump, whose parent-pointer-forest precondition
// a general graph silently violates; pointerjump keeps the "pj" alias.
var aliases = map[string]string{
	"pr":         "pagerank",
	"pj":         "pointerjump",
	"cc":         "wcc",
	"components": "wcc",
}

// Lookup resolves an algorithm name (or alias) to its Spec.
func Lookup(name string) (*Spec, bool) {
	if canon, ok := aliases[name]; ok {
		name = canon
	}
	s, ok := registry[name]
	return s, ok
}

// Registry returns all specs sorted by name.
func Registry() []*Spec {
	out := make([]*Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
