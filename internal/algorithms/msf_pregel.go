package algorithms

import (
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/ser"
)

// MSFPregel runs Boruvka MSF on the baseline engine. This is the
// paper's canonical heterogeneous-message example (§V-A): the
// monolithic type must be a tagged 4-word tuple — big enough for a
// candidate edge — so every broadcast pair, every request and every
// one-word reply pays the full fat encoding, and no combiner can be
// used. Request/reply conversations additionally cost two supersteps
// each instead of the channel version's one.

type msfMTag = uint8

const (
	msfMBcast msfMTag = 1 // (id, comp)
	msfMCand  msfMTag = 2 // (w, u, v, c2)
	msfMDReq  msfMTag = 3 // (requester)
	msfMDRep  msfMTag = 4 // (droot)
	msfMJReq  msfMTag = 5 // (requester)
	msfMJRep  msfMTag = 6 // (cur)
)

// msfMMsg is the monolithic message: a tag plus four words, always
// encoded in full.
type msfMMsg struct {
	Tag        msfMTag
	A, B, C, D uint32
}

type msfMMsgCodec struct{}

func (msfMMsgCodec) Encode(b *ser.Buffer, m msfMMsg) {
	b.WriteUint8(m.Tag)
	b.WriteUint32(m.A)
	b.WriteUint32(m.B)
	b.WriteUint32(m.C)
	b.WriteUint32(m.D)
}

func (msfMMsgCodec) Decode(b *ser.Buffer) msfMMsg {
	return msfMMsg{Tag: b.ReadUint8(), A: b.ReadUint32(), B: b.ReadUint32(), C: b.ReadUint32(), D: b.ReadUint32()}
}

// msfPAgg carries (selected, jumped) counters.
type msfPAgg struct{ Sel, Jump int64 }

type msfPAggCodec struct{}

func (msfPAggCodec) Encode(b *ser.Buffer, v msfPAgg) {
	b.WriteVarint(v.Sel)
	b.WriteVarint(v.Jump)
}

func (msfPAggCodec) Decode(b *ser.Buffer) msfPAgg {
	return msfPAgg{Sel: b.ReadVarint(), Jump: b.ReadVarint()}
}

func msfPAggSum(a, b msfPAgg) msfPAgg { return msfPAgg{Sel: a.Sel + b.Sel, Jump: a.Jump + b.Jump} }

type msfPPhase uint8

const (
	msfPBcast msfPPhase = iota
	msfPCand
	msfPSelect
	msfPDServe
	msfPResolve
	msfPJServe
	msfPJApply
)

// MSFPregel runs the baseline Boruvka MSF on an undirected weighted
// graph.
func MSFPregel(g *graph.Graph, opts Options) (MSFResult, pregel.Metrics, error) {
	part := opts.Part
	compStates := make([][]graph.VertexID, part.NumWorkers())
	edgeStates := make([][]graph.Edge, part.NumWorkers())
	cfg := pregel.Config[msfMMsg, struct{}, msfPAgg]{
		Part:          part,
		Frags:         opts.fragments(g),
		MaxSupersteps: opts.MaxSupersteps,
		Cancel:        opts.Cancel,
		Fabric:        opts.Fabric,
		Observer:      opts.Observer,
		Checkpoint:    opts.Checkpoint,
		MsgCodec:      msfMMsgCodec{},
		AggCombine:    msfPAggSum,
		AggCodec:      msfPAggCodec{},
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[msfMMsg, struct{}, msfPAgg]) {
		f := w.Frag()
		n := w.LocalCount()
		comp := make([]graph.VertexID, n)
		cur := make([]graph.VertexID, n)
		droot := make([]graph.VertexID, n)
		pend := make([]msfCandMsg, n)
		nbrComp := make([]map[graph.VertexID]graph.VertexID, n)
		compStates[w.WorkerID()] = comp

		phase := msfPBcast
		phaseStart := 1
		phaseStep := 0
		stopping := false

		w.Checkpoint(func(buf *ser.Buffer) {
			msfSaveCore(buf, comp, cur, droot, pend, nbrComp, edgeStates[w.WorkerID()])
			buf.WriteUint8(uint8(phase))
			buf.WriteVarint(int64(phaseStart))
			buf.WriteVarint(int64(phaseStep))
			buf.WriteBool(stopping)
		}, func(buf *ser.Buffer) {
			edgeStates[w.WorkerID()] = msfLoadCore(buf, comp, cur, droot, pend, nbrComp)
			phase = msfPPhase(buf.ReadUint8())
			phaseStart = int(buf.ReadVarint())
			phaseStep = int(buf.ReadVarint())
			stopping = buf.ReadBool()
		})

		evalPhase := func() {
			step := w.Superstep()
			if phaseStep == step {
				return
			}
			phaseStep = step
			res := w.AggResult()
			enter := func(p msfPPhase) { phase, phaseStart = p, step }
			switch phase {
			case msfPBcast:
				if step > phaseStart {
					enter(msfPCand)
				}
			case msfPCand:
				enter(msfPSelect)
			case msfPSelect:
				enter(msfPDServe)
				if res.Sel == 0 {
					stopping = true
					w.RequestStop()
				}
			case msfPDServe:
				enter(msfPResolve)
			case msfPResolve:
				enter(msfPJServe)
			case msfPJServe:
				enter(msfPJApply)
			case msfPJApply:
				if res.Jump == 0 {
					enter(msfPBcast)
				} else {
					enter(msfPJServe)
				}
			}
		}

		w.Compute = func(li int, msgs []msfMMsg) {
			evalPhase()
			if stopping {
				w.VoteToHalt()
				return
			}
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				comp[li] = id
				cur[li] = id
			}
			switch phase {
			case msfPBcast:
				comp[li] = cur[li]
				for _, a := range f.Neighbors(li) {
					w.SendAddr(a, msfMMsg{Tag: msfMBcast, A: uint32(id), B: comp[li]})
				}
			case msfPCand:
				nc := nbrComp[li]
				if nc == nil {
					nc = make(map[graph.VertexID]graph.VertexID)
					nbrComp[li] = nc
				}
				for _, m := range msgs {
					if m.Tag == msfMBcast {
						nc[m.A] = m.B
					}
				}
				best := msfCandMsg{}
				ws := g.NeighborWeights(id)
				for i, v := range g.Neighbors(id) {
					c2, ok := nc[v]
					if !ok || c2 == comp[li] {
						continue
					}
					best = msfCandMin(best, msfCandMsg{W: ws[i], U: id, V: v, C2: c2, Valid: true})
				}
				if best.Valid {
					w.Send(comp[li], msfMMsg{Tag: msfMCand, A: uint32(best.W), B: best.U, C: best.V, D: best.C2})
				}
			case msfPSelect:
				droot[li] = comp[li]
				pend[li].Valid = false
				if id == comp[li] {
					best := msfCandMsg{}
					for _, m := range msgs {
						if m.Tag == msfMCand {
							best = msfCandMin(best, msfCandMsg{W: int32(m.A), U: m.B, V: m.C, C2: m.D, Valid: true})
						}
					}
					if best.Valid {
						droot[li] = best.C2
						pend[li] = best
						w.Aggregate(msfPAgg{Sel: 1})
						w.Send(best.C2, msfMMsg{Tag: msfMDReq, A: uint32(id)})
					}
				}
			case msfPDServe:
				for _, m := range msgs {
					if m.Tag == msfMDReq {
						w.Send(m.A, msfMMsg{Tag: msfMDRep, A: uint32(droot[li])})
					}
				}
			case msfPResolve:
				if id == comp[li] && pend[li].Valid {
					gp := graph.VertexID(0xFFFFFFFF)
					for _, m := range msgs {
						if m.Tag == msfMDRep {
							gp = m.A
						}
					}
					countEdge := true
					if gp == id {
						if id < droot[li] {
							droot[li] = id
						} else {
							countEdge = false
						}
					}
					if countEdge {
						e := graph.Edge{Src: pend[li].U, Dst: pend[li].V, Weight: pend[li].W}
						edgeStates[w.WorkerID()] = append(edgeStates[w.WorkerID()], e)
					}
				}
				if id == comp[li] {
					cur[li] = droot[li]
				} else {
					cur[li] = comp[li]
				}
				w.Send(cur[li], msfMMsg{Tag: msfMJReq, A: uint32(id)})
			case msfPJServe:
				for _, m := range msgs {
					if m.Tag == msfMJReq {
						w.Send(m.A, msfMMsg{Tag: msfMJRep, A: uint32(cur[li])})
					}
				}
			case msfPJApply:
				for _, m := range msgs {
					if m.Tag == msfMJRep && graph.VertexID(m.A) != cur[li] {
						cur[li] = m.A
						w.Aggregate(msfPAgg{Jump: 1})
					}
				}
				w.Send(cur[li], msfMMsg{Tag: msfMJReq, A: uint32(id)})
			}
		}
	})
	res := MSFResult{Comp: gather(part, compStates)}
	for _, es := range edgeStates {
		for _, e := range es {
			res.Edges = append(res.Edges, e)
			res.Weight += int64(e.Weight)
		}
	}
	return res, met, err
}
