package algorithms

import (
	"math"
	"repro/internal/ckpt"

	"repro/internal/channel"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ser"
)

// Single-source shortest paths on a non-negatively weighted directed
// graph. Unreachable vertices report math.MaxInt64.
//
//	SSSPChannel      — classic Pregel SSSP: min-combined distance
//	                   messages, one relaxation wave per superstep
//	SSSPPropagation  — the weighted Propagation channel relaxes to a
//	                   global fixpoint within one superstep (the full
//	                   Fig. 7 model with the edge transform f)

// SSSPChannel runs Bellman-Ford-style SSSP with a CombinedMessage
// channel.
func SSSPChannel(g *graph.Graph, src graph.VertexID, opts Options) ([]int64, engine.Metrics, error) {
	part := opts.Part
	states := make([][]int64, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		dist := make([]int64, w.LocalCount())
		states[w.WorkerID()] = dist
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, ser.Int64Codec{}, dist) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, ser.Int64Codec{}, dist) },
		)
		msg := channel.NewCombinedMessage[int64](w, ser.Int64Codec{}, minI64)
		relax := func(li int) {
			ws := f.NeighborWeights(li)
			for i, a := range f.Neighbors(li) {
				msg.Send(a, dist[li]+int64(ws[i]))
			}
		}
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				if w.GlobalID(li) == src {
					dist[li] = 0
					relax(li)
				} else {
					dist[li] = math.MaxInt64
				}
				w.VoteToHalt()
				return
			}
			if m, ok := msg.Message(li); ok && m < dist[li] {
				dist[li] = m
				relax(li)
			}
			w.VoteToHalt()
		}
	})
	return gather(part, states), met, err
}

// SSSPPropagation runs SSSP on a weighted Propagation channel: the
// distance labels relax to the global fixpoint within superstep 1's
// exchange rounds.
func SSSPPropagation(g *graph.Graph, src graph.VertexID, opts Options) ([]int64, engine.Metrics, error) {
	part := opts.Part
	states := make([][]int64, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		dist := make([]int64, w.LocalCount())
		states[w.WorkerID()] = dist
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, ser.Int64Codec{}, dist) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, ser.Int64Codec{}, dist) },
		)
		prop := channel.NewWeightedPropagation[int64](w, ser.Int64Codec{}, minI64,
			func(m int64, weight int32) int64 { return m + int64(weight) })
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				if li == 0 {
					prop.UseFragment(f) // weighted adjacency, registered once
				}
				if w.GlobalID(li) == src {
					prop.SetValue(0)
				}
				return
			}
			if v, ok := prop.Value(li); ok {
				dist[li] = v
			} else {
				dist[li] = math.MaxInt64
			}
			w.VoteToHalt()
		}
	})
	return gather(part, states), met, err
}
