package algorithms

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/graph"
	"repro/internal/partition"
)

// sameResult compares two runs' payloads for bit-identical equality —
// the recovery contract is that a restored run is indistinguishable
// from an uninterrupted one.
func sameResult(t *testing.T, tag string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Labels, got.Labels) {
		t.Fatalf("%s: labels diverge", tag)
	}
	if !reflect.DeepEqual(want.Ranks, got.Ranks) {
		t.Fatalf("%s: ranks diverge", tag)
	}
	if !reflect.DeepEqual(want.Dists, got.Dists) {
		t.Fatalf("%s: dists diverge", tag)
	}
	if (want.MSF == nil) != (got.MSF == nil) {
		t.Fatalf("%s: msf presence diverges", tag)
	}
	if want.MSF != nil && !reflect.DeepEqual(*want.MSF, *got.MSF) {
		t.Fatalf("%s: msf diverges:\nwant %+v\ngot  %+v", tag, *want.MSF, *got.MSF)
	}
}

// TestCheckpointRestoreMatchesCleanRun runs every registered
// (algorithm, engine, variant) triple three ways — clean, saving a
// checkpoint every superstep, and restored from each cut that survives
// pruning — and demands bit-identical results throughout.
func TestCheckpointRestoreMatchesCleanRun(t *testing.T) {
	directed := graph.SocialRMAT(7, 3, 42)
	undirected := graph.Undirectify(directed)
	weighted := graph.Undirectify(graph.RMAT(7, 4, 11,
		graph.RMATOptions{Weighted: true, MaxWeight: 50, NoSelfLoops: true}))

	for _, name := range []string{"pagerank", "sssp", "wcc", "pointerjump", "sv", "scc", "msf"} {
		spec, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		g := directed
		switch {
		case spec.NeedsWeights:
			g = weighted
		case spec.NeedsUndirected:
			g = undirected
		}
		params := Params{Iterations: 10, Source: 3}
		for _, eng := range spec.Engines() {
			for _, variant := range spec.Variants(eng) {
				t.Run(fmt.Sprintf("%s/%s/%s", name, eng, variant), func(t *testing.T) {
					part := partition.MustHash(g.NumVertices(), 4)
					opts := Options{Part: part, MaxSupersteps: 200000}
					want, err := spec.Run(eng, variant, g, opts, params)
					if err != nil {
						t.Fatal(err)
					}

					store := ckpt.NewDir(t.TempDir())
					saveOpts := opts
					saveOpts.Checkpoint = &ckpt.Hook{Store: store, Job: "t", Interval: 1}
					got, err := spec.Run(eng, variant, g, saveOpts, params)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, "checkpointing on", want, got)

					latest, err := store.LatestComplete("t", part.NumWorkers())
					if err != nil {
						t.Fatal(err)
					}
					if latest == 0 {
						t.Fatal("no complete checkpoint was saved")
					}
					// Saving at interval 1 prunes as it goes: after the
					// run only the last two cuts may remain, so early
					// supersteps must be gone (disk stays bounded) and
					// both surviving cuts must restore.
					if latest > 2 {
						if _, err := store.Get("t", 1, 0); err == nil {
							t.Fatalf("superstep 1 survived pruning (latest %d)", latest)
						}
					}
					steps := []int{latest}
					if prev := latest - 1; prev > 0 {
						if _, err := store.Get("t", prev, 0); err == nil {
							steps = append(steps, prev)
						}
					}
					for _, s := range steps {
						restOpts := opts
						restOpts.Checkpoint = &ckpt.Hook{Store: store, Job: "t", Restore: s}
						res, err := spec.Run(eng, variant, g, restOpts, params)
						if err != nil {
							t.Fatalf("restore from superstep %d: %v", s, err)
						}
						sameResult(t, fmt.Sprintf("restored from superstep %d/%d", s, latest), want, res)
					}
				})
			}
		}
	}
}

// TestCheckpointRestoreRejectsWrongShape pins the defensive path: a
// checkpoint cut under one partition must not silently restore under
// another.
func TestCheckpointRestoreRejectsWrongShape(t *testing.T) {
	g := graph.Undirectify(graph.SocialRMAT(6, 3, 7))
	spec, _ := Lookup("wcc")
	store := ckpt.NewDir(t.TempDir())

	opts := Options{Part: partition.MustHash(g.NumVertices(), 4), MaxSupersteps: 200000,
		Checkpoint: &ckpt.Hook{Store: store, Job: "t", Interval: 1}}
	if _, err := spec.Run(EngineChannel, "", g, opts, Params{}); err != nil {
		t.Fatal(err)
	}
	latest, err := store.LatestComplete("t", 4)
	if err != nil || latest == 0 {
		t.Fatalf("no checkpoint: %d, %v", latest, err)
	}

	// same worker count, different partition shape → the per-worker
	// vertex counts change and the restore must fail loudly
	bad := Options{Part: partition.MustHash(g.NumVertices(), 2), MaxSupersteps: 200000,
		Checkpoint: &ckpt.Hook{Store: store, Job: "t", Restore: latest}}
	if _, err := spec.Run(EngineChannel, "", g, bad, Params{}); err == nil {
		t.Fatal("expected restore error under a different partition")
	}

	// missing superstep → fail, not silently start fresh
	gone := Options{Part: partition.MustHash(g.NumVertices(), 4), MaxSupersteps: 200000,
		Checkpoint: &ckpt.Hook{Store: store, Job: "t", Restore: latest + 7}}
	if _, err := spec.Run(EngineChannel, "", g, gone, Params{}); err == nil {
		t.Fatal("expected restore error for a missing checkpoint")
	}
}
