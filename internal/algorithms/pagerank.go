package algorithms

import (
	"repro/internal/channel"
	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/ser"
)

// PageRank reproduces the paper's running example (Fig. 1): `iterations`
// rounds of the 0.85-damped update with a sink-mass aggregator for dead
// ends. Four variants are provided, matching Table V (top):
//
//	PageRankChannel        — CombinedMessage + Aggregator (Fig. 1 verbatim)
//	PageRankScatter        — ScatterCombine + Aggregator (the 5-line change of §III-B)
//	PageRankPregel         — baseline engine, sum combiner
//	PageRankPregelGhost    — baseline engine, ghost/mirroring mode

// PageRankChannel runs PageRank on the channel engine with the standard
// CombinedMessage channel, exactly as in Fig. 1 of the paper.
func PageRankChannel(g *graph.Graph, opts Options, iterations int) ([]float64, engine.Metrics, error) {
	part := opts.Part
	states := make([][]float64, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		pr := make([]float64, w.LocalCount())
		states[w.WorkerID()] = pr
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, ser.Float64Codec{}, pr) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, ser.Float64Codec{}, pr) },
		)
		msg := channel.NewCombinedMessage[float64](w, ser.Float64Codec{}, sumF64)
		agg := channel.NewAggregator[float64](w, ser.Float64Codec{}, sumF64, 0)
		n := float64(w.NumVertices())
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				pr[li] = 1.0 / n
			} else {
				s := agg.Result() / n
				sum, _ := msg.Message(li)
				pr[li] = 0.15/n + 0.85*(sum+s)
			}
			if w.Superstep() <= iterations {
				nbrs := f.Neighbors(li)
				if len(nbrs) > 0 {
					share := pr[li] / float64(len(nbrs))
					for _, a := range nbrs {
						msg.Send(a, share)
					}
				} else {
					agg.Add(pr[li])
				}
			} else {
				w.VoteToHalt()
			}
		}
	})
	return gather(part, states), met, err
}

// PageRankScatter is PageRankChannel with the message channel swapped
// for a ScatterCombine channel — the static messaging pattern
// optimization of §IV-C1.
func PageRankScatter(g *graph.Graph, opts Options, iterations int) ([]float64, engine.Metrics, error) {
	part := opts.Part
	states := make([][]float64, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		pr := make([]float64, w.LocalCount())
		states[w.WorkerID()] = pr
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, ser.Float64Codec{}, pr) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, ser.Float64Codec{}, pr) },
		)
		msg := channel.NewScatterCombine[float64](w, ser.Float64Codec{}, sumF64)
		agg := channel.NewAggregator[float64](w, ser.Float64Codec{}, sumF64, 0)
		n := float64(w.NumVertices())
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				pr[li] = 1.0 / n
				if li == 0 {
					msg.Grow(f.NumEdges()) // exact-capacity registration
				}
				for _, a := range f.Neighbors(li) {
					msg.AddAddr(a)
				}
			} else {
				s := agg.Result() / n
				sum, _ := msg.Message(li)
				pr[li] = 0.15/n + 0.85*(sum+s)
			}
			if w.Superstep() <= iterations {
				deg := f.OutDegree(li)
				if deg > 0 {
					msg.SetMessage(pr[li] / float64(deg))
				} else {
					agg.Add(pr[li])
				}
			} else {
				w.VoteToHalt()
			}
		}
	})
	return gather(part, states), met, err
}

// PageRankMirror runs PageRank with the Mirror extension channel
// (sender-side combining for hubs, threshold 16) — ghost mode as a
// composable channel rather than an engine switch.
func PageRankMirror(g *graph.Graph, opts Options, iterations int) ([]float64, engine.Metrics, error) {
	part := opts.Part
	states := make([][]float64, part.NumWorkers())
	met, err := engine.Run(engine.Config{Part: part, Frags: opts.fragments(g), MaxSupersteps: opts.MaxSupersteps, Cancel: opts.Cancel, Fabric: opts.Fabric, Observer: opts.Observer, Checkpoint: opts.Checkpoint}, func(w *engine.Worker) {
		f := w.Frag()
		pr := make([]float64, w.LocalCount())
		states[w.WorkerID()] = pr
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, ser.Float64Codec{}, pr) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, ser.Float64Codec{}, pr) },
		)
		msg := channel.NewMirror[float64](w, ser.Float64Codec{}, sumF64, 16)
		agg := channel.NewAggregator[float64](w, ser.Float64Codec{}, sumF64, 0)
		n := float64(w.NumVertices())
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				pr[li] = 1.0 / n
				for _, a := range f.Neighbors(li) {
					msg.AddAddr(a)
				}
			} else {
				s := agg.Result() / n
				sum, _ := msg.Message(li)
				pr[li] = 0.15/n + 0.85*(sum+s)
			}
			if w.Superstep() <= iterations {
				deg := f.OutDegree(li)
				if deg > 0 {
					msg.SetMessage(pr[li] / float64(deg))
				} else {
					agg.Add(pr[li])
				}
			} else {
				w.VoteToHalt()
			}
		}
	})
	return gather(part, states), met, err
}

// PageRankPregel runs PageRank on the baseline engine (Pregel+ basic
// with the sum combiner).
func PageRankPregel(g *graph.Graph, opts Options, iterations int) ([]float64, pregel.Metrics, error) {
	return pageRankPregel(g, opts, iterations, 0)
}

// PageRankPregelGhost runs PageRank on the baseline engine in ghost
// (mirroring) mode with the paper's threshold of 16.
func PageRankPregelGhost(g *graph.Graph, opts Options, iterations int) ([]float64, pregel.Metrics, error) {
	return pageRankPregel(g, opts, iterations, 16)
}

func pageRankPregel(g *graph.Graph, opts Options, iterations, ghostThreshold int) ([]float64, pregel.Metrics, error) {
	part := opts.Part
	states := make([][]float64, part.NumWorkers())
	cfg := pregel.Config[float64, struct{}, float64]{
		Part:           part,
		Frags:          opts.fragments(g),
		MaxSupersteps:  opts.MaxSupersteps,
		Cancel:         opts.Cancel,
		Fabric:         opts.Fabric,
		Observer:       opts.Observer,
		Checkpoint:     opts.Checkpoint,
		MsgCodec:       ser.Float64Codec{},
		Combiner:       sumF64,
		AggCombine:     sumF64,
		AggCodec:       ser.Float64Codec{},
		GhostThreshold: ghostThreshold,
	}
	met, err := pregel.Run(cfg, func(w *pregel.Worker[float64, struct{}, float64]) {
		f := w.Frag()
		pr := make([]float64, w.LocalCount())
		states[w.WorkerID()] = pr
		w.Checkpoint(
			func(buf *ser.Buffer) { ckpt.SaveSlice(buf, ser.Float64Codec{}, pr) },
			func(buf *ser.Buffer) { ckpt.LoadSlice(buf, ser.Float64Codec{}, pr) },
		)
		n := float64(w.NumVertices())
		w.Compute = func(li int, msgs []float64) {
			if w.Superstep() == 1 {
				pr[li] = 1.0 / n
			} else {
				s := w.AggResult() / n
				sum := 0.0
				for _, m := range msgs {
					sum += m
				}
				pr[li] = 0.15/n + 0.85*(sum+s)
			}
			if w.Superstep() <= iterations {
				deg := f.OutDegree(li)
				if deg > 0 {
					share := pr[li] / float64(deg)
					if ghostThreshold > 0 {
						w.SendToNbrs(share)
					} else {
						for _, a := range f.Neighbors(li) {
							w.SendAddr(a, share)
						}
					}
				} else {
					w.Aggregate(pr[li])
				}
			} else {
				w.VoteToHalt()
			}
		}
	})
	return gather(part, states), met, err
}
