package algorithms

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/seq"
)

const testWorkers = 4

func hashOpts(g *graph.Graph) Options {
	return Options{Part: partition.MustHash(g.NumVertices(), testWorkers)}
}

func greedyOpts(g *graph.Graph) Options {
	return Options{Part: partition.MustGreedy(g, testWorkers)}
}

// --- PageRank ---

func checkPageRank(t *testing.T, name string, got []float64, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("%s: pr[%d]=%v want %v", name, i, got[i], want[i])
		}
	}
}

func TestPageRankVariantsMatchOracle(t *testing.T) {
	g := graph.RMAT(8, 6, 42, graph.RMATOptions{})
	const iters = 15
	want := seq.PageRank(g, iters)

	got, met, err := PageRankChannel(g, hashOpts(g), iters)
	if err != nil {
		t.Fatal(err)
	}
	checkPageRank(t, "channel", got, want)
	if met.Supersteps != iters+1 {
		t.Errorf("channel supersteps=%d", met.Supersteps)
	}

	got2, _, err := PageRankScatter(g, hashOpts(g), iters)
	if err != nil {
		t.Fatal(err)
	}
	checkPageRank(t, "scatter", got2, want)

	got3, _, err := PageRankPregel(g, hashOpts(g), iters)
	if err != nil {
		t.Fatal(err)
	}
	checkPageRank(t, "pregel", got3, want)

	got4, _, err := PageRankPregelGhost(g, hashOpts(g), iters)
	if err != nil {
		t.Fatal(err)
	}
	checkPageRank(t, "ghost", got4, want)

	got5, _, err := PageRankMirror(g, hashOpts(g), iters)
	if err != nil {
		t.Fatal(err)
	}
	checkPageRank(t, "mirror", got5, want)
}

func TestPageRankDeadEnds(t *testing.T) {
	// star into a sink: sink mass must be redistributed, ranks sum to 1
	edges := []graph.Edge{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0}}
	g := graph.FromEdges(4, edges, false)
	want := seq.PageRank(g, 10)
	got, _, err := PageRankChannel(g, hashOpts(g), 10)
	if err != nil {
		t.Fatal(err)
	}
	checkPageRank(t, "deadend", got, want)
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v", sum)
	}
}

// --- Pointer jumping ---

func checkRoots(t *testing.T, name string, got []graph.VertexID, want []graph.VertexID) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: root[%d]=%d want %d", name, i, got[i], want[i])
		}
	}
}

func TestPointerJumpVariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"chain", graph.Chain(500)},
		{"tree", graph.RandomTree(800, 7)},
		{"forest", graph.Forest(600, 5, 3)},
	} {
		want := seq.TreeRoots(tc.g)
		got, _, err := PointerJumpChannel(tc.g, hashOpts(tc.g))
		if err != nil {
			t.Fatal(err)
		}
		checkRoots(t, tc.name+"/channel", got, want)

		got2, _, err := PointerJumpReqResp(tc.g, hashOpts(tc.g))
		if err != nil {
			t.Fatal(err)
		}
		checkRoots(t, tc.name+"/reqresp", got2, want)

		got3, _, err := PointerJumpPregel(tc.g, hashOpts(tc.g))
		if err != nil {
			t.Fatal(err)
		}
		checkRoots(t, tc.name+"/pregel", got3, want)

		got4, _, err := PointerJumpPregelReqResp(tc.g, hashOpts(tc.g))
		if err != nil {
			t.Fatal(err)
		}
		checkRoots(t, tc.name+"/pregel-reqresp", got4, want)
	}
}

func TestPointerJumpReqRespFewerSupersteps(t *testing.T) {
	g := graph.Chain(2000)
	_, mBasic, err := PointerJumpChannel(g, hashOpts(g))
	if err != nil {
		t.Fatal(err)
	}
	_, mRR, err := PointerJumpReqResp(g, hashOpts(g))
	if err != nil {
		t.Fatal(err)
	}
	if mRR.Supersteps >= mBasic.Supersteps {
		t.Errorf("reqresp %d supersteps, basic %d", mRR.Supersteps, mBasic.Supersteps)
	}
	// Pregel+ reply format is bigger than the channel's ordered-value
	// replies for the same protocol
	_, mPRR, err := PointerJumpPregelReqResp(g, hashOpts(g))
	if err != nil {
		t.Fatal(err)
	}
	if mPRR.Comm.NetworkBytes <= mRR.Comm.NetworkBytes {
		t.Errorf("pregel reqresp bytes %d <= channel reqresp bytes %d",
			mPRR.Comm.NetworkBytes, mRR.Comm.NetworkBytes)
	}
}

// --- WCC ---

func TestWCCVariantsMatchOracle(t *testing.T) {
	g := graph.SocialRMAT(8, 3, 11)
	want := seq.ConnectedComponents(g)

	for _, tc := range []struct {
		name string
		run  func() ([]graph.VertexID, error)
	}{
		{"channel", func() ([]graph.VertexID, error) { v, _, e := WCCChannel(g, hashOpts(g)); return v, e }},
		{"prop", func() ([]graph.VertexID, error) { v, _, e := WCCPropagation(g, hashOpts(g)); return v, e }},
		{"blogel", func() ([]graph.VertexID, error) { v, _, e := WCCBlogel(g, hashOpts(g)); return v, e }},
		{"pregel", func() ([]graph.VertexID, error) { v, _, e := WCCPregel(g, hashOpts(g)); return v, e }},
		{"prop-partitioned", func() ([]graph.VertexID, error) { v, _, e := WCCPropagation(g, greedyOpts(g)); return v, e }},
		{"blogel-partitioned", func() ([]graph.VertexID, error) { v, _, e := WCCBlogel(g, greedyOpts(g)); return v, e }},
	} {
		got, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		checkRoots(t, tc.name, got, want)
	}
}

func TestWCCPropagationSuperstepAdvantage(t *testing.T) {
	// long path: hash-min needs O(n) supersteps, propagation needs 2
	g := graph.Undirectify(graph.Chain(300))
	_, mChan, err := WCCChannel(g, hashOpts(g))
	if err != nil {
		t.Fatal(err)
	}
	_, mProp, err := WCCPropagation(g, hashOpts(g))
	if err != nil {
		t.Fatal(err)
	}
	if mProp.Supersteps != 2 {
		t.Errorf("propagation supersteps=%d want 2", mProp.Supersteps)
	}
	if mChan.Supersteps < 100 {
		t.Errorf("hash-min supersteps=%d suspiciously low", mChan.Supersteps)
	}
}

// --- S-V ---

func TestSVVariantsMatchOracle(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.SocialRMAT(7, 2, 5),  // sparse
		graph.SocialRMAT(6, 12, 9), // dense
		graph.Undirectify(graph.Chain(200)),
	} {
		want := seq.ConnectedComponents(g)
		opts := hashOpts(g)
		for _, tc := range []struct {
			name string
			run  func() ([]graph.VertexID, error)
		}{
			{"basic", func() ([]graph.VertexID, error) { v, _, e := SVChannel(g, opts); return v, e }},
			{"reqresp", func() ([]graph.VertexID, error) { v, _, e := SVReqResp(g, opts); return v, e }},
			{"scatter", func() ([]graph.VertexID, error) { v, _, e := SVScatter(g, opts); return v, e }},
			{"both", func() ([]graph.VertexID, error) { v, _, e := SVBoth(g, opts); return v, e }},
			{"pregel", func() ([]graph.VertexID, error) { v, _, e := SVPregel(g, opts); return v, e }},
			{"pregel-reqresp", func() ([]graph.VertexID, error) { v, _, e := SVPregelReqResp(g, opts); return v, e }},
		} {
			got, err := tc.run()
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			checkRoots(t, tc.name, got, want)
		}
	}
}

func TestSVMessageReduction(t *testing.T) {
	// the §V-A claim: monolithic tagged messages without combiner cost
	// more bytes than the channel version
	g := graph.SocialRMAT(7, 8, 3)
	opts := hashOpts(g)
	_, mPregel, err := SVPregel(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, mChan, err := SVChannel(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, mBoth, err := SVBoth(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mChan.Comm.NetworkBytes >= mPregel.Comm.NetworkBytes {
		t.Errorf("channel bytes %d >= pregel bytes %d", mChan.Comm.NetworkBytes, mPregel.Comm.NetworkBytes)
	}
	if mBoth.Comm.NetworkBytes >= mChan.Comm.NetworkBytes {
		t.Errorf("composed bytes %d >= basic channel bytes %d", mBoth.Comm.NetworkBytes, mChan.Comm.NetworkBytes)
	}
}

// --- SSSP ---

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := graph.RMAT(8, 6, 21, graph.RMATOptions{Weighted: true, MaxWeight: 50})
	want := seq.Dijkstra(g, 0)
	got, _, err := SSSPChannel(g, 0, hashOpts(g))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sssp[%d]=%d want %d", i, got[i], want[i])
		}
	}
	got2, met, err := SSSPPropagation(g, 0, hashOpts(g))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("sssp-prop[%d]=%d want %d", i, got2[i], want[i])
		}
	}
	if met.Supersteps != 2 {
		t.Errorf("sssp-prop supersteps=%d", met.Supersteps)
	}
}

func TestSSSPGrid(t *testing.T) {
	g := graph.Grid(12, 12, 9, 4)
	want := seq.Dijkstra(g, 0)
	got, _, err := SSSPChannel(g, 0, hashOpts(g))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grid sssp[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

// --- SCC ---

func TestSCCVariantsMatchOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"random-sparse", graph.RandomDigraph(150, 220, 1)},
		{"random-dense", graph.RandomDigraph(80, 640, 2)},
		{"rmat", graph.RMAT(7, 3, 6, graph.RMATOptions{NoSelfLoops: true})},
		{"cycle", graph.FromEdges(50, cycleEdges(50), false)},
	} {
		want := seq.SCC(tc.g)
		opts := hashOpts(tc.g)
		opts.MaxSupersteps = 8000

		got, _, err := SCCChannel(tc.g, opts)
		if err != nil {
			t.Fatalf("%s channel: %v", tc.name, err)
		}
		checkRoots(t, tc.name+"/channel", got, want)

		got2, _, err := SCCPropagation(tc.g, opts)
		if err != nil {
			t.Fatalf("%s prop: %v", tc.name, err)
		}
		checkRoots(t, tc.name+"/prop", got2, want)

		got3, _, err := SCCPregel(tc.g, opts)
		if err != nil {
			t.Fatalf("%s pregel: %v", tc.name, err)
		}
		checkRoots(t, tc.name+"/pregel", got3, want)
	}
}

func cycleEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n)}
	}
	return edges
}

func TestSCCPropagationFewerSupersteps(t *testing.T) {
	g := graph.FromEdges(200, cycleEdges(200), false)
	opts := hashOpts(g)
	opts.MaxSupersteps = 8000
	_, mChan, err := SCCChannel(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, mProp, err := SCCPropagation(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mProp.Supersteps >= mChan.Supersteps {
		t.Errorf("prop supersteps %d >= channel %d", mProp.Supersteps, mChan.Supersteps)
	}
}

// --- MSF ---

func TestMSFVariantsMatchKruskal(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(10, 10, 20, 3)},
		{"social", weightedSocial(7, 4, 8)},
		{"disconnected", disconnectedWeighted()},
	} {
		wantW, wantCnt := seq.MSFWeight(tc.g)
		wantCC := seq.ConnectedComponents(tc.g)

		res, _, err := MSFChannel(tc.g, hashOpts(tc.g))
		if err != nil {
			t.Fatalf("%s channel: %v", tc.name, err)
		}
		if res.Weight != wantW || len(res.Edges) != wantCnt {
			t.Errorf("%s channel: weight=%d count=%d want %d %d", tc.name, res.Weight, len(res.Edges), wantW, wantCnt)
		}
		checkForest(t, tc.name+"/channel", tc.g, res, wantCC)

		res2, _, err := MSFPregel(tc.g, hashOpts(tc.g))
		if err != nil {
			t.Fatalf("%s pregel: %v", tc.name, err)
		}
		if res2.Weight != wantW || len(res2.Edges) != wantCnt {
			t.Errorf("%s pregel: weight=%d count=%d want %d %d", tc.name, res2.Weight, len(res2.Edges), wantW, wantCnt)
		}
		checkForest(t, tc.name+"/pregel", tc.g, res2, wantCC)
	}
}

// checkForest validates that the reported edges form a spanning forest:
// acyclic (count == n - #components) and connecting exactly the original
// components, and that Comp agrees with connectivity.
func checkForest(t *testing.T, name string, g *graph.Graph, res MSFResult, wantCC []graph.VertexID) {
	t.Helper()
	uf := seq.NewUnionFind(g.NumVertices())
	for _, e := range res.Edges {
		if !uf.Union(int(e.Src), int(e.Dst)) {
			t.Errorf("%s: edge (%d,%d) forms a cycle", name, e.Src, e.Dst)
			return
		}
	}
	// forest must connect exactly the same components
	for v := 1; v < g.NumVertices(); v++ {
		same := uf.Find(v) == uf.Find(int(wantCC[v]))
		if !same {
			t.Errorf("%s: vertex %d not connected to its component root %d", name, v, wantCC[v])
			return
		}
	}
	// Comp must be constant within components
	for v := 0; v < g.NumVertices(); v++ {
		if res.Comp[v] != res.Comp[wantCC[v]] {
			t.Errorf("%s: Comp[%d]=%d but Comp[root]=%d", name, v, res.Comp[v], res.Comp[wantCC[v]])
			return
		}
	}
}

func weightedSocial(scale, ef int, seed int64) *graph.Graph {
	g := graph.RMAT(scale, ef, seed, graph.RMATOptions{Weighted: true, MaxWeight: 30, NoSelfLoops: true})
	return graph.Undirectify(g)
}

func disconnectedWeighted() *graph.Graph {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Weight: 4}, {Src: 1, Dst: 0, Weight: 4},
		{Src: 1, Dst: 2, Weight: 2}, {Src: 2, Dst: 1, Weight: 2},
		{Src: 0, Dst: 2, Weight: 7}, {Src: 2, Dst: 0, Weight: 7},
		{Src: 4, Dst: 5, Weight: 1}, {Src: 5, Dst: 4, Weight: 1},
	}
	g := graph.FromEdges(7, edges, true)
	g.Undirected = true
	return g
}
