// Package core is the public face of the channel-based vertex-centric
// graph processing system — the paper's primary contribution. It bundles
// the BSP runtime (internal/engine) with the channel library
// (internal/channel) behind one import, so an application is written
// exactly the way the paper's Fig. 1 shows: create a worker setup
// function, allocate the channels matching the algorithm's
// communication patterns, and install a per-vertex Compute function.
//
// Standard channels (paper Table I):
//
//	NewDirectMessage    — point-to-point messages, iterator on receive
//	NewCombinedMessage  — messages combined per destination
//	NewAggregator       — global reduce, result next superstep
//
// Optimized channels (paper Table II):
//
//	NewScatterCombine   — static messaging pattern, presorted edges
//	NewRequestRespond   — deduplicated request/ordered-reply conversation
//	NewPropagation      — in-superstep asynchronous label propagation
//
// Channels compose freely: a program registers any number of channels,
// which is how multiple optimizations coexist in one algorithm (the
// paper's S-V study, §III-C). See examples/ for runnable programs.
package core

import (
	"repro/internal/channel"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/ser"
)

// Worker is the per-node runtime handle passed to setup functions.
type Worker = engine.Worker

// Config configures a job: the vertex partition, the simulated-network
// cost model, and a superstep cap.
type Config = engine.Config

// Metrics summarizes a finished run.
type Metrics = engine.Metrics

// CostModel maps communication volume to simulated network time.
type CostModel = comm.CostModel

// VertexID identifies a vertex.
type VertexID = graph.VertexID

// Combiner merges two messages for the same destination; it must be
// commutative and associative.
type Combiner[M any] = channel.Combiner[M]

// Codec encodes message values for the wire.
type Codec[T any] = ser.Codec[T]

// Run executes a job: setup is invoked once per worker to register
// channels and install Compute; Run returns when no vertex is active,
// a worker requests a stop, or MaxSupersteps is exceeded.
func Run(cfg Config, setup func(w *Worker)) (Metrics, error) {
	return engine.Run(cfg, setup)
}

// HashPartition places vertex v on worker v mod numWorkers. It errors
// when numWorkers is outside 1..65535 (the uint16 owner representation).
func HashPartition(numVertices, numWorkers int) (*partition.Partition, error) {
	return partition.Hash(numVertices, numWorkers)
}

// GreedyPartition grows locality-preserving regions by BFS (the METIS
// stand-in used for the paper's partitioned datasets). It errors when
// numWorkers is outside 1..65534.
func GreedyPartition(g *graph.Graph, numWorkers int) (*partition.Partition, error) {
	return partition.Greedy(g, numWorkers)
}

// BuildFragments pre-resolves per-worker shared-nothing fragments of g
// under p; pass them via Config.Frags and iterate Worker.Frag().
func BuildFragments(g *graph.Graph, p *partition.Partition) *frag.Fragments {
	return frag.Build(g, p)
}

// NewDirectMessage creates a point-to-point message channel.
func NewDirectMessage[M any](w *Worker, codec Codec[M]) *channel.DirectMessage[M] {
	return channel.NewDirectMessage(w, codec)
}

// NewCombinedMessage creates a combining message channel.
func NewCombinedMessage[M any](w *Worker, codec Codec[M], combine Combiner[M]) *channel.CombinedMessage[M] {
	return channel.NewCombinedMessage(w, codec, combine)
}

// NewAggregator creates a global-reduce channel with identity zero.
func NewAggregator[M any](w *Worker, codec Codec[M], combine Combiner[M], zero M) *channel.Aggregator[M] {
	return channel.NewAggregator(w, codec, combine, zero)
}

// NewScatterCombine creates the static-messaging-pattern channel.
func NewScatterCombine[M any](w *Worker, codec Codec[M], combine Combiner[M]) *channel.ScatterCombine[M] {
	return channel.NewScatterCombine(w, codec, combine)
}

// NewRequestRespond creates the request-respond channel; respond maps a
// requested vertex's local index to its response value.
func NewRequestRespond[R any](w *Worker, codec Codec[R], respond func(li int) R) *channel.RequestRespond[R] {
	return channel.NewRequestRespond(w, codec, respond)
}

// NewMirror creates the mirroring extension channel: sender-side
// combining for vertices whose degree reaches threshold (Pregel+'s
// ghost mode as a composable channel).
func NewMirror[M any](w *Worker, codec Codec[M], combine Combiner[M], threshold int) *channel.Mirror[M] {
	return channel.NewMirror(w, codec, combine, threshold)
}

// NewPropagation creates the in-superstep propagation channel.
func NewPropagation[M comparable](w *Worker, codec Codec[M], combine Combiner[M]) *channel.Propagation[M] {
	return channel.NewPropagation(w, codec, combine)
}

// NewWeightedPropagation creates a propagation channel with an edge
// transform f(value, weight) applied when a value crosses an edge.
func NewWeightedPropagation[M comparable](w *Worker, codec Codec[M], combine Combiner[M], f func(m M, weight int32) M) *channel.Propagation[M] {
	return channel.NewWeightedPropagation(w, codec, combine, f)
}
