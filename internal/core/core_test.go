package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ser"
)

// The facade test is the paper's Fig. 1 written against internal/core —
// it doubles as a compilation check that every re-exported constructor
// instantiates.

func TestFacadePageRank(t *testing.T) {
	g := graph.RMAT(7, 4, 3, graph.RMATOptions{NoSelfLoops: true})
	part, err := HashPartition(g.NumVertices(), 3)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 5
	sum := func(a, b float64) float64 { return a + b }

	pr := make([]float64, g.NumVertices())
	met, err := Run(Config{Part: part}, func(w *Worker) {
		msg := NewCombinedMessage[float64](w, ser.Float64Codec{}, sum)
		agg := NewAggregator[float64](w, ser.Float64Codec{}, sum, 0)
		n := float64(w.NumVertices())
		local := make([]float64, w.LocalCount())
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				local[li] = 1.0 / n
			} else {
				s := agg.Result() / n
				m, _ := msg.Message(li)
				local[li] = 0.15/n + 0.85*(m+s)
			}
			if w.Superstep() <= iters {
				nbrs := g.Neighbors(w.GlobalID(li))
				if len(nbrs) > 0 {
					share := local[li] / float64(len(nbrs))
					for _, v := range nbrs {
						msg.SendMessage(v, share)
					}
				} else {
					agg.Add(local[li])
				}
			} else {
				pr[w.GlobalID(li)] = local[li]
				w.VoteToHalt()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Supersteps != iters+1 {
		t.Errorf("supersteps=%d", met.Supersteps)
	}
	total := 0.0
	for _, v := range pr {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("ranks sum to %v", total)
	}
}

func TestFacadeAllChannelConstructors(t *testing.T) {
	g := graph.Undirectify(graph.Chain(10))
	part, err := GreedyPartition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	min := func(a, b uint32) uint32 {
		if a < b {
			return a
		}
		return b
	}
	_, err = Run(Config{Part: part}, func(w *Worker) {
		vals := make([]uint32, w.LocalCount())
		dm := NewDirectMessage[uint32](w, ser.Uint32Codec{})
		cm := NewCombinedMessage[uint32](w, ser.Uint32Codec{}, min)
		sc := NewScatterCombine[uint32](w, ser.Uint32Codec{}, min)
		rr := NewRequestRespond[uint32](w, ser.Uint32Codec{}, func(li int) uint32 { return vals[li] })
		pr := NewPropagation[uint32](w, ser.Uint32Codec{}, min)
		wp := NewWeightedPropagation[int64](w, ser.Int64Codec{},
			func(a, b int64) int64 {
				if a < b {
					return a
				}
				return b
			},
			func(m int64, wt int32) int64 { return m + int64(wt) })
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				vals[li] = id
				dm.SendMessage(id, 1)
				cm.SendMessage(0, id)
				for _, v := range g.Neighbors(id) {
					sc.AddEdge(v)
					pr.AddEdge(v)
					wp.AddWeightedEdge(v, 1)
				}
				sc.SetMessage(id)
				pr.SetValue(id)
				if id == 0 {
					wp.SetValue(0)
				}
				rr.AddRequest(0)
			case 2:
				if len(dm.Messages(li)) != 1 {
					t.Errorf("direct message lost")
				}
				if v, ok := rr.Respond(); !ok || v != 0 {
					t.Errorf("respond %d %v", v, ok)
				}
				if v, ok := pr.Value(li); !ok || v != 0 {
					t.Errorf("propagation %d %v", v, ok)
				}
				if v, ok := wp.Value(li); !ok || v != int64(id) {
					t.Errorf("weighted propagation %d %v", v, ok)
				}
				_, _ = sc.Message(li)
				_, _ = cm.Message(li)
				w.VoteToHalt()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
