package pregel

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/frag"
	"repro/internal/ser"
)

// snapshotCut captures this worker's state at the checkpoint cut point
// (post-compute, pre-exchange): superstep, halt vote, active bitmap, the
// algorithm's vertex state (Save closure) and the engine-private residue
// that the cut superstep's replay cannot rebuild — the per-vertex
// request stamps, which were written by Request calls during compute.
// Everything else (inboxes, asked lists, responses, aggregator gather)
// is rebuilt by replaying the saved frames. The record's Rounds is the
// configuration's fixed round count; frames are teed in as the rounds
// run, and Put happens after the last round, before the termination
// reduce.
func (w *Worker[M, R, A]) snapshotCut(twoRounds bool) *ckpt.Record {
	rec := &ckpt.Record{
		Superstep: w.superstep,
		Halt:      w.halt,
		Active:    append([]bool(nil), w.active...),
		Rounds:    1,
	}
	if twoRounds {
		rec.Rounds = 2
	}
	buf := ser.NewBuffer(4096)
	w.ckptSave(buf)
	rec.Algo = append([]byte(nil), buf.Bytes()...)
	if w.cfg.Responder != nil {
		buf.Reset()
		for _, a := range w.reqOf {
			buf.WriteUvarint(uint64(a))
		}
		for _, e := range w.reqEpoch {
			buf.WriteVarint(int64(e))
		}
		rec.Engine = append([]byte(nil), buf.Bytes()...)
	}
	return rec
}

// restoreCheckpoint loads this worker's record for hook.Restore, applies
// it, replays the cut superstep's exchange rounds locally, and
// re-crosses the superstep's termination reduce so all restoring workers
// re-enter the main loop on one consistent barrier generation. It
// reports whether the reduce said the job is already finished (the cut
// superstep was the last one — possible when a worker died after the
// checkpoint but before its result shipped).
func (w *Worker[M, R, A]) restoreCheckpoint(hook *ckpt.Hook, m int, twoRounds bool) (done bool, err error) {
	data, err := hook.Store.Get(hook.Job, hook.Restore, w.id)
	if err != nil {
		return false, err
	}
	rec, err := ckpt.Decode(data)
	if err != nil {
		return false, err
	}
	if rec.Superstep != hook.Restore {
		return false, fmt.Errorf("record is for superstep %d", rec.Superstep)
	}
	wantRounds := 1
	if twoRounds {
		wantRounds = 2
	}
	if len(rec.Active) != w.LocalCount() || len(rec.Channels) != 0 ||
		rec.Rounds != wantRounds || len(rec.Frames) != rec.Rounds*m {
		return false, fmt.Errorf("record does not match job shape (%d vertices, %d channels, %d frames/%d rounds)",
			len(rec.Active), len(rec.Channels), len(rec.Frames), rec.Rounds)
	}
	if err := w.applyAndReplay(rec, m, twoRounds); err != nil {
		return false, err
	}
	v := uint64(w.activeCount)
	if w.halt {
		v += haltStop
	}
	sum, ok := w.timedAllReduce(v)
	if !ok {
		return false, errAborted
	}
	return sum&(haltStop-1) == 0 || sum >= haltStop, nil
}

// applyAndReplay installs the record's state and replays the cut
// superstep's exchange rounds fully locally: each round serializes into
// a discard buffer (draining the staged outboxes exactly as the live
// round did) and then feeds the saved incoming frames through the
// normal decode path. The record crossed disk and process boundaries,
// so decode panics on hostile content surface as errors.
func (w *Worker[M, R, A]) applyAndReplay(rec *ckpt.Record, m int, twoRounds bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("corrupt checkpoint state: %v", r)
		}
	}()
	cfg := w.cfg
	w.superstep = rec.Superstep
	w.halt = rec.Halt
	copy(w.active, rec.Active)
	w.activeCount = 0
	for _, a := range w.active {
		if a {
			w.activeCount++
		}
	}
	w.ckptRestore(ser.FromBytes(rec.Algo))
	if cfg.Responder != nil {
		eng := ser.FromBytes(rec.Engine)
		for li := range w.reqOf {
			w.reqOf[li] = frag.Addr(eng.ReadUvarint())
		}
		for li := range w.reqEpoch {
			w.reqEpoch[li] = int32(eng.ReadVarint())
		}
		if eng.Remaining() != 0 {
			return fmt.Errorf("record engine blob has %d trailing bytes", eng.Remaining())
		}
	} else if len(rec.Engine) != 0 {
		return fmt.Errorf("record carries engine state but no Responder is configured")
	}
	if cfg.AggCombine != nil {
		// afterCompute ran before the live cut, so the gather side starts
		// the rounds zeroed.
		w.aggGathered = cfg.AggZero
		w.aggGathSet = false
	}

	scratch := ser.NewBuffer(4096)
	replayRound := func(serialize func(int, *ser.Buffer), decode func(int, *ser.Buffer), frames [][]byte) {
		for dst := 0; dst < m; dst++ {
			scratch.Reset()
			serialize(dst, scratch)
		}
		for src := 0; src < m; src++ {
			decode(src, ser.FromBytes(frames[src]))
		}
	}
	replayRound(w.serializeRound1, w.deserializeRound1, rec.Frames[:m])
	if twoRounds {
		replayRound(w.serializeRound2, w.deserializeRound2, rec.Frames[m:])
	}
	return nil
}
