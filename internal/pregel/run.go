package pregel

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/barrier"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/ser"
)

// errAborted marks a worker that stopped because a peer failed and
// aborted the shared barrier.
var errAborted = barrier.ErrAborted

// haltStop is the termination-reduce bit a worker adds when its
// algorithm called RequestStop; active vertex counts occupy the low 48
// bits (see the engine package for the overflow argument).
const haltStop = uint64(1) << 48

// run executes the worker loop; a worker that fails aborts the shared
// barrier so its peers return instead of deadlocking.
func (w *Worker[M, R, A]) run(setup func(*Worker[M, R, A]), maxSteps int) error {
	err := w.runSupersteps(setup, maxSteps)
	if err != nil && !errors.Is(err, errAborted) {
		w.job.bar.Abort()
	}
	return err
}

// runSupersteps is the per-worker superstep loop of the baseline
// engine. The wire protocol is fixed by the configuration: round 1
// carries messages, ghost broadcasts, requests and aggregator partials;
// round 2 (present iff reqresp or an aggregator is configured) carries
// responses and the aggregator result.
func (w *Worker[M, R, A]) runSupersteps(setup func(*Worker[M, R, A]), maxSteps int) error {
	j := w.job
	cfg := w.cfg
	m := w.NumWorkers()

	// allocate engine state
	n := w.LocalCount()
	w.outDirect = make([][]dmsg[M], m)
	w.outComb = make([]map[uint32]M, m)
	for i := range w.outComb {
		w.outComb[i] = make(map[uint32]M)
	}
	if cfg.Combiner != nil {
		w.inComb = make([]M, n)
		w.inCombSet = make([]int32, n)
		w.scratch = make([]M, 1)
	} else {
		w.inboxList = make([][]M, n)
	}
	if cfg.Responder != nil {
		if cfg.RespCodec == nil {
			return fmt.Errorf("pregel: Responder requires RespCodec")
		}
		w.reqStaging = make([][]uint32, m)
		w.reqPending = make([][]uint32, m)
		w.asked = make([][]uint32, m)
		w.respVals = make([]map[uint32]R, m)
		for i := range w.respVals {
			w.respVals[i] = make(map[uint32]R)
		}
		w.reqOf = make([]frag.Addr, n)
		w.reqEpoch = make([]int32, n)
	}
	if cfg.AggCombine != nil && cfg.AggCodec == nil {
		return fmt.Errorf("pregel: AggCombine requires AggCodec")
	}
	w.aggResult = cfg.AggZero
	if cfg.GhostThreshold > 0 {
		if w.frag == nil {
			return fmt.Errorf("pregel: GhostThreshold requires Adjacency or Frags")
		}
		w.buildGhostTables()
		w.outGhost = make([][]dmsg[M], m)
	}

	setup(w)
	if w.Compute == nil {
		return fmt.Errorf("pregel: worker %d: setup did not install Compute", w.id)
	}
	ck := cfg.Checkpoint
	if ck.Active() && (w.ckptSave == nil || w.ckptRestore == nil) {
		return fmt.Errorf("pregel: worker %d: Config.Checkpoint is set but setup registered no Checkpoint closures", w.id)
	}
	w.active = make([]bool, n)
	for i := range w.active {
		w.active[i] = true
	}
	w.activeCount = n
	if !j.bar.Wait() {
		return errAborted
	}

	twoRounds := cfg.Responder != nil || cfg.AggCombine != nil
	w.obsOn = cfg.Observer != nil

	if ck.Active() && ck.Restore > 0 {
		done, rerr := w.restoreCheckpoint(ck, m, twoRounds)
		if rerr != nil {
			return fmt.Errorf("pregel: worker %d: restore checkpoint %d: %w", w.id, ck.Restore, rerr)
		}
		if done {
			return nil
		}
	}

	for {
		w.superstep++
		if w.superstep > maxSteps {
			return fmt.Errorf("pregel: exceeded MaxSupersteps=%d", maxSteps)
		}

		var stepStart time.Time
		if w.obsOn {
			w.obsSmp = obs.SuperstepSample{Worker: w.id, Superstep: w.superstep,
				ActiveVertices: int64(w.activeCount), Rounds: 1}
			if twoRounds {
				w.obsSmp.Rounds = 2
			}
			stepStart = time.Now()
		}

		// compute phase
		for li := 0; li < n; li++ {
			if !w.active[li] {
				continue
			}
			w.current = li
			w.Compute(li, w.messagesFor(li))
		}
		w.current = -1
		w.afterCompute()
		if w.obsOn {
			w.obsSmp.ComputeNS = time.Since(stepStart).Nanoseconds()
		}
		ck.FireProbe(w.id, w.superstep)
		if ck.ShouldSave(w.superstep) {
			w.ckptRec = w.snapshotCut(twoRounds)
		}

		// round 1: two barrier crossings — the post-flush wait proves all
		// sends are published, the post-deliver wait proves all inputs
		// were consumed, which makes Release safe.
		if err := w.runRound(w.serializeRound1, w.deserializeRound1); err != nil {
			return err
		}
		if twoRounds {
			if err := w.runRound(w.serializeRound2, w.deserializeRound2); err != nil {
				return err
			}
		}

		// The record is durable before the termination reduce below:
		// crossing the reduce is the proof that every worker's cut for
		// this superstep reached the store, making it complete.
		if w.ckptRec != nil {
			rec := w.ckptRec
			w.ckptRec = nil
			buf := ser.NewBuffer(4096)
			rec.Encode(buf)
			if err := ck.Store.Put(ck.Job, w.superstep, w.id, buf.Bytes()); err != nil {
				return fmt.Errorf("pregel: worker %d: checkpoint superstep %d: %w", w.id, w.superstep, err)
			}
			ck.AfterSave(w.superstep)
		}

		// termination check: one reduce carries every worker's active
		// count plus its RequestStop vote.
		v := uint64(w.activeCount)
		if w.halt {
			v += haltStop
		}
		sum, ok := w.timedAllReduce(v)
		if !ok {
			return errAborted
		}
		if w.obsOn {
			cfg.Observer.ObserveSuperstep(w.obsSmp)
		}
		if sum&(haltStop-1) == 0 || sum >= haltStop {
			return nil
		}
	}
}

// runRound runs one exchange round: serialize to every destination,
// flush, cross the publish barrier, decode every source, cross the
// consume barrier, release. Per-destination buffer deltas feed the
// superstep sample when observation is on.
func (w *Worker[M, R, A]) runRound(serialize func(int, *ser.Buffer), decode func(int, *ser.Buffer)) error {
	m := w.NumWorkers()
	for dst := 0; dst < m; dst++ {
		buf := w.ep.Out(dst)
		mark := buf.Len()
		serialize(dst, buf)
		if w.obsOn {
			w.obsSmp.BytesSent += int64(buf.Len() - mark)
			w.obsSmp.FramesSent++
		}
	}
	var stall0 time.Duration
	if w.obsOn {
		stall0 = w.ep.Stall()
	}
	if err := w.ep.Flush(); err != nil {
		return fmt.Errorf("pregel: worker %d: %w", w.id, err)
	}
	if w.obsOn {
		w.obsSmp.SendStallNS += int64(w.ep.Stall() - stall0)
	}
	if !w.timedWait() {
		return errAborted
	}
	for src := 0; src < m; src++ {
		if err := w.deserializeFrom(src, decode); err != nil {
			return err
		}
	}
	if !w.timedWait() {
		return errAborted
	}
	w.ep.Release()
	return nil
}

// timedWait crosses the shared barrier, attributing the blocked time to
// the current sample when observation is on.
func (w *Worker[M, R, A]) timedWait() bool {
	if !w.obsOn {
		return w.job.bar.Wait()
	}
	t0 := time.Now()
	ok := w.job.bar.Wait()
	w.obsSmp.BarrierWaitNS += time.Since(t0).Nanoseconds()
	return ok
}

// timedAllReduce mirrors timedWait for the termination reduce.
func (w *Worker[M, R, A]) timedAllReduce(v uint64) (uint64, bool) {
	if !w.obsOn {
		return w.job.bar.AllReduce(v)
	}
	t0 := time.Now()
	sum, ok := w.job.bar.AllReduce(v)
	w.obsSmp.BarrierWaitNS += time.Since(t0).Nanoseconds()
	return sum, ok
}

// deserializeFrom runs one round's decode of worker src's buffer.
// Buffers that arrived over a socket are untrusted: the recover turns a
// panicking decode on corrupt payload bytes into a worker error, so a
// bad frame fails the job with a diagnostic instead of killing the
// process (and every co-hosted worker with it).
func (w *Worker[M, R, A]) deserializeFrom(src int, decode func(int, *ser.Buffer)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pregel: worker %d: corrupt frame from worker %d: %v", w.id, src, r)
		}
	}()
	in := w.ep.In(src)
	if w.ckptRec != nil {
		w.ckptRec.Frames = append(w.ckptRec.Frames, append([]byte(nil), in.Unread()...))
	}
	if w.obsOn {
		w.obsSmp.BytesRecv += int64(in.Remaining())
		w.obsSmp.FramesRecv++
	}
	decode(src, in)
	return nil
}

// messagesFor returns the messages delivered to li last superstep.
func (w *Worker[M, R, A]) messagesFor(li int) []M {
	if w.cfg.Combiner != nil {
		if w.inCombSet[li] == int32(w.superstep-1) {
			w.scratch[0] = w.inComb[li]
			return w.scratch[:1]
		}
		return nil
	}
	return w.inboxList[li]
}

// afterCompute retires consumed inboxes and dedups requests.
func (w *Worker[M, R, A]) afterCompute() {
	if w.cfg.Combiner == nil {
		for _, li := range w.touched {
			w.inboxList[li] = w.inboxList[li][:0]
		}
		w.touched = w.touched[:0]
	}
	if w.cfg.Responder != nil {
		for o := range w.reqStaging {
			w.reqPending[o], w.reqStaging[o] = w.reqStaging[o], w.reqPending[o][:0]
			for k := range w.respVals[o] {
				delete(w.respVals[o], k)
			}
			w.asked[o] = w.asked[o][:0]
			lst := w.reqPending[o]
			if len(lst) == 0 {
				continue
			}
			sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
			k := 1
			for i := 1; i < len(lst); i++ {
				if lst[i] != lst[i-1] {
					lst[k] = lst[i]
					k++
				}
			}
			w.reqPending[o] = lst[:k]
		}
	}
	if w.cfg.AggCombine != nil {
		w.aggGathered = w.cfg.AggZero
		w.aggGathSet = false
	}
}

func (w *Worker[M, R, A]) serializeRound1(dst int, buf *ser.Buffer) {
	cfg := w.cfg
	// messages: one fixed uint32 dense id per message (Pregel+'s
	// id-tagged format — the byte count the channels are compared to)
	if cfg.Combiner != nil {
		staged := w.outComb[dst]
		buf.WriteUvarint(uint64(len(staged)))
		for li, msg := range staged {
			buf.WriteUint32(li)
			cfg.MsgCodec.Encode(buf, msg)
			delete(staged, li)
		}
	} else {
		staged := w.outDirect[dst]
		buf.WriteUvarint(uint64(len(staged)))
		for _, dm := range staged {
			buf.WriteUint32(dm.dst)
			cfg.MsgCodec.Encode(buf, dm.m)
		}
		w.outDirect[dst] = staged[:0]
	}
	// ghost broadcasts
	if cfg.GhostThreshold > 0 {
		staged := w.outGhost[dst]
		buf.WriteUvarint(uint64(len(staged)))
		for _, dm := range staged {
			buf.WriteUint32(dm.dst)
			cfg.MsgCodec.Encode(buf, dm.m)
		}
		w.outGhost[dst] = staged[:0]
	}
	// requests
	if cfg.Responder != nil {
		lst := w.reqPending[dst]
		buf.WriteUvarint(uint64(len(lst)))
		for _, li := range lst {
			buf.WriteUint32(li)
		}
	}
	// aggregator partial (to worker 0 only); the partial is consumed by
	// serializing it — the next superstep starts a fresh aggregation
	if cfg.AggCombine != nil && dst == 0 {
		buf.WriteBool(w.aggCurrSet)
		if w.aggCurrSet {
			cfg.AggCodec.Encode(buf, w.aggCurr)
		}
		w.aggCurr = cfg.AggZero
		w.aggCurrSet = false
	}
}

func (w *Worker[M, R, A]) deserializeRound1(src int, buf *ser.Buffer) {
	cfg := w.cfg
	// messages: the wire dense id is the local index — delivery is a
	// direct array write, no partition lookup
	nmsg := int(buf.ReadUvarint())
	for i := 0; i < nmsg; i++ {
		li := buf.ReadUint32()
		msg := cfg.MsgCodec.Decode(buf)
		w.deliver(int(li), msg)
	}
	// ghost broadcasts
	if cfg.GhostThreshold > 0 {
		ng := int(buf.ReadUvarint())
		for i := 0; i < ng; i++ {
			hub := buf.ReadUint32()
			msg := cfg.MsgCodec.Decode(buf)
			for _, li := range w.ghostAdj[hub] {
				w.deliver(int(li), msg)
			}
		}
	}
	// requests
	if cfg.Responder != nil {
		nr := int(buf.ReadUvarint())
		lis := w.asked[src][:0]
		for i := 0; i < nr; i++ {
			lis = append(lis, buf.ReadUint32())
		}
		w.asked[src] = lis
	}
	// aggregator partial (worker 0 only receives)
	if cfg.AggCombine != nil && w.id == 0 {
		if buf.ReadBool() {
			v := cfg.AggCodec.Decode(buf)
			if w.aggGathSet {
				w.aggGathered = cfg.AggCombine(w.aggGathered, v)
			} else {
				w.aggGathered = v
				w.aggGathSet = true
			}
		}
	}
}

func (w *Worker[M, R, A]) serializeRound2(dst int, buf *ser.Buffer) {
	cfg := w.cfg
	if cfg.Responder != nil {
		lis := w.asked[dst]
		buf.WriteUvarint(uint64(len(lis)))
		// Pregel+ reply format: (vertex id, value) pairs — the (dense) id
		// is retransmitted with every response, which is the constant
		// reply-size overhead §V-B2 measures.
		for _, li := range lis {
			buf.WriteUint32(li)
			cfg.RespCodec.Encode(buf, cfg.Responder(w, int(li)))
		}
	}
	if cfg.AggCombine != nil && w.id == 0 {
		cfg.AggCodec.Encode(buf, w.aggGathered)
	}
}

func (w *Worker[M, R, A]) deserializeRound2(src int, buf *ser.Buffer) {
	cfg := w.cfg
	if cfg.Responder != nil {
		nr := int(buf.ReadUvarint())
		for i := 0; i < nr; i++ {
			li := buf.ReadUint32()
			v := cfg.RespCodec.Decode(buf)
			w.respVals[src][li] = v
		}
	}
	if cfg.AggCombine != nil && src == 0 {
		w.aggResult = cfg.AggCodec.Decode(buf)
	}
}

// deliver routes one incoming message to local vertex li.
func (w *Worker[M, R, A]) deliver(li int, msg M) {
	if w.cfg.Combiner != nil {
		e := int32(w.superstep)
		if w.inCombSet[li] == e {
			w.inComb[li] = w.cfg.Combiner(w.inComb[li], msg)
		} else {
			w.inComb[li] = msg
			w.inCombSet[li] = e
		}
	} else {
		if len(w.inboxList[li]) == 0 {
			w.touched = append(w.touched, li)
		}
		w.inboxList[li] = append(w.inboxList[li], msg)
	}
	w.ActivateLocal(li)
}

// buildGhostTables precomputes, for each hub vertex (degree >=
// threshold), the set of workers holding mirrors, and on the receiving
// side the hub's local neighbor lists. In the real system this is a
// preprocessing exchange; here both sides are derived from the
// pre-resolved fragments (every fragment is readable by every worker in
// this in-process simulation), charging only the (real) CPU time.
func (w *Worker[M, R, A]) buildGhostTables() {
	fs := w.cfg.Frags
	thr := w.cfg.GhostThreshold
	n := w.LocalCount()
	w.hubSlot = make([]int32, n)
	for i := range w.hubSlot {
		w.hubSlot[i] = -1
	}
	w.ghostAdj = make(map[graph.VertexID][]int32)
	// own hubs: worker lists, from the fragment's packed adjacency
	seen := make([]bool, w.NumWorkers())
	for li := 0; li < n; li++ {
		if w.frag.OutDegree(li) < thr {
			continue
		}
		for i := range seen {
			seen[i] = false
		}
		var lst []int32
		for _, a := range w.frag.Neighbors(li) {
			if o := a.Worker(); !seen[o] {
				seen[o] = true
				lst = append(lst, int32(o))
			}
		}
		w.hubSlot[li] = int32(len(w.hubWorkers))
		w.hubWorkers = append(w.hubWorkers, lst)
	}
	// mirror adjacency: any hub on any worker with neighbors here
	for o := 0; o < fs.NumWorkers(); o++ {
		fo := fs.Frag(o)
		for li := 0; li < fo.LocalCount(); li++ {
			if fo.OutDegree(li) < thr {
				continue
			}
			hub := fo.GlobalID(li)
			for _, a := range fo.Neighbors(li) {
				if a.Worker() == w.id {
					w.ghostAdj[hub] = append(w.ghostAdj[hub], int32(a.Local()))
				}
			}
		}
	}
}
