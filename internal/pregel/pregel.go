// Package pregel implements the baseline the paper compares against: a
// classic Pregel engine with a monolithic message-passing interface, in
// the style of Pregel+. It shares the channel engine's telemetry seam —
// Config.Observer receives one obs.SuperstepSample per (worker,
// superstep), with whole-buffer byte/frame counts and no per-channel
// breakdown, since a monolithic stream has no channels to attribute to.
// One global message type serves every
// communication in the program (the root cause of the problems §II-B
// describes), a single optional global combiner applies to all messages
// or none, and two optional special modes extend the engine the way
// Pregel+ does:
//
//   - reqresp mode: vertices may request an attribute of any vertex;
//     requests are merged per worker, but — as in Pregel+ and unlike the
//     paper's RequestRespond channel — each response carries the
//     requested vertex ID alongside the value (§V-B2 measures this
//     difference as a constant 33% reply-size overhead);
//   - ghost (mirroring) mode: vertices whose degree reaches the
//     threshold broadcast to neighbors via per-worker mirrors, sending
//     one message per worker instead of one per neighbor (sender-side
//     combining, §V-B1).
//
// The engine shares the partition, serialization, and simulated
// transport with the channel engine, so runtimes and byte counts are
// directly comparable. It also shares the channel engine's
// fault-tolerance seam: Config.Checkpoint cuts a ckpt.Record per worker
// at the barrier-aligned point after compute and before the superstep's
// message round(s) — the round structure (one round, or two when
// responses or aggregation are in play) is recorded so a restore
// replays exactly the rounds the superstep ran, and the record is
// persisted before the termination AllReduce so completeness is
// all-or-nothing across the party.
package pregel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/barrier"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/ser"
)

// Config configures a baseline job. M is the single global message type,
// R the reqresp response type and A the aggregator type (use struct{}
// and nil codecs for unused facilities).
type Config[M, R, A any] struct {
	Part *partition.Partition
	// Frags, if set, gives every worker a pre-resolved shared-nothing
	// fragment (exposed as Worker.Frag); ghost mode and SendToNbrs use it
	// instead of the global graph + partition. Built from Adjacency when
	// unset. When Part is nil it is taken from Frags.
	Frags *frag.Fragments
	Cost  comm.CostModel
	// Fabric is the transport the job's workers exchange buffers and
	// synchronize through. Nil selects the in-process zero-copy fabric;
	// a distributed fabric (internal/netcomm) may host only a subset of
	// the workers in this process.
	Fabric comm.Fabric
	// MaxSupersteps aborts runaway jobs; 0 means 10_000.
	MaxSupersteps int
	// Cancel, if non-nil, aborts the run when closed: the shared
	// barrier is released, workers unwind, and Run returns
	// barrier.ErrCancelled (unless a worker failed for a real reason
	// first, which wins).
	Cancel <-chan struct{}
	// Observer, if non-nil, receives one obs.SuperstepSample per
	// (worker, superstep). The baseline engine has a single monolithic
	// message stream, so samples carry whole-buffer byte counts and a
	// fixed round count (1, or 2 with reqresp/aggregator) and leave the
	// per-channel breakdown nil. Nil disables all collection.
	Observer obs.Observer
	// Checkpoint, if non-nil with a store, snapshots every worker's
	// state at the barrier-aligned cut every Interval supersteps and, on
	// Restore > 0, resumes from the saved superstep. The algorithm must
	// register Save/Restore closures via Worker.Checkpoint.
	Checkpoint *ckpt.Hook
	// Flows, if non-nil, attaches a per-(src,dst) flow-matrix
	// accumulator to the in-process fabric Run creates when Fabric is
	// nil (callers supplying a Fabric attach flows to it directly).
	Flows *obs.FlowAccum

	// MsgCodec encodes the global message type.
	MsgCodec ser.Codec[M]
	// Combiner, if non-nil, is the single global combiner applied to all
	// messages (Pregel's rule: one combiner for the whole program).
	Combiner func(a, b M) M

	// Responder enables reqresp mode: it produces the response for a
	// requested local vertex. RespCodec must be set with it.
	Responder func(w *Worker[M, R, A], li int) R
	RespCodec ser.Codec[R]

	// AggCombine enables the aggregator; AggCodec must be set with it.
	AggCombine func(a, b A) A
	AggCodec   ser.Codec[A]
	AggZero    A

	// GhostThreshold enables ghost (mirroring) mode for SendToNbrs when
	// > 0: vertices with at least this many out-edges broadcast via
	// mirrors (the paper uses threshold 16). Adjacency is required for
	// SendToNbrs in any case.
	GhostThreshold int
	Adjacency      *graph.Graph
}

// Metrics mirrors engine.Metrics for the baseline engine.
type Metrics struct {
	Supersteps int
	Comm       comm.Stats
	WallTime   time.Duration
}

// SimTime returns wall time plus simulated network time.
func (m Metrics) SimTime() time.Duration { return m.WallTime + m.Comm.SimNetTime }

// Worker is the per-node handle passed to the algorithm.
type Worker[M, R, A any] struct {
	id   int
	cfg  *Config[M, R, A]
	frag *frag.Fragment
	job  *job[M, R, A]
	ep   comm.Endpoint

	active      []bool
	activeCount int
	current     int
	superstep   int
	halt        bool // RequestStop was called on this worker

	// Compute is invoked for every active local vertex each superstep
	// with the combined/collected messages from the previous superstep.
	Compute func(li int, msgs []M)

	// checkpoint closures (Worker.Checkpoint) and the record being
	// assembled while the cut superstep's exchange rounds run.
	ckptSave    func(buf *ser.Buffer)
	ckptRestore func(buf *ser.Buffer)
	ckptRec     *ckpt.Record

	// outgoing message staging. Destinations are staged pre-resolved as
	// their dense local index on the owning worker (also the wire
	// encoding — one fixed uint32 per message, exactly the bytes the
	// global-id format used). Combining still stages through a hash map:
	// that is the monolithic baseline of §V-B1 the dense channels are
	// measured against.
	outDirect [][]dmsg[M]    // basic mode: per dst worker
	outComb   []map[uint32]M // combiner mode: per dst worker, keyed by local index
	outGhost  [][]dmsg[M]    // ghost broadcasts: per dst worker (dst = hub id)
	// ghost tables
	hubWorkers [][]int32                  // per local hub slot: worker ids with mirrors
	hubSlot    []int32                    // per local vertex: index into hubWorkers or -1
	ghostAdj   map[graph.VertexID][]int32 // hub id -> local neighbor indices on this worker

	// inbox (delivered last superstep)
	inboxList [][]M
	touched   []int
	inComb    []M
	inCombSet []int32 // epoch stamps
	scratch   []M

	// reqresp state: requests held as local indices on the responder
	// (resolved once in Request), responses keyed the same way
	reqStaging [][]uint32
	reqPending [][]uint32
	asked      [][]uint32
	respVals   []map[uint32]R
	reqOf      []frag.Addr
	reqEpoch   []int32

	// aggregator state
	aggCurr     A
	aggCurrSet  bool
	aggResult   A
	aggGathered A
	aggGathSet  bool

	// superstep trace collection (Config.Observer); obsOn gates every
	// trace statement so the disabled path costs one branch per phase.
	obsOn  bool
	obsSmp obs.SuperstepSample
}

// dmsg is one staged message; dst is a pre-resolved local index on the
// destination worker (or a hub's global id on the ghost path).
type dmsg[M any] struct {
	dst uint32
	m   M
}

// job is the per-Run coordination state shared by this process's
// workers; all cross-worker communication goes through the fabric.
type job[M, R, A any] struct {
	cfg *Config[M, R, A]
	fab comm.Fabric
	bar barrier.Barrier
}

// --- Worker API used by algorithm closures ---

// WorkerID returns this worker's id.
func (w *Worker[M, R, A]) WorkerID() int { return w.id }

// NumWorkers returns the worker count.
func (w *Worker[M, R, A]) NumWorkers() int { return w.cfg.Part.NumWorkers() }

// NumVertices returns the global vertex count.
func (w *Worker[M, R, A]) NumVertices() int { return w.cfg.Part.NumVertices() }

// LocalCount returns the number of local vertices.
func (w *Worker[M, R, A]) LocalCount() int { return w.cfg.Part.LocalCount(w.id) }

// GlobalID returns the vertex id at local index li.
func (w *Worker[M, R, A]) GlobalID(li int) graph.VertexID { return w.cfg.Part.GlobalID(w.id, li) }

// LocalIndex returns v's local index on its owner. Transitional
// accessor: hot superstep loops should consume packed addresses.
func (w *Worker[M, R, A]) LocalIndex(v graph.VertexID) int { return w.cfg.Part.LocalIndex(v) }

// Owner returns the worker owning v. Transitional accessor: hot
// superstep loops should consume packed addresses.
func (w *Worker[M, R, A]) Owner(v graph.VertexID) int { return w.cfg.Part.Owner(v) }

// Addr returns v's packed pre-resolved address. Use it for occasional
// dynamic destinations; static adjacency comes pre-resolved from Frag.
func (w *Worker[M, R, A]) Addr(v graph.VertexID) frag.Addr { return frag.Of(w.cfg.Part, v) }

// Frag returns this worker's shared-nothing fragment (nil unless
// Config.Frags was set or built from Config.Adjacency).
func (w *Worker[M, R, A]) Frag() *frag.Fragment { return w.frag }

// Superstep returns the current superstep, starting at 1.
func (w *Worker[M, R, A]) Superstep() int { return w.superstep }

// VoteToHalt halts the current vertex until a message reactivates it.
func (w *Worker[M, R, A]) VoteToHalt() {
	if w.active[w.current] {
		w.active[w.current] = false
		w.activeCount--
	}
}

// ActivateLocal wakes local vertex li.
func (w *Worker[M, R, A]) ActivateLocal(li int) {
	if !w.active[li] {
		w.active[li] = true
		w.activeCount++
	}
}

// RequestStop terminates the job after this superstep.
func (w *Worker[M, R, A]) RequestStop() { w.halt = true }

// Checkpoint registers the algorithm's state closures: save appends the
// per-worker vertex state (local order) to the buffer, restore reads the
// same encoding back into the already-allocated state. Both run at the
// barrier-aligned cut point (after compute, before the exchange rounds).
// Required when Config.Checkpoint has a store; a no-op otherwise.
func (w *Worker[M, R, A]) Checkpoint(save, restore func(buf *ser.Buffer)) {
	w.ckptSave, w.ckptRestore = save, restore
}

// Send sends m to vertex dst, delivered next superstep. Transitional
// id-based entry point: per-edge loops should iterate Frag().Neighbors
// and call SendAddr with the pre-resolved address.
func (w *Worker[M, R, A]) Send(dst graph.VertexID, m M) {
	w.SendAddr(w.Addr(dst), m)
}

// SendAddr sends m to the vertex at packed address a, delivered next
// superstep.
func (w *Worker[M, R, A]) SendAddr(a frag.Addr, m M) {
	o := a.Worker()
	li := a.Local()
	if w.cfg.Combiner != nil {
		if old, ok := w.outComb[o][li]; ok {
			w.outComb[o][li] = w.cfg.Combiner(old, m)
		} else {
			w.outComb[o][li] = m
		}
		return
	}
	w.outDirect[o] = append(w.outDirect[o], dmsg[M]{dst: li, m: m})
}

// SendToNbrs broadcasts m along the out-edges of the current vertex.
// With ghost mode enabled and the vertex above the threshold, one
// message per mirror worker is sent instead of one per neighbor.
func (w *Worker[M, R, A]) SendToNbrs(m M) {
	if w.frag == nil {
		panic("pregel: SendToNbrs requires Config.Adjacency or Config.Frags")
	}
	if slot := w.hubSlot; slot != nil && slot[w.current] >= 0 {
		id := uint32(w.GlobalID(w.current))
		for _, wk := range w.hubWorkers[slot[w.current]] {
			w.outGhost[wk] = append(w.outGhost[wk], dmsg[M]{dst: id, m: m})
		}
		return
	}
	for _, a := range w.frag.Neighbors(w.current) {
		w.SendAddr(a, m)
	}
}

// Request asks for vertex dst's attribute (reqresp mode); the response
// is available next superstep via Resp.
func (w *Worker[M, R, A]) Request(dst graph.VertexID) {
	if w.cfg.Responder == nil {
		panic("pregel: Request requires Config.Responder")
	}
	a := w.Addr(dst)
	w.reqOf[w.current] = a
	w.reqEpoch[w.current] = int32(w.superstep)
	w.reqStaging[a.Worker()] = append(w.reqStaging[a.Worker()], a.Local())
}

// Resp returns the response for the destination the current vertex
// requested in the previous superstep.
func (w *Worker[M, R, A]) Resp() (R, bool) {
	var zero R
	if w.reqEpoch[w.current] != int32(w.superstep-1) {
		return zero, false
	}
	a := w.reqOf[w.current]
	v, ok := w.respVals[a.Worker()][a.Local()]
	return v, ok
}

// RespFor returns the response for an explicit destination requested in
// the previous superstep by any vertex of this worker.
func (w *Worker[M, R, A]) RespFor(dst graph.VertexID) (R, bool) {
	a := w.Addr(dst)
	v, ok := w.respVals[a.Worker()][a.Local()]
	return v, ok
}

// Aggregate contributes a to this superstep's aggregation.
func (w *Worker[M, R, A]) Aggregate(a A) {
	if w.cfg.AggCombine == nil {
		panic("pregel: Aggregate requires Config.AggCombine")
	}
	if w.aggCurrSet {
		w.aggCurr = w.cfg.AggCombine(w.aggCurr, a)
	} else {
		w.aggCurr = a
		w.aggCurrSet = true
	}
}

// AggResult returns the aggregate of the previous superstep.
func (w *Worker[M, R, A]) AggResult() A { return w.aggResult }

// Run executes a baseline job. setup is called once per worker to
// allocate state and install Compute.
func Run[M, R, A any](cfg Config[M, R, A], setup func(w *Worker[M, R, A])) (Metrics, error) {
	if cfg.Part == nil && cfg.Frags != nil {
		cfg.Part = cfg.Frags.Part
	}
	if cfg.Part == nil {
		return Metrics{}, fmt.Errorf("pregel: Config.Part or Config.Frags is required")
	}
	if cfg.Frags != nil && cfg.Frags.Part != cfg.Part {
		// packed addresses resolved under a different partition would
		// silently deliver messages to the wrong vertices
		return Metrics{}, fmt.Errorf("pregel: Config.Frags was built from a different partition than Config.Part")
	}
	if cfg.MsgCodec == nil {
		return Metrics{}, fmt.Errorf("pregel: Config.MsgCodec is required")
	}
	if cfg.Frags == nil && cfg.Adjacency != nil {
		// SendToNbrs and ghost tables consume pre-resolved fragments; a
		// caller that only has the global adjacency pays the resolution
		// once here.
		cfg.Frags = frag.Build(cfg.Adjacency, cfg.Part)
	}
	maxSteps := cfg.MaxSupersteps
	if maxSteps == 0 {
		maxSteps = 10000
	}
	m := cfg.Part.NumWorkers()
	fab := cfg.Fabric
	if fab == nil {
		ip := comm.NewInProc(m, cfg.Cost)
		if cfg.Flows != nil {
			cfg.Flows.SetPlane("inproc")
			ip.Exchanger().SetFlows(cfg.Flows)
		}
		fab = ip
	}
	if fab.NumWorkers() != m {
		return Metrics{}, fmt.Errorf("pregel: fabric has %d workers, partition has %d", fab.NumWorkers(), m)
	}
	j := &job[M, R, A]{cfg: &cfg, fab: fab, bar: fab.Barrier()}
	locals := fab.LocalWorkers()
	workers := make([]*Worker[M, R, A], len(locals))
	for i, id := range locals {
		workers[i] = &Worker[M, R, A]{id: id, cfg: &cfg, job: j, current: -1, ep: fab.Endpoint(id)}
		if cfg.Frags != nil {
			workers[i].frag = cfg.Frags.Frag(id)
		}
	}
	start := time.Now()
	cancelled := barrier.WatchCancel(cfg.Cancel, j.bar)
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = workers[i].run(setup, maxSteps)
		}(i)
	}
	wg.Wait()
	// Minimum superstep any local worker reached: the only count that
	// was globally completed when a worker failed part-way.
	minStep := workers[0].superstep
	for _, w := range workers[1:] {
		if w.superstep < minStep {
			minStep = w.superstep
		}
	}
	met := Metrics{
		Supersteps: minStep,
		Comm:       fab.Stats(),
		WallTime:   time.Since(start),
	}
	err := barrier.JoinErrors(errs)
	if cancelled() && err == nil {
		err = barrier.ErrCancelled
	} else if err == nil && j.bar.Aborted() {
		// every local error was an abort echo: the root cause lives in
		// another process — surface the abort instead of claiming success
		err = errAborted
	}
	return met, err
}
