package pregel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/barrier"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/ser"
)

type noRR = struct{}

func basicCfg(n, workers int) Config[uint32, noRR, noRR] {
	return Config[uint32, noRR, noRR]{
		Part:     partition.MustHash(n, workers),
		MsgCodec: ser.Uint32Codec{},
	}
}

func TestBasicMessageDelivery(t *testing.T) {
	const n = 10
	got := make([][]uint32, n)
	cfg := basicCfg(n, 3)
	_, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
		w.Compute = func(li int, msgs []uint32) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				w.Send(0, id)
				w.VoteToHalt()
				return
			}
			cp := make([]uint32, len(msgs))
			copy(cp, msgs)
			got[id] = cp
			w.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != n {
		t.Errorf("vertex 0 received %d messages", len(got[0]))
	}
	for k := 1; k < n; k++ {
		if len(got[k]) != 0 {
			t.Errorf("vertex %d received %v", k, got[k])
		}
	}
}

func TestCombinerPath(t *testing.T) {
	const n = 12
	var got uint32
	cfg := basicCfg(n, 4)
	cfg.Combiner = func(a, b uint32) uint32 { return a + b }
	_, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
		w.Compute = func(li int, msgs []uint32) {
			if w.Superstep() == 1 {
				w.Send(5, 2)
				w.VoteToHalt()
				return
			}
			if w.GlobalID(li) == 5 {
				if len(msgs) != 1 {
					t.Errorf("combined msgs len=%d", len(msgs))
				} else {
					got = msgs[0]
				}
			}
			w.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*n {
		t.Errorf("combined=%d want %d", got, 2*n)
	}
}

func TestCombinerInboxFreshness(t *testing.T) {
	// a message delivered for superstep 2 must not reappear at 3
	cfg := basicCfg(4, 2)
	cfg.Combiner = func(a, b uint32) uint32 { return a + b }
	leak := make([]bool, 2) // per worker: compute phases run concurrently
	_, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
		w.Compute = func(li int, msgs []uint32) {
			switch w.Superstep() {
			case 1:
				w.Send(w.GlobalID(li), 1)
			case 2:
				// stay active, send nothing
			case 3:
				if len(msgs) != 0 {
					leak[w.WorkerID()] = true
				}
				w.VoteToHalt()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if leak[0] || leak[1] {
		t.Error("stale combined message leaked")
	}
}

func TestAggregatorResetsBetweenSupersteps(t *testing.T) {
	// regression: the per-worker partial must not accumulate across
	// supersteps
	cfg := Config[uint32, noRR, float64]{
		Part:       partition.MustHash(6, 2),
		MsgCodec:   ser.Uint32Codec{},
		AggCombine: func(a, b float64) float64 { return a + b },
		AggCodec:   ser.Float64Codec{},
	}
	r2 := []float64{-1, -1} // per worker: compute phases run concurrently
	r3 := []float64{-1, -1}
	_, err := Run(cfg, func(w *Worker[uint32, noRR, float64]) {
		w.Compute = func(li int, msgs []uint32) {
			switch w.Superstep() {
			case 1:
				w.Aggregate(1)
			case 2:
				r2[w.WorkerID()] = w.AggResult()
				w.Aggregate(2)
			case 3:
				r3[w.WorkerID()] = w.AggResult()
				w.VoteToHalt()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for wk := range r2 {
		if r2[wk] != 6 {
			t.Errorf("worker %d: superstep2 aggregate %v want 6", wk, r2[wk])
		}
		if r3[wk] != 12 {
			t.Errorf("worker %d: superstep3 aggregate %v want 12 (reset bug if 18)", wk, r3[wk])
		}
	}
}

func TestReqRespMode(t *testing.T) {
	const n = 9
	got := make([]uint32, n)
	vals := make([][]uint32, 3)
	cfg := Config[uint32, uint32, noRR]{
		Part:      partition.MustHash(n, 3),
		MsgCodec:  ser.Uint32Codec{},
		RespCodec: ser.Uint32Codec{},
		Responder: func(w *Worker[uint32, uint32, noRR], li int) uint32 {
			return vals[w.WorkerID()][li]
		},
	}
	_, err := Run(cfg, func(w *Worker[uint32, uint32, noRR]) {
		v := make([]uint32, w.LocalCount())
		vals[w.WorkerID()] = v
		w.Compute = func(li int, msgs []uint32) {
			id := w.GlobalID(li)
			switch w.Superstep() {
			case 1:
				v[li] = id * 3
				w.Request((id + 1) % n)
			case 2:
				r, ok := w.Resp()
				if !ok {
					t.Errorf("vertex %d: no response", id)
				}
				got[id] = r
				w.VoteToHalt()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if got[k] != uint32((k+1)%n)*3 {
			t.Errorf("vertex %d got %d", k, got[k])
		}
	}
}

func TestReqRespReplyCarriesIDs(t *testing.T) {
	// Pregel+ reply format sends (id, value) pairs: with many requesters
	// of one hub, reply bytes must scale with pair size (8B), not value
	// size (4B)
	const n = 32
	cfg := Config[uint32, uint32, noRR]{
		Part:      partition.MustHash(n, 4),
		MsgCodec:  ser.Uint32Codec{},
		RespCodec: ser.Uint32Codec{},
		Responder: func(w *Worker[uint32, uint32, noRR], li int) uint32 { return 7 },
	}
	met, err := Run(cfg, func(w *Worker[uint32, uint32, noRR]) {
		w.Compute = func(li int, msgs []uint32) {
			if w.Superstep() == 1 {
				w.Request(1)
				return
			}
			if v, ok := w.Resp(); !ok || v != 7 {
				t.Errorf("bad response")
			}
			w.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 remote workers: requests ~ (1+4)B each, replies (varint + 4+4)B
	// each: replies must dominate requests
	if met.Comm.NetworkBytes < 3*(5+9) {
		t.Errorf("unexpectedly small wire traffic: %d", met.Comm.NetworkBytes)
	}
}

func TestGhostModeEquivalence(t *testing.T) {
	// broadcast over a star: hub has degree >= threshold; ghost and
	// basic modes must deliver identical messages
	const n = 20
	star := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		star = append(star, graph.Edge{Src: 0, Dst: graph.VertexID(i)})
	}
	g := graph.FromEdges(n, star, false)

	run := func(threshold int) ([]uint32, int64) {
		got := make([]uint32, n)
		cfg := Config[uint32, noRR, noRR]{
			Part:           partition.MustHash(n, 4),
			MsgCodec:       ser.Uint32Codec{},
			Combiner:       func(a, b uint32) uint32 { return a + b },
			GhostThreshold: threshold,
			Adjacency:      g,
		}
		met, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
			w.Compute = func(li int, msgs []uint32) {
				id := w.GlobalID(li)
				if w.Superstep() == 1 {
					if id == 0 {
						w.SendToNbrs(41)
					}
					w.VoteToHalt()
					return
				}
				if len(msgs) > 0 {
					got[id] = msgs[0]
				}
				w.VoteToHalt()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return got, met.Comm.NetworkBytes
	}

	basic, basicBytes := run(0)
	ghost, ghostBytes := run(4)
	for k := 1; k < n; k++ {
		if basic[k] != 41 || ghost[k] != 41 {
			t.Errorf("vertex %d: basic=%d ghost=%d", k, basic[k], ghost[k])
		}
	}
	// the hub sends one message per worker instead of one per neighbor
	if ghostBytes >= basicBytes {
		t.Errorf("ghost bytes %d >= basic bytes %d", ghostBytes, basicBytes)
	}
}

func TestGhostModeLowDegreeUsesRegularPath(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, false)
	got := make([]uint32, 4)
	cfg := Config[uint32, noRR, noRR]{
		Part:           partition.MustHash(4, 2),
		MsgCodec:       ser.Uint32Codec{},
		GhostThreshold: 10, // degree 2 < threshold
		Adjacency:      g,
	}
	_, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
		w.Compute = func(li int, msgs []uint32) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				if id == 0 {
					w.SendToNbrs(9)
				}
				w.VoteToHalt()
				return
			}
			for _, m := range msgs {
				got[id] = m
			}
			w.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 9 || got[2] != 9 || got[3] != 0 {
		t.Errorf("got %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config[uint32, noRR, noRR]{}, nil); err == nil {
		t.Error("missing Part not rejected")
	}
	if _, err := Run(Config[uint32, noRR, noRR]{Part: partition.MustHash(2, 1)}, nil); err == nil {
		t.Error("missing MsgCodec not rejected")
	}
	cfg := basicCfg(2, 1)
	if _, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {}); err == nil ||
		!strings.Contains(err.Error(), "Compute") {
		t.Errorf("missing Compute not rejected: %v", err)
	}
}

func TestMaxSuperstepsEnforced(t *testing.T) {
	cfg := basicCfg(2, 1)
	cfg.MaxSupersteps = 3
	_, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
		w.Compute = func(li int, msgs []uint32) { /* spin */ }
	})
	if err == nil || !strings.Contains(err.Error(), "MaxSupersteps") {
		t.Fatalf("got %v", err)
	}
}

func TestRequestStop(t *testing.T) {
	cfg := basicCfg(6, 2)
	met, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
		w.Compute = func(li int, msgs []uint32) {
			if w.Superstep() == 4 {
				w.RequestStop()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Supersteps != 4 {
		t.Errorf("supersteps=%d", met.Supersteps)
	}
}

func TestVoteAndWake(t *testing.T) {
	cfg := basicCfg(2, 2)
	woke := false
	_, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
		w.Compute = func(li int, msgs []uint32) {
			id := w.GlobalID(li)
			switch {
			case w.Superstep() == 1 && id == 0:
				w.VoteToHalt()
			case w.Superstep() == 1:
				w.VoteToHalt()
			case w.Superstep() == 3 && id == 1:
				if len(msgs) == 1 && msgs[0] == 13 {
					woke = true
				}
				w.VoteToHalt()
			}
			if w.Superstep() == 2 && id == 0 {
				// woken? no — 0 stays halted; this branch unreachable
				t.Errorf("vertex 0 unexpectedly active")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = woke
}

func TestWakeByMessage(t *testing.T) {
	cfg := basicCfg(2, 2)
	woke := false
	_, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
		w.Compute = func(li int, msgs []uint32) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				if id == 0 {
					w.Send(1, 13)
				}
				w.VoteToHalt()
				return
			}
			if id == 1 && len(msgs) == 1 && msgs[0] == 13 {
				woke = true
			}
			w.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Error("vertex 1 not woken by message")
	}
}

// Cancellation mid-run: closing Config.Cancel must unwind every worker
// through the aborted barrier and surface barrier.ErrCancelled.
func TestPregelCancelMidRun(t *testing.T) {
	cancel := make(chan struct{})
	fired := false
	cfg := basicCfg(8, 4)
	cfg.Cancel = cancel
	cfg.MaxSupersteps = 1 << 30
	_, err := Run(cfg, func(w *Worker[uint32, noRR, noRR]) {
		w.Compute = func(li int, msgs []uint32) {
			// stay active forever; worker 0 pulls the plug at step 50
			if w.WorkerID() == 0 && li == 0 && w.Superstep() == 50 && !fired {
				fired = true
				close(cancel)
			}
		}
	})
	if !errors.Is(err, barrier.ErrCancelled) {
		t.Fatalf("expected ErrCancelled, got %v", err)
	}
}
