package comm

import (
	"testing"
	"time"
)

func TestExchangerAccounting(t *testing.T) {
	e := NewExchanger(3, CostModel{})
	// worker 0 sends 4 bytes to 1, 8 to 2, 2 to itself
	e.Out(0, 1).WriteUint32(1)
	e.Out(0, 2).WriteUint64(1)
	e.Out(0, 0).WriteUint8(1)
	e.Out(0, 0).WriteUint8(2)
	e.FinishSerialize(0)
	e.FinishSerialize(1)
	e.FinishSerialize(2)
	s := e.Stats()
	if s.NetworkBytes != 12 {
		t.Errorf("net=%d want 12", s.NetworkBytes)
	}
	if s.LocalBytes != 2 {
		t.Errorf("local=%d want 2", s.LocalBytes)
	}
	if s.Rounds != 1 {
		t.Errorf("rounds=%d", s.Rounds)
	}
	if s.SimNetTime <= 0 {
		t.Errorf("simnet=%v", s.SimNetTime)
	}
}

func TestExchangerInOutAliasing(t *testing.T) {
	e := NewExchanger(2, CostModel{})
	e.Out(0, 1).WriteUint32(99)
	in := e.In(1, 0)
	if got := in.ReadUint32(); got != 99 {
		t.Errorf("got %d", got)
	}
}

func TestResetRow(t *testing.T) {
	e := NewExchanger(2, CostModel{})
	e.Out(0, 1).WriteUint32(5)
	e.ResetRow(0)
	if e.Out(0, 1).Len() != 0 {
		t.Errorf("buffer not reset")
	}
}

func TestShrinkPolicyReclaimsBurstCapacity(t *testing.T) {
	e := NewExchanger(2, CostModel{})
	e.SetShrinkPolicy(ShrinkPolicy{CheckEvery: 8, MinRetain: 1 << 12, Slack: 4})
	// burst round: grow 0->1 far past MinRetain
	big := make([]byte, 1<<20)
	e.Out(0, 1).WriteBytes(big)
	e.ResetRow(0)
	if c := e.Out(0, 1).Cap(); c < 1<<20 {
		t.Fatalf("burst did not grow the buffer: cap=%d", c)
	}
	// steady state: tiny rounds across two check windows (the first
	// window still contains the burst peak)
	for r := 0; r < 16; r++ {
		e.Out(0, 1).WriteUint32(1)
		e.ResetRow(0)
	}
	if c := e.Out(0, 1).Cap(); c >= 1<<20 {
		t.Errorf("burst capacity retained: cap=%d", c)
	}
	if s := e.Stats(); s.ShrunkBuffers == 0 {
		t.Errorf("ShrunkBuffers=0 want >0")
	}
}

func TestShrinkPolicyKeepsHotBuffers(t *testing.T) {
	e := NewExchanger(2, CostModel{})
	e.SetShrinkPolicy(ShrinkPolicy{CheckEvery: 4, MinRetain: 1 << 10, Slack: 4})
	payload := make([]byte, 1<<16)
	for r := 0; r < 12; r++ {
		e.Out(0, 1).WriteBytes(payload)
		e.ResetRow(0)
	}
	// the buffer is used at full capacity every round: it must keep it
	if c := e.Out(0, 1).Cap(); c < 1<<16 {
		t.Errorf("hot buffer was shrunk: cap=%d", c)
	}
	// a disabled policy never shrinks
	d := NewExchanger(2, CostModel{})
	d.SetShrinkPolicy(ShrinkPolicy{CheckEvery: -1})
	d.Out(0, 1).WriteBytes(make([]byte, 1<<20))
	for r := 0; r < 256; r++ {
		d.ResetRow(0)
	}
	if c := d.Out(0, 1).Cap(); c < 1<<20 {
		t.Errorf("disabled policy shrank: cap=%d", c)
	}
}

func TestCostModelRoundTime(t *testing.T) {
	c := CostModel{BytesPerSecond: 1000, RoundLatency: time.Millisecond}
	got := c.RoundTime(500)
	want := time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Errorf("got %v want %v", got, want)
	}
	// defaults fill in
	var d CostModel
	if d.RoundTime(0) != time.Millisecond {
		t.Errorf("default latency wrong: %v", d.RoundTime(0))
	}
}

func TestCostChargesBusiestWorker(t *testing.T) {
	cost := CostModel{BytesPerSecond: 100, RoundLatency: 0}
	e := NewExchanger(2, cost)
	e.Out(0, 1).WriteUint64(0) // 8 bytes
	e.Out(1, 0).WriteUint32(0) // 4 bytes
	e.FinishSerialize(0)
	e.FinishSerialize(1)
	s := e.Stats()
	// busiest worker sent 8 bytes at 100 B/s = 80ms... plus default latency
	// (RoundLatency 0 selects the default 1ms)
	want := time.Millisecond + 80*time.Millisecond
	if s.SimNetTime != want {
		t.Errorf("simnet=%v want %v", s.SimNetTime, want)
	}
}

func TestMultipleRounds(t *testing.T) {
	e := NewExchanger(2, CostModel{})
	for r := 0; r < 3; r++ {
		e.Out(0, 1).WriteUint32(uint32(r))
		e.FinishSerialize(0)
		e.FinishSerialize(1)
		e.ResetRow(0)
		e.ResetRow(1)
	}
	s := e.Stats()
	if s.Rounds != 3 {
		t.Errorf("rounds=%d", s.Rounds)
	}
	if s.NetworkBytes != 12 {
		t.Errorf("net=%d", s.NetworkBytes)
	}
}
