// Package comm defines the cluster transport seam and its in-process
// implementation. The paper runs on an 8-node EC2 cluster with 750 Mbps
// links; the engines see only the Fabric interface (per-worker
// endpoints exchanging binary buffers pairwise, exactly the paper's
// architecture, Fig. 2: worker k holds one outgoing buffer per peer,
// and after a synchronization point every worker reads the buffers
// addressed to it). The default implementation here keeps all workers
// in one process around the zero-copy Exchanger matrix;
// internal/netcomm satisfies the same contract over TCP/Unix sockets
// for workers in separate processes.
//
// Two things make the in-process fabric an adequate substrate for
// reproducing the paper's numbers (see DESIGN.md §2): every message
// really is serialized to bytes (so the CPU cost of message handling —
// the hashing vs. linear-scan distinction the optimized channels
// exploit — is genuinely paid), and every byte that crosses a worker
// boundary is counted and charged to a configurable bandwidth/latency
// model, producing a simulated network time comparable across engine
// variants.
//
// The telemetry plane (internal/obs) deliberately sits above this
// seam: the engines count bytes and frames at their own serialize and
// deserialize points, not inside a Fabric implementation, so a
// superstep trace records identical per-channel volumes whichever
// transport carried the data. A Fabric only has to move buffers; it
// never needs to know it is being observed. The one exception is the
// per-(src,dst) flow matrix: destination fan-out only exists below the
// engines' serialize points, so an optional obs.FlowAccum attaches to
// the Exchanger (SetFlows) and is fed at the flush seam — one nil
// check per destination when detached.
package comm

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/ser"
)

// CostModel converts per-round communication volume into simulated
// network time. The defaults model the paper's cluster: 750 Mbps
// full-duplex per node pair and a synchronization latency per exchange
// round.
type CostModel struct {
	// BytesPerSecond is the per-worker outbound bandwidth. Zero selects
	// the default (750 Mbps ≈ 93.75 MB/s).
	BytesPerSecond float64
	// RoundLatency is the fixed synchronization cost charged per
	// exchange round (barrier + RPC setup). Zero selects 1 ms.
	RoundLatency time.Duration
}

func (c CostModel) withDefaults() CostModel {
	if c.BytesPerSecond == 0 {
		c.BytesPerSecond = 750e6 / 8
	}
	if c.RoundLatency == 0 {
		c.RoundLatency = time.Millisecond
	}
	return c
}

// RoundTime returns the simulated duration of one exchange round in
// which the busiest worker sent maxBytes bytes off-node.
func (c CostModel) RoundTime(maxBytes int64) time.Duration {
	c = c.withDefaults()
	return c.RoundLatency + time.Duration(float64(maxBytes)/c.BytesPerSecond*float64(time.Second))
}

// Stats accumulates communication statistics over a run.
type Stats struct {
	// NetworkBytes counts bytes sent between distinct workers.
	NetworkBytes int64
	// LocalBytes counts loopback bytes (worker to itself). The paper's
	// "message (GB)" columns count network traffic; local bytes are
	// reported separately.
	LocalBytes int64
	// Rounds counts buffer-exchange rounds (≥ 1 per superstep).
	Rounds int64
	// ShrunkBuffers counts outgoing buffers reallocated down by the
	// retained-capacity shrink policy.
	ShrunkBuffers int64
	// SimNetTime is the simulated network time under the cost model.
	SimNetTime time.Duration
	// PeerBytes, when the transport distinguishes destinations (the
	// socket fabric), counts bytes sent per destination worker id from
	// this process. Nil on transports that do not track it.
	PeerBytes []int64
	// FlowStallTime is the cumulative time senders in this process
	// spent blocked on exhausted flow-control windows (zero on
	// transports without backpressure).
	FlowStallTime time.Duration
}

// ShrinkPolicy bounds the capacity the Exchanger's buffers retain
// across rounds. Buffers grow to the peak round's volume and normally
// keep that capacity forever; in a long-lived process (graphd) one
// burst round would otherwise pin its peak memory for the rest of the
// process lifetime. Every CheckEvery resets of a row, any buffer whose
// capacity exceeds Slack times the peak usage observed since the last
// check (and MinRetain) is reallocated down to the observed peak.
type ShrinkPolicy struct {
	// CheckEvery is the number of rounds between capacity checks.
	// Zero selects 64; negative disables shrinking.
	CheckEvery int
	// MinRetain is the capacity in bytes at or below which a buffer is
	// never shrunk. Zero selects 64 KiB.
	MinRetain int
	// Slack is the allowed ratio of retained capacity to observed peak
	// usage. Zero selects 4.
	Slack int
}

func (p ShrinkPolicy) withDefaults() ShrinkPolicy {
	if p.CheckEvery == 0 {
		p.CheckEvery = 64
	}
	if p.MinRetain == 0 {
		p.MinRetain = 64 << 10
	}
	if p.Slack == 0 {
		p.Slack = 4
	}
	return p
}

// Exchanger owns the M×M buffer matrix. Out[s][d] is worker s's outgoing
// buffer for worker d; after a barrier, worker d reads In(d, s) == Out[s][d].
// The engine provides the synchronization; Exchanger provides storage and
// accounting.
type Exchanger struct {
	m    int
	out  [][]*ser.Buffer
	cost CostModel

	shrink ShrinkPolicy
	peak   [][]int // per (s,d): max bytes written since the last check
	resets []int   // per source: ResetRow calls since the last check

	netBytes   atomic.Int64
	localBytes atomic.Int64
	shrunk     atomic.Int64
	// round accounting: flushed counts FinishSerialize calls in the
	// current round; the last flusher charges the cost model with the
	// busiest worker's volume (roundMax) and resets both. The engines
	// barrier between the last flush of round r and the first flush of
	// round r+1, so the reset is never concurrent with the next round's
	// updates.
	flushed  atomic.Int32
	roundMax atomic.Int64
	rounds   atomic.Int64
	simNet   atomic.Int64 // nanoseconds

	// flows, when attached, receives one Record per non-empty
	// (src, dst) flush. Nil costs one branch per destination.
	flows *obs.FlowAccum
}

// NewExchanger creates the buffer matrix for m workers with the default
// shrink policy.
func NewExchanger(m int, cost CostModel) *Exchanger {
	e := &Exchanger{
		m:      m,
		out:    make([][]*ser.Buffer, m),
		cost:   cost.withDefaults(),
		shrink: ShrinkPolicy{}.withDefaults(),
		peak:   make([][]int, m),
		resets: make([]int, m),
	}
	for s := 0; s < m; s++ {
		e.out[s] = make([]*ser.Buffer, m)
		e.peak[s] = make([]int, m)
		for d := 0; d < m; d++ {
			e.out[s][d] = ser.NewBuffer(1024)
		}
	}
	return e
}

// SetShrinkPolicy replaces the retained-capacity policy. It must be
// called before the exchanger is used, not mid-run.
func (e *Exchanger) SetShrinkPolicy(p ShrinkPolicy) { e.shrink = p.withDefaults() }

// SetFlows attaches a flow-matrix accumulator fed at the flush seam.
// Like SetShrinkPolicy, call before the exchanger is used, not mid-run.
func (e *Exchanger) SetFlows(f *obs.FlowAccum) { e.flows = f }

// NumWorkers returns the worker count.
func (e *Exchanger) NumWorkers() int { return e.m }

// Out returns worker src's outgoing buffer for dst. Only worker src may
// write it, and only between the post-deserialize barrier and the
// pre-deserialize barrier of the next round.
func (e *Exchanger) Out(src, dst int) *ser.Buffer { return e.out[src][dst] }

// In returns the buffer worker src sent to dst this round. Only worker
// dst may read it, after the serialize barrier.
func (e *Exchanger) In(dst, src int) *ser.Buffer { return e.out[src][dst] }

// FinishSerialize is called by worker src after it has written all its
// outgoing buffers for the round; it accounts the bytes. The last
// worker to flush a round also finalizes it: the cost model is charged
// with the busiest worker's outbound volume, so no separate
// finish-the-round call (which would need a globally elected worker) is
// required.
func (e *Exchanger) FinishSerialize(src int) {
	var net, local int64
	for d := 0; d < e.m; d++ {
		n := int64(e.out[src][d].Len())
		if d == src {
			local += n
		} else {
			net += n
		}
		if e.flows != nil && n > 0 {
			e.flows.Record(src, d, n)
		}
	}
	e.netBytes.Add(net)
	e.localBytes.Add(local)
	for {
		cur := e.roundMax.Load()
		if net <= cur || e.roundMax.CompareAndSwap(cur, net) {
			break
		}
	}
	if e.flushed.Add(1) == int32(e.m) {
		mx := e.roundMax.Load()
		e.roundMax.Store(0)
		e.flushed.Store(0)
		e.rounds.Add(1)
		e.simNet.Add(int64(e.cost.RoundTime(mx)))
	}
}

// ResetRow rewinds and clears worker src's outgoing buffers. Called by
// worker src after every peer has consumed the round's data. It also
// runs the retained-capacity check of the shrink policy, so a buffer
// inflated by one burst round is handed back to the allocator once the
// steady-state volume proves to be much smaller.
func (e *Exchanger) ResetRow(src int) {
	for d := 0; d < e.m; d++ {
		b := e.out[src][d]
		if n := b.Len(); n > e.peak[src][d] {
			e.peak[src][d] = n
		}
		b.Reset()
	}
	if e.shrink.CheckEvery < 0 {
		return
	}
	e.resets[src]++
	if e.resets[src] < e.shrink.CheckEvery {
		return
	}
	e.resets[src] = 0
	for d := 0; d < e.m; d++ {
		p := e.peak[src][d]
		e.peak[src][d] = 0
		b := e.out[src][d]
		if c := b.Cap(); c > e.shrink.MinRetain && p < c/e.shrink.Slack {
			if p < 1024 {
				p = 1024
			}
			e.out[src][d] = ser.NewBuffer(p)
			e.shrunk.Add(1)
		}
	}
}

// RewindRow rewinds the read cursors of the buffers addressed to dst so
// they can be parsed. Called by worker dst before deserializing.
func (e *Exchanger) RewindRow(dst int) {
	for s := 0; s < e.m; s++ {
		e.out[s][dst].Rewind()
	}
}

// Stats returns the accumulated statistics.
func (e *Exchanger) Stats() Stats {
	return Stats{
		NetworkBytes:  e.netBytes.Load(),
		LocalBytes:    e.localBytes.Load(),
		Rounds:        e.rounds.Load(),
		ShrunkBuffers: e.shrunk.Load(),
		SimNetTime:    time.Duration(e.simNet.Load()),
	}
}
