package comm

import (
	"time"

	"repro/internal/barrier"
	"repro/internal/ser"
)

// Fabric is the transport seam of the BSP engines: everything a job
// needs to move bytes and synchronize between workers, with no
// assumption that the workers share an address space. The engines speak
// only this interface (plus barrier.Barrier); the in-process
// implementation below keeps the zero-copy shared-memory fast path,
// while internal/netcomm implements the same contract with
// length-prefixed frames over TCP/Unix sockets so workers can live in
// separate processes.
//
// The per-round protocol every endpoint follows is fixed:
//
//	serialize into Out(dst) for every dst  (dst == own id is loopback)
//	Flush()                                 publish the round
//	Barrier().Wait()                        all sends published
//	read In(src) for every src              deliver
//	Barrier().Wait() / AllReduce(...)       all inputs consumed
//	Release()                               recycle the round's buffers
//
// In(src) is valid only between the post-flush crossing and the next
// crossing; Release may only be called after the post-deliver crossing
// (which proves every peer is done reading this worker's buffers).
type Fabric interface {
	// NumWorkers returns the job-wide worker count M.
	NumWorkers() int
	// LocalWorkers returns the ids of the workers hosted in this
	// process, ascending. The engines spawn one goroutine per local
	// worker; remote ids have no endpoint here.
	LocalWorkers() []int
	// Endpoint returns the per-worker transport handle for a local
	// worker id.
	Endpoint(id int) Endpoint
	// Barrier returns the job's synchronization barrier, shared by all
	// local workers (and, for distributed fabrics, coordinated with the
	// remote processes over the control connection).
	Barrier() barrier.Barrier
	// Stats returns the communication statistics accumulated so far.
	// For distributed fabrics the process-local view covers only
	// locally observable traffic; job-wide totals live on the hub.
	Stats() Stats
	// Close releases transport resources. Engines do not call it — the
	// fabric's owner does, after every Run sharing it has returned.
	Close() error
}

// Endpoint is one worker's handle on the fabric. It is not safe for
// concurrent use; exactly one worker goroutine owns it.
type Endpoint interface {
	// Out returns the outgoing staging buffer for dst this round.
	Out(dst int) *ser.Buffer
	// Flush publishes the round's outgoing buffers (in-process:
	// accounting only, the buffers are shared; socket: frames hit the
	// wire). A transport failure aborts the job's barrier and is
	// returned here so the worker can surface the root cause.
	Flush() error
	// In returns the buffer received from src this round.
	In(src int) *ser.Buffer
	// Release recycles the round's buffers.
	Release()
	// Stall returns the cumulative time this endpoint's Flush calls
	// have spent blocked on an exhausted flow-control window. Transports
	// without backpressure (the in-process fabric, the hub relay) always
	// return zero.
	Stall() time.Duration
}

// InProc is the shared-memory Fabric: all M workers in one process,
// exchanging through the zero-copy Exchanger matrix and synchronizing
// on the atomic in-process barrier.
type InProc struct {
	ex  *Exchanger
	bar *barrier.Shared
	loc []int
	eps []inprocEndpoint
}

// NewInProc creates the in-process fabric for m workers.
func NewInProc(m int, cost CostModel) *InProc {
	f := &InProc{
		ex:  NewExchanger(m, cost),
		bar: barrier.New(m),
		loc: make([]int, m),
		eps: make([]inprocEndpoint, m),
	}
	for i := 0; i < m; i++ {
		f.loc[i] = i
		f.eps[i] = inprocEndpoint{ex: f.ex, id: i}
	}
	return f
}

// Exchanger exposes the underlying buffer matrix (for policy tweaks
// like SetShrinkPolicy).
func (f *InProc) Exchanger() *Exchanger { return f.ex }

// NumWorkers implements Fabric.
func (f *InProc) NumWorkers() int { return f.ex.NumWorkers() }

// LocalWorkers implements Fabric: every worker is local.
func (f *InProc) LocalWorkers() []int { return f.loc }

// Endpoint implements Fabric.
func (f *InProc) Endpoint(id int) Endpoint { return &f.eps[id] }

// Barrier implements Fabric.
func (f *InProc) Barrier() barrier.Barrier { return f.bar }

// Stats implements Fabric.
func (f *InProc) Stats() Stats { return f.ex.Stats() }

// Close implements Fabric. The in-process fabric holds no external
// resources.
func (f *InProc) Close() error { return nil }

type inprocEndpoint struct {
	ex *Exchanger
	id int
}

func (e *inprocEndpoint) Out(dst int) *ser.Buffer { return e.ex.Out(e.id, dst) }
func (e *inprocEndpoint) Flush() error            { e.ex.FinishSerialize(e.id); return nil }
func (e *inprocEndpoint) In(src int) *ser.Buffer  { return e.ex.In(e.id, src) }
func (e *inprocEndpoint) Release()                { e.ex.ResetRow(e.id) }
func (e *inprocEndpoint) Stall() time.Duration    { return 0 }
