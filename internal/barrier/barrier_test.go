package barrier

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Lockstep correctness: no party may start phase k+1 before every party
// finished phase k.
func TestBarrierLockstep(t *testing.T) {
	const n, rounds = 4, 200
	b := New(n)
	var phase [n]atomic.Int32
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				phase[p].Store(int32(r))
				if !b.Wait() {
					t.Errorf("party %d: unexpected abort", p)
					return
				}
				// after the barrier, nobody may still be in phase r-1
				for q := 0; q < n; q++ {
					if got := phase[q].Load(); got < int32(r) {
						t.Errorf("party %d phase %d while %d crossed round %d", q, got, p, r)
						return
					}
				}
				if !b.Wait() {
					t.Errorf("party %d: unexpected abort", p)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestBarrierAbortReleasesWaiters(t *testing.T) {
	const n = 3
	b := New(n)
	results := make(chan bool, n-1)
	for p := 0; p < n-1; p++ {
		go func() { results <- b.Wait() }()
	}
	// the n-th party never arrives; it aborts instead
	b.Abort()
	for p := 0; p < n-1; p++ {
		if <-results {
			t.Errorf("waiter %d: Wait returned true after abort", p)
		}
	}
	// future waits return false immediately
	if b.Wait() {
		t.Error("post-abort Wait returned true")
	}
}

func TestJoinErrors(t *testing.T) {
	boom := errors.New("boom")
	dup := errors.New("same")
	if err := JoinErrors([]error{nil, nil}); err != nil {
		t.Errorf("all-nil join: %v", err)
	}
	if err := JoinErrors([]error{ErrAborted, nil, ErrAborted}); err != nil {
		t.Errorf("abort-only join: %v", err)
	}
	err := JoinErrors([]error{ErrAborted, boom, nil, dup, fmt.Errorf("same")})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("joined error %v does not wrap boom", err)
	}
	want := "boom\nsame"
	if err.Error() != want {
		t.Errorf("joined error %q want %q (dedup + order)", err.Error(), want)
	}
}

// AllReduce must deliver the exact sum of all parties' posts at every
// crossing, including back-to-back crossings exercising both
// accumulator slots.
func TestBarrierAllReduceSums(t *testing.T) {
	const n, rounds = 5, 300
	b := New(n)
	var wg sync.WaitGroup
	errCh := make(chan string, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				v := uint64(p + r*n)
				want := uint64(0)
				for q := 0; q < n; q++ {
					want += uint64(q + r*n)
				}
				got, ok := b.AllReduce(v)
				if !ok || got != want {
					errCh <- fmt.Sprintf("party %d round %d: got %d ok=%v want %d", p, r, got, ok, want)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Error(msg)
	}
}

// Wait and AllReduce crossings interleave (the engines alternate them
// every exchange round).
func TestBarrierMixedCrossings(t *testing.T) {
	const n, rounds = 3, 100
	b := New(n)
	var wg sync.WaitGroup
	bad := make(chan string, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if !b.Wait() {
					bad <- "unexpected abort in Wait"
					return
				}
				got, ok := b.AllReduce(1)
				if !ok || got != n {
					bad <- fmt.Sprintf("round %d: sum=%d ok=%v want %d", r, got, ok, n)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Error(msg)
	}
}

// Abort must release AllReduce waiters with ok=false, and Aborted must
// report it.
func TestBarrierAllReduceAbort(t *testing.T) {
	const n = 3
	b := New(n)
	results := make(chan bool, n-1)
	for p := 0; p < n-1; p++ {
		go func() {
			_, ok := b.AllReduce(7)
			results <- ok
		}()
	}
	b.Abort()
	for p := 0; p < n-1; p++ {
		if <-results {
			t.Errorf("AllReduce returned ok after abort")
		}
	}
	if !b.Aborted() {
		t.Error("Aborted() = false after Abort")
	}
	if _, ok := b.AllReduce(1); ok {
		t.Error("post-abort AllReduce returned ok")
	}
}
