package barrier

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Lockstep correctness: no party may start phase k+1 before every party
// finished phase k.
func TestBarrierLockstep(t *testing.T) {
	const n, rounds = 4, 200
	b := New(n)
	var phase [n]atomic.Int32
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				phase[p].Store(int32(r))
				if !b.Wait() {
					t.Errorf("party %d: unexpected abort", p)
					return
				}
				// after the barrier, nobody may still be in phase r-1
				for q := 0; q < n; q++ {
					if got := phase[q].Load(); got < int32(r) {
						t.Errorf("party %d phase %d while %d crossed round %d", q, got, p, r)
						return
					}
				}
				if !b.Wait() {
					t.Errorf("party %d: unexpected abort", p)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestBarrierAbortReleasesWaiters(t *testing.T) {
	const n = 3
	b := New(n)
	results := make(chan bool, n-1)
	for p := 0; p < n-1; p++ {
		go func() { results <- b.Wait() }()
	}
	// the n-th party never arrives; it aborts instead
	b.Abort()
	for p := 0; p < n-1; p++ {
		if <-results {
			t.Errorf("waiter %d: Wait returned true after abort", p)
		}
	}
	// future waits return false immediately
	if b.Wait() {
		t.Error("post-abort Wait returned true")
	}
}

func TestJoinErrors(t *testing.T) {
	boom := errors.New("boom")
	dup := errors.New("same")
	if err := JoinErrors([]error{nil, nil}); err != nil {
		t.Errorf("all-nil join: %v", err)
	}
	if err := JoinErrors([]error{ErrAborted, nil, ErrAborted}); err != nil {
		t.Errorf("abort-only join: %v", err)
	}
	err := JoinErrors([]error{ErrAborted, boom, nil, dup, fmt.Errorf("same")})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("joined error %v does not wrap boom", err)
	}
	want := "boom\nsame"
	if err.Error() != want {
		t.Errorf("joined error %q want %q (dedup + order)", err.Error(), want)
	}
}
