// Package barrier provides the M-party synchronization barrier of the
// BSP engines. The exchange loop crosses a barrier four times per
// exchange round, so the crossing itself is on the hot path: Wait uses
// an atomic sense-reversing fast path (arrival counter + generation
// word) with a bounded spin, and falls back to a condition variable
// only for stragglers, so a round where all workers arrive together
// costs a handful of atomic operations and no mutex hand-offs.
//
// A barrier can be aborted: a worker that fails mid-superstep calls
// Abort to release every current and future waiter, which lets its
// peers observe the failure and return instead of deadlocking on a
// barrier the failed worker will never reach.
package barrier

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrAborted is the sentinel a worker returns when it stopped because a
// peer aborted the shared barrier; JoinErrors filters it out so only
// root causes surface to the caller.
var ErrAborted = errors.New("barrier: aborted: another worker failed")

// ErrCancelled is what an engine Run returns when its Config.Cancel
// channel closed mid-run: the abort was requested by the caller, so it
// surfaces as this distinct sentinel instead of a worker failure (the
// job service maps it to the "cancelled" state).
var ErrCancelled = errors.New("run cancelled")

// JoinErrors joins all real worker errors in worker order, dropping
// abort echoes and duplicate messages (a symmetric failure every worker
// hits, like a superstep cap, surfaces once rather than once per
// worker).
func JoinErrors(errs []error) error {
	var real []error
	seen := make(map[string]bool)
	for _, err := range errs {
		if err == nil || errors.Is(err, ErrAborted) {
			continue
		}
		if msg := err.Error(); !seen[msg] {
			seen[msg] = true
			real = append(real, err)
		}
	}
	return errors.Join(real...)
}

// Barrier synchronizes a fixed party of n goroutines.
type Barrier struct {
	n       int32
	arrived atomic.Int32
	gen     atomic.Uint64 // sense word: bumped once per completed crossing
	aborted atomic.Bool
	blocked atomic.Int32 // waiters parked on cond
	mu      sync.Mutex
	cond    *sync.Cond
}

// New creates a barrier for n parties.
func New(n int) *Barrier {
	b := &Barrier{n: int32(n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// spinRounds bounds the fast-path spin before a waiter parks. Each
// iteration yields the processor, so stragglers cost scheduler quanta,
// not burned cores.
const spinRounds = 64

// Wait blocks until all n parties have called Wait (returning true) or
// the barrier is aborted (returning false, immediately, for every
// current and future call).
func (b *Barrier) Wait() bool {
	if b.aborted.Load() {
		return false
	}
	gen := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		// Last arriver releases the generation: reset the counter
		// before bumping the sense word so no releasee can re-arrive
		// early, then wake any parked stragglers.
		b.arrived.Store(0)
		b.gen.Add(1)
		if b.blocked.Load() > 0 {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		}
		return !b.aborted.Load()
	}
	for i := 0; i < spinRounds; i++ {
		if b.gen.Load() != gen || b.aborted.Load() {
			return !b.aborted.Load()
		}
		runtime.Gosched()
	}
	b.mu.Lock()
	b.blocked.Add(1)
	for b.gen.Load() == gen && !b.aborted.Load() {
		b.cond.Wait()
	}
	b.blocked.Add(-1)
	b.mu.Unlock()
	return !b.aborted.Load()
}

// WatchCancel aborts b when cancel closes — the engines' cancellation
// path: the abort releases every barrier crossing, so all workers
// unwind with ErrAborted. The returned closure stops the watcher and
// reports whether cancellation fired; the engines call it exactly once,
// after all workers have returned, and substitute ErrCancelled when no
// real worker error explains the abort. A nil cancel channel installs
// no watcher.
func WatchCancel(cancel <-chan struct{}, b *Barrier) func() bool {
	if cancel == nil {
		return func() bool { return false }
	}
	var fired atomic.Bool
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-cancel:
			fired.Store(true)
			b.Abort()
		case <-stop:
		}
	}()
	return func() bool {
		close(stop)
		<-done
		return fired.Load()
	}
}

// Abort permanently releases the barrier: every waiter currently parked
// or spinning observes the release, and all subsequent Wait calls
// return false without blocking.
func (b *Barrier) Abort() {
	b.aborted.Store(true)
	b.gen.Add(1) // release spinners and park-loop checks
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}
