// Package barrier provides the M-party synchronization barrier of the
// BSP engines. The exchange loop crosses a barrier twice per exchange
// round, so the crossing itself is on the hot path: the in-process
// implementation (Shared) uses an atomic sense-reversing fast path
// (arrival counter + generation word) with a bounded spin, and falls
// back to a condition variable only for stragglers, so a round where
// all workers arrive together costs a handful of atomic operations and
// no mutex hand-offs.
//
// Barrier is an interface so the synchronization can leave the address
// space: internal/netcomm implements it as a message-based distributed
// barrier over the socket fabric's control connection, with the same
// abort semantics. Engines hold the interface and never assume their
// peers share memory.
//
// A barrier can be aborted: a worker that fails mid-superstep calls
// Abort to release every current and future waiter, which lets its
// peers observe the failure and return instead of deadlocking on a
// barrier the failed worker will never reach.
//
// The barrier itself records no timing: per-superstep barrier-wait
// (straggler skew) is measured by the engines around their Wait and
// AllReduce calls and reported through the internal/obs Observer seam.
// Keeping the crossing timing-free preserves the atomic fast path when
// no observer is attached.
package barrier

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrAborted is the sentinel a worker returns when it stopped because a
// peer aborted the shared barrier; JoinErrors filters it out so only
// root causes surface to the caller.
var ErrAborted = errors.New("barrier: aborted: another worker failed")

// ErrCancelled is what an engine Run returns when its Config.Cancel
// channel closed mid-run: the abort was requested by the caller, so it
// surfaces as this distinct sentinel instead of a worker failure (the
// job service maps it to the "cancelled" state).
var ErrCancelled = errors.New("run cancelled")

// Barrier synchronizes a fixed party of workers. All parties must make
// the same sequence of crossings (Wait and AllReduce calls at the same
// program points); the implementations only distinguish crossings by
// order of arrival.
type Barrier interface {
	// Wait blocks until all parties have arrived (returning true) or the
	// barrier is aborted (returning false, immediately, for every
	// current and future call).
	Wait() bool
	// AllReduce is a crossing that also reduces: every party posts v and
	// receives the sum of all parties' posts for this crossing. It
	// returns (0, false) once the barrier is aborted. Engines encode OR
	// as 0/1 posts and pack multiple small fields into the one word.
	AllReduce(v uint64) (uint64, bool)
	// Abort permanently releases the barrier: every waiter currently
	// blocked observes the release, and all subsequent crossings fail
	// without blocking.
	Abort()
	// Aborted reports whether Abort was called (locally or, for
	// distributed implementations, anywhere in the party).
	Aborted() bool
}

// JoinErrors joins all real worker errors in worker order, dropping
// abort echoes and duplicate messages (a symmetric failure every worker
// hits, like a superstep cap, surfaces once rather than once per
// worker).
func JoinErrors(errs []error) error {
	var real []error
	seen := make(map[string]bool)
	for _, err := range errs {
		if err == nil || errors.Is(err, ErrAborted) {
			continue
		}
		if msg := err.Error(); !seen[msg] {
			seen[msg] = true
			real = append(real, err)
		}
	}
	return errors.Join(real...)
}

// Shared is the in-process Barrier: a fixed party of n goroutines
// synchronizing through atomics in shared memory.
type Shared struct {
	n       int32
	arrived atomic.Int32
	gen     atomic.Uint64 // sense word: bumped once per completed crossing
	aborted atomic.Bool
	blocked atomic.Int32 // waiters parked on cond
	// acc holds the AllReduce accumulators, indexed by crossing parity:
	// crossing g posts into acc[g&1] while the last arriver of g clears
	// acc[(g+1)&1] before releasing, so consecutive crossings never
	// share a slot.
	acc  [2]atomic.Uint64
	mu   sync.Mutex
	cond *sync.Cond
}

// New creates an in-process barrier for n parties.
func New(n int) *Shared {
	b := &Shared{n: int32(n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// spinRounds bounds the fast-path spin before a waiter parks. Each
// iteration yields the processor, so stragglers cost scheduler quanta,
// not burned cores.
const spinRounds = 64

// Wait implements Barrier.
func (b *Shared) Wait() bool {
	if b.aborted.Load() {
		return false
	}
	gen := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		b.release(gen)
		return !b.aborted.Load()
	}
	return b.await(gen)
}

// AllReduce implements Barrier.
func (b *Shared) AllReduce(v uint64) (uint64, bool) {
	if b.aborted.Load() {
		return 0, false
	}
	gen := b.gen.Load()
	slot := &b.acc[gen&1]
	if v != 0 {
		slot.Add(v)
	}
	if b.arrived.Add(1) == b.n {
		b.release(gen)
		return slot.Load(), !b.aborted.Load()
	}
	ok := b.await(gen)
	return slot.Load(), ok
}

// release is the last arriver's duty: reset the counter and the next
// crossing's accumulator before bumping the sense word so no releasee
// can re-arrive or re-post early, then wake any parked stragglers.
func (b *Shared) release(gen uint64) {
	b.arrived.Store(0)
	b.acc[(gen+1)&1].Store(0)
	b.gen.Add(1)
	if b.blocked.Load() > 0 {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// await spins, then parks, until the crossing at gen is released or the
// barrier aborts; it reports !aborted.
func (b *Shared) await(gen uint64) bool {
	for i := 0; i < spinRounds; i++ {
		if b.gen.Load() != gen || b.aborted.Load() {
			return !b.aborted.Load()
		}
		runtime.Gosched()
	}
	b.mu.Lock()
	b.blocked.Add(1)
	for b.gen.Load() == gen && !b.aborted.Load() {
		b.cond.Wait()
	}
	b.blocked.Add(-1)
	b.mu.Unlock()
	return !b.aborted.Load()
}

// WatchCancel aborts b when cancel closes — the engines' cancellation
// path: the abort releases every barrier crossing, so all workers
// unwind with ErrAborted. The returned closure stops the watcher and
// reports whether cancellation fired; the engines call it exactly once,
// after all workers have returned, and substitute ErrCancelled when no
// real worker error explains the abort. A nil cancel channel installs
// no watcher.
func WatchCancel(cancel <-chan struct{}, b Barrier) func() bool {
	if cancel == nil {
		return func() bool { return false }
	}
	var fired atomic.Bool
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-cancel:
			fired.Store(true)
			b.Abort()
		case <-stop:
		}
	}()
	return func() bool {
		close(stop)
		<-done
		return fired.Load()
	}
}

// Abort implements Barrier.
func (b *Shared) Abort() {
	b.aborted.Store(true)
	b.gen.Add(1) // release spinners and park-loop checks
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Aborted implements Barrier.
func (b *Shared) Aborted() bool { return b.aborted.Load() }
