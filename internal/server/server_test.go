package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/catalog"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/seq"
)

// testService spins up the full stack: catalog, manager, HTTP server.
func testService(t *testing.T, poolWorkers int) (*catalog.Catalog, *jobs.Manager, *httptest.Server) {
	t.Helper()
	cat := catalog.New(8, 0)
	for _, spec := range []catalog.Spec{
		{Name: "social", Gen: "social:scale=8,ef=4,seed=11"},
		{Name: "grid", Gen: "grid:rows=9,cols=8,maxw=40,seed=5"},
	} {
		if err := cat.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	mgr := jobs.NewManager(cat, poolWorkers)
	ts := httptest.NewServer(New(cat, mgr).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(mgr.Close)
	return cat, mgr, ts
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: HTTP %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
}

func postJob(t *testing.T, base string, req jobs.Request) (jobs.Snapshot, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap jobs.Snapshot
	_ = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, resp.StatusCode
}

func waitDone(t *testing.T, base, id string) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var snap jobs.Snapshot
		getJSON(t, base+"/v1/jobs/"+id, http.StatusOK, &snap)
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Snapshot{}
}

// samePartition asserts two labelings induce the same equivalence
// classes (labels may differ, the grouping may not).
func samePartition(t *testing.T, what string, got, want []graph.VertexID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	fwd := map[graph.VertexID]graph.VertexID{}
	rev := map[graph.VertexID]graph.VertexID{}
	for i := range got {
		if m, ok := fwd[got[i]]; ok && m != want[i] {
			t.Fatalf("%s: vertex %d splits class %d", what, i, got[i])
		}
		if m, ok := rev[want[i]]; ok && m != got[i] {
			t.Fatalf("%s: vertex %d merges classes", what, i)
		}
		fwd[got[i]] = want[i]
		rev[want[i]] = got[i]
	}
}

type resultPayloadT struct {
	ID       string             `json:"id"`
	Kind     string             `json:"kind"`
	Vertices int                `json:"vertices"`
	Offset   int                `json:"offset"`
	Labels   []graph.VertexID   `json:"labels"`
	Ranks    []float64          `json:"ranks"`
	Dists    []int64            `json:"dists"`
	Metrics  algorithms.Metrics `json:"metrics"`
}

// TestConcurrentMixedJobsEndToEnd is the subsystem's acceptance test:
// one daemon, one shared dataset, 8 simultaneous jobs across 4
// algorithms on both engines; every result must match the sequential
// reference and the dataset must load exactly once.
func TestConcurrentMixedJobsEndToEnd(t *testing.T) {
	cat, mgr, ts := testService(t, 4)
	base := ts.URL

	const prIters = 15
	reqs := []jobs.Request{
		{Algorithm: "pagerank", Engine: "channel", Dataset: "social", Params: algorithms.Params{Iterations: prIters}},
		{Algorithm: "pagerank", Engine: "pregel", Dataset: "social", Params: algorithms.Params{Iterations: prIters}},
		{Algorithm: "wcc", Engine: "channel", Dataset: "social"},
		{Algorithm: "wcc", Engine: "pregel", Dataset: "social"},
		{Algorithm: "sv", Engine: "channel", Dataset: "social"},
		{Algorithm: "sv", Engine: "pregel", Dataset: "social"},
		{Algorithm: "scc", Engine: "channel", Dataset: "social"},
		{Algorithm: "scc", Engine: "pregel", Dataset: "social"},
	}

	// submit all jobs at the same moment
	ids := make([]string, len(reqs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req jobs.Request) {
			defer wg.Done()
			snap, status := postJob(t, base, req)
			mu.Lock()
			defer mu.Unlock()
			if status != http.StatusAccepted {
				t.Errorf("submit %+v: HTTP %d", req, status)
				return
			}
			ids[i] = snap.ID
		}(i, req)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("submission failed")
	}

	results := make([]resultPayloadT, len(ids))
	for i, id := range ids {
		snap := waitDone(t, base, id)
		if snap.State != jobs.StateDone {
			t.Fatalf("job %s (%+v): state=%s err=%s", id, reqs[i], snap.State, snap.Error)
		}
		if snap.Metrics == nil || string(snap.Metrics.Engine) != reqs[i].Engine || snap.Metrics.Supersteps == 0 {
			t.Fatalf("job %s: bad metrics %+v", id, snap.Metrics)
		}
		getJSON(t, base+"/v1/jobs/"+id+"/result", http.StatusOK, &results[i])
	}

	// sequential references on the exact cached graph
	entry, err := cat.Get("social")
	if err != nil {
		t.Fatal(err)
	}
	g := entry.Graph
	wantRanks := seq.PageRank(g, prIters)
	wantCC := seq.ConnectedComponents(g)
	wantSCC := seq.SCC(g)

	for i, req := range reqs {
		res := results[i]
		label := fmt.Sprintf("%s/%s", req.Algorithm, req.Engine)
		if res.Vertices != g.NumVertices() {
			t.Fatalf("%s: %d vertices, want %d", label, res.Vertices, g.NumVertices())
		}
		switch req.Algorithm {
		case "pagerank":
			for v := range wantRanks {
				if math.Abs(res.Ranks[v]-wantRanks[v]) > 1e-9 {
					t.Fatalf("%s: rank[%d]=%g want %g", label, v, res.Ranks[v], wantRanks[v])
				}
			}
		case "wcc", "sv":
			samePartition(t, label, res.Labels, wantCC)
		case "scc":
			samePartition(t, label, res.Labels, wantSCC)
		}
	}

	// the 8 jobs plus the reference Get hit one single load
	var stats struct {
		Catalog catalog.Stats `json:"catalog"`
		Jobs    jobs.Stats    `json:"jobs"`
		Memory  struct {
			HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
			HeapSysBytes   uint64 `json:"heap_sys_bytes"`
		} `json:"memory"`
	}
	getJSON(t, base+"/v1/stats", http.StatusOK, &stats)
	if stats.Catalog.Loads != 1 {
		t.Fatalf("catalog loads=%d, want exactly 1", stats.Catalog.Loads)
	}
	if stats.Jobs.Done != len(reqs) || stats.Jobs.Failed != 0 {
		t.Fatalf("jobs stats %+v", stats.Jobs)
	}
	if stats.Memory.HeapAllocBytes == 0 || stats.Memory.HeapSysBytes == 0 {
		t.Fatalf("memory stats missing: %+v", stats.Memory)
	}

	// clean shutdown: manager drains and refuses new work
	mgr.Close()
	if _, status := postJob(t, base, reqs[0]); status != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: HTTP %d, want 503", status)
	}
}

func TestResultPagingAndSSSP(t *testing.T) {
	cat, _, ts := testService(t, 2)
	base := ts.URL

	snap, status := postJob(t, base, jobs.Request{Algorithm: "sssp", Engine: "channel",
		Dataset: "grid", Params: algorithms.Params{Source: 4}})
	if status != http.StatusAccepted {
		t.Fatalf("HTTP %d", status)
	}
	waitDone(t, base, snap.ID)

	entry, err := cat.Get("grid")
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Dijkstra(entry.Graph, 4)

	var full resultPayloadT
	getJSON(t, base+"/v1/jobs/"+snap.ID+"/result", http.StatusOK, &full)
	if full.Kind != "dists" || len(full.Dists) != len(want) {
		t.Fatalf("kind=%s n=%d", full.Kind, len(full.Dists))
	}
	for i := range want {
		if full.Dists[i] != want[i] {
			t.Fatalf("dist[%d]=%d want %d", i, full.Dists[i], want[i])
		}
	}

	var page resultPayloadT
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%s/result?offset=10&limit=7", base, snap.ID), http.StatusOK, &page)
	if page.Offset != 10 || len(page.Dists) != 7 || page.Vertices != len(want) {
		t.Fatalf("offset=%d len=%d vertices=%d", page.Offset, len(page.Dists), page.Vertices)
	}
	for i, d := range page.Dists {
		if d != want[10+i] {
			t.Fatalf("paged dist mismatch at %d", i)
		}
	}

	getJSON(t, base+"/v1/jobs/"+snap.ID+"/result?offset=-1", http.StatusBadRequest, nil)
}

func TestAPIErrorsAndIntrospection(t *testing.T) {
	_, _, ts := testService(t, 1)
	base := ts.URL

	getJSON(t, base+"/v1/healthz", http.StatusOK, nil)
	getJSON(t, base+"/v1/jobs/j-999999", http.StatusNotFound, nil)
	getJSON(t, base+"/v1/jobs/j-999999/result", http.StatusNotFound, nil)

	// malformed and invalid submissions
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: HTTP %d", resp.StatusCode)
	}
	if _, status := postJob(t, base, jobs.Request{Algorithm: "nope", Dataset: "social"}); status != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: HTTP %d", status)
	}
	if _, status := postJob(t, base, jobs.Request{Algorithm: "wcc", Dataset: "nope"}); status != http.StatusBadRequest {
		t.Fatalf("unknown dataset: HTTP %d", status)
	}

	// a failed job exists: its /result is a 409 conflict, not a 404
	failed, _ := postJob(t, base, jobs.Request{Algorithm: "msf", Dataset: "social"})
	if snap := waitDone(t, base, failed.ID); snap.State != jobs.StateFailed {
		t.Fatalf("msf on unweighted dataset: state=%s", snap.State)
	}
	getJSON(t, base+"/v1/jobs/"+failed.ID+"/result", http.StatusConflict, nil)

	// introspection endpoints
	var ds struct {
		Datasets []catalog.Info `json:"datasets"`
	}
	getJSON(t, base+"/v1/datasets", http.StatusOK, &ds)
	if len(ds.Datasets) != 2 || ds.Datasets[0].Name != "social" {
		t.Fatalf("datasets %+v", ds.Datasets)
	}
	var algs struct {
		Algorithms []struct {
			Name     string              `json:"name"`
			Variants map[string][]string `json:"variants"`
		} `json:"algorithms"`
	}
	getJSON(t, base+"/v1/algorithms", http.StatusOK, &algs)
	if len(algs.Algorithms) != 7 {
		t.Fatalf("%d algorithms", len(algs.Algorithms))
	}
	for _, a := range algs.Algorithms {
		if len(a.Variants["channel"]) == 0 || len(a.Variants["pregel"]) == 0 {
			t.Fatalf("%s: missing engine variants %+v", a.Name, a.Variants)
		}
	}

	// listing reflects submitted jobs
	snap, _ := postJob(t, base, jobs.Request{Algorithm: "wcc", Dataset: "social"})
	waitDone(t, base, snap.ID)
	var list struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	getJSON(t, base+"/v1/jobs", http.StatusOK, &list)
	if len(list.Jobs) != 2 || list.Jobs[1].ID != snap.ID {
		t.Fatalf("jobs list %+v", list.Jobs)
	}
}

// Placement selection over the wire: a greedy-placement job round-trips
// through /v1, reports placement + edge cut in its metrics, and
// produces the same components as the default hash placement.
func TestPlacementOverHTTP(t *testing.T) {
	cat, _, ts := testService(t, 1)
	// a grid large enough that BFS region growing clearly beats hash
	if err := cat.Register(catalog.Spec{Name: "road", Gen: "grid:rows=24,cols=24,maxw=40,seed=5"}); err != nil {
		t.Fatal(err)
	}
	if _, code := postJob(t, ts.URL, jobs.Request{Algorithm: "wcc", Dataset: "road", Placement: "metis"}); code != http.StatusBadRequest {
		t.Fatalf("bad placement: HTTP %d", code)
	}
	run := func(placement string) (jobs.Snapshot, resultPayloadT) {
		snap, code := postJob(t, ts.URL, jobs.Request{Algorithm: "wcc", Dataset: "road", Placement: placement})
		if code != http.StatusAccepted {
			t.Fatalf("placement %q: HTTP %d", placement, code)
		}
		snap = waitDone(t, ts.URL, snap.ID)
		if snap.State != jobs.StateDone {
			t.Fatalf("placement %q: state %s (%s)", placement, snap.State, snap.Error)
		}
		var res resultPayloadT
		getJSON(t, ts.URL+"/v1/jobs/"+snap.ID+"/result", http.StatusOK, &res)
		return snap, res
	}
	hSnap, hRes := run("hash")
	gSnap, gRes := run("greedy")
	if hSnap.Metrics.Placement != "hash" || gSnap.Metrics.Placement != "greedy" {
		t.Fatalf("metrics placements: %q / %q", hSnap.Metrics.Placement, gSnap.Metrics.Placement)
	}
	if gSnap.Metrics.EdgeCut <= 0 || gSnap.Metrics.EdgeCut >= hSnap.Metrics.EdgeCut {
		t.Fatalf("edge cuts: greedy %.3f vs hash %.3f", gSnap.Metrics.EdgeCut, hSnap.Metrics.EdgeCut)
	}
	samePartition(t, "wcc hash vs greedy", hRes.Labels, gRes.Labels)
}

// waitState polls until the job leaves the pending state.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var snap jobs.Snapshot
		getJSON(t, base+"/v1/jobs/"+id, http.StatusOK, &snap)
		if snap.State == jobs.StateRunning || snap.State.Terminal() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// Live datasets over HTTP: batch ingest (text and JSON bodies), forced
// compaction, the detail endpoint's epoch/delta stats, epoch-stamped
// job metrics, and ingest sustained concurrently with running jobs.
func TestLiveIngestJobsAndDetail(t *testing.T) {
	cat, _, ts := testService(t, 4)
	base := ts.URL
	t.Cleanup(cat.Close)
	if err := cat.Register(catalog.Spec{Name: "feed", Gen: "rmat:scale=8,ef=4,seed=33", Mutable: true}); err != nil {
		t.Fatal(err)
	}

	// ingesting into an immutable dataset is a conflict, decided from
	// the spec alone — the rejected request must not load the dataset
	resp, err := http.Post(base+"/v1/datasets/social/edges", "text/plain", strings.NewReader("1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("immutable ingest: HTTP %d, want 409", resp.StatusCode)
	}
	var dl struct {
		Datasets []catalog.Info `json:"datasets"`
	}
	getJSON(t, base+"/v1/datasets", http.StatusOK, &dl)
	for _, d := range dl.Datasets {
		if d.Name == "social" && d.Loaded {
			t.Fatal("rejected ingest loaded the immutable dataset")
		}
	}
	// unknown dataset is a 404; malformed bodies are 400
	resp, _ = http.Post(base+"/v1/datasets/nope/edges", "text/plain", strings.NewReader("1 2\n"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ingest: HTTP %d, want 404", resp.StatusCode)
	}
	resp, _ = http.Post(base+"/v1/datasets/feed/edges", "text/plain", strings.NewReader("bogus\n"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest: HTTP %d, want 400", resp.StatusCode)
	}

	// text body + forced compaction
	var ing struct {
		Inserts int `json:"inserts"`
		Deletes int `json:"deletes"`
		Live    struct {
			Epoch       uint64 `json:"epoch"`
			Compactions uint64 `json:"compactions"`
			PendingOps  int    `json:"pending_ops"`
		} `json:"live"`
	}
	resp, err = http.Post(base+"/v1/datasets/feed/edges?compact=now", "text/plain",
		strings.NewReader("# two inserts, one delete\n1 2 7\n3 4\n- 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ing.Inserts != 2 || ing.Deletes != 1 || ing.Live.Epoch != 2 || ing.Live.PendingOps != 0 {
		t.Fatalf("text ingest response %+v", ing)
	}

	// JSON body
	jsonBody := `{"inserts":[{"src":5,"dst":6,"weight":3}],"deletes":[{"src":1,"dst":2}]}`
	resp, err = http.Post(base+"/v1/datasets/feed/edges?compact=now", "application/json", strings.NewReader(jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ing.Inserts != 1 || ing.Deletes != 1 || ing.Live.Epoch != 3 {
		t.Fatalf("json ingest response %+v", ing)
	}

	// jobs record the epoch they executed against
	snap, status := postJob(t, base, jobs.Request{Algorithm: "wcc", Dataset: "feed"})
	if status != http.StatusAccepted {
		t.Fatalf("HTTP %d", status)
	}
	snap = waitDone(t, base, snap.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("state %s (%s)", snap.State, snap.Error)
	}
	if snap.Metrics == nil || snap.Metrics.Epoch != 3 {
		t.Fatalf("job metrics epoch = %+v, want 3", snap.Metrics)
	}

	// sustained concurrent ingest + jobs: no torn epochs, every job
	// lands on some valid epoch
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf("%d %d\n- %d %d\n", i%251, (i*7)%251, (i*3)%251, (i*11)%251)
			resp, err := http.Post(base+"/v1/datasets/feed/edges", "text/plain", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			i++
		}
	}()
	var ids []string
	for k := 0; k < 6; k++ {
		s, code := postJob(t, base, jobs.Request{Algorithm: "pagerank", Dataset: "feed",
			Engine: []string{"channel", "pregel"}[k%2], Params: algorithms.Params{Iterations: 10}})
		if code != http.StatusAccepted {
			t.Fatalf("HTTP %d", code)
		}
		ids = append(ids, s.ID)
	}
	for _, id := range ids {
		s := waitDone(t, base, id)
		if s.State != jobs.StateDone {
			t.Fatalf("job %s: %s (%s)", id, s.State, s.Error)
		}
		if s.Metrics.Epoch < 3 {
			t.Fatalf("job %s: epoch %d", id, s.Metrics.Epoch)
		}
	}
	close(stop)
	wg.Wait()

	// quiesce, compact, and check end-state equivalence over HTTP: WCC
	// on the live dataset equals the sequential oracle on the exact
	// current epoch graph
	resp, _ = http.Post(base+"/v1/datasets/feed/edges?compact=now", "text/plain", strings.NewReader("# flush\n250 0\n"))
	resp.Body.Close()
	entry, err := cat.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	ep := entry.Live().Pin()
	defer ep.Release()
	want := seq.ConnectedComponents(graph.Undirectify(ep.Graph()))
	snap, _ = postJob(t, base, jobs.Request{Algorithm: "wcc", Dataset: "feed"})
	snap = waitDone(t, base, snap.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("final wcc: %s (%s)", snap.State, snap.Error)
	}
	if snap.Metrics.Epoch != ep.Seq() {
		t.Fatalf("final wcc epoch %d, want %d", snap.Metrics.Epoch, ep.Seq())
	}
	var res resultPayloadT
	getJSON(t, base+"/v1/jobs/"+snap.ID+"/result", http.StatusOK, &res)
	samePartition(t, "live wcc vs oracle", res.Labels, want)

	// detail endpoint: live stats + materialized views
	var detail struct {
		Name    string `json:"name"`
		Mutable bool   `json:"mutable"`
		Epoch   uint64 `json:"epoch"`
		Views   []struct {
			Placement  string  `json:"placement"`
			Undirected bool    `json:"undirected"`
			EdgeCut    float64 `json:"edge_cut"`
		} `json:"views"`
		Live *struct {
			Epoch       uint64 `json:"epoch"`
			Compactions uint64 `json:"compactions"`
			Retired     uint64 `json:"retired_epochs"`
			LiveEpochs  int    `json:"live_epochs"`
		} `json:"live"`
	}
	getJSON(t, base+"/v1/datasets/feed", http.StatusOK, &detail)
	if !detail.Mutable || detail.Live == nil || detail.Live.Epoch != ep.Seq() || detail.Live.Compactions < 3 {
		t.Fatalf("detail %+v", detail)
	}
	hasUndir := false
	for _, v := range detail.Views {
		if v.Undirected {
			hasUndir = true
		}
	}
	if !hasUndir {
		t.Fatalf("detail views missing the undirected WCC view: %+v", detail.Views)
	}
	// with the current epoch pinned here plus all others retired,
	// resident epochs must not accumulate
	if detail.Live.LiveEpochs != 1 {
		t.Fatalf("resident epochs %d, want 1 (retired=%d)", detail.Live.LiveEpochs, detail.Live.Retired)
	}
	getJSON(t, base+"/v1/datasets/nope", http.StatusNotFound, nil)

	// static datasets also serve a detail payload (no live section)
	var sd struct {
		Name string    `json:"name"`
		Live *struct{} `json:"live"`
	}
	getJSON(t, base+"/v1/datasets/social", http.StatusOK, &sd)
	if sd.Live != nil {
		t.Fatalf("static dataset reports live stats")
	}
}

// DELETE /v1/jobs/{id} on a running job aborts it through the barrier.
func TestCancelRunningJobOverHTTP(t *testing.T) {
	_, _, ts := testService(t, 1)
	base := ts.URL

	snap, status := postJob(t, base, jobs.Request{Algorithm: "pagerank", Dataset: "grid",
		Params: algorithms.Params{Iterations: 150000}, MaxSupersteps: 200001})
	if status != http.StatusAccepted {
		t.Fatalf("HTTP %d", status)
	}
	waitRunning(t, base, snap.ID)

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+snap.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE running job: HTTP %d", resp.StatusCode)
	}
	final := waitDone(t, base, snap.ID)
	if final.State != jobs.StateCancelled {
		t.Fatalf("state %s (%s), want cancelled", final.State, final.Error)
	}
	// its result is a conflict, and a second DELETE now errors (terminal)
	getJSON(t, base+"/v1/jobs/"+snap.ID+"/result", http.StatusConflict, nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE: HTTP %d, want 409", resp.StatusCode)
	}
}
