package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workerproc"
)

// TestMain implements the graphworker re-exec so the e2e test below can
// run real multi-process jobs through the HTTP API.
func TestMain(m *testing.M) {
	if os.Getenv(workerproc.ChildEnv) != "" {
		os.Exit(workerproc.Main(os.Args[1:], os.Stderr))
	}
	os.Exit(m.Run())
}

// tracePayloadT mirrors the trace endpoint's JSON for decoding.
type tracePayloadT struct {
	ID         string          `json:"id"`
	State      jobs.State      `json:"state"`
	Workers    int             `json:"workers"`
	Supersteps []obs.TraceStep `json:"supersteps"`
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// End-to-end observability: concurrent in-process and multi-process
// jobs through the HTTP API while /metrics is scraped, then trace
// timelines for both fabrics via /v1/jobs/{id}/trace with identical
// deterministic shape.
func TestMetricsAndTraceEndToEnd(t *testing.T) {
	newStack := func(procs int) string {
		cat := catalog.New(4, 0)
		t.Cleanup(cat.Close)
		if err := cat.Register(catalog.Spec{Name: "rmat", Gen: "rmat:scale=7,ef=5,seed=21"}); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		mopts := []jobs.Option{jobs.WithMetrics(reg)}
		if procs > 0 {
			mopts = append(mopts, jobs.WithWorkerProcs(procs, os.Args[0]))
		}
		mgr := jobs.NewManager(cat, 2, mopts...)
		ts := httptest.NewServer(New(cat, mgr, WithRegistry(reg)).Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(mgr.Close)
		return ts.URL
	}
	inprocURL := newStack(0)
	distURL := newStack(2)

	req := jobs.Request{Algorithm: "wcc", Dataset: "rmat"}
	type outcome struct {
		url  string
		snap jobs.Snapshot
	}
	var wg sync.WaitGroup
	outcomes := make([]outcome, 4)
	// two concurrent jobs per fabric, with /metrics scraped while they
	// run — the scrape must never 500 or race (-race covers the latter)
	for i, base := range []string{inprocURL, inprocURL, distURL, distURL} {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			snap, status := postJob(t, base, req)
			if status != http.StatusAccepted {
				t.Errorf("submit: HTTP %d", status)
				return
			}
			for k := 0; k < 3; k++ {
				_ = getText(t, base+"/metrics")
				time.Sleep(time.Millisecond)
			}
			outcomes[i] = outcome{base, waitDone(t, base, snap.ID)}
		}(i, base)
	}
	wg.Wait()
	for _, o := range outcomes {
		if o.snap.State != jobs.StateDone {
			t.Fatalf("job %s on %s: state=%s err=%q", o.snap.ID, o.url, o.snap.State, o.snap.Error)
		}
	}

	// settled metrics: both stacks counted their two finished jobs
	for _, base := range []string{inprocURL, distURL} {
		body := getText(t, base+"/metrics")
		for _, want := range []string{
			"graphd_jobs_done_total 2",
			"# TYPE graphd_job_duration_seconds histogram",
			"graphd_job_duration_seconds_count 2",
			`graphd_jobs{state="done"} 2`,
			"graphd_catalog_loaded 1",
			"go_goroutines",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("%s/metrics missing %q", base, want)
			}
		}
	}

	// trace parity: same deterministic timeline shape on both fabrics
	var inproc, dist tracePayloadT
	getJSON(t, outcomes[0].url+"/v1/jobs/"+outcomes[0].snap.ID+"/trace", http.StatusOK, &inproc)
	getJSON(t, outcomes[2].url+"/v1/jobs/"+outcomes[2].snap.ID+"/trace", http.StatusOK, &dist)
	if inproc.Workers == 0 || inproc.Workers != dist.Workers {
		t.Fatalf("workers: in-proc %d vs distributed %d", inproc.Workers, dist.Workers)
	}
	if len(inproc.Supersteps) == 0 || len(inproc.Supersteps) != len(dist.Supersteps) {
		t.Fatalf("supersteps: in-proc %d vs distributed %d",
			len(inproc.Supersteps), len(dist.Supersteps))
	}
	for si := range inproc.Supersteps {
		a, b := inproc.Supersteps[si], dist.Supersteps[si]
		if a.Superstep != b.Superstep || len(a.Workers) != len(b.Workers) {
			t.Fatalf("step %d: shape mismatch", si)
		}
		for wi := range a.Workers {
			x, y := a.Workers[wi], b.Workers[wi]
			if x.ActiveVertices != y.ActiveVertices || x.BytesSent != y.BytesSent ||
				x.FramesSent != y.FramesSent || x.Rounds != y.Rounds {
				t.Errorf("step %d worker %d: %+v vs %+v", si, wi, x, y)
			}
		}
	}

	// the distributed job's status carries per-worker wall times
	if m := outcomes[2].snap.Metrics; m == nil || len(m.WorkerWall) != dist.Workers {
		t.Fatalf("distributed job metrics missing WorkerWall: %+v", outcomes[2].snap.Metrics)
	}

	// unknown job: trace is a 404
	getJSON(t, inprocURL+"/v1/jobs/j-999999/trace", http.StatusNotFound, nil)
}
