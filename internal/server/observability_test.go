package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/catalog"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workerproc"
)

// TestMain implements the graphworker re-exec so the e2e test below can
// run real multi-process jobs through the HTTP API.
func TestMain(m *testing.M) {
	if os.Getenv(workerproc.ChildEnv) != "" {
		os.Exit(workerproc.Main(os.Args[1:], os.Stderr))
	}
	os.Exit(m.Run())
}

// tracePayloadT mirrors the trace endpoint's JSON for decoding.
type tracePayloadT struct {
	ID         string          `json:"id"`
	State      jobs.State      `json:"state"`
	Workers    int             `json:"workers"`
	Supersteps []obs.TraceStep `json:"supersteps"`
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// End-to-end observability: concurrent in-process and multi-process
// jobs through the HTTP API while /metrics is scraped, then trace
// timelines for both fabrics via /v1/jobs/{id}/trace with identical
// deterministic shape.
func TestMetricsAndTraceEndToEnd(t *testing.T) {
	newStack := func(procs int) string {
		cat := catalog.New(4, 0)
		t.Cleanup(cat.Close)
		if err := cat.Register(catalog.Spec{Name: "rmat", Gen: "rmat:scale=7,ef=5,seed=21"}); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		mopts := []jobs.Option{jobs.WithMetrics(reg)}
		if procs > 0 {
			mopts = append(mopts, jobs.WithWorkerProcs(procs, os.Args[0]))
		}
		mgr := jobs.NewManager(cat, 2, mopts...)
		ts := httptest.NewServer(New(cat, mgr, WithRegistry(reg)).Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(mgr.Close)
		return ts.URL
	}
	inprocURL := newStack(0)
	distURL := newStack(2)

	req := jobs.Request{Algorithm: "wcc", Dataset: "rmat"}
	type outcome struct {
		url  string
		snap jobs.Snapshot
	}
	var wg sync.WaitGroup
	outcomes := make([]outcome, 4)
	// two concurrent jobs per fabric, with /metrics scraped while they
	// run — the scrape must never 500 or race (-race covers the latter)
	for i, base := range []string{inprocURL, inprocURL, distURL, distURL} {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			snap, status := postJob(t, base, req)
			if status != http.StatusAccepted {
				t.Errorf("submit: HTTP %d", status)
				return
			}
			for k := 0; k < 3; k++ {
				_ = getText(t, base+"/metrics")
				time.Sleep(time.Millisecond)
			}
			outcomes[i] = outcome{base, waitDone(t, base, snap.ID)}
		}(i, base)
	}
	wg.Wait()
	for _, o := range outcomes {
		if o.snap.State != jobs.StateDone {
			t.Fatalf("job %s on %s: state=%s err=%q", o.snap.ID, o.url, o.snap.State, o.snap.Error)
		}
	}

	// settled metrics: both stacks counted their two finished jobs
	for _, base := range []string{inprocURL, distURL} {
		body := getText(t, base+"/metrics")
		for _, want := range []string{
			"graphd_jobs_done_total 2",
			"# TYPE graphd_job_duration_seconds histogram",
			"graphd_job_duration_seconds_count 2",
			`graphd_jobs{state="done"} 2`,
			"graphd_catalog_loaded 1",
			"go_goroutines",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("%s/metrics missing %q", base, want)
			}
		}
	}

	// trace parity: same deterministic timeline shape on both fabrics
	var inproc, dist tracePayloadT
	getJSON(t, outcomes[0].url+"/v1/jobs/"+outcomes[0].snap.ID+"/trace", http.StatusOK, &inproc)
	getJSON(t, outcomes[2].url+"/v1/jobs/"+outcomes[2].snap.ID+"/trace", http.StatusOK, &dist)
	if inproc.Workers == 0 || inproc.Workers != dist.Workers {
		t.Fatalf("workers: in-proc %d vs distributed %d", inproc.Workers, dist.Workers)
	}
	if len(inproc.Supersteps) == 0 || len(inproc.Supersteps) != len(dist.Supersteps) {
		t.Fatalf("supersteps: in-proc %d vs distributed %d",
			len(inproc.Supersteps), len(dist.Supersteps))
	}
	for si := range inproc.Supersteps {
		a, b := inproc.Supersteps[si], dist.Supersteps[si]
		if a.Superstep != b.Superstep || len(a.Workers) != len(b.Workers) {
			t.Fatalf("step %d: shape mismatch", si)
		}
		for wi := range a.Workers {
			x, y := a.Workers[wi], b.Workers[wi]
			if x.ActiveVertices != y.ActiveVertices || x.BytesSent != y.BytesSent ||
				x.FramesSent != y.FramesSent || x.Rounds != y.Rounds {
				t.Errorf("step %d worker %d: %+v vs %+v", si, wi, x, y)
			}
		}
	}

	// the distributed job's status carries per-worker wall times
	if m := outcomes[2].snap.Metrics; m == nil || len(m.WorkerWall) != dist.Workers {
		t.Fatalf("distributed job metrics missing WorkerWall: %+v", outcomes[2].snap.Metrics)
	}

	// unknown job: trace is a 404
	getJSON(t, inprocURL+"/v1/jobs/j-999999/trace", http.StatusNotFound, nil)

	// recovery instruments are always exported, even before any fault
	for _, want := range []string{"graphd_ckpt_recoveries_total", "graphd_job_retries_total"} {
		if body := getText(t, distURL+"/metrics"); !strings.Contains(body, want) {
			t.Errorf("distributed /metrics missing %q", want)
		}
	}
}

// End-to-end recovery observability: a worker process killed mid-job on
// a recovery-enabled stack must leave the job state=done and the
// recovery visible in /metrics as graphd_ckpt_recoveries_total.
func TestRecoveryCountedInMetrics(t *testing.T) {
	cat := catalog.New(4, 0)
	t.Cleanup(cat.Close)
	if err := cat.Register(catalog.Spec{Name: "rmat", Gen: "rmat:scale=7,ef=5,seed=21"}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var pids []int
	mgr := jobs.NewManager(cat, 2,
		jobs.WithMetrics(reg),
		jobs.WithWorkerProcs(4, os.Args[0]),
		jobs.WithRecovery(2, 1),
		jobs.WithSpawnHook(func(jobID string, p []int) {
			mu.Lock()
			if pids == nil {
				pids = append([]int(nil), p...)
			}
			mu.Unlock()
		}))
	ts := httptest.NewServer(New(cat, mgr, WithRegistry(reg)).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(mgr.Close)

	snap, status := postJob(t, ts.URL, jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat",
		Params: algorithms.Params{Iterations: 400}, MaxSupersteps: 200000,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", status)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		got := len(pids)
		mu.Unlock()
		if got > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	victims := pids
	mu.Unlock()
	if len(victims) == 0 {
		t.Fatal("spawn hook never fired")
	}
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(victims[1], syscall.SIGKILL); err != nil {
		t.Skipf("worker already gone: %v", err)
	}
	final := waitDone(t, ts.URL, snap.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q, want done via recovery", final.State, final.Error)
	}
	body := getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, "graphd_ckpt_recoveries_total 1") {
		t.Fatalf("/metrics does not count the recovery:\n%s", grepLines(body, "recoveries"))
	}
	if !strings.Contains(body, `graphd_jobs{state="recovering"} 0`) {
		t.Errorf("/metrics missing the recovering-state gauge:\n%s", grepLines(body, "graphd_jobs{"))
	}
}

// grepLines returns the lines of s containing sub, for failure output.
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
