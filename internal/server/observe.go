package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// flowsPayload is the JSON shape of GET /v1/jobs/{id}/flows: the job's
// flow-level network picture. Flows lists the non-empty (src, dst)
// matrix cells; conns carries p2p flow-control stats and relays the hub
// relay stats, each empty on the other data plane.
type flowsPayload struct {
	ID      string          `json:"id"`
	State   jobs.State      `json:"state"`
	Plane   string          `json:"plane,omitempty"`
	Workers int             `json:"workers"`
	Flows   []obs.FlowStat  `json:"flows"`
	Conns   []obs.ConnStat  `json:"conns,omitempty"`
	Relays  []obs.RelayStat `json:"relays,omitempty"`
}

func (s *Server) getFlows(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, state, err := s.mgr.Flows(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	p := flowsPayload{ID: id, State: state, Plane: m.Plane, Workers: m.Workers,
		Flows: m.Flows, Conns: m.Conns, Relays: m.Relays}
	if p.Flows == nil {
		p.Flows = []obs.FlowStat{}
	}
	writeJSON(w, http.StatusOK, p)
}

// diagnosisPayload is the JSON shape of GET /v1/jobs/{id}/diagnosis.
type diagnosisPayload struct {
	ID     string      `json:"id"`
	State  jobs.State  `json:"state"`
	Report *obs.Report `json:"report"`
}

func (s *Server) getDiagnosis(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, state, err := s.mgr.Diagnosis(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, diagnosisPayload{ID: id, State: state, Report: rep})
}

// streamEvents serves GET /v1/jobs/{id}/events as Server-Sent Events:
// every retained event replays first, then live events follow as the
// job produces them, and the stream ends when the job reaches a
// terminal state. Each frame is
//
//	id: <seq>
//	event: <state|superstep>
//	data: <obs.JobEvent JSON>
//
// so consumers can spot gaps (a slow reader may miss events between
// the replay and the live tail) from the id sequence.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	replay, live, cancel, err := s.mgr.Events(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "event streaming requires a flushing response writer")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(ev obs.JobEvent) bool {
		data, merr := json.Marshal(ev)
		if merr != nil {
			return false
		}
		if _, werr := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); werr != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return // terminal state delivered: stream complete
			}
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
