package server

import (
	"net/http"
	"testing"

	"repro/internal/jobs"
)

type jobListPayload struct {
	Jobs   []jobs.Snapshot `json:"jobs"`
	Total  int             `json:"total"`
	Offset int             `json:"offset"`
}

// GET /v1/jobs supports ?state= filtering plus offset/limit windowing,
// with total counting matches before the window.
func TestListJobsFilterAndWindow(t *testing.T) {
	_, _, ts := testService(t, 2)
	const n = 6
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		snap, code := postJob(t, ts.URL, jobs.Request{Algorithm: "wcc", Dataset: "social"})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		if snap := waitDone(t, ts.URL, id); snap.State != jobs.StateDone {
			t.Fatalf("job %s: %s (%s)", id, snap.State, snap.Error)
		}
	}

	var all jobListPayload
	getJSON(t, ts.URL+"/v1/jobs", http.StatusOK, &all)
	if all.Total != n || len(all.Jobs) != n {
		t.Fatalf("unfiltered: total=%d len=%d want %d", all.Total, len(all.Jobs), n)
	}

	var done jobListPayload
	getJSON(t, ts.URL+"/v1/jobs?state=done", http.StatusOK, &done)
	if done.Total != n {
		t.Fatalf("state=done total=%d want %d", done.Total, n)
	}
	var failed jobListPayload
	getJSON(t, ts.URL+"/v1/jobs?state=failed", http.StatusOK, &failed)
	if failed.Total != 0 || len(failed.Jobs) != 0 {
		t.Fatalf("state=failed: %+v", failed)
	}

	var window jobListPayload
	getJSON(t, ts.URL+"/v1/jobs?state=done&offset=2&limit=3", http.StatusOK, &window)
	if window.Total != n || window.Offset != 2 || len(window.Jobs) != 3 {
		t.Fatalf("window: total=%d offset=%d len=%d", window.Total, window.Offset, len(window.Jobs))
	}
	// oldest-first: the window starts at the third submission
	if window.Jobs[0].ID != ids[2] {
		t.Errorf("window starts at %s, want %s", window.Jobs[0].ID, ids[2])
	}
	// past-the-end offset is empty, not an error
	var empty jobListPayload
	getJSON(t, ts.URL+"/v1/jobs?offset=100", http.StatusOK, &empty)
	if empty.Total != n || len(empty.Jobs) != 0 {
		t.Fatalf("past-end: total=%d len=%d", empty.Total, len(empty.Jobs))
	}

	// invalid inputs are 400s
	getJSON(t, ts.URL+"/v1/jobs?state=bogus", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/jobs?offset=-1", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/jobs?limit=x", http.StatusBadRequest, nil)
}
