// Package server exposes the job service over HTTP/JSON — the graphd
// API. All endpoints live under /v1:
//
//	POST   /v1/jobs                  submit {algorithm, dataset, engine, variant, params}
//	GET    /v1/jobs                  list retained jobs
//	GET    /v1/jobs/{id}             job status + metrics
//	GET    /v1/jobs/{id}/result      per-vertex output (paging: ?offset=&limit=)
//	DELETE /v1/jobs/{id}             cancel a job (queued: immediate; running: aborted)
//	GET    /v1/datasets              catalog contents
//	GET    /v1/datasets/{name}       dataset detail: views, edge cuts, live epoch stats
//	POST   /v1/datasets/{name}/edges ingest an edge batch into a live dataset
//	                                 (JSON {inserts, deletes} or text edge-list body;
//	                                 ?compact=now forces a synchronous compaction)
//	GET    /v1/jobs/{id}/trace       per-worker superstep timeline (JSON)
//	GET    /v1/jobs/{id}/flows       per-(src,dst) flow matrix + transport extras (JSON)
//	GET    /v1/jobs/{id}/diagnosis   automatic bottleneck diagnosis (JSON)
//	GET    /v1/jobs/{id}/events      live job event stream (SSE: states + supersteps)
//	GET    /v1/algorithms            registry contents
//	GET    /v1/healthz               liveness
//	GET    /v1/stats                 catalog + job-manager counters
//	GET    /metrics                  Prometheus text exposition
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/algorithms"
	"repro/internal/catalog"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/live"
	"repro/internal/netcomm"
	"repro/internal/obs"
)

// Server binds the catalog and job manager to an http.Handler.
type Server struct {
	cat     *catalog.Catalog
	mgr     *jobs.Manager
	reg     *obs.Registry
	mux     *http.ServeMux
	version string
	started time.Time
}

// Option tweaks a Server.
type Option func(*Server)

// WithRegistry serves reg at GET /metrics instead of a private empty
// registry — pass the registry the job manager's instruments live on so
// one scrape covers everything.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.reg = reg
		}
	}
}

// WithVersion stamps the build version label on graphd_build_info
// (default "dev").
func WithVersion(v string) Option {
	return func(s *Server) {
		if v != "" {
			s.version = v
		}
	}
}

// New builds a server over an existing catalog and manager (both owned
// by the caller; the server never closes them).
func New(cat *catalog.Catalog, mgr *jobs.Manager, opts ...Option) *Server {
	s := &Server{cat: cat, mgr: mgr, mux: http.NewServeMux(),
		version: "dev", started: time.Now()}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.reg.OnScrape(s.scrape)
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.getResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.getTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/flows", s.getFlows)
	s.mux.HandleFunc("GET /v1/jobs/{id}/diagnosis", s.getDiagnosis)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.streamEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.mux.HandleFunc("GET /v1/datasets", s.listDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.datasetDetail)
	s.mux.HandleFunc("POST /v1/datasets/{name}/edges", s.ingestEdges)
	s.mux.HandleFunc("GET /v1/algorithms", s.listAlgorithms)
	s.mux.HandleFunc("GET /v1/healthz", s.healthz)
	s.mux.HandleFunc("GET /v1/stats", s.stats)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

type errorPayload struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorPayload{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	snap, err := s.mgr.Submit(req)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "queue full") || strings.Contains(err.Error(), "shut down") {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, http.StatusAccepted, snap)
}

// listJobs lists retained jobs, oldest first. Query parameters:
// ?state= filters by lifecycle state, ?offset=/&limit= window the
// matches (job lists are otherwise unbounded); "total" counts matches
// before windowing.
func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	state, err := jobs.ParseState(r.URL.Query().Get("state"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	offset, limit, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	list, total := s.mgr.ListPage(state, offset, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":   list,
		"total":  total,
		"offset": offset,
	})
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// cancelJob cancels queued or running jobs. A running job aborts
// cooperatively, so the snapshot in the response may still say
// "running" for an instant; poll it to observe the terminal state.
func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Cancel(id); err != nil {
		status := http.StatusConflict
		if strings.Contains(err.Error(), "unknown") {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	snap, _ := s.mgr.Get(id)
	writeJSON(w, http.StatusOK, snap)
}

// resultPayload is the JSON shape of GET /v1/jobs/{id}/result. Exactly
// one of Labels/Ranks/Dists/MSF is set, mirroring algorithms.Result;
// vertex-indexed arrays are windowed by offset/limit.
type resultPayload struct {
	ID       string             `json:"id"`
	Kind     string             `json:"kind"`
	Vertices int                `json:"vertices"`
	Offset   int                `json:"offset"`
	Labels   []graph.VertexID   `json:"labels,omitempty"`
	Ranks    []float64          `json:"ranks,omitempty"`
	Dists    []int64            `json:"dists,omitempty"`
	MSF      *msfPayload        `json:"msf,omitempty"`
	Metrics  algorithms.Metrics `json:"metrics"`
}

type msfPayload struct {
	Weight    int64            `json:"weight"`
	EdgeCount int              `json:"edge_count"`
	Comp      []graph.VertexID `json:"comp,omitempty"`
}

func (s *Server) getResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.mgr.Result(id)
	if err != nil {
		// 404 only for jobs the manager no longer knows; a job that
		// exists but has no result (pending, running, failed, cancelled)
		// is a conflict, not a missing resource.
		status := http.StatusConflict
		if _, ok := s.mgr.Get(id); !ok {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	offset, limit, err := pageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p := resultPayload{ID: id, Kind: res.Kind(), Metrics: res.Metrics}
	switch p.Kind {
	case "labels":
		p.Vertices = len(res.Labels)
		p.Offset, p.Labels = window(res.Labels, offset, limit)
	case "ranks":
		p.Vertices = len(res.Ranks)
		p.Offset, p.Ranks = window(res.Ranks, offset, limit)
	case "dists":
		p.Vertices = len(res.Dists)
		p.Offset, p.Dists = window(res.Dists, offset, limit)
	case "msf":
		p.Vertices = len(res.MSF.Comp)
		m := &msfPayload{Weight: res.MSF.Weight, EdgeCount: len(res.MSF.Edges)}
		p.Offset, m.Comp = window(res.MSF.Comp, offset, limit)
		p.MSF = m
	}
	writeJSON(w, http.StatusOK, p)
}

// pageParams parses ?offset= and ?limit= (limit 0 = everything).
func pageParams(r *http.Request) (offset, limit int, err error) {
	q := r.URL.Query()
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("bad offset %q", v)
		}
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			return 0, 0, fmt.Errorf("bad limit %q", v)
		}
	}
	return offset, limit, nil
}

func window[T any](xs []T, offset, limit int) (int, []T) {
	if offset > len(xs) {
		offset = len(xs)
	}
	out := xs[offset:]
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return offset, out
}

func (s *Server) listDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.cat.List()})
}

func (s *Server) datasetDetail(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, err := s.cat.DetailOf(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// ingestPayload is the JSON body of POST /v1/datasets/{name}/edges.
type ingestPayload struct {
	Inserts []ingestEdge `json:"inserts"`
	Deletes []ingestEdge `json:"deletes"`
}

type ingestEdge struct {
	Src    graph.VertexID `json:"src"`
	Dst    graph.VertexID `json:"dst"`
	Weight int32          `json:"weight,omitempty"`
}

// ingestResponse reports where the batch landed.
type ingestResponse struct {
	Dataset  string     `json:"dataset"`
	Inserts  int        `json:"inserts"`
	Deletes  int        `json:"deletes"`
	Live     live.Stats `json:"live"`
	Compacts bool       `json:"compacted,omitempty"` // ?compact=now ran
}

// ingestEdges appends one edge batch to a live dataset's delta log. The
// body is JSON ({"inserts": [{"src","dst","weight"}...], "deletes":
// [...]}) when the Content-Type says so, otherwise the text edge-list
// format ("src dst [weight]" inserts, "- src dst" deletes). Ingesting
// into an unloaded dataset loads it first.
func (s *Server) ingestEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	spec, ok := s.cat.SpecOf(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	if !spec.Mutable {
		// rejected from the spec alone — a bad ingest request must not
		// trigger an expensive load (and possible evictions) for nothing
		writeError(w, http.StatusConflict, "dataset %q is immutable (register it with mutable: true)", name)
		return
	}
	entry, err := s.cat.Get(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	lg := entry.Live()
	if lg == nil {
		writeError(w, http.StatusConflict, "dataset %q is immutable (register it with mutable: true)", name)
		return
	}
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	var batch live.Batch
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var p ingestPayload
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&p); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		batch.Ops = make([]live.Op, 0, len(p.Inserts)+len(p.Deletes))
		for _, e := range p.Inserts {
			batch.Ops = append(batch.Ops, live.Op{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
		}
		for _, e := range p.Deletes {
			batch.Ops = append(batch.Ops, live.Op{Src: e.Src, Dst: e.Dst, Del: true})
		}
	} else {
		if batch, err = live.ParseTextBatch(body); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	ins, del := 0, 0
	for _, op := range batch.Ops {
		if op.Del {
			del++
		} else {
			ins++
		}
	}
	if err := lg.Apply(batch); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := ingestResponse{Dataset: name, Inserts: ins, Deletes: del}
	if r.URL.Query().Get("compact") == "now" {
		lg.CompactNow()
		resp.Compacts = true
	}
	resp.Live = lg.Stats()
	writeJSON(w, http.StatusOK, resp)
}

// algorithmPayload is one registry entry in GET /v1/algorithms.
type algorithmPayload struct {
	Name            string              `json:"name"`
	Description     string              `json:"description"`
	NeedsUndirected bool                `json:"needs_undirected,omitempty"`
	NeedsWeights    bool                `json:"needs_weights,omitempty"`
	HasIterations   bool                `json:"has_iterations,omitempty"`
	HasSource       bool                `json:"has_source,omitempty"`
	Variants        map[string][]string `json:"variants"`
}

func (s *Server) listAlgorithms(w http.ResponseWriter, r *http.Request) {
	specs := algorithms.Registry()
	out := make([]algorithmPayload, 0, len(specs))
	for _, spec := range specs {
		p := algorithmPayload{
			Name:            spec.Name,
			Description:     spec.Description,
			NeedsUndirected: spec.NeedsUndirected,
			NeedsWeights:    spec.NeedsWeights,
			HasIterations:   spec.HasIterations,
			HasSource:       spec.HasSource,
			Variants:        map[string][]string{},
		}
		for _, eng := range spec.Engines() {
			p.Variants[string(eng)] = spec.Variants(eng)
		}
		out = append(out, p)
	}
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": out})
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// memoryStats is the process-memory section of GET /v1/stats: per-job
// HeapAlloc deltas (on each job's metrics) only make sense next to the
// process-level picture.
type memoryStats struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeJSON(w, http.StatusOK, map[string]any{
		"catalog": s.cat.Stats(),
		"jobs":    s.mgr.Stats(),
		"memory": memoryStats{
			HeapAllocBytes: ms.HeapAlloc,
			HeapSysBytes:   ms.HeapSys,
			NumGC:          ms.NumGC,
		},
	})
}

// tracePayload is the JSON shape of GET /v1/jobs/{id}/trace: the job's
// superstep timeline grouped by superstep, each with one sample per
// worker. The shape is identical whether the job ran in-process or
// across graphworker subprocesses.
type tracePayload struct {
	ID      string     `json:"id"`
	State   jobs.State `json:"state"`
	Workers int        `json:"workers"`
	// TruncatedSamples counts samples the bounded ring dropped; always
	// present so consumers cannot mistake a truncated timeline for a
	// complete one. Warning spells it out when nonzero.
	TruncatedSamples int64           `json:"truncated_samples"`
	Warning          string          `json:"warning,omitempty"`
	Supersteps       []obs.TraceStep `json:"supersteps"`
}

func (s *Server) getTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, state, err := s.mgr.Trace(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	p := tracePayload{ID: id, State: state, Workers: snap.Workers,
		TruncatedSamples: snap.TruncatedSamples, Supersteps: snap.Supersteps}
	if snap.TruncatedSamples > 0 {
		p.Warning = fmt.Sprintf("trace ring truncated: %d samples beyond the %d-step window were dropped; the timeline below is incomplete",
			snap.TruncatedSamples, obs.DefaultTraceSteps)
	}
	if p.Supersteps == nil {
		p.Supersteps = []obs.TraceStep{}
	}
	writeJSON(w, http.StatusOK, p)
}

// metrics serves the registry in the Prometheus text exposition format;
// the scrape hook below folds the catalog, job-manager, live-graph and
// Go runtime gauges in next to the registered instruments.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// scrape emits the point-in-time gauges that live on the daemon's own
// components rather than in registry instruments.
func (s *Server) scrape(e *obs.Emitter) {
	e.Gauge("graphd_build_info", "Build metadata; the value is always 1.", 1,
		"version", s.version, "go_version", runtime.Version())
	e.Gauge("graphd_uptime_seconds", "Seconds since this server was constructed.",
		time.Since(s.started).Seconds())

	cs := s.cat.Stats()
	e.Gauge("graphd_catalog_datasets", "Registered datasets.", float64(cs.Datasets))
	e.Gauge("graphd_catalog_loaded", "Datasets resident in memory.", float64(cs.Loaded))
	e.Counter("graphd_catalog_loads_total", "Dataset loads (cold or after eviction).", float64(cs.Loads))
	e.Counter("graphd_catalog_hits_total", "Dataset lookups served from memory.", float64(cs.Hits))
	e.Counter("graphd_catalog_evictions_total", "Datasets evicted under memory pressure.", float64(cs.Evictions))
	e.Gauge("graphd_catalog_bytes", "Estimated bytes of resident datasets.", float64(cs.Bytes))

	js := s.mgr.Stats()
	e.Gauge("graphd_jobs", "Retained jobs by lifecycle state.", float64(js.Pending), "state", "pending")
	e.Gauge("graphd_jobs", "Retained jobs by lifecycle state.", float64(js.Running), "state", "running")
	e.Gauge("graphd_jobs", "Retained jobs by lifecycle state.", float64(js.Recovering), "state", "recovering")
	e.Gauge("graphd_jobs", "Retained jobs by lifecycle state.", float64(js.Done), "state", "done")
	e.Gauge("graphd_jobs", "Retained jobs by lifecycle state.", float64(js.Failed), "state", "failed")
	e.Gauge("graphd_jobs", "Retained jobs by lifecycle state.", float64(js.Cancelled), "state", "cancelled")
	e.Counter("graphd_jobs_submitted_total", "Jobs ever submitted.", float64(js.Submitted))
	e.Counter("graphd_jobs_evicted_total", "Terminal jobs dropped by retention.", float64(js.Evicted))

	// data-plane memory: bytes staged in hub relay buffers (hub plane)
	// and bytes in flight against p2p receive windows (window occupancy
	// summed over peer connections), for in-process hubs and clients.
	hubBuf, winOut := netcomm.DataPlaneStats()
	e.Gauge("graphd_hub_buffered_bytes", "Bytes held in hub data-relay staging buffers.", float64(hubBuf))
	e.Gauge("graphd_p2p_window_outstanding_bytes", "Bytes in flight against p2p flow-control windows.", float64(winOut))

	// live datasets: compaction progress per mutable dataset
	for _, info := range s.cat.List() {
		d, err := s.cat.DetailOf(info.Spec.Name)
		if err != nil || d.Live == nil {
			continue
		}
		ls := *d.Live
		name := info.Spec.Name
		e.Gauge("graphd_live_epoch", "Current epoch of a live dataset.", float64(ls.Epoch), "dataset", name)
		e.Gauge("graphd_live_pending_ops", "Edge ops waiting for compaction.", float64(ls.PendingOps), "dataset", name)
		e.Counter("graphd_live_compactions_total", "Delta-log compactions run.", float64(ls.Compactions), "dataset", name)
		e.Counter("graphd_live_retired_epochs_total", "Epochs retired after their last pin.", float64(ls.RetiredEpochs), "dataset", name)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.Gauge("go_heap_alloc_bytes", "Live heap bytes.", float64(ms.HeapAlloc))
	e.Gauge("go_heap_sys_bytes", "Heap bytes obtained from the OS.", float64(ms.HeapSys))
	e.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	e.Gauge("go_goroutines", "Currently live goroutines.", float64(runtime.NumGoroutine()))
}
