package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/catalog"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// sseEvent is one parsed frame off the /events stream.
type sseEvent struct {
	id    string
	event string
	data  obs.JobEvent
}

// readSSE parses frames off an open event stream until the server closes
// it or maxEvents arrive.
func readSSE(t *testing.T, body *bufio.Scanner, maxEvents int) []sseEvent {
	t.Helper()
	var evs []sseEvent
	var cur sseEvent
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.event != "" {
				evs = append(evs, cur)
				cur = sseEvent{}
				if len(evs) >= maxEvents {
					return evs
				}
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	return evs
}

// End-to-end flow telemetry over HTTP: a multi-process job streamed live
// over /events while in flight, then its /flows matrix and /diagnosis
// report, all under -race in CI.
func TestFlowsDiagnosisAndSSEEndToEnd(t *testing.T) {
	cat := catalog.New(4, 0)
	t.Cleanup(cat.Close)
	if err := cat.Register(catalog.Spec{Name: "rmat", Gen: "rmat:scale=7,ef=5,seed=21"}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mgr := jobs.NewManager(cat, 2,
		jobs.WithMetrics(reg),
		jobs.WithWorkerProcs(2, os.Args[0]))
	ts := httptest.NewServer(New(cat, mgr, WithRegistry(reg), WithVersion("test-1")).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(mgr.Close)

	// a long enough job that the SSE subscription is live mid-flight
	snap, status := postJob(t, ts.URL, jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat",
		Params: algorithms.Params{Iterations: 200}, MaxSupersteps: 200000,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", status)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	evs := readSSE(t, bufio.NewScanner(resp.Body), 1<<20)
	if len(evs) == 0 {
		t.Fatal("no SSE events before stream end")
	}
	var steps, states int
	var lastSeq int64
	for _, ev := range evs {
		seq := ev.data.Seq
		if seq <= lastSeq {
			t.Fatalf("SSE ids not increasing: %d after %d", seq, lastSeq)
		}
		lastSeq = seq
		switch ev.event {
		case "superstep":
			steps++
			if ev.data.Step == nil || ev.data.Step.Workers != 4 {
				t.Fatalf("superstep frame without payload: %+v", ev.data)
			}
		case "state":
			states++
		default:
			t.Fatalf("unknown SSE event type %q", ev.event)
		}
	}
	if steps == 0 {
		t.Fatalf("no superstep events on the stream (%d state events)", states)
	}
	last := evs[len(evs)-1]
	if last.event != "state" || last.data.State != string(jobs.StateDone) {
		t.Fatalf("stream did not end on the terminal state: %+v", last)
	}

	if final := waitDone(t, ts.URL, snap.ID); final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}

	var flows struct {
		ID      string          `json:"id"`
		State   jobs.State      `json:"state"`
		Plane   string          `json:"plane"`
		Workers int             `json:"workers"`
		Flows   []obs.FlowStat  `json:"flows"`
		Relays  []obs.RelayStat `json:"relays"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+snap.ID+"/flows", http.StatusOK, &flows)
	if flows.Plane != "hub" || flows.Workers != 4 || len(flows.Flows) == 0 {
		t.Fatalf("flows payload %+v", flows)
	}
	for _, f := range flows.Flows {
		if f.Frames == 0 || f.Bytes == 0 || f.MaxFrame == 0 {
			t.Fatalf("degenerate flow cell %+v", f)
		}
	}
	if len(flows.Relays) == 0 {
		t.Fatal("hub job shipped no relay stats")
	}

	var diag struct {
		ID     string      `json:"id"`
		State  jobs.State  `json:"state"`
		Report *obs.Report `json:"report"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+snap.ID+"/diagnosis", http.StatusOK, &diag)
	if diag.Report == nil || len(diag.Report.Workers) != 4 {
		t.Fatalf("diagnosis payload %+v", diag)
	}

	// a finished job's stream replays instantly and still terminates
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay := readSSE(t, bufio.NewScanner(resp2.Body), 1<<20)
	if len(replay) == 0 || replay[len(replay)-1].data.State != string(jobs.StateDone) {
		t.Fatalf("terminal replay has %d events", len(replay))
	}

	// unknown jobs 404 on all three endpoints
	for _, ep := range []string{"flows", "diagnosis", "events"} {
		getJSON(t, ts.URL+"/v1/jobs/j-999999/"+ep, http.StatusNotFound, nil)
	}

	// the new build/uptime/superstep instruments are scraped
	body := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		`graphd_build_info{version="test-1",go_version="go`,
		"graphd_uptime_seconds ",
		"# TYPE graphd_superstep_seconds histogram",
		"graphd_superstep_seconds_count ",
		"graphd_diagnosis_findings_total",
		"graphd_diagnosis_unhealthy_jobs_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// The SSE handler must also ride out a client that disconnects mid-
// stream without wedging the job or the manager.
func TestSSEClientDisconnect(t *testing.T) {
	cat := catalog.New(4, 0)
	t.Cleanup(cat.Close)
	if err := cat.Register(catalog.Spec{Name: "rmat", Gen: "rmat:scale=7,ef=5,seed=21"}); err != nil {
		t.Fatal(err)
	}
	mgr := jobs.NewManager(cat, 2)
	ts := httptest.NewServer(New(cat, mgr).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(mgr.Close)

	snap, status := postJob(t, ts.URL, jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat",
		Params: algorithms.Params{Iterations: 500}, MaxSupersteps: 200000,
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// read a line or two, then hang up mid-stream
	buf := make([]byte, 64)
	_, _ = resp.Body.Read(buf)
	resp.Body.Close()

	if final := waitDone(t, ts.URL, snap.ID); final.State != jobs.StateDone {
		t.Fatalf("after SSE hangup: state=%s err=%q", final.State, final.Error)
	}
	time.Sleep(10 * time.Millisecond) // let the handler's cancel run under -race
}
