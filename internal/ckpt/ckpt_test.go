package ckpt

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ser"
)

func TestDirStoreRoundTrip(t *testing.T) {
	d := NewDir(t.TempDir())
	data := []byte("worker three state")
	if err := d.Put("job", 4, 3, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("job", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("got %q, want %q", got, data)
	}
	// overwrite wins
	if err := d.Put("job", 4, 3, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Get("job", 4, 3); string(got) != "newer" {
		t.Fatalf("after overwrite: %q", got)
	}
	if _, err := d.Get("job", 4, 0); err == nil {
		t.Fatal("expected error for missing record")
	}
	if _, err := d.Get("other", 4, 3); err == nil {
		t.Fatal("expected error for missing job")
	}
}

func TestDirStoreRejectsCorruption(t *testing.T) {
	root := t.TempDir()
	d := NewDir(root)
	if err := d.Put("job", 1, 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "job", "1", "worker-0.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// flip one payload byte: the checksum must catch it
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("job", 1, 0); err == nil {
		t.Fatal("expected checksum error")
	}
	// truncated below the header
	if err := os.WriteFile(path, raw[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("job", 1, 0); err == nil {
		t.Fatal("expected header error")
	}
}

func TestLatestComplete(t *testing.T) {
	root := t.TempDir()
	d := NewDir(root)
	if s, err := d.LatestComplete("job", 3); err != nil || s != 0 {
		t.Fatalf("empty store: %d, %v", s, err)
	}
	for step := 1; step <= 2; step++ {
		for w := 0; w < 3; w++ {
			if err := d.Put("job", step, w, []byte{byte(step), byte(w)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// step 3 is torn: only two of three workers made it
	d.Put("job", 3, 0, []byte{3, 0})
	d.Put("job", 3, 1, []byte{3, 1})
	if s, err := d.LatestComplete("job", 3); err != nil || s != 2 {
		t.Fatalf("torn step skipped: got %d, %v, want 2", s, err)
	}
	// corrupt one record of step 2: fall back to step 1
	path := filepath.Join(root, "job", "2", "worker-1.ckpt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s, err := d.LatestComplete("job", 3); err != nil || s != 1 {
		t.Fatalf("corrupt step skipped: got %d, %v, want 1", s, err)
	}
}

func TestDirPruneBelow(t *testing.T) {
	d := NewDir(t.TempDir())
	for step := 1; step <= 5; step++ {
		for w := 0; w < 2; w++ {
			if err := d.Put("job", step, w, []byte{byte(step), byte(w)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.Put("other", 1, 0, []byte{9}) // other jobs are untouched
	if err := d.PruneBelow("job", 4); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 3; step++ {
		if _, err := d.Get("job", step, 0); err == nil {
			t.Fatalf("superstep %d survived prune", step)
		}
	}
	for step := 4; step <= 5; step++ {
		for w := 0; w < 2; w++ {
			if _, err := d.Get("job", step, w); err != nil {
				t.Fatalf("superstep %d pruned wrongly: %v", step, err)
			}
		}
	}
	if s, err := d.LatestComplete("job", 2); err != nil || s != 5 {
		t.Fatalf("after prune: latest %d, %v, want 5", s, err)
	}
	if _, err := d.Get("other", 1, 0); err != nil {
		t.Fatalf("other job pruned: %v", err)
	}
	if err := d.PruneBelow("nosuchjob", 10); err != nil {
		t.Fatalf("missing job must be a no-op: %v", err)
	}

	// AfterSave drives the same path through the hook: saving superstep
	// s discards everything below s-Interval, keeping the previous
	// complete cut, and a store-less or save-less hook stays inert.
	h := &Hook{Store: d, Job: "job", Interval: 1}
	h.AfterSave(6) // no record for 6 needed: pruning is independent
	if _, err := d.Get("job", 4, 0); err == nil {
		t.Fatal("AfterSave(6) must prune below 5")
	}
	if _, err := d.Get("job", 5, 0); err != nil {
		t.Fatalf("AfterSave(6) must keep superstep 5: %v", err)
	}
	var nilHook *Hook
	nilHook.AfterSave(3) // must not panic
	(&Hook{Store: d, Job: "job"}).AfterSave(100)
	if _, err := d.Get("job", 5, 0); err != nil {
		t.Fatal("interval-less hook must never prune")
	}
}

func TestHookGating(t *testing.T) {
	var h *Hook
	if h.Active() || h.ShouldSave(1) {
		t.Fatal("nil hook must be inert")
	}
	h.FireProbe(0, 1) // must not panic
	h = &Hook{}
	if h.Active() || h.ShouldSave(2) {
		t.Fatal("store-less hook must not save")
	}
	fired := 0
	h = &Hook{Store: NewDir(t.TempDir()), Interval: 2, Probe: func(w, s int) { fired++ }}
	if !h.Active() {
		t.Fatal("expected active")
	}
	if h.ShouldSave(3) || !h.ShouldSave(4) {
		t.Fatal("interval gating wrong")
	}
	h.FireProbe(0, 1)
	if fired != 1 {
		t.Fatalf("probe fired %d times", fired)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := &Record{
		Superstep: 7,
		Halt:      true,
		Active:    []bool{true, false, true, true, false, false, true, false, true},
		Algo:      []byte("algo state"),
		Engine:    []byte{1, 2, 3},
		Channels:  [][]byte{[]byte("ch0"), nil, []byte("ch2")},
		Rounds:    2,
		Frames:    [][]byte{[]byte("r0s0"), []byte("r0s1"), []byte("r1s0"), []byte("r1s1")},
	}
	buf := ser.NewBuffer(256)
	rec.Encode(buf)
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Superstep != rec.Superstep || got.Halt != rec.Halt ||
		!reflect.DeepEqual(got.Active, rec.Active) ||
		string(got.Algo) != string(rec.Algo) || string(got.Engine) != string(rec.Engine) ||
		got.Rounds != rec.Rounds || len(got.Channels) != 3 || len(got.Frames) != 4 {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, rec)
	}
	if string(got.Frames[2]) != "r1s0" {
		t.Fatalf("frame order broken: %q", got.Frames[2])
	}
}

func TestRecordDecodeRejectsHostileInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {0xde, 0xad, 0xbe, 0xef, 0x01},
	}
	// huge claimed bitmap: magic + superstep 1 + halt + uvarint(2^40)
	huge := ser.NewBuffer(16)
	huge.WriteUint32(recordMagic)
	huge.WriteUvarint(1)
	huge.WriteBool(false)
	huge.WriteUvarint(1 << 40)
	cases["huge bitmap"] = huge.Bytes()
	// frame count not divisible by rounds
	bad := ser.NewBuffer(64)
	(&Record{Superstep: 1, Rounds: 2, Frames: [][]byte{{1}, {2}, {3}}}).Encode(bad)
	cases["ragged frames"] = bad.Bytes()
	// trailing garbage after a valid record
	ok := ser.NewBuffer(64)
	(&Record{Superstep: 1}).Encode(ok)
	cases["trailing bytes"] = append(append([]byte(nil), ok.Bytes()...), 0x00)
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

// FuzzRecordDecode asserts the same contract as the ser/snapshot
// fuzzers: hostile input must error (never hang, OOM or crash), and any
// accepted input must re-encode to a record that decodes identically.
func FuzzRecordDecode(f *testing.F) {
	seed := ser.NewBuffer(256)
	(&Record{
		Superstep: 3,
		Active:    []bool{true, false, true},
		Algo:      []byte("s"),
		Channels:  [][]byte{{9}},
		Rounds:    1,
		Frames:    [][]byte{{1}, {2}},
	}).Encode(seed)
	f.Add(seed.Bytes())
	empty := ser.NewBuffer(16)
	(&Record{Superstep: 1}).Encode(empty)
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		buf := ser.NewBuffer(len(data) + 16)
		rec.Encode(buf)
		again, err := Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("accepted record failed to round-trip: %v", err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", rec, again)
		}
	})
}
