package ckpt

import (
	"fmt"

	"repro/internal/ser"
)

// recordMagic versions the record encoding itself (the Dir store's file
// header versions the container).
const recordMagic = uint32(0x31504B43) // "CKP1"

// Record is one worker's checkpoint: the full replayable cut of one
// superstep. Superstep/Halt/Active plus the Algo blob capture the state
// at the cut point (post-compute, pre-exchange); Channels carries each
// registered channel's private state in registration order (empty blob
// for stateless channels); Engine carries engine-private residue (the
// pregel engine's per-vertex request stamps; empty for the channel
// engine); Frames holds the raw incoming exchange bytes of the
// superstep, Rounds*M entries in round-major, source-worker-minor order
// (loopback included), which a restore replays through the normal
// deserialize path.
type Record struct {
	Superstep int
	Halt      bool
	Active    []bool
	Algo      []byte
	Engine    []byte
	Channels  [][]byte
	Rounds    int
	Frames    [][]byte
}

// Encode appends the record to buf.
func (r *Record) Encode(buf *ser.Buffer) {
	buf.WriteUint32(recordMagic)
	buf.WriteUvarint(uint64(r.Superstep))
	buf.WriteBool(r.Halt)
	buf.WriteUvarint(uint64(len(r.Active)))
	var bits, nbits uint8
	for _, a := range r.Active {
		if a {
			bits |= 1 << nbits
		}
		if nbits++; nbits == 8 {
			buf.WriteUint8(bits)
			bits, nbits = 0, 0
		}
	}
	if nbits > 0 {
		buf.WriteUint8(bits)
	}
	buf.WriteBytes(r.Algo)
	buf.WriteBytes(r.Engine)
	buf.WriteUvarint(uint64(len(r.Channels)))
	for _, c := range r.Channels {
		buf.WriteBytes(c)
	}
	buf.WriteUvarint(uint64(r.Rounds))
	buf.WriteUvarint(uint64(len(r.Frames)))
	for _, f := range r.Frames {
		buf.WriteBytes(f)
	}
}

// Decode parses a record. The input crossed a process (and disk)
// boundary, so it is untrusted: every claimed length is validated
// against the bytes actually present before any allocation, and decode
// panics surface as errors — hostile headers cannot OOM or crash the
// caller.
func Decode(data []byte) (rec *Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ckpt: corrupt record: %v", r)
		}
	}()
	b := ser.FromBytes(data)
	if b.Remaining() < 4 || b.ReadUint32() != recordMagic {
		return nil, fmt.Errorf("ckpt: bad record magic")
	}
	rec = &Record{
		Superstep: int(b.ReadUvarint()),
		Halt:      b.ReadBool(),
	}
	if rec.Superstep <= 0 {
		return nil, fmt.Errorf("ckpt: bad superstep %d", rec.Superstep)
	}
	n := int(b.ReadUvarint())
	nbytes := (n + 7) / 8
	if n < 0 || nbytes > b.Remaining() {
		return nil, fmt.Errorf("ckpt: active bitmap claims %d vertices, %d bytes remain", n, b.Remaining())
	}
	rec.Active = make([]bool, n)
	for i := 0; i < n; i += 8 {
		bits := b.ReadUint8()
		for j := 0; j < 8 && i+j < n; j++ {
			rec.Active[i+j] = bits&(1<<j) != 0
		}
	}
	rec.Algo = checkedBytes(b)
	rec.Engine = checkedBytes(b)
	nc := int(b.ReadUvarint())
	if nc < 0 || nc > b.Remaining() {
		return nil, fmt.Errorf("ckpt: %d channel blobs claimed, %d bytes remain", nc, b.Remaining())
	}
	rec.Channels = make([][]byte, nc)
	for i := range rec.Channels {
		rec.Channels[i] = checkedBytes(b)
	}
	rec.Rounds = int(b.ReadUvarint())
	nf := int(b.ReadUvarint())
	if nf < 0 || nf > b.Remaining() {
		return nil, fmt.Errorf("ckpt: %d frames claimed, %d bytes remain", nf, b.Remaining())
	}
	if rec.Rounds < 0 || (nf > 0 && (rec.Rounds == 0 || nf%rec.Rounds != 0)) {
		return nil, fmt.Errorf("ckpt: %d frames do not cover %d rounds", nf, rec.Rounds)
	}
	rec.Frames = make([][]byte, nf)
	for i := range rec.Frames {
		rec.Frames[i] = checkedBytes(b)
	}
	if b.Remaining() != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after record", b.Remaining())
	}
	return rec, nil
}

// checkedBytes reads a length-prefixed blob, copying it out of the
// input (records outlive the file buffer they were decoded from). The
// length is bounded by the bytes present, so a hostile prefix cannot
// force a large allocation; ReadBytes itself panics (caught by Decode)
// on a length past the end of input.
func checkedBytes(b *ser.Buffer) []byte {
	return append([]byte(nil), b.ReadBytes()...)
}

// SaveSlice appends s as a length-prefixed sequence encoded with c —
// the helper algorithm Save closures build their state blobs from.
func SaveSlice[T any](buf *ser.Buffer, c ser.Codec[T], s []T) {
	buf.WriteUvarint(uint64(len(s)))
	for _, v := range s {
		c.Encode(buf, v)
	}
}

// LoadSlice decodes a sequence written by SaveSlice into s, which must
// have exactly the encoded length — algorithm state slices are sized by
// the partition, so a mismatch means the record belongs to a different
// job shape. Restore paths run under a recover, so the panic surfaces
// as a worker error, not a crash.
func LoadSlice[T any](buf *ser.Buffer, c ser.Codec[T], s []T) {
	n := int(buf.ReadUvarint())
	if n != len(s) {
		panic(fmt.Sprintf("ckpt: state slice length %d, checkpoint has %d", len(s), n))
	}
	for i := range s {
		s[i] = c.Decode(buf)
	}
}
