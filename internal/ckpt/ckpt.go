// Package ckpt implements superstep checkpointing for the BSP engines:
// the checkpoint record format, the store interface that persists one
// record per (job, superstep, worker), and the Hook both engines thread
// through their configs (like Cancel/Fabric/Observer) to decide when to
// cut a checkpoint and where to restore from.
//
// The cut is barrier-aligned: every worker snapshots its state at the
// same program point of the same superstep — after the compute phase and
// the channels' AfterCompute, before the first exchange round — and the
// record additionally captures the raw incoming frame bytes of every
// exchange round of that superstep. A restore replays those rounds
// locally (serialize into a discard buffer to drain the staged outboxes,
// then feed the saved frames through the normal deserialize path), which
// reconstructs every piece of derived state — inboxes, responses,
// aggregates — bit for bit without re-running compute or touching the
// fabric. The record is durable once the worker crosses the superstep's
// termination barrier, so a checkpoint either exists on all workers or
// is ignored on all workers (Store.LatestComplete only reports supersteps
// with every worker's record present and intact). Saving also prunes:
// a successful cut at superstep s discards records below s-Interval
// (Hook.AfterSave), bounding the store at roughly two cuts of state
// regardless of how long the job runs.
package ckpt

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Store persists checkpoint records, one per (job, superstep, worker).
type Store interface {
	// Put durably stores one worker's record for a superstep,
	// overwriting any previous record for the same key.
	Put(job string, superstep, worker int, data []byte) error
	// Get returns the record for (job, superstep, worker), verifying
	// integrity.
	Get(job string, superstep, worker int) ([]byte, error)
	// LatestComplete returns the highest superstep for which all of the
	// job's workers 0..workers-1 have an intact record, or 0 when no
	// complete checkpoint exists.
	LatestComplete(job string, workers int) (int, error)
}

// Hook configures checkpointing for one engine run. A nil Hook (or one
// without a Store) disables saving and restoring; Probe fires either
// way, which lets fault injection ride the same seam without a store.
type Hook struct {
	// Store persists and serves records; nil disables checkpointing.
	Store Store
	// Job keys this run's records in the store.
	Job string
	// Interval is the number of supersteps between checkpoints; a
	// checkpoint is cut at every superstep s with s % Interval == 0.
	// 0 never saves (restore-only hooks use this).
	Interval int
	// Restore, when > 0, makes every worker load the record for this
	// superstep before superstep Restore+1 runs. 0 starts fresh.
	Restore int
	// Probe, if non-nil, is called at every worker's cut point with
	// (worker id, superstep) — the deterministic fault-injection seam.
	Probe func(worker, superstep int)
}

// Pruner is optionally implemented by Stores that can discard records
// below a superstep. Dir implements it; stores that don't simply retain
// everything.
type Pruner interface {
	// PruneBelow removes every record of the job with superstep <
	// below. Best-effort: a record that cannot be removed is left for a
	// later prune (or the job-dir cleanup) rather than failing the job.
	PruneBelow(job string, below int) error
}

// Active reports whether h can save or restore records.
func (h *Hook) Active() bool { return h != nil && h.Store != nil }

// AfterSave discards checkpoints made obsolete by this worker's
// successful save at superstep s. The cut is published before the
// superstep's termination barrier and the exchange rounds of s are
// themselves barriers, so by the time any worker saves s every worker
// has durably saved the previous due superstep s-Interval: everything
// below that is dead weight. Keeping s-Interval (not just s) matters
// because s itself is not complete yet — a peer can still die before
// its own Put. Without pruning a long job accumulates one checkpoint
// per due superstep, so disk usage would grow with job length instead
// of being bounded by two cuts of state size.
func (h *Hook) AfterSave(s int) {
	if !h.Active() || h.Interval <= 0 {
		return
	}
	p, ok := h.Store.(Pruner)
	if !ok {
		return
	}
	if below := s - h.Interval; below > 1 {
		_ = p.PruneBelow(h.Job, below)
	}
}

// ShouldSave reports whether a checkpoint is due at superstep s.
func (h *Hook) ShouldSave(s int) bool {
	return h.Active() && h.Interval > 0 && s%h.Interval == 0
}

// FireProbe invokes the fault-injection probe, if any.
func (h *Hook) FireProbe(worker, superstep int) {
	if h != nil && h.Probe != nil {
		h.Probe(worker, superstep)
	}
}

// Dir is the local-directory Store: records live at
// <root>/<job>/<superstep>/worker-<id>.ckpt, written atomically
// (temp file + rename) with a header carrying the payload's SHA-256 so
// Get and LatestComplete can reject torn or corrupted files — a record
// is only ever observed whole.
type Dir struct {
	root string
}

// NewDir creates a directory store rooted at root (created lazily).
func NewDir(root string) *Dir { return &Dir{root: root} }

// dirMagic heads every record file, versioning the container format.
var dirMagic = []byte("GRCKPT1\n")

const dirHeaderLen = 8 + sha256.Size

func (d *Dir) path(job string, superstep, worker int) string {
	return filepath.Join(d.root, job, strconv.Itoa(superstep),
		fmt.Sprintf("worker-%d.ckpt", worker))
}

// Put implements Store.
func (d *Dir) Put(job string, superstep, worker int, data []byte) error {
	dir := filepath.Join(d.root, job, strconv.Itoa(superstep))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	sum := sha256.Sum256(data)
	file := make([]byte, 0, dirHeaderLen+len(data))
	file = append(file, dirMagic...)
	file = append(file, sum[:]...)
	file = append(file, data...)
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := tmp.Write(file); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(job, superstep, worker)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// Get implements Store.
func (d *Dir) Get(job string, superstep, worker int) ([]byte, error) {
	file, err := os.ReadFile(d.path(job, superstep, worker))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if len(file) < dirHeaderLen || string(file[:8]) != string(dirMagic) {
		return nil, fmt.Errorf("ckpt: %s: not a checkpoint record",
			d.path(job, superstep, worker))
	}
	data := file[dirHeaderLen:]
	sum := sha256.Sum256(data)
	if string(sum[:]) != string(file[8:dirHeaderLen]) {
		return nil, fmt.Errorf("ckpt: %s: checksum mismatch",
			d.path(job, superstep, worker))
	}
	return data, nil
}

// PruneBelow implements Pruner: superstep directories of the job below
// the cutoff are removed wholesale. Concurrent pruners (every worker
// prunes after every save) race benignly — RemoveAll of a directory a
// peer already removed is a no-op, and nothing writes to a superstep
// two intervals old.
func (d *Dir) PruneBelow(job string, below int) error {
	entries, err := os.ReadDir(filepath.Join(d.root, job))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ckpt: %w", err)
	}
	var first error
	for _, e := range entries {
		if s, serr := strconv.Atoi(e.Name()); serr == nil && s > 0 && s < below {
			if rerr := os.RemoveAll(filepath.Join(d.root, job, e.Name())); rerr != nil && first == nil {
				first = fmt.Errorf("ckpt: %w", rerr)
			}
		}
	}
	return first
}

// LatestComplete implements Store: scan the job's superstep directories
// in descending order and return the first one where every worker's
// record is present and intact. Partially written checkpoints (a worker
// died mid-superstep, before its Put) are skipped, which is what makes
// the cut barrier-consistent: the previous complete superstep is the
// recovery point.
func (d *Dir) LatestComplete(job string, workers int) (int, error) {
	entries, err := os.ReadDir(filepath.Join(d.root, job))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("ckpt: %w", err)
	}
	var steps []int
	for _, e := range entries {
		if s, serr := strconv.Atoi(e.Name()); serr == nil && s > 0 {
			steps = append(steps, s)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(steps)))
	for _, s := range steps {
		ok := true
		for w := 0; w < workers; w++ {
			if _, gerr := d.Get(job, s, w); gerr != nil {
				ok = false
				break
			}
		}
		if ok {
			return s, nil
		}
	}
	return 0, nil
}
