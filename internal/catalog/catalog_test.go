package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/partition"
)

func TestRegisterValidation(t *testing.T) {
	c := New(4, 0)
	if err := c.Register(Spec{Name: "", Gen: "chain:n=5"}); err == nil {
		t.Fatal("expected error for empty name")
	}
	if err := c.Register(Spec{Name: "x"}); err == nil {
		t.Fatal("expected error for neither path nor gen")
	}
	if err := c.Register(Spec{Name: "x", Path: "a", Gen: "chain:n=5"}); err == nil {
		t.Fatal("expected error for both path and gen")
	}
	if err := c.Register(Spec{Name: "x", Gen: "warp:n=5"}); err == nil {
		t.Fatal("expected error for bad generator")
	}
	if err := c.Register(Spec{Name: "x", Gen: "chain:n=5"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(Spec{Name: "x", Gen: "chain:n=9"}); err == nil {
		t.Fatal("expected error for duplicate name")
	}
	if !c.Has("x") || c.Has("y") {
		t.Fatal("Has is wrong")
	}
}

func TestGetSingleflight(t *testing.T) {
	c := New(4, 0)
	if err := c.Register(Spec{Name: "g", Gen: "social:scale=8,ef=3,seed=2"}); err != nil {
		t.Fatal(err)
	}
	const n = 16
	entries := make([]*Entry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := c.Get("g")
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatal("Get returned distinct entries")
		}
	}
	st := c.Stats()
	if st.Loads != 1 {
		t.Fatalf("loads=%d want 1", st.Loads)
	}
	if st.Hits != n-1 {
		t.Fatalf("hits=%d want %d", st.Hits, n-1)
	}
	if st.Loaded != 1 || st.Bytes <= 0 {
		t.Fatalf("loaded=%d bytes=%d", st.Loaded, st.Bytes)
	}

	// the undirected view of an already-undirected graph is the entry's
	// own graph under its default hash view
	v, err := entries[0].View("", true)
	if err != nil {
		t.Fatal(err)
	}
	if v.Graph != entries[0].Graph || v.Part != entries[0].Part {
		t.Fatal("undirected view of undirected graph should be the default view")
	}
}

func TestDerivedUndirected(t *testing.T) {
	c := New(4, 0)
	if err := c.Register(Spec{Name: "d", Gen: "digraph:n=50,m=200,seed=3"}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	base := c.Stats().Bytes
	v1, err := e.View("", true)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.View("", true)
	if err != nil || v1 != v2 {
		t.Fatal("derived undirected view not cached")
	}
	if !v1.Graph.Undirected || v1.Graph == e.Graph {
		t.Fatal("derived graph should be a new undirected graph")
	}
	if c.Stats().Bytes <= base || e.Bytes() <= base {
		t.Fatalf("derived graph not charged to the budget: %d <= %d", c.Stats().Bytes, base)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, 1) // 1-byte budget: at most the newest entry survives
	for _, name := range []string{"a", "b"} {
		if err := c.Register(Spec{Name: name, Gen: "chain:n=100"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("b"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Loaded != 1 {
		t.Fatalf("evictions=%d loaded=%d", st.Evictions, st.Loaded)
	}
	// a evicted; getting it again reloads
	if _, err := c.Get("a"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Loads != 3 {
		t.Fatalf("loads=%d want 3", st.Loads)
	}
}

func TestFileLoadPrefersBinarySnapshot(t *testing.T) {
	dir := t.TempDir()
	g := graph.Grid(5, 6, 10, 7)

	// A text edge list whose .bin sibling holds a DIFFERENT graph proves
	// which source was read.
	el := filepath.Join(dir, "g.el")
	f, err := os.Create(el)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, graph.Chain(3)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := graph.WriteBinaryFile(el+graph.SnapshotExt, g); err != nil {
		t.Fatal(err)
	}

	c := New(4, 0)
	if err := c.Register(Spec{Name: "g", Path: el}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph.NumVertices() != g.NumVertices() || e.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("loaded text list, not snapshot: n=%d m=%d", e.Graph.NumVertices(), e.Graph.NumEdges())
	}

	// a snapshot OLDER than the text list is stale and must be ignored
	stale := filepath.Join(dir, "stale.el")
	fs, err := os.Create(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(fs, graph.Chain(5)); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	if err := graph.WriteBinaryFile(stale+graph.SnapshotExt, g); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(stale+graph.SnapshotExt, old, old); err != nil {
		t.Fatal(err)
	}
	cs := New(4, 0)
	if err := cs.Register(Spec{Name: "s", Path: stale}); err != nil {
		t.Fatal(err)
	}
	es, err := cs.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if es.Graph.NumVertices() != 5 {
		t.Fatalf("stale snapshot served: n=%d want 5 (from text)", es.Graph.NumVertices())
	}

	// without a snapshot the text list is parsed
	c2 := New(4, 0)
	el2 := filepath.Join(dir, "plain.el")
	f2, err := os.Create(el2)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f2, graph.Chain(3)); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if err := c2.Register(Spec{Name: "p", Path: el2}); err != nil {
		t.Fatal(err)
	}
	e2, err := c2.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Graph.NumVertices() != 3 {
		t.Fatalf("n=%d want 3", e2.Graph.NumVertices())
	}
}

func TestFailedLoadRetries(t *testing.T) {
	c := New(4, 0)
	missing := filepath.Join(t.TempDir(), "missing.el")
	if err := c.Register(Spec{Name: "m", Path: missing}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("m"); err == nil {
		t.Fatal("expected load failure")
	}
	// create the file; the failed load must not be cached
	f, err := os.Create(missing)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, graph.Chain(4)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	e, err := c.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph.NumVertices() != 4 {
		t.Fatalf("n=%d", e.Graph.NumVertices())
	}
}

func TestParseGenErrors(t *testing.T) {
	cases := []string{
		"warp:n=1",
		"chain:n=abc",
		"chain:n=5,bogus=1",
		"rmat:scale=zz",
		"grid:rows=3,cols=q",
		"chain:=5",
	}
	for _, expr := range cases {
		if _, err := ParseGen(expr); err == nil {
			t.Errorf("expected error for %q", expr)
		}
	}
	for _, expr := range []string{
		"chain:n=5", "tree:n=9,seed=2", "grid:rows=3,cols=4",
		"rmat:scale=4,ef=2,weighted,maxw=9", "rmat:scale=4,undirected",
		"social:scale=4,ef=2", "digraph:n=10,m=20", "forest:n=10,k=2",
	} {
		g, err := Generate(expr)
		if err != nil {
			t.Errorf("%q: %v", expr, err)
			continue
		}
		if g.NumVertices() == 0 {
			t.Errorf("%q: empty graph", expr)
		}
	}
}

// Views are built once per (placement, orientation), run on pre-built
// fragments, and greedy views report a smaller edge cut on a grid.
func TestPlacementViews(t *testing.T) {
	c := New(4, 0)
	if err := c.Register(Spec{Name: "road", Gen: "grid:rows=20,cols=20,maxw=10,seed=1"}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Get("road")
	if err != nil {
		t.Fatal(err)
	}
	// the default hash view is built eagerly at load time
	hv, err := e.View("", false)
	if err != nil {
		t.Fatal(err)
	}
	if hv.Part != e.Part || hv.Frags == nil || hv.Frags.Part != hv.Part {
		t.Fatal("default view not the eagerly built hash view")
	}
	hv2, err := e.View(partition.PlacementHash, false)
	if err != nil || hv2 != hv {
		t.Fatalf("hash view not cached: %v", err)
	}
	base := e.Bytes()
	gv, err := e.View(partition.PlacementGreedy, false)
	if err != nil {
		t.Fatal(err)
	}
	if gv2, err := e.View(partition.PlacementGreedy, false); err != nil || gv2 != gv {
		t.Fatal("greedy view not cached")
	}
	if e.Bytes() <= base {
		t.Fatal("greedy view not charged to the byte budget")
	}
	if gv.EdgeCut >= hv.EdgeCut {
		t.Fatalf("greedy cut %.3f not below hash cut %.3f", gv.EdgeCut, hv.EdgeCut)
	}
	if _, err := e.View("metis", false); err == nil {
		t.Fatal("unknown placement accepted")
	}
}

// A spec-level placement and snapshot-embedded owner vectors: the
// catalog must reuse the embedded partition instead of re-partitioning.
func TestSnapshotEmbeddedPlacement(t *testing.T) {
	dir := t.TempDir()
	g := graph.Grid(10, 10, 5, 2)
	p := partition.MustGreedy(g, 4)
	snap := filepath.Join(dir, "road"+graph.SnapshotExt)
	err := graph.WriteSnapshotFile(snap, g, []graph.Placement{
		{Name: partition.PlacementGreedy, Workers: 4, Owner: p.Owners()},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(4, 0)
	if err := c.Register(Spec{Name: "road", Path: snap, Placement: partition.PlacementGreedy}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Get("road")
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.View(partition.PlacementGreedy, false)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumVertices(); u++ {
		if v.Part.Owner(graph.VertexID(u)) != p.Owner(graph.VertexID(u)) {
			t.Fatalf("vertex %d: embedded placement not reused", u)
		}
	}
	// a catalog with a different worker count ignores the embedded vector
	c2 := New(2, 0)
	if err := c2.Register(Spec{Name: "road", Path: snap}); err != nil {
		t.Fatal(err)
	}
	e2, err := c2.Get("road")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Part.NumWorkers() != 2 {
		t.Fatalf("worker count %d want 2", e2.Part.NumWorkers())
	}
}

func TestRegisterRejectsBadPlacement(t *testing.T) {
	c := New(4, 0)
	if err := c.Register(Spec{Name: "x", Gen: "chain:n=10", Placement: "metis"}); err == nil {
		t.Fatal("bad spec placement accepted")
	}
}

// Mutable specs: validation, live entry wiring, epoch bytes charged to
// and released from the LRU budget, and Close stopping the compactor.
func TestMutableSpecValidation(t *testing.T) {
	c := New(4, 0)
	err := c.Register(Spec{Name: "bad", Gen: "chain:n=10", Mutable: true, Undirected: true})
	if err == nil || !strings.Contains(err.Error(), "directed base") {
		t.Fatalf("mutable+undirected: %v", err)
	}
	if err := c.Register(Spec{Name: "ok", Gen: "chain:n=10", Mutable: true}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveEntryEpochBytesInBudget(t *testing.T) {
	c := New(4, 0)
	defer c.Close()
	if err := c.Register(Spec{Name: "feed", Gen: "rmat:scale=8,ef=6,seed=5", Mutable: true}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	lg := e.Live()
	if lg == nil {
		t.Fatal("mutable entry has no live graph")
	}
	base := e.Bytes()
	if base <= 0 || c.Stats().Bytes != base {
		t.Fatalf("base bytes %d, stats %+v", base, c.Stats())
	}

	// pin the old epoch so the compaction holds two epochs resident
	ep1 := lg.Pin()
	if err := lg.Apply(live.Batch{Ops: []live.Op{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}}); err != nil {
		t.Fatal(err)
	}
	lg.CompactNow()
	during := e.Bytes()
	if during <= base {
		t.Fatalf("second epoch not charged: %d -> %d", base, during)
	}
	ep1.Release() // retires epoch 1, releasing its bytes
	after := e.Bytes()
	if after >= during {
		t.Fatalf("retired epoch still charged: %d -> %d", during, after)
	}
	if got := c.Stats().Bytes; got != after {
		t.Fatalf("catalog stats bytes %d != entry bytes %d", got, after)
	}

	// the detail payload reflects the live state
	d, err := c.DetailOf("feed")
	if err != nil {
		t.Fatal(err)
	}
	if d.Live == nil || d.Live.Epoch != 2 || d.Live.RetiredEpochs != 1 || !d.Mutable {
		t.Fatalf("detail %+v", d)
	}
	if len(d.Views) == 0 || d.Views[0].Placement != "hash" {
		t.Fatalf("detail views %+v", d.Views)
	}
	// list shows the current epoch's shape
	infos := c.List()
	if len(infos) != 1 || infos[0].Epoch != 2 {
		t.Fatalf("list %+v", infos)
	}

	c.Close()
	if err := lg.Apply(live.Batch{Ops: []live.Op{{Src: 0, Dst: 2}}}); err == nil {
		t.Fatal("apply after catalog close should fail")
	}
	if _, err := c.Get("feed"); err == nil {
		t.Fatal("get after close should fail")
	}
}

func TestDetailOfUnloadedAndUnknown(t *testing.T) {
	c := New(4, 0)
	if err := c.Register(Spec{Name: "cold", Gen: "chain:n=10"}); err != nil {
		t.Fatal(err)
	}
	d, err := c.DetailOf("cold")
	if err != nil {
		t.Fatal(err)
	}
	if d.Loaded || len(d.Views) != 0 || d.Live != nil {
		t.Fatalf("unloaded detail %+v", d)
	}
	if _, err := c.DetailOf("nope"); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
}

// Live entries are never LRU victims: their ingested mutations are not
// reconstructible from the spec, so eviction would silently reload the
// pristine base. Static entries still evict around them.
func TestLRUNeverEvictsLiveEntries(t *testing.T) {
	c := New(4, 1) // budget of one byte: everything is over budget
	defer c.Close()
	for _, spec := range []Spec{
		{Name: "feed", Gen: "rmat:scale=7,ef=4,seed=1", Mutable: true},
		{Name: "s1", Gen: "chain:n=500"},
		{Name: "s2", Gen: "chain:n=500"},
	} {
		if err := c.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	feed, err := c.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	if err := feed.Live().Apply(live.Batch{Ops: []live.Op{{Src: 0, Dst: 99}}}); err != nil {
		t.Fatal(err)
	}
	feed.Live().CompactNow()
	if _, err := c.Get("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("s2"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("static entries not evicted: %+v", st)
	}
	// the live entry survived with its mutations: same object, epoch 2
	again, err := c.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	if again != feed {
		t.Fatal("live entry was evicted and reloaded")
	}
	if got := again.Live().Stats().Epoch; got != 2 {
		t.Fatalf("live entry epoch %d, want 2 (mutations lost?)", got)
	}
	// live entries do not pin epoch 1 on the entry itself; introspection
	// goes through CurrentGraph
	if feed.Graph != nil || feed.Part != nil {
		t.Fatal("live entry retains the load-time graph/partition")
	}
	if g := feed.CurrentGraph(); g == nil || g.NumVertices() == 0 {
		t.Fatal("CurrentGraph unusable for live entry")
	}
}
