// Package catalog is the shared graph store of the job service: named
// dataset specs (edge-list files or generator expressions) loaded at
// most once, cached as the immutable *graph.Graph plus its derived
// views, and shared by every job that names the dataset.
//
// A view is one (orientation, placement) combination of the dataset:
// the graph, its partition, and the pre-resolved per-worker fragments
// (internal/frag) every job runs on. Views are built lazily, exactly
// once each (the default hash view eagerly at load time, fragments in
// parallel), cached on the entry, and charged against the catalog's
// byte budget — the cache is effectively keyed by (dataset, workers,
// placement).
//
// Loading is singleflight — concurrent Get calls for a cold dataset
// block on one loader goroutine — and the resident set is bounded by an
// approximate byte budget with least-recently-used eviction. File-backed
// specs prefer a binary snapshot ("<path>.bin", graph.WriteSnapshot
// layout) over re-parsing the text edge list; version-2 snapshots embed
// named owner vectors, which lets a restart skip re-partitioning (the
// greedy BFS in particular).
package catalog

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Spec declares a dataset. Exactly one of Path or Gen must be set.
type Spec struct {
	Name string `json:"name"`
	// Path is an edge-list file (graph.ReadEdgeList format) or a binary
	// snapshot. A "<path>.bin" sibling, when present, is preferred.
	Path string `json:"path,omitempty"`
	// Gen is a generator expression, e.g. "rmat:scale=12,ef=8,seed=1"
	// (see ParseGen for the full grammar).
	Gen string `json:"gen,omitempty"`
	// Undirected runs the loaded graph through graph.Undirectify.
	Undirected bool `json:"undirected,omitempty"`
	// Placement is the default vertex placement for jobs on this dataset
	// ("hash" when empty, or "greedy" — the paper's "(P)" locality
	// placement). Individual jobs may override it.
	Placement string `json:"placement,omitempty"`
}

// View is one (orientation, placement) combination of a dataset: the
// graph, its partition, the pre-resolved shared-nothing fragments, and
// the placement's directed edge-cut fraction (reported in job metrics).
type View struct {
	Placement string
	Graph     *graph.Graph
	Part      *partition.Partition
	Frags     *frag.Fragments
	EdgeCut   float64
}

// Entry is a loaded dataset: the immutable graph, its default hash
// view, and lazily-derived views for the greedy placement and the
// undirected orientation.
type Entry struct {
	Spec     Spec
	Graph    *graph.Graph
	Part     *partition.Partition // partition of the default hash view
	LoadedAt time.Time

	cat     *Catalog
	workers int
	bytes   int64 // guarded by cat.mu once the entry is published

	// snapParts are placements embedded in the dataset's snapshot,
	// keyed by placement name, reused instead of re-partitioning.
	snapParts map[string]*partition.Partition

	undOnce  sync.Once
	undGraph *graph.Graph

	mu    sync.Mutex
	views map[viewKey]*viewSlot
}

type viewKey struct {
	placement  string
	undirected bool
}

type viewSlot struct {
	once sync.Once
	view *View
	err  error
}

// Bytes returns the approximate resident size of the entry, including
// all derived views and fragments.
func (e *Entry) Bytes() int64 {
	e.cat.mu.Lock()
	defer e.cat.mu.Unlock()
	return e.bytes
}

// undirected returns the both-orientations graph, deriving and caching
// it on first use (charged to the byte budget).
func (e *Entry) undirected() *graph.Graph {
	if e.Graph.Undirected {
		return e.Graph
	}
	e.undOnce.Do(func() {
		e.undGraph = graph.Undirectify(e.Graph)
		e.cat.addDerivedBytes(e, graphBytes(e.undGraph))
	})
	return e.undGraph
}

// View returns the dataset under the named placement ("" or "hash",
// "greedy") and orientation, building the partition and fragments
// exactly once per combination. Derived views are charged against the
// catalog byte budget.
func (e *Entry) View(placement string, undirected bool) (*View, error) {
	if placement == "" {
		placement = partition.PlacementHash
	}
	if e.Graph.Undirected {
		undirected = false // base graph already stores both orientations
	}
	key := viewKey{placement: placement, undirected: undirected}
	e.mu.Lock()
	slot, ok := e.views[key]
	if !ok {
		slot = &viewSlot{}
		e.views[key] = slot
	}
	e.mu.Unlock()
	slot.once.Do(func() {
		g := e.Graph
		if undirected {
			g = e.undirected()
		}
		v, bytes, err := e.buildView(placement, g)
		if err != nil {
			slot.err = err
			return
		}
		slot.view = v
		e.cat.addDerivedBytes(e, bytes)
	})
	return slot.view, slot.err
}

// buildView constructs one (placement, orientation) view of graph g:
// partition (snapshot-embedded when available), fragments built in
// parallel, edge cut. It returns the view's resident byte size for the
// caller to charge (View charges the budget, load folds it into the
// entry's base bytes).
func (e *Entry) buildView(placement string, g *graph.Graph) (*View, int64, error) {
	part := e.snapPartFor(placement, g)
	if part == nil {
		var err error
		part, err = partition.ByName(placement, g, e.workers)
		if err != nil {
			return nil, 0, err
		}
	}
	fs := frag.Build(g, part)
	fs.DeriveHook = func(b int64) { e.cat.addDerivedBytes(e, b) }
	v := &View{
		Placement: placement,
		Graph:     g,
		Part:      part,
		Frags:     fs,
		EdgeCut:   partition.EdgeCut(g, part),
	}
	return v, fs.Bytes() + partitionBytes(g), nil
}

// snapPartFor returns a snapshot-embedded partition for the placement
// if one matches the catalog's worker count and g's vertex count.
func (e *Entry) snapPartFor(placement string, g *graph.Graph) *partition.Partition {
	p, ok := e.snapParts[placement]
	if !ok || p.NumWorkers() != e.workers || p.NumVertices() != g.NumVertices() {
		return nil
	}
	return p
}

// Info is the List/JSON view of a dataset.
type Info struct {
	Spec
	Loaded   bool  `json:"loaded"`
	Vertices int   `json:"vertices,omitempty"`
	Edges    int   `json:"edges,omitempty"`
	Weighted bool  `json:"weighted,omitempty"`
	IsUndir  bool  `json:"is_undirected,omitempty"`
	Bytes    int64 `json:"bytes,omitempty"`
}

// Stats summarizes catalog activity.
type Stats struct {
	Datasets  int   `json:"datasets"`
	Loaded    int   `json:"loaded"`
	Loads     int64 `json:"loads"`
	Hits      int64 `json:"hits"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
}

// Catalog is safe for concurrent use.
type Catalog struct {
	workers  int
	maxBytes int64

	mu      sync.Mutex
	specs   map[string]Spec
	order   []string
	entries map[string]*slot
	clock   int64 // LRU stamp source

	loads, hits, evictions int64
}

// slot is the singleflight cell for one dataset.
type slot struct {
	done     chan struct{} // closed when the load finishes
	entry    *Entry        // set on success
	err      error         // set on failure
	lastUsed int64
}

// New creates a catalog partitioning graphs across workers simulated
// nodes. maxBytes bounds the approximate resident graph bytes (0 =
// unlimited); the most recently used entries are kept. workers <= 0
// selects the default of 8; a count beyond the partition's
// representable range is kept as-is and surfaces as a loud per-load
// partitioning error rather than a silently substituted topology.
func New(workers int, maxBytes int64) *Catalog {
	if workers <= 0 {
		workers = 8
	}
	return &Catalog{
		workers:  workers,
		maxBytes: maxBytes,
		specs:    make(map[string]Spec),
		entries:  make(map[string]*slot),
	}
}

// Register adds a dataset spec. Re-registering an existing name is an
// error (the immutable cache would go stale).
func (c *Catalog) Register(spec Spec) error {
	if spec.Name == "" {
		return fmt.Errorf("catalog: dataset name is required")
	}
	if (spec.Path == "") == (spec.Gen == "") {
		return fmt.Errorf("catalog: dataset %q: exactly one of path or gen must be set", spec.Name)
	}
	if spec.Gen != "" {
		if _, err := ParseGen(spec.Gen); err != nil {
			return fmt.Errorf("catalog: dataset %q: %w", spec.Name, err)
		}
	}
	switch spec.Placement {
	case "", partition.PlacementHash, partition.PlacementGreedy:
	default:
		return fmt.Errorf("catalog: dataset %q: unknown placement %q", spec.Name, spec.Placement)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.specs[spec.Name]; ok {
		return fmt.Errorf("catalog: dataset %q already registered", spec.Name)
	}
	c.specs[spec.Name] = spec
	c.order = append(c.order, spec.Name)
	return nil
}

// Has reports whether name is a registered dataset.
func (c *Catalog) Has(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.specs[name]
	return ok
}

// Get returns the loaded entry for name, loading it exactly once no
// matter how many goroutines ask concurrently. A failed load is not
// cached: the next Get retries.
func (c *Catalog) Get(name string) (*Entry, error) {
	c.mu.Lock()
	spec, ok := c.specs[name]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("catalog: unknown dataset %q", name)
	}
	if s, ok := c.entries[name]; ok {
		c.clock++
		s.lastUsed = c.clock
		c.mu.Unlock()
		<-s.done
		if s.err == nil {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
		}
		return s.entry, s.err
	}
	s := &slot{done: make(chan struct{})}
	c.clock++
	s.lastUsed = c.clock
	c.entries[name] = s
	c.mu.Unlock()

	entry, err := c.load(spec)
	c.mu.Lock()
	if err != nil {
		s.err = err
		delete(c.entries, name) // allow retry
	} else {
		s.entry = entry
		c.loads++
		c.evictOverBudgetLocked(name)
	}
	c.mu.Unlock()
	close(s.done)
	return entry, err
}

// evictOverBudgetLocked drops least-recently-used loaded entries until
// the byte budget holds. The entry named keep (the one just loaded) and
// in-flight loads are never evicted.
func (c *Catalog) evictOverBudgetLocked(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	for c.residentBytesLocked() > c.maxBytes {
		victim := ""
		var oldest int64
		for name, s := range c.entries {
			if name == keep || s.entry == nil {
				continue
			}
			if victim == "" || s.lastUsed < oldest {
				victim, oldest = name, s.lastUsed
			}
		}
		if victim == "" {
			return
		}
		delete(c.entries, victim)
		c.evictions++
	}
}

func (c *Catalog) residentBytesLocked() int64 {
	var total int64
	for _, s := range c.entries {
		if s.entry != nil {
			total += s.entry.bytes
		}
	}
	return total
}

// load materializes a spec outside the catalog lock: read or generate
// the graph, adopt any snapshot-embedded placements, and build the
// default hash view (partition + fragments, fragments in parallel) so
// the first job pays nothing.
func (c *Catalog) load(spec Spec) (*Entry, error) {
	var g *graph.Graph
	var placements []graph.Placement
	var err error
	switch {
	case spec.Gen != "":
		g, err = Generate(spec.Gen)
	case strings.HasSuffix(spec.Path, graph.SnapshotExt):
		g, placements, err = graph.ReadSnapshotFile(spec.Path)
	default:
		if snap := spec.Path + graph.SnapshotExt; snapshotFresh(spec.Path, snap) {
			g, placements, err = graph.ReadSnapshotFile(snap)
		} else {
			g, err = readEdgeListFile(spec.Path)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %w", spec.Name, err)
	}
	if spec.Undirected && !g.Undirected {
		g = graph.Undirectify(g)
	}
	e := &Entry{
		Spec:      spec,
		Graph:     g,
		LoadedAt:  time.Now(),
		cat:       c,
		workers:   c.workers,
		bytes:     graphBytes(g),
		snapParts: make(map[string]*partition.Partition),
		views:     make(map[viewKey]*viewSlot),
	}
	for _, p := range placements {
		if p.Workers != c.workers || len(p.Owner) != g.NumVertices() {
			continue // built for another cluster shape: ignore
		}
		part, err := partition.FromOwners(p.Workers, p.Owner)
		if err != nil {
			// embedded placements are only a re-partitioning cache: a
			// corrupt one is dropped (the view recomputes it), it must
			// not make an otherwise valid dataset unloadable
			continue
		}
		e.snapParts[p.Name] = part
	}
	// Eager default view: hash placement of the loaded orientation. Its
	// bytes go into the entry's initial size (the entry is not yet
	// published, so addDerivedBytes cannot charge it).
	hashView, err := e.buildDefaultView()
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %w", spec.Name, err)
	}
	e.Part = hashView.Part
	return e, nil
}

// buildDefaultView constructs and caches the (hash, loaded orientation)
// view during load, accounting its size in the entry's base bytes (the
// entry is not yet published, so the LRU charge path cannot be used).
func (e *Entry) buildDefaultView() (*View, error) {
	v, bytes, err := e.buildView(partition.PlacementHash, e.Graph)
	if err != nil {
		return nil, err
	}
	e.bytes += bytes
	slot := &viewSlot{view: v}
	slot.once.Do(func() {}) // mark built
	e.views[viewKey{placement: partition.PlacementHash, undirected: false}] = slot
	return v, nil
}

// addDerivedBytes charges a lazily-derived view to its entry and
// re-applies the byte budget (the entry that grew is never the victim).
// The slot must still hold this exact entry: a caller that kept an
// already-evicted Entry derives a view the cache no longer holds, which
// must not be charged to a re-loaded successor.
func (c *Catalog) addDerivedBytes(e *Entry, b int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.entries[e.Spec.Name]; ok && s.entry == e {
		e.bytes += b
		c.evictOverBudgetLocked(e.Spec.Name)
	}
}

// graphBytes approximates the resident size of a graph's CSR arrays.
func graphBytes(g *graph.Graph) int64 {
	return int64(len(g.Offsets))*8 + int64(len(g.Adj))*4 + int64(len(g.Weights))*4
}

// partitionBytes approximates the resident size of one partition of g
// (owner vector, local indices, per-worker vertex lists ~10 bytes per
// vertex).
func partitionBytes(g *graph.Graph) int64 {
	return int64(g.NumVertices()) * 10
}

// snapshotFresh reports whether snap exists and is at least as new as
// the text edge list it shadows — an edge list edited after its
// snapshot was written must win, not silently serve stale data.
func snapshotFresh(text, snap string) bool {
	ss, err := os.Stat(snap)
	if err != nil || ss.IsDir() {
		return false
	}
	ts, err := os.Stat(text)
	if err != nil {
		return true // no text file at all: the snapshot is the data
	}
	return !ss.ModTime().Before(ts.ModTime())
}

func readEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

// List returns all datasets in registration order.
func (c *Catalog) List() []Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Info, 0, len(c.order))
	for _, name := range c.order {
		info := Info{Spec: c.specs[name]}
		if s, ok := c.entries[name]; ok && s.entry != nil {
			g := s.entry.Graph
			info.Loaded = true
			info.Vertices = g.NumVertices()
			info.Edges = g.NumEdges()
			info.Weighted = g.Weighted()
			info.IsUndir = g.Undirected
			info.Bytes = s.entry.bytes
		}
		out = append(out, info)
	}
	return out
}

// Stats returns a snapshot of catalog counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Datasets:  len(c.specs),
		Loads:     c.loads,
		Hits:      c.hits,
		Evictions: c.evictions,
		Bytes:     c.residentBytesLocked(),
		MaxBytes:  c.maxBytes,
	}
	for _, s := range c.entries {
		if s.entry != nil {
			st.Loaded++
		}
	}
	return st
}

// ParseGen parses a generator expression "kind:key=val,key=val" and
// returns a closure producing the graph. Supported kinds mirror
// cmd/graphgen:
//
//	rmat:scale=S,ef=E,seed=N[,weighted][,maxw=W][,undirected]
//	social:scale=S,ef=E,seed=N
//	chain:n=N
//	tree:n=N,seed=S
//	grid:rows=R,cols=C,maxw=W,seed=S
//	digraph:n=N,m=M,seed=S
//	forest:n=N,k=K,seed=S
func ParseGen(expr string) (func() *graph.Graph, error) {
	kind, rest, _ := strings.Cut(expr, ":")
	kv := map[string]string{}
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			k, v, found := strings.Cut(part, "=")
			k = strings.TrimSpace(k)
			if k == "" {
				return nil, fmt.Errorf("catalog: empty key in generator %q", expr)
			}
			if !found {
				v = "true" // bare flags: "weighted"
			}
			kv[k] = strings.TrimSpace(v)
		}
	}
	get := func(key string, def int64) (int64, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("catalog: generator %q: bad %s=%q", expr, key, s)
		}
		return n, nil
	}
	getBool := func(key string) bool {
		s, ok := kv[key]
		delete(kv, key)
		return ok && s != "false"
	}

	var gen func() *graph.Graph
	var err error
	fail := func(e error) (func() *graph.Graph, error) { return nil, e }
	switch kind {
	case "rmat":
		var scale, ef, seed, maxw int64
		if scale, err = get("scale", 10); err != nil {
			return fail(err)
		}
		if ef, err = get("ef", 8); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		if maxw, err = get("maxw", 100); err != nil {
			return fail(err)
		}
		weighted := getBool("weighted")
		undirected := getBool("undirected")
		gen = func() *graph.Graph {
			g := graph.RMAT(int(scale), int(ef), seed, graph.RMATOptions{
				Weighted: weighted, MaxWeight: int32(maxw), NoSelfLoops: true})
			if undirected {
				g = graph.Undirectify(g)
			}
			return g
		}
	case "social":
		var scale, ef, seed int64
		if scale, err = get("scale", 10); err != nil {
			return fail(err)
		}
		if ef, err = get("ef", 8); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.SocialRMAT(int(scale), int(ef), seed) }
	case "chain":
		var n int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.Chain(int(n)) }
	case "tree":
		var n, seed int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.RandomTree(int(n), seed) }
	case "grid":
		var rows, cols, maxw, seed int64
		if rows, err = get("rows", 100); err != nil {
			return fail(err)
		}
		if cols, err = get("cols", 100); err != nil {
			return fail(err)
		}
		if maxw, err = get("maxw", 100); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.Grid(int(rows), int(cols), int32(maxw), seed) }
	case "digraph":
		var n, m, seed int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		if m, err = get("m", 4000); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.RandomDigraph(int(n), int(m), seed) }
	case "forest":
		var n, k, seed int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		if k, err = get("k", 4); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.Forest(int(n), int(k), seed) }
	default:
		return nil, fmt.Errorf("catalog: unknown generator kind %q", kind)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("catalog: generator %q: unknown keys %v", expr, keys)
	}
	return gen, nil
}

// Generate evaluates a generator expression.
func Generate(expr string) (*graph.Graph, error) {
	gen, err := ParseGen(expr)
	if err != nil {
		return nil, err
	}
	return gen(), nil
}
