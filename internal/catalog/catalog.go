// Package catalog is the shared graph store of the job service: named
// dataset specs (edge-list files or generator expressions) loaded at
// most once, cached as epoch-wrapped graphs plus their derived views,
// and shared by every job that names the dataset.
//
// A view is one (orientation, placement) combination of the dataset:
// the graph, its partition, and the pre-resolved per-worker fragments
// (internal/frag) every job runs on. View construction lives on
// internal/live's Epoch — a static dataset is a single never-superseded
// epoch, a mutable one (Spec.Mutable) is a live.Graph whose compactor
// publishes new epochs as edge batches land. Views are built lazily,
// exactly once each per epoch (the default hash view eagerly at load
// time, fragments in parallel), and charged against the catalog's byte
// budget — so the budget covers every resident epoch, not just the
// base graphs.
//
// Loading is singleflight — concurrent Get calls for a cold dataset
// block on one loader goroutine — and the resident set is bounded by an
// approximate byte budget with least-recently-used eviction. File-backed
// specs prefer a binary snapshot ("<path>.bin", graph.WriteSnapshot
// layout) over re-parsing the text edge list; version-2 snapshots embed
// named owner vectors, which lets a restart skip re-partitioning (the
// greedy BFS in particular).
package catalog

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/partition"
)

// Spec declares a dataset. Exactly one of Path or Gen must be set.
type Spec struct {
	Name string `json:"name"`
	// Path is an edge-list file (graph.ReadEdgeList format) or a binary
	// snapshot. A "<path>.bin" sibling, when present, is preferred.
	Path string `json:"path,omitempty"`
	// Gen is a generator expression, e.g. "rmat:scale=12,ef=8,seed=1"
	// (see ParseGen for the full grammar).
	Gen string `json:"gen,omitempty"`
	// Undirected runs the loaded graph through graph.Undirectify.
	Undirected bool `json:"undirected,omitempty"`
	// Placement is the default vertex placement for jobs on this dataset
	// ("hash" when empty, or "greedy" — the paper's "(P)" locality
	// placement). Individual jobs may override it.
	Placement string `json:"placement,omitempty"`
	// Mutable registers the dataset as a live graph: edge batches may
	// be ingested after load, and jobs run against epoch-versioned
	// snapshots. Mutable datasets keep a directed base (undirected
	// views are derived per epoch), so Undirected must be false.
	Mutable bool `json:"mutable,omitempty"`
}

// View is one (orientation, placement) combination of a dataset; the
// construction (partition, shared-nothing fragments, edge cut) lives on
// internal/live's Epoch and is shared between static and live datasets.
type View = live.View

// Entry is a loaded dataset: the load-time base graph and its default
// hash view for introspection, plus the epoch holding every derived
// view — a single static epoch, or the current epoch of a live graph.
type Entry struct {
	Spec Spec
	// Graph and Part are the static base graph and its default hash
	// partition. Both are nil for live datasets: pinning them on the
	// entry would keep epoch 1's CSR resident (and uncounted) after the
	// epoch retires — use Live() or CurrentGraph instead.
	Graph    *graph.Graph
	Part     *partition.Partition
	LoadedAt time.Time

	cat     *Catalog
	workers int
	bytes   int64 // guarded by cat.mu once the entry is published

	epoch     *live.Epoch // static datasets: the single, never-superseded epoch
	liveGraph *live.Graph // mutable datasets
	closeOnce sync.Once
}

// Bytes returns the approximate resident size of the entry, including
// all resident epochs, derived views and fragments.
func (e *Entry) Bytes() int64 {
	e.cat.mu.Lock()
	defer e.cat.mu.Unlock()
	return e.bytes
}

// Live returns the entry's mutable graph, or nil for a static dataset.
func (e *Entry) Live() *live.Graph { return e.liveGraph }

// View returns the dataset under the named placement ("" or "hash",
// "greedy") and orientation, building the partition and fragments
// exactly once per (epoch, combination). For live datasets this reads
// the current epoch transiently; jobs that must hold one snapshot for
// a whole run use AcquireView instead.
func (e *Entry) View(placement string, undirected bool) (*View, error) {
	if e.liveGraph != nil {
		ep := e.liveGraph.Pin()
		defer ep.Release()
		return ep.View(placement, undirected)
	}
	return e.epoch.View(placement, undirected)
}

// AcquireView pins the dataset's current epoch and returns its
// (placement, orientation) view, a release closure the caller must run
// when the computation finishes, and the epoch sequence number (0 for
// static datasets, whose single epoch needs no pinning). Until release,
// the snapshot stays resident even if newer epochs are published.
func (e *Entry) AcquireView(placement string, undirected bool) (*View, func(), uint64, error) {
	if e.liveGraph == nil {
		v, err := e.epoch.View(placement, undirected)
		return v, func() {}, 0, err
	}
	ep := e.liveGraph.Pin()
	v, err := ep.View(placement, undirected)
	if err != nil {
		ep.Release()
		return nil, nil, 0, err
	}
	return v, ep.Release, ep.Seq(), nil
}

// Views lists the views materialized so far on the entry's current
// epoch.
func (e *Entry) Views() []*View {
	if e.liveGraph != nil {
		ep := e.liveGraph.Pin()
		defer ep.Release()
		return ep.BuiltViews()
	}
	return e.epoch.BuiltViews()
}

// CurrentGraph returns the graph jobs would run on right now (the
// current epoch's CSR for live datasets). The returned CSR stays valid
// while the caller holds it, but for live datasets it may already be a
// superseded epoch by the time it is read — fine for introspection, not
// for consistency-critical reads (pin an epoch for those).
func (e *Entry) CurrentGraph() *graph.Graph {
	if e.liveGraph != nil {
		ep := e.liveGraph.Pin()
		defer ep.Release()
		return ep.Graph()
	}
	return e.Graph
}

// close releases background resources (the live compactor). Idempotent.
func (e *Entry) close() {
	e.closeOnce.Do(func() {
		if e.liveGraph != nil {
			e.liveGraph.Close()
		}
	})
}

// Info is the List/JSON view of a dataset. For live datasets the
// vertex/edge counts and epoch describe the current epoch.
type Info struct {
	Spec
	Loaded   bool   `json:"loaded"`
	Vertices int    `json:"vertices,omitempty"`
	Edges    int    `json:"edges,omitempty"`
	Weighted bool   `json:"weighted,omitempty"`
	IsUndir  bool   `json:"is_undirected,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// ViewInfo describes one materialized view in the detail endpoint.
type ViewInfo struct {
	Placement  string  `json:"placement"`
	Undirected bool    `json:"undirected,omitempty"`
	EdgeCut    float64 `json:"edge_cut"`
}

// Detail is the full introspection payload of one dataset.
type Detail struct {
	Info
	Workers int         `json:"workers,omitempty"`
	Views   []ViewInfo  `json:"views,omitempty"`
	Live    *live.Stats `json:"live,omitempty"`
}

// Stats summarizes catalog activity.
type Stats struct {
	Datasets  int   `json:"datasets"`
	Loaded    int   `json:"loaded"`
	Loads     int64 `json:"loads"`
	Hits      int64 `json:"hits"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
}

// Catalog is safe for concurrent use.
type Catalog struct {
	workers       int
	maxBytes      int64
	maxDeltaOps   int // live compaction thresholds, applied per dataset
	maxDeltaBatch int

	mu      sync.Mutex
	specs   map[string]Spec
	order   []string
	entries map[string]*slot
	clock   int64 // LRU stamp source
	closed  bool

	loads, hits, evictions int64
}

// Option tweaks a Catalog.
type Option func(*Catalog)

// WithCompaction sets the live-dataset compaction thresholds: a
// background compaction starts once a delta log holds maxOps pending
// operations or maxBatches pending batches (<= 0 keeps the live
// package defaults).
func WithCompaction(maxOps, maxBatches int) Option {
	return func(c *Catalog) {
		c.maxDeltaOps = maxOps
		c.maxDeltaBatch = maxBatches
	}
}

// slot is the singleflight cell for one dataset.
type slot struct {
	done     chan struct{} // closed when the load finishes
	entry    *Entry        // set on success
	err      error         // set on failure
	lastUsed int64
}

// New creates a catalog partitioning graphs across workers simulated
// nodes. maxBytes bounds the approximate resident graph bytes (0 =
// unlimited); the most recently used entries are kept. workers <= 0
// selects the default of 8; a count beyond the partition's
// representable range is kept as-is and surfaces as a loud per-load
// partitioning error rather than a silently substituted topology.
func New(workers int, maxBytes int64, opts ...Option) *Catalog {
	if workers <= 0 {
		workers = 8
	}
	c := &Catalog{
		workers:  workers,
		maxBytes: maxBytes,
		specs:    make(map[string]Spec),
		entries:  make(map[string]*slot),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Close shuts down background resources of every loaded entry (live
// compactors). Further Get calls fail; pinned epochs remain readable
// until released.
func (c *Catalog) Close() {
	c.mu.Lock()
	c.closed = true
	var ents []*Entry
	for _, s := range c.entries {
		if s.entry != nil {
			ents = append(ents, s.entry)
		}
	}
	c.mu.Unlock()
	for _, e := range ents {
		e.close()
	}
}

// Register adds a dataset spec. Re-registering an existing name is an
// error (the immutable cache would go stale).
func (c *Catalog) Register(spec Spec) error {
	if spec.Name == "" {
		return fmt.Errorf("catalog: dataset name is required")
	}
	if (spec.Path == "") == (spec.Gen == "") {
		return fmt.Errorf("catalog: dataset %q: exactly one of path or gen must be set", spec.Name)
	}
	if spec.Gen != "" {
		if _, err := ParseGen(spec.Gen); err != nil {
			return fmt.Errorf("catalog: dataset %q: %w", spec.Name, err)
		}
	}
	switch spec.Placement {
	case "", partition.PlacementHash, partition.PlacementGreedy:
	default:
		return fmt.Errorf("catalog: dataset %q: unknown placement %q", spec.Name, spec.Placement)
	}
	if spec.Mutable && spec.Undirected {
		return fmt.Errorf("catalog: dataset %q: mutable datasets keep a directed base (undirected views are derived per epoch)", spec.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("catalog: catalog is closed")
	}
	if _, ok := c.specs[spec.Name]; ok {
		return fmt.Errorf("catalog: dataset %q already registered", spec.Name)
	}
	c.specs[spec.Name] = spec
	c.order = append(c.order, spec.Name)
	return nil
}

// Has reports whether name is a registered dataset.
func (c *Catalog) Has(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.specs[name]
	return ok
}

// SpecOf returns the registered spec for name without loading anything
// — the ingest endpoint rejects immutable datasets from the spec alone,
// before paying for a load.
func (c *Catalog) SpecOf(name string) (Spec, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	spec, ok := c.specs[name]
	return spec, ok
}

// Get returns the loaded entry for name, loading it exactly once no
// matter how many goroutines ask concurrently. A failed load is not
// cached: the next Get retries.
func (c *Catalog) Get(name string) (*Entry, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("catalog: catalog is closed")
	}
	spec, ok := c.specs[name]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("catalog: unknown dataset %q", name)
	}
	if s, ok := c.entries[name]; ok {
		c.clock++
		s.lastUsed = c.clock
		c.mu.Unlock()
		<-s.done
		if s.err == nil {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
		}
		return s.entry, s.err
	}
	s := &slot{done: make(chan struct{})}
	c.clock++
	s.lastUsed = c.clock
	c.entries[name] = s
	c.mu.Unlock()

	entry, err := c.load(spec)
	c.mu.Lock()
	if err == nil && c.closed {
		// Close ran while this load was in flight and could not see the
		// unpublished entry: shut it down here instead of publishing a
		// live compactor nothing would ever stop.
		err = fmt.Errorf("catalog: catalog is closed")
		go entry.close()
		entry = nil
	}
	if err != nil {
		s.err = err
		delete(c.entries, name) // allow retry
	} else {
		s.entry = entry
		c.loads++
		c.evictOverBudgetLocked(name)
	}
	c.mu.Unlock()
	close(s.done)
	return entry, err
}

// evictOverBudgetLocked drops least-recently-used loaded entries until
// the byte budget holds. The entry named keep (the one just loaded),
// in-flight loads, and live entries are never evicted — a live entry's
// ingested mutations are not reconstructible from its spec, so evicting
// one would silently reload the pristine base graph; live memory is
// bounded by epoch retirement instead.
func (c *Catalog) evictOverBudgetLocked(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	for c.residentBytesLocked() > c.maxBytes {
		victim := ""
		var oldest int64
		for name, s := range c.entries {
			if name == keep || s.entry == nil || s.entry.liveGraph != nil {
				continue
			}
			if victim == "" || s.lastUsed < oldest {
				victim, oldest = name, s.lastUsed
			}
		}
		if victim == "" {
			return
		}
		if ent := c.entries[victim].entry; ent != nil {
			// release any background resources off-lock (victims are
			// static today, but close must never run under c.mu: a live
			// compactor could be blocked charging bytes through it)
			go ent.close()
		}
		delete(c.entries, victim)
		c.evictions++
	}
}

func (c *Catalog) residentBytesLocked() int64 {
	var total int64
	for _, s := range c.entries {
		if s.entry != nil {
			total += s.entry.bytes
		}
	}
	return total
}

// load materializes a spec outside the catalog lock: read or generate
// the graph, adopt any snapshot-embedded placements, and build the
// default hash view (partition + fragments, fragments in parallel) so
// the first job pays nothing.
func (c *Catalog) load(spec Spec) (*Entry, error) {
	var g *graph.Graph
	var placements []graph.Placement
	var err error
	switch {
	case spec.Gen != "":
		g, err = Generate(spec.Gen)
	case strings.HasSuffix(spec.Path, graph.SnapshotExt):
		g, placements, err = graph.ReadSnapshotFile(spec.Path)
	default:
		if snap := spec.Path + graph.SnapshotExt; snapshotFresh(spec.Path, snap) {
			g, placements, err = graph.ReadSnapshotFile(snap)
		} else {
			g, err = readEdgeListFile(spec.Path)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %w", spec.Name, err)
	}
	if spec.Undirected && !g.Undirected {
		g = graph.Undirectify(g)
	}
	e := &Entry{
		Spec:     spec,
		Graph:    g,
		LoadedAt: time.Now(),
		cat:      c,
		workers:  c.workers,
	}
	snapParts := make(map[string]*partition.Partition)
	for _, p := range placements {
		if p.Workers != c.workers || len(p.Owner) != g.NumVertices() {
			continue // built for another cluster shape: ignore
		}
		part, err := partition.FromOwners(p.Workers, p.Owner)
		if err != nil {
			// embedded placements are only a re-partitioning cache: a
			// corrupt one is dropped (the view recomputes it), it must
			// not make an otherwise valid dataset unloadable
			continue
		}
		snapParts[p.Name] = part
	}

	// Wrap the graph in its epoch holder and eagerly build the default
	// (hash, loaded orientation) view so the first job pays nothing. The
	// bytes accumulated so far become the entry's base size; only later
	// derivations flow through the LRU charge hook (the entry is not
	// yet published, so addDerivedBytes could not account them anyway).
	hook := func(b int64) { c.addDerivedBytes(e, b) }
	if spec.Mutable {
		lg, err := live.New(g, live.Options{
			Workers:         c.workers,
			MaxDeltaOps:     c.maxDeltaOps,
			MaxDeltaBatches: c.maxDeltaBatch,
			Preset:          snapParts,
		})
		if err != nil {
			return nil, fmt.Errorf("catalog: load %q: %w", spec.Name, err)
		}
		ep := lg.Pin()
		_, err = ep.View(partition.PlacementHash, false)
		ep.Release()
		if err != nil {
			lg.Close()
			return nil, fmt.Errorf("catalog: load %q: %w", spec.Name, err)
		}
		e.liveGraph = lg
		// do not retain epoch 1's graph or partition on the entry: the
		// epochs own them, and an entry-level reference would keep the
		// base CSR resident (uncounted) after the epoch retires
		e.Graph = nil
		e.bytes = lg.Bytes()
		lg.SetOnBytes(hook)
		return e, nil
	}
	ep := live.NewEpoch(1, g, live.EpochConfig{Workers: c.workers, Preset: snapParts})
	hashView, err := ep.View(partition.PlacementHash, false)
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %w", spec.Name, err)
	}
	e.epoch = ep
	e.Part = hashView.Part
	e.bytes = ep.Bytes()
	ep.SetOnBytes(hook)
	return e, nil
}

// addDerivedBytes charges a lazily-derived view to its entry and
// re-applies the byte budget (the entry that grew is never the victim).
// The slot must still hold this exact entry: a caller that kept an
// already-evicted Entry derives a view the cache no longer holds, which
// must not be charged to a re-loaded successor.
func (c *Catalog) addDerivedBytes(e *Entry, b int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.entries[e.Spec.Name]; ok && s.entry == e {
		e.bytes += b
		c.evictOverBudgetLocked(e.Spec.Name)
	}
}

// snapshotFresh reports whether snap exists and is at least as new as
// the text edge list it shadows — an edge list edited after its
// snapshot was written must win, not silently serve stale data.
func snapshotFresh(text, snap string) bool {
	ss, err := os.Stat(snap)
	if err != nil || ss.IsDir() {
		return false
	}
	ts, err := os.Stat(text)
	if err != nil {
		return true // no text file at all: the snapshot is the data
	}
	return !ss.ModTime().Before(ts.ModTime())
}

func readEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

// infoLocked fills an Info for one dataset; c.mu must be held. Live
// counters are read without pinning (the current epoch cannot be freed
// while current).
func (c *Catalog) infoLocked(name string) Info {
	info := Info{Spec: c.specs[name]}
	s, ok := c.entries[name]
	if !ok || s.entry == nil {
		return info
	}
	e := s.entry
	info.Loaded = true
	info.Bytes = e.bytes
	if lg := e.liveGraph; lg != nil {
		st := lg.Stats()
		info.Vertices = st.Vertices
		info.Edges = st.Edges
		info.Weighted = lg.Weighted()
		info.Epoch = st.Epoch
		return info
	}
	g := e.Graph
	info.Vertices = g.NumVertices()
	info.Edges = g.NumEdges()
	info.Weighted = g.Weighted()
	info.IsUndir = g.Undirected
	return info
}

// List returns all datasets in registration order.
func (c *Catalog) List() []Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Info, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.infoLocked(name))
	}
	return out
}

// DetailOf returns the full introspection payload of one dataset
// without forcing a load: materialized views with their edge cuts, and
// live epoch + delta-log statistics for mutable datasets.
func (c *Catalog) DetailOf(name string) (Detail, error) {
	c.mu.Lock()
	if _, ok := c.specs[name]; !ok {
		c.mu.Unlock()
		return Detail{}, fmt.Errorf("catalog: unknown dataset %q", name)
	}
	d := Detail{Info: c.infoLocked(name), Workers: c.workers}
	var e *Entry
	if s, ok := c.entries[name]; ok {
		e = s.entry
	}
	c.mu.Unlock()
	if e == nil {
		return d, nil
	}
	for _, v := range e.Views() {
		d.Views = append(d.Views, ViewInfo{
			Placement:  v.Placement,
			Undirected: v.Undirected,
			EdgeCut:    v.EdgeCut,
		})
	}
	if lg := e.liveGraph; lg != nil {
		st := lg.Stats()
		d.Live = &st
	}
	return d, nil
}

// Stats returns a snapshot of catalog counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Datasets:  len(c.specs),
		Loads:     c.loads,
		Hits:      c.hits,
		Evictions: c.evictions,
		Bytes:     c.residentBytesLocked(),
		MaxBytes:  c.maxBytes,
	}
	for _, s := range c.entries {
		if s.entry != nil {
			st.Loaded++
		}
	}
	return st
}

// ParseGen parses a generator expression "kind:key=val,key=val" and
// returns a closure producing the graph. Supported kinds mirror
// cmd/graphgen:
//
//	rmat:scale=S,ef=E,seed=N[,weighted][,maxw=W][,undirected]
//	social:scale=S,ef=E,seed=N
//	chain:n=N
//	tree:n=N,seed=S
//	grid:rows=R,cols=C,maxw=W,seed=S
//	digraph:n=N,m=M,seed=S
//	forest:n=N,k=K,seed=S
func ParseGen(expr string) (func() *graph.Graph, error) {
	kind, rest, _ := strings.Cut(expr, ":")
	kv := map[string]string{}
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			k, v, found := strings.Cut(part, "=")
			k = strings.TrimSpace(k)
			if k == "" {
				return nil, fmt.Errorf("catalog: empty key in generator %q", expr)
			}
			if !found {
				v = "true" // bare flags: "weighted"
			}
			kv[k] = strings.TrimSpace(v)
		}
	}
	get := func(key string, def int64) (int64, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("catalog: generator %q: bad %s=%q", expr, key, s)
		}
		return n, nil
	}
	getBool := func(key string) bool {
		s, ok := kv[key]
		delete(kv, key)
		return ok && s != "false"
	}

	var gen func() *graph.Graph
	var err error
	fail := func(e error) (func() *graph.Graph, error) { return nil, e }
	switch kind {
	case "rmat":
		var scale, ef, seed, maxw int64
		if scale, err = get("scale", 10); err != nil {
			return fail(err)
		}
		if ef, err = get("ef", 8); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		if maxw, err = get("maxw", 100); err != nil {
			return fail(err)
		}
		weighted := getBool("weighted")
		undirected := getBool("undirected")
		gen = func() *graph.Graph {
			g := graph.RMAT(int(scale), int(ef), seed, graph.RMATOptions{
				Weighted: weighted, MaxWeight: int32(maxw), NoSelfLoops: true})
			if undirected {
				g = graph.Undirectify(g)
			}
			return g
		}
	case "social":
		var scale, ef, seed int64
		if scale, err = get("scale", 10); err != nil {
			return fail(err)
		}
		if ef, err = get("ef", 8); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.SocialRMAT(int(scale), int(ef), seed) }
	case "chain":
		var n int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.Chain(int(n)) }
	case "tree":
		var n, seed int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.RandomTree(int(n), seed) }
	case "grid":
		var rows, cols, maxw, seed int64
		if rows, err = get("rows", 100); err != nil {
			return fail(err)
		}
		if cols, err = get("cols", 100); err != nil {
			return fail(err)
		}
		if maxw, err = get("maxw", 100); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.Grid(int(rows), int(cols), int32(maxw), seed) }
	case "digraph":
		var n, m, seed int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		if m, err = get("m", 4000); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.RandomDigraph(int(n), int(m), seed) }
	case "forest":
		var n, k, seed int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		if k, err = get("k", 4); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.Forest(int(n), int(k), seed) }
	default:
		return nil, fmt.Errorf("catalog: unknown generator kind %q", kind)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("catalog: generator %q: unknown keys %v", expr, keys)
	}
	return gen, nil
}

// Generate evaluates a generator expression.
func Generate(expr string) (*graph.Graph, error) {
	gen, err := ParseGen(expr)
	if err != nil {
		return nil, err
	}
	return gen(), nil
}
