// Package catalog is the shared graph store of the job service: named
// dataset specs (edge-list files or generator expressions) loaded at
// most once, cached as the immutable *graph.Graph plus its default
// partition, and shared by every job that names the dataset.
//
// Loading is singleflight — concurrent Get calls for a cold dataset
// block on one loader goroutine — and the resident set is bounded by an
// approximate byte budget with least-recently-used eviction. File-backed
// specs prefer a binary snapshot ("<path>.bin", graph.WriteBinary
// layout) over re-parsing the text edge list.
package catalog

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Spec declares a dataset. Exactly one of Path or Gen must be set.
type Spec struct {
	Name string `json:"name"`
	// Path is an edge-list file (graph.ReadEdgeList format) or a binary
	// snapshot. A "<path>.bin" sibling, when present, is preferred.
	Path string `json:"path,omitempty"`
	// Gen is a generator expression, e.g. "rmat:scale=12,ef=8,seed=1"
	// (see ParseGen for the full grammar).
	Gen string `json:"gen,omitempty"`
	// Undirected runs the loaded graph through graph.Undirectify.
	Undirected bool `json:"undirected,omitempty"`
}

// Entry is a loaded dataset: the immutable graph and its hash
// partition, plus a lazily-derived undirected form for algorithms that
// need both edge orientations.
type Entry struct {
	Spec     Spec
	Graph    *graph.Graph
	Part     *partition.Partition
	LoadedAt time.Time

	cat     *Catalog
	workers int
	bytes   int64 // guarded by cat.mu once the entry is published

	undOnce  sync.Once
	undGraph *graph.Graph
	undPart  *partition.Partition
}

// Bytes returns the approximate resident size of the entry, including
// any derived undirected view.
func (e *Entry) Bytes() int64 {
	e.cat.mu.Lock()
	defer e.cat.mu.Unlock()
	return e.bytes
}

// Undirected returns a both-orientations view of the dataset: the entry
// itself if already undirected, otherwise a derived graph computed once
// and cached for all subsequent jobs. The derived graph's size counts
// against the catalog byte budget.
func (e *Entry) Undirected() (*graph.Graph, *partition.Partition) {
	if e.Graph.Undirected {
		return e.Graph, e.Part
	}
	e.undOnce.Do(func() {
		e.undGraph = graph.Undirectify(e.Graph)
		e.undPart = partition.Hash(e.undGraph.NumVertices(), e.workers)
		e.cat.addDerivedBytes(e, graphBytes(e.undGraph))
	})
	return e.undGraph, e.undPart
}

// Info is the List/JSON view of a dataset.
type Info struct {
	Spec
	Loaded   bool  `json:"loaded"`
	Vertices int   `json:"vertices,omitempty"`
	Edges    int   `json:"edges,omitempty"`
	Weighted bool  `json:"weighted,omitempty"`
	IsUndir  bool  `json:"is_undirected,omitempty"`
	Bytes    int64 `json:"bytes,omitempty"`
}

// Stats summarizes catalog activity.
type Stats struct {
	Datasets  int   `json:"datasets"`
	Loaded    int   `json:"loaded"`
	Loads     int64 `json:"loads"`
	Hits      int64 `json:"hits"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
}

// Catalog is safe for concurrent use.
type Catalog struct {
	workers  int
	maxBytes int64

	mu      sync.Mutex
	specs   map[string]Spec
	order   []string
	entries map[string]*slot
	clock   int64 // LRU stamp source

	loads, hits, evictions int64
}

// slot is the singleflight cell for one dataset.
type slot struct {
	done     chan struct{} // closed when the load finishes
	entry    *Entry        // set on success
	err      error         // set on failure
	lastUsed int64
}

// New creates a catalog partitioning graphs across workers simulated
// nodes. maxBytes bounds the approximate resident graph bytes (0 =
// unlimited); the most recently used entries are kept.
func New(workers int, maxBytes int64) *Catalog {
	if workers <= 0 {
		workers = 8
	}
	return &Catalog{
		workers:  workers,
		maxBytes: maxBytes,
		specs:    make(map[string]Spec),
		entries:  make(map[string]*slot),
	}
}

// Register adds a dataset spec. Re-registering an existing name is an
// error (the immutable cache would go stale).
func (c *Catalog) Register(spec Spec) error {
	if spec.Name == "" {
		return fmt.Errorf("catalog: dataset name is required")
	}
	if (spec.Path == "") == (spec.Gen == "") {
		return fmt.Errorf("catalog: dataset %q: exactly one of path or gen must be set", spec.Name)
	}
	if spec.Gen != "" {
		if _, err := ParseGen(spec.Gen); err != nil {
			return fmt.Errorf("catalog: dataset %q: %w", spec.Name, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.specs[spec.Name]; ok {
		return fmt.Errorf("catalog: dataset %q already registered", spec.Name)
	}
	c.specs[spec.Name] = spec
	c.order = append(c.order, spec.Name)
	return nil
}

// Has reports whether name is a registered dataset.
func (c *Catalog) Has(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.specs[name]
	return ok
}

// Get returns the loaded entry for name, loading it exactly once no
// matter how many goroutines ask concurrently. A failed load is not
// cached: the next Get retries.
func (c *Catalog) Get(name string) (*Entry, error) {
	c.mu.Lock()
	spec, ok := c.specs[name]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("catalog: unknown dataset %q", name)
	}
	if s, ok := c.entries[name]; ok {
		c.clock++
		s.lastUsed = c.clock
		c.mu.Unlock()
		<-s.done
		if s.err == nil {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
		}
		return s.entry, s.err
	}
	s := &slot{done: make(chan struct{})}
	c.clock++
	s.lastUsed = c.clock
	c.entries[name] = s
	c.mu.Unlock()

	entry, err := c.load(spec)
	c.mu.Lock()
	if err != nil {
		s.err = err
		delete(c.entries, name) // allow retry
	} else {
		s.entry = entry
		c.loads++
		c.evictOverBudgetLocked(name)
	}
	c.mu.Unlock()
	close(s.done)
	return entry, err
}

// evictOverBudgetLocked drops least-recently-used loaded entries until
// the byte budget holds. The entry named keep (the one just loaded) and
// in-flight loads are never evicted.
func (c *Catalog) evictOverBudgetLocked(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	for c.residentBytesLocked() > c.maxBytes {
		victim := ""
		var oldest int64
		for name, s := range c.entries {
			if name == keep || s.entry == nil {
				continue
			}
			if victim == "" || s.lastUsed < oldest {
				victim, oldest = name, s.lastUsed
			}
		}
		if victim == "" {
			return
		}
		delete(c.entries, victim)
		c.evictions++
	}
}

func (c *Catalog) residentBytesLocked() int64 {
	var total int64
	for _, s := range c.entries {
		if s.entry != nil {
			total += s.entry.bytes
		}
	}
	return total
}

// load materializes a spec outside the catalog lock.
func (c *Catalog) load(spec Spec) (*Entry, error) {
	var g *graph.Graph
	var err error
	switch {
	case spec.Gen != "":
		g, err = Generate(spec.Gen)
	case strings.HasSuffix(spec.Path, graph.SnapshotExt):
		g, err = graph.ReadBinaryFile(spec.Path)
	default:
		if snap := spec.Path + graph.SnapshotExt; snapshotFresh(spec.Path, snap) {
			g, err = graph.ReadBinaryFile(snap)
		} else {
			g, err = readEdgeListFile(spec.Path)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %w", spec.Name, err)
	}
	if spec.Undirected && !g.Undirected {
		g = graph.Undirectify(g)
	}
	e := &Entry{
		Spec:     spec,
		Graph:    g,
		Part:     partition.Hash(g.NumVertices(), c.workers),
		LoadedAt: time.Now(),
		cat:      c,
		workers:  c.workers,
		bytes:    graphBytes(g),
	}
	return e, nil
}

// addDerivedBytes charges a lazily-derived view to its entry and
// re-applies the byte budget (the entry that grew is never the victim).
// The slot must still hold this exact entry: a caller that kept an
// already-evicted Entry derives a view the cache no longer holds, which
// must not be charged to a re-loaded successor.
func (c *Catalog) addDerivedBytes(e *Entry, b int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.entries[e.Spec.Name]; ok && s.entry == e {
		e.bytes += b
		c.evictOverBudgetLocked(e.Spec.Name)
	}
}

// graphBytes approximates the resident size of a graph plus its
// partition (owner+local maps ~10 bytes/vertex).
func graphBytes(g *graph.Graph) int64 {
	b := int64(len(g.Offsets))*8 + int64(len(g.Adj))*4 + int64(len(g.Weights))*4
	return b + int64(g.NumVertices())*10
}

// snapshotFresh reports whether snap exists and is at least as new as
// the text edge list it shadows — an edge list edited after its
// snapshot was written must win, not silently serve stale data.
func snapshotFresh(text, snap string) bool {
	ss, err := os.Stat(snap)
	if err != nil || ss.IsDir() {
		return false
	}
	ts, err := os.Stat(text)
	if err != nil {
		return true // no text file at all: the snapshot is the data
	}
	return !ss.ModTime().Before(ts.ModTime())
}

func readEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

// List returns all datasets in registration order.
func (c *Catalog) List() []Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Info, 0, len(c.order))
	for _, name := range c.order {
		info := Info{Spec: c.specs[name]}
		if s, ok := c.entries[name]; ok && s.entry != nil {
			g := s.entry.Graph
			info.Loaded = true
			info.Vertices = g.NumVertices()
			info.Edges = g.NumEdges()
			info.Weighted = g.Weighted()
			info.IsUndir = g.Undirected
			info.Bytes = s.entry.bytes
		}
		out = append(out, info)
	}
	return out
}

// Stats returns a snapshot of catalog counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Datasets:  len(c.specs),
		Loads:     c.loads,
		Hits:      c.hits,
		Evictions: c.evictions,
		Bytes:     c.residentBytesLocked(),
		MaxBytes:  c.maxBytes,
	}
	for _, s := range c.entries {
		if s.entry != nil {
			st.Loaded++
		}
	}
	return st
}

// ParseGen parses a generator expression "kind:key=val,key=val" and
// returns a closure producing the graph. Supported kinds mirror
// cmd/graphgen:
//
//	rmat:scale=S,ef=E,seed=N[,weighted][,maxw=W][,undirected]
//	social:scale=S,ef=E,seed=N
//	chain:n=N
//	tree:n=N,seed=S
//	grid:rows=R,cols=C,maxw=W,seed=S
//	digraph:n=N,m=M,seed=S
//	forest:n=N,k=K,seed=S
func ParseGen(expr string) (func() *graph.Graph, error) {
	kind, rest, _ := strings.Cut(expr, ":")
	kv := map[string]string{}
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			k, v, found := strings.Cut(part, "=")
			k = strings.TrimSpace(k)
			if k == "" {
				return nil, fmt.Errorf("catalog: empty key in generator %q", expr)
			}
			if !found {
				v = "true" // bare flags: "weighted"
			}
			kv[k] = strings.TrimSpace(v)
		}
	}
	get := func(key string, def int64) (int64, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("catalog: generator %q: bad %s=%q", expr, key, s)
		}
		return n, nil
	}
	getBool := func(key string) bool {
		s, ok := kv[key]
		delete(kv, key)
		return ok && s != "false"
	}

	var gen func() *graph.Graph
	var err error
	fail := func(e error) (func() *graph.Graph, error) { return nil, e }
	switch kind {
	case "rmat":
		var scale, ef, seed, maxw int64
		if scale, err = get("scale", 10); err != nil {
			return fail(err)
		}
		if ef, err = get("ef", 8); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		if maxw, err = get("maxw", 100); err != nil {
			return fail(err)
		}
		weighted := getBool("weighted")
		undirected := getBool("undirected")
		gen = func() *graph.Graph {
			g := graph.RMAT(int(scale), int(ef), seed, graph.RMATOptions{
				Weighted: weighted, MaxWeight: int32(maxw), NoSelfLoops: true})
			if undirected {
				g = graph.Undirectify(g)
			}
			return g
		}
	case "social":
		var scale, ef, seed int64
		if scale, err = get("scale", 10); err != nil {
			return fail(err)
		}
		if ef, err = get("ef", 8); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.SocialRMAT(int(scale), int(ef), seed) }
	case "chain":
		var n int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.Chain(int(n)) }
	case "tree":
		var n, seed int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.RandomTree(int(n), seed) }
	case "grid":
		var rows, cols, maxw, seed int64
		if rows, err = get("rows", 100); err != nil {
			return fail(err)
		}
		if cols, err = get("cols", 100); err != nil {
			return fail(err)
		}
		if maxw, err = get("maxw", 100); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.Grid(int(rows), int(cols), int32(maxw), seed) }
	case "digraph":
		var n, m, seed int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		if m, err = get("m", 4000); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.RandomDigraph(int(n), int(m), seed) }
	case "forest":
		var n, k, seed int64
		if n, err = get("n", 1000); err != nil {
			return fail(err)
		}
		if k, err = get("k", 4); err != nil {
			return fail(err)
		}
		if seed, err = get("seed", 1); err != nil {
			return fail(err)
		}
		gen = func() *graph.Graph { return graph.Forest(int(n), int(k), seed) }
	default:
		return nil, fmt.Errorf("catalog: unknown generator kind %q", kind)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("catalog: generator %q: unknown keys %v", expr, keys)
	}
	return gen, nil
}

// Generate evaluates a generator expression.
func Generate(expr string) (*graph.Graph, error) {
	gen, err := ParseGen(expr)
	if err != nil {
		return nil, err
	}
	return gen(), nil
}
