// Package partition assigns vertices to workers. The paper evaluates two
// placements: the default hash placement and a METIS locality placement
// (the "(P)" datasets). We provide a hash partitioner and a greedy
// BFS-based locality partitioner that stands in for METIS: what the
// propagation-channel and Blogel experiments need is only "a partition
// whose edge-cut is much smaller than hash placement", which the greedy
// partitioner delivers (see DESIGN.md §2).
package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Placement names accepted by ByName (and by the catalog spec and the
// /v1 job API).
const (
	PlacementHash   = "hash"
	PlacementGreedy = "greedy"
)

// MaxWorkers is the largest representable worker count: owner vectors
// store worker ids as uint16. Greedy additionally reserves the top value
// as its unassigned sentinel, so it accepts at most MaxWorkers-1.
const MaxWorkers = 1<<16 - 1

// checkWorkers validates a worker count against the uint16 owner
// representation. Silent overflow here used to corrupt owner vectors
// (worker 65536 wrapped to 0); now it is an error at construction.
func checkWorkers(numWorkers, max int) error {
	if numWorkers < 1 || numWorkers > max {
		return fmt.Errorf("partition: numWorkers=%d out of range 1..%d", numWorkers, max)
	}
	return nil
}

// Partition maps every vertex to a worker and a dense per-worker local
// index, and back. All engines in this reproduction share it.
type Partition struct {
	numWorkers int
	owner      []uint16           // vertex -> worker
	local      []uint32           // vertex -> local index on its worker
	globals    [][]graph.VertexID // worker -> local index -> vertex
}

// NumWorkers returns the number of workers.
func (p *Partition) NumWorkers() int { return p.numWorkers }

// NumVertices returns the total vertex count.
func (p *Partition) NumVertices() int { return len(p.owner) }

// Owner returns the worker that owns vertex v.
func (p *Partition) Owner(v graph.VertexID) int { return int(p.owner[v]) }

// LocalIndex returns v's dense index on its owning worker.
func (p *Partition) LocalIndex(v graph.VertexID) int { return int(p.local[v]) }

// LocalCount returns the number of vertices on worker w.
func (p *Partition) LocalCount(w int) int { return len(p.globals[w]) }

// GlobalID returns the vertex at local index i on worker w.
func (p *Partition) GlobalID(w, i int) graph.VertexID { return p.globals[w][i] }

// Locals returns worker w's vertex list (do not modify).
func (p *Partition) Locals(w int) []graph.VertexID { return p.globals[w] }

// Owners returns the raw owner vector (do not modify). Snapshots embed
// it so a daemon restart skips re-partitioning.
func (p *Partition) Owners() []uint16 { return p.owner }

// fromOwner builds the index structures from a validated owner vector.
func fromOwner(numWorkers int, owner []uint16) *Partition {
	p := &Partition{
		numWorkers: numWorkers,
		owner:      owner,
		local:      make([]uint32, len(owner)),
		globals:    make([][]graph.VertexID, numWorkers),
	}
	for v, w := range owner {
		p.local[v] = uint32(len(p.globals[w]))
		p.globals[w] = append(p.globals[w], graph.VertexID(v))
	}
	return p
}

// FromOwners builds a partition from an explicit owner vector (e.g. one
// embedded in a binary snapshot). Every entry must name a worker in
// [0, numWorkers). The vector is retained; do not modify it afterwards.
func FromOwners(numWorkers int, owner []uint16) (*Partition, error) {
	if err := checkWorkers(numWorkers, MaxWorkers); err != nil {
		return nil, err
	}
	for v, w := range owner {
		if int(w) >= numWorkers {
			return nil, fmt.Errorf("partition: vertex %d assigned to worker %d (numWorkers=%d)", v, w, numWorkers)
		}
	}
	return fromOwner(numWorkers, owner), nil
}

// Hash assigns vertex v to worker v mod numWorkers — the default Pregel
// placement ("vertices are randomly assigned to workers" in §V-B2; with
// generator-assigned dense IDs, modulo is an adequate randomization).
func Hash(numVertices, numWorkers int) (*Partition, error) {
	if err := checkWorkers(numWorkers, MaxWorkers); err != nil {
		return nil, err
	}
	owner := make([]uint16, numVertices)
	for v := range owner {
		owner[v] = uint16(v % numWorkers)
	}
	return fromOwner(numWorkers, owner), nil
}

// MustHash is Hash for callers with a statically valid worker count
// (tests, benchmarks, examples); it panics on error.
func MustHash(numVertices, numWorkers int) *Partition {
	p, err := Hash(numVertices, numWorkers)
	if err != nil {
		panic(err)
	}
	return p
}

// Greedy builds a locality-preserving partition of g into numWorkers
// parts of (near-)equal size using repeated BFS region growing: start a
// BFS from an unassigned vertex, assign visited vertices to the current
// part until it reaches n/numWorkers vertices, then open the next part.
// This is the METIS stand-in for the paper's "(P)" partitioned datasets.
// numWorkers must be below MaxWorkers: the top uint16 value is Greedy's
// unassigned sentinel.
func Greedy(g *graph.Graph, numWorkers int) (*Partition, error) {
	if err := checkWorkers(numWorkers, MaxWorkers-1); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	owner := make([]uint16, n)
	for i := range owner {
		owner[i] = uint16(numWorkers) // sentinel: unassigned
	}
	capacity := (n + numWorkers - 1) / numWorkers
	part, filled := 0, 0
	queue := make([]graph.VertexID, 0, 1024)
	next := 0 // scan pointer for BFS seeds
	assign := func(v graph.VertexID) bool {
		if owner[v] != uint16(numWorkers) {
			return false
		}
		owner[v] = uint16(part)
		filled++
		if filled >= capacity && part < numWorkers-1 {
			part++
			filled = 0
		}
		return true
	}
	for {
		for next < n && owner[next] != uint16(numWorkers) {
			next++
		}
		if next >= n {
			break
		}
		seed := graph.VertexID(next)
		assign(seed)
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if assign(v) {
					queue = append(queue, v)
				}
			}
		}
	}
	return fromOwner(numWorkers, owner), nil
}

// MustGreedy is Greedy with a panic on error.
func MustGreedy(g *graph.Graph, numWorkers int) *Partition {
	p, err := Greedy(g, numWorkers)
	if err != nil {
		panic(err)
	}
	return p
}

// ByName builds the named placement of g: PlacementHash or
// PlacementGreedy ("" defaults to hash).
func ByName(name string, g *graph.Graph, numWorkers int) (*Partition, error) {
	switch name {
	case "", PlacementHash:
		return Hash(g.NumVertices(), numWorkers)
	case PlacementGreedy:
		return Greedy(g, numWorkers)
	}
	return nil, fmt.Errorf("partition: unknown placement %q (want %s or %s)", name, PlacementHash, PlacementGreedy)
}

// EdgeCut returns the fraction of directed edges of g whose endpoints
// are on different workers under p. Used to validate that Greedy yields
// much better locality than Hash, and reported per job by graphd.
func EdgeCut(g *graph.Graph, p *Partition) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	cut := 0
	for u := 0; u < g.NumVertices(); u++ {
		ou := p.Owner(graph.VertexID(u))
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if p.Owner(v) != ou {
				cut++
			}
		}
	}
	return float64(cut) / float64(g.NumEdges())
}
