package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func checkBijection(t *testing.T, p *Partition) {
	t.Helper()
	n := p.NumVertices()
	seen := make([]bool, n)
	total := 0
	for w := 0; w < p.NumWorkers(); w++ {
		total += p.LocalCount(w)
		for li := 0; li < p.LocalCount(w); li++ {
			id := p.GlobalID(w, li)
			if seen[id] {
				t.Fatalf("vertex %d appears twice", id)
			}
			seen[id] = true
			if p.Owner(id) != w {
				t.Fatalf("owner(%d)=%d want %d", id, p.Owner(id), w)
			}
			if p.LocalIndex(id) != li {
				t.Fatalf("local(%d)=%d want %d", id, p.LocalIndex(id), li)
			}
		}
	}
	if total != n {
		t.Fatalf("total locals %d want %d", total, n)
	}
}

func TestHashPartition(t *testing.T) {
	p := MustHash(103, 4)
	if p.NumWorkers() != 4 || p.NumVertices() != 103 {
		t.Fatalf("basic shape wrong")
	}
	checkBijection(t, p)
	// balance within 1
	min, max := 1<<30, 0
	for w := 0; w < 4; w++ {
		c := p.LocalCount(w)
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("imbalance: min=%d max=%d", min, max)
	}
}

func TestGreedyPartition(t *testing.T) {
	g := graph.Grid(20, 20, 5, 1)
	p := MustGreedy(g, 4)
	checkBijection(t, p)
	// near-balanced
	for w := 0; w < 4; w++ {
		c := p.LocalCount(w)
		if c < 80 || c > 120 {
			t.Errorf("worker %d has %d vertices", w, c)
		}
	}
	// locality: greedy cut must be far below hash cut on a grid
	hashCut := EdgeCut(g, MustHash(g.NumVertices(), 4))
	greedyCut := EdgeCut(g, p)
	if greedyCut > hashCut/3 {
		t.Errorf("greedy cut %.3f not much better than hash cut %.3f", greedyCut, hashCut)
	}
}

func TestGreedyCoversDisconnected(t *testing.T) {
	// graph with isolated vertices and several components
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 5, Dst: 6}, {Src: 6, Dst: 5}}
	g := graph.FromEdges(10, edges, false)
	p := MustGreedy(g, 3)
	checkBijection(t, p)
}

func TestSingleWorker(t *testing.T) {
	p := MustHash(10, 1)
	checkBijection(t, p)
	if EdgeCut(graph.Chain(10), p) != 0 {
		t.Errorf("single worker should have zero cut")
	}
}

func TestEdgeCutEmptyGraph(t *testing.T) {
	g := graph.FromEdges(5, nil, false)
	if EdgeCut(g, MustHash(5, 2)) != 0 {
		t.Error("empty graph cut should be 0")
	}
}

func TestHashPartitionProperty(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw)%500 + 1
		w := int(wRaw)%8 + 1
		p := MustHash(n, w)
		for v := 0; v < n; v++ {
			id := graph.VertexID(v)
			if p.GlobalID(p.Owner(id), p.LocalIndex(id)) != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The uint16 owner representation used to overflow silently: worker
// counts past 65535 wrapped and corrupted owner vectors. Construction
// must reject them now.
func TestWorkerCountValidation(t *testing.T) {
	for _, bad := range []int{0, -1, MaxWorkers + 1, 1 << 20} {
		if _, err := Hash(10, bad); err == nil {
			t.Errorf("Hash accepted numWorkers=%d", bad)
		}
		if _, err := Greedy(graph.Chain(10), bad); err == nil {
			t.Errorf("Greedy accepted numWorkers=%d", bad)
		}
		if _, err := FromOwners(bad, make([]uint16, 4)); err == nil {
			t.Errorf("FromOwners accepted numWorkers=%d", bad)
		}
	}
	// Hash accepts the maximum; Greedy reserves it as its sentinel.
	if _, err := Hash(10, MaxWorkers); err != nil {
		t.Errorf("Hash rejected numWorkers=%d: %v", MaxWorkers, err)
	}
	if _, err := Greedy(graph.Chain(10), MaxWorkers); err == nil {
		t.Error("Greedy accepted its sentinel worker count")
	}
	if _, err := Greedy(graph.Chain(10), MaxWorkers-1); err != nil {
		t.Errorf("Greedy rejected numWorkers=%d: %v", MaxWorkers-1, err)
	}
}

func TestFromOwnersValidatesEntries(t *testing.T) {
	if _, err := FromOwners(2, []uint16{0, 1, 2}); err == nil {
		t.Error("FromOwners accepted an owner out of range")
	}
	p, err := FromOwners(3, []uint16{2, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, p)
}

func TestByName(t *testing.T) {
	g := graph.Grid(10, 10, 5, 1)
	for _, name := range []string{"", PlacementHash, PlacementGreedy} {
		if _, err := ByName(name, g, 4); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("metis", g, 4); err == nil {
		t.Error("ByName accepted an unknown placement")
	}
}
