// Package harness runs the paper's experiments (Tables IV-VII) on the
// scaled synthetic datasets and prints rows in the paper's format:
// runtime (simulated distributed seconds) and message volume (MB).
package harness

import (
	"repro/internal/graph"
	"repro/internal/partition"
)

// Scale selects dataset sizes. Test uses tiny graphs for CI; Bench uses
// the default laptop-scale graphs the EXPERIMENTS.md numbers come from.
type Scale int

const (
	// ScaleTest keeps every dataset under ~10k edges.
	ScaleTest Scale = iota
	// ScaleBench is the default reporting scale (~10^5-10^6 edges).
	ScaleBench
)

// Datasets bundles the stand-ins for the paper's Table III.
type Datasets struct {
	// Wikipedia / WebUK stand-ins: directed power-law web graphs, the
	// second denser and larger.
	Wiki  *graph.Graph
	WebUK *graph.Graph
	// Facebook / Twitter stand-ins: undirected social graphs, sparse
	// (avg deg ~3) and dense (avg deg ~24).
	Facebook *graph.Graph
	Twitter  *graph.Graph
	// Chain and random tree (identical constructions to the paper's).
	Chain *graph.Graph
	Tree  *graph.Graph
	// USARoad stand-in: weighted grid; RMAT24 stand-in: weighted
	// power-law graph.
	Road  *graph.Graph
	RMATW *graph.Graph
}

// Load generates all datasets at the given scale (deterministic seeds).
func Load(s Scale) *Datasets {
	switch s {
	case ScaleTest:
		return &Datasets{
			Wiki:     graph.RMAT(9, 6, 101, graph.RMATOptions{NoSelfLoops: true}),
			WebUK:    graph.RMAT(10, 8, 102, graph.RMATOptions{NoSelfLoops: true}),
			Facebook: graph.SocialRMAT(9, 2, 103),
			Twitter:  graph.SocialRMAT(8, 12, 104),
			Chain:    graph.Chain(2000),
			Tree:     graph.RandomTree(2000, 105),
			Road:     graph.Grid(40, 40, 1000, 106),
			RMATW:    graph.Undirectify(graph.RMAT(8, 8, 107, graph.RMATOptions{Weighted: true, MaxWeight: 1000, NoSelfLoops: true})),
		}
	default:
		return &Datasets{
			Wiki:     graph.RMAT(14, 10, 101, graph.RMATOptions{NoSelfLoops: true}),
			WebUK:    graph.RMAT(15, 16, 102, graph.RMATOptions{NoSelfLoops: true}),
			Facebook: graph.SocialRMAT(14, 2, 103),
			Twitter:  graph.SocialRMAT(12, 24, 104),
			Chain:    graph.Chain(200_000),
			Tree:     graph.RandomTree(200_000, 105),
			Road:     graph.Grid(300, 300, 1000, 106),
			RMATW:    graph.Undirectify(graph.RMAT(13, 8, 107, graph.RMATOptions{Weighted: true, MaxWeight: 1000, NoSelfLoops: true})),
		}
	}
}

// Workers is the simulated cluster size; the paper uses 8 nodes (4
// vCPUs each). We use 8 workers.
const Workers = 8

// HashPart returns the default hash partition for g.
func HashPart(g *graph.Graph) *partition.Partition {
	return partition.MustHash(g.NumVertices(), Workers)
}

// GreedyPart returns the locality partition (METIS stand-in) for g —
// the paper's "(P)" datasets.
func GreedyPart(g *graph.Graph) *partition.Partition {
	return partition.MustGreedy(g, Workers)
}
