package harness

import (
	"bytes"
	"strings"
	"testing"
)

// The harness tests run every table at test scale: this is the
// end-to-end integration test of the whole reproduction pipeline.

func TestTable4RunsAndOrdersCorrectly(t *testing.T) {
	d := Load(ScaleTest)
	rows := Table4(d)
	if len(rows) != 24 {
		t.Fatalf("rows=%d want 24", len(rows))
	}
	// every pregel/channel pair: channel must not use more network bytes
	// for the message-heavy algorithms (SV, MSF, SCC per §V-A)
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Program+"/"+r.Dataset] = r
	}
	for _, alg := range []string{"SV", "MSF", "SCC"} {
		for _, r := range rows {
			if !strings.HasPrefix(r.Program, alg+"-pregel") {
				continue
			}
			ch, ok := byKey[alg+"-channel/"+r.Dataset]
			if !ok {
				t.Fatalf("missing channel row for %s/%s", alg, r.Dataset)
			}
			if ch.NetBytes >= r.NetBytes {
				t.Errorf("%s/%s: channel bytes %d >= pregel bytes %d",
					alg, r.Dataset, ch.NetBytes, r.NetBytes)
			}
		}
	}
}

func TestTable5Sections(t *testing.T) {
	d := Load(ScaleTest)

	sc := Table5ScatterCombine(d)
	if len(sc) != 8 {
		t.Fatalf("scatter rows=%d", len(sc))
	}
	// ghost mode must reduce bytes vs pregel basic on power-law graphs
	for i := 0; i+3 < len(sc); i += 4 {
		basic, ghost := sc[i], sc[i+1]
		if ghost.NetBytes >= basic.NetBytes {
			t.Errorf("%s: ghost bytes %d >= basic %d", basic.Dataset, ghost.NetBytes, basic.NetBytes)
		}
	}

	rr := Table5RequestRespond(d)
	if len(rr) != 8 {
		t.Fatalf("reqresp rows=%d", len(rr))
	}
	for i := 0; i+3 < len(rr); i += 4 {
		basic, chanRR := rr[i], rr[i+3]
		// the channel reqresp halves supersteps vs the 2-step protocol
		if chanRR.Supersteps >= basic.Supersteps {
			t.Errorf("%s: reqresp supersteps %d >= basic %d", basic.Dataset, chanRR.Supersteps, basic.Supersteps)
		}
		// and reduces message volume (dedup + bare-value replies)
		if chanRR.NetBytes >= basic.NetBytes {
			t.Errorf("%s: reqresp bytes %d >= basic %d", basic.Dataset, chanRR.NetBytes, basic.NetBytes)
		}
	}

	prop := Table5Propagation(d)
	if len(prop) != 8 {
		t.Fatalf("prop rows=%d", len(prop))
	}
	for i := 0; i+3 < len(prop); i += 4 {
		basic, p := prop[i], prop[i+3]
		if p.Supersteps >= basic.Supersteps {
			t.Errorf("%s: propagation supersteps %d >= basic %d", basic.Dataset, p.Supersteps, basic.Supersteps)
		}
	}
}

func TestTable6Composition(t *testing.T) {
	d := Load(ScaleTest)
	rows := Table6(d)
	if len(rows) != 10 {
		t.Fatalf("rows=%d", len(rows))
	}
	// program 5 (both) must use the least network volume of the channel
	// variants on both graphs (the composition payoff)
	for i := 0; i+4 < len(rows); i += 5 {
		basic, both := rows[i+1], rows[i+4]
		if both.NetBytes >= basic.NetBytes {
			t.Errorf("%s: composed bytes %d >= basic %d", basic.Dataset, both.NetBytes, basic.NetBytes)
		}
	}
}

func TestTable7(t *testing.T) {
	d := Load(ScaleTest)
	rows := Table7(d)
	if len(rows) != 6 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 0; i+2 < len(rows); i += 3 {
		pregelB, chanB, chanP := rows[i], rows[i+1], rows[i+2]
		if chanB.NetBytes >= pregelB.NetBytes {
			t.Errorf("%s: channel bytes %d >= pregel %d", pregelB.Dataset, chanB.NetBytes, pregelB.NetBytes)
		}
		if chanP.Supersteps >= chanB.Supersteps {
			t.Errorf("%s: prop supersteps %d >= basic %d", pregelB.Dataset, chanP.Supersteps, chanB.Supersteps)
		}
	}
}

func TestPrintTable(t *testing.T) {
	var buf bytes.Buffer
	PrintTable(&buf, "Demo", []Row{{Program: "p", Dataset: "d", NetBytes: 2_000_000, Supersteps: 3}})
	out := buf.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "2.00") {
		t.Errorf("output: %s", out)
	}
}

func TestDatasetsShapes(t *testing.T) {
	d := Load(ScaleTest)
	if !d.Facebook.Undirected || !d.Twitter.Undirected {
		t.Error("social graphs must be undirected")
	}
	if d.Twitter.AvgDegree() <= 2*d.Facebook.AvgDegree() {
		t.Errorf("twitter density %.1f not well above facebook %.1f",
			d.Twitter.AvgDegree(), d.Facebook.AvgDegree())
	}
	if !d.Road.Weighted() || !d.RMATW.Weighted() {
		t.Error("MSF datasets must be weighted")
	}
	if d.Chain.NumEdges() != d.Chain.NumVertices()-1 {
		t.Error("chain malformed")
	}
}
