package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Row is one line of a result table: program name, dataset name,
// simulated runtime, network message volume, supersteps.
type Row struct {
	Program    string
	Dataset    string
	SimTime    time.Duration
	WallTime   time.Duration
	NetBytes   int64
	Supersteps int
}

// MB returns the network volume in megabytes.
func (r Row) MB() float64 { return float64(r.NetBytes) / 1e6 }

// Seconds returns the simulated distributed runtime in seconds.
func (r Row) Seconds() float64 { return r.SimTime.Seconds() }

// PrintTable renders rows grouped as given, in the paper's
// runtime/message format.
func PrintTable(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-28s %-14s %12s %12s %11s %6s\n", "program", "dataset", "runtime(s)", "wall(s)", "msg(MB)", "steps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-14s %12.3f %12.3f %11.2f %6d\n",
			r.Program, r.Dataset, r.Seconds(), r.WallTime.Seconds(), r.MB(), r.Supersteps)
	}
}

// opts builds algorithm options with a generous superstep cap.
func opts(w workload) algorithms.Options {
	return algorithms.Options{Part: w.p, Frags: w.frags, MaxSupersteps: 200000}
}

const prIterations = 30 // the paper's PageRank runs 30 supersteps

// variantRow names one table row: display label plus the registry
// coordinates (engine, variant) it dispatches to.
type variantRow struct {
	program string
	eng     algorithms.Engine
	variant string
}

// basicPair is the pregel-basic / channel-basic comparison every
// Table IV group runs.
func basicPair(prefix string) []variantRow {
	return []variantRow{
		{prefix + "-pregel", algorithms.EnginePregel, "basic"},
		{prefix + "-channel", algorithms.EngineChannel, "basic"},
	}
}

// workload is one (algorithm, dataset) cell of a table. Fragments are
// pre-resolved once per (graph, placement) pair and shared by every
// variant row of the cell, so the tables measure superstep time on the
// shared-nothing fragments, not fragment construction.
type workload struct {
	alg     string
	dataset string
	g       *graph.Graph
	p       *partition.Partition
	frags   *frag.Fragments
	params  algorithms.Params
}

// wl builds one workload, pre-resolving its fragments.
func wl(alg, dataset string, g *graph.Graph, p *partition.Partition, params algorithms.Params) workload {
	return workload{alg: alg, dataset: dataset, g: g, p: p, frags: frag.Build(g, p), params: params}
}

// run dispatches one workload/variant pair through the shared registry
// (the same path graphd jobs take) and renders the metrics as a Row.
func run(w workload, v variantRow) Row {
	spec, ok := algorithms.Lookup(w.alg)
	if !ok {
		panic(fmt.Sprintf("harness: unknown algorithm %q", w.alg))
	}
	res, err := spec.Run(v.eng, v.variant, w.g, opts(w), w.params)
	if err != nil {
		panic(fmt.Sprintf("harness: %s %s/%s on %s failed: %v", w.alg, v.eng, v.variant, w.dataset, err))
	}
	m := res.Metrics
	return Row{Program: v.program, Dataset: w.dataset, SimTime: m.SimTime,
		WallTime: m.WallTime, NetBytes: m.NetBytes, Supersteps: m.Supersteps}
}

// runAll runs every variant row of every workload, in order.
func runAll(ws []workload, vs []variantRow) []Row {
	rows := make([]Row, 0, len(ws)*len(vs))
	for _, w := range ws {
		for _, v := range vs {
			rows = append(rows, run(w, v))
		}
	}
	return rows
}

// Table4 reproduces Table IV: basic implementations in the baseline
// engine vs the channel engine for all six algorithms.
func Table4(d *Datasets) []Row {
	und := graph.Undirectify(d.Wiki)
	pr := algorithms.Params{Iterations: prIterations}
	groups := []struct {
		prefix string
		ws     []workload
	}{
		{"PR", []workload{
			wl("pagerank", "WebUK", d.WebUK, HashPart(d.WebUK), pr),
			wl("pagerank", "Wikipedia", d.Wiki, HashPart(d.Wiki), pr),
		}},
		{"WCC", []workload{
			wl("wcc", "Wikipedia", und, HashPart(und), algorithms.Params{}),
			wl("wcc", "Wikipedia(P)", und, GreedyPart(und), algorithms.Params{}),
		}},
		{"PJ", []workload{
			wl("pointerjump", "Chain", d.Chain, HashPart(d.Chain), algorithms.Params{}),
			wl("pointerjump", "Tree", d.Tree, HashPart(d.Tree), algorithms.Params{}),
		}},
		{"SV", []workload{
			wl("sv", "Facebook", d.Facebook, HashPart(d.Facebook), algorithms.Params{}),
			wl("sv", "Twitter", d.Twitter, HashPart(d.Twitter), algorithms.Params{}),
		}},
		{"MSF", []workload{
			wl("msf", "USARoad", d.Road, HashPart(d.Road), algorithms.Params{}),
			wl("msf", "RMAT-W", d.RMATW, HashPart(d.RMATW), algorithms.Params{}),
		}},
		{"SCC", []workload{
			wl("scc", "Wikipedia", d.Wiki, HashPart(d.Wiki), algorithms.Params{}),
			wl("scc", "Wikipedia(P)", d.Wiki, GreedyPart(d.Wiki), algorithms.Params{}),
		}},
	}
	var rows []Row
	for _, grp := range groups {
		for _, w := range grp.ws {
			for _, v := range basicPair(grp.prefix) {
				rows = append(rows, run(w, v))
			}
		}
	}
	return rows
}

// Table5ScatterCombine reproduces the top of Table V: PageRank with
// pregel basic / pregel ghost / channel basic / scatter-combine.
func Table5ScatterCombine(d *Datasets) []Row {
	pr := algorithms.Params{Iterations: prIterations}
	ws := []workload{
		wl("pagerank", "Wikipedia", d.Wiki, HashPart(d.Wiki), pr),
		wl("pagerank", "WebUK", d.WebUK, HashPart(d.WebUK), pr),
	}
	return runAll(ws, []variantRow{
		{"pregel(basic)", algorithms.EnginePregel, "basic"},
		{"pregel(ghost)", algorithms.EnginePregel, "ghost"},
		{"channel(basic)", algorithms.EngineChannel, "basic"},
		{"channel(scatter)", algorithms.EngineChannel, "scatter"},
	})
}

// Table5RequestRespond reproduces the middle of Table V: pointer
// jumping with pregel basic / pregel reqresp / channel basic / channel
// reqresp.
func Table5RequestRespond(d *Datasets) []Row {
	ws := []workload{
		wl("pointerjump", "Tree", d.Tree, HashPart(d.Tree), algorithms.Params{}),
		wl("pointerjump", "Chain", d.Chain, HashPart(d.Chain), algorithms.Params{}),
	}
	return runAll(ws, []variantRow{
		{"pregel(basic)", algorithms.EnginePregel, "basic"},
		{"pregel(reqresp)", algorithms.EnginePregel, "reqresp"},
		{"channel(basic)", algorithms.EngineChannel, "basic"},
		{"channel(reqresp)", algorithms.EngineChannel, "reqresp"},
	})
}

// Table5Propagation reproduces the bottom of Table V: WCC with pregel
// basic / blogel / channel basic / propagation, on the hash-partitioned
// and locality-partitioned graph.
func Table5Propagation(d *Datasets) []Row {
	und := graph.Undirectify(d.Wiki)
	ws := []workload{
		wl("wcc", "Wikipedia", und, HashPart(und), algorithms.Params{}),
		wl("wcc", "Wikipedia(P)", und, GreedyPart(und), algorithms.Params{}),
	}
	return runAll(ws, []variantRow{
		{"pregel(basic)", algorithms.EnginePregel, "basic"},
		{"blogel", algorithms.EngineChannel, "blogel"},
		{"channel(basic)", algorithms.EngineChannel, "basic"},
		{"channel(prop.)", algorithms.EngineChannel, "propagation"},
	})
}

// Table6 reproduces Table VI: the five S-V programs on the sparse and
// dense social graphs.
func Table6(d *Datasets) []Row {
	ws := []workload{
		wl("sv", "Facebook", d.Facebook, HashPart(d.Facebook), algorithms.Params{}),
		wl("sv", "Twitter", d.Twitter, HashPart(d.Twitter), algorithms.Params{}),
	}
	return runAll(ws, []variantRow{
		{"1-pregel(reqresp)", algorithms.EnginePregel, "reqresp"},
		{"2-channel(basic)", algorithms.EngineChannel, "basic"},
		{"3-channel(reqresp)", algorithms.EngineChannel, "reqresp"},
		{"4-channel(scatter)", algorithms.EngineChannel, "scatter"},
		{"5-channel(both)", algorithms.EngineChannel, "both"},
	})
}

// Table7 reproduces Table VII: Min-Label SCC with pregel basic /
// channel basic / channel propagation on the hash and locality
// partitions.
func Table7(d *Datasets) []Row {
	ws := []workload{
		wl("scc", "Wikipedia", d.Wiki, HashPart(d.Wiki), algorithms.Params{}),
		wl("scc", "Wikipedia(P)", d.Wiki, GreedyPart(d.Wiki), algorithms.Params{}),
	}
	return runAll(ws, []variantRow{
		{"1-pregel(basic)", algorithms.EnginePregel, "basic"},
		{"2-channel(basic)", algorithms.EngineChannel, "basic"},
		{"3-channel(prop.)", algorithms.EngineChannel, "propagation"},
	})
}

// CostModelDefault is the paper's cluster model (750 Mbps, 1 ms round
// latency); kept for documentation — engines use it via zero values.
var CostModelDefault = comm.CostModel{}
