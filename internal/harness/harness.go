package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pregel"
)

// Row is one line of a result table: program name, dataset name,
// simulated runtime, network message volume, supersteps.
type Row struct {
	Program    string
	Dataset    string
	SimTime    time.Duration
	WallTime   time.Duration
	NetBytes   int64
	Supersteps int
}

// MB returns the network volume in megabytes.
func (r Row) MB() float64 { return float64(r.NetBytes) / 1e6 }

// Seconds returns the simulated distributed runtime in seconds.
func (r Row) Seconds() float64 { return r.SimTime.Seconds() }

func rowFromChannel(program, dataset string, m engine.Metrics) Row {
	return Row{Program: program, Dataset: dataset, SimTime: m.SimTime(),
		WallTime: m.WallTime, NetBytes: m.Comm.NetworkBytes, Supersteps: m.Supersteps}
}

func rowFromPregel(program, dataset string, m pregel.Metrics) Row {
	return Row{Program: program, Dataset: dataset, SimTime: m.SimTime(),
		WallTime: m.WallTime, NetBytes: m.Comm.NetworkBytes, Supersteps: m.Supersteps}
}

// PrintTable renders rows grouped as given, in the paper's
// runtime/message format.
func PrintTable(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-28s %-14s %12s %12s %11s %6s\n", "program", "dataset", "runtime(s)", "wall(s)", "msg(MB)", "steps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-14s %12.3f %12.3f %11.2f %6d\n",
			r.Program, r.Dataset, r.Seconds(), r.WallTime.Seconds(), r.MB(), r.Supersteps)
	}
}

// opts builds algorithm options with a generous superstep cap.
func opts(p *partition.Partition) algorithms.Options {
	return algorithms.Options{Part: p, MaxSupersteps: 200000}
}

const prIterations = 30 // the paper's PageRank runs 30 supersteps

func mustC(m engine.Metrics, err error) engine.Metrics {
	if err != nil {
		panic(fmt.Sprintf("harness: channel run failed: %v", err))
	}
	return m
}

func mustP(m pregel.Metrics, err error) pregel.Metrics {
	if err != nil {
		panic(fmt.Sprintf("harness: pregel run failed: %v", err))
	}
	return m
}

// Table4 reproduces Table IV: basic implementations in the baseline
// engine vs the channel engine for all six algorithms.
func Table4(d *Datasets) []Row {
	var rows []Row
	add := func(r Row) { rows = append(rows, r) }

	// PR on the two web graphs
	for _, t := range []struct {
		name string
		g    *graph.Graph
	}{{"WebUK", d.WebUK}, {"Wikipedia", d.Wiki}} {
		p := HashPart(t.g)
		_, mp, err := algorithms.PageRankPregel(t.g, opts(p), prIterations)
		add(rowFromPregel("PR-pregel", t.name, mustP(mp, err)))
		_, mc, err := algorithms.PageRankChannel(t.g, opts(p), prIterations)
		add(rowFromChannel("PR-channel", t.name, mustC(mc, err)))
	}

	// WCC on wiki (hash) and wiki (partitioned)
	und := graph.Undirectify(d.Wiki)
	for _, t := range []struct {
		name string
		p    *partition.Partition
	}{{"Wikipedia", HashPart(und)}, {"Wikipedia(P)", GreedyPart(und)}} {
		_, mp, err := algorithms.WCCPregel(und, opts(t.p))
		add(rowFromPregel("WCC-pregel", t.name, mustP(mp, err)))
		_, mc, err := algorithms.WCCChannel(und, opts(t.p))
		add(rowFromChannel("WCC-channel", t.name, mustC(mc, err)))
	}

	// PJ on chain and tree
	for _, t := range []struct {
		name string
		g    *graph.Graph
	}{{"Chain", d.Chain}, {"Tree", d.Tree}} {
		p := HashPart(t.g)
		_, mp, err := algorithms.PointerJumpPregel(t.g, opts(p))
		add(rowFromPregel("PJ-pregel", t.name, mustP(mp, err)))
		_, mc, err := algorithms.PointerJumpChannel(t.g, opts(p))
		add(rowFromChannel("PJ-channel", t.name, mustC(mc, err)))
	}

	// S-V on facebook and twitter
	for _, t := range []struct {
		name string
		g    *graph.Graph
	}{{"Facebook", d.Facebook}, {"Twitter", d.Twitter}} {
		p := HashPart(t.g)
		_, mp, err := algorithms.SVPregel(t.g, opts(p))
		add(rowFromPregel("SV-pregel", t.name, mustP(mp, err)))
		_, mc, err := algorithms.SVChannel(t.g, opts(p))
		add(rowFromChannel("SV-channel", t.name, mustC(mc, err)))
	}

	// MSF on road and weighted rmat
	for _, t := range []struct {
		name string
		g    *graph.Graph
	}{{"USARoad", d.Road}, {"RMAT-W", d.RMATW}} {
		p := HashPart(t.g)
		_, mp, err := algorithms.MSFPregel(t.g, opts(p))
		add(rowFromPregel("MSF-pregel", t.name, mustP(mp, err)))
		_, mc, err := algorithms.MSFChannel(t.g, opts(p))
		add(rowFromChannel("MSF-channel", t.name, mustC(mc, err)))
	}

	// SCC on wiki (hash and partitioned)
	for _, t := range []struct {
		name string
		p    *partition.Partition
	}{{"Wikipedia", HashPart(d.Wiki)}, {"Wikipedia(P)", GreedyPart(d.Wiki)}} {
		_, mp, err := algorithms.SCCPregel(d.Wiki, opts(t.p))
		add(rowFromPregel("SCC-pregel", t.name, mustP(mp, err)))
		_, mc, err := algorithms.SCCChannel(d.Wiki, opts(t.p))
		add(rowFromChannel("SCC-channel", t.name, mustC(mc, err)))
	}
	return rows
}

// Table5ScatterCombine reproduces the top of Table V: PageRank with
// pregel basic / pregel ghost / channel basic / scatter-combine.
func Table5ScatterCombine(d *Datasets) []Row {
	var rows []Row
	for _, t := range []struct {
		name string
		g    *graph.Graph
	}{{"Wikipedia", d.Wiki}, {"WebUK", d.WebUK}} {
		p := HashPart(t.g)
		_, m1, err := algorithms.PageRankPregel(t.g, opts(p), prIterations)
		rows = append(rows, rowFromPregel("pregel(basic)", t.name, mustP(m1, err)))
		_, m2, err := algorithms.PageRankPregelGhost(t.g, opts(p), prIterations)
		rows = append(rows, rowFromPregel("pregel(ghost)", t.name, mustP(m2, err)))
		_, m3, err := algorithms.PageRankChannel(t.g, opts(p), prIterations)
		rows = append(rows, rowFromChannel("channel(basic)", t.name, mustC(m3, err)))
		_, m4, err := algorithms.PageRankScatter(t.g, opts(p), prIterations)
		rows = append(rows, rowFromChannel("channel(scatter)", t.name, mustC(m4, err)))
	}
	return rows
}

// Table5RequestRespond reproduces the middle of Table V: pointer
// jumping with pregel basic / pregel reqresp / channel basic / channel
// reqresp.
func Table5RequestRespond(d *Datasets) []Row {
	var rows []Row
	for _, t := range []struct {
		name string
		g    *graph.Graph
	}{{"Tree", d.Tree}, {"Chain", d.Chain}} {
		p := HashPart(t.g)
		_, m1, err := algorithms.PointerJumpPregel(t.g, opts(p))
		rows = append(rows, rowFromPregel("pregel(basic)", t.name, mustP(m1, err)))
		_, m2, err := algorithms.PointerJumpPregelReqResp(t.g, opts(p))
		rows = append(rows, rowFromPregel("pregel(reqresp)", t.name, mustP(m2, err)))
		_, m3, err := algorithms.PointerJumpChannel(t.g, opts(p))
		rows = append(rows, rowFromChannel("channel(basic)", t.name, mustC(m3, err)))
		_, m4, err := algorithms.PointerJumpReqResp(t.g, opts(p))
		rows = append(rows, rowFromChannel("channel(reqresp)", t.name, mustC(m4, err)))
	}
	return rows
}

// Table5Propagation reproduces the bottom of Table V: WCC with pregel
// basic / blogel / channel basic / propagation, on the hash-partitioned
// and locality-partitioned graph.
func Table5Propagation(d *Datasets) []Row {
	und := graph.Undirectify(d.Wiki)
	var rows []Row
	for _, t := range []struct {
		name string
		p    *partition.Partition
	}{{"Wikipedia", HashPart(und)}, {"Wikipedia(P)", GreedyPart(und)}} {
		_, m1, err := algorithms.WCCPregel(und, opts(t.p))
		rows = append(rows, rowFromPregel("pregel(basic)", t.name, mustP(m1, err)))
		_, m2, err := algorithms.WCCBlogel(und, opts(t.p))
		rows = append(rows, rowFromChannel("blogel", t.name, mustC(m2, err)))
		_, m3, err := algorithms.WCCChannel(und, opts(t.p))
		rows = append(rows, rowFromChannel("channel(basic)", t.name, mustC(m3, err)))
		_, m4, err := algorithms.WCCPropagation(und, opts(t.p))
		rows = append(rows, rowFromChannel("channel(prop.)", t.name, mustC(m4, err)))
	}
	return rows
}

// Table6 reproduces Table VI: the five S-V programs on the sparse and
// dense social graphs.
func Table6(d *Datasets) []Row {
	var rows []Row
	for _, t := range []struct {
		name string
		g    *graph.Graph
	}{{"Facebook", d.Facebook}, {"Twitter", d.Twitter}} {
		p := HashPart(t.g)
		_, m1, err := algorithms.SVPregelReqResp(t.g, opts(p))
		rows = append(rows, rowFromPregel("1-pregel(reqresp)", t.name, mustP(m1, err)))
		_, m2, err := algorithms.SVChannel(t.g, opts(p))
		rows = append(rows, rowFromChannel("2-channel(basic)", t.name, mustC(m2, err)))
		_, m3, err := algorithms.SVReqResp(t.g, opts(p))
		rows = append(rows, rowFromChannel("3-channel(reqresp)", t.name, mustC(m3, err)))
		_, m4, err := algorithms.SVScatter(t.g, opts(p))
		rows = append(rows, rowFromChannel("4-channel(scatter)", t.name, mustC(m4, err)))
		_, m5, err := algorithms.SVBoth(t.g, opts(p))
		rows = append(rows, rowFromChannel("5-channel(both)", t.name, mustC(m5, err)))
	}
	return rows
}

// Table7 reproduces Table VII: Min-Label SCC with pregel basic /
// channel basic / channel propagation on the hash and locality
// partitions.
func Table7(d *Datasets) []Row {
	var rows []Row
	for _, t := range []struct {
		name string
		p    *partition.Partition
	}{{"Wikipedia", HashPart(d.Wiki)}, {"Wikipedia(P)", GreedyPart(d.Wiki)}} {
		_, m1, err := algorithms.SCCPregel(d.Wiki, opts(t.p))
		rows = append(rows, rowFromPregel("1-pregel(basic)", t.name, mustP(m1, err)))
		_, m2, err := algorithms.SCCChannel(d.Wiki, opts(t.p))
		rows = append(rows, rowFromChannel("2-channel(basic)", t.name, mustC(m2, err)))
		_, m3, err := algorithms.SCCPropagation(d.Wiki, opts(t.p))
		rows = append(rows, rowFromChannel("3-channel(prop.)", t.name, mustC(m3, err)))
	}
	return rows
}

// CostModelDefault is the paper's cluster model (750 Mbps, 1 ms round
// latency); kept for documentation — engines use it via zero values.
var CostModelDefault = comm.CostModel{}
