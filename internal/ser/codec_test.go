package ser

import (
	"testing"
	"testing/quick"
)

func roundtrip[T comparable](t *testing.T, c Codec[T], v T) {
	t.Helper()
	b := NewBuffer(0)
	c.Encode(b, v)
	if got := c.Decode(b); got != v {
		t.Errorf("roundtrip %T: got %v want %v", c, got, v)
	}
	if b.Remaining() != 0 {
		t.Errorf("%T decode did not consume encoding of %v", c, v)
	}
}

func TestBuiltinCodecs(t *testing.T) {
	roundtrip[uint32](t, Uint32Codec{}, 0)
	roundtrip[uint32](t, Uint32Codec{}, 0xFFFFFFFF)
	roundtrip[uint64](t, Uint64Codec{}, 1<<63)
	roundtrip[int64](t, Int64Codec{}, -12345)
	roundtrip[float64](t, Float64Codec{}, 2.5)
	roundtrip[float32](t, Float32Codec{}, -0.25)
	roundtrip[bool](t, BoolCodec{}, true)
	roundtrip[bool](t, BoolCodec{}, false)
}

func TestPairCodec(t *testing.T) {
	c := PairCodec[uint32, float64]{A: Uint32Codec{}, B: Float64Codec{}}
	roundtrip[Pair[uint32, float64]](t, c, Pair[uint32, float64]{First: 9, Second: 1.5})
}

func TestFuncCodec(t *testing.T) {
	c := FuncCodec[int]{
		Enc: func(b *Buffer, v int) { b.WriteVarint(int64(v)) },
		Dec: func(b *Buffer) int { return int(b.ReadVarint()) },
	}
	roundtrip[int](t, c, -42)
}

func TestSizeOf(t *testing.T) {
	if got := SizeOf[uint32](Uint32Codec{}, 7); got != 4 {
		t.Errorf("SizeOf uint32 = %d", got)
	}
	if got := SizeOf[float64](Float64Codec{}, 1); got != 8 {
		t.Errorf("SizeOf float64 = %d", got)
	}
}

func TestCodecProperties(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		b := NewBuffer(0)
		Uint32Codec{}.Encode(b, v)
		return Uint32Codec{}.Decode(b) == v && b.Remaining() == 0
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(v int64) bool {
		b := NewBuffer(0)
		Int64Codec{}.Encode(b, v)
		return Int64Codec{}.Decode(b) == v && b.Remaining() == 0
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(a uint32, x float64) bool {
		c := PairCodec[uint32, float64]{A: Uint32Codec{}, B: Float64Codec{}}
		b := NewBuffer(0)
		c.Encode(b, Pair[uint32, float64]{First: a, Second: x})
		got := c.Decode(b)
		return got.First == a && (got.Second == x || x != x) && b.Remaining() == 0
	}, nil); err != nil {
		t.Error(err)
	}
}
