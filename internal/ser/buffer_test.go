package ser

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBufferRoundtripFixed(t *testing.T) {
	b := NewBuffer(16)
	b.WriteUint8(7)
	b.WriteUint32(0xDEADBEEF)
	b.WriteUint64(1 << 60)
	b.WriteFloat64(3.25)
	b.WriteFloat32(-1.5)
	b.WriteBool(true)
	b.WriteBool(false)
	if got := b.ReadUint8(); got != 7 {
		t.Errorf("uint8: got %d", got)
	}
	if got := b.ReadUint32(); got != 0xDEADBEEF {
		t.Errorf("uint32: got %x", got)
	}
	if got := b.ReadUint64(); got != 1<<60 {
		t.Errorf("uint64: got %d", got)
	}
	if got := b.ReadFloat64(); got != 3.25 {
		t.Errorf("float64: got %v", got)
	}
	if got := b.ReadFloat32(); got != -1.5 {
		t.Errorf("float32: got %v", got)
	}
	if got := b.ReadBool(); !got {
		t.Errorf("bool: got %v", got)
	}
	if got := b.ReadBool(); got {
		t.Errorf("bool: got %v", got)
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining: %d", b.Remaining())
	}
}

func TestBufferVarints(t *testing.T) {
	cases := []int64{0, 1, -1, 127, -128, 1 << 20, -(1 << 40), math.MaxInt64, math.MinInt64}
	b := NewBuffer(64)
	for _, v := range cases {
		b.WriteVarint(v)
	}
	for _, want := range cases {
		if got := b.ReadVarint(); got != want {
			t.Errorf("varint: got %d want %d", got, want)
		}
	}
	ucases := []uint64{0, 1, 127, 128, 1 << 35, math.MaxUint64}
	b.Reset()
	for _, v := range ucases {
		b.WriteUvarint(v)
	}
	for _, want := range ucases {
		if got := b.ReadUvarint(); got != want {
			t.Errorf("uvarint: got %d want %d", got, want)
		}
	}
}

func TestBufferBytesAndString(t *testing.T) {
	b := NewBuffer(0)
	b.WriteBytes([]byte{1, 2, 3})
	b.WriteString("hello")
	b.WriteBytes(nil)
	if got := b.ReadBytes(); len(got) != 3 || got[2] != 3 {
		t.Errorf("bytes: got %v", got)
	}
	if got := b.ReadString(); got != "hello" {
		t.Errorf("string: got %q", got)
	}
	if got := b.ReadBytes(); len(got) != 0 {
		t.Errorf("empty bytes: got %v", got)
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(8)
	b.WriteUint32(5)
	_ = b.ReadUint32()
	b.Reset()
	if b.Len() != 0 || b.Remaining() != 0 {
		t.Errorf("reset: len=%d rem=%d", b.Len(), b.Remaining())
	}
	b.WriteUint32(9)
	if got := b.ReadUint32(); got != 9 {
		t.Errorf("after reset: got %d", got)
	}
}

func TestBufferRewind(t *testing.T) {
	b := NewBuffer(8)
	b.WriteUint32(42)
	if got := b.ReadUint32(); got != 42 {
		t.Fatalf("got %d", got)
	}
	b.Rewind()
	if got := b.ReadUint32(); got != 42 {
		t.Errorf("after rewind: got %d", got)
	}
}

func TestBufferFrames(t *testing.T) {
	b := NewBuffer(64)
	off := b.BeginFrame()
	b.WriteUint32(11)
	b.WriteUint32(22)
	b.EndFrame(off)
	off2 := b.BeginFrame()
	b.EndFrame(off2) // empty frame
	off3 := b.BeginFrame()
	b.WriteUint8(9)
	b.EndFrame(off3)

	f1 := b.ReadFrame()
	if f1.Len() != 8 {
		t.Fatalf("frame1 len=%d", f1.Len())
	}
	if f1.ReadUint32() != 11 || f1.ReadUint32() != 22 {
		t.Errorf("frame1 contents wrong")
	}
	f2 := b.ReadFrame()
	if f2.Len() != 0 {
		t.Errorf("frame2 len=%d", f2.Len())
	}
	f3 := b.ReadFrame()
	if f3.ReadUint8() != 9 {
		t.Errorf("frame3 contents wrong")
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining=%d", b.Remaining())
	}
}

func TestBufferTruncate(t *testing.T) {
	b := NewBuffer(16)
	b.WriteUint32(1)
	mark := b.Len()
	b.WriteUint32(2)
	b.Truncate(mark)
	if b.Len() != 4 {
		t.Fatalf("len=%d", b.Len())
	}
	if got := b.ReadUint32(); got != 1 {
		t.Errorf("got %d", got)
	}
}

func TestBufferPatchUint32(t *testing.T) {
	b := NewBuffer(16)
	pos := b.Len()
	b.WriteUint32(0)
	b.WriteUint32(77)
	b.PatchUint32(pos, 123)
	if got := b.ReadUint32(); got != 123 {
		t.Errorf("patched: got %d", got)
	}
	if got := b.ReadUint32(); got != 77 {
		t.Errorf("unpatched: got %d", got)
	}
}

func TestBufferUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on underflow")
		}
	}()
	b := NewBuffer(4)
	b.WriteUint8(1)
	_ = b.ReadUint32()
}

func TestBufferTruncateBadOffsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on bad truncate")
		}
	}()
	b := NewBuffer(4)
	b.Truncate(10)
}

// Property: any sequence of (uint32, float64, varint) triples round-trips.
func TestBufferRoundtripProperty(t *testing.T) {
	f := func(us []uint32, fs []float64, vs []int64) bool {
		b := NewBuffer(0)
		for _, u := range us {
			b.WriteUint32(u)
		}
		for _, x := range fs {
			b.WriteFloat64(x)
		}
		for _, v := range vs {
			b.WriteVarint(v)
		}
		for _, u := range us {
			if b.ReadUint32() != u {
				return false
			}
		}
		for _, x := range fs {
			got := b.ReadFloat64()
			if got != x && !(math.IsNaN(got) && math.IsNaN(x)) {
				return false
			}
		}
		for _, v := range vs {
			if b.ReadVarint() != v {
				return false
			}
		}
		return b.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: frames written back-to-back parse back to the same bodies.
func TestBufferFramesProperty(t *testing.T) {
	f := func(bodies [][]byte) bool {
		b := NewBuffer(0)
		for _, body := range bodies {
			off := b.BeginFrame()
			b.data = append(b.data, body...)
			b.EndFrame(off)
		}
		for _, body := range bodies {
			sub := b.ReadFrame()
			if sub.Len() != len(body) {
				return false
			}
			for i := range body {
				if sub.ReadUint8() != body[i] {
					return false
				}
			}
		}
		return b.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
