package ser

// Codec describes how a message value of type T is encoded into and
// decoded from a Buffer. Channels are generic over the message type and
// take a Codec at construction, mirroring the paper's C++ templates where
// the message type parameterizes each channel.
//
// Encode and Decode must be inverses: Decode(buf) after Encode(buf, v)
// yields a value equal to v, and must consume exactly the bytes Encode
// produced.
type Codec[T any] interface {
	Encode(b *Buffer, v T)
	Decode(b *Buffer) T
}

// FuncCodec adapts a pair of functions to a Codec.
type FuncCodec[T any] struct {
	Enc func(b *Buffer, v T)
	Dec func(b *Buffer) T
}

// Encode implements Codec.
func (c FuncCodec[T]) Encode(b *Buffer, v T) { c.Enc(b, v) }

// Decode implements Codec.
func (c FuncCodec[T]) Decode(b *Buffer) T { return c.Dec(b) }

// Uint32Codec encodes uint32 values fixed-width.
type Uint32Codec struct{}

func (Uint32Codec) Encode(b *Buffer, v uint32) { b.WriteUint32(v) }
func (Uint32Codec) Decode(b *Buffer) uint32    { return b.ReadUint32() }

// Uint64Codec encodes uint64 values fixed-width.
type Uint64Codec struct{}

func (Uint64Codec) Encode(b *Buffer, v uint64) { b.WriteUint64(v) }
func (Uint64Codec) Decode(b *Buffer) uint64    { return b.ReadUint64() }

// Int64Codec encodes int64 values as zig-zag varints.
type Int64Codec struct{}

func (Int64Codec) Encode(b *Buffer, v int64) { b.WriteVarint(v) }
func (Int64Codec) Decode(b *Buffer) int64    { return b.ReadVarint() }

// Float64Codec encodes float64 values fixed-width.
type Float64Codec struct{}

func (Float64Codec) Encode(b *Buffer, v float64) { b.WriteFloat64(v) }
func (Float64Codec) Decode(b *Buffer) float64    { return b.ReadFloat64() }

// Float32Codec encodes float32 values fixed-width.
type Float32Codec struct{}

func (Float32Codec) Encode(b *Buffer, v float32) { b.WriteFloat32(v) }
func (Float32Codec) Decode(b *Buffer) float32    { return b.ReadFloat32() }

// BoolCodec encodes bool values as one byte.
type BoolCodec struct{}

func (BoolCodec) Encode(b *Buffer, v bool) { b.WriteBool(v) }
func (BoolCodec) Decode(b *Buffer) bool    { return b.ReadBool() }

// Pair holds two values; PairCodec composes two codecs. Used for e.g.
// (distance, parent) messages in weighted algorithms.
type Pair[A, B any] struct {
	First  A
	Second B
}

// PairCodec encodes a Pair by concatenating its element encodings.
type PairCodec[A, B any] struct {
	A Codec[A]
	B Codec[B]
}

func (c PairCodec[A, B]) Encode(b *Buffer, v Pair[A, B]) {
	c.A.Encode(b, v.First)
	c.B.Encode(b, v.Second)
}

func (c PairCodec[A, B]) Decode(b *Buffer) Pair[A, B] {
	a := c.A.Decode(b)
	s := c.B.Decode(b)
	return Pair[A, B]{First: a, Second: s}
}

// SizeOf returns the encoded size of v under codec c. Used by channels
// that need the size of one message ahead of writing (e.g. for capacity
// planning); it encodes into a scratch buffer.
func SizeOf[T any](c Codec[T], v T) int {
	var b Buffer
	c.Encode(&b, v)
	return b.Len()
}
