// Package ser provides the binary serialization layer used by the
// communication channels. Every message that crosses a worker boundary is
// encoded into a Buffer, which lets the runtime account for communication
// volume exactly (the paper reports message size in GB for every
// experiment) and keeps the channel implementations close to the C++
// system described in the paper, where channels read and write raw
// per-destination byte buffers.
package ser

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer is an append-only byte buffer with a read cursor. It is the unit
// of exchange between workers: each worker owns one outgoing Buffer per
// peer and receives one incoming Buffer per peer each exchange round.
//
// All fixed-width values are little-endian. Varint encodings follow
// encoding/binary's unsigned LEB128.
type Buffer struct {
	data []byte
	pos  int // read cursor
}

// NewBuffer returns an empty buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{data: make([]byte, 0, capacity)}
}

// FromBytes wraps b in a Buffer positioned at the start. The buffer takes
// ownership of b.
func FromBytes(b []byte) *Buffer {
	return &Buffer{data: b}
}

// Len returns the number of bytes written to the buffer.
func (b *Buffer) Len() int { return len(b.data) }

// Cap returns the capacity of the underlying storage — the memory the
// buffer retains across Resets.
func (b *Buffer) Cap() int { return cap(b.data) }

// Remaining returns the number of unread bytes.
func (b *Buffer) Remaining() int { return len(b.data) - b.pos }

// Bytes returns the underlying byte slice (written portion).
func (b *Buffer) Bytes() []byte { return b.data }

// Unread returns the not-yet-consumed portion of the buffer without
// advancing the cursor. The slice aliases the buffer's storage; callers
// that retain it (e.g. the checkpoint frame tee) must copy.
func (b *Buffer) Unread() []byte { return b.data[b.pos:] }

// Reset discards contents and rewinds the cursor, retaining capacity.
func (b *Buffer) Reset() {
	b.data = b.data[:0]
	b.pos = 0
}

// Rewind moves the read cursor back to the start without discarding data.
func (b *Buffer) Rewind() { b.pos = 0 }

// WriteUint8 appends one byte.
func (b *Buffer) WriteUint8(v uint8) {
	b.data = append(b.data, v)
}

// WriteUint32 appends a fixed-width 32-bit value.
func (b *Buffer) WriteUint32(v uint32) {
	b.data = binary.LittleEndian.AppendUint32(b.data, v)
}

// WriteUint64 appends a fixed-width 64-bit value.
func (b *Buffer) WriteUint64(v uint64) {
	b.data = binary.LittleEndian.AppendUint64(b.data, v)
}

// WriteUvarint appends v using unsigned LEB128.
func (b *Buffer) WriteUvarint(v uint64) {
	b.data = binary.AppendUvarint(b.data, v)
}

// WriteVarint appends v using zig-zag LEB128.
func (b *Buffer) WriteVarint(v int64) {
	b.data = binary.AppendVarint(b.data, v)
}

// WriteFloat64 appends the IEEE-754 bits of v.
func (b *Buffer) WriteFloat64(v float64) {
	b.WriteUint64(math.Float64bits(v))
}

// WriteFloat32 appends the IEEE-754 bits of v.
func (b *Buffer) WriteFloat32(v float32) {
	b.WriteUint32(math.Float32bits(v))
}

// WriteBool appends a single byte 0 or 1.
func (b *Buffer) WriteBool(v bool) {
	if v {
		b.WriteUint8(1)
	} else {
		b.WriteUint8(0)
	}
}

// WriteBytes appends a length-prefixed byte slice.
func (b *Buffer) WriteBytes(p []byte) {
	b.WriteUvarint(uint64(len(p)))
	b.data = append(b.data, p...)
}

// WriteString appends a length-prefixed string.
func (b *Buffer) WriteString(s string) {
	b.WriteUvarint(uint64(len(s)))
	b.data = append(b.data, s...)
}

func (b *Buffer) need(n int) {
	if b.pos+n > len(b.data) {
		panic(fmt.Sprintf("ser: buffer underflow: need %d bytes, have %d", n, len(b.data)-b.pos))
	}
}

// ReadUint8 consumes one byte.
func (b *Buffer) ReadUint8() uint8 {
	b.need(1)
	v := b.data[b.pos]
	b.pos++
	return v
}

// ReadUint32 consumes a fixed-width 32-bit value.
func (b *Buffer) ReadUint32() uint32 {
	b.need(4)
	v := binary.LittleEndian.Uint32(b.data[b.pos:])
	b.pos += 4
	return v
}

// ReadUint64 consumes a fixed-width 64-bit value.
func (b *Buffer) ReadUint64() uint64 {
	b.need(8)
	v := binary.LittleEndian.Uint64(b.data[b.pos:])
	b.pos += 8
	return v
}

// ReadUvarint consumes an unsigned LEB128 value.
func (b *Buffer) ReadUvarint() uint64 {
	v, n := binary.Uvarint(b.data[b.pos:])
	if n <= 0 {
		panic("ser: invalid uvarint")
	}
	b.pos += n
	return v
}

// ReadVarint consumes a zig-zag LEB128 value.
func (b *Buffer) ReadVarint() int64 {
	v, n := binary.Varint(b.data[b.pos:])
	if n <= 0 {
		panic("ser: invalid varint")
	}
	b.pos += n
	return v
}

// ReadFloat64 consumes an IEEE-754 double.
func (b *Buffer) ReadFloat64() float64 {
	return math.Float64frombits(b.ReadUint64())
}

// ReadFloat32 consumes an IEEE-754 float.
func (b *Buffer) ReadFloat32() float32 {
	return math.Float32frombits(b.ReadUint32())
}

// ReadBool consumes one byte and reports whether it is nonzero.
func (b *Buffer) ReadBool() bool {
	return b.ReadUint8() != 0
}

// ReadBytes consumes a length-prefixed byte slice. The returned slice
// aliases the buffer's storage.
func (b *Buffer) ReadBytes() []byte {
	n := int(b.ReadUvarint())
	b.need(n)
	p := b.data[b.pos : b.pos+n]
	b.pos += n
	return p
}

// ReadString consumes a length-prefixed string.
func (b *Buffer) ReadString() string {
	return string(b.ReadBytes())
}

// BeginFrame reserves a fixed 4-byte length slot and returns its offset.
// EndFrame patches the slot with the number of bytes written since. Frames
// let multiple channels multiplex one physical buffer per destination.
func (b *Buffer) BeginFrame() int {
	off := len(b.data)
	b.WriteUint32(0)
	return off
}

// EndFrame patches the frame length at off.
func (b *Buffer) EndFrame(off int) {
	n := len(b.data) - off - 4
	binary.LittleEndian.PutUint32(b.data[off:], uint32(n))
}

// PatchUint32 overwrites the 4 bytes at offset off with v. The offset
// must point at a previously written fixed-width slot (e.g. a count
// placeholder).
func (b *Buffer) PatchUint32(off int, v uint32) {
	if off < 0 || off+4 > len(b.data) {
		panic("ser: bad patch offset")
	}
	binary.LittleEndian.PutUint32(b.data[off:], v)
}

// Truncate discards everything written after offset n. Used to roll back
// an empty frame (a channel that had nothing to send).
func (b *Buffer) Truncate(n int) {
	if n < 0 || n > len(b.data) {
		panic("ser: bad truncate offset")
	}
	b.data = b.data[:n]
	if b.pos > n {
		b.pos = n
	}
}

// ReadFrame consumes a frame header and returns a sub-buffer over the
// frame body, advancing this buffer past it. The sub-buffer aliases the
// underlying storage. Hot loops should prefer ReadFrameInto, which
// reuses a caller-owned sub-buffer instead of allocating one per frame.
func (b *Buffer) ReadFrame() *Buffer {
	sub := &Buffer{}
	b.ReadFrameInto(sub)
	return sub
}

// ReadFrameInto consumes a frame header and points sub at the frame
// body, advancing this buffer past it. sub aliases the underlying
// storage and is valid until the next write to b; its previous contents
// are discarded. Reusing one sub-buffer across frames keeps the decode
// path allocation-free.
func (b *Buffer) ReadFrameInto(sub *Buffer) {
	n := int(b.ReadUint32())
	b.need(n)
	sub.data = b.data[b.pos : b.pos+n]
	sub.pos = 0
	b.pos += n
}

// NextFrame is the error-returning variant of ReadFrameInto for wire
// boundaries: bytes that arrived over a socket are not trusted, so a
// truncated header or a frame length exceeding the remaining bytes
// returns an error instead of panicking.
func (b *Buffer) NextFrame(sub *Buffer) error {
	if b.Remaining() < 4 {
		return fmt.Errorf("ser: truncated frame header: %d bytes remain", b.Remaining())
	}
	n := int(binary.LittleEndian.Uint32(b.data[b.pos:]))
	if n > b.Remaining()-4 {
		return fmt.Errorf("ser: frame length %d exceeds %d remaining bytes", n, b.Remaining()-4)
	}
	b.pos += 4
	sub.data = b.data[b.pos : b.pos+n]
	sub.pos = 0
	b.pos += n
	return nil
}

// NextUvarint is the error-returning variant of ReadUvarint for wire
// boundaries.
func (b *Buffer) NextUvarint() (uint64, error) {
	v, n := binary.Uvarint(b.data[b.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("ser: invalid uvarint at offset %d", b.pos)
	}
	b.pos += n
	return v, nil
}

// Extend appends n uninitialized bytes and returns the slice covering
// them, so transports can bulk-read wire payloads straight into the
// buffer's storage.
func (b *Buffer) Extend(n int) []byte {
	off := len(b.data)
	if cap(b.data)-off < n {
		grown := make([]byte, off, max(2*cap(b.data), off+n))
		copy(grown, b.data)
		b.data = grown
	}
	b.data = b.data[:off+n]
	return b.data[off:]
}
