package ser

import (
	"testing"
)

// FuzzFrameStream pins the wire-surface contract of the frame layer:
// the engine's receive loop parses (channel-id uvarint, length-prefixed
// frame)* streams arriving from sockets with NextUvarint/NextFrame, and
// arbitrary bytes must always yield an error or a clean parse — never a
// panic, never a frame view extending past the stream.
func FuzzFrameStream(f *testing.F) {
	// a valid two-frame stream
	valid := NewBuffer(64)
	valid.WriteUvarint(0)
	fr := valid.BeginFrame()
	valid.WriteUint32(0xABCD)
	valid.EndFrame(fr)
	valid.WriteUvarint(1)
	fr = valid.BeginFrame()
	valid.EndFrame(fr)
	f.Add(append([]byte(nil), valid.Bytes()...))
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, 0x7f}) // frame length far past the end
	f.Add([]byte{0x80})                         // dangling uvarint continuation
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		b := FromBytes(append([]byte(nil), data...))
		var sub Buffer
		for b.Remaining() > 0 {
			before := b.Remaining()
			if _, err := b.NextUvarint(); err != nil {
				return
			}
			if err := b.NextFrame(&sub); err != nil {
				return
			}
			if sub.Remaining() > b.Len() {
				t.Fatalf("frame view larger than the stream: %d > %d", sub.Remaining(), b.Len())
			}
			if b.Remaining() >= before {
				t.Fatalf("parser made no progress at %d remaining", before)
			}
		}
	})
}

// The error-returning reads must agree with the panicking fast-path
// reads on well-formed input.
func TestNextFrameMatchesReadFrameInto(t *testing.T) {
	b := NewBuffer(64)
	b.WriteUvarint(7)
	fr := b.BeginFrame()
	b.WriteString("payload")
	b.EndFrame(fr)

	fast := FromBytes(append([]byte(nil), b.Bytes()...))
	var fastSub Buffer
	if got := fast.ReadUvarint(); got != 7 {
		t.Fatalf("fast channel id %d", got)
	}
	fast.ReadFrameInto(&fastSub)

	safe := FromBytes(append([]byte(nil), b.Bytes()...))
	var safeSub Buffer
	id, err := safe.NextUvarint()
	if err != nil || id != 7 {
		t.Fatalf("NextUvarint: %d %v", id, err)
	}
	if err := safe.NextFrame(&safeSub); err != nil {
		t.Fatal(err)
	}
	if fastSub.Remaining() != safeSub.Remaining() || safeSub.ReadString() != "payload" {
		t.Fatal("NextFrame disagrees with ReadFrameInto")
	}
}

// Truncated frames error instead of panicking.
func TestNextFrameTruncated(t *testing.T) {
	b := NewBuffer(16)
	b.WriteUint32(100) // frame claims 100 bytes; none follow
	var sub Buffer
	if err := b.NextFrame(&sub); err == nil {
		t.Fatal("oversized frame accepted")
	}
	short := FromBytes([]byte{1, 2})
	if err := short.NextFrame(&sub); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := FromBytes([]byte{0x80}).NextUvarint(); err == nil {
		t.Fatal("dangling uvarint accepted")
	}
}
