package obs

import (
	"fmt"
	"sort"
)

// RunMetrics carries the job-level facts Diagnose correlates with the
// trace and flow matrix. Callers fill what they have; zero values mean
// "unknown" and disable the corresponding checks.
type RunMetrics struct {
	Supersteps int `json:"supersteps"`
	// NetBytes is the job's total cross-worker volume.
	NetBytes int64 `json:"net_bytes"`
	// WallNS is the job's measured wall time (distributed runs). Used
	// only when no trace is available: the trace's summed per-step
	// estimate is the preferred denominator for time fractions because
	// it covers superstep time alone, where the measured wall also
	// carries spawn and dataset-load overhead that would dilute every
	// signal measured against it.
	WallNS int64 `json:"wall_ns"`
	// EdgeCut is the placement's cross-worker edge fraction in [0, 1];
	// negative means unknown.
	EdgeCut float64 `json:"edge_cut"`
}

// WorkerProfile is one worker's whole-run time and traffic breakdown,
// the substrate of the straggler ranking. Shares are fractions of the
// busiest worker's total accounted time (compute + barrier wait + send
// stall) — a fleet-common denominator, so the shares of different
// workers are comparable and a worker whose time disappeared outside
// the instrumented regions (descheduled, faulted, parked in a sleep)
// shows small shares instead of normalized-away ones.
type WorkerProfile struct {
	Worker        int     `json:"worker"`
	ComputeNS     int64   `json:"compute_ns"`
	BarrierWaitNS int64   `json:"barrier_wait_ns"`
	SendStallNS   int64   `json:"send_stall_ns"`
	ComputeShare  float64 `json:"compute_share"`
	WaitShare     float64 `json:"wait_share"`
	StallShare    float64 `json:"stall_share"`
	BytesSent     int64   `json:"bytes_sent"`
	BytesRecv     int64   `json:"bytes_recv"`
	// StragglerScore is how far the worker's barrier-wait share sits
	// below the fleet mean: peers waiting on a straggler accumulate
	// barrier time, the straggler itself does not, so a large positive
	// score marks the worker the others were waiting for.
	StragglerScore float64 `json:"straggler_score"`
	// Cause attributes the straggler's missing wait time: "compute"
	// when its own compute dominates, "send_stall" when flow-control
	// backpressure does, "unattributed" otherwise (external slowness —
	// a descheduled or faulty process). Empty for non-stragglers.
	Cause string `json:"cause,omitempty"`
}

// Finding is one machine-readable diagnosis result.
type Finding struct {
	// Kind: "straggler", "window_bound", "imbalance", "hub_hotspot",
	// "trace_truncated".
	Kind string `json:"kind"`
	// Severity: "info", "warn" or "critical".
	Severity string `json:"severity"`
	// Worker is the implicated worker (findings about one worker), -1
	// otherwise.
	Worker int `json:"worker"`
	// Conn names the implicated connection or relay range, e.g.
	// "w[0-3]->w[4-7]"; empty otherwise.
	Conn string `json:"conn,omitempty"`
	// Value is the measured signal, Threshold what it was compared to
	// (both in the unit Detail explains).
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail"`
}

// Report is the structured output of Diagnose.
type Report struct {
	// Healthy is true when no finding reached warn severity.
	Healthy bool `json:"healthy"`
	// Findings, most severe first.
	Findings []Finding `json:"findings"`
	// Workers holds the per-worker profiles ranked by straggler score,
	// worst first.
	Workers []WorkerProfile `json:"workers"`
	// Recommendations are human-readable next steps, one per actionable
	// finding.
	Recommendations []string `json:"recommendations"`
}

// Straggler returns the worker id of the top straggler finding, or -1
// if the run had none.
func (r *Report) Straggler() int {
	for _, f := range r.Findings {
		if f.Kind == "straggler" {
			return f.Worker
		}
	}
	return -1
}

// Diagnosis thresholds. Exported so operators reading a report can see
// what the verdicts mean; tests pin behaviour against them.
const (
	// StragglerWaitDeficit is the barrier-wait-share gap below the
	// fleet mean at which a worker is called a straggler.
	StragglerWaitDeficit = 0.15
	// WindowBoundStallFraction is the fraction of the run's wall time a
	// connection must spend credit-stalled to be called window-bound.
	WindowBoundStallFraction = 0.2
	// ImbalanceSkew is the max/mean compute ratio at which the run is
	// called compute-imbalanced.
	ImbalanceSkew = 1.5
	// HubHotspotShare is the fraction of total relay volume one worker
	// process must source for the hub relay to be called its hotspot.
	HubHotspotShare = 0.5
)

// Diagnose correlates a job's superstep trace, flow matrix and run
// metrics into a bottleneck report: who the others waited for and why,
// which p2p connections ran out of window, whether compute imbalance
// tracks the placement's edge cut, and whether the hub relay has a
// dominant source. Any input may be nil/zero; the corresponding checks
// are skipped.
func Diagnose(trace *TraceSnapshot, flows *FlowMatrix, m RunMetrics) *Report {
	rep := &Report{}
	profiles := profileWorkers(trace)
	diagnoseStragglers(rep, profiles, trace)
	diagnoseImbalance(rep, profiles, m)
	wall := traceWallNS(trace)
	if wall == 0 {
		wall = m.WallNS
	}
	diagnoseWindows(rep, flows, wall)
	diagnoseHubRelay(rep, flows)
	if trace != nil && trace.TruncatedSamples > 0 {
		rep.Findings = append(rep.Findings, Finding{
			Kind: "trace_truncated", Severity: "warn", Worker: -1,
			Value: float64(trace.TruncatedSamples), Threshold: 0,
			Detail: fmt.Sprintf("trace ring dropped %d samples beyond its %d-superstep cap; per-step diagnosis covers a prefix of the run",
				trace.TruncatedSamples, len(trace.Supersteps)),
		})
		rep.Recommendations = append(rep.Recommendations,
			"superstep timeline is truncated: cap the run's supersteps or diagnose from the retained prefix")
	}
	rep.Workers = profiles
	sortFindings(rep.Findings)
	rep.Healthy = true
	for _, f := range rep.Findings {
		if f.Severity != "info" {
			rep.Healthy = false
			break
		}
	}
	return rep
}

// profileWorkers folds a trace into per-worker whole-run profiles,
// ranked by straggler score (worst first).
func profileWorkers(trace *TraceSnapshot) []WorkerProfile {
	if trace == nil || trace.Workers == 0 || len(trace.Supersteps) == 0 {
		return nil
	}
	profs := make([]WorkerProfile, trace.Workers)
	for w := range profs {
		profs[w].Worker = w
	}
	for _, step := range trace.Supersteps {
		for _, s := range step.Workers {
			if s.Worker < 0 || s.Worker >= len(profs) {
				continue
			}
			p := &profs[s.Worker]
			p.ComputeNS += s.ComputeNS
			p.BarrierWaitNS += s.BarrierWaitNS
			p.SendStallNS += s.SendStallNS
			p.BytesSent += s.BytesSent
			p.BytesRecv += s.BytesRecv
		}
	}
	// The share denominator is the busiest worker's accounted total, not
	// each worker's own: a straggler that spent the run descheduled or
	// parked in a sleep has little accounted time at all, and dividing
	// its barrier wait by its own tiny total would hand it a wait share
	// near 1 — hiding exactly the worker the metric exists to expose.
	// Against the fleet-wide denominator its wait share is honestly
	// small and the deficit below the mean stands out.
	var denom int64
	for w := range profs {
		if t := profs[w].ComputeNS + profs[w].BarrierWaitNS + profs[w].SendStallNS; t > denom {
			denom = t
		}
	}
	if denom == 0 {
		return profs
	}
	var meanWait float64
	counted := 0
	for w := range profs {
		p := &profs[w]
		if p.ComputeNS+p.BarrierWaitNS+p.SendStallNS == 0 {
			continue
		}
		p.ComputeShare = float64(p.ComputeNS) / float64(denom)
		p.WaitShare = float64(p.BarrierWaitNS) / float64(denom)
		p.StallShare = float64(p.SendStallNS) / float64(denom)
		meanWait += p.WaitShare
		counted++
	}
	if counted > 0 {
		meanWait /= float64(counted)
	}
	for w := range profs {
		p := &profs[w]
		if p.ComputeNS+p.BarrierWaitNS+p.SendStallNS == 0 {
			continue
		}
		p.StragglerScore = meanWait - p.WaitShare
	}
	sort.SliceStable(profs, func(i, k int) bool {
		return profs[i].StragglerScore > profs[k].StragglerScore
	})
	return profs
}

// diagnoseStragglers flags workers whose barrier-wait share sits far
// below the fleet mean and attributes the cause.
func diagnoseStragglers(rep *Report, profs []WorkerProfile, trace *TraceSnapshot) {
	if len(profs) < 2 || trace == nil || len(trace.Supersteps) < 2 {
		return
	}
	for i := range profs {
		p := &profs[i]
		if p.StragglerScore < StragglerWaitDeficit {
			break // ranked worst-first; the rest score lower
		}
		// Attribute: where did the straggler's time go instead of
		// waiting? Compute share dominating means a genuine compute
		// skew; stall share means backpressure; neither means the
		// process itself was slow (descheduled, faulted, sleeping).
		switch {
		case p.ComputeShare >= 0.5:
			p.Cause = "compute"
		case p.StallShare >= 0.25:
			p.Cause = "send_stall"
		default:
			p.Cause = "unattributed"
		}
		sev := "warn"
		if p.StragglerScore >= 2*StragglerWaitDeficit {
			sev = "critical"
		}
		rep.Findings = append(rep.Findings, Finding{
			Kind: "straggler", Severity: sev, Worker: p.Worker,
			Value: p.StragglerScore, Threshold: StragglerWaitDeficit,
			Detail: fmt.Sprintf("worker %d waited %.0f%% of the run at barriers vs a fleet mean of %.0f%%: the others were waiting for it (cause: %s)",
				p.Worker, p.WaitShare*100, (p.WaitShare+p.StragglerScore)*100, p.Cause),
		})
		switch p.Cause {
		case "compute":
			rep.Recommendations = append(rep.Recommendations, fmt.Sprintf(
				"worker %d is compute-bound ahead of its peers: rebalance the partition (try greedy placement) or shrink its vertex range", p.Worker))
		case "send_stall":
			rep.Recommendations = append(rep.Recommendations, fmt.Sprintf(
				"worker %d is blocked sending: raise the p2p window (-window-bytes) or relieve its receivers", p.Worker))
		default:
			rep.Recommendations = append(rep.Recommendations, fmt.Sprintf(
				"worker %d is slow for reasons outside the engine (host contention, fault injection, GC): inspect that process", p.Worker))
		}
	}
}

// diagnoseImbalance flags compute skew and notes whether the placement's
// edge cut plausibly explains it.
func diagnoseImbalance(rep *Report, profs []WorkerProfile, m RunMetrics) {
	if len(profs) < 2 {
		return
	}
	var sum, max int64
	for _, p := range profs {
		sum += p.ComputeNS
		if p.ComputeNS > max {
			max = p.ComputeNS
		}
	}
	if sum == 0 {
		return
	}
	mean := float64(sum) / float64(len(profs))
	if mean == 0 {
		return
	}
	skew := float64(max) / mean
	if skew < ImbalanceSkew {
		return
	}
	detail := fmt.Sprintf("compute skew %.2fx (slowest worker vs mean)", skew)
	if m.EdgeCut > 0 {
		detail += fmt.Sprintf("; placement edge cut %.0f%%", m.EdgeCut*100)
	}
	rep.Findings = append(rep.Findings, Finding{
		Kind: "imbalance", Severity: "info", Worker: -1,
		Value: skew, Threshold: ImbalanceSkew, Detail: detail,
	})
	rep.Recommendations = append(rep.Recommendations,
		"compute is imbalanced across workers: try greedy placement or more workers")
}

// diagnoseWindows flags p2p connections whose credit-stall time is a
// large fraction of the run's wall time.
func diagnoseWindows(rep *Report, flows *FlowMatrix, wallNS int64) {
	if flows == nil || wallNS <= 0 {
		return
	}
	for _, c := range flows.Conns {
		frac := float64(c.StallNS) / float64(wallNS)
		if frac < WindowBoundStallFraction {
			continue
		}
		name := connName(c)
		grantMS := float64(0)
		if c.Grants > 0 {
			grantMS = float64(c.GrantWaitNS) / float64(c.Grants) / 1e6
		}
		rep.Findings = append(rep.Findings, Finding{
			Kind: "window_bound", Severity: "warn", Worker: -1, Conn: name,
			Value: frac, Threshold: WindowBoundStallFraction,
			Detail: fmt.Sprintf("connection %s spent %.0f%% of the run blocked on its %d-byte credit window (mean grant latency %.2fms over %d grants)",
				name, frac*100, c.Window, grantMS, c.Grants),
		})
		rep.Recommendations = append(rep.Recommendations, fmt.Sprintf(
			"connection %s is window-bound: raise -window-bytes above its largest round (%d bytes moved in %d frames), or switch to -data-plane p2p-adaptive to let the window grow out of the stall on its own",
			name, c.Bytes, c.Frames))
	}
}

// diagnoseHubRelay flags a dominant relay source on the hub plane.
func diagnoseHubRelay(rep *Report, flows *FlowMatrix) {
	if flows == nil || len(flows.Relays) < 2 {
		return
	}
	var total int64
	for _, r := range flows.Relays {
		total += r.Bytes
	}
	if total == 0 {
		return
	}
	for _, r := range flows.Relays {
		share := float64(r.Bytes) / float64(total)
		if share < HubHotspotShare {
			continue
		}
		name := fmt.Sprintf("w[%d-%d]", r.Lo, r.Hi-1)
		rep.Findings = append(rep.Findings, Finding{
			Kind: "hub_hotspot", Severity: "info", Worker: -1, Conn: name,
			Value: share, Threshold: HubHotspotShare,
			Detail: fmt.Sprintf("worker range %s sourced %.0f%% of hub relay volume (%d bytes, %d frames, %.2fms total relay residency)",
				name, share*100, r.Bytes, r.Frames, float64(r.ResidencyNS)/1e6),
		})
		rep.Recommendations = append(rep.Recommendations, fmt.Sprintf(
			"hub relay is dominated by %s: the p2p data plane (-data-plane p2p) removes the relay hop", name))
	}
}

// traceWallNS estimates the run's wall time from the trace: the sum
// over steps of the slowest worker's accounted time.
func traceWallNS(trace *TraceSnapshot) int64 {
	if trace == nil {
		return 0
	}
	var wall int64
	for _, step := range trace.Supersteps {
		var max int64
		for _, s := range step.Workers {
			if t := s.ComputeNS + s.BarrierWaitNS + s.SendStallNS; t > max {
				max = t
			}
		}
		wall += max
	}
	return wall
}

// connName renders a ConnStat's endpoints, e.g. "w[0-3]->w[4-7]".
func connName(c ConnStat) string {
	return fmt.Sprintf("w[%d-%d]->w[%d-%d]", c.LocalLo, c.LocalHi-1, c.PeerLo, c.PeerHi-1)
}

// sortFindings orders findings most severe first, stable within a
// severity.
func sortFindings(fs []Finding) {
	rank := func(sev string) int {
		switch sev {
		case "critical":
			return 0
		case "warn":
			return 1
		default:
			return 2
		}
	}
	sort.SliceStable(fs, func(i, k int) bool {
		return rank(fs[i].Severity) < rank(fs[k].Severity)
	})
}
