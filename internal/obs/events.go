package obs

import "time"

// JobEvent is one entry of a job's live event stream: a lifecycle state
// transition or a completed superstep. Events are sequenced per job so
// stream consumers can detect gaps after a reconnect.
type JobEvent struct {
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	// Type is "state" for lifecycle transitions, "superstep" for
	// completed supersteps.
	Type string `json:"type"`
	// State is the job's lifecycle state at the event (always set).
	State string `json:"state"`
	// Error carries the terminal error message on failed jobs.
	Error string `json:"error,omitempty"`
	// Step is set on "superstep" events.
	Step *StepEvent `json:"step,omitempty"`
}

// StepEvent summarizes one completed superstep across all workers: the
// live-stream companion of a TraceStep, emitted once every worker's
// sample for the step has landed (in-process immediately; on the
// distributed path when the shipped samples arrive at the
// coordinator).
type StepEvent struct {
	Superstep int `json:"superstep"`
	Workers   int `json:"workers"`
	// ActiveVertices sums the workers' active counts entering the step.
	ActiveVertices int64 `json:"active_vertices"`
	// WallNS estimates the step's wall time: the slowest worker's
	// compute + barrier-wait + send-stall total.
	WallNS int64 `json:"wall_ns"`
	// MaxComputeNS / MeanComputeNS capture compute skew across workers;
	// Skew is their ratio (1.0 = perfectly balanced).
	MaxComputeNS  int64   `json:"max_compute_ns"`
	MeanComputeNS int64   `json:"mean_compute_ns"`
	Skew          float64 `json:"skew"`
}

// stepEvent builds the summary of one fully-reported trace step.
func stepEvent(superstep int, samples []SuperstepSample) StepEvent {
	ev := StepEvent{Superstep: superstep, Workers: len(samples)}
	var sumCompute int64
	for _, s := range samples {
		ev.ActiveVertices += s.ActiveVertices
		sumCompute += s.ComputeNS
		if s.ComputeNS > ev.MaxComputeNS {
			ev.MaxComputeNS = s.ComputeNS
		}
		if total := s.ComputeNS + s.BarrierWaitNS + s.SendStallNS; total > ev.WallNS {
			ev.WallNS = total
		}
	}
	if len(samples) > 0 {
		ev.MeanComputeNS = sumCompute / int64(len(samples))
	}
	if ev.MeanComputeNS > 0 {
		ev.Skew = float64(ev.MaxComputeNS) / float64(ev.MeanComputeNS)
	}
	return ev
}
