package obs

import (
	"sync"
	"sync/atomic"
)

// FlowStat is one (src, dst) cell of a job's flow matrix: the volume
// worker src pushed toward worker dst over the whole run, counted at
// the fabric's flush seam (one frame per exchange round that actually
// carried data, so Frames doubles as the flow's non-empty round count).
type FlowStat struct {
	Src    int   `json:"src"`
	Dst    int   `json:"dst"`
	Bytes  int64 `json:"bytes"`
	Frames int64 `json:"frames"`
	// Rounds counts exchange rounds in which this flow carried data;
	// at the flush seam it equals Frames, kept separate so finer-grained
	// transports can diverge.
	Rounds int64 `json:"rounds"`
	// MaxFrame is the largest single flush toward dst; Bytes/Frames is
	// the mean.
	MaxFrame int64 `json:"max_frame"`
}

// MeanFrame returns the average flush size of the flow.
func (f FlowStat) MeanFrame() int64 {
	if f.Frames == 0 {
		return 0
	}
	return f.Bytes / f.Frames
}

// ConnStat describes one p2p peer pair's flow-control behaviour over a
// run: how often and for how long the sending side sat on an exhausted
// credit window, how long credit grants took to arrive while a sender
// was blocked, and — on the adaptive plane — the window's trajectory
// plus the pair's hub-relayed share from before its promotion. Worker
// ranges identify the connection ends (each graphworker process hosts
// a contiguous range). A lazy pair that never earned a direct
// connection reports a relay-only row: Window zero, only the relay
// fields set.
type ConnStat struct {
	LocalLo int `json:"local_lo"`
	LocalHi int `json:"local_hi"`
	PeerLo  int `json:"peer_lo"`
	PeerHi  int `json:"peer_hi"`
	// Window is the connection's current send-window size in bytes (the
	// credit the remote receiver grants this side). Static planes never
	// change it; the adaptive plane retunes it per round.
	Window int64 `json:"window"`
	// RecvWindow is the window this side grants the remote sender — the
	// connection's standing receive-memory cost. Summed over a job's
	// rows it is the mesh's standing window memory.
	RecvWindow int64 `json:"recv_window,omitempty"`
	// WindowPeak and Resizes trace the adaptive controller's activity:
	// the largest send window the run reached and how many resize
	// events the connection saw (in either role — granted or applied).
	WindowPeak int64 `json:"window_peak,omitempty"`
	Resizes    int64 `json:"resizes,omitempty"`
	// Bytes/Frames count data frames written to this connection.
	Bytes  int64 `json:"bytes"`
	Frames int64 `json:"frames"`
	// RelayBytes/RelayFrames count this pair's traffic that rode the
	// hub relay instead (the lazy mesh's cold phase, plus any frames
	// latched onto the relay mid-promotion).
	RelayBytes  int64 `json:"relay_bytes,omitempty"`
	RelayFrames int64 `json:"relay_frames,omitempty"`
	// StallNS is cumulative time the local senders spent blocked on an
	// exhausted window; GrantWaitNS/Grants measure how long the credits
	// that unblocked them took to arrive.
	StallNS     int64 `json:"stall_ns"`
	GrantWaitNS int64 `json:"grant_wait_ns"`
	Grants      int64 `json:"grants"`
}

// RelayStat is one worker process's share of hub data-plane relay
// traffic: frames the hub accepted from that process's worker range and
// the cumulative time they spent resident in the hub (read to
// forwarded).
type RelayStat struct {
	Lo          int   `json:"lo"`
	Hi          int   `json:"hi"`
	Bytes       int64 `json:"bytes"`
	Frames      int64 `json:"frames"`
	ResidencyNS int64 `json:"residency_ns"`
}

// FlowMatrix is the per-job flow-level network picture: the dense
// (src, dst) volume matrix plus the transport-specific extras (p2p
// connection flow-control stats, hub relay stats). Shape is identical
// whichever fabric ran the job; Conns and Relays are empty on fabrics
// that have no such machinery.
type FlowMatrix struct {
	// Plane names the data plane that carried the job: "inproc", "hub"
	// or "p2p".
	Plane   string `json:"plane"`
	Workers int    `json:"workers"`
	// Flows holds the non-empty matrix cells in (src, dst) order.
	Flows  []FlowStat  `json:"flows"`
	Conns  []ConnStat  `json:"conns,omitempty"`
	Relays []RelayStat `json:"relays,omitempty"`
}

// Flow returns the (src, dst) cell, or a zero FlowStat if the flow
// never carried data.
func (m *FlowMatrix) Flow(src, dst int) FlowStat {
	for _, f := range m.Flows {
		if f.Src == src && f.Dst == dst {
			return f
		}
	}
	return FlowStat{Src: src, Dst: dst}
}

// flowCell is one accumulating matrix cell. All fields are atomics so
// Record stays lock-free: the fabrics call it from worker goroutines on
// the exchange hot path, and snapshots may race with a live run.
type flowCell struct {
	bytes    atomic.Int64
	frames   atomic.Int64
	maxFrame atomic.Int64
}

// FlowAccum accumulates a flow matrix during a run. The cell matrix is
// preallocated so Record performs no allocation and takes no lock; the
// transport-specific extras (connection and relay stats) are appended
// at run boundaries under a mutex. One FlowAccum serves a whole job: on
// the distributed path the coordinator merges each worker process's
// shipped matrix into it, so both fabrics produce the same shape.
type FlowAccum struct {
	workers int
	cells   []flowCell // workers*workers, row-major by src

	mu     sync.Mutex
	plane  string
	conns  []ConnStat
	relays []RelayStat
}

// NewFlowAccum creates an accumulator for a job with the given worker
// count.
func NewFlowAccum(workers int) *FlowAccum {
	return &FlowAccum{workers: workers, cells: make([]flowCell, workers*workers)}
}

// Workers returns the job's worker count.
func (a *FlowAccum) Workers() int { return a.workers }

// SetPlane records which data plane carried the job.
func (a *FlowAccum) SetPlane(plane string) {
	a.mu.Lock()
	a.plane = plane
	a.mu.Unlock()
}

// Record accounts one flush of n bytes from src toward dst. Lock-free
// and allocation-free; callers skip empty flushes.
func (a *FlowAccum) Record(src, dst int, n int64) {
	if src < 0 || src >= a.workers || dst < 0 || dst >= a.workers {
		return
	}
	c := &a.cells[src*a.workers+dst]
	c.bytes.Add(n)
	c.frames.Add(1)
	for {
		cur := c.maxFrame.Load()
		if n <= cur || c.maxFrame.CompareAndSwap(cur, n) {
			break
		}
	}
}

// AddConn appends one p2p connection's flow-control stats.
func (a *FlowAccum) AddConn(c ConnStat) {
	a.mu.Lock()
	a.conns = append(a.conns, c)
	a.mu.Unlock()
}

// AddRelay appends one worker process's hub relay stats.
func (a *FlowAccum) AddRelay(r RelayStat) {
	a.mu.Lock()
	a.relays = append(a.relays, r)
	a.mu.Unlock()
}

// Merge folds a shipped matrix (one worker process's share, or a whole
// job's) into the accumulator: cells add, extras append. The
// coordinator calls it once per successful worker partial, so an
// aborted attempt that shipped nothing contributes nothing.
func (a *FlowAccum) Merge(m *FlowMatrix) {
	if m == nil {
		return
	}
	for _, f := range m.Flows {
		if f.Src < 0 || f.Src >= a.workers || f.Dst < 0 || f.Dst >= a.workers {
			continue
		}
		c := &a.cells[f.Src*a.workers+f.Dst]
		c.bytes.Add(f.Bytes)
		c.frames.Add(f.Frames)
		for {
			cur := c.maxFrame.Load()
			if f.MaxFrame <= cur || c.maxFrame.CompareAndSwap(cur, f.MaxFrame) {
				break
			}
		}
	}
	a.mu.Lock()
	if a.plane == "" {
		a.plane = m.Plane
	}
	a.conns = append(a.conns, m.Conns...)
	a.relays = append(a.relays, m.Relays...)
	a.mu.Unlock()
}

// Matrix snapshots the accumulator into its dense JSON view, listing
// only cells that carried data. Safe to call while a run is still
// recording; a concurrent snapshot sees a consistent-enough live
// prefix.
func (a *FlowAccum) Matrix() *FlowMatrix {
	a.mu.Lock()
	m := &FlowMatrix{
		Plane:   a.plane,
		Workers: a.workers,
		Conns:   append([]ConnStat(nil), a.conns...),
		Relays:  append([]RelayStat(nil), a.relays...),
	}
	a.mu.Unlock()
	for s := 0; s < a.workers; s++ {
		for d := 0; d < a.workers; d++ {
			c := &a.cells[s*a.workers+d]
			frames := c.frames.Load()
			if frames == 0 {
				continue
			}
			m.Flows = append(m.Flows, FlowStat{
				Src: s, Dst: d,
				Bytes:    c.bytes.Load(),
				Frames:   frames,
				Rounds:   frames,
				MaxFrame: c.maxFrame.Load(),
			})
		}
	}
	return m
}
