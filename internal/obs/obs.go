// Package obs is the zero-dependency observability plane: a metric
// registry (counters, gauges, fixed-bucket histograms — all atomic,
// exposed in the Prometheus text format) and the per-job superstep
// trace the engines feed through their Config.Observer seam.
//
// Both halves are designed so that *not* observing costs nothing
// measurable: instruments are plain atomics with no label machinery,
// and the engines guard every trace-related statement behind a single
// nil check on the observer, so the hot superstep loops pay one
// predictable branch when tracing is off.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; instruments are normally obtained from a Registry.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bucket counts and
// the observation count are atomic adds; the float sum is a CAS loop.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; an implicit +Inf follows
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets are the default seconds buckets for job and request
// durations (sub-millisecond micro jobs up to minutes-long analytics).
var DurationBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.25, 1, 5, 30, 120, 600}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// Registry holds named instruments and scrape hooks and renders them
// all in the Prometheus text exposition format. Safe for concurrent
// use; instrument registration is idempotent by name.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
	hooks  []func(*Emitter)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter returns the counter registered under name, creating it on
// first use. Registering the same name as a different kind panics.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter)
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge)
	if f.gauge == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending upper bounds on first use (the +Inf bucket
// is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, kindHistogram)
	if f.hist == nil {
		b := append([]float64(nil), bounds...)
		h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		f.hist = h
	}
	return f.hist
}

// OnScrape registers a hook run on every WritePrometheus call, for
// series derived from live state (catalog contents, job-manager
// counters, per-dataset label sets) rather than standing instruments.
func (r *Registry) OnScrape(f func(*Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, f)
}

// WritePrometheus renders every registered instrument and scrape hook
// in the Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	hooks := append(make([]func(*Emitter), 0, len(r.hooks)), r.hooks...)
	r.mu.Unlock()

	e := &Emitter{typed: make(map[string]bool)}
	for _, f := range fams {
		switch f.kind {
		case kindCounter:
			e.Counter(f.name, f.help, float64(f.counter.Value()))
		case kindGauge:
			e.Gauge(f.name, f.help, float64(f.gauge.Value()))
		case kindHistogram:
			e.histogram(f.name, f.help, f.hist)
		}
	}
	for _, hook := range hooks {
		hook(e)
	}
	_, err := w.Write(e.buf.Bytes())
	return err
}

// Emitter accumulates exposition lines during a scrape. Hooks use it to
// emit dynamic (possibly labelled) series; the # HELP/# TYPE header of
// each family is emitted once, on its first sample.
type Emitter struct {
	buf   bytes.Buffer
	typed map[string]bool
}

func (e *Emitter) header(name, help, typ string) {
	if e.typed[name] {
		return
	}
	e.typed[name] = true
	if help != "" {
		e.buf.WriteString("# HELP " + name + " " + escapeHelp(help) + "\n")
	}
	e.buf.WriteString("# TYPE " + name + " " + typ + "\n")
}

// Counter emits one counter sample. labels are alternating key, value
// pairs.
func (e *Emitter) Counter(name, help string, v float64, labels ...string) {
	e.header(name, help, "counter")
	e.sample(name, v, labels)
}

// Gauge emits one gauge sample. labels are alternating key, value
// pairs.
func (e *Emitter) Gauge(name, help string, v float64, labels ...string) {
	e.header(name, help, "gauge")
	e.sample(name, v, labels)
}

func (e *Emitter) histogram(name, help string, h *Histogram) {
	e.header(name, help, "histogram")
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		e.sample(name+"_bucket", float64(cum), []string{"le", formatFloat(b)})
	}
	cum += h.counts[len(h.bounds)].Load()
	e.sample(name+"_bucket", float64(cum), []string{"le", "+Inf"})
	e.sample(name+"_sum", h.Sum(), nil)
	e.sample(name+"_count", float64(h.Count()), nil)
}

func (e *Emitter) sample(name string, v float64, labels []string) {
	e.buf.WriteString(name)
	if len(labels) > 0 {
		e.buf.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				e.buf.WriteByte(',')
			}
			e.buf.WriteString(labels[i])
			e.buf.WriteString(`="`)
			e.buf.WriteString(escapeLabel(labels[i+1]))
			e.buf.WriteByte('"')
		}
		e.buf.WriteByte('}')
	}
	e.buf.WriteByte(' ')
	e.buf.WriteString(formatFloat(v))
	e.buf.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
