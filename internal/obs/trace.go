package obs

import "sync"

// SuperstepSample is one worker's record of one superstep: where the
// time went (compute vs waiting at barriers — the straggler signal),
// what crossed the fabric, and how much of the graph was still active.
// The engines produce exactly one sample per (worker, superstep) that
// completed its termination reduce; a superstep cut short by a failure
// or cancellation produces none.
type SuperstepSample struct {
	Worker    int `json:"worker"`
	Superstep int `json:"superstep"`
	// ActiveVertices is the worker's active count entering the superstep.
	ActiveVertices int64 `json:"active_vertices"`
	// Rounds is the number of exchange rounds the superstep ran (the
	// baseline engine's fixed 1 or 2; the channel engine's demand-driven
	// count).
	Rounds int `json:"rounds"`
	// ComputeNS covers the per-vertex compute calls plus the channels'
	// AfterCompute hooks; BarrierWaitNS accumulates time blocked in the
	// superstep's barrier crossings and reduces (on the socket fabric it
	// includes the wire round trips).
	ComputeNS     int64 `json:"compute_ns"`
	BarrierWaitNS int64 `json:"barrier_wait_ns"`
	// SendStallNS accumulates time the worker's Flush calls spent
	// blocked on exhausted flow-control windows (the p2p data plane's
	// backpressure signal; zero on fabrics without windowing). A
	// straggling receiver shows up here on its *senders*, next to the
	// BarrierWaitNS skew it causes.
	SendStallNS int64 `json:"send_stall_ns"`
	// Bytes/frames counted at the engine's serialize and deserialize
	// points, so they are identical whichever fabric carried them. The
	// totals include the frame envelope (channel id + length header);
	// per-channel counts in Channels are payload only.
	BytesSent  int64 `json:"bytes_sent"`
	FramesSent int64 `json:"frames_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	FramesRecv int64 `json:"frames_recv"`
	// Channels breaks the traffic down per registered channel id
	// (channel engine only; the baseline engine has a single monolithic
	// stream and leaves this nil).
	Channels []ChannelSample `json:"channels,omitempty"`
}

// ChannelSample is one channel's share of a superstep's traffic
// (payload bytes, excluding the frame envelope).
type ChannelSample struct {
	BytesSent  int64 `json:"bytes_sent"`
	FramesSent int64 `json:"frames_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	FramesRecv int64 `json:"frames_recv"`
}

// Observer receives one sample per worker per completed superstep. The
// engines call it from their worker goroutines, so implementations must
// be safe for concurrent use.
type Observer interface {
	ObserveSuperstep(SuperstepSample)
}

// DefaultTraceSteps bounds how many supersteps a Trace retains; samples
// beyond the cap are counted, not stored, so a runaway job cannot turn
// its trace into a memory leak while the manager retains it.
const DefaultTraceSteps = 1024

// Trace collects samples into a per-job superstep timeline. One Trace
// serves a whole job: in-process all workers feed it directly, and on
// the distributed path the coordinator replays each worker process's
// shipped samples into it, so both fabrics produce the same shape.
type Trace struct {
	mu        sync.Mutex
	workers   int
	maxSteps  int
	steps     []traceStep
	truncated int64

	// onStep fires exactly once per superstep, when the last worker's
	// sample for it lands (re-shipped samples after a recovery overwrite
	// their slots without re-firing). onTruncate fires once, on the
	// first truncated sample. Both run outside the trace lock.
	onStep     func(StepEvent)
	onTruncate func(int64)
	warned     bool
}

type traceStep struct {
	samples []SuperstepSample
	seen    []bool
	count   int  // workers seen so far
	fired   bool // completion hook already ran
}

// NewTrace creates a trace for a job with the given worker count,
// retaining up to DefaultTraceSteps supersteps.
func NewTrace(workers int) *Trace {
	return &Trace{workers: workers, maxSteps: DefaultTraceSteps}
}

// Workers returns the job's worker count.
func (t *Trace) Workers() int { return t.workers }

// OnStepComplete installs a hook fired exactly once per superstep, when
// the last worker's sample for it arrives. Overwrites of already-seen
// slots (a recovered attempt re-shipping its replayed steps) do not
// re-fire, so consumers see each step once however many attempts the
// job took. Set before the trace starts collecting.
func (t *Trace) OnStepComplete(f func(StepEvent)) { t.onStep = f }

// OnTruncate installs a hook fired once, on the trace's first truncated
// sample, with the truncated count at that moment. Set before the trace
// starts collecting.
func (t *Trace) OnTruncate(f func(int64)) { t.onTruncate = f }

// ObserveSuperstep records one sample. Samples beyond the superstep cap
// or with out-of-range coordinates are dropped (counted as truncated).
func (t *Trace) ObserveSuperstep(s SuperstepSample) {
	if s.Worker < 0 || s.Worker >= t.workers || s.Superstep < 1 {
		return
	}
	t.mu.Lock()
	if s.Superstep > t.maxSteps {
		t.truncated++
		warn, n := !t.warned && t.onTruncate != nil, t.truncated
		t.warned = true
		t.mu.Unlock()
		if warn {
			t.onTruncate(n)
		}
		return
	}
	for len(t.steps) < s.Superstep {
		t.steps = append(t.steps, traceStep{
			samples: make([]SuperstepSample, t.workers),
			seen:    make([]bool, t.workers),
		})
	}
	slot := &t.steps[s.Superstep-1]
	if !slot.seen[s.Worker] {
		slot.seen[s.Worker] = true
		slot.count++
	}
	slot.samples[s.Worker] = s
	var ev StepEvent
	fire := false
	if slot.count == t.workers && !slot.fired && t.onStep != nil {
		slot.fired = true
		fire = true
		ev = stepEvent(s.Superstep, slot.samples)
	}
	t.mu.Unlock()
	if fire {
		t.onStep(ev)
	}
}

// Samples returns every recorded sample in (superstep, worker) order —
// the canonical order the wire encoding and tests rely on.
func (t *Trace) Samples() []SuperstepSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SuperstepSample
	for _, step := range t.steps {
		for w, ok := range step.seen {
			if ok {
				out = append(out, step.samples[w])
			}
		}
	}
	return out
}

// TraceSnapshot is the JSON view of a trace: the superstep timeline
// with one entry per worker that reported the step.
type TraceSnapshot struct {
	Workers          int         `json:"workers"`
	TruncatedSamples int64       `json:"truncated_samples,omitempty"`
	Supersteps       []TraceStep `json:"supersteps"`
}

// TraceStep is one superstep of the timeline.
type TraceStep struct {
	Superstep int               `json:"superstep"`
	Workers   []SuperstepSample `json:"workers"`
}

// Snapshot returns a deep copy of the timeline for serving; the trace
// may keep collecting concurrently.
func (t *Trace) Snapshot() *TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &TraceSnapshot{
		Workers:          t.workers,
		TruncatedSamples: t.truncated,
		Supersteps:       make([]TraceStep, 0, len(t.steps)),
	}
	for i, step := range t.steps {
		ts := TraceStep{Superstep: i + 1}
		for w, ok := range step.seen {
			if ok {
				s := step.samples[w]
				s.Channels = append([]ChannelSample(nil), s.Channels...)
				ts.Workers = append(ts.Workers, s)
			}
		}
		snap.Supersteps = append(snap.Supersteps, ts)
	}
	return snap
}
