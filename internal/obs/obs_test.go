package obs

import (
	"strings"
	"sync"
	"testing"
)

// The registry must render counters, gauges and histograms in valid
// Prometheus text exposition, with one HELP/TYPE header per family and
// cumulative histogram buckets.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	h := r.Histogram("test_seconds", "Latencies.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total 42\n",
		"# TYPE test_depth gauge\ntest_depth 5\n",
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		"test_seconds_sum 10.55",
		"test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// Re-requesting an instrument by name must return the same instance,
// and scrape hooks must emit labelled series with a single header.
func TestRegistryIdempotentAndHooks(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "dup")
	b := r.Counter("dup_total", "dup")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	r.OnScrape(func(e *Emitter) {
		e.Gauge("live_edges", "Edges per dataset.", 10, "dataset", `fe"ed`)
		e.Gauge("live_edges", "Edges per dataset.", 20, "dataset", "web")
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE live_edges gauge"); got != 1 {
		t.Errorf("TYPE header emitted %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `live_edges{dataset="fe\"ed"} 10`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `live_edges{dataset="web"} 20`) {
		t.Errorf("second sample missing:\n%s", out)
	}
}

// Concurrent observers must not race or lose samples, and the trace
// must order its timeline by (superstep, worker) regardless of arrival
// order.
func TestTraceCollects(t *testing.T) {
	const workers, steps = 4, 6
	tr := NewTrace(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := steps; s >= 1; s-- {
				tr.ObserveSuperstep(SuperstepSample{
					Worker: w, Superstep: s, ActiveVertices: int64(100*w + s),
				})
			}
		}(w)
	}
	wg.Wait()

	snap := tr.Snapshot()
	if snap.Workers != workers || len(snap.Supersteps) != steps {
		t.Fatalf("snapshot shape = %d workers x %d steps, want %dx%d",
			snap.Workers, len(snap.Supersteps), workers, steps)
	}
	for i, step := range snap.Supersteps {
		if step.Superstep != i+1 || len(step.Workers) != workers {
			t.Fatalf("step %d: superstep=%d with %d workers", i, step.Superstep, len(step.Workers))
		}
		for w, s := range step.Workers {
			if s.Worker != w || s.ActiveVertices != int64(100*w+i+1) {
				t.Fatalf("step %d worker %d: got %+v", i+1, w, s)
			}
		}
	}
	if got := len(tr.Samples()); got != workers*steps {
		t.Fatalf("Samples() = %d, want %d", got, workers*steps)
	}
}

// Samples beyond the retention cap are counted, not stored; bogus
// coordinates are dropped silently.
func TestTraceTruncation(t *testing.T) {
	tr := NewTrace(2)
	tr.maxSteps = 3
	for s := 1; s <= 5; s++ {
		tr.ObserveSuperstep(SuperstepSample{Worker: 0, Superstep: s})
	}
	tr.ObserveSuperstep(SuperstepSample{Worker: 9, Superstep: 1}) // out of range
	snap := tr.Snapshot()
	if len(snap.Supersteps) != 3 {
		t.Fatalf("retained %d steps, want 3", len(snap.Supersteps))
	}
	if snap.TruncatedSamples != 2 {
		t.Fatalf("truncated = %d, want 2", snap.TruncatedSamples)
	}
	if len(snap.Supersteps[0].Workers) != 1 {
		t.Fatalf("out-of-range worker was stored")
	}
}
