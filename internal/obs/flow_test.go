package obs

import (
	"sync"
	"testing"
)

// Concurrent Record calls from many goroutines must tally exactly and
// keep the max-frame high-water mark, the contract the fabrics rely on
// at the flush seam.
func TestFlowAccumRecordConcurrent(t *testing.T) {
	const workers, goroutines, per = 4, 8, 1000
	a := NewFlowAccum(workers)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Record(g%workers, (g+1)%workers, int64(1+i%7))
			}
		}(g)
	}
	wg.Wait()
	m := a.Matrix()
	if m.Workers != workers {
		t.Fatalf("workers=%d", m.Workers)
	}
	var frames int64
	for _, f := range m.Flows {
		frames += f.Frames
		if f.MaxFrame != 7 {
			t.Errorf("flow %d->%d max_frame=%d, want 7", f.Src, f.Dst, f.MaxFrame)
		}
		if f.Rounds != f.Frames {
			t.Errorf("flow %d->%d rounds=%d frames=%d", f.Src, f.Dst, f.Rounds, f.Frames)
		}
	}
	if want := int64(goroutines * per); frames != want {
		t.Fatalf("total frames=%d, want %d", frames, want)
	}
	// out-of-range endpoints are dropped, not a panic or a stray cell
	a.Record(-1, 0, 10)
	a.Record(0, workers, 10)
	if got := a.Matrix().Flow(0, 0).Bytes; got != 0 {
		t.Fatalf("out-of-range Record leaked into (0,0): %d bytes", got)
	}
}

// The hot-path contract the fabrics rely on: Record never allocates.
func TestFlowAccumRecordZeroAlloc(t *testing.T) {
	a := NewFlowAccum(4)
	if n := testing.AllocsPerRun(1000, func() { a.Record(0, 1, 128) }); n != 0 {
		t.Fatalf("Record allocates %v per call", n)
	}
}

// Merge must add cells, keep the max of maxima, adopt the shipped plane
// once, and append the transport extras — the coordinator's per-partial
// fold.
func TestFlowAccumMerge(t *testing.T) {
	a := NewFlowAccum(2)
	part := &FlowMatrix{
		Plane: "p2p", Workers: 2,
		Flows:  []FlowStat{{Src: 0, Dst: 1, Bytes: 100, Frames: 2, MaxFrame: 70}},
		Conns:  []ConnStat{{LocalLo: 0, LocalHi: 1, PeerLo: 1, PeerHi: 2, Window: 64, StallNS: 5}},
		Relays: []RelayStat{{Lo: 0, Hi: 1, Bytes: 9, Frames: 1}},
	}
	a.Merge(part)
	a.Merge(&FlowMatrix{Plane: "hub", Workers: 2,
		Flows: []FlowStat{{Src: 0, Dst: 1, Bytes: 50, Frames: 1, MaxFrame: 50}}})
	a.Merge(nil) // no-op
	m := a.Matrix()
	f := m.Flow(0, 1)
	if f.Bytes != 150 || f.Frames != 3 || f.MaxFrame != 70 {
		t.Fatalf("merged cell %+v", f)
	}
	if m.Plane != "p2p" {
		t.Fatalf("plane=%q, want first shipped plane to stick", m.Plane)
	}
	if len(m.Conns) != 1 || m.Conns[0].StallNS != 5 {
		t.Fatalf("conns %+v", m.Conns)
	}
	if len(m.Relays) != 1 || m.Relays[0].Bytes != 9 {
		t.Fatalf("relays %+v", m.Relays)
	}
	if got := m.Flow(1, 0); got.Bytes != 0 || got.Src != 1 || got.Dst != 0 {
		t.Fatalf("empty cell lookup %+v", got)
	}
}

// syntheticTrace builds a trace where worker slow spends its time
// computing while everyone else waits at barriers — the straggler
// signature Diagnose must pick up.
func syntheticTrace(workers, steps, slow int) *TraceSnapshot {
	snap := &TraceSnapshot{Workers: workers}
	for s := 1; s <= steps; s++ {
		ts := TraceStep{Superstep: s}
		for w := 0; w < workers; w++ {
			sample := SuperstepSample{Worker: w, Superstep: s, ComputeNS: 1e6, BarrierWaitNS: 9e6}
			if w == slow {
				sample = SuperstepSample{Worker: w, Superstep: s, ComputeNS: 9e6, BarrierWaitNS: 1e6}
			}
			ts.Workers = append(ts.Workers, sample)
		}
		snap.Supersteps = append(snap.Supersteps, ts)
	}
	return snap
}

func TestDiagnoseNamesStragglerAndWindow(t *testing.T) {
	trace := syntheticTrace(4, 10, 2)
	flows := &FlowMatrix{
		Plane: "p2p", Workers: 4,
		Conns: []ConnStat{
			{LocalLo: 0, LocalHi: 2, PeerLo: 2, PeerHi: 4, Window: 64 << 10,
				Bytes: 1 << 20, Frames: 10, StallNS: 50e6, GrantWaitNS: 10e6, Grants: 40},
			{LocalLo: 2, LocalHi: 4, PeerLo: 0, PeerHi: 2, Window: 64 << 10,
				Bytes: 1 << 20, Frames: 10, StallNS: 1e6, Grants: 2},
		},
	}
	rep := Diagnose(trace, flows, RunMetrics{Supersteps: 10, WallNS: 100e6})
	if rep.Healthy {
		t.Fatal("report healthy despite straggler and stalled window")
	}
	if got := rep.Straggler(); got != 2 {
		t.Fatalf("straggler=%d, want 2\nfindings: %+v", got, rep.Findings)
	}
	var window *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Kind == "window_bound" {
			window = &rep.Findings[i]
			break
		}
	}
	if window == nil {
		t.Fatalf("no window_bound finding: %+v", rep.Findings)
	}
	if window.Conn != "w[0-1]->w[2-3]" {
		t.Fatalf("window_bound names %q, want the 50%%-stalled connection w[0-1]->w[2-3]", window.Conn)
	}
	// workers ranked straggler-first
	if len(rep.Workers) != 4 || rep.Workers[0].Worker != 2 {
		t.Fatalf("worker ranking %+v", rep.Workers)
	}
	if rep.Workers[0].Cause != "compute" {
		t.Fatalf("cause=%q, want compute for a compute-dominated straggler", rep.Workers[0].Cause)
	}
	// findings ordered most severe first
	for i := 1; i < len(rep.Findings); i++ {
		rank := map[string]int{"critical": 0, "warn": 1, "info": 2}
		if rank[rep.Findings[i-1].Severity] > rank[rep.Findings[i].Severity] {
			t.Fatalf("findings out of severity order: %+v", rep.Findings)
		}
	}
	if len(rep.Recommendations) == 0 {
		t.Fatal("no recommendations for an unhealthy run")
	}
}

func TestDiagnoseHealthyAndNilInputs(t *testing.T) {
	// balanced run: no findings, healthy
	snap := &TraceSnapshot{Workers: 2}
	for s := 1; s <= 5; s++ {
		snap.Supersteps = append(snap.Supersteps, TraceStep{Superstep: s, Workers: []SuperstepSample{
			{Worker: 0, Superstep: s, ComputeNS: 5e6, BarrierWaitNS: 1e6},
			{Worker: 1, Superstep: s, ComputeNS: 5e6, BarrierWaitNS: 1e6},
		}})
	}
	if rep := Diagnose(snap, nil, RunMetrics{}); !rep.Healthy || len(rep.Findings) != 0 {
		t.Fatalf("balanced run not healthy: %+v", rep.Findings)
	}
	// all-nil inputs: an empty healthy report, not a panic
	if rep := Diagnose(nil, nil, RunMetrics{}); !rep.Healthy || rep.Straggler() != -1 {
		t.Fatalf("nil-input report %+v", rep)
	}
	// truncated trace surfaces as a warn finding
	snap.TruncatedSamples = 7
	rep := Diagnose(snap, nil, RunMetrics{})
	if rep.Healthy || len(rep.Findings) != 1 || rep.Findings[0].Kind != "trace_truncated" {
		t.Fatalf("truncation finding missing: healthy=%v findings=%+v", rep.Healthy, rep.Findings)
	}
}
