package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/barrier"
	"repro/internal/partition"
	"repro/internal/ser"
)

// Failure-injection tests: the engine must fail loudly (never deadlock)
// when a channel misbehaves.

// stuckChannel asks for another exchange round forever.
type stuckChannel struct{}

func (stuckChannel) Initialize()                        {}
func (stuckChannel) AfterCompute()                      {}
func (stuckChannel) Serialize(dst int, b *ser.Buffer)   {}
func (stuckChannel) Deserialize(src int, b *ser.Buffer) {}
func (stuckChannel) Again() bool                        { return true }

func TestEngineStuckChannelAborts(t *testing.T) {
	part := partition.MustHash(4, 2)
	_, err := Run(Config{Part: part, MaxRoundsPerStep: 50}, func(w *Worker) {
		w.Register(stuckChannel{})
		w.Compute = func(li int) { w.VoteToHalt() }
	})
	if err == nil || !strings.Contains(err.Error(), "MaxRoundsPerStep") {
		t.Fatalf("expected MaxRoundsPerStep error, got %v", err)
	}
}

// Asymmetric setup failure: one worker errors before the first barrier.
// The failed worker must abort the shared barrier so its peers return
// instead of deadlocking, and Run must surface the root cause (not the
// peers' abort echoes).
func TestEngineAsymmetricSetupFailureAborts(t *testing.T) {
	part := partition.MustHash(4, 2)
	met, err := Run(Config{Part: part}, func(w *Worker) {
		w.Register(nullChannel{})
		if w.WorkerID() != 1 {
			w.Compute = func(li int) { w.VoteToHalt() }
		}
	})
	if err == nil || !strings.Contains(err.Error(), "worker 1: setup did not install Compute") {
		t.Fatalf("expected worker 1 setup error, got %v", err)
	}
	if strings.Contains(err.Error(), "aborted") {
		t.Errorf("abort echo leaked into the joined error: %v", err)
	}
	if met.Supersteps != 0 {
		t.Errorf("supersteps=%d want 0 (minimum reached)", met.Supersteps)
	}
}

// Symmetric failure: every worker hits the superstep cap. The joined
// error must surface the cause once, not once per worker.
func TestEngineSymmetricErrorDedup(t *testing.T) {
	part := partition.MustHash(4, 2)
	_, err := Run(Config{Part: part, MaxSupersteps: 3}, func(w *Worker) {
		w.Register(nullChannel{})
		w.Compute = func(li int) {} // stay active forever
	})
	if err == nil {
		t.Fatal("expected MaxSupersteps error")
	}
	if got := strings.Count(err.Error(), "MaxSupersteps"); got != 1 {
		t.Errorf("cause appears %d times, want 1: %v", got, err)
	}
}

// chattyChannel sends garbage addressed to a channel id that exists, to
// verify framing dispatch stays aligned when another channel writes
// nothing.
type chattyChannel struct {
	w    *Worker
	id   int
	seen int
}

func (c *chattyChannel) Initialize()   {}
func (c *chattyChannel) AfterCompute() {}
func (c *chattyChannel) Serialize(dst int, b *ser.Buffer) {
	if c.w.Superstep() == 1 {
		b.WriteUint32(0xABCD)
	}
}
func (c *chattyChannel) Deserialize(src int, b *ser.Buffer) {
	if b.ReadUint32() == 0xABCD {
		c.seen++
	}
}
func (c *chattyChannel) Again() bool { return false }

func TestEngineFrameDispatchWithSilentSibling(t *testing.T) {
	part := partition.MustHash(4, 2)
	seen := make([]int, 2)
	_, err := Run(Config{Part: part}, func(w *Worker) {
		w.Register(nullChannel{}) // writes nothing, gets no frames
		c := &chattyChannel{w: w}
		c.id = w.Register(c)
		w.Compute = func(li int) {
			seen[w.WorkerID()] = c.seen
			if w.Superstep() >= 2 {
				w.VoteToHalt()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// each worker received one frame from each of the 2 workers
	for wk, s := range seen {
		if s != 2 {
			t.Errorf("worker %d dispatched %d frames, want 2", wk, s)
		}
	}
}

// panicky compute should surface as a panic (documented behaviour), not
// a deadlock — validate via recover in a wrapper goroutine is not
// possible across goroutines, so instead verify a channel that
// deactivates a vertex during deserialize keeps counts consistent.
type deactivatingChannel struct {
	w *Worker
}

func (c *deactivatingChannel) Initialize()   {}
func (c *deactivatingChannel) AfterCompute() {}
func (c *deactivatingChannel) Serialize(dst int, b *ser.Buffer) {
	if c.w.Superstep() == 1 && dst == c.w.WorkerID() {
		b.WriteUint8(1)
	}
}
func (c *deactivatingChannel) Deserialize(src int, b *ser.Buffer) {
	_ = b.ReadUint8()
	// activate then deactivate the same vertex: net zero
	if c.w.LocalCount() > 0 {
		c.w.ActivateLocal(0)
		c.w.DeactivateLocal(0)
		c.w.ActivateLocal(0)
	}
}
func (c *deactivatingChannel) Again() bool { return false }

func TestEngineActivationCountsStayConsistent(t *testing.T) {
	part := partition.MustHash(6, 3)
	met, err := Run(Config{Part: part}, func(w *Worker) {
		c := &deactivatingChannel{w: w}
		w.Register(c)
		w.Compute = func(li int) { w.VoteToHalt() }
	})
	if err != nil {
		t.Fatal(err)
	}
	// superstep 1: all halt, but local vertex 0 on each worker is
	// re-activated by the loopback frame; superstep 2: they halt again.
	if met.Supersteps != 2 {
		t.Errorf("supersteps=%d want 2", met.Supersteps)
	}
}

// Cancellation mid-run: closing Config.Cancel must unwind every worker
// through the aborted barrier and surface barrier.ErrCancelled, not a
// deadlock and not a worker failure.
func TestEngineCancelMidRun(t *testing.T) {
	part := partition.MustHash(8, 4)
	cancel := make(chan struct{})
	fired := false
	_, err := Run(Config{Part: part, Cancel: cancel, MaxSupersteps: 1 << 30}, func(w *Worker) {
		w.Register(nullChannel{})
		w.Compute = func(li int) {
			// stay active forever; worker 0 pulls the plug at step 100
			if w.WorkerID() == 0 && li == 0 && w.Superstep() == 100 && !fired {
				fired = true
				close(cancel)
			}
		}
	})
	if !errors.Is(err, barrier.ErrCancelled) {
		t.Fatalf("expected ErrCancelled, got %v", err)
	}
}

// A cancel channel that never fires must not alter a successful run.
func TestEngineCancelUnfired(t *testing.T) {
	part := partition.MustHash(4, 2)
	cancel := make(chan struct{})
	defer close(cancel)
	met, err := Run(Config{Part: part, Cancel: cancel}, func(w *Worker) {
		w.Register(nullChannel{})
		w.Compute = func(li int) { w.VoteToHalt() }
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Supersteps != 1 {
		t.Errorf("supersteps=%d want 1", met.Supersteps)
	}
}

// A real worker error racing a cancellation must win: the root cause is
// the failure, not the cancel.
func TestEngineCancelAfterFailureKeepsRootCause(t *testing.T) {
	part := partition.MustHash(4, 2)
	cancel := make(chan struct{})
	close(cancel) // fires immediately, together with the setup failure
	_, err := Run(Config{Part: part, Cancel: cancel}, func(w *Worker) {
		w.Register(nullChannel{})
		// no Compute installed: every worker fails in setup
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "setup did not install Compute") && !errors.Is(err, barrier.ErrCancelled) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEngineIsActiveLocal(t *testing.T) {
	part := partition.MustHash(2, 1)
	_, err := Run(Config{Part: part}, func(w *Worker) {
		w.Register(nullChannel{})
		w.Compute = func(li int) {
			if !w.IsActiveLocal(li) {
				t.Errorf("computing vertex reported inactive")
			}
			w.VoteToHalt()
			if w.IsActiveLocal(li) {
				t.Errorf("voted vertex reported active")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
