package engine

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/barrier"
	"repro/internal/comm"
	"repro/internal/netcomm"
	"repro/internal/partition"
	"repro/internal/ser"
)

// The failure-injection tests of failure_test.go pin the in-process
// fabric's semantics; this file replays the same scenarios on the
// socket fabric (hub + one client per worker, in-process over TCP
// loopback) and requires identical outcomes: the joined error a
// coordinator assembles from the per-process Runs must match what the
// shared-memory Run reports.

// fabricCase runs a scenario on one fabric arrangement and returns the
// coordinator-view error.
type fabricCase struct {
	name string
	run  func(t *testing.T, cfg Config, setup func(*Worker)) error
}

func bothFabrics() []fabricCase {
	return []fabricCase{
		{"inproc", func(t *testing.T, cfg Config, setup func(*Worker)) error {
			_, err := Run(cfg, setup)
			return err
		}},
		{"socket", func(t *testing.T, cfg Config, setup func(*Worker)) error {
			m := cfg.Part.NumWorkers()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			hub := netcomm.NewHub(m, comm.CostModel{}, ln)
			defer hub.Close()
			clients := make([]*netcomm.Client, m)
			for i := 0; i < m; i++ {
				if clients[i], err = netcomm.Dial("tcp", ln.Addr().String(), i, i, m); err != nil {
					t.Fatal(err)
				}
				defer clients[i].Close()
			}
			if err := hub.WaitJoined(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			errs := make([]error, m)
			var wg sync.WaitGroup
			for i := 0; i < m; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					c := cfg
					c.Fabric = clients[i]
					_, errs[i] = Run(c, setup)
				}(i)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("socket-fabric workers hung")
			}
			// coordinator view: join per-process errors, dropping echoes;
			// like the engines, substitute the cancel sentinel when it is
			// among the causes
			joined := barrier.JoinErrors(errs)
			if joined == nil {
				for _, e := range errs {
					if errors.Is(e, barrier.ErrCancelled) {
						return barrier.ErrCancelled
					}
				}
			}
			return joined
		}},
	}
}

// A channel that never stops asking for rounds must trip
// MaxRoundsPerStep on every fabric.
func TestBothFabricsStuckChannelAborts(t *testing.T) {
	for _, fc := range bothFabrics() {
		t.Run(fc.name, func(t *testing.T) {
			part := partition.MustHash(4, 2)
			err := fc.run(t, Config{Part: part, MaxRoundsPerStep: 50}, func(w *Worker) {
				w.Register(stuckChannel{})
				w.Compute = func(li int) { w.VoteToHalt() }
			})
			if err == nil || !strings.Contains(err.Error(), "MaxRoundsPerStep") {
				t.Fatalf("expected MaxRoundsPerStep error, got %v", err)
			}
		})
	}
}

// An asymmetric setup failure must abort the peers and surface only the
// root cause, with no abort echoes in the joined error.
func TestBothFabricsAsymmetricSetupFailure(t *testing.T) {
	for _, fc := range bothFabrics() {
		t.Run(fc.name, func(t *testing.T) {
			part := partition.MustHash(4, 2)
			err := fc.run(t, Config{Part: part}, func(w *Worker) {
				w.Register(nullChannel{})
				if w.WorkerID() != 1 {
					w.Compute = func(li int) { w.VoteToHalt() }
				}
			})
			if err == nil || !strings.Contains(err.Error(), "worker 1: setup did not install Compute") {
				t.Fatalf("expected worker 1 setup error, got %v", err)
			}
			if strings.Contains(err.Error(), "aborted") {
				t.Errorf("abort echo leaked into the joined error: %v", err)
			}
		})
	}
}

// A symmetric failure (superstep cap) must surface once, not once per
// worker or process.
func TestBothFabricsSymmetricErrorDedup(t *testing.T) {
	for _, fc := range bothFabrics() {
		t.Run(fc.name, func(t *testing.T) {
			part := partition.MustHash(4, 2)
			err := fc.run(t, Config{Part: part, MaxSupersteps: 3}, func(w *Worker) {
				w.Register(nullChannel{})
				w.Compute = func(li int) {} // stay active forever
			})
			if err == nil {
				t.Fatal("expected MaxSupersteps error")
			}
			if got := strings.Count(err.Error(), "MaxSupersteps"); got != 1 {
				t.Errorf("cause appears %d times, want 1: %v", got, err)
			}
		})
	}
}

// Cancellation mid-run must unwind every worker on every fabric and
// surface ErrCancelled. On the socket fabric the cancel lands on one
// process's Config and propagates to the rest over the control
// connection.
func TestBothFabricsCancelMidRun(t *testing.T) {
	for _, fc := range bothFabrics() {
		t.Run(fc.name, func(t *testing.T) {
			part := partition.MustHash(8, 4)
			cancel := make(chan struct{})
			var once sync.Once
			err := fc.run(t, Config{Part: part, Cancel: cancel, MaxSupersteps: 1 << 30}, func(w *Worker) {
				w.Register(nullChannel{})
				w.Compute = func(li int) {
					if w.WorkerID() == 0 && li == 0 && w.Superstep() == 100 {
						once.Do(func() { close(cancel) })
					}
				}
			})
			if !errors.Is(err, barrier.ErrCancelled) {
				t.Fatalf("expected ErrCancelled, got %v", err)
			}
		})
	}
}

// A healthy run must terminate identically on both fabrics (vote-halt
// with cross-worker reactivation traffic).
func TestBothFabricsHealthyTermination(t *testing.T) {
	for _, fc := range bothFabrics() {
		t.Run(fc.name, func(t *testing.T) {
			part := partition.MustHash(6, 3)
			err := fc.run(t, Config{Part: part}, func(w *Worker) {
				c := &deactivatingChannel{w: w}
				w.Register(c)
				w.Compute = func(li int) { w.VoteToHalt() }
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// overreadChannel writes a 1-byte frame but reads 4 bytes back: the
// decode panic on the short payload must surface as a worker error
// ("corrupt frame content"), never crash the process.
type overreadChannel struct{}

func (overreadChannel) Initialize()                      {}
func (overreadChannel) AfterCompute()                    {}
func (overreadChannel) Serialize(dst int, b *ser.Buffer) { b.WriteUint8(1) }
func (overreadChannel) Deserialize(src int, b *ser.Buffer) {
	_ = b.ReadUint32() // reads past the 1-byte payload
}
func (overreadChannel) Again() bool { return false }

func TestBothFabricsCorruptPayloadFailsNotPanics(t *testing.T) {
	for _, fc := range bothFabrics() {
		t.Run(fc.name, func(t *testing.T) {
			part := partition.MustHash(4, 2)
			err := fc.run(t, Config{Part: part}, func(w *Worker) {
				w.Register(overreadChannel{})
				w.Compute = func(li int) { w.VoteToHalt() }
			})
			if err == nil || !strings.Contains(err.Error(), "corrupt frame content") {
				t.Fatalf("expected corrupt-frame error, got %v", err)
			}
		})
	}
}
