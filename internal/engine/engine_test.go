package engine

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/ser"
)

// nullChannel sends nothing; used to exercise the framing with inactive
// channels.
type nullChannel struct{}

func (nullChannel) Initialize()                        {}
func (nullChannel) AfterCompute()                      {}
func (nullChannel) Serialize(dst int, b *ser.Buffer)   {}
func (nullChannel) Deserialize(src int, b *ser.Buffer) {}
func (nullChannel) Again() bool                        { return false }

// ringChannel forwards one uint32 token to the next vertex id each
// superstep (a minimal hand-rolled message channel for engine testing).
type ringChannel struct {
	w   *Worker
	out []struct {
		dst uint32
		val uint32
	}
	in      []uint32
	inEpoch []int32
}

func newRingChannel(w *Worker) *ringChannel {
	c := &ringChannel{w: w}
	w.Register(c)
	return c
}

func (c *ringChannel) Initialize() {
	c.in = make([]uint32, c.w.LocalCount())
	c.inEpoch = make([]int32, c.w.LocalCount())
}

func (c *ringChannel) AfterCompute() {}

func (c *ringChannel) send(dst uint32, v uint32) {
	c.out = append(c.out, struct{ dst, val uint32 }{dst, v})
}

func (c *ringChannel) recv(li int) (uint32, bool) {
	if c.inEpoch[li] == int32(c.w.Superstep()-1) {
		return c.in[li], true
	}
	return 0, false
}

func (c *ringChannel) Serialize(dst int, b *ser.Buffer) {
	kept := c.out[:0]
	for _, m := range c.out {
		if c.w.Owner(m.dst) == dst {
			b.WriteUint32(m.dst)
			b.WriteUint32(m.val)
		} else {
			kept = append(kept, m)
		}
	}
	c.out = kept
}

func (c *ringChannel) Deserialize(src int, b *ser.Buffer) {
	for b.Remaining() > 0 {
		dst := b.ReadUint32()
		val := b.ReadUint32()
		li := c.w.LocalIndex(dst)
		c.in[li] = val
		c.inEpoch[li] = int32(c.w.Superstep())
		c.w.ActivateLocal(li)
	}
}

func (c *ringChannel) Again() bool { return false }

func TestEngineTokenRing(t *testing.T) {
	const n = 12
	part := partition.MustHash(n, 3)
	finals := make([][]uint32, 3)
	met, err := Run(Config{Part: part}, func(w *Worker) {
		vals := make([]uint32, w.LocalCount())
		finals[w.WorkerID()] = vals
		ch := newRingChannel(w)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				if id == 0 {
					ch.send((id+1)%n, 1)
				}
				w.VoteToHalt()
				return
			}
			if v, ok := ch.recv(li); ok {
				vals[li] = v
				if v < n {
					ch.send((id+1)%n, v+1)
				}
			}
			w.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// token visited every vertex once: vertex k (k>=1) saw k
	for k := 1; k < n; k++ {
		wk := part.Owner(uint32(k))
		li := part.LocalIndex(uint32(k))
		if finals[wk][li] != uint32(k) {
			t.Errorf("vertex %d saw %d", k, finals[wk][li])
		}
	}
	if met.Supersteps < n {
		t.Errorf("supersteps=%d want >= %d", met.Supersteps, n)
	}
	if met.Comm.NetworkBytes == 0 {
		t.Errorf("no network bytes recorded")
	}
}

func TestEngineImmediateHalt(t *testing.T) {
	part := partition.MustHash(10, 2)
	met, err := Run(Config{Part: part}, func(w *Worker) {
		newRingChannel(w)
		w.Compute = func(li int) { w.VoteToHalt() }
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Supersteps != 1 {
		t.Errorf("supersteps=%d want 1", met.Supersteps)
	}
}

func TestEngineRequestStop(t *testing.T) {
	part := partition.MustHash(10, 2)
	met, err := Run(Config{Part: part}, func(w *Worker) {
		newRingChannel(w)
		w.Compute = func(li int) {
			if w.Superstep() == 3 {
				w.RequestStop()
			}
			// never vote: without RequestStop this would hit MaxSupersteps
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Supersteps != 3 {
		t.Errorf("supersteps=%d want 3", met.Supersteps)
	}
}

func TestEngineMaxSupersteps(t *testing.T) {
	part := partition.MustHash(4, 2)
	_, err := Run(Config{Part: part, MaxSupersteps: 5}, func(w *Worker) {
		newRingChannel(w)
		w.Compute = func(li int) { /* never halts */ }
	})
	if err == nil || !strings.Contains(err.Error(), "MaxSupersteps") {
		t.Fatalf("expected MaxSupersteps error, got %v", err)
	}
}

func TestEngineMissingCompute(t *testing.T) {
	part := partition.MustHash(4, 1)
	_, err := Run(Config{Part: part}, func(w *Worker) {})
	if err == nil || !strings.Contains(err.Error(), "Compute") {
		t.Fatalf("expected setup error, got %v", err)
	}
}

func TestEngineMissingPart(t *testing.T) {
	_, err := Run(Config{}, func(w *Worker) {})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestEngineEmptyWorker(t *testing.T) {
	// 3 workers, 2 vertices: one worker owns nothing and must still
	// participate in every barrier.
	part := partition.MustHash(2, 3)
	met, err := Run(Config{Part: part}, func(w *Worker) {
		ch := newRingChannel(w)
		w.Compute = func(li int) {
			if w.Superstep() == 1 && w.GlobalID(li) == 0 {
				ch.send(1, 42)
			}
			w.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Supersteps != 2 {
		t.Errorf("supersteps=%d", met.Supersteps)
	}
}

func TestEngineSingleWorker(t *testing.T) {
	part := partition.MustHash(5, 1)
	got := 0
	met, err := Run(Config{Part: part}, func(w *Worker) {
		ch := newRingChannel(w)
		w.Compute = func(li int) {
			if w.Superstep() == 1 && w.GlobalID(li) == 0 {
				ch.send(3, 7) // loopback message
			}
			if v, ok := ch.recv(li); ok {
				got = int(v)
			}
			w.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("loopback value %d", got)
	}
	s := met.Comm
	if s.LocalBytes == 0 || s.NetworkBytes != 0 {
		t.Errorf("loopback accounting: local=%d net=%d", s.LocalBytes, s.NetworkBytes)
	}
}

func TestEngineVoteWakeSemantics(t *testing.T) {
	// vertex 1 halts at superstep 1 but is woken by a message at 2
	part := partition.MustHash(2, 2)
	woke := false
	_, err := Run(Config{Part: part}, func(w *Worker) {
		ch := newRingChannel(w)
		w.Compute = func(li int) {
			id := w.GlobalID(li)
			if w.Superstep() == 1 {
				if id == 0 {
					ch.send(1, 5)
				}
				w.VoteToHalt()
				return
			}
			if id == 1 {
				if _, ok := ch.recv(li); ok {
					woke = true
				}
			}
			w.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Error("halted vertex was not woken by message")
	}
}

func TestEngineNullChannelsOnly(t *testing.T) {
	part := partition.MustHash(6, 2)
	met, err := Run(Config{Part: part}, func(w *Worker) {
		w.Register(nullChannel{})
		w.Register(nullChannel{})
		w.Compute = func(li int) { w.VoteToHalt() }
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Comm.NetworkBytes != 0 {
		t.Errorf("null channels sent %d bytes", met.Comm.NetworkBytes)
	}
	if met.Comm.Rounds == 0 {
		t.Errorf("expected at least one round")
	}
}

func TestMetricsSimTime(t *testing.T) {
	m := Metrics{}
	m.WallTime = 5
	m.Comm.SimNetTime = 7
	if m.SimTime() != 12 {
		t.Errorf("SimTime=%v", m.SimTime())
	}
}
