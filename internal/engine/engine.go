// Package engine implements the channel-based BSP runtime — the system
// the paper proposes. A Job runs M workers (goroutines standing in for
// cluster nodes), each owning a disjoint set of vertices. Computation
// proceeds in supersteps; within a superstep, after the per-vertex
// compute calls, the registered channels run one or more buffer-exchange
// rounds (paper Fig. 4) until no channel on any worker asks for another
// round. Channels are the only communication mechanism; the engine knows
// nothing about message semantics.
//
// Config.Observer is the telemetry seam: when set, every worker emits
// one obs.SuperstepSample per superstep — compute time, barrier-wait
// time, active vertices, exchange rounds, and bytes/frames counted at
// the engine's own serialize/deserialize points (per channel and in
// total), so the sample stream is identical whichever comm.Fabric
// carried the bytes. A nil observer keeps the hot loops free of
// collection work.
//
// Config.Checkpoint is the fault-tolerance seam (threaded through the
// same config path as Cancel/Fabric/Observer): when active, each worker
// cuts a ckpt.Record at the barrier-aligned point after AfterCompute and
// before the superstep's first exchange round, tees the raw incoming
// frames of every round into it, and persists it before crossing the
// superstep's termination AllReduce — so a checkpoint is either durable
// on every worker or ignored on every worker. Algorithms contribute
// their per-vertex state through Worker.Checkpoint save/restore
// closures; restore replays the saved rounds through the normal decode
// path, making a resumed run bit-identical to an undisturbed one.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/barrier"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/ser"
)

// Channel is the interface every communication channel implements — the
// Go rendering of the paper's base class (Fig. 3): initialize(),
// serialize(), deserialize(), again(). AfterCompute is an explicit hook
// the C++ system hides inside its superstep driver; channels use it to
// retire the inbox the vertices just consumed and to stage the outbox.
type Channel interface {
	// Initialize is called once on every worker before superstep 1.
	Initialize()
	// AfterCompute is called after the worker finishes its local compute
	// calls, before the first exchange round of the superstep.
	AfterCompute()
	// Serialize appends this channel's outgoing data for worker dst to
	// buf. It is called once per destination per round while the channel
	// is active, in increasing dst order (dst == own worker id is the
	// local loopback).
	Serialize(dst int, buf *ser.Buffer)
	// Deserialize consumes one frame previously written by this
	// channel on worker src.
	Deserialize(src int, buf *ser.Buffer)
	// Again is called exactly once per exchange round on every
	// registered channel (active or not) after all Deserialize calls;
	// returning true requests another round (paper: again()).
	Again() bool
}

// StatefulChannel is the optional interface a channel implements when it
// carries state across supersteps that a replay cannot reconstruct
// (registered topology, handshake tables, pending request lists).
// SaveState is called at the checkpoint cut (after AfterCompute, before
// the first exchange round); RestoreState is called after Initialize on
// a restoring worker, before the cut superstep's rounds are replayed.
// Channels whose cross-superstep state is rebuilt by replaying the cut
// superstep's incoming frames (inbox slots, aggregator results) need not
// implement it.
type StatefulChannel interface {
	Channel
	SaveState(buf *ser.Buffer)
	RestoreState(buf *ser.Buffer)
}

// Config configures a Job.
type Config struct {
	Part *partition.Partition
	// Frags, if set, gives every worker a shared-nothing pre-resolved
	// fragment (exposed as Worker.Frag) so neighbor iteration and channel
	// sends never consult the global graph or partition. When Part is nil
	// it is taken from Frags.
	Frags *frag.Fragments
	Cost  comm.CostModel
	// Fabric is the transport the job's workers exchange buffers and
	// synchronize through. Nil selects the in-process zero-copy fabric
	// over all Part.NumWorkers() workers. A distributed fabric
	// (internal/netcomm) may host only a subset of the workers in this
	// process: Run then executes exactly the fabric's local workers and
	// relies on the fabric's barrier to synchronize with the rest of the
	// party in other processes.
	Fabric comm.Fabric
	// MaxSupersteps aborts runaway jobs; 0 means 10_000.
	MaxSupersteps int
	// MaxRoundsPerStep aborts a superstep whose channels never stop
	// asking for another exchange round (a buggy Again implementation);
	// 0 means 1_000_000.
	MaxRoundsPerStep int
	// Cancel, if non-nil, aborts the run when closed: the shared
	// barrier is released, workers unwind, and Run returns
	// barrier.ErrCancelled (unless a worker failed for a real reason
	// first, which wins).
	Cancel <-chan struct{}
	// Observer, if non-nil, receives one obs.SuperstepSample per
	// (worker, superstep): compute time, barrier-wait time, per-channel
	// bytes/frames in both directions, active-vertex count and exchange
	// rounds. Counting happens at the engine's serialize/deserialize
	// points, so samples are identical whichever fabric carried the
	// bytes. Nil disables all collection; the superstep loop then pays
	// only a per-phase nil check.
	Observer obs.Observer
	// Checkpoint, if non-nil with a store, snapshots every worker's
	// state at the barrier-aligned cut every Interval supersteps and, on
	// Restore > 0, resumes from the saved superstep instead of starting
	// fresh. The algorithm must register Save/Restore closures via
	// Worker.Checkpoint. Nil keeps the superstep loop checkpoint-free.
	Checkpoint *ckpt.Hook
	// Flows, if non-nil, attaches a per-(src,dst) flow-matrix
	// accumulator to the in-process fabric Run creates when Fabric is
	// nil. Callers supplying their own Fabric attach flows to it
	// directly (comm.Exchanger.SetFlows, netcomm.Config.Flows); this
	// field is then ignored.
	Flows *obs.FlowAccum
}

// Metrics summarizes a finished run. RunTime is the measured wall time
// of the in-process simulation; SimTime adds the simulated network time
// from the cost model, which is the number comparable to the paper's
// distributed runtimes.
type Metrics struct {
	Supersteps int
	Comm       comm.Stats
	WallTime   time.Duration
}

// SimTime returns wall time plus simulated network time.
func (m Metrics) SimTime() time.Duration { return m.WallTime + m.Comm.SimNetTime }

// Worker is the per-node runtime handle. Algorithms receive one Worker
// in their setup function, register channels on it, allocate per-worker
// vertex state (slices indexed by local index), and install Compute.
type Worker struct {
	id   int
	part *partition.Partition
	frag *frag.Fragment
	job  *job
	ep   comm.Endpoint

	channels []Channel
	chActive []bool

	active      []bool
	activeCount int
	current     int
	superstep   int
	halt        bool // RequestStop was called on this worker

	// Compute is invoked once per active local vertex per superstep
	// with the vertex's local index. Installed by the algorithm's setup
	// function.
	Compute func(li int)

	// checkpoint closures (Worker.Checkpoint) and the record being
	// assembled while the cut superstep's exchange rounds run.
	ckptSave    func(buf *ser.Buffer)
	ckptRestore func(buf *ser.Buffer)
	ckptRec     *ckpt.Record

	// superstep trace collection (Config.Observer); obsOn gates every
	// trace statement so the disabled path costs one branch per phase.
	obsOn  bool
	obsSmp obs.SuperstepSample
	obsCh  []obs.ChannelSample
}

// WorkerID returns this worker's id in [0, NumWorkers).
func (w *Worker) WorkerID() int { return w.id }

// NumWorkers returns the number of workers in the job.
func (w *Worker) NumWorkers() int { return w.part.NumWorkers() }

// NumVertices returns the total number of vertices in the graph.
func (w *Worker) NumVertices() int { return w.part.NumVertices() }

// LocalCount returns the number of vertices owned by this worker.
func (w *Worker) LocalCount() int { return w.part.LocalCount(w.id) }

// GlobalID returns the vertex id at local index li.
func (w *Worker) GlobalID(li int) graph.VertexID { return w.part.GlobalID(w.id, li) }

// Owner returns the worker owning vertex v. Transitional accessor: hot
// superstep loops should iterate Frag().Neighbors and pass packed
// addresses instead.
func (w *Worker) Owner(v graph.VertexID) int { return w.part.Owner(v) }

// LocalIndex returns v's local index on its owner. Transitional
// accessor: hot superstep loops should consume packed addresses.
func (w *Worker) LocalIndex(v graph.VertexID) int { return w.part.LocalIndex(v) }

// Addr returns v's packed pre-resolved address. Use it to resolve
// occasional dynamic destinations (e.g. a pointer fetched from a
// message); static adjacency comes pre-resolved from Frag().
func (w *Worker) Addr(v graph.VertexID) frag.Addr { return frag.Of(w.part, v) }

// Frag returns this worker's shared-nothing fragment, or nil when the
// job was configured without fragments (Config.Frags).
func (w *Worker) Frag() *frag.Fragment { return w.frag }

// Part returns the partition.
func (w *Worker) Part() *partition.Partition { return w.part }

// Superstep returns the current superstep number, starting at 1
// (paper: step_num()).
func (w *Worker) Superstep() int { return w.superstep }

// CurrentLocal returns the local index of the vertex whose Compute call
// is in progress. Channels use it to attribute sends and edge
// registrations to the calling vertex (paper: the implicit "this vertex"
// of the channel APIs).
func (w *Worker) CurrentLocal() int { return w.current }

// VoteToHalt deactivates the vertex currently computing. It is
// reactivated when a channel delivers it a message.
func (w *Worker) VoteToHalt() { w.DeactivateLocal(w.current) }

// DeactivateLocal halts the vertex at local index li.
func (w *Worker) DeactivateLocal(li int) {
	if w.active[li] {
		w.active[li] = false
		w.activeCount--
	}
}

// ActivateLocal wakes the vertex at local index li. Channels call this
// on message delivery; it takes effect at the next superstep.
func (w *Worker) ActivateLocal(li int) {
	if !w.active[li] {
		w.active[li] = true
		w.activeCount++
	}
}

// IsActiveLocal reports whether local vertex li is currently active.
func (w *Worker) IsActiveLocal(li int) bool { return w.active[li] }

// Checkpoint registers the algorithm's state closures: save appends the
// per-worker vertex state (local order) to the buffer, restore reads the
// same encoding back into the already-allocated state. Both run at the
// barrier-aligned cut point, so they see state exactly as it stands
// between compute and the exchange rounds. Required when
// Config.Checkpoint has a store; a no-op otherwise.
func (w *Worker) Checkpoint(save, restore func(buf *ser.Buffer)) {
	w.ckptSave, w.ckptRestore = save, restore
}

// Register adds a channel to the worker and returns its channel id.
// All workers must register the same channels in the same order.
func (w *Worker) Register(c Channel) int {
	w.channels = append(w.channels, c)
	w.chActive = append(w.chActive, false)
	return len(w.channels) - 1
}

// job is the per-Run coordination state shared by this process's
// workers. All cross-worker communication goes through the fabric and
// its barrier: nothing here is read by another worker.
type job struct {
	cfg Config
	fab comm.Fabric
	bar barrier.Barrier
}

// errAborted is the sentinel a worker returns when it stopped because a
// peer aborted the shared barrier; Run filters it out of the joined
// error so only root causes surface.
var errAborted = barrier.ErrAborted

// haltStop is the termination-reduce bit a worker adds when its
// algorithm called RequestStop. Active vertex counts occupy the low 48
// bits (their global sum is bounded by the vertex count, far below
// 2^48); halt votes sum in the high bits without overflow because the
// party is capped at 65535 workers.
const haltStop = uint64(1) << 48

// RequestStop asks the engine to terminate after the current superstep,
// regardless of remaining active vertices. Any worker may call it during
// compute (e.g. when an aggregator shows convergence).
func (w *Worker) RequestStop() { w.halt = true }

// Run executes a job. setup is called once per worker, concurrently,
// before superstep 1; it must register the same channel sequence on
// every worker and install w.Compute. Run returns when no vertex is
// active on any worker, when a worker calls RequestStop, or when
// MaxSupersteps is hit (which is reported as an error). With a
// distributed fabric hosting a subset of the workers, Run executes that
// subset and its Metrics cover this process's view (cumulative for the
// fabric when one fabric is shared across several Runs).
func Run(cfg Config, setup func(w *Worker)) (Metrics, error) {
	if cfg.Part == nil && cfg.Frags != nil {
		cfg.Part = cfg.Frags.Part
	}
	if cfg.Part == nil {
		return Metrics{}, fmt.Errorf("engine: Config.Part or Config.Frags is required")
	}
	if cfg.Frags != nil && cfg.Frags.Part != cfg.Part {
		// packed addresses resolved under a different partition would
		// silently deliver messages to the wrong vertices
		return Metrics{}, fmt.Errorf("engine: Config.Frags was built from a different partition than Config.Part")
	}
	maxSteps := cfg.MaxSupersteps
	if maxSteps == 0 {
		maxSteps = 10000
	}
	m := cfg.Part.NumWorkers()
	fab := cfg.Fabric
	if fab == nil {
		ip := comm.NewInProc(m, cfg.Cost)
		if cfg.Flows != nil {
			cfg.Flows.SetPlane("inproc")
			ip.Exchanger().SetFlows(cfg.Flows)
		}
		fab = ip
	}
	if fab.NumWorkers() != m {
		return Metrics{}, fmt.Errorf("engine: fabric has %d workers, partition has %d", fab.NumWorkers(), m)
	}
	j := &job{cfg: cfg, fab: fab, bar: fab.Barrier()}
	locals := fab.LocalWorkers()
	workers := make([]*Worker, len(locals))
	for i, id := range locals {
		workers[i] = &Worker{id: id, part: cfg.Part, job: j, current: -1, ep: fab.Endpoint(id)}
		if cfg.Frags != nil {
			workers[i].frag = cfg.Frags.Frag(id)
		}
	}

	start := time.Now()
	cancelled := barrier.WatchCancel(cfg.Cancel, j.bar)
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = workers[i].run(setup, maxSteps)
		}(i)
	}
	wg.Wait()

	// Report the minimum superstep any local worker reached: when a
	// worker fails, the supersteps its peers were mid-way through never
	// completed their exchanges, so the minimum is the only count that
	// was globally finished.
	minStep := workers[0].superstep
	for _, w := range workers[1:] {
		if w.superstep < minStep {
			minStep = w.superstep
		}
	}
	met := Metrics{
		Supersteps: minStep,
		Comm:       fab.Stats(),
		WallTime:   time.Since(start),
	}
	err := barrier.JoinErrors(errs)
	if cancelled() && err == nil {
		// all workers unwound through the aborted barrier (their abort
		// echoes were filtered): the cancellation is the root cause
		err = barrier.ErrCancelled
	} else if err == nil && j.bar.Aborted() {
		// every local error was an abort echo: the root cause lives in
		// another process. Surface the abort instead of claiming success;
		// the coordinator filters it against the real error.
		err = errAborted
	}
	return met, err
}

// deserializeFrom dispatches the frames worker src sent this round.
// Buffers that arrived over a socket are untrusted: the envelope layer
// returns errors (NextUvarint/NextFrame) and the recover turns a
// panicking decode inside a channel's Deserialize — corrupt payload
// content the channel reads past — into a worker error, so a bad frame
// fails the job with a diagnostic instead of killing the process (and
// every co-hosted worker with it).
func (w *Worker) deserializeFrom(src int, sub *ser.Buffer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: worker %d: corrupt frame content from worker %d: %v", w.id, src, r)
		}
	}()
	in := w.ep.In(src)
	if w.ckptRec != nil {
		// checkpoint tee: retain this round's raw incoming bytes
		// (loopback included) before any decode consumes them, so a
		// restore can replay the round without the fabric.
		w.ckptRec.Frames = append(w.ckptRec.Frames, append([]byte(nil), in.Unread()...))
	}
	if w.obsOn {
		w.obsSmp.BytesRecv += int64(in.Remaining())
	}
	return w.dispatchFrames(src, in, sub, true)
}

// dispatchFrames decodes one source's frame stream — the shared tail of
// the live receive path and the checkpoint replay path.
func (w *Worker) dispatchFrames(src int, in, sub *ser.Buffer, count bool) error {
	for in.Remaining() > 0 {
		ci64, err := in.NextUvarint()
		if err != nil {
			return fmt.Errorf("engine: worker %d: bad frame stream from worker %d: %w", w.id, src, err)
		}
		ci := int(ci64)
		if ci < 0 || ci >= len(w.channels) {
			return fmt.Errorf("engine: worker %d: bad channel id %d from worker %d", w.id, ci, src)
		}
		if err := in.NextFrame(sub); err != nil {
			return fmt.Errorf("engine: worker %d: bad frame from worker %d: %w", w.id, src, err)
		}
		if count && w.obsOn {
			w.obsSmp.FramesRecv++
			w.obsCh[ci].BytesRecv += int64(sub.Remaining())
			w.obsCh[ci].FramesRecv++
		}
		w.channels[ci].Deserialize(src, sub)
	}
	return nil
}

// run executes the worker loop; a worker that fails aborts the shared
// barrier so its peers return (with errAborted) instead of deadlocking
// on a synchronization point the failed worker will never reach.
func (w *Worker) run(setup func(w *Worker), maxSteps int) error {
	err := w.runSupersteps(setup, maxSteps)
	if err != nil && !errors.Is(err, errAborted) {
		w.job.bar.Abort()
	}
	return err
}

func (w *Worker) runSupersteps(setup func(w *Worker), maxSteps int) error {
	j := w.job
	m := w.NumWorkers()
	ep := w.ep

	// Per-worker setup: allocate state, register channels, set Compute.
	setup(w)
	if w.Compute == nil {
		return fmt.Errorf("engine: worker %d: setup did not install Compute", w.id)
	}
	ck := j.cfg.Checkpoint
	if ck.Active() && (w.ckptSave == nil || w.ckptRestore == nil) {
		return fmt.Errorf("engine: worker %d: Config.Checkpoint is set but setup registered no Checkpoint closures", w.id)
	}
	// All vertices start active (paper Fig. 4 line 3).
	w.active = make([]bool, w.LocalCount())
	for i := range w.active {
		w.active[i] = true
	}
	w.activeCount = len(w.active)

	if !j.bar.Wait() { // all workers finished setup (registration complete)
		return errAborted
	}
	for _, c := range w.channels {
		c.Initialize()
	}
	if !j.bar.Wait() {
		return errAborted
	}
	w.obsOn = j.cfg.Observer != nil
	if w.obsOn {
		w.obsCh = make([]obs.ChannelSample, len(w.channels))
	}

	// sub is the one reusable frame view of this worker's receive loop;
	// NextFrame re-points it at each incoming frame body, so the
	// steady-state decode path performs no allocation.
	var sub ser.Buffer

	if ck.Active() && ck.Restore > 0 {
		done, rerr := w.restoreCheckpoint(ck, m)
		if rerr != nil {
			return fmt.Errorf("engine: worker %d: restore checkpoint %d: %w", w.id, ck.Restore, rerr)
		}
		if done {
			// the restored superstep was the job's last: its termination
			// reduce, re-crossed above, said stop
			return nil
		}
	}

	for {
		w.superstep++
		if w.superstep > maxSteps {
			return fmt.Errorf("engine: exceeded MaxSupersteps=%d", maxSteps)
		}

		var stepStart time.Time
		if w.obsOn {
			w.obsSmp = obs.SuperstepSample{Worker: w.id, Superstep: w.superstep,
				ActiveVertices: int64(w.activeCount)}
			for i := range w.obsCh {
				w.obsCh[i] = obs.ChannelSample{}
			}
			stepStart = time.Now()
		}

		// Compute phase: every active local vertex.
		for li := 0; li < len(w.active); li++ {
			if w.active[li] {
				w.current = li
				w.Compute(li)
			}
		}
		w.current = -1
		for _, c := range w.channels {
			c.AfterCompute()
		}
		if w.obsOn {
			w.obsSmp.ComputeNS = time.Since(stepStart).Nanoseconds()
		}

		// Checkpoint cut: all workers sit between compute and the first
		// exchange round of the same superstep (the previous barrier
		// crossing aligned them), so the snapshot plus the superstep's
		// teed incoming frames form a globally consistent cut. The probe
		// fires here either way — the deterministic fault-injection point.
		ck.FireProbe(w.id, w.superstep)
		if ck.ShouldSave(w.superstep) {
			w.ckptRec = w.snapshotCut()
		}

		// Exchange rounds (paper Fig. 4 lines 6-14). Every superstep has
		// at least one round; rounds continue while any channel on any
		// worker asks again. Two barrier crossings per round: the plain
		// wait after Flush proves all sends are published, and the
		// AllReduce that carries the again-flags also proves all inputs
		// were consumed, which makes Release safe.
		for ci := range w.chActive {
			w.chActive[ci] = true
		}
		maxRounds := j.cfg.MaxRoundsPerStep
		if maxRounds == 0 {
			maxRounds = 1_000_000
		}
		round := 0
		for {
			round++
			if round > maxRounds {
				return fmt.Errorf("engine: superstep %d exceeded MaxRoundsPerStep=%d", w.superstep, maxRounds)
			}
			for ci, c := range w.channels {
				if !w.chActive[ci] {
					continue
				}
				for dst := 0; dst < m; dst++ {
					buf := ep.Out(dst)
					mark := buf.Len()
					buf.WriteUvarint(uint64(ci))
					frame := buf.BeginFrame()
					c.Serialize(dst, buf)
					buf.EndFrame(frame)
					if buf.Len() == frame+4 {
						buf.Truncate(mark) // nothing written: drop the empty frame
					} else if w.obsOn {
						w.obsSmp.BytesSent += int64(buf.Len() - mark)
						w.obsSmp.FramesSent++
						w.obsCh[ci].BytesSent += int64(buf.Len() - (frame + 4))
						w.obsCh[ci].FramesSent++
					}
				}
			}
			var stall0 time.Duration
			if w.obsOn {
				stall0 = ep.Stall()
			}
			if err := ep.Flush(); err != nil {
				return fmt.Errorf("engine: worker %d: %w", w.id, err)
			}
			if w.obsOn {
				w.obsSmp.SendStallNS += int64(ep.Stall() - stall0)
			}
			if !w.timedWait() { // serialize barrier: all sends published
				return errAborted
			}

			for src := 0; src < m; src++ {
				if err := w.deserializeFrom(src, &sub); err != nil {
					return err
				}
			}
			any := uint64(0)
			for ci, c := range w.channels {
				w.chActive[ci] = c.Again()
				if w.chActive[ci] {
					any = 1
				}
			}
			global, ok := w.timedAllReduce(any)
			if !ok { // deserialize crossing: inputs consumed, flags reduced
				return errAborted
			}
			ep.Release()
			if global == 0 {
				break
			}
		}
		if w.obsOn {
			w.obsSmp.Rounds = round
		}

		// Publish the checkpoint before the termination reduce: crossing
		// that barrier is every worker's proof that all peers' records
		// for this superstep are durable, so LatestComplete can trust any
		// superstep the job moved past.
		if w.ckptRec != nil {
			w.ckptRec.Rounds = round
			buf := ser.NewBuffer(4096)
			w.ckptRec.Encode(buf)
			perr := ck.Store.Put(ck.Job, w.superstep, w.id, buf.Bytes())
			w.ckptRec = nil
			if perr != nil {
				return fmt.Errorf("engine: worker %d: checkpoint superstep %d: %w", w.id, w.superstep, perr)
			}
			ck.AfterSave(w.superstep)
		}

		// Global termination check: one reduce carries every worker's
		// active count plus its RequestStop vote.
		v := uint64(w.activeCount)
		if w.halt {
			v += haltStop
		}
		sum, ok := w.timedAllReduce(v)
		if !ok {
			return errAborted
		}
		if w.obsOn {
			w.obsSmp.Channels = append([]obs.ChannelSample(nil), w.obsCh...)
			j.cfg.Observer.ObserveSuperstep(w.obsSmp)
		}
		if sum&(haltStop-1) == 0 || sum >= haltStop {
			return nil
		}
	}
}

// timedWait crosses the shared barrier, attributing the blocked time to
// the current sample when observation is on.
func (w *Worker) timedWait() bool {
	if !w.obsOn {
		return w.job.bar.Wait()
	}
	t0 := time.Now()
	ok := w.job.bar.Wait()
	w.obsSmp.BarrierWaitNS += time.Since(t0).Nanoseconds()
	return ok
}

// timedAllReduce mirrors timedWait for the reducing crossings.
func (w *Worker) timedAllReduce(v uint64) (uint64, bool) {
	if !w.obsOn {
		return w.job.bar.AllReduce(v)
	}
	t0 := time.Now()
	sum, ok := w.job.bar.AllReduce(v)
	w.obsSmp.BarrierWaitNS += time.Since(t0).Nanoseconds()
	return sum, ok
}
