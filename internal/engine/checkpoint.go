package engine

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/ser"
)

// snapshotCut captures this worker's state at the checkpoint cut point:
// superstep, halt vote, active bitmap, the algorithm's vertex state
// (Save closure) and every stateful channel's private state. The cut
// superstep's incoming frames are teed into the record as its exchange
// rounds run; Put happens after the last round, before the termination
// reduce.
func (w *Worker) snapshotCut() *ckpt.Record {
	rec := &ckpt.Record{
		Superstep: w.superstep,
		Halt:      w.halt,
		Active:    append([]bool(nil), w.active...),
	}
	buf := ser.NewBuffer(4096)
	w.ckptSave(buf)
	rec.Algo = append([]byte(nil), buf.Bytes()...)
	rec.Channels = make([][]byte, len(w.channels))
	for ci, c := range w.channels {
		if sc, ok := c.(StatefulChannel); ok {
			buf.Reset()
			sc.SaveState(buf)
			rec.Channels[ci] = append([]byte(nil), buf.Bytes()...)
		}
	}
	return rec
}

// restoreCheckpoint loads this worker's record for hook.Restore, applies
// it, replays the cut superstep's exchange rounds locally, and re-crosses
// the superstep's termination reduce so all restoring workers re-enter
// the main loop on one consistent barrier generation. It reports whether
// the reduce said the job is already finished (the cut superstep was the
// last one — possible when a worker died after the checkpoint but before
// its result shipped).
func (w *Worker) restoreCheckpoint(hook *ckpt.Hook, m int) (done bool, err error) {
	data, err := hook.Store.Get(hook.Job, hook.Restore, w.id)
	if err != nil {
		return false, err
	}
	rec, err := ckpt.Decode(data)
	if err != nil {
		return false, err
	}
	if rec.Superstep != hook.Restore {
		return false, fmt.Errorf("record is for superstep %d", rec.Superstep)
	}
	if len(rec.Active) != w.LocalCount() || len(rec.Channels) != len(w.channels) ||
		len(rec.Engine) != 0 || len(rec.Frames) != rec.Rounds*m {
		return false, fmt.Errorf("record does not match job shape (%d vertices, %d channels, %d frames/%d rounds)",
			len(rec.Active), len(rec.Channels), len(rec.Frames), rec.Rounds)
	}
	if err := w.applyAndReplay(rec, m); err != nil {
		return false, err
	}
	v := uint64(w.activeCount)
	if w.halt {
		v += haltStop
	}
	sum, ok := w.timedAllReduce(v)
	if !ok {
		return false, errAborted
	}
	return sum&(haltStop-1) == 0 || sum >= haltStop, nil
}

// applyAndReplay installs the record's state and replays the cut
// superstep's exchange rounds fully locally: each round serializes into
// a discard buffer (draining the staged outboxes exactly as the live
// round did) and then feeds the saved incoming frames through the normal
// per-channel deserialize path. The record crossed disk and process
// boundaries, so decode panics on hostile content surface as errors.
func (w *Worker) applyAndReplay(rec *ckpt.Record, m int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("corrupt checkpoint state: %v", r)
		}
	}()
	w.superstep = rec.Superstep
	w.halt = rec.Halt
	copy(w.active, rec.Active)
	w.activeCount = 0
	for _, a := range w.active {
		if a {
			w.activeCount++
		}
	}
	w.ckptRestore(ser.FromBytes(rec.Algo))
	for ci, c := range w.channels {
		if sc, ok := c.(StatefulChannel); ok {
			sc.RestoreState(ser.FromBytes(rec.Channels[ci]))
		} else if len(rec.Channels[ci]) != 0 {
			return fmt.Errorf("record carries state for stateless channel %d", ci)
		}
	}

	for ci := range w.chActive {
		w.chActive[ci] = true
	}
	scratch := ser.NewBuffer(4096)
	var sub ser.Buffer
	for r := 0; r < rec.Rounds; r++ {
		for ci, c := range w.channels {
			if !w.chActive[ci] {
				continue
			}
			for dst := 0; dst < m; dst++ {
				scratch.Reset()
				c.Serialize(dst, scratch)
			}
		}
		for src := 0; src < m; src++ {
			in := ser.FromBytes(rec.Frames[r*m+src])
			if derr := w.dispatchFrames(src, in, &sub, false); derr != nil {
				return derr
			}
		}
		for ci, c := range w.channels {
			w.chActive[ci] = c.Again()
		}
	}
	return nil
}
