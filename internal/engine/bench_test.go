package engine

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/ser"
)

// exchangeChannel is a minimal channel that pushes a fixed volume of
// (localIndex, value) traffic to every peer each superstep, isolating
// the engine's exchange fabric (serialize, barrier crossings, frame
// decode, deserialize) from algorithm work.
type exchangeChannel struct {
	w     *Worker
	pairs int
	got   uint64
}

func (c *exchangeChannel) Initialize()   {}
func (c *exchangeChannel) AfterCompute() {}
func (c *exchangeChannel) Serialize(dst int, buf *ser.Buffer) {
	buf.WriteUvarint(uint64(c.pairs))
	for i := 0; i < c.pairs; i++ {
		buf.WriteUvarint(uint64(i))
		buf.WriteUint32(uint32(i))
	}
}
func (c *exchangeChannel) Deserialize(src int, buf *ser.Buffer) {
	n := int(buf.ReadUvarint())
	for i := 0; i < n; i++ {
		li := buf.ReadUvarint()
		v := buf.ReadUint32()
		c.got += li + uint64(v)
	}
}
func (c *exchangeChannel) Again() bool { return false }

// BenchmarkSteadyStateExchange runs one job for b.N supersteps with 64
// value pairs flowing between every worker pair per superstep. With the
// dense fabric, the steady-state receive loop is allocation-free: the
// only allocations are one-time setup, amortized over b.N supersteps,
// so allocs/op reported here must stay ~0.
func BenchmarkSteadyStateExchange(b *testing.B) {
	part := partition.MustHash(1024, 4)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := Run(Config{Part: part, MaxSupersteps: b.N + 1}, func(w *Worker) {
		c := &exchangeChannel{w: w, pairs: 64}
		w.Register(c)
		w.Compute = func(li int) {
			if w.Superstep() >= b.N {
				w.VoteToHalt()
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestSteadyStateExchangeZeroAlloc pins the allocation-free claim: the
// amortized per-superstep allocation count of the exchange path must
// stay below one (setup allocations divided by the superstep count).
func TestSteadyStateExchangeZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	res := testing.Benchmark(BenchmarkSteadyStateExchange)
	if res.N < 100 {
		// the harness ran too few iterations to amortize setup; a slow
		// or instrumented build (e.g. -race) — don't assert on noise
		t.Skipf("only %d iterations, setup not amortized", res.N)
	}
	if a := res.AllocsPerOp(); a > 1 {
		t.Errorf("steady-state exchange allocates %d allocs/superstep, want <= 1", a)
	}
}
