package seq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if !uf.Union(0, 1) {
		t.Error("first union failed")
	}
	if uf.Union(1, 0) {
		t.Error("repeat union succeeded")
	}
	uf.Union(2, 3)
	if uf.Find(0) != uf.Find(1) || uf.Find(2) != uf.Find(3) {
		t.Error("find inconsistent")
	}
	if uf.Find(0) == uf.Find(2) {
		t.Error("separate sets merged")
	}
	if uf.Find(4) != 4 {
		t.Error("singleton moved")
	}
}

func TestConnectedComponentsSmall(t *testing.T) {
	// components {0,1,2}, {3,4}, {5}
	g := graph.FromEdges(6, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}}, false)
	cc := ConnectedComponents(g)
	want := []graph.VertexID{0, 0, 0, 3, 3, 5}
	for i := range want {
		if cc[i] != want[i] {
			t.Errorf("cc[%d]=%d want %d", i, cc[i], want[i])
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := graph.RMAT(7, 4, 1, graph.RMATOptions{})
	pr := PageRank(g, 20)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pagerank sum=%v", sum)
	}
}

func TestPageRankStar(t *testing.T) {
	// hub 0 pointed to by 1..4: hub must outrank leaves
	edges := []graph.Edge{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0}, {Src: 4, Dst: 0}}
	g := graph.FromEdges(5, edges, false)
	pr := PageRank(g, 30)
	for i := 1; i < 5; i++ {
		if pr[0] <= pr[i] {
			t.Errorf("hub rank %v <= leaf rank %v", pr[0], pr[i])
		}
	}
}

func TestDijkstraLine(t *testing.T) {
	// 0 -2-> 1 -3-> 2, plus shortcut 0 -10-> 2
	edges := []graph.Edge{{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 2, Weight: 3}, {Src: 0, Dst: 2, Weight: 10}}
	g := graph.FromEdges(4, edges, true)
	d := Dijkstra(g, 0)
	if d[0] != 0 || d[1] != 2 || d[2] != 5 {
		t.Errorf("distances %v", d[:3])
	}
	if d[3] != math.MaxInt64 {
		t.Errorf("unreachable distance %d", d[3])
	}
}

func TestSCCSmall(t *testing.T) {
	// cycle 0-1-2, cycle 3-4, vertex 5 bridging
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 3},
		{Src: 2, Dst: 3}, {Src: 4, Dst: 5},
	}
	g := graph.FromEdges(6, edges, false)
	scc := SCC(g)
	want := []graph.VertexID{0, 0, 0, 3, 3, 5}
	for i := range want {
		if scc[i] != want[i] {
			t.Errorf("scc[%d]=%d want %d", i, scc[i], want[i])
		}
	}
}

// brute-force SCC by reachability for cross-checking Tarjan
func bruteSCC(g *graph.Graph) []graph.VertexID {
	n := g.NumVertices()
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		stack := []graph.VertexID{graph.VertexID(s)}
		reach[s][s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if !reach[s][v] {
					reach[s][v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	out := make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		min := graph.VertexID(v)
		for u := 0; u < n; u++ {
			if reach[v][u] && reach[u][v] && graph.VertexID(u) < min {
				min = graph.VertexID(u)
			}
		}
		out[v] = min
	}
	return out
}

func TestSCCAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := rng.Intn(3 * n)
		g := graph.RandomDigraph(n, m, seed)
		got := SCC(g)
		want := bruteSCC(g)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMSFWeightTriangle(t *testing.T) {
	// triangle with weights 1,2,3: MST takes 1+2
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 0, Weight: 1},
		{Src: 1, Dst: 2, Weight: 2}, {Src: 2, Dst: 1, Weight: 2},
		{Src: 0, Dst: 2, Weight: 3}, {Src: 2, Dst: 0, Weight: 3},
	}
	g := graph.FromEdges(3, edges, true)
	w, cnt := MSFWeight(g)
	if w != 3 || cnt != 2 {
		t.Errorf("msf weight=%d count=%d", w, cnt)
	}
}

func TestMSFWeightForest(t *testing.T) {
	// two disjoint edges
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Weight: 5}, {Src: 1, Dst: 0, Weight: 5},
		{Src: 2, Dst: 3, Weight: 7}, {Src: 3, Dst: 2, Weight: 7},
	}
	g := graph.FromEdges(5, edges, true)
	w, cnt := MSFWeight(g)
	if w != 12 || cnt != 2 {
		t.Errorf("msf weight=%d count=%d", w, cnt)
	}
}

func TestTreeRoots(t *testing.T) {
	g := graph.RandomTree(300, 5)
	roots := TreeRoots(g)
	for i, r := range roots {
		if r != 0 {
			t.Errorf("vertex %d root %d", i, r)
		}
	}
	f := graph.Forest(120, 4, 9)
	roots = TreeRoots(f)
	for i := 4; i < 120; i++ {
		if int(roots[i]) != (i-4)%4 {
			t.Errorf("forest vertex %d root %d", i, roots[i])
		}
	}
}

func TestTreeRootsChain(t *testing.T) {
	g := graph.Chain(1000)
	roots := TreeRoots(g)
	for i, r := range roots {
		if r != 0 {
			t.Fatalf("chain vertex %d root %d", i, r)
		}
	}
}
