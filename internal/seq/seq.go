// Package seq provides single-threaded reference implementations used as
// oracles by the test suite: every distributed algorithm in
// internal/algorithms is checked against the corresponding sequential
// result on randomly generated graphs.
package seq

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/graph"
)

// ConnectedComponents returns, for every vertex, the smallest vertex ID
// in its (weakly) connected component. Edges are treated as undirected.
func ConnectedComponents(g *graph.Graph) []graph.VertexID {
	n := g.NumVertices()
	uf := NewUnionFind(n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			uf.Union(u, int(v))
		}
	}
	// min id per component
	minID := make([]graph.VertexID, n)
	for i := range minID {
		minID[i] = math.MaxUint32
	}
	for v := 0; v < n; v++ {
		r := uf.Find(v)
		if graph.VertexID(v) < minID[r] {
			minID[r] = graph.VertexID(v)
		}
	}
	out := make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		out[v] = minID[uf.Find(v)]
	}
	return out
}

// UnionFind is a classic disjoint-set structure with path compression
// and union by size.
type UnionFind struct {
	parent []int32
	size   []int32
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	r := int32(x)
	for uf.parent[r] != r {
		uf.parent[r] = uf.parent[uf.parent[r]]
		r = uf.parent[r]
	}
	return int(r)
}

// Union merges the sets of a and b and reports whether they were
// distinct.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
	uf.size[ra] += uf.size[rb]
	return true
}

// PageRank runs the paper's PageRank formulation sequentially: damping
// 0.85, uniform 0.15/N teleport, dead-end mass redistributed uniformly
// through a sink term, for the given number of iterations.
func PageRank(g *graph.Graph, iterations int) []float64 {
	n := g.NumVertices()
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		sink := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			d := g.OutDegree(graph.VertexID(u))
			if d == 0 {
				sink += pr[u]
				continue
			}
			share := pr[u] / float64(d)
			for _, v := range g.Neighbors(graph.VertexID(u)) {
				next[v] += share
			}
		}
		s := sink / float64(n)
		for i := range next {
			next[i] = 0.15/float64(n) + 0.85*(next[i]+s)
		}
		pr, next = next, pr
	}
	return pr
}

// Dijkstra returns the shortest distance from src to every vertex
// (math.MaxInt64 for unreachable vertices). Weights must be
// non-negative.
func Dijkstra(g *graph.Graph, src graph.VertexID) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = math.MaxInt64
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		ws := g.NeighborWeights(it.v)
		for i, v := range g.Neighbors(it.v) {
			nd := it.d + int64(ws[i])
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, distItem{v: v, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v graph.VertexID
	d int64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SCC returns, for every vertex, the smallest vertex ID in its strongly
// connected component, computed with Tarjan's algorithm (iterative).
func SCC(g *graph.Graph) []graph.VertexID {
	n := g.NumVertices()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]graph.VertexID, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int32
	next := int32(0)

	type frame struct {
		v  int32
		ei uint64
	}
	var callStack []frame

	for s := 0; s < n; s++ {
		if index[s] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{v: int32(s)})
		index[s] = next
		low[s] = next
		next++
		stack = append(stack, int32(s))
		onStack[s] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			u := f.v
			adv := false
			for f.ei < g.Offsets[u+1]-g.Offsets[u] {
				v := int32(g.Adj[g.Offsets[u]+f.ei])
				f.ei++
				if index[v] == unvisited {
					index[v] = next
					low[v] = next
					next++
					stack = append(stack, v)
					onStack[v] = true
					callStack = append(callStack, frame{v: v})
					adv = true
					break
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
			}
			if adv {
				continue
			}
			// u finished
			if low[u] == index[u] {
				// pop component, label with min id
				minID := graph.VertexID(math.MaxUint32)
				top := len(stack)
				i := top
				for {
					i--
					w := stack[i]
					if graph.VertexID(w) < minID {
						minID = graph.VertexID(w)
					}
					if w == u {
						break
					}
				}
				for j := i; j < top; j++ {
					w := stack[j]
					onStack[w] = false
					comp[w] = minID
				}
				stack = stack[:i]
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
		}
	}
	return comp
}

// MSFWeight returns the total weight of a minimum spanning forest of the
// undirected weighted graph g (Kruskal), along with the number of
// forest edges.
func MSFWeight(g *graph.Graph) (int64, int) {
	type we struct {
		w    int32
		u, v graph.VertexID
	}
	edges := make([]we, 0, g.NumEdges()/2)
	for u := 0; u < g.NumVertices(); u++ {
		ws := g.NeighborWeights(graph.VertexID(u))
		for i, v := range g.Neighbors(graph.VertexID(u)) {
			if graph.VertexID(u) < v { // each undirected edge once
				edges = append(edges, we{w: ws[i], u: graph.VertexID(u), v: v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	uf := NewUnionFind(g.NumVertices())
	var total int64
	count := 0
	for _, e := range edges {
		if uf.Union(int(e.u), int(e.v)) {
			total += int64(e.w)
			count++
		}
	}
	return total, count
}

// TreeRoots returns, for a parent-pointer forest (each vertex has out-
// degree <= 1 pointing to its parent; roots have out-degree 0 or a
// self-loop), the root of every vertex.
func TreeRoots(g *graph.Graph) []graph.VertexID {
	n := g.NumVertices()
	roots := make([]graph.VertexID, n)
	state := make([]uint8, n) // 0 unvisited, 1 in progress, 2 done
	var path []graph.VertexID
	for s := 0; s < n; s++ {
		if state[s] == 2 {
			continue
		}
		path = path[:0]
		u := graph.VertexID(s)
		for {
			if state[u] == 2 {
				break
			}
			state[u] = 1
			nbrs := g.Neighbors(u)
			if len(nbrs) == 0 || nbrs[0] == u {
				roots[u] = u
				state[u] = 2
				break
			}
			path = append(path, u)
			u = nbrs[0]
			if state[u] == 1 {
				panic("seq: cycle in parent-pointer forest")
			}
		}
		r := roots[u]
		for _, v := range path {
			roots[v] = r
			state[v] = 2
		}
	}
	return roots
}
