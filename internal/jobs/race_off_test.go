//go:build !race

package jobs_test

// raceEnabled reports whether the race detector is compiled in; the
// window-bound diagnosis assertion is relaxed under -race because the
// detector's ~10x compute slowdown genuinely moves the bottleneck off
// the network window.
const raceEnabled = false
