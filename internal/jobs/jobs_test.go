package jobs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/catalog"
	"repro/internal/live"
	"repro/internal/seq"
)

func newTestManager(t *testing.T, workers int, opts ...Option) (*catalog.Catalog, *Manager) {
	t.Helper()
	cat := catalog.New(4, 0)
	for _, spec := range []catalog.Spec{
		{Name: "social", Gen: "social:scale=7,ef=3,seed=9"},
		{Name: "grid", Gen: "grid:rows=6,cols=7,maxw=30,seed=2"},
		{Name: "chain", Gen: "chain:n=50"},
	} {
		if err := cat.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	m := NewManager(cat, workers, opts...)
	t.Cleanup(m.Close)
	return cat, m
}

func waitTerminal(t *testing.T, m *Manager, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Snapshot{}
}

func TestSubmitValidation(t *testing.T) {
	_, m := newTestManager(t, 1)
	cases := []struct {
		req  Request
		want string
	}{
		{Request{Algorithm: "nope", Dataset: "social"}, "unknown algorithm"},
		{Request{Algorithm: "wcc", Engine: "gpu", Dataset: "social"}, "unknown engine"},
		{Request{Algorithm: "wcc", Variant: "warp", Dataset: "social"}, "no variant"},
		{Request{Algorithm: "wcc", Dataset: "nope"}, "unknown dataset"},
		// propagation exists on channel but not on pregel
		{Request{Algorithm: "wcc", Engine: "pregel", Variant: "propagation", Dataset: "social"}, "no variant"},
	}
	for _, c := range cases {
		if _, err := m.Submit(c.req); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Submit(%+v): err=%v, want %q", c.req, err, c.want)
		}
	}
}

func TestJobLifecycleAndResult(t *testing.T) {
	cat, m := newTestManager(t, 2)
	snap, err := m.Submit(Request{Algorithm: "sssp", Engine: "pregel", Dataset: "grid",
		Params: algorithms.Params{Source: 3}})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state=%s err=%s", final.State, final.Error)
	}
	if final.Metrics == nil || final.Metrics.Engine != algorithms.EnginePregel || final.Metrics.Supersteps == 0 {
		t.Fatalf("bad metrics %+v", final.Metrics)
	}
	res, err := m.Result(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := cat.Get("grid")
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Dijkstra(entry.Graph, 3)
	for i := range want {
		if res.Dists[i] != want[i] {
			t.Fatalf("dist[%d]=%d want %d", i, res.Dists[i], want[i])
		}
	}
}

func TestJobFailsOnBadInput(t *testing.T) {
	_, m := newTestManager(t, 1)
	// sssp on an unweighted dataset must fail, not panic
	snap, err := m.Submit(Request{Algorithm: "sssp", Dataset: "social"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "unweighted") {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}
	if _, err := m.Result(snap.ID); err == nil {
		t.Fatal("Result of failed job should error")
	}

	// out-of-range source
	snap2, err := m.Submit(Request{Algorithm: "sssp", Dataset: "grid",
		Params: algorithms.Params{Source: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, m, snap2.ID); final.State != StateFailed ||
		!strings.Contains(final.Error, "out of range") {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}
}

func TestCancelPending(t *testing.T) {
	// one worker busy with a slow-ish job; the queued one is cancellable
	_, m := newTestManager(t, 1)
	var first Snapshot
	var err error
	first, err = m.Submit(Request{Algorithm: "pagerank", Dataset: "social",
		Params: algorithms.Params{Iterations: 50}})
	if err != nil {
		t.Fatal(err)
	}
	queued := make([]Snapshot, 0, 8)
	for i := 0; i < 8; i++ {
		s, err := m.Submit(Request{Algorithm: "pagerank", Dataset: "social",
			Params: algorithms.Params{Iterations: 50}})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, s)
	}
	// cancel the last queued job; with one worker it cannot have started
	last := queued[len(queued)-1]
	if err := m.Cancel(last.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if snap, _ := m.Get(last.ID); snap.State != StateCancelled {
		t.Fatalf("state=%s want cancelled", snap.State)
	}
	if err := m.Cancel(last.ID); err == nil {
		t.Fatal("double cancel should error")
	}
	waitTerminal(t, m, first.ID)
	for _, s := range queued[:len(queued)-1] {
		if final := waitTerminal(t, m, s.ID); final.State != StateDone {
			t.Fatalf("job %s: %s", s.ID, final.State)
		}
	}
	st := m.Stats()
	if st.Cancelled != 1 || st.Done != 8 || st.Submitted != 9 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCancelFreesQueueSlot(t *testing.T) {
	_, m := newTestManager(t, 1, WithQueueDepth(2))
	heavy := Request{Algorithm: "pagerank", Dataset: "social",
		Params: algorithms.Params{Iterations: 300}}
	var accepted []Snapshot
	queueFilled := false
	for i := 0; i < 10; i++ {
		s, err := m.Submit(heavy)
		if err != nil {
			if !strings.Contains(err.Error(), "queue full") {
				t.Fatalf("unexpected submit error: %v", err)
			}
			queueFilled = true
			break
		}
		accepted = append(accepted, s)
	}
	if !queueFilled {
		t.Fatal("queue never filled")
	}
	// cancel one still-pending job; its slot must free immediately
	cancelled := ""
	for i := len(accepted) - 1; i >= 0; i-- {
		if err := m.Cancel(accepted[i].ID); err == nil {
			cancelled = accepted[i].ID
			break
		}
	}
	if cancelled == "" {
		t.Fatal("no cancellable job found")
	}
	if _, err := m.Submit(heavy); err != nil {
		t.Fatalf("submit after cancel should reuse the freed slot: %v", err)
	}
}

func TestRetentionEvictsOldJobs(t *testing.T) {
	_, m := newTestManager(t, 2, WithRetention(3))
	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		s, err := m.Submit(Request{Algorithm: "pointerjump", Dataset: "chain"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
		waitTerminal(t, m, s.ID)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest job should be evicted")
	}
	if _, ok := m.Get(ids[5]); !ok {
		t.Fatal("newest job should be retained")
	}
	if got := len(m.List()); got != 3 {
		t.Fatalf("retained %d jobs, want 3", got)
	}
	if st := m.Stats(); st.Evicted != 3 {
		t.Fatalf("evicted=%d", st.Evicted)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	_, m := newTestManager(t, 1)
	m.Close()
	if _, err := m.Submit(Request{Algorithm: "wcc", Dataset: "social"}); err == nil {
		t.Fatal("submit after close should error")
	}
}

// Placement selection through the job API: both placements run on the
// catalog's fragment views, produce identical results, and the metrics
// report the placement name and its edge cut (smaller under greedy on a
// grid).
func TestPlacementSelectionAndEdgeCutMetric(t *testing.T) {
	_, m := newTestManager(t, 1)
	if _, err := m.Submit(Request{Algorithm: "wcc", Dataset: "grid", Placement: "metis"}); err == nil ||
		!strings.Contains(err.Error(), "unknown placement") {
		t.Fatalf("bad placement: err=%v", err)
	}
	run := func(placement string) Snapshot {
		snap, err := m.Submit(Request{Algorithm: "wcc", Dataset: "grid", Placement: placement})
		if err != nil {
			t.Fatal(err)
		}
		snap = waitTerminal(t, m, snap.ID)
		if snap.State != StateDone {
			t.Fatalf("placement %q: state %s (%s)", placement, snap.State, snap.Error)
		}
		return snap
	}
	hash := run("hash")
	greedy := run("greedy")
	if hash.Metrics.Placement != "hash" || greedy.Metrics.Placement != "greedy" {
		t.Fatalf("metrics placements: %q, %q", hash.Metrics.Placement, greedy.Metrics.Placement)
	}
	if hash.Metrics.EdgeCut <= 0 {
		t.Fatalf("hash edge cut not reported: %v", hash.Metrics.EdgeCut)
	}
	if greedy.Metrics.EdgeCut >= hash.Metrics.EdgeCut {
		t.Fatalf("greedy cut %.3f not below hash cut %.3f", greedy.Metrics.EdgeCut, hash.Metrics.EdgeCut)
	}
	rh, err := m.Result(hash.ID)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := m.Result(greedy.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rh.Labels {
		if rh.Labels[i] != rg.Labels[i] {
			t.Fatalf("vertex %d: labels differ across placements", i)
		}
	}
}

// Cancelling a running job aborts it through the engines' barrier path
// and lands it in the cancelled state with no result.
func TestCancelRunning(t *testing.T) {
	_, m := newTestManager(t, 1)
	snap, err := m.Submit(Request{Algorithm: "pagerank", Dataset: "social",
		Params: algorithms.Params{Iterations: 150000}, MaxSupersteps: 200001})
	if err != nil {
		t.Fatal(err)
	}
	// wait for the pool worker to pick it up
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, _ := m.Get(snap.ID)
		if s.State == StateRunning {
			break
		}
		if s.State.Terminal() {
			t.Fatalf("job finished before it could be cancelled: %+v", s)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(snap.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	if err := m.Cancel(snap.ID); err != nil && !strings.Contains(err.Error(), "already") {
		// a second cancel while still running is a no-op; once terminal
		// it reports the state
		t.Fatalf("second cancel: %v", err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateCancelled {
		t.Fatalf("state %s (%s), want cancelled", final.State, final.Error)
	}
	if _, err := m.Result(snap.ID); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("result of cancelled job: %v", err)
	}
	// the pool worker is free again
	snap2, err := m.Submit(Request{Algorithm: "wcc", Dataset: "social"})
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, snap2.ID); s.State != StateDone {
		t.Fatalf("follow-up job: %s (%s)", s.State, s.Error)
	}
}

// Jobs on a live dataset pin one epoch for the whole run and stamp it
// into their metrics.
func TestLiveDatasetJobPinsEpoch(t *testing.T) {
	cat, m := newTestManager(t, 2)
	if err := cat.Register(catalog.Spec{Name: "feed", Gen: "rmat:scale=7,ef=4,seed=3", Mutable: true}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cat.Close)
	entry, err := cat.Get("feed")
	if err != nil {
		t.Fatal(err)
	}
	lg := entry.Live()
	if lg == nil {
		t.Fatal("mutable dataset has no live graph")
	}
	if err := lg.Apply(live.Batch{Ops: []live.Op{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}}}); err != nil {
		t.Fatal(err)
	}
	lg.CompactNow()

	snap, err := m.Submit(Request{Algorithm: "wcc", Dataset: "feed"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateDone {
		t.Fatalf("%s (%s)", final.State, final.Error)
	}
	if final.Metrics.Epoch != 2 {
		t.Fatalf("metrics epoch %d, want 2", final.Metrics.Epoch)
	}
	// static datasets report no epoch
	snap2, _ := m.Submit(Request{Algorithm: "wcc", Dataset: "social"})
	if s := waitTerminal(t, m, snap2.ID); s.Metrics.Epoch != 0 {
		t.Fatalf("static dataset epoch %d, want 0", s.Metrics.Epoch)
	}
}
