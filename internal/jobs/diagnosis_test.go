package jobs_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/catalog"
	"repro/internal/jobs"
	"repro/internal/netcomm"
	"repro/internal/obs"
	"repro/internal/workerproc"
)

// testDiagnosisNamesStraggler injects a deterministic 30ms-per-superstep
// "slow" fault into one worker and asserts the diagnosis endpoint blames
// exactly that worker, with the flow matrix carrying the plane's
// transport extras.
func testDiagnosisNamesStraggler(t *testing.T, plane string) {
	const slowWorker = 2
	mgr, _ := distributedManager(t, 4, nil,
		jobs.WithDataPlane(plane, 0),
		jobs.WithFault(&workerproc.FaultSpec{Kind: "slow", Worker: slowWorker, Superstep: 1}))
	snap, err := mgr.Submit(jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat",
		Params: algorithms.Params{Iterations: 20}, MaxSupersteps: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if final := awaitTerminal(t, mgr, snap.ID, time.Minute); final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}

	rep, state, err := mgr.Diagnosis(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if state != jobs.StateDone {
		t.Fatalf("diagnosis state=%s", state)
	}
	if got := rep.Straggler(); got != slowWorker {
		t.Fatalf("diagnosis blames worker %d, want %d\nworkers: %+v\nfindings: %+v",
			got, slowWorker, rep.Workers, rep.Findings)
	}
	if rep.Healthy {
		t.Fatal("report claims healthy despite the injected straggler")
	}
	if len(rep.Recommendations) == 0 {
		t.Fatal("straggler finding produced no recommendation")
	}

	fm, _, err := mgr.Flows(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Plane != plane {
		t.Fatalf("flow matrix plane=%q, want %q", fm.Plane, plane)
	}
	if fm.Workers != 4 || len(fm.Flows) == 0 {
		t.Fatalf("flow matrix empty: workers=%d flows=%d", fm.Workers, len(fm.Flows))
	}
	var crossBytes int64
	for _, f := range fm.Flows {
		if f.Src != f.Dst {
			crossBytes += f.Bytes
		}
	}
	if crossBytes == 0 {
		t.Fatal("flow matrix carries no cross-worker bytes")
	}
	switch plane {
	case netcomm.DataPlaneHub:
		if len(fm.Relays) == 0 {
			t.Fatal("hub plane shipped no relay stats")
		}
		if len(fm.Conns) != 0 {
			t.Fatalf("hub plane reports p2p conns: %+v", fm.Conns)
		}
	case netcomm.DataPlaneP2P:
		if len(fm.Conns) == 0 {
			t.Fatal("p2p plane shipped no connection stats")
		}
		if len(fm.Relays) != 0 {
			t.Fatalf("p2p plane reports hub relays: %+v", fm.Relays)
		}
	}
}

func TestDiagnosisNamesStragglerHub(t *testing.T) {
	testDiagnosisNamesStraggler(t, netcomm.DataPlaneHub)
}

func TestDiagnosisNamesStragglerP2P(t *testing.T) {
	testDiagnosisNamesStraggler(t, netcomm.DataPlaneP2P)
}

// A p2p job pushed through a deliberately small 64 KiB window on a
// message-heavy graph must be called out as window-bound, naming the
// saturated connection.
func TestDiagnosisFindsWindowBoundConnP2P(t *testing.T) {
	const window = 64 << 10
	mgr, cat := distributedManager(t, 2, nil,
		jobs.WithDataPlane(netcomm.DataPlaneP2P, window))
	if err := cat.Register(catalog.Spec{Name: "rmat-dense", Gen: "rmat:scale=15,ef=16,seed=7"}); err != nil {
		t.Fatal(err)
	}
	snap, err := mgr.Submit(jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat-dense",
		Params: algorithms.Params{Iterations: 60}, MaxSupersteps: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if final := awaitTerminal(t, mgr, snap.ID, 2*time.Minute); final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}

	fm, _, err := mgr.Flows(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.Conns) == 0 {
		t.Fatal("no p2p connection stats")
	}
	var stalled bool
	for _, c := range fm.Conns {
		if c.Window != window {
			t.Fatalf("conn window=%d, want %d: %+v", c.Window, window, c)
		}
		if c.StallNS > 0 {
			stalled = true
			if c.Grants == 0 {
				t.Fatalf("conn stalled but recorded no credit grants: %+v", c)
			}
		}
	}
	if !stalled {
		t.Fatalf("no connection recorded credit stall under a %d-byte window: %+v", window, fm.Conns)
	}

	rep, _, err := mgr.Diagnosis(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	var found *obs.Finding
	for i := range rep.Findings {
		if rep.Findings[i].Kind == "window_bound" {
			found = &rep.Findings[i]
			break
		}
	}
	if found == nil {
		if raceEnabled {
			// The race detector slows compute roughly tenfold while the
			// credit stall stays wall-clock bound, so the stall can
			// honestly fall below the window-bound fraction of superstep
			// time: the verdict "not window-bound" is then correct, and
			// the stat assertions above already covered the plumbing.
			t.Skipf("window-bound verdict skipped under -race (stall diluted by detector overhead): %+v", fm.Conns)
		}
		t.Fatalf("diagnosis has no window_bound finding\nfindings: %+v\nconns: %+v",
			rep.Findings, fm.Conns)
	}
	if found.Conn != "w[0-1]->w[2-3]" && found.Conn != "w[2-3]->w[0-1]" {
		t.Fatalf("window_bound names %q, want one direction of the only mesh connection", found.Conn)
	}
	var hasRec bool
	for _, r := range rep.Recommendations {
		if strings.Contains(r, "window-bytes") {
			hasRec = true
		}
	}
	if !hasRec {
		t.Fatalf("no window recommendation in %+v", rep.Recommendations)
	}
}

// The same deliberately small 64 KiB window on the same message-heavy
// graph must NOT be window-bound on the adaptive plane: the receiver's
// controller observes the oversized rounds and grows the window out of
// the stall, so the run self-heals where the static plane needed the
// operator to raise -window-bytes.
func TestDiagnosisAdaptiveWindowEscapesStall(t *testing.T) {
	const window = 64 << 10
	mgr, cat := distributedManager(t, 2, nil,
		jobs.WithDataPlane(netcomm.DataPlaneP2PAdaptive, window))
	if err := cat.Register(catalog.Spec{Name: "rmat-dense", Gen: "rmat:scale=15,ef=16,seed=7"}); err != nil {
		t.Fatal(err)
	}
	snap, err := mgr.Submit(jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat-dense",
		Params: algorithms.Params{Iterations: 60}, MaxSupersteps: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if final := awaitTerminal(t, mgr, snap.ID, 2*time.Minute); final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}

	fm, _, err := mgr.Flows(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Plane != netcomm.DataPlaneP2PAdaptive {
		t.Fatalf("flow matrix plane=%q, want %q", fm.Plane, netcomm.DataPlaneP2PAdaptive)
	}
	if len(fm.Conns) == 0 {
		t.Fatal("no connection stats: the hot pair was never promoted")
	}
	var grew bool
	for _, c := range fm.Conns {
		if c.Window == 0 {
			continue // relay-only row
		}
		if c.Resizes > 0 && c.WindowPeak > window {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("no connection grew out of the %d-byte window: %+v", window, fm.Conns)
	}

	rep, _, err := mgr.Diagnosis(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		if f.Kind == "window_bound" {
			t.Fatalf("adaptive plane still window-bound: %+v\nconns: %+v", f, fm.Conns)
		}
	}
}

// A kill fault with recovery enabled: the live event stream must carry
// superstep events before the crash, the recovering/running transition,
// superstep events from the respawned party, and the terminal state —
// one subscription across the whole job. The flow matrix afterwards must
// hold only the successful attempt's traffic (no double-counting), so it
// cannot exceed an undisturbed run's volume.
func TestLiveEventsAndFlowsAcrossRecovery(t *testing.T) {
	req := jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat",
		Params: algorithms.Params{Iterations: 50}, MaxSupersteps: 200000,
	}

	// undisturbed baseline for the volume bound
	cleanMgr, _ := distributedManager(t, 4, nil)
	cleanSnap, err := cleanMgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if s := awaitTerminal(t, cleanMgr, cleanSnap.ID, time.Minute); s.State != jobs.StateDone {
		t.Fatalf("baseline: state=%s err=%q", s.State, s.Error)
	}
	cleanFM, _, err := cleanMgr.Flows(cleanSnap.ID)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes := totalFlowBytes(cleanFM)
	if cleanBytes == 0 {
		t.Fatal("baseline run recorded no flow bytes")
	}

	mgr, _ := distributedManager(t, 4, nil,
		jobs.WithRecovery(2, 1),
		jobs.WithFault(&workerproc.FaultSpec{Kind: "kill", Worker: 1, Superstep: 5}))
	snap, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	replay, live, cancel, err := mgr.Events(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	evs := append([]obs.JobEvent(nil), replay...)
	deadline := time.After(time.Minute)
collect:
	for {
		select {
		case ev, open := <-live:
			if !open {
				break collect // terminal reached, stream complete
			}
			evs = append(evs, ev)
		case <-deadline:
			t.Fatalf("event stream did not terminate; %d events so far", len(evs))
		}
	}

	recoveringAt, runningAfter := -1, -1
	var lastState string
	stepsSeen := map[int]int{}
	var lastSeq int64
	for i, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case "state":
			lastState = ev.State
			if ev.State == string(jobs.StateRecovering) && recoveringAt < 0 {
				recoveringAt = i
			}
			if recoveringAt >= 0 && ev.State == string(jobs.StateRunning) {
				runningAfter = i
			}
		case "superstep":
			if ev.Step == nil {
				t.Fatalf("superstep event without payload: %+v", ev)
			}
			stepsSeen[ev.Step.Superstep]++
		}
	}
	if recoveringAt < 0 {
		t.Fatalf("no recovering state event in %d events", len(evs))
	}
	if runningAfter < 0 {
		t.Fatal("no running state event after the recovery")
	}
	if lastState != string(jobs.StateDone) {
		t.Fatalf("stream ended on state %q, want done", lastState)
	}
	var afterRespawn int
	for i := runningAfter + 1; i < len(evs); i++ {
		if evs[i].Type == "superstep" {
			afterRespawn++
		}
	}
	if afterRespawn == 0 {
		t.Fatal("no superstep events after the respawn: the live feed did not survive recovery")
	}
	for step, n := range stepsSeen {
		if n > 1 {
			t.Fatalf("superstep %d completed %d times on the stream: events double-fired across recovery", step, n)
		}
	}

	fm, _, err := mgr.Flows(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := totalFlowBytes(fm)
	if got == 0 {
		t.Fatal("recovered run recorded no flow bytes")
	}
	// only the clean respawned attempt may contribute; merging the dead
	// attempt too would push the total past the undisturbed run's
	if got > cleanBytes {
		t.Fatalf("recovered flow bytes %d exceed the undisturbed run's %d: attempts double-counted", got, cleanBytes)
	}
}

func totalFlowBytes(m *obs.FlowMatrix) int64 {
	var n int64
	for _, f := range m.Flows {
		n += f.Bytes
	}
	return n
}
