//go:build race

package jobs_test

// See race_off_test.go.
const raceEnabled = true
