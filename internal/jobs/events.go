package jobs

import (
	"sync"
	"time"

	"repro/internal/obs"
)

const (
	// maxJobEvents bounds how many events a job's log replays to late
	// subscribers; a runaway job cannot turn its event history into a
	// memory leak. Live subscribers still see everything.
	maxJobEvents = 4096
	// subBuffer is each subscriber's channel depth. publish never
	// blocks: a consumer that falls this far behind loses the overflow
	// and can detect the gap from the event sequence numbers.
	subBuffer = 256
)

// eventLog is one job's event history plus its live fan-out. States and
// completed supersteps are published as they happen; subscribers get the
// retained history as a replay slice and a channel that closes once the
// job reaches a terminal state.
type eventLog struct {
	mu      sync.Mutex
	events  []obs.JobEvent
	subs    map[int]chan obs.JobEvent
	nextSub int
	seq     int64
	dropped int64 // events past the retention cap, replayable no more
	closed  bool
}

func newEventLog() *eventLog {
	return &eventLog{subs: make(map[int]chan obs.JobEvent)}
}

// publish stamps the event with its per-job sequence number and time,
// retains it (up to the cap), and fans it out without blocking.
func (l *eventLog) publish(ev obs.JobEvent) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.seq++
	ev.Seq = l.seq
	ev.Time = time.Now()
	if len(l.events) < maxJobEvents {
		l.events = append(l.events, ev)
	} else {
		l.dropped++
	}
	for _, ch := range l.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop, the seq gap tells the story
		}
	}
	l.mu.Unlock()
}

// close ends the stream after the terminal event: every live channel is
// closed and future subscribers get replay only.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	for id, ch := range l.subs {
		close(ch)
		delete(l.subs, id)
	}
	l.mu.Unlock()
}

// subscribe returns the retained history and a live channel. The
// channel closes when the job ends (immediately, for an already-terminal
// job). cancel detaches early; it is safe to call after the close.
func (l *eventLog) subscribe() (replay []obs.JobEvent, live <-chan obs.JobEvent, cancel func()) {
	l.mu.Lock()
	replay = append([]obs.JobEvent(nil), l.events...)
	ch := make(chan obs.JobEvent, subBuffer)
	if l.closed {
		close(ch)
		l.mu.Unlock()
		return replay, ch, func() {}
	}
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.mu.Unlock()
	return replay, ch, func() {
		l.mu.Lock()
		if c, ok := l.subs[id]; ok {
			delete(l.subs, id)
			close(c)
		}
		l.mu.Unlock()
	}
}

// stateEvent builds a lifecycle event for a job in state s.
func stateEvent(s State, errMsg string) obs.JobEvent {
	return obs.JobEvent{Type: "state", State: string(s), Error: errMsg}
}
