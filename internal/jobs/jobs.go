// Package jobs runs graph-analytics jobs against catalog datasets on a
// bounded worker pool. A job names an (algorithm, engine, variant)
// triple from the shared registry plus a dataset; the manager tracks it
// through pending → running → done/failed/cancelled and retains results
// for a bounded number of finished jobs. Queued jobs cancel
// immediately; running jobs cancel cooperatively through the engines'
// barrier-abort path. Jobs on live datasets pin the dataset's current
// epoch for the whole run — they always compute over one consistent
// snapshot, recorded in their metrics — and release it when done.
package jobs

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/metrics"
	"sort"
	"sync"
	"time"

	"repro/internal/algorithms"
	"repro/internal/barrier"
	"repro/internal/catalog"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/workerproc"
)

// State is a job lifecycle state.
type State string

const (
	StatePending State = "pending"
	StateRunning State = "running"
	// StateRecovering marks a distributed job whose worker party died
	// mid-run and is being respawned from the latest complete
	// checkpoint. Non-terminal: the job returns to running once the new
	// party spawns, and to done/failed when it finishes for good.
	StateRecovering State = "recovering"
	StateDone       State = "done"
	StateFailed     State = "failed"
	StateCancelled  State = "cancelled"
)

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request is a job submission.
type Request struct {
	// Algorithm is a registry name or alias: pagerank, sssp, wcc,
	// pointerjump (alias cc), sv, scc, msf.
	Algorithm string `json:"algorithm"`
	// Engine is "channel" (default) or "pregel".
	Engine string `json:"engine,omitempty"`
	// Variant selects an optimization variant; "" means "basic".
	Variant string `json:"variant,omitempty"`
	// Dataset names a catalog entry.
	Dataset string `json:"dataset"`
	// Placement selects the vertex placement: "hash" or "greedy" (the
	// paper's "(P)" locality placement). Empty means the dataset spec's
	// default (hash when the spec has none).
	Placement string `json:"placement,omitempty"`
	// Params carries algorithm knobs (PageRank iterations, SSSP source).
	Params algorithms.Params `json:"params,omitzero"`
	// MaxSupersteps caps the run (0 = manager default of 200000).
	MaxSupersteps int `json:"max_supersteps,omitempty"`
}

// Snapshot is the externally visible view of a job.
type Snapshot struct {
	ID        string              `json:"id"`
	State     State               `json:"state"`
	Request   Request             `json:"request"`
	Submitted time.Time           `json:"submitted"`
	Started   time.Time           `json:"started,omitzero"`
	Finished  time.Time           `json:"finished,omitzero"`
	Error     string              `json:"error,omitempty"`
	Metrics   *algorithms.Metrics `json:"metrics,omitempty"`
}

type job struct {
	id        string
	req       Request
	eng       algorithms.Engine
	spec      *algorithms.Spec
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       string
	metrics   *algorithms.Metrics
	result    *algorithms.Result
	trace     *obs.Trace     // superstep timeline; set once the view is acquired
	flows     *obs.FlowAccum // per-(src,dst) flow matrix; set with the trace
	events    *eventLog      // live event stream; set at submission

	// cancel is closed (under the manager lock, at most once) to abort
	// the job while it runs; the engines unwind via barrier.Abort, and
	// execute checks it between its load/view/run phases.
	cancel    chan struct{}
	cancelled bool // cancel has been closed
}

// cancelRequested reports whether the job's cancellation has fired.
func (j *job) cancelRequested() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

func (j *job) snapshot() Snapshot {
	return Snapshot{ID: j.id, State: j.state, Request: j.req,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Error: j.err, Metrics: j.metrics}
}

// Stats summarizes manager activity.
type Stats struct {
	Workers    int   `json:"workers"`
	Queued     int   `json:"queued"`
	Pending    int   `json:"pending"`
	Running    int   `json:"running"`
	Recovering int   `json:"recovering"`
	Done       int   `json:"done"`
	Failed     int   `json:"failed"`
	Cancelled  int   `json:"cancelled"`
	Submitted  int64 `json:"submitted"`
	Evicted    int64 `json:"evicted"`
}

// Manager owns the worker pool and the job table. Safe for concurrent
// use.
type Manager struct {
	cat           *catalog.Catalog
	maxSupersteps int
	retain        int
	workers       int
	queueCap      int
	workerProcs   int    // > 0: run jobs across graphworker subprocesses
	workerBin     string // graphworker executable for the subprocess path
	dataPlane     string // worker data plane: netcomm hub (default), p2p or p2p-adaptive
	windowBytes   int    // p2p per-peer receive window (initial, on the adaptive plane)
	windowMin     int    // adaptive plane: tuner's lower window bound
	windowMax     int    // adaptive plane: tuner's upper window bound
	promoteBytes  int    // adaptive plane: relayed bytes before a pair goes direct
	joinTimeout   time.Duration
	resultTimeout time.Duration
	wallTimeout   time.Duration
	maxRecoveries int // > 0: checkpoint distributed jobs and recover from worker death
	ckptInterval  int
	fault         *workerproc.FaultSpec
	spawnHook     func(jobID string, pids []int)
	log           *slog.Logger
	met           *managerMetrics
	wg            sync.WaitGroup

	mu        sync.Mutex
	cond      *sync.Cond // signals workers that pending grew or closed flipped
	pending   []*job     // FIFO of queued jobs; cancelled jobs are removed
	jobs      map[string]*job
	order     []string // terminal job ids, oldest first, for retention
	seq       int64
	submitted int64
	evicted   int64
	closed    bool
}

// Option tweaks a Manager.
type Option func(*Manager)

// WithRetention bounds how many terminal jobs (and their results) are
// kept; older ones are forgotten. Default 256.
func WithRetention(n int) Option { return func(m *Manager) { m.retain = n } }

// WithQueueDepth sets the pending-queue capacity. Default 16x workers.
func WithQueueDepth(n int) Option { return func(m *Manager) { m.queueCap = n } }

// WithMaxSupersteps sets the default superstep cap for jobs that do not
// specify one. Default 200000.
func WithMaxSupersteps(n int) Option { return func(m *Manager) { m.maxSupersteps = n } }

// WithWorkerProcs makes every job run its simulated cluster as n
// graphworker subprocesses over the socket fabric instead of goroutines
// over shared memory: the manager exports the job's view as a binary
// snapshot (graph + owner vector), spawns bin once per worker range,
// and merges the partial results. n is capped at the catalog's worker
// count per job.
func WithWorkerProcs(n int, bin string) Option {
	return func(m *Manager) { m.workerProcs, m.workerBin = n, bin }
}

// WithDataPlane selects the distributed jobs' data plane
// (netcomm.DataPlaneHub, netcomm.DataPlaneP2P or
// netcomm.DataPlaneP2PAdaptive) and, for the p2p planes, the
// per-peer-connection receive window in bytes (0 = default; the
// adaptive plane treats it as the initial window). Only meaningful
// together with WithWorkerProcs.
func WithDataPlane(plane string, windowBytes int) Option {
	return func(m *Manager) { m.dataPlane, m.windowBytes = plane, windowBytes }
}

// WithWindowBounds bounds the adaptive plane's per-connection window
// tuner to [min, max] bytes and sets the relayed-volume threshold at
// which a lazy pair is promoted to a direct connection (0 keeps the
// netcomm default for that knob). Only meaningful together with
// WithDataPlane(netcomm.DataPlaneP2PAdaptive, ...).
func WithWindowBounds(min, max, promote int) Option {
	return func(m *Manager) { m.windowMin, m.windowMax, m.promoteBytes = min, max, promote }
}

// WithJoinTimeout bounds how long a distributed job's worker processes
// may take to assemble on the hub (0 = the coordinator's 30s default).
func WithJoinTimeout(d time.Duration) Option {
	return func(m *Manager) { m.joinTimeout = d }
}

// WithResultTimeout bounds how long a distributed job's coordinator
// waits for result blobs to settle after every worker process exited
// (0 = the coordinator's 30s default).
func WithResultTimeout(d time.Duration) Option {
	return func(m *Manager) { m.resultTimeout = d }
}

// WithWallTimeout bounds each distributed attempt's total wall clock;
// exceeding it aborts the attempt (and, with recovery enabled, triggers
// a recovery cycle). This is the only detector for a *stalled* worker.
// 0 disables the watchdog.
func WithWallTimeout(d time.Duration) Option {
	return func(m *Manager) { m.wallTimeout = d }
}

// WithRecovery makes distributed jobs survive worker death: every
// worker checkpoints its state each ckptInterval supersteps (<= 0
// defaults to 1) into a per-job store, and when a worker process dies
// mid-run the manager respawns the full party up to maxRecoveries
// times, restoring from the latest complete checkpoint. 0 preserves the
// historical fail-fast behavior.
func WithRecovery(maxRecoveries, ckptInterval int) Option {
	return func(m *Manager) { m.maxRecoveries, m.ckptInterval = maxRecoveries, ckptInterval }
}

// WithFault injects a deterministic fault into the first attempt of
// every distributed job (tests and chaos drills only; recovered
// attempts run clean).
func WithFault(f *workerproc.FaultSpec) Option {
	return func(m *Manager) { m.fault = f }
}

// WithSpawnHook installs a callback invoked with each distributed job's
// subprocess pids (diagnostics; tests use it to kill a worker).
func WithSpawnHook(f func(jobID string, pids []int)) Option {
	return func(m *Manager) { m.spawnHook = f }
}

// WithLogger directs the manager's job lifecycle events — and, for
// distributed jobs, the coordinator's forwarded graphworker stderr —
// to l, each tagged with the job id and dataset. Default: discard.
func WithLogger(l *slog.Logger) Option {
	return func(m *Manager) {
		if l != nil {
			m.log = l
		}
	}
}

// WithMetrics registers the manager's aggregate job counters on reg:
// graphd_job_duration_seconds, graphd_jobs_finished_total (by state),
// graphd_job_supersteps_total, graphd_job_net_bytes_total, the
// graphd_superstep_seconds histogram, and the diagnosis summary
// counters (graphd_diagnosis_findings_total,
// graphd_diagnosis_unhealthy_jobs_total).
func WithMetrics(reg *obs.Registry) Option {
	return func(m *Manager) {
		if reg == nil {
			return
		}
		m.met = &managerMetrics{
			duration: reg.Histogram("graphd_job_duration_seconds",
				"Wall time of finished jobs (running, not queued).", obs.DurationBuckets),
			done: reg.Counter("graphd_jobs_done_total",
				"Jobs that finished successfully."),
			failed: reg.Counter("graphd_jobs_failed_total",
				"Jobs that finished in error."),
			cancelled: reg.Counter("graphd_jobs_cancelled_total",
				"Jobs cancelled while queued or running."),
			supersteps: reg.Counter("graphd_job_supersteps_total",
				"Supersteps executed by successful jobs."),
			netBytes: reg.Counter("graphd_job_net_bytes_total",
				"Cross-worker bytes moved by successful jobs."),
			recoveries: reg.Counter("graphd_ckpt_recoveries_total",
				"Checkpoint recovery cycles: a joined worker party was lost and respawned from the latest complete checkpoint."),
			retries: reg.Counter("graphd_job_retries_total",
				"Respawn retries for failures before the worker party assembled (spawn or join errors)."),
			stepSeconds: reg.Histogram("graphd_superstep_seconds",
				"Per-superstep wall time (slowest worker's compute + wait + stall), fed live from the superstep trace.", obs.DurationBuckets),
			findings: reg.Counter("graphd_diagnosis_findings_total",
				"Bottleneck findings (warn or critical) across the diagnoses of finished jobs."),
			unhealthy: reg.Counter("graphd_diagnosis_unhealthy_jobs_total",
				"Finished jobs whose automatic diagnosis reached warn severity or worse."),
		}
	}
}

// managerMetrics are the registry instruments the manager updates as
// jobs reach terminal states.
type managerMetrics struct {
	duration    *obs.Histogram
	done        *obs.Counter
	failed      *obs.Counter
	cancelled   *obs.Counter
	supersteps  *obs.Counter
	netBytes    *obs.Counter
	recoveries  *obs.Counter
	retries     *obs.Counter
	stepSeconds *obs.Histogram
	findings    *obs.Counter
	unhealthy   *obs.Counter
}

// diagnosis folds one finished job's bottleneck report into the
// aggregate instruments.
func (mm *managerMetrics) diagnosis(rep *obs.Report) {
	if mm == nil || rep == nil {
		return
	}
	var n int64
	for _, f := range rep.Findings {
		if f.Severity != "info" {
			n++
		}
	}
	mm.findings.Add(n)
	if !rep.Healthy {
		mm.unhealthy.Inc()
	}
}

// step records one completed superstep's wall time.
func (mm *managerMetrics) step(ev obs.StepEvent) {
	if mm == nil {
		return
	}
	mm.stepSeconds.Observe(float64(ev.WallNS) / 1e9)
}

// recovery records one respawn cycle: a lost party that had joined is a
// checkpoint recovery, one that never assembled is a spawn/join retry.
func (mm *managerMetrics) recovery(joined bool) {
	if mm == nil {
		return
	}
	if joined {
		mm.recoveries.Inc()
	} else {
		mm.retries.Inc()
	}
}

// observe records one terminal job.
func (mm *managerMetrics) observe(j *job) {
	if mm == nil {
		return
	}
	if !j.started.IsZero() {
		mm.duration.Observe(j.finished.Sub(j.started).Seconds())
	}
	switch j.state {
	case StateDone:
		mm.done.Inc()
		if j.metrics != nil {
			mm.supersteps.Add(int64(j.metrics.Supersteps))
			mm.netBytes.Add(j.metrics.NetBytes)
		}
	case StateFailed:
		mm.failed.Inc()
	case StateCancelled:
		mm.cancelled.Inc()
	}
}

// NewManager starts a manager with the given number of pool workers.
func NewManager(cat *catalog.Catalog, workers int, opts ...Option) *Manager {
	if workers <= 0 {
		workers = 4
	}
	m := &Manager{
		cat:           cat,
		workers:       workers,
		retain:        256,
		maxSupersteps: 200000,
		jobs:          make(map[string]*job),
		log:           slog.New(slog.DiscardHandler),
	}
	for _, o := range opts {
		o(m)
	}
	if m.queueCap <= 0 {
		m.queueCap = 16 * workers
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.workerLoop()
	}
	return m
}

// Submit validates and enqueues a job, returning its snapshot.
func (m *Manager) Submit(req Request) (Snapshot, error) {
	spec, ok := algorithms.Lookup(req.Algorithm)
	if !ok {
		return Snapshot{}, fmt.Errorf("jobs: unknown algorithm %q", req.Algorithm)
	}
	eng, err := algorithms.ParseEngine(req.Engine)
	if err != nil {
		return Snapshot{}, err
	}
	if err := spec.CheckVariant(eng, req.Variant); err != nil {
		return Snapshot{}, err
	}
	if !m.cat.Has(req.Dataset) {
		return Snapshot{}, fmt.Errorf("jobs: unknown dataset %q", req.Dataset)
	}
	switch req.Placement {
	case "", partition.PlacementHash, partition.PlacementGreedy:
	default:
		return Snapshot{}, fmt.Errorf("jobs: unknown placement %q (want %s or %s)",
			req.Placement, partition.PlacementHash, partition.PlacementGreedy)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, fmt.Errorf("jobs: manager is shut down")
	}
	if len(m.pending) >= m.queueCap {
		return Snapshot{}, fmt.Errorf("jobs: queue full (%d pending)", m.queueCap)
	}
	m.seq++
	m.submitted++
	j := &job{
		id:        fmt.Sprintf("j-%06d", m.seq),
		req:       req,
		eng:       eng,
		spec:      spec,
		state:     StatePending,
		submitted: time.Now(),
		cancel:    make(chan struct{}),
		events:    newEventLog(),
	}
	m.jobs[j.id] = j
	m.pending = append(m.pending, j)
	m.cond.Signal()
	j.events.publish(stateEvent(StatePending, ""))
	return j.snapshot(), nil
}

// workerLoop pulls pending jobs until the manager is closed and the
// queue is drained.
func (m *Manager) workerLoop() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		j.state = StateRunning
		j.started = time.Now()
		m.mu.Unlock()
		j.events.publish(stateEvent(StateRunning, ""))
		m.log.Info("job started", "job", j.id,
			"algorithm", j.req.Algorithm, "dataset", j.req.Dataset)

		res, err := m.execute(j)

		m.mu.Lock()
		j.finished = time.Now()
		switch {
		case err != nil && errors.Is(err, barrier.ErrCancelled):
			j.state = StateCancelled
			j.err = "cancelled while running"
		case err != nil:
			j.state = StateFailed
			j.err = err.Error()
		default:
			j.state = StateDone
			j.result = res
			j.metrics = &res.Metrics
		}
		m.met.observe(j)
		m.retireLocked(j)
		state, jerr, took := j.state, j.err, j.finished.Sub(j.started)
		m.mu.Unlock()
		j.events.publish(stateEvent(state, jerr))
		j.events.close()
		if state == StateDone {
			// summarize the finished job's diagnosis into the aggregate
			// instruments, and put the top finding into the log so "why
			// was this slow" has an answer without anyone curling the
			// diagnosis endpoint
			if rep := diagnoseJob(j.trace, j.flows, j.metrics); rep != nil {
				m.met.diagnosis(rep)
				if !rep.Healthy && len(rep.Findings) > 0 {
					m.log.Warn("job diagnosis found bottlenecks", "job", j.id,
						"findings", len(rep.Findings), "top", rep.Findings[0].Detail)
				}
			}
			m.log.Info("job finished", "job", j.id, "state", state, "took", took)
		} else {
			m.log.Warn("job finished", "job", j.id, "state", state,
				"took", took, "err", jerr)
		}
		m.mu.Lock()
	}
}

// execute resolves the dataset's (placement, orientation) view and
// dispatches through the registry; every job runs on the view's
// pre-resolved fragments. Live datasets are pinned to one epoch for the
// whole run, released when it finishes, and the epoch is recorded in
// the job's metrics.
func (m *Manager) execute(j *job) (*algorithms.Result, error) {
	entry, err := m.cat.Get(j.req.Dataset)
	if err != nil {
		return nil, err
	}
	if j.cancelRequested() {
		// honor a cancel that landed during a long dataset load, before
		// paying for view construction
		return nil, barrier.ErrCancelled
	}
	placement := j.req.Placement
	if placement == "" {
		placement = entry.Spec.Placement
	}
	view, release, epoch, err := entry.AcquireView(placement, j.spec.NeedsUndirected)
	if err != nil {
		return nil, err
	}
	defer release()
	if j.cancelRequested() {
		return nil, barrier.ErrCancelled
	}
	g := view.Graph
	if j.spec.NeedsWeights && !g.Weighted() {
		return nil, fmt.Errorf("jobs: %s needs edge weights but dataset %q is unweighted",
			j.spec.Name, j.req.Dataset)
	}
	if j.spec.HasSource && int(j.req.Params.Source) >= g.NumVertices() {
		return nil, fmt.Errorf("jobs: source vertex %d out of range (%d vertices)",
			j.req.Params.Source, g.NumVertices())
	}
	maxSteps := j.req.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = m.maxSupersteps
	}
	// Every job collects a superstep trace and a flow matrix; both
	// collectors are retained on the job record so the telemetry stays
	// queryable after the run.
	tr := obs.NewTrace(view.Part.NumWorkers())
	flows := obs.NewFlowAccum(view.Part.NumWorkers())
	// Completed supersteps go out on the job's live event stream (and
	// into the superstep-duration histogram) the moment every worker's
	// sample lands — in-process immediately, distributed when the
	// workers' streamed samples reach the coordinator.
	tr.OnStepComplete(func(ev obs.StepEvent) {
		j.events.publish(obs.JobEvent{Type: "superstep",
			State: string(StateRunning), Step: &ev})
		m.met.step(ev)
	})
	tr.OnTruncate(func(dropped int64) {
		m.log.Warn("superstep trace ring truncated; older samples dropped",
			"job", j.id, "truncated_samples", dropped)
	})
	m.mu.Lock()
	j.trace = tr
	j.flows = flows
	m.mu.Unlock()
	var res *algorithms.Result
	if m.workerProcs > 0 {
		res, err = m.executeDistributed(j, view, maxSteps)
		if err != nil {
			return nil, err
		}
	} else {
		// the in-process fabric is built here (instead of inside the
		// engine) so the job's flow accumulator can attach to its
		// exchanger; multi-phase algorithms share it across phases just
		// like the distributed path shares one socket fabric
		fab := comm.NewInProc(view.Part.NumWorkers(), comm.CostModel{})
		flows.SetPlane("inproc")
		fab.Exchanger().SetFlows(flows)
		opts := algorithms.Options{Part: view.Part, Frags: view.Frags,
			MaxSupersteps: maxSteps, Cancel: j.cancel, Observer: tr, Fabric: fab}
		before := heapAllocBytes()
		res, err = j.spec.Run(j.eng, j.req.Variant, g, opts, j.req.Params)
		if err != nil {
			return nil, err
		}
		res.Metrics.HeapAllocDelta = int64(heapAllocBytes() - before)
	}
	res.Metrics.Placement = view.Placement
	res.Metrics.EdgeCut = view.EdgeCut
	res.Metrics.Epoch = epoch
	return res, nil
}

// executeDistributed ships the job's view to graphworker subprocesses:
// the view graph plus its owner vector are exported as a binary
// snapshot the workers rebuild their identical partitions from, and the
// socket-fabric coordinator merges the partial results.
func (m *Manager) executeDistributed(j *job, view *catalog.View, maxSteps int) (*algorithms.Result, error) {
	dir, err := os.MkdirTemp("", "graphd-job")
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "view.bin")
	placement := graph.Placement{
		Name:    view.Placement,
		Workers: view.Part.NumWorkers(),
		Owner:   view.Part.Owners(),
	}
	if err := graph.WriteSnapshotFile(snap, view.Graph, []graph.Placement{placement}); err != nil {
		return nil, fmt.Errorf("jobs: export snapshot: %w", err)
	}
	spec := workerproc.JobSpec{
		Bin:           m.workerBin,
		SnapshotPath:  snap,
		Placement:     view.Placement,
		Part:          view.Part,
		Procs:         m.workerProcs,
		DataPlane:     m.dataPlane,
		WindowBytes:   m.windowBytes,
		WindowMin:     m.windowMin,
		WindowMax:     m.windowMax,
		PromoteBytes:  m.promoteBytes,
		Algorithm:     j.spec.Name,
		Engine:        j.eng,
		Variant:       j.req.Variant,
		Params:        j.req.Params,
		MaxSupersteps: maxSteps,
		Cancel:        j.cancel,
		JoinTimeout:   m.joinTimeout,
		ResultTimeout: m.resultTimeout,
		WallTimeout:   m.wallTimeout,
		Trace:         j.trace,
		Flows:         j.flows,
		Fault:         m.fault,
		Logger:        m.log.With("job", j.id, "dataset", j.req.Dataset),
	}
	if m.maxRecoveries > 0 {
		// Checkpoints live under the job's temp dir next to the snapshot:
		// they share the job's lifetime and vanish with it.
		spec.CkptDir = filepath.Join(dir, "ckpt")
		spec.CkptInterval = m.ckptInterval
		spec.CkptJob = j.id
		spec.MaxRecoveries = m.maxRecoveries
		spec.OnRecovery = func(attempt, restoreStep int, joined bool) {
			m.met.recovery(joined)
			m.mu.Lock()
			flipped := j.state == StateRunning
			if flipped {
				j.state = StateRecovering
			}
			m.mu.Unlock()
			if flipped {
				j.events.publish(stateEvent(StateRecovering, ""))
			}
		}
	}
	spec.Spawned = func(pids []int) {
		m.mu.Lock()
		flipped := j.state == StateRecovering
		if flipped {
			j.state = StateRunning
		}
		m.mu.Unlock()
		if flipped {
			j.events.publish(stateEvent(StateRunning, ""))
		}
		if m.spawnHook != nil {
			m.spawnHook(j.id, pids)
		}
	}
	return workerproc.Run(spec)
}

// heapAllocBytes reads the runtime's cumulative heap-allocation counter
// (/gc/heap/allocs:bytes). The counter is monotonic, so deltas across a
// run measure bytes allocated rather than live-heap movement and are
// immune to GC timing; they remain process-wide, so concurrent jobs in
// the same process inflate each other's readings.
func heapAllocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// retireLocked records a terminal job and evicts the oldest terminal
// jobs beyond the retention bound.
func (m *Manager) retireLocked(j *job) {
	m.order = append(m.order, j.id)
	for m.retain > 0 && len(m.order) > m.retain {
		evict := m.order[0]
		m.order = m.order[1:]
		delete(m.jobs, evict)
		m.evicted++
	}
}

// Get returns the snapshot of a job.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// Trace returns the superstep timeline collected for a job so far,
// along with the job's current state. A running job returns the
// timeline's live prefix; a queued job (or one that failed before its
// view was acquired) returns an empty snapshot.
func (m *Manager) Trace(id string) (*obs.TraceSnapshot, State, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, "", fmt.Errorf("jobs: unknown or expired job %q", id)
	}
	tr, state := j.trace, j.state
	m.mu.Unlock()
	if tr == nil {
		return &obs.TraceSnapshot{}, state, nil
	}
	return tr.Snapshot(), state, nil
}

// Flows returns the flow matrix collected for a job so far, along with
// the job's current state. A running job returns the live prefix; a
// queued job (or one that failed before its view was acquired) returns
// an empty matrix.
func (m *Manager) Flows(id string) (*obs.FlowMatrix, State, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, "", fmt.Errorf("jobs: unknown or expired job %q", id)
	}
	flows, state := j.flows, j.state
	m.mu.Unlock()
	if flows == nil {
		return &obs.FlowMatrix{}, state, nil
	}
	return flows.Matrix(), state, nil
}

// Diagnosis runs the bottleneck diagnosis over everything the job's
// telemetry recorded so far: the superstep trace, the flow matrix, and
// the run metrics (present once the job is done). Valid on a running
// job — the report then covers the live prefix.
func (m *Manager) Diagnosis(id string) (*obs.Report, State, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, "", fmt.Errorf("jobs: unknown or expired job %q", id)
	}
	tr, flows, met, state := j.trace, j.flows, j.metrics, j.state
	m.mu.Unlock()
	return diagnoseJob(tr, flows, met), state, nil
}

// diagnoseJob snapshots a job's collectors and runs the bottleneck
// diagnosis; any of the inputs may be nil.
func diagnoseJob(tr *obs.Trace, flows *obs.FlowAccum, met *algorithms.Metrics) *obs.Report {
	var rm obs.RunMetrics
	if met != nil {
		rm = obs.RunMetrics{
			Supersteps: met.Supersteps,
			NetBytes:   met.NetBytes,
			WallNS:     int64(met.WallTime),
			EdgeCut:    met.EdgeCut,
		}
	}
	var snap *obs.TraceSnapshot
	if tr != nil {
		snap = tr.Snapshot()
	}
	var fm *obs.FlowMatrix
	if flows != nil {
		fm = flows.Matrix()
	}
	return obs.Diagnose(snap, fm, rm)
}

// Events subscribes to a job's live event stream: replay holds every
// retained event so far, live delivers subsequent ones and closes when
// the job reaches a terminal state (immediately for a finished job).
// cancel detaches the subscription; callers must invoke it when done.
func (m *Manager) Events(id string) (replay []obs.JobEvent, live <-chan obs.JobEvent, cancel func(), err error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, nil, fmt.Errorf("jobs: unknown or expired job %q", id)
	}
	replay, live, cancel = j.events.subscribe()
	return replay, live, cancel, nil
}

// Result returns the result of a finished job.
func (m *Manager) Result(id string) (*algorithms.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("jobs: unknown or expired job %q", id)
	}
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, fmt.Errorf("jobs: job %s failed: %s", id, j.err)
	case StateCancelled:
		return nil, fmt.Errorf("jobs: job %s was cancelled", id)
	default:
		return nil, fmt.Errorf("jobs: job %s is %s", id, j.state)
	}
}

// Cancel cancels a job. A queued job is removed immediately; a running
// job is aborted cooperatively (the engines unwind through
// barrier.Abort at their next synchronization point), so its state
// flips to cancelled shortly after — a run that manages to finish in
// the same instant may still complete. Cancelling twice is an error the
// second time only if the job already reached a terminal state.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: unknown or expired job %q", id)
	}
	switch j.state {
	case StatePending:
		// remove from the queue so the slot frees up immediately
		for i, q := range m.pending {
			if q == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		j.state = StateCancelled
		j.finished = time.Now()
		m.retireLocked(j)
		j.events.publish(stateEvent(StateCancelled, ""))
		j.events.close()
		return nil
	case StateRunning, StateRecovering:
		if !j.cancelled {
			j.cancelled = true
			close(j.cancel)
		}
		return nil
	default:
		return fmt.Errorf("jobs: job %s is already %s", id, j.state)
	}
}

// List returns snapshots of all retained jobs, oldest submission first.
func (m *Manager) List() []Snapshot {
	out, _ := m.ListPage("", 0, 0)
	return out
}

// ListPage returns a window of retained jobs, oldest submission first:
// jobs whose state matches the filter ("" matches all), skipping offset
// matches and returning at most limit (0 = no limit). total is the
// match count before windowing, so clients can page.
func (m *Manager) ListPage(state State, offset, limit int) (out []Snapshot, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	matched := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		if state != "" && j.state != state {
			continue
		}
		matched = append(matched, j.snapshot())
	}
	// ids are zero-padded sequence numbers, so lexical order is
	// submission order
	sort.Slice(matched, func(i, k int) bool { return matched[i].ID < matched[k].ID })
	total = len(matched)
	if offset > total {
		offset = total
	}
	matched = matched[offset:]
	if limit > 0 && limit < len(matched) {
		matched = matched[:limit]
	}
	return matched, total
}

// ParseState validates a state filter string ("" is allowed and matches
// every state).
func ParseState(s string) (State, error) {
	switch State(s) {
	case "", StatePending, StateRunning, StateRecovering, StateDone, StateFailed, StateCancelled:
		return State(s), nil
	}
	return "", fmt.Errorf("jobs: unknown state %q", s)
}

// Stats returns a snapshot of manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Workers: m.workers, Queued: len(m.pending),
		Submitted: m.submitted, Evicted: m.evicted}
	for _, j := range m.jobs {
		switch j.state {
		case StatePending:
			st.Pending++
		case StateRunning:
			st.Running++
		case StateRecovering:
			st.Recovering++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Close stops accepting submissions, drains queued jobs, and waits for
// the pool to exit.
func (m *Manager) Close() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	m.wg.Wait()
}
