package jobs

import (
	"testing"

	"repro/internal/obs"
)

// The event log's contract: sequence numbers are dense from 1, late
// subscribers replay the retained history, live channels close at
// terminal, and a post-close subscribe still gets replay plus an
// already-closed channel.
func TestEventLogReplayLiveAndClose(t *testing.T) {
	l := newEventLog()
	l.publish(stateEvent(StatePending, ""))
	l.publish(stateEvent(StateRunning, ""))

	replay, live, cancel := l.subscribe()
	defer cancel()
	if len(replay) != 2 || replay[0].Seq != 1 || replay[1].Seq != 2 {
		t.Fatalf("replay %+v", replay)
	}
	step := obs.StepEvent{Superstep: 1, Workers: 2}
	l.publish(obs.JobEvent{Type: "superstep", State: string(StateRunning), Step: &step})
	got := <-live
	if got.Seq != 3 || got.Type != "superstep" || got.Step == nil || got.Step.Superstep != 1 {
		t.Fatalf("live event %+v", got)
	}

	l.publish(stateEvent(StateDone, ""))
	l.close()
	if ev, open := <-live; !open || ev.Type != "state" || ev.State != string(StateDone) {
		t.Fatalf("terminal event %+v open=%v", ev, open)
	}
	if _, open := <-live; open {
		t.Fatal("live channel not closed after terminal")
	}
	// publishing after close is a no-op, not a panic or a ghost event
	l.publish(stateEvent(StateDone, ""))

	replay2, live2, cancel2 := l.subscribe()
	defer cancel2()
	if len(replay2) != 4 {
		t.Fatalf("post-close replay has %d events, want 4", len(replay2))
	}
	if _, open := <-live2; open {
		t.Fatal("post-close subscriber's channel not closed immediately")
	}
}

// A subscriber that never drains loses overflow instead of blocking
// publish; the sequence numbers expose the gap.
func TestEventLogSlowConsumerDrops(t *testing.T) {
	l := newEventLog()
	_, live, cancel := l.subscribe()
	defer cancel()
	for i := 0; i < subBuffer+50; i++ {
		l.publish(stateEvent(StateRunning, "")) // must never block
	}
	n := 0
	var last int64
	for {
		ev, ok := <-live
		if !ok {
			break
		}
		if ev.Seq <= last {
			t.Fatalf("sequence not increasing: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
		n++
		if n == subBuffer {
			break
		}
	}
	if n != subBuffer {
		t.Fatalf("drained %d events, want the %d buffered", n, subBuffer)
	}
	// the overflow beyond the buffer was dropped for this subscriber,
	// but the log itself retained everything
	replay, _, cancel2 := l.subscribe()
	defer cancel2()
	if len(replay) != subBuffer+50 {
		t.Fatalf("log retained %d, want %d", len(replay), subBuffer+50)
	}
}

// cancel detaches a live subscriber without disturbing the others.
func TestEventLogCancelDetaches(t *testing.T) {
	l := newEventLog()
	_, a, cancelA := l.subscribe()
	_, b, cancelB := l.subscribe()
	defer cancelB()
	cancelA()
	if _, open := <-a; open {
		t.Fatal("cancelled channel still open")
	}
	cancelA() // idempotent
	l.publish(stateEvent(StateRunning, ""))
	if ev := <-b; ev.Seq != 1 {
		t.Fatalf("surviving subscriber got %+v", ev)
	}
}
