package jobs_test

import (
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/catalog"
	"repro/internal/jobs"
	"repro/internal/workerproc"
)

// TestMain implements the graphworker re-exec so the manager's
// distributed path spawns real worker processes in tests.
func TestMain(m *testing.M) {
	if os.Getenv(workerproc.ChildEnv) != "" {
		os.Exit(workerproc.Main(os.Args[1:], os.Stderr))
	}
	os.Exit(m.Run())
}

func distributedManager(t *testing.T, procs int, hook func(jobID string, pids []int), extra ...jobs.Option) (*jobs.Manager, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New(4, 0)
	t.Cleanup(cat.Close)
	if err := cat.Register(catalog.Spec{Name: "rmat", Gen: "rmat:scale=7,ef=5,seed=21"}); err != nil {
		t.Fatal(err)
	}
	opts := []jobs.Option{jobs.WithWorkerProcs(procs, os.Args[0])}
	if hook != nil {
		opts = append(opts, jobs.WithSpawnHook(hook))
	}
	opts = append(opts, extra...)
	mgr := jobs.NewManager(cat, 2, opts...)
	t.Cleanup(mgr.Close)
	return mgr, cat
}

func awaitTerminal(t *testing.T, mgr *jobs.Manager, id string, timeout time.Duration) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		snap, ok := mgr.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if snap.State.Terminal() {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, snap.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// A job on the distributed path must complete with merged results and
// hub-sourced metrics, end to end through the manager.
func TestManagerDistributedJobCompletes(t *testing.T) {
	mgr, _ := distributedManager(t, 2, nil)
	snap, err := mgr.Submit(jobs.Request{Algorithm: "wcc", Dataset: "rmat"})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitTerminal(t, mgr, snap.ID, time.Minute)
	if final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}
	if final.Metrics == nil || final.Metrics.NetBytes == 0 || final.Metrics.Supersteps == 0 {
		t.Fatalf("missing hub metrics: %+v", final.Metrics)
	}
	if final.Metrics.Placement == "" {
		t.Errorf("placement not stamped: %+v", final.Metrics)
	}
	res, err := mgr.Result(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) == 0 {
		t.Fatal("no merged labels")
	}
}

// Killing a graphworker mid-job no longer fails the job when recovery
// is enabled: the manager's coordinator respawns the party from the
// last checkpoint and the job lands in state=done with results
// identical to an undisturbed run.
func TestManagerKilledWorkerProcRecovers(t *testing.T) {
	var mu sync.Mutex
	pidsByJob := map[string][]int{}
	mgr, _ := distributedManager(t, 4, func(jobID string, pids []int) {
		mu.Lock()
		pidsByJob[jobID] = pids
		mu.Unlock()
	}, jobs.WithRecovery(2, 1))

	req := jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat",
		Params: algorithms.Params{Iterations: 400}, MaxSupersteps: 200000,
	}
	clean, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if s := awaitTerminal(t, mgr, clean.ID, time.Minute); s.State != jobs.StateDone {
		t.Fatalf("baseline: state=%s err=%q", s.State, s.Error)
	}
	want, err := mgr.Result(clean.ID)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// wait for the spawn, then kill one worker process mid-superstep
	deadline := time.Now().Add(30 * time.Second)
	var pids []int
	for {
		mu.Lock()
		pids = pidsByJob[snap.ID]
		mu.Unlock()
		if len(pids) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(pids) == 0 {
		t.Fatal("spawn hook never fired")
	}
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(pids[2], syscall.SIGKILL); err != nil {
		t.Skipf("worker already gone: %v", err)
	}
	final := awaitTerminal(t, mgr, snap.ID, time.Minute)
	if final.State != jobs.StateDone {
		t.Fatalf("state=%s (err=%q), want done via recovery", final.State, final.Error)
	}
	got, err := mgr.Result(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Ranks {
		if got.Ranks[i] != want.Ranks[i] {
			t.Fatalf("vertex %d: recovered rank %v differs from clean %v", i, got.Ranks[i], want.Ranks[i])
		}
	}
}

// With recovery off (the default), the same kill still fails the job
// with the transport error joined in — the seed's fail-fast contract.
func TestManagerKilledWorkerProcFailsJobByDefault(t *testing.T) {
	var mu sync.Mutex
	pidsByJob := map[string][]int{}
	mgr, _ := distributedManager(t, 4, func(jobID string, pids []int) {
		mu.Lock()
		pidsByJob[jobID] = pids
		mu.Unlock()
	})
	snap, err := mgr.Submit(jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat",
		Params: algorithms.Params{Iterations: 100000}, MaxSupersteps: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var pids []int
	for {
		mu.Lock()
		pids = pidsByJob[snap.ID]
		mu.Unlock()
		if len(pids) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(pids) == 0 {
		t.Fatal("spawn hook never fired")
	}
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(pids[2], syscall.SIGKILL); err != nil {
		t.Skipf("worker already gone: %v", err)
	}
	final := awaitTerminal(t, mgr, snap.ID, time.Minute)
	if final.State != jobs.StateFailed {
		t.Fatalf("state=%s (err=%q), want failed", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "connection lost") && !strings.Contains(final.Error, "exited") {
		t.Fatalf("error does not surface the dead worker: %q", final.Error)
	}
}

// Cancelling a running distributed job propagates the abort to the
// worker processes and lands in state=cancelled.
func TestManagerCancelDistributedJob(t *testing.T) {
	mgr, _ := distributedManager(t, 2, nil)
	snap, err := mgr.Submit(jobs.Request{
		Algorithm: "pagerank", Dataset: "rmat",
		Params: algorithms.Params{Iterations: 100000}, MaxSupersteps: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// wait until it runs, then cancel
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, _ := mgr.Get(snap.ID)
		if s.State == jobs.StateRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	if err := mgr.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := awaitTerminal(t, mgr, snap.ID, time.Minute)
	if final.State != jobs.StateCancelled && final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q, want cancelled (or done if the race lost)", final.State, final.Error)
	}
}
