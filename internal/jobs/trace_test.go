package jobs_test

import (
	"os"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// runTraced submits one job and returns its trace snapshot and final
// job snapshot.
func runTraced(t *testing.T, mgr *jobs.Manager, req jobs.Request) (*obs.TraceSnapshot, jobs.Snapshot) {
	t.Helper()
	snap, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	final := awaitTerminal(t, mgr, snap.ID, time.Minute)
	if final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}
	tr, state, err := mgr.Trace(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !state.Terminal() {
		t.Fatalf("trace state=%s, want terminal", state)
	}
	return tr, final
}

// The same job must produce an identical-shape superstep timeline
// whether its workers are goroutines over shared memory or graphworker
// subprocesses over the socket fabric. Deterministic fields — active
// vertices, bytes, frames, rounds, channel breakdown — must match
// exactly; only the time attributions may differ.
func TestTraceShapeParityAcrossFabrics(t *testing.T) {
	req := jobs.Request{Algorithm: "wcc", Dataset: "rmat"}

	inprocMgr, cat := distributedManagerProcs(t, 0)
	inproc, _ := runTraced(t, inprocMgr, req)
	_ = cat

	distMgr, _ := distributedManagerProcs(t, 2)
	dist, distFinal := runTraced(t, distMgr, req)

	if inproc.Workers != dist.Workers {
		t.Fatalf("workers: in-proc %d vs distributed %d", inproc.Workers, dist.Workers)
	}
	if len(inproc.Supersteps) == 0 || len(inproc.Supersteps) != len(dist.Supersteps) {
		t.Fatalf("supersteps: in-proc %d vs distributed %d",
			len(inproc.Supersteps), len(dist.Supersteps))
	}
	for si, a := range inproc.Supersteps {
		b := dist.Supersteps[si]
		if a.Superstep != b.Superstep || len(a.Workers) != len(b.Workers) {
			t.Fatalf("step %d: shape mismatch (%d/%d workers)", si, len(a.Workers), len(b.Workers))
		}
		for wi := range a.Workers {
			x, y := a.Workers[wi], b.Workers[wi]
			if x.Worker != y.Worker || x.Superstep != y.Superstep {
				t.Fatalf("step %d worker %d: identity mismatch %+v vs %+v", si, wi, x, y)
			}
			if x.ActiveVertices != y.ActiveVertices {
				t.Errorf("step %d worker %d: active %d vs %d", si, wi, x.ActiveVertices, y.ActiveVertices)
			}
			if x.BytesSent != y.BytesSent || x.FramesSent != y.FramesSent ||
				x.BytesRecv != y.BytesRecv || x.FramesRecv != y.FramesRecv {
				t.Errorf("step %d worker %d: traffic mismatch %+v vs %+v", si, wi, x, y)
			}
			if x.Rounds != y.Rounds {
				t.Errorf("step %d worker %d: rounds %d vs %d", si, wi, x.Rounds, y.Rounds)
			}
			if len(x.Channels) != len(y.Channels) {
				t.Fatalf("step %d worker %d: channels %d vs %d", si, wi, len(x.Channels), len(y.Channels))
			}
			for ci := range x.Channels {
				if x.Channels[ci] != y.Channels[ci] {
					t.Errorf("step %d worker %d channel %d: %+v vs %+v",
						si, wi, ci, x.Channels[ci], y.Channels[ci])
				}
			}
		}
	}

	// distributed jobs additionally record per-worker wall times
	if len(distFinal.Metrics.WorkerWall) != dist.Workers {
		t.Fatalf("WorkerWall has %d entries, want %d", len(distFinal.Metrics.WorkerWall), dist.Workers)
	}
	for w, d := range distFinal.Metrics.WorkerWall {
		if d <= 0 {
			t.Errorf("worker %d wall time %v, want > 0", w, d)
		}
		if d > distFinal.Metrics.WallTime {
			t.Errorf("worker %d wall %v exceeds job wall %v", w, d, distFinal.Metrics.WallTime)
		}
	}
}

// distributedManagerProcs builds a manager over the shared test dataset
// with procs graphworker subprocesses (0 = in-process fabric).
func distributedManagerProcs(t *testing.T, procs int) (*jobs.Manager, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New(4, 0)
	t.Cleanup(cat.Close)
	if err := cat.Register(catalog.Spec{Name: "rmat", Gen: "rmat:scale=7,ef=5,seed=21"}); err != nil {
		t.Fatal(err)
	}
	var opts []jobs.Option
	if procs > 0 {
		opts = append(opts, jobs.WithWorkerProcs(procs, os.Args[0]))
	}
	mgr := jobs.NewManager(cat, 2, opts...)
	t.Cleanup(mgr.Close)
	return mgr, cat
}

// HeapAllocDelta comes from the monotonic runtime/metrics allocation
// counter now, so it can never be negative.
func TestHeapAllocDeltaNonNegative(t *testing.T) {
	mgr, _ := distributedManagerProcs(t, 0)
	snap, err := mgr.Submit(jobs.Request{Algorithm: "wcc", Dataset: "rmat"})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitTerminal(t, mgr, snap.ID, time.Minute)
	if final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}
	if final.Metrics.HeapAllocDelta < 0 {
		t.Fatalf("HeapAllocDelta=%d, want >= 0", final.Metrics.HeapAllocDelta)
	}
}

// Trace on an unknown job is a clean error, and metrics registered via
// WithMetrics reflect finished jobs.
func TestManagerTraceAndMetrics(t *testing.T) {
	cat := catalog.New(4, 0)
	t.Cleanup(cat.Close)
	if err := cat.Register(catalog.Spec{Name: "rmat", Gen: "rmat:scale=6,ef=4,seed=3"}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mgr := jobs.NewManager(cat, 1, jobs.WithMetrics(reg))
	t.Cleanup(mgr.Close)

	if _, _, err := mgr.Trace("j-999999"); err == nil {
		t.Fatal("Trace on unknown job did not error")
	}

	snap, err := mgr.Submit(jobs.Request{Algorithm: "pointerjump", Dataset: "rmat"})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitTerminal(t, mgr, snap.ID, time.Minute)
	if final.State != jobs.StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}
	done := reg.Counter("graphd_jobs_done_total", "")
	if done.Value() != 1 {
		t.Fatalf("graphd_jobs_done_total=%d, want 1", done.Value())
	}
	hist := reg.Histogram("graphd_job_duration_seconds", "", obs.DurationBuckets)
	if hist.Count() != 1 {
		t.Fatalf("duration histogram count=%d, want 1", hist.Count())
	}
}
